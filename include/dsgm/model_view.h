// A queryable snapshot of the continuously-tracked model — the answer side
// of the paper's Algorithm 3 QUERY. A ModelView owns an immutable copy of
// every counter estimate taken at one instant (mid-run or final), so its
// queries stay consistent while the session keeps streaming underneath.
// It references the session's BayesianNetwork (structure and domain sizes)
// by pointer: the network must outlive every view taken from the session,
// including the final one inside RunReport.

#ifndef DSGM_INCLUDE_DSGM_MODEL_VIEW_H_
#define DSGM_INCLUDE_DSGM_MODEL_VIEW_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "bayes/network.h"
#include "common/metrics.h"
#include "core/counter_layout.h"
#include "monitor/comm_stats.h"

namespace dsgm {

class ModelView {
 public:
  /// An empty view: no network, zero counters. Queries are invalid until a
  /// Session populates the view; empty() tells the two apart.
  ModelView() = default;

  /// Assembles a view over `estimates`, one value per counter in the
  /// canonical CounterLayout order. Sessions call this; user code receives
  /// views from Session::Snapshot() / RunReport.
  ModelView(const BayesianNetwork& network,
            std::shared_ptr<const CounterLayout> layout,
            std::vector<double> estimates, int64_t events_observed,
            CommStats comm, double laplace_alpha);

  bool empty() const { return network_ == nullptr; }

  /// Estimated CPD entry p̃_i(value | parent_row) = A_i(v,row)/A_i(row),
  /// with the tracker's Laplace smoothing applied when configured and the
  /// uniform 1/J_i fallback when the parent row has no observed mass.
  double CpdEstimate(int variable, int value, int64_t parent_row) const;

  /// Estimated probability of a full instance (chain rule over CPDs).
  double JointProbability(const Instance& instance) const;

  /// Estimated probability of an ancestrally-closed partial assignment
  /// (nodes sorted ascending; every parent of a member must be a member).
  double JointProbability(const PartialAssignment& assignment) const;

  /// Raw counter estimate by canonical counter id (tests, diagnostics).
  double CounterEstimate(int64_t counter) const {
    return estimates_[static_cast<size_t>(counter)];
  }
  int64_t num_counters() const {
    return static_cast<int64_t>(estimates_.size());
  }

  /// Events the session had accepted when the snapshot was taken. For the
  /// cluster backends a few of them may still be in flight to the sites.
  int64_t events_observed() const { return events_observed_; }

  /// Communication spent up to the snapshot instant.
  const CommStats& comm() const { return comm_; }

  /// Metrics attached to FINAL views (RunReport::model): instruments plus
  /// the per-site health table at run end. Mid-run views from Snapshot()
  /// leave this empty — the hot query path must not pay for a registry
  /// walk; use Session::Metrics() for a live reading instead.
  const MetricsSnapshot& metrics() const { return metrics_; }
  /// Sessions attach end-of-run metrics to the final view.
  void AttachMetrics(MetricsSnapshot metrics) { metrics_ = std::move(metrics); }

  const BayesianNetwork& network() const { return *network_; }

 private:
  const BayesianNetwork* network_ = nullptr;
  std::shared_ptr<const CounterLayout> layout_;
  std::vector<double> estimates_;
  int64_t events_observed_ = 0;
  CommStats comm_;
  double laplace_alpha_ = 0.0;
  MetricsSnapshot metrics_;
};

/// Predicts the value of `target` given the other variables in `evidence`
/// (evidence[target] is ignored): the classifier of Definition 4 — argmax
/// over candidate values of the Markov-blanket factors — evaluated on a
/// snapshot (shares the decision rule with core/classifier.h).
int Predict(const ModelView& model, int target, const Instance& evidence);

}  // namespace dsgm

#endif  // DSGM_INCLUDE_DSGM_MODEL_VIEW_H_
