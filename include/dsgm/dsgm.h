// Umbrella header of the dsgm public API.
//
//   #include "dsgm/dsgm.h"
//
// pulls in the Session/SessionBuilder entry point, the ModelView query
// surface, event sources, the run report, and the site-service role, plus
// the config and network types they traffic in. Internal layers
// (monitor/, cluster/, net/ internals) stay out of this surface; reach for
// their headers directly only when extending the library itself.

#ifndef DSGM_INCLUDE_DSGM_DSGM_H_
#define DSGM_INCLUDE_DSGM_DSGM_H_

#include "bayes/repository.h"  // standard networks: Alarm(), StudentNetwork(), ...
#include "dsgm/event_source.h"
#include "dsgm/model_view.h"
#include "dsgm/report.h"
#include "dsgm/session.h"
#include "dsgm/site_service.h"

#endif  // DSGM_INCLUDE_DSGM_DSGM_H_
