// The site-side role of a multi-host deployment: while a coordinator-side
// dsgm::Session (Backend::kLocalTcp + WithExternalSites) drives the run,
// each remote machine serves one site with ServeSite(). The pair is the
// public surface of the multi-process cluster; examples/dsgm_site.cpp is a
// thin CLI over this function.

#ifndef DSGM_INCLUDE_DSGM_SITE_SERVICE_H_
#define DSGM_INCLUDE_DSGM_SITE_SERVICE_H_

#include <cstdint>
#include <string>

#include "bayes/network.h"
#include "common/status.h"

namespace dsgm {

struct SiteServiceConfig {
  /// This site's id, in [0, coordinator sites).
  int site_id = 0;
  std::string coordinator_host = "127.0.0.1";
  int coordinator_port = 0;
  /// Seed for the site's Bernoulli reporting decisions.
  uint64_t seed = 7;
  /// How long to keep retrying the initial connect while the coordinator
  /// is still starting up.
  int connect_timeout_ms = 10000;
  /// kHeartbeat cadence proving this site alive to the coordinator's
  /// liveness deadline (coordinator default: 5000 ms — keep the interval
  /// well below it). 0 disables heartbeats.
  int heartbeat_interval_ms = 500;
};

struct SiteServiceResult {
  int64_t events_processed = 0;
};

/// Connects to the coordinator, announces the site id (and protocol
/// version), serves the paper's site role until the coordinator ends the
/// protocol, then reports exact totals for validation. Blocks for the
/// lifetime of the run. The network must match the coordinator's.
StatusOr<SiteServiceResult> ServeSite(const BayesianNetwork& network,
                                      const SiteServiceConfig& config);

}  // namespace dsgm

#endif  // DSGM_INCLUDE_DSGM_SITE_SERVICE_H_
