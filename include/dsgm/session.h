// The public entry point of dsgm: one Session API over every substrate the
// paper's protocol runs on.
//
// A Session continuously maintains the approximate MLE of a known-structure
// Bayesian network over a distributed event stream (Algorithms 1-3) and —
// the paper's defining capability — answers model queries at ANY point
// while the stream flows: Snapshot() returns a consistent, immutable
// ModelView without pausing ingestion.
//
//   SessionBuilder builder(network);
//   auto session = builder.WithBackend(Backend::kThreads)
//                      .WithStrategy(TrackingStrategy::kNonUniform)
//                      .WithEpsilon(0.1)
//                      .WithSites(10)
//                      .Build();                       // StatusOr
//   (*session)->StreamGroundTruth(100000);             // or Push / Drain
//   ModelView live = *(*session)->Snapshot();          // query mid-run
//   RunReport report = *(*session)->Finish();          // join + validate
//
// Concurrency. Push, PushBatch, Drain, and Snapshot may be called from any
// number of threads simultaneously: every calling thread is lazily assigned
// its own ingest shard (a private router plus per-site staged batches —
// src/api/sharded_router.h), so concurrent producers share no lock on the
// hot path. Each shard routes its events to uniformly random sites (the
// paper's arrival model) and hands full batches to the sites over its own
// single-producer lanes. Events staged in another thread's shard count as
// in-flight for Snapshot(), which reflects the CALLING thread's accepted
// events plus whatever the sites have absorbed; a producer thread that
// exits parks its staged events with the session, and the next Snapshot
// or Finish (from any thread) delivers them. StreamGroundTruth shares
// one sampler and remains single-caller, and Finish() must be called after
// every pushing thread has been joined (or otherwise synchronized-with):
// it flushes all shards and closes the stream. The network must outlive
// the session.

#ifndef DSGM_INCLUDE_DSGM_SESSION_H_
#define DSGM_INCLUDE_DSGM_SESSION_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "bayes/network.h"
#include "bayes/sampler.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/tracker_config.h"
#include "dsgm/event_source.h"
#include "dsgm/model_view.h"
#include "dsgm/report.h"
#include "net/cluster_transport.h"

namespace dsgm {

class Session;

namespace internal {

/// One ingest caller's private state: the routing Rng, the per-site staged
/// batches, and the per-site delivery lanes the backend binds lazily.
/// Shards are created on a thread's first Push into a session and live in
/// that thread's local cache plus the session's registry; `retired` flags
/// dead sessions' shards so long-lived threads prune their caches. When a
/// producer thread exits before the session finishes, its cache entry's
/// destructor parks the shard as an orphan; the session's next Snapshot or
/// Finish flush delivers the staged batches and releases the staging
/// buffers, so an exited thread's events are never stranded until Finish.
struct IngestShard {
  uint64_t session_id = 0;
  int index = 0;  // 0 = first registered; it carries the legacy routing Rng.
  Rng router;
  /// `router`, `pending`, and `lanes` are OWNERSHIP-guarded, not
  /// lock-guarded: while the owner thread lives, only it touches them (the
  /// per-event staging hot path must stay lock-free), so they carry no
  /// GUARDED_BY. The flush paths that do cross threads (Finish/Snapshot vs
  /// the owner's exit flush) serialize on `flush_mu`, and the orphan
  /// handoff itself publishes with a happens-before edge (the orphans
  /// mutex), so post-exit flushes see the owner's final writes.
  std::vector<EventBatch> pending;           // staged events, one per site
  std::vector<Channel<EventBatch>*> lanes;   // backend-bound, one per site
  std::atomic<bool> retired{false};
  /// Serializes the flush paths (Finish's flush-all vs the owner thread's
  /// exit flush). The staging hot path takes no lock: only the owner
  /// thread mutates `pending` while it lives.
  Mutex flush_mu;
};

/// Shared liveness handle between a session and the thread-local shard
/// caches: the session nulls `session` under `mu` at destruction, so an
/// exiting producer thread can safely flush into a still-live session and
/// quietly skip a dead one.
struct SessionLiveHandle {
  Mutex mu;
  Session* session DSGM_GUARDED_BY(mu) = nullptr;
};

/// Thread-exit hook of a shard cache entry (see IngestShard): parks the
/// shard as an orphan for the session's next Snapshot/Finish flush. It
/// must not deliver batches itself — TLS destructor order is unspecified,
/// so transport code (with its own thread_locals) cannot run here.
void FlushShardOnThreadExit(Session* session,
                            const std::shared_ptr<IngestShard>& shard);

}  // namespace internal

class Session {
 public:
  virtual ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Feeds one training instance; the calling thread's shard routes it to a
  /// uniformly random site (the paper's arrival model). Validates domain
  /// bounds. Thread-safe: any number of producer threads may push into one
  /// session concurrently. Fails with kFailedPrecondition after Finish().
  Status Push(const Instance& event);

  /// Push() in bulk. Thread-safe like Push.
  Status PushBatch(const std::vector<Instance>& events);

  /// Pulls `source` until it is exhausted, pushing every instance. The
  /// source itself is driven by the calling thread only.
  Status Drain(EventSource* source);

  /// Convenience for simulations: samples `num_events` instances from the
  /// session network's ground-truth CPDs and pushes them. The sampler
  /// persists across calls, so successive calls continue one stream —
  /// stream 10k, Snapshot(), stream 90k more, and the session has seen
  /// 100k distinct events. Deterministic in the tracker seed. Single-caller
  /// (one shared sampler); concurrent Push from other threads is fine.
  Status StreamGroundTruth(int64_t num_events);

  /// Queryable model snapshot at this instant — Algorithm 3's QUERY while
  /// the run is live. Thread-safe, and on the cluster backends it never
  /// blocks the protocol: the coordinator publishes into a double-buffered
  /// epoch snapshot at batch boundaries and Snapshot() reads the stable
  /// buffer. The calling thread's staged dispatch batches are flushed to
  /// the sites first, so the view reflects every event this thread pushed
  /// (other threads' staged batches count as in-flight). After a
  /// successful Finish() it returns the final model; after a failed one,
  /// an error.
  virtual StatusOr<ModelView> Snapshot() = 0;

  /// Closes the stream, runs the protocol to completion, joins every
  /// backend thread, and returns the unified report (timing, communication,
  /// validation against exact counts, final model). Call exactly once,
  /// after every pushing and snapshotting thread has been joined (or
  /// otherwise synchronized-with): Finish flushes ALL shards' staged
  /// batches and publishes the final model, which is only safe once those
  /// threads have quiesced.
  virtual StatusOr<RunReport> Finish() = 0;

  Backend backend() const { return backend_; }
  const BayesianNetwork& network() const { return *network_; }
  /// Events accepted so far (some may still be staged or in flight to the
  /// sites). Thread-safe.
  int64_t events_pushed() const {
    return events_pushed_.load(std::memory_order_relaxed);
  }

  /// Structured snapshot of the process-wide metrics registry
  /// (common/metrics.h) — counters, gauges, latency histograms; the cluster
  /// backends splice in their live per-site health table (heartbeat ages,
  /// per-site event/sync/round progress). Thread-safe, callable mid-run;
  /// deliberately separate from Snapshot() so model queries never pay for a
  /// registry walk.
  virtual MetricsSnapshot Metrics() const;

 protected:
  /// `stream_seed` seeds StreamGroundTruth's sampler; `router_seed` the
  /// uniform site routing. Backends derive both from the tracker seed with
  /// the same schedule the legacy free-function drivers used, so identical
  /// configs produce identical streams on every backend. `batch_size` is
  /// the per-shard staging bound: a shard hands a site its batch once it
  /// holds this many events (1 = deliver per event).
  Session(Backend backend, const BayesianNetwork& network, int num_sites,
          int batch_size, uint64_t stream_seed, uint64_t router_seed);

  /// Backend-specific delivery of one full routed batch. Must be safe to
  /// call from any number of producer threads concurrently; `shard` is the
  /// calling thread's shard (its `lanes` entry for `site` is the backend's
  /// to bind and reuse).
  virtual Status DeliverBatch(internal::IngestShard& shard, int site,
                              EventBatch&& batch) = 0;

  /// The calling thread's shard, created and registered on first use.
  internal::IngestShard* CurrentShard();

  /// Delivers every staged batch of `shard` (serialized on the shard's
  /// flush mutex against the thread-exit flush).
  Status FlushShard(internal::IngestShard* shard)
      DSGM_EXCLUDES(shard->flush_mu);
  /// Flushes the calling thread's shard, if it has one (Snapshot path).
  Status FlushCallerShard();
  /// Flushes every registered shard. Only safe once all producer threads
  /// have quiesced with a happens-before edge to the caller (Finish path).
  Status FlushAllShards() DSGM_EXCLUDES(shards_mu_, orphans_mu_);

  int num_sites() const { return num_sites_; }
  int batch_size() const { return batch_size_; }

  /// Starts the periodic metrics dump thread (SessionOptions::
  /// metrics_dump_ms). Derived backends call this once their snapshot
  /// source is live — NOT from the base constructor, since `fn` usually
  /// captures derived state. No-op when period_ms <= 0.
  void StartMetricsDump(int period_ms, std::ostream* out,
                        MetricsDumper::SnapshotFn fn);
  /// Emits the final dump line and joins the thread. Idempotent; derived
  /// backends whose dump fn captures derived state must call this in their
  /// own teardown, before that state dies.
  void StopMetricsDump();

  std::atomic<bool> finished_{false};
  std::atomic<int64_t> events_pushed_{0};

 private:
  friend void internal::FlushShardOnThreadExit(
      Session* session, const std::shared_ptr<internal::IngestShard>& shard);

  internal::IngestShard* RegisterShard() DSGM_EXCLUDES(shards_mu_);
  Status FlushShardLocked(internal::IngestShard* shard)
      DSGM_REQUIRES(shard->flush_mu);
  /// Delivers (and releases the buffers of) shards whose owner threads
  /// exited; runs on the Snapshot and Finish flush paths.
  Status FlushOrphanedShards() DSGM_EXCLUDES(orphans_mu_);
  Status StageRouted(internal::IngestShard* shard, const Instance& event);

  Backend backend_;
  const BayesianNetwork* network_;
  int num_sites_;
  int batch_size_;
  uint64_t stream_seed_;
  uint64_t router_seed_;
  uint64_t id_;
  std::unique_ptr<ForwardSampler> ground_truth_;  // lazy, StreamGroundTruth
  /// Shard registry: touched only on a thread's first push (registration),
  /// at Finish (flush-all), and at destruction (retire) — never on the
  /// per-event path.
  Mutex shards_mu_;
  std::vector<std::shared_ptr<internal::IngestShard>> shards_
      DSGM_GUARDED_BY(shards_mu_);
  std::shared_ptr<internal::SessionLiveHandle> live_;
  /// Shards parked by exited producer threads, awaiting delivery.
  Mutex orphans_mu_;
  std::vector<std::shared_ptr<internal::IngestShard>> orphaned_shards_
      DSGM_GUARDED_BY(orphans_mu_);
  std::unique_ptr<MetricsDumper> metrics_dumper_;
};

/// Everything a SessionBuilder can configure. Builders validate on Build();
/// the struct is public so callers can also fill it wholesale.
struct SessionOptions {
  Backend backend = Backend::kInProcess;
  /// Strategy, epsilon, num_sites, seed, replicas, ... (core/tracker_config.h).
  TrackerConfig tracker;
  /// Events per dispatch batch on the cluster backends.
  int batch_size = 256;
  /// kThreads only: plumbing override (e.g. MakeLocalTcpTransport to run
  /// the threaded cluster over real sockets). Empty = in-process loopback.
  TransportFactory transport;
  /// kLocalTcp only: listen port (0 = ephemeral) and optional file the
  /// bound port is atomically published to (for scripts).
  int listen_port = 0;
  std::string port_file;
  /// kLocalTcp only: listener bind address. The default binds loopback
  /// only; "0.0.0.0" (or a specific interface address) accepts dsgm_site
  /// processes from other hosts — the multi-host deployment posture.
  std::string bind_address = "127.0.0.1";
  /// kLocalTcp only: expect `tracker.num_sites` external dsgm_site
  /// processes to connect instead of spawning in-process site threads.
  /// Build() then blocks until all sites complete the hello handshake.
  bool external_sites = false;
  /// kLocalTcp internal sites: how long each site retries its connect.
  int site_connect_timeout_ms = 10000;
  /// kLocalTcp only: the reactor's readiness backend (net/io_backend.h).
  /// kDefault honors the DSGM_IO_BACKEND environment variable; kIoUring and
  /// kAuto fall back to epoll when the kernel refuses rings.
  IoBackendKind io_backend = IoBackendKind::kDefault;
  /// kLocalTcp only: per-site liveness deadline, enforced by the
  /// coordinator's reactor I/O thread. A site that sends no traffic (not
  /// even a kHeartbeat) for this long — or whose connection drops mid-run —
  /// is declared dead and the run fails with an UNAVAILABLE status naming
  /// the site (the FailRun policy): outstanding syncs are cancelled and
  /// every session call reports the failure instead of stalling forever.
  /// 0 disables liveness (a dead site can then stall the run).
  int liveness_timeout_ms = 5000;
  /// kLocalTcp internal sites: heartbeat cadence of the in-process site
  /// threads. Must stay below liveness_timeout_ms. External dsgm_site
  /// processes configure their own cadence (--heartbeat-ms).
  int heartbeat_interval_ms = 500;
  /// 0 disables (the default). >0: a background thread emits one line of
  /// compact JSON (MetricsSnapshotToJsonLine — every registered counter,
  /// gauge, and latency histogram, plus the cluster backends' per-site
  /// health table) every this-many milliseconds, and a final line when the
  /// session finishes or is torn down. Render with tools/metrics_text.py.
  int metrics_dump_ms = 0;
  /// Where the dump lines go; nullptr means std::cerr.
  std::ostream* metrics_dump_stream = nullptr;
  /// kLocalTcp only: empty disables (the default). A path: Finish() writes
  /// the merged, skew-corrected cluster timeline there as Chrome/Perfetto
  /// trace-event JSON (chrome://tracing, ui.perfetto.dev). Covers the
  /// coordinator process AND every site — external dsgm_site processes ship
  /// their trace rings over kTraceChunk frames; in-process site threads
  /// share the coordinator's rings. RunReport::trace_path records where it
  /// landed.
  std::string trace_out;
  /// kLocalTcp only: empty disables (the default). A directory: when the
  /// run fails (a site dies, a protocol violation, a liveness timeout), the
  /// coordinator dumps a post-mortem bundle — failure reason, final metrics
  /// + health table, the last merged trace events — to
  /// <dir>/dsgm_postmortem.json (the "flight recorder").
  std::string postmortem_dir;
};

class SessionBuilder {
 public:
  /// The network provides the structure and domain sizes; its CPDs are
  /// only read by StreamGroundTruth/MakeSamplerSource (they are what the
  /// session learns). Must outlive the built session.
  explicit SessionBuilder(const BayesianNetwork& network);

  /// Replaces the whole configuration at once; the With* setters below
  /// tweak individual fields on top.
  SessionBuilder& WithOptions(const SessionOptions& options);

  SessionBuilder& WithBackend(Backend backend);
  SessionBuilder& WithTracker(const TrackerConfig& tracker);
  SessionBuilder& WithStrategy(TrackingStrategy strategy);
  SessionBuilder& WithCounterType(CounterType type);
  SessionBuilder& WithEpsilon(double epsilon);
  SessionBuilder& WithSites(int num_sites);
  SessionBuilder& WithSeed(uint64_t seed);
  SessionBuilder& WithBatchSize(int batch_size);
  SessionBuilder& WithTransport(TransportFactory transport);
  SessionBuilder& WithListenPort(int port);
  SessionBuilder& WithPortFile(std::string path);
  SessionBuilder& WithBindAddress(std::string address);
  SessionBuilder& WithExternalSites();
  SessionBuilder& WithSiteConnectTimeout(int timeout_ms);
  /// Reactor readiness backend for kLocalTcp (the --io-backend flag of the
  /// cluster binaries). io_uring requests fall back to epoll when the
  /// kernel refuses; see SessionOptions::io_backend.
  SessionBuilder& WithIoBackend(IoBackendKind io_backend);
  /// 0 disables per-site liveness; see SessionOptions::liveness_timeout_ms.
  SessionBuilder& WithLivenessTimeout(int timeout_ms);
  SessionBuilder& WithHeartbeatInterval(int interval_ms);
  /// Periodic one-line JSON metrics dump every `period_ms` (0 disables);
  /// `out` nullptr means std::cerr. See SessionOptions::metrics_dump_ms.
  SessionBuilder& WithMetricsDump(int period_ms, std::ostream* out = nullptr);
  /// Chrome-trace JSON of the merged cluster timeline, written by Finish().
  /// See SessionOptions::trace_out.
  SessionBuilder& WithTraceExport(std::string path);
  /// Directory for the failed-run post-mortem bundle. See
  /// SessionOptions::postmortem_dir.
  SessionBuilder& WithPostmortemDir(std::string dir);

  const SessionOptions& options() const { return options_; }

  /// Validates the configuration and spins up the backend (threads,
  /// sockets, listeners). For kLocalTcp with WithExternalSites() this
  /// blocks until every site process has connected.
  StatusOr<std::unique_ptr<Session>> Build() const;

 private:
  const BayesianNetwork* network_;
  SessionOptions options_;
};

}  // namespace dsgm

#endif  // DSGM_INCLUDE_DSGM_SESSION_H_
