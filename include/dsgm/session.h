// The public entry point of dsgm: one Session API over every substrate the
// paper's protocol runs on.
//
// A Session continuously maintains the approximate MLE of a known-structure
// Bayesian network over a distributed event stream (Algorithms 1-3) and —
// the paper's defining capability — answers model queries at ANY point
// while the stream flows: Snapshot() returns a consistent, immutable
// ModelView without pausing ingestion.
//
//   SessionBuilder builder(network);
//   auto session = builder.WithBackend(Backend::kThreads)
//                      .WithStrategy(TrackingStrategy::kNonUniform)
//                      .WithEpsilon(0.1)
//                      .WithSites(10)
//                      .Build();                       // StatusOr
//   (*session)->StreamGroundTruth(100000);             // or Push / Drain
//   ModelView live = *(*session)->Snapshot();          // query mid-run
//   RunReport report = *(*session)->Finish();          // join + validate
//
// Sessions are single-owner objects: call all methods from one thread (the
// backend's protocol threads run underneath and Snapshot() synchronizes
// with them internally). The network must outlive the session.

#ifndef DSGM_INCLUDE_DSGM_SESSION_H_
#define DSGM_INCLUDE_DSGM_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bayes/network.h"
#include "bayes/sampler.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/tracker_config.h"
#include "dsgm/event_source.h"
#include "dsgm/model_view.h"
#include "dsgm/report.h"
#include "net/cluster_transport.h"

namespace dsgm {

class Session {
 public:
  virtual ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Feeds one training instance; the session routes it to a uniformly
  /// random site (the paper's arrival model). Validates domain bounds.
  /// Fails with kFailedPrecondition after Finish().
  Status Push(const Instance& event);

  /// Push() in bulk.
  Status PushBatch(const std::vector<Instance>& events);

  /// Pulls `source` until it is exhausted, pushing every instance.
  Status Drain(EventSource* source);

  /// Convenience for simulations: samples `num_events` instances from the
  /// session network's ground-truth CPDs and pushes them. The sampler
  /// persists across calls, so successive calls continue one stream —
  /// stream 10k, Snapshot(), stream 90k more, and the session has seen
  /// 100k distinct events. Deterministic in the tracker seed.
  Status StreamGroundTruth(int64_t num_events);

  /// Queryable model snapshot at this instant — Algorithm 3's QUERY while
  /// the run is live. On the cluster backends any staged dispatch batches
  /// are flushed to the sites first, so the view reflects every accepted
  /// event modulo in-flight delivery. After a successful Finish() it
  /// returns the final model; after a failed one, an error.
  virtual StatusOr<ModelView> Snapshot() = 0;

  /// Closes the stream, runs the protocol to completion, joins every
  /// backend thread, and returns the unified report (timing, communication,
  /// validation against exact counts, final model). Call exactly once.
  virtual StatusOr<RunReport> Finish() = 0;

  Backend backend() const { return backend_; }
  const BayesianNetwork& network() const { return *network_; }
  /// Events accepted so far (some may still be in flight to the sites).
  int64_t events_pushed() const { return events_pushed_; }

 protected:
  /// `stream_seed` seeds StreamGroundTruth's sampler; `router_seed` the
  /// uniform site routing. Backends derive both from the tracker seed with
  /// the same schedule the legacy free-function drivers used, so identical
  /// configs produce identical streams on every backend.
  Session(Backend backend, const BayesianNetwork& network, int num_sites,
          uint64_t stream_seed, uint64_t router_seed);

  /// Backend-specific delivery of one validated instance.
  virtual Status PushImpl(const Instance& event) = 0;

  int NextSite() {
    return static_cast<int>(
        router_.NextBounded(static_cast<uint64_t>(num_sites_)));
  }

  bool finished_ = false;
  int64_t events_pushed_ = 0;

 private:
  Backend backend_;
  const BayesianNetwork* network_;
  int num_sites_;
  uint64_t stream_seed_;
  Rng router_;
  std::unique_ptr<ForwardSampler> ground_truth_;  // lazy, StreamGroundTruth
};

/// Everything a SessionBuilder can configure. Builders validate on Build();
/// the struct is public so callers can also fill it wholesale.
struct SessionOptions {
  Backend backend = Backend::kInProcess;
  /// Strategy, epsilon, num_sites, seed, replicas, ... (core/tracker_config.h).
  TrackerConfig tracker;
  /// Events per dispatch batch on the cluster backends.
  int batch_size = 256;
  /// kThreads only: plumbing override (e.g. MakeLocalTcpTransport to run
  /// the threaded cluster over real sockets). Empty = in-process loopback.
  TransportFactory transport;
  /// kLocalTcp only: listen port (0 = ephemeral) and optional file the
  /// bound port is atomically published to (for scripts).
  int listen_port = 0;
  std::string port_file;
  /// kLocalTcp only: listener bind address. The default binds loopback
  /// only; "0.0.0.0" (or a specific interface address) accepts dsgm_site
  /// processes from other hosts — the multi-host deployment posture.
  std::string bind_address = "127.0.0.1";
  /// kLocalTcp only: expect `tracker.num_sites` external dsgm_site
  /// processes to connect instead of spawning in-process site threads.
  /// Build() then blocks until all sites complete the hello handshake.
  bool external_sites = false;
  /// kLocalTcp internal sites: how long each site retries its connect.
  int site_connect_timeout_ms = 10000;
  /// kLocalTcp only: per-site liveness deadline, enforced by the
  /// coordinator's reactor I/O thread. A site that sends no traffic (not
  /// even a kHeartbeat) for this long — or whose connection drops mid-run —
  /// is declared dead and the run fails with an UNAVAILABLE status naming
  /// the site (the FailRun policy): outstanding syncs are cancelled and
  /// every session call reports the failure instead of stalling forever.
  /// 0 disables liveness (a dead site can then stall the run).
  int liveness_timeout_ms = 5000;
  /// kLocalTcp internal sites: heartbeat cadence of the in-process site
  /// threads. Must stay below liveness_timeout_ms. External dsgm_site
  /// processes configure their own cadence (--heartbeat-ms).
  int heartbeat_interval_ms = 500;
};

class SessionBuilder {
 public:
  /// The network provides the structure and domain sizes; its CPDs are
  /// only read by StreamGroundTruth/MakeSamplerSource (they are what the
  /// session learns). Must outlive the built session.
  explicit SessionBuilder(const BayesianNetwork& network);

  /// Replaces the whole configuration at once; the With* setters below
  /// tweak individual fields on top.
  SessionBuilder& WithOptions(const SessionOptions& options);

  SessionBuilder& WithBackend(Backend backend);
  SessionBuilder& WithTracker(const TrackerConfig& tracker);
  SessionBuilder& WithStrategy(TrackingStrategy strategy);
  SessionBuilder& WithCounterType(CounterType type);
  SessionBuilder& WithEpsilon(double epsilon);
  SessionBuilder& WithSites(int num_sites);
  SessionBuilder& WithSeed(uint64_t seed);
  SessionBuilder& WithBatchSize(int batch_size);
  SessionBuilder& WithTransport(TransportFactory transport);
  SessionBuilder& WithListenPort(int port);
  SessionBuilder& WithPortFile(std::string path);
  SessionBuilder& WithBindAddress(std::string address);
  SessionBuilder& WithExternalSites();
  SessionBuilder& WithSiteConnectTimeout(int timeout_ms);
  /// 0 disables per-site liveness; see SessionOptions::liveness_timeout_ms.
  SessionBuilder& WithLivenessTimeout(int timeout_ms);
  SessionBuilder& WithHeartbeatInterval(int interval_ms);

  const SessionOptions& options() const { return options_; }

  /// Validates the configuration and spins up the backend (threads,
  /// sockets, listeners). For kLocalTcp with WithExternalSites() this
  /// blocks until every site process has connected.
  StatusOr<std::unique_ptr<Session>> Build() const;

 private:
  const BayesianNetwork* network_;
  SessionOptions options_;
};

}  // namespace dsgm

#endif  // DSGM_INCLUDE_DSGM_SESSION_H_
