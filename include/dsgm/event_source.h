// Pluggable event sources for dsgm::Session::Drain(): where the training
// stream comes from when the caller does not want to Push() instances by
// hand. Three stock sources cover the common cases — sampling a
// ground-truth network (simulation / benchmarks), replaying a recorded
// trace, and pulling from an arbitrary callback (live ingestion).

#ifndef DSGM_INCLUDE_DSGM_EVENT_SOURCE_H_
#define DSGM_INCLUDE_DSGM_EVENT_SOURCE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "bayes/network.h"

namespace dsgm {

/// A pull-based stream of training instances. Sources are single-pass and
/// not thread-safe; a Session drains one from its own calling thread.
class EventSource {
 public:
  virtual ~EventSource() = default;

  /// Fills `*out` with the next instance and returns true, or returns
  /// false once the source is exhausted (then stays exhausted).
  virtual bool Next(Instance* out) = 0;
};

/// Forward-samples `limit` instances from `network`'s ground-truth CPDs.
/// The network must outlive the source.
std::unique_ptr<EventSource> MakeSamplerSource(const BayesianNetwork& network,
                                               uint64_t seed, int64_t limit);

/// Replays a recorded trace in order.
std::unique_ptr<EventSource> MakeReplaySource(std::vector<Instance> events);

/// Adapts a callback with EventSource::Next semantics (false = exhausted).
std::unique_ptr<EventSource> MakeCallbackSource(
    std::function<bool(Instance*)> next);

}  // namespace dsgm

#endif  // DSGM_INCLUDE_DSGM_EVENT_SOURCE_H_
