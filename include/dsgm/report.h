// The unified end-of-run report every Session backend returns from
// Finish(): the threaded-cluster measurements (runtime, throughput,
// validation) and the single-process tracker observability (memory), plus
// a final queryable model snapshot.

#ifndef DSGM_INCLUDE_DSGM_REPORT_H_
#define DSGM_INCLUDE_DSGM_REPORT_H_

#include <cstdint>

#include "common/metrics.h"
#include "dsgm/model_view.h"
#include "monitor/comm_stats.h"

namespace dsgm {

/// Which substrate a Session runs the paper's protocol on.
enum class Backend {
  /// Single-process simulation wrapping MleTracker: sites are bookkeeping,
  /// no threads. Fastest; the substrate of the error/communication figures.
  kInProcess,
  /// One OS thread per site plus a coordinator thread, talking through
  /// in-process channels (or any TransportFactory). The Figs. 7-8 substrate.
  kThreads,
  /// One localhost TCP socket per site with codec-serialized frames; site
  /// threads in-process by default, or external dsgm_site processes.
  kLocalTcp,
};

const char* ToString(Backend backend);

struct RunReport {
  Backend backend = Backend::kInProcess;

  int64_t events_processed = 0;
  /// Wall-clock seconds from the first to the last message the coordinator
  /// received (the paper's Fig. 7 runtime; equals wall_seconds in-process).
  double runtime_seconds = 0.0;
  /// End-to-end wall-clock of the whole session including setup.
  double wall_seconds = 0.0;
  /// events_processed / runtime_seconds (the paper's Fig. 8 metric).
  double throughput_events_per_sec = 0.0;

  /// Protocol-level communication accounting (logical messages and
  /// estimated payload bytes; see README on estimate vs wire honesty).
  CommStats comm;

  /// Validation: max relative error of the coordinator's estimates against
  /// exact counts, over counters with exact total >= 64 (noise-dominated
  /// cells are skipped). Zero in exact mode by construction.
  double max_counter_rel_error = 0.0;

  /// Wire bytes actually moved, when the substrate can observe them
  /// (kLocalTcp, or kThreads over a TCP TransportFactory).
  uint64_t transport_bytes_up = 0;
  uint64_t transport_bytes_down = 0;
  bool transport_measured = false;

  /// Counter-state memory (kInProcess only; the cluster backends spread
  /// state across site threads/processes).
  uint64_t memory_bytes = 0;

  /// Final model snapshot, queryable after the session is gone. Like
  /// every ModelView it references the session's BayesianNetwork by
  /// pointer: the network must outlive this report, not just the session.
  ModelView model;

  /// End-of-run metrics: every registered instrument plus the per-site
  /// health table on the cluster backends. Captured after the protocol
  /// joined, so the numbers are final.
  MetricsSnapshot metrics;

  /// Where SessionOptions::trace_out wrote the merged Chrome-trace JSON
  /// timeline; empty when export is off (or the write failed — the run
  /// itself never fails over observability output).
  std::string trace_path;
  /// Where the flight recorder wrote a post-mortem bundle during this
  /// session, if it did (SessionOptions::postmortem_dir). Usually empty on
  /// a successful run; a failed run surfaces the path in its error message
  /// since Finish() then returns no report.
  std::string postmortem_path;
};

}  // namespace dsgm

#endif  // DSGM_INCLUDE_DSGM_REPORT_H_
