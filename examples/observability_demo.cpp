// Observability demo: a real socketed cluster (kLocalTcp backend — one
// reactor I/O thread serving every site over localhost TCP) run with the
// metrics layer turned all the way up. While the stream flows, the
// coordinator keeps a live per-site health table fed by kStatsReport
// frames piggybacked on the sites' heartbeats; this demo
//
//   1. dumps periodic one-line JSON snapshots to a file
//      (WithMetricsDump — the programmatic twin of --metrics-dump-ms),
//   2. queries Session::Metrics() mid-run and prints the health table,
//   3. prints the tail of the merged protocol trace timeline after Finish,
//   4. exports the merged, skew-corrected cluster timeline as Chrome-trace
//      JSON (WithTraceExport — the programmatic twin of --trace-out); open
//      it in chrome://tracing or ui.perfetto.dev.
//
//   $ ./build/examples/observability_demo [dump-file] [trace-file]
//   $ python3 tools/metrics_text.py observability.metrics
//
// The ctest gate obs.metrics_smoke runs this binary and validates the dump
// with tools/metrics_text.py --check-cluster and the trace JSON with
// --timeline-summary.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bayes/repository.h"
#include "common/metrics.h"
#include "dsgm/dsgm.h"

int main(int argc, char** argv) {
  using namespace dsgm;
  const std::string dump_path = argc > 1 ? argv[1] : "observability.metrics";
  const std::string trace_path = argc > 2 ? argv[2] : "observability_trace.json";
  const BayesianNetwork net = Alarm();
  constexpr int kSites = 4;
  constexpr int64_t kEvents = 100000;

  std::ofstream dump(dump_path, std::ios::trunc);
  if (!dump) {
    std::cerr << "cannot open " << dump_path << " for writing\n";
    return 1;
  }

  auto session = SessionBuilder(net)
                     .WithBackend(Backend::kLocalTcp)
                     .WithStrategy(TrackingStrategy::kUniform)
                     .WithEpsilon(0.05)
                     .WithSites(kSites)
                     .WithSeed(7)
                     .WithHeartbeatInterval(20)   // stats ride the heartbeats
                     .WithMetricsDump(50, &dump)  // one JSON line per 50 ms
                     .WithTraceExport(trace_path)
                     .Build();
  if (!session.ok()) {
    std::cerr << session.status() << "\n";
    return 1;
  }

  // Stream half, read the live health table, stream the rest.
  Status streamed = (*session)->StreamGroundTruth(kEvents / 2);
  if (!streamed.ok()) {
    std::cerr << streamed << "\n";
    return 1;
  }
  const MetricsSnapshot live = (*session)->Metrics();
  std::cout << "mid-run per-site health (" << kSites
            << " TCP sites, one reactor thread):\n";
  for (const SiteHealth& site : live.sites) {
    std::cout << "  site " << site.site << ": "
              << (site.alive ? "alive" : "DEAD")
              << ", heard " << site.heartbeat_age_ms << " ms ago, "
              << site.events_processed << " events, " << site.syncs_sent
              << " syncs, round " << site.rounds_seen << "\n";
  }
  streamed = (*session)->StreamGroundTruth(kEvents - kEvents / 2);
  if (!streamed.ok()) {
    std::cerr << streamed << "\n";
    return 1;
  }

  const auto report = (*session)->Finish();
  if (!report.ok()) {
    std::cerr << report.status() << "\n";
    return 1;
  }

  std::cout << "\nrun finished: " << report->events_processed << " events, "
            << static_cast<int64_t>(report->throughput_events_per_sec)
            << " events/s, " << report->comm.sync_messages
            << " sync messages\n";
  if (const auto* loop =
          report->metrics.FindHistogram("net.reactor.loop_ns")) {
    std::cout << "reactor loop latency: p50 " << loop->stats.p50
              << " ns, p99 " << loop->stats.p99 << " ns over "
              << loop->stats.count << " iterations\n";
  }

  const std::vector<TraceEvent> timeline = MergedTraceTimeline();
  const size_t tail = timeline.size() > 12 ? timeline.size() - 12 : 0;
  std::cout << "\nlast " << timeline.size() - tail
            << " protocol trace events (of " << timeline.size() << "):\n"
            << FormatTraceTimeline(std::vector<TraceEvent>(
                   timeline.begin() + static_cast<long>(tail),
                   timeline.end()));

  std::cout << "\nwrote " << dump_path << " — render it with:\n"
            << "  python3 tools/metrics_text.py " << dump_path << "\n";
  if (!report->trace_path.empty()) {
    std::cout << "wrote " << report->trace_path
              << " — open it in chrome://tracing or ui.perfetto.dev, or:\n"
              << "  python3 tools/metrics_text.py --timeline-summary "
              << report->trace_path << "\n";
  }
  return 0;
}
