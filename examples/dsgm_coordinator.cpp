// Multi-process cluster, coordinator side: a dsgm::Session on the
// local-TCP backend with external sites — listens for `--sites` dsgm_site
// processes, streams `--events` sampled instances to them, runs the
// paper's counter protocol over the wire, and validates its final
// estimates against the sites' exact counts.
//
// Two-terminal quickstart (see README "Transport architecture"):
//
//   $ ./build/examples/dsgm_coordinator --network alarm --sites 2 --port 7700
//   $ ./build/examples/dsgm_site --network alarm --site 0 --port 7700 &
//     ./build/examples/dsgm_site --network alarm --site 1 --port 7700
//
// Exit code is non-zero if --max-rel-error is set and the validation bound
// is violated (used by the ctest multi-process smoke test).

#include <fstream>
#include <iostream>
#include <memory>

#include "bayes/repository.h"
#include "common/flags.h"
#include "common/table.h"
#include "dsgm/dsgm.h"

int main(int argc, char** argv) {
  using namespace dsgm;
  Flags flags;
  flags.DefineString("network", "alarm", "Bayesian network to stream (see bayes/repository.h)");
  flags.DefineString("strategy", "uniform", "exact | baseline | uniform | nonuniform");
  flags.DefineDouble("eps", 0.1, "global approximation factor");
  flags.DefineInt64("sites", 2, "number of site processes to wait for");
  flags.DefineInt64("events", 100000, "training instances to stream");
  flags.DefineInt64("batch-size", 256, "events per dispatch batch");
  flags.DefineInt64("seed", 7, "seed for sampling and routing");
  flags.DefineInt64("port", 7700, "TCP port to listen on (0 = ephemeral)");
  flags.DefineString("port-file", "", "write the bound port to this file (for scripts)");
  flags.DefineString("bind", "127.0.0.1",
                     "listener bind address; 0.0.0.0 accepts sites from other hosts");
  flags.DefineInt64("liveness-timeout-ms", 5000,
                    "fail the run (UNAVAILABLE) if a site sends no traffic — not "
                    "even a heartbeat — for this long; 0 disables liveness");
  flags.DefineInt64("heartbeat-ms", 500,
                    "heartbeat cadence for in-process sites (ignored with external "
                    "dsgm_site processes, which set their own --heartbeat-ms)");
  flags.DefineString("io-backend", "default",
                     "readiness backend for the coordinator's event loops: "
                     "epoll | io_uring | auto (io_uring when the kernel "
                     "supports it, else epoll). 'default' honors the "
                     "DSGM_IO_BACKEND environment variable, falling back to "
                     "epoll");
  flags.DefineDouble("max-rel-error", -1.0,
                     "fail (exit 1) if the max counter relative error exceeds this; "
                     "negative disables the gate");
  flags.DefineInt64("metrics-dump-ms", 0,
                    "emit one JSON metrics snapshot line (counters, latency "
                    "histograms, per-site health) every N ms; 0 disables. "
                    "Render with tools/metrics_text.py");
  flags.DefineString("metrics-dump-file", "",
                     "metrics dump destination (default: stderr)");
  flags.DefineString("trace-out", "",
                     "write the merged, skew-corrected cluster timeline "
                     "(coordinator + every site process) as Chrome-trace JSON "
                     "here at the end of the run; empty disables");
  flags.DefineString("postmortem-dir", "",
                     "directory for the flight recorder: a failed run dumps "
                     "<dir>/dsgm_postmortem.json (failure reason, metrics + "
                     "health table, last trace events); empty disables");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    if (parsed.code() == StatusCode::kNotFound) return 0;  // --help
    std::cerr << parsed << "\n" << flags.Usage(argv[0]);
    return 1;
  }

  const StatusOr<BayesianNetwork> net = NetworkByName(flags.GetString("network"));
  if (!net.ok()) {
    std::cerr << net.status() << "\n";
    return 1;
  }
  const StatusOr<TrackingStrategy> strategy =
      TrackingStrategyFromName(flags.GetString("strategy"));
  if (!strategy.ok()) {
    std::cerr << strategy.status() << "\n";
    return 1;
  }

  IoBackendKind io_backend = IoBackendKind::kDefault;
  if (flags.GetString("io-backend") != "default" &&
      !ParseIoBackendKind(flags.GetString("io-backend"), &io_backend)) {
    std::cerr << "unknown --io-backend '" << flags.GetString("io-backend")
              << "' (want epoll | io_uring | auto | default)\n";
    return 1;
  }

  const int port = static_cast<int>(flags.GetInt64("port"));
  std::cout << "dsgm_coordinator: waiting for " << flags.GetInt64("sites")
            << " site(s) on port " << (port == 0 ? "<ephemeral>" : std::to_string(port))
            << " (network '" << net->name() << "', "
            << flags.GetInt64("events") << " events)...\n";

  std::unique_ptr<std::ofstream> dump_file;
  if (!flags.GetString("metrics-dump-file").empty()) {
    dump_file = std::make_unique<std::ofstream>(
        flags.GetString("metrics-dump-file"), std::ios::trunc);
    if (!*dump_file) {
      std::cerr << "cannot open " << flags.GetString("metrics-dump-file")
                << " for writing\n";
      return 1;
    }
  }

  // Build() blocks until every external site completes its hello handshake.
  const StatusOr<std::unique_ptr<Session>> session =
      SessionBuilder(*net)
          .WithBackend(Backend::kLocalTcp)
          .WithExternalSites()
          .WithStrategy(*strategy)
          .WithEpsilon(flags.GetDouble("eps"))
          .WithSites(static_cast<int>(flags.GetInt64("sites")))
          .WithSeed(static_cast<uint64_t>(flags.GetInt64("seed")))
          .WithBatchSize(static_cast<int>(flags.GetInt64("batch-size")))
          .WithListenPort(port)
          .WithPortFile(flags.GetString("port-file"))
          .WithBindAddress(flags.GetString("bind"))
          .WithLivenessTimeout(static_cast<int>(flags.GetInt64("liveness-timeout-ms")))
          .WithHeartbeatInterval(static_cast<int>(flags.GetInt64("heartbeat-ms")))
          .WithIoBackend(io_backend)
          .WithMetricsDump(static_cast<int>(flags.GetInt64("metrics-dump-ms")),
                           dump_file ? dump_file.get() : nullptr)
          .WithTraceExport(flags.GetString("trace-out"))
          .WithPostmortemDir(flags.GetString("postmortem-dir"))
          .Build();
  if (!session.ok()) {
    std::cerr << "coordinator failed: " << session.status() << "\n";
    return 1;
  }
  const Status streamed = (*session)->StreamGroundTruth(flags.GetInt64("events"));
  if (!streamed.ok()) {
    std::cerr << "coordinator failed: " << streamed << "\n";
    // Finish still runs the teardown AND the flight recorder: with
    // --postmortem-dir its error message names the post-mortem bundle.
    const StatusOr<RunReport> aborted = (*session)->Finish();
    if (!aborted.ok()) {
      std::cerr << "coordinator failed: " << aborted.status() << "\n";
    }
    return 1;
  }
  const StatusOr<RunReport> report = (*session)->Finish();
  if (!report.ok()) {
    std::cerr << "coordinator failed: " << report.status() << "\n";
    return 1;
  }
  if (!report->trace_path.empty()) {
    std::cout << "trace timeline written to " << report->trace_path << "\n";
  }

  TablePrinter table("Multi-process cluster run (" + std::string(ToString(*strategy)) + ")");
  table.SetHeader({"metric", "value"});
  table.AddRow({"events dispatched", FormatCount(report->events_processed)});
  table.AddRow({"runtime (s)", FormatDouble(report->runtime_seconds, 3)});
  table.AddRow({"throughput (events/s)",
                FormatCount(static_cast<int64_t>(report->throughput_events_per_sec))});
  table.AddRow({"wire messages", FormatCount(static_cast<int64_t>(report->comm.wire_messages))});
  table.AddRow({"counter updates", FormatCount(static_cast<int64_t>(report->comm.update_messages))});
  table.AddRow({"TCP bytes up", FormatCount(static_cast<int64_t>(report->transport_bytes_up))});
  table.AddRow({"TCP bytes down", FormatCount(static_cast<int64_t>(report->transport_bytes_down))});
  table.AddRow({"max rel. counter error", FormatDouble(report->max_counter_rel_error, 4)});
  table.Print(std::cout);

  const double bound = flags.GetDouble("max-rel-error");
  if (bound >= 0.0 && report->max_counter_rel_error > bound) {
    std::cerr << "VALIDATION FAILED: max counter relative error "
              << report->max_counter_rel_error << " exceeds bound " << bound << "\n";
    return 1;
  }
  return 0;
}
