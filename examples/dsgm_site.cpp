// Multi-process cluster, site side: serves the public dsgm::ServeSite role
// — connects to a dsgm_coordinator (a Session on the local-TCP backend
// with external sites) over TCP, announces its site id and protocol
// version, and runs the paper's site role — consuming its share of the
// event stream, making Bernoulli reporting decisions, and answering round
// syncs — until the coordinator ends the protocol.
//
// See examples/dsgm_coordinator.cpp for the two-terminal quickstart.

#include <fstream>
#include <iostream>

#include "bayes/repository.h"
#include "common/flags.h"
#include "dsgm/dsgm.h"

int main(int argc, char** argv) {
  using namespace dsgm;
  Flags flags;
  flags.DefineString("network", "alarm",
                     "Bayesian network (must match the coordinator's)");
  flags.DefineInt64("site", 0, "this site's id, in [0, coordinator sites)");
  flags.DefineString("host", "127.0.0.1", "coordinator host");
  flags.DefineInt64("port", 7700, "coordinator port");
  flags.DefineString("port-file", "",
                     "read the port from this file instead of --port");
  flags.DefineInt64("seed", 7, "seed for the site's sampling decisions");
  flags.DefineInt64("connect-timeout-ms", 10000,
                    "how long to retry the initial connect");
  flags.DefineInt64("heartbeat-ms", 500,
                    "liveness heartbeat cadence; keep well below the "
                    "coordinator's --liveness-timeout-ms (0 disables)");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    if (parsed.code() == StatusCode::kNotFound) return 0;  // --help
    std::cerr << parsed << "\n" << flags.Usage(argv[0]);
    return 1;
  }

  const StatusOr<BayesianNetwork> net = NetworkByName(flags.GetString("network"));
  if (!net.ok()) {
    std::cerr << net.status() << "\n";
    return 1;
  }

  SiteServiceConfig config;
  config.site_id = static_cast<int>(flags.GetInt64("site"));
  config.coordinator_host = flags.GetString("host");
  config.coordinator_port = static_cast<int>(flags.GetInt64("port"));
  config.connect_timeout_ms = static_cast<int>(flags.GetInt64("connect-timeout-ms"));
  config.heartbeat_interval_ms = static_cast<int>(flags.GetInt64("heartbeat-ms"));
  // Decorrelate the per-site reporting decisions while keeping runs
  // reproducible from one --seed.
  config.seed = static_cast<uint64_t>(flags.GetInt64("seed")) +
                0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(config.site_id + 1);

  if (!flags.GetString("port-file").empty()) {
    std::ifstream in(flags.GetString("port-file"));
    int port = 0;
    if (!(in >> port)) {
      std::cerr << "cannot read port from " << flags.GetString("port-file") << "\n";
      return 1;
    }
    config.coordinator_port = port;
  }

  std::cout << "dsgm_site " << config.site_id << ": connecting to "
            << config.coordinator_host << ":" << config.coordinator_port
            << " (network '" << net->name() << "')...\n";

  const StatusOr<SiteServiceResult> result = ServeSite(*net, config);
  if (!result.ok()) {
    std::cerr << "site " << config.site_id << " failed: " << result.status() << "\n";
    return 1;
  }
  std::cout << "dsgm_site " << config.site_id << ": done, processed "
            << result->events_processed << " events\n";
  return 0;
}
