// Live cluster demo: runs the threaded site/coordinator backend (one OS
// thread per site, real message queues) on the ALARM network through the
// Session API, and reports runtime, throughput, and communication per
// algorithm — a miniature of the paper's Figures 7-8 EC2 experiment, plus
// the capability the paper leads with: querying the model WHILE the
// cluster is streaming.
//
//   $ ./build/examples/live_cluster

#include <cmath>
#include <iostream>

#include "bayes/repository.h"
#include "common/table.h"
#include "dsgm/dsgm.h"

int main() {
  using namespace dsgm;
  const BayesianNetwork net = Alarm();
  constexpr int kSites = 6;
  constexpr int64_t kEvents = 100000;

  // A live query target: P(first variable = 0), ancestrally closed.
  PartialAssignment probe;
  probe.nodes = {0};
  probe.values = {0};
  const double probe_truth = net.ClosedSubsetProbability(probe);

  std::cout << "Running a " << kSites << "-site threaded cluster on '"
            << net.name() << "' (" << kEvents << " events per run)...\n\n";

  TablePrinter table;
  table.SetHeader({"algorithm", "runtime (s)", "throughput (events/s)",
                   "wire messages", "mid-run query err", "max rel. counter err"});
  for (TrackingStrategy strategy :
       {TrackingStrategy::kExactMle, TrackingStrategy::kBaseline,
        TrackingStrategy::kUniform, TrackingStrategy::kNonUniform}) {
    auto session = SessionBuilder(net)
                       .WithBackend(Backend::kThreads)
                       .WithStrategy(strategy)
                       .WithEpsilon(0.1)
                       .WithSites(kSites)
                       .WithSeed(99)
                       .Build();
    if (!session.ok()) {
      std::cerr << session.status() << "\n";
      return 1;
    }
    // Stream half, query the live model mid-run, stream the rest.
    Status streamed = (*session)->StreamGroundTruth(kEvents / 2);
    if (!streamed.ok()) {
      std::cerr << streamed << "\n";
      return 1;
    }
    const ModelView live = *(*session)->Snapshot();
    const double mid_error =
        std::abs(live.JointProbability(probe) - probe_truth) / probe_truth;
    streamed = (*session)->StreamGroundTruth(kEvents - kEvents / 2);
    if (!streamed.ok()) {
      std::cerr << streamed << "\n";
      return 1;
    }

    const auto report = (*session)->Finish();
    if (!report.ok()) {
      std::cerr << report.status() << "\n";
      return 1;
    }
    table.AddRow({ToString(strategy), FormatDouble(report->runtime_seconds, 3),
                  FormatCount(static_cast<int64_t>(report->throughput_events_per_sec)),
                  FormatCount(static_cast<int64_t>(report->comm.wire_messages)),
                  FormatDouble(mid_error, 4),
                  FormatDouble(report->max_counter_rel_error, 3)});
  }
  table.Print(std::cout);
  std::cout << "\nThe randomized algorithms finish faster because the "
               "coordinator processes\nfar fewer counter updates — and the "
               "mid-run snapshot shows the model was\nalready accurate while "
               "the stream was still flowing.\n";
  return 0;
}
