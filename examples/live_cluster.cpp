// Live cluster demo: runs the threaded site/coordinator implementation
// (one OS thread per site, real message queues) on the ALARM network and
// reports runtime, throughput, and communication for each algorithm —
// a miniature of the paper's Figures 7-8 EC2 experiment.
//
//   $ ./build/examples/live_cluster

#include <iostream>

#include "bayes/repository.h"
#include "cluster/cluster_runner.h"
#include "common/table.h"

int main() {
  using namespace dsgm;
  const BayesianNetwork net = Alarm();
  constexpr int kSites = 6;
  constexpr int64_t kEvents = 100000;

  std::cout << "Running a " << kSites << "-site threaded cluster on '"
            << net.name() << "' (" << kEvents << " events per run)...\n\n";

  TablePrinter table;
  table.SetHeader({"algorithm", "runtime (s)", "throughput (events/s)",
                   "wire messages", "counter updates", "max rel. counter err"});
  for (TrackingStrategy strategy :
       {TrackingStrategy::kExactMle, TrackingStrategy::kBaseline,
        TrackingStrategy::kUniform, TrackingStrategy::kNonUniform}) {
    ClusterConfig config;
    config.tracker.strategy = strategy;
    config.tracker.num_sites = kSites;
    config.tracker.epsilon = 0.1;
    config.tracker.seed = 99;
    config.num_events = kEvents;
    const ClusterResult result = RunCluster(net, config);
    table.AddRow({ToString(strategy), FormatDouble(result.runtime_seconds, 3),
                  FormatCount(static_cast<int64_t>(result.throughput_events_per_sec)),
                  FormatCount(static_cast<int64_t>(result.comm.wire_messages)),
                  FormatCount(static_cast<int64_t>(result.comm.update_messages)),
                  FormatDouble(result.max_counter_rel_error, 3)});
  }
  table.Print(std::cout);
  std::cout << "\nThe randomized algorithms finish faster because the "
               "coordinator processes\nfar fewer counter updates; their "
               "estimates stay within the epsilon band.\n";
  return 0;
}
