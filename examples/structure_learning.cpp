// End-to-end workflow when the graph is NOT given: the paper assumes the
// structure is provided by a domain expert or "learned offline based on a
// suitable sample of the data" (Section III). This example does exactly
// that: (1) collect a modest offline sample, (2) learn a Chow-Liu tree from
// it, (3) hand the learned structure to a Session and learn the parameters
// from the live stream with NONUNIFORM counters (whose Lemma 10
// specialization covers tree networks). The stream comes from the hidden
// truth through a pluggable EventSource — the session's network is the
// LEARNED structure, so StreamGroundTruth would sample the wrong model.
//
//   $ ./build/examples/structure_learning

#include <algorithm>
#include <cmath>
#include <iostream>

#include "bayes/generator.h"
#include "bayes/sampler.h"
#include "bayes/structure.h"
#include "common/check.h"
#include "common/table.h"
#include "dsgm/dsgm.h"

int main() {
  using namespace dsgm;

  // The unknown environment: a 15-variable tree-structured ground truth.
  NetworkSpec spec;
  spec.name = "hidden-truth";
  spec.num_nodes = 15;
  spec.num_edges = 14;  // a tree
  spec.max_parents = 1;
  spec.min_cardinality = 2;
  spec.max_cardinality = 3;
  spec.dirichlet_alpha = 0.3;  // strong dependencies
  StatusOr<BayesianNetwork> truth = GenerateNetwork(spec, 0xcafe);
  DSGM_CHECK(truth.ok()) << truth.status();

  // --- Phase 1: offline structure learning from a 20K-instance sample.
  ForwardSampler sampler(*truth, 1);
  const std::vector<Instance> sample = sampler.SampleMany(20000);
  std::vector<int> cards;
  for (int i = 0; i < truth->num_variables(); ++i) {
    cards.push_back(truth->cardinality(i));
  }
  StatusOr<BayesianNetwork> learned_structure = LearnChowLiuTree(sample, cards);
  DSGM_CHECK(learned_structure.ok()) << learned_structure.status();

  const auto truth_skeleton = UndirectedSkeleton(*truth);
  const auto learned_skeleton = UndirectedSkeleton(*learned_structure);
  int recovered = 0;
  for (const auto& edge : learned_skeleton) {
    recovered += std::binary_search(truth_skeleton.begin(), truth_skeleton.end(), edge);
  }
  std::cout << "Chow-Liu recovered " << recovered << "/" << truth_skeleton.size()
            << " ground-truth edges from a 20K offline sample.\n\n";

  // --- Phase 2: continuous distributed parameter learning on the learned
  //     structure (the session never sees the truth's CPDs — the live
  //     stream arrives through an EventSource sampling the hidden truth).
  auto session = SessionBuilder(*learned_structure)
                     .WithStrategy(TrackingStrategy::kNonUniform)
                     .WithEpsilon(0.1)
                     .WithSites(12)
                     .Build();
  DSGM_CHECK(session.ok()) << session.status();
  auto live_stream = MakeSamplerSource(*truth, /*seed=*/2, /*limit=*/300000);
  DSGM_CHECK((*session)->Drain(live_stream.get()).ok());

  // --- Phase 3: the tracked model approximates the true joint.
  const RunReport report = *(*session)->Finish();
  const ModelView& model = report.model;
  TablePrinter table;
  table.SetHeader({"query", "ground truth", "tracked model", "rel. error"});
  ForwardSampler probe(*truth, 4);
  Instance event;
  for (int q = 0; q < 5; ++q) {
    probe.Sample(&event);
    const double p_truth = truth->JointProbability(event);
    const double p_model = model.JointProbability(event);
    table.AddRow({"sampled assignment #" + std::to_string(q + 1),
                  FormatDouble(p_truth), FormatDouble(p_model),
                  FormatDouble(std::abs(p_model - p_truth) / p_truth, 3)});
  }
  table.Print(std::cout);
  std::cout << "\nCommunication for 300K distributed events: "
            << FormatCount(static_cast<int64_t>(report.comm.TotalMessages()))
            << " messages (exact maintenance would use "
            << FormatCount(300000LL * 2 * truth->num_variables()) << ").\n";
  return 0;
}
