// Sensor-network monitoring: the motivating scenario from the paper's
// introduction. A fleet of highway sensors observes correlated event
// features (duration, scale, weather, congestion, ...); a coordinator
// continuously maintains the joint model and answers "how likely is this
// pattern?" queries in real time, while the model keeps adapting.
//
//   $ ./build/examples/sensor_network
//
// Demonstrates: building a custom network by hand, checkpointed streaming
// with mid-run Snapshot() queries through the Session API, and watching
// the approximation error shrink while communication grows only
// logarithmically.

#include <cmath>
#include <iostream>

#include "bayes/network.h"
#include "common/check.h"
#include "common/table.h"
#include "dsgm/dsgm.h"

namespace {

// Traffic-event model over 7 variables:
//   0 TimeOfDay(4: night/morning/midday/evening)   (root)
//   1 Weather(3: clear/rain/snow)                  (root)
//   2 Congestion(3)   <- TimeOfDay, Weather
//   3 Incident(2)     <- Congestion, Weather
//   4 Duration(3)     <- Incident
//   5 Scale(3)        <- Incident, Congestion
//   6 Diversion(2)    <- Incident
dsgm::BayesianNetwork BuildTrafficNetwork() {
  using namespace dsgm;
  std::vector<Variable> variables = {
      {"TimeOfDay", 4}, {"Weather", 3}, {"Congestion", 3}, {"Incident", 2},
      {"Duration", 3},  {"Scale", 3},   {"Diversion", 2},
  };
  Dag dag(7);
  DSGM_CHECK(dag.AddEdge(0, 2).ok());
  DSGM_CHECK(dag.AddEdge(1, 2).ok());
  DSGM_CHECK(dag.AddEdge(2, 3).ok());
  DSGM_CHECK(dag.AddEdge(1, 3).ok());
  DSGM_CHECK(dag.AddEdge(3, 4).ok());
  DSGM_CHECK(dag.AddEdge(3, 5).ok());
  DSGM_CHECK(dag.AddEdge(2, 5).ok());
  DSGM_CHECK(dag.AddEdge(3, 6).ok());

  // Ground-truth CPDs: skewed Dirichlet draws with a probability floor
  // (a real deployment would not know these; they generate the stream).
  Rng rng(0xbeef);
  std::vector<CpdTable> cpds;
  for (int i = 0; i < 7; ++i) {
    std::vector<int> parent_cards;
    for (int parent : dag.parents(i)) {
      parent_cards.push_back(variables[static_cast<size_t>(parent)].cardinality);
    }
    CpdTable cpd(variables[static_cast<size_t>(i)].cardinality,
                 std::move(parent_cards));
    cpd.FillRandom(rng, /*alpha=*/0.6, /*min_prob=*/0.03);
    cpds.push_back(std::move(cpd));
  }
  StatusOr<BayesianNetwork> net = BayesianNetwork::Create(
      "traffic", std::move(variables), std::move(dag), std::move(cpds));
  DSGM_CHECK(net.ok()) << net.status();
  return std::move(net).value();
}

}  // namespace

int main() {
  using namespace dsgm;
  const BayesianNetwork truth = BuildTrafficNetwork();
  constexpr int kSensors = 25;  // 25 roadside sensor sites.

  auto session = SessionBuilder(truth)
                     .WithStrategy(TrackingStrategy::kNonUniform)
                     .WithEpsilon(0.1)
                     .WithSites(kSensors)
                     .WithSeed(11)
                     .Build();
  DSGM_CHECK(session.ok()) << session.status();

  // The "pattern of interest": a snow-day incident pattern, queried live.
  // {TimeOfDay, Weather, Congestion, Incident} is ancestrally closed.
  PartialAssignment snow_incident;
  snow_incident.nodes = {0, 1, 2, 3};
  snow_incident.values = {1, 2, 2, 1};  // morning, snow, heavy, incident
  const double truth_prob = truth.ClosedSubsetProbability(snow_incident);

  std::cout << "Streaming traffic events from " << kSensors
            << " sensors; querying P(morning, snow, heavy congestion, "
               "incident) as the model learns.\n\n";
  TablePrinter table;
  table.SetHeader({"events seen", "model estimate", "ground truth", "rel. error",
                   "messages", "msgs/event"});

  int64_t streamed = 0;
  for (int64_t checkpoint : {1000, 10000, 100000, 1000000}) {
    // The ground-truth sampler persists inside the session, so each call
    // continues the same stream up to the checkpoint.
    DSGM_CHECK((*session)->StreamGroundTruth(checkpoint - streamed).ok());
    streamed = checkpoint;
    const ModelView model = *(*session)->Snapshot();  // live, mid-stream
    const double estimate = model.JointProbability(snow_incident);
    const double rel_error = std::abs(estimate - truth_prob) / truth_prob;
    const uint64_t messages = model.comm().TotalMessages();
    table.AddRow({FormatCount(checkpoint), FormatDouble(estimate),
                  FormatDouble(truth_prob), FormatDouble(rel_error, 3),
                  FormatCount(static_cast<int64_t>(messages)),
                  FormatDouble(static_cast<double>(messages) /
                                   static_cast<double>(checkpoint),
                               3)});
  }
  table.Print(std::cout);

  std::cout << "\nNote how messages/event falls as the stream grows: heavy "
               "counters go quiet\n(logarithmic communication) while the "
               "estimate keeps converging to the truth.\n";
  return 0;
}
