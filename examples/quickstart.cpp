// Quickstart: learn the parameters of a known-structure Bayesian network
// from a distributed stream with ~100x less communication than exact
// maintenance, and query the model continuously.
//
//   $ ./build/examples/quickstart
//
// Walks through the full public API surface: repository networks, forward
// sampling, the MLE tracker with the NONUNIFORM strategy, joint-probability
// queries, and communication accounting.

#include <cmath>
#include <iostream>

#include "bayes/repository.h"
#include "bayes/sampler.h"
#include "common/table.h"
#include "core/mle_tracker.h"

int main() {
  using namespace dsgm;

  // 1. A Bayesian network structure. Here: the classic 5-variable student
  //    network; its CPDs act as the unknown ground truth we learn from data.
  const BayesianNetwork truth = StudentNetwork();
  std::cout << "Network '" << truth.name() << "': " << truth.num_variables()
            << " variables, " << truth.dag().num_edges() << " edges, "
            << truth.FreeParams() << " free parameters.\n\n";

  // 2. Two trackers on a 10-site distributed stream: the exact-MLE strawman
  //    and the paper's NONUNIFORM algorithm with epsilon = 0.1.
  TrackerConfig exact_config;
  exact_config.strategy = TrackingStrategy::kExactMle;
  exact_config.num_sites = 10;
  MleTracker exact(truth, exact_config);

  TrackerConfig approx_config;
  approx_config.strategy = TrackingStrategy::kNonUniform;
  approx_config.epsilon = 0.1;
  approx_config.num_sites = 10;
  MleTracker approx(truth, approx_config);

  // 3. Stream 500K observations; each event arrives at a random site
  //    (Algorithm 2 runs site-side, counters talk to the coordinator).
  ForwardSampler sampler(truth, /*seed=*/2024);
  Rng router(7);
  Instance event;
  for (int i = 0; i < 500000; ++i) {
    sampler.Sample(&event);
    const int site = static_cast<int>(router.NextBounded(10));
    exact.Observe(event, site);
    approx.Observe(event, site);
  }

  // 4. Query the continuously-maintained model (Algorithm 3).
  const Instance probe = {0, 1, 0, 1, 1};  // easy course, smart student, A...
  std::cout << "P(d0,i1,g0,s1,l1)  ground truth: "
            << FormatDouble(truth.JointProbability(probe)) << "\n"
            << "                   exact MLE:    "
            << FormatDouble(exact.JointProbability(probe)) << "\n"
            << "                   non-uniform:  "
            << FormatDouble(approx.JointProbability(probe)) << "\n\n";

  // Partial queries over ancestrally-closed subsets work too.
  PartialAssignment grades;
  grades.nodes = {0, 1, 2};  // Difficulty, Intelligence, Grade
  grades.values = {0, 1, 0};
  std::cout << "P(d0,i1,g0)        ground truth: "
            << FormatDouble(truth.ClosedSubsetProbability(grades)) << "\n"
            << "                   non-uniform:  "
            << FormatDouble(approx.JointProbability(grades)) << "\n\n";

  // 5. The payoff: communication.
  const double ratio = static_cast<double>(exact.comm().TotalMessages()) /
                       static_cast<double>(approx.comm().TotalMessages());
  std::cout << "Communication for 500K distributed events:\n"
            << "  exact MLE:   " << FormatCount(static_cast<int64_t>(
                                        exact.comm().TotalMessages()))
            << " messages\n"
            << "  non-uniform: " << FormatCount(static_cast<int64_t>(
                                        approx.comm().TotalMessages()))
            << " messages  (" << FormatDouble(ratio, 3) << "x fewer)\n";
  return 0;
}
