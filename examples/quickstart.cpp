// Quickstart: learn the parameters of a known-structure Bayesian network
// from a distributed stream with ~100x less communication than exact
// maintenance, and query the model continuously — through the public
// Session API (include/dsgm/dsgm.h).
//
//   $ ./build/examples/quickstart
//
// Walks through the full surface: SessionBuilder, streaming, mid-run
// Snapshot() queries (the paper's Algorithm 3 QUERY at any time t), the
// final RunReport, and communication accounting.

#include <cmath>
#include <iostream>

#include "bayes/repository.h"
#include "common/table.h"
#include "dsgm/dsgm.h"

int main() {
  using namespace dsgm;

  // 1. A Bayesian network structure. Here: the classic 5-variable student
  //    network; its CPDs act as the unknown ground truth we learn from data.
  const BayesianNetwork truth = StudentNetwork();
  std::cout << "Network '" << truth.name() << "': " << truth.num_variables()
            << " variables, " << truth.dag().num_edges() << " edges, "
            << truth.FreeParams() << " free parameters.\n\n";

  // 2. Two sessions on a 10-site distributed stream: the exact-MLE strawman
  //    and the paper's NONUNIFORM algorithm with epsilon = 0.1. Identical
  //    configs stream identical events, so the comparison is apples to
  //    apples.
  auto exact = SessionBuilder(truth)
                   .WithStrategy(TrackingStrategy::kExactMle)
                   .WithSites(10)
                   .Build();
  auto approx = SessionBuilder(truth)
                    .WithStrategy(TrackingStrategy::kNonUniform)
                    .WithEpsilon(0.1)
                    .WithSites(10)
                    .Build();
  if (!exact.ok() || !approx.ok()) {
    std::cerr << exact.status() << " " << approx.status() << "\n";
    return 1;
  }

  // 3. Stream 500K observations sampled from the ground truth; the session
  //    routes each event to a random site (Algorithm 2 runs site-side,
  //    counters talk to the coordinator).
  if (!(*exact)->StreamGroundTruth(500000).ok() ||
      !(*approx)->StreamGroundTruth(500000).ok()) {
    std::cerr << "streaming failed\n";
    return 1;
  }

  // 4. Query the continuously-maintained model (Algorithm 3). Snapshot()
  //    works at ANY point — here mid-session, before Finish().
  const ModelView exact_view = *(*exact)->Snapshot();
  const ModelView approx_view = *(*approx)->Snapshot();
  const Instance probe = {0, 1, 0, 1, 1};  // easy course, smart student, A...
  std::cout << "P(d0,i1,g0,s1,l1)  ground truth: "
            << FormatDouble(truth.JointProbability(probe)) << "\n"
            << "                   exact MLE:    "
            << FormatDouble(exact_view.JointProbability(probe)) << "\n"
            << "                   non-uniform:  "
            << FormatDouble(approx_view.JointProbability(probe)) << "\n\n";

  // Partial queries over ancestrally-closed subsets work too.
  PartialAssignment grades;
  grades.nodes = {0, 1, 2};  // Difficulty, Intelligence, Grade
  grades.values = {0, 1, 0};
  std::cout << "P(d0,i1,g0)        ground truth: "
            << FormatDouble(truth.ClosedSubsetProbability(grades)) << "\n"
            << "                   non-uniform:  "
            << FormatDouble(approx_view.JointProbability(grades)) << "\n\n";

  // 5. The payoff: communication. Finish() returns the unified report.
  const RunReport exact_report = *(*exact)->Finish();
  const RunReport approx_report = *(*approx)->Finish();
  const double ratio = static_cast<double>(exact_report.comm.TotalMessages()) /
                       static_cast<double>(approx_report.comm.TotalMessages());
  std::cout << "Communication for 500K distributed events:\n"
            << "  exact MLE:   "
            << FormatCount(static_cast<int64_t>(exact_report.comm.TotalMessages()))
            << " messages\n"
            << "  non-uniform: "
            << FormatCount(static_cast<int64_t>(approx_report.comm.TotalMessages()))
            << " messages  (" << FormatDouble(ratio, 3) << "x fewer)\n";
  return 0;
}
