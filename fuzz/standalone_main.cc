// Standalone driver for the fuzz harnesses when the compiler has no
// libFuzzer runtime (GCC builds). It speaks enough of libFuzzer's CLI that
// the CI invocation and the ctest smoke entries work unchanged with either
// driver:
//
//   fuzz_codec_decode [corpus_dir ...] [-runs=N] [-max_total_time=SECONDS]
//                     [-seed=S]  (other -flags are accepted and ignored)
//
// Behavior: replay every corpus file through LLVMFuzzerTestOneInput, then —
// if -runs or -max_total_time asked for it — run a deterministic mutation
// loop (bitflips, byte edits, truncation, extension, splices, interesting
// length prefixes) over the corpus until either bound is reached. Not
// coverage-guided; the point is crash reproduction and cheap smoke-level
// exploration anywhere, with real libFuzzer reserved for clang CI.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

constexpr size_t kMaxInputSize = 1 << 16;

std::vector<uint8_t> ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

/// One mutation step; grows/shrinks/corrupts `input` in place.
void Mutate(dsgm::Rng& rng, const std::vector<std::vector<uint8_t>>& corpus,
            std::vector<uint8_t>* input) {
  switch (rng.NextBounded(7)) {
    case 0:  // Bit flip.
      if (!input->empty()) {
        (*input)[rng.NextBounded(input->size())] ^=
            static_cast<uint8_t>(1u << rng.NextBounded(8));
      }
      break;
    case 1:  // Overwrite a byte.
      if (!input->empty()) {
        (*input)[rng.NextBounded(input->size())] =
            static_cast<uint8_t>(rng.Next());
      }
      break;
    case 2:  // Insert a random byte.
      if (input->size() < kMaxInputSize) {
        input->insert(input->begin() +
                          static_cast<std::ptrdiff_t>(
                              rng.NextBounded(input->size() + 1)),
                      static_cast<uint8_t>(rng.Next()));
      }
      break;
    case 3:  // Truncate.
      if (!input->empty()) {
        input->resize(rng.NextBounded(input->size()));
      }
      break;
    case 4:  // Append random tail.
      for (size_t i = 0, n = 1 + rng.NextBounded(16);
           i < n && input->size() < kMaxInputSize; ++i) {
        input->push_back(static_cast<uint8_t>(rng.Next()));
      }
      break;
    case 5:  // Splice a random window of another corpus entry.
      if (!corpus.empty()) {
        const std::vector<uint8_t>& other =
            corpus[rng.NextBounded(corpus.size())];
        if (!other.empty()) {
          const size_t from = rng.NextBounded(other.size());
          const size_t len = 1 + rng.NextBounded(other.size() - from);
          const size_t at = rng.NextBounded(input->size() + 1);
          input->insert(
              input->begin() + static_cast<std::ptrdiff_t>(at),
              other.begin() + static_cast<std::ptrdiff_t>(from),
              other.begin() + static_cast<std::ptrdiff_t>(from + len));
          if (input->size() > kMaxInputSize) input->resize(kMaxInputSize);
        }
      }
      break;
    default:  // Plant an interesting u32 (length-prefix tampering).
      if (input->size() >= 4) {
        static constexpr uint32_t kInteresting[] = {
            0,          1,          0x7f,       0x80,       0xff,
            0x100,      0xffff,     0x10000,    0x3fffffff, 0x40000000,
            0x04000000, 0x04000001, 0x7fffffff, 0xffffffff};
        const uint32_t value =
            kInteresting[rng.NextBounded(sizeof(kInteresting) /
                                         sizeof(kInteresting[0]))];
        const size_t at = rng.NextBounded(input->size() - 3);
        for (int i = 0; i < 4; ++i) {
          (*input)[at + static_cast<size_t>(i)] =
              static_cast<uint8_t>(value >> (8 * i));
        }
      }
      break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  int64_t runs = -1;
  int64_t max_total_time = -1;
  uint64_t seed = 0x5eedf00dULL;
  std::vector<std::filesystem::path> corpus_paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-runs=", 0) == 0) {
      runs = std::atoll(arg.c_str() + 6);
    } else if (arg.rfind("-max_total_time=", 0) == 0) {
      max_total_time = std::atoll(arg.c_str() + 16);
    } else if (arg.rfind("-seed=", 0) == 0) {
      seed = static_cast<uint64_t>(std::atoll(arg.c_str() + 6));
    } else if (!arg.empty() && arg[0] == '-') {
      // libFuzzer flag with no standalone equivalent (-dict=, -jobs=, ...).
      std::fprintf(stderr, "standalone driver: ignoring %s\n", arg.c_str());
    } else {
      corpus_paths.emplace_back(arg);
    }
  }

  // Replay the corpus.
  std::vector<std::vector<uint8_t>> corpus;
  for (const auto& path : corpus_paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(path)) {
        if (entry.is_regular_file()) corpus.push_back(ReadFile(entry.path()));
      }
    } else if (std::filesystem::is_regular_file(path, ec)) {
      corpus.push_back(ReadFile(path));
    }
  }
  for (const auto& input : corpus) {
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }
  std::fprintf(stderr, "standalone driver: replayed %zu corpus inputs\n",
               corpus.size());

  // Mutation loop, bounded by whichever of -runs / -max_total_time is set.
  if (runs < 0 && max_total_time < 0) return 0;
  if (runs < 0) runs = INT64_MAX;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::seconds(max_total_time < 0 ? INT64_MAX / 2
                                              : max_total_time);
  dsgm::Rng rng(seed);
  std::vector<uint8_t> input;
  int64_t executed = 0;
  for (; executed < runs; ++executed) {
    if ((executed & 0xff) == 0 &&
        std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    if (corpus.empty() || rng.NextBounded(8) == 0) {
      input.clear();
    } else {
      input = corpus[rng.NextBounded(corpus.size())];
    }
    const uint64_t mutations = 1 + rng.NextBounded(8);
    for (uint64_t m = 0; m < mutations; ++m) Mutate(rng, corpus, &input);
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }
  std::fprintf(stderr, "standalone driver: executed %lld mutated runs\n",
               static_cast<long long>(executed));
  return 0;
}
