// Adversarial decompressor harness: raw attacker bytes go straight into
// LzDecompress, the routine every coordinator runs on payloads it has NOT
// produced itself. The declared size comes from the input too (first two
// bytes, little-endian), so the fuzzer controls both the block and the
// bound it is checked against. Oracles: never crash, never read or write
// outside the declared window, and any ACCEPTED block must produce exactly
// the declared byte count and survive a re-compress / re-decompress round
// trip (a decoder that accepts garbage the compressor cannot reproduce is
// a spec divergence even when it is memory-safe).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "net/compress.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace dsgm;
  if (size < 2) return 0;
  // 0..65535 keeps the per-exec cost bounded while covering every
  // interesting boundary (0, the 15/255 length-nibble edges, > block size).
  const size_t declared = static_cast<size_t>(data[0]) |
                          (static_cast<size_t>(data[1]) << 8);
  std::vector<uint8_t> out;
  const Status status = LzDecompress(data + 2, size - 2, declared, &out);
  if (!status.ok()) return 0;

  DSGM_CHECK_EQ(out.size(), declared)
      << "accepted block decoded to the wrong size";
  std::vector<uint8_t> repacked;
  LzCompress(out.data(), out.size(), &repacked);
  std::vector<uint8_t> again;
  DSGM_CHECK(
      LzDecompress(repacked.data(), repacked.size(), out.size(), &again).ok())
      << "re-compress of an accepted block was rejected";
  DSGM_CHECK(again == out) << "accepted block not stable across round trip";
  return 0;
}
