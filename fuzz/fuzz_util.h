// Shared helpers for the dsgm fuzz harnesses.
//
// ByteStream turns the fuzzer's raw input into a decision stream for the
// structure-aware harnesses (reads return zeros once the input is
// exhausted, so every prefix of an input is itself a valid input — the
// property libFuzzer's mutator exploits). FramesEquivalent is the bit-exact
// structural equality the round-trip assertions need: wire.h's operator==
// is NaN-hostile on RoundAdvance::probability, and a fuzzer WILL synthesize
// NaN float bits.

#ifndef DSGM_FUZZ_FUZZ_UTIL_H_
#define DSGM_FUZZ_FUZZ_UTIL_H_

#include <cstdint>
#include <cstring>

#include "net/codec.h"

namespace dsgm {
namespace fuzz {

/// Sequential reader over the fuzzer input. Never fails: reads past the end
/// return zero, so harness control flow depends only on bytes that exist.
class ByteStream {
 public:
  ByteStream(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool empty() const { return offset_ >= size_; }
  size_t remaining() const { return offset_ < size_ ? size_ - offset_ : 0; }

  uint8_t NextByte() { return offset_ < size_ ? data_[offset_++] : 0; }

  uint32_t NextU32() {
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<uint32_t>(NextByte()) << (8 * i);
    }
    return value;
  }

  uint64_t NextU64() {
    return static_cast<uint64_t>(NextU32()) |
           (static_cast<uint64_t>(NextU32()) << 32);
  }

  int32_t NextI32() { return static_cast<int32_t>(NextU32()); }
  int64_t NextI64() { return static_cast<int64_t>(NextU64()); }

  /// Arbitrary float bits — including NaN and infinities.
  float NextFloat() {
    const uint32_t bits = NextU32();
    float value = 0.0f;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t offset_ = 0;
};

/// Bit-exact float comparison (NaN == NaN, -0.0 != +0.0): the codec
/// transports float *bits*, so that is the equality a round-trip preserves.
inline bool BitEqual(float a, float b) {
  uint32_t abits = 0;
  uint32_t bbits = 0;
  std::memcpy(&abits, &a, sizeof(abits));
  std::memcpy(&bbits, &b, sizeof(bbits));
  return abits == bbits;
}

/// Structural equality on the member the frame's type selects, bit-exact on
/// floats. The other union members are scratch and deliberately ignored.
inline bool FramesEquivalent(const Frame& a, const Frame& b) {
  if (a.type != b.type) return false;
  switch (a.type) {
    case FrameType::kUpdateBundle:
      return a.bundle == b.bundle;
    case FrameType::kRoundAdvance:
      return a.advance.counter == b.advance.counter &&
             a.advance.round == b.advance.round &&
             BitEqual(a.advance.probability, b.advance.probability);
    case FrameType::kEventBatch:
      return a.batch == b.batch;
    case FrameType::kChannelClose:
      return a.channel == b.channel;
    case FrameType::kHello:
      return a.site == b.site && a.protocol_version == b.protocol_version;
    case FrameType::kHeartbeat:
      return a.site == b.site && a.hb == b.hb;
    case FrameType::kStatsReport:
      return a.stats == b.stats;
    case FrameType::kTraceChunk:
      return a.trace == b.trace;
  }
  return false;
}

}  // namespace fuzz
}  // namespace dsgm

#endif  // DSGM_FUZZ_FUZZ_UTIL_H_
