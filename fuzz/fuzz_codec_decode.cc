// Byte-level decoder harness: the two codec entry points must never crash
// on arbitrary bytes, and any input they ACCEPT must survive a re-encode /
// re-decode round trip unchanged. The second half is the stronger oracle:
// it catches decoders that accept garbage into out-of-range fields the
// encoder then cannot reproduce, not just memory errors.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "fuzz_util.h"
#include "net/codec.h"

namespace dsgm {
namespace {

/// Re-encodes an accepted frame and checks the decoder reads it back
/// identically (and consumes every byte it produced).
void CheckRoundTripStable(const Frame& frame) {
  std::vector<uint8_t> bytes;
  AppendFrame(frame, &bytes);
  Frame again;
  size_t consumed = 0;
  DSGM_CHECK(DecodeFrame(bytes.data(), bytes.size(), &again, &consumed).ok())
      << "re-encode of an accepted frame was rejected";
  DSGM_CHECK_EQ(consumed, bytes.size());
  DSGM_CHECK(fuzz::FramesEquivalent(frame, again))
      << "accepted frame changed across encode/decode";
}

}  // namespace
}  // namespace dsgm

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace dsgm;
  // Length-prefixed entry point — what the transports' stream parsers use.
  Frame frame;
  size_t consumed = 0;
  if (DecodeFrame(data, size, &frame, &consumed).ok()) {
    DSGM_CHECK_LE(consumed, size);
    DSGM_CHECK_GE(consumed, size_t{4});
    CheckRoundTripStable(frame);
  }
  // Payload-only entry point — the bytes after a believed-good prefix.
  Frame payload_frame;
  if (DecodeFramePayload(data, size, &payload_frame).ok()) {
    CheckRoundTripStable(payload_frame);
  }
  return 0;
}
