// Stateful protocol-stream harness: arbitrary bytes are fed — in ragged
// chunks, to exercise reassembly — into a ProtocolStreamChecker, the same
// spec-table validator the transports consult. Invariants checked per run:
// Append never crashes, an error is sticky (a stream never "un-violates"),
// the accepted-frame count is monotonic, and a violation leaves the state
// machine in kClosed.
//
// Input format: byte 0 selects the receive direction; the rest is the wire
// stream.

#include <cstddef>
#include <cstdint>

#include "common/check.h"
#include "net/protocol_spec.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace dsgm;
  if (size == 0) return 0;
  const ProtocolDirection direction =
      (data[0] & 1) ? ProtocolDirection::kCoordinatorToSite
                    : ProtocolDirection::kSiteToCoordinator;
  ProtocolStreamChecker checker(direction);

  // Fibonacci-ish chunk sizes: resumption across every buffer boundary
  // without burning input bytes on chunking decisions.
  static constexpr size_t kChunks[] = {1, 2, 3, 5, 8, 13, 21, 34};
  size_t offset = 1;
  size_t chunk_index = data[0] % 8;
  bool failed = false;
  uint64_t accepted_before = 0;
  while (offset < size) {
    size_t chunk = kChunks[chunk_index];
    chunk_index = (chunk_index + 1) % 8;
    if (chunk > size - offset) chunk = size - offset;
    const Status status = checker.Append(data + offset, chunk);
    offset += chunk;

    DSGM_CHECK_GE(checker.frames_accepted(), accepted_before)
        << "accepted-frame count went backwards";
    accepted_before = checker.frames_accepted();
    if (failed) {
      // Sticky: once a stream is condemned, nothing redeems it.
      DSGM_CHECK(!status.ok()) << "stream checker forgot a violation";
    }
    if (!status.ok()) {
      failed = true;
      DSGM_CHECK(checker.conformance().state() == ProtocolState::kClosed)
          << "violation left the state machine open";
      DSGM_CHECK_GE(checker.conformance().violations(), uint64_t{1});
    }
  }
  return 0;
}
