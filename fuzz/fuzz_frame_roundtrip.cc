// Structure-aware round-trip harness: the input is a decision stream that
// builds a structurally VALID frame of any of the seven wire types, which
// is then encoded and decoded back. Unlike fuzz_codec_decode (which mostly
// explores the decoder's reject paths), every iteration here exercises the
// encoder and the decoder's accept path with hostile field values —
// INT32_MIN sites, NaN probabilities, maximal counter deltas — so the
// round-trip oracle bites on every single run.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "fuzz_util.h"
#include "net/codec.h"
#include "net/wire.h"

namespace dsgm {
namespace {

using fuzz::ByteStream;

// Bounded so one iteration stays cheap and AppendFrame's kMaxFramePayload
// CHECK cannot trip on a legitimately built frame.
constexpr size_t kMaxReports = 4096;
constexpr size_t kMaxValues = 8192;

Frame BuildArbitraryValidFrame(ByteStream* stream) {
  switch (stream->NextByte() % 7) {
    case 0: {
      UpdateBundle bundle;
      bundle.kind = static_cast<UpdateBundle::Kind>(stream->NextByte() % 4);
      bundle.site = stream->NextI32();
      bundle.round = stream->NextI32();
      const size_t reports = stream->NextU32() % (kMaxReports + 1);
      bundle.reports.reserve(reports);
      for (size_t i = 0; i < reports; ++i) {
        bundle.reports.push_back(
            CounterReport{stream->NextI64(), stream->NextU32()});
      }
      return MakeFrame(std::move(bundle));
    }
    case 1: {
      RoundAdvance advance;
      advance.counter = stream->NextI64();
      advance.round = stream->NextI32();
      advance.probability = stream->NextFloat();  // NaN/inf included.
      return MakeFrame(advance);
    }
    case 2: {
      EventBatch batch;
      batch.num_events = stream->NextI32() & INT32_MAX;  // Encoder contract: >= 0.
      const size_t values = stream->NextU32() % (kMaxValues + 1);
      batch.values.reserve(values);
      for (size_t i = 0; i < values; ++i) {
        batch.values.push_back(stream->NextI32());
      }
      return MakeFrame(std::move(batch));
    }
    case 3:
      // The codec only round-trips the three data-channel tags.
      return MakeChannelClose(
          static_cast<FrameType>(1 + stream->NextByte() % 3));
    case 4: {
      Frame hello = MakeHello(stream->NextI32());
      hello.protocol_version = stream->NextByte();  // Codec carries any rev.
      return hello;
    }
    case 5:
      return MakeHeartbeat(stream->NextI32());
    default: {
      SiteStatsReport stats;
      stats.site = stream->NextI32();
      stats.events_processed = stream->NextI64() & INT64_MAX;  // Contract: >= 0.
      stats.updates_sent = stream->NextU64();
      stats.syncs_sent = stream->NextU64();
      stats.rounds_seen = stream->NextU64();
      stats.heartbeats_sent = stream->NextU64();
      return MakeStatsReport(stats);
    }
  }
}

}  // namespace
}  // namespace dsgm

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace dsgm;
  fuzz::ByteStream stream(data, size);
  const Frame original = BuildArbitraryValidFrame(&stream);

  std::vector<uint8_t> bytes;
  AppendFrame(original, &bytes);

  Frame decoded;
  size_t consumed = 0;
  DSGM_CHECK(DecodeFrame(bytes.data(), bytes.size(), &decoded, &consumed).ok())
      << "decoder rejected a frame the encoder produced";
  DSGM_CHECK_EQ(consumed, bytes.size());
  DSGM_CHECK(fuzz::FramesEquivalent(original, decoded))
      << "frame changed across encode/decode";

  // The payload-only entry point must agree with the framed one.
  Frame payload_decoded;
  DSGM_CHECK(
      DecodeFramePayload(bytes.data() + 4, bytes.size() - 4, &payload_decoded)
          .ok());
  DSGM_CHECK(fuzz::FramesEquivalent(original, payload_decoded));
  return 0;
}
