// Structure-aware round-trip harness: the input is a decision stream that
// builds a structurally VALID frame of any of the eight wire types, which
// is then encoded and decoded back. Unlike fuzz_codec_decode (which mostly
// explores the decoder's reject paths), every iteration here exercises the
// encoder and the decoder's accept path with hostile field values —
// INT32_MIN sites, NaN probabilities, maximal counter deltas, trace-event
// timestamp deltas that wrap int64 — so the round-trip oracle bites on
// every single run.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "fuzz_util.h"
#include "net/codec.h"
#include "net/wire.h"

namespace dsgm {
namespace {

using fuzz::ByteStream;

// Bounded so one iteration stays cheap and AppendFrame's kMaxFramePayload
// CHECK cannot trip on a legitimately built frame.
constexpr size_t kMaxReports = 4096;
constexpr size_t kMaxValues = 8192;
constexpr size_t kMaxTraceEvents = 4096;

Frame BuildArbitraryValidFrame(ByteStream* stream) {
  switch (stream->NextByte() % 8) {
    case 0: {
      UpdateBundle bundle;
      bundle.kind = static_cast<UpdateBundle::Kind>(stream->NextByte() % 4);
      bundle.site = stream->NextI32();
      bundle.round = stream->NextI32();
      const size_t reports = stream->NextU32() % (kMaxReports + 1);
      bundle.reports.reserve(reports);
      for (size_t i = 0; i < reports; ++i) {
        bundle.reports.push_back(
            CounterReport{stream->NextI64(), stream->NextU32()});
      }
      return MakeFrame(std::move(bundle));
    }
    case 1: {
      RoundAdvance advance;
      advance.counter = stream->NextI64();
      advance.round = stream->NextI32();
      advance.probability = stream->NextFloat();  // NaN/inf included.
      return MakeFrame(advance);
    }
    case 2: {
      EventBatch batch;
      batch.num_events = stream->NextI32() & INT32_MAX;  // Encoder contract: >= 0.
      const size_t values = stream->NextU32() % (kMaxValues + 1);
      batch.values.reserve(values);
      for (size_t i = 0; i < values; ++i) {
        batch.values.push_back(stream->NextI32());
      }
      return MakeFrame(std::move(batch));
    }
    case 3:
      // The codec only round-trips the three data-channel tags.
      return MakeChannelClose(
          static_cast<FrameType>(1 + stream->NextByte() % 3));
    case 4: {
      Frame hello = MakeHello(stream->NextI32());
      hello.protocol_version = stream->NextByte();  // Codec carries any rev.
      return hello;
    }
    case 5: {
      // v4 heartbeats carry three clock samples; arbitrary int64 values
      // (including the zeros of the "no echo yet" state) must round-trip.
      HeartbeatTimestamps hb;
      hb.send_nanos = stream->NextI64();
      hb.echo_nanos = stream->NextI64();
      hb.echo_recv_nanos = stream->NextI64();
      return MakeHeartbeat(stream->NextI32(), hb);
    }
    case 6: {
      SiteStatsReport stats;
      stats.site = stream->NextI32();
      stats.events_processed = stream->NextI64() & INT64_MAX;  // Contract: >= 0.
      stats.updates_sent = stream->NextU64();
      stats.syncs_sent = stream->NextU64();
      stats.rounds_seen = stream->NextU64();
      stats.heartbeats_sent = stream->NextU64();
      return MakeStatsReport(stats);
    }
    default: {
      TraceChunk trace;
      trace.site = stream->NextI32();
      trace.first_seq = stream->NextU64();
      const size_t events = stream->NextU32() % (kMaxTraceEvents + 1);
      trace.events.reserve(events);
      for (size_t i = 0; i < events; ++i) {
        TraceEvent event;
        event.t_nanos = stream->NextI64();  // Deltas wrap unsigned: any pair legal.
        // Only valid type tags (0..kAlert) round-trip; the decoder rejects
        // the rest by design (fuzz_codec_decode owns that reject path).
        event.type = static_cast<TraceEventType>(
            stream->NextByte() %
            (static_cast<uint8_t>(TraceEventType::kAlert) + 1));
        event.site = stream->NextI32();
        event.arg = stream->NextI64();
        trace.events.push_back(event);
      }
      return MakeTraceChunk(std::move(trace));
    }
  }
}

}  // namespace
}  // namespace dsgm

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace dsgm;
  fuzz::ByteStream stream(data, size);
  const Frame original = BuildArbitraryValidFrame(&stream);

  std::vector<uint8_t> bytes;
  AppendFrame(original, &bytes);

  Frame decoded;
  size_t consumed = 0;
  DSGM_CHECK(DecodeFrame(bytes.data(), bytes.size(), &decoded, &consumed).ok())
      << "decoder rejected a frame the encoder produced";
  DSGM_CHECK_EQ(consumed, bytes.size());
  DSGM_CHECK(fuzz::FramesEquivalent(original, decoded))
      << "frame changed across encode/decode";

  // The payload-only entry point must agree with the framed one.
  Frame payload_decoded;
  DSGM_CHECK(
      DecodeFramePayload(bytes.data() + 4, bytes.size() - 4, &payload_decoded)
          .ok());
  DSGM_CHECK(fuzz::FramesEquivalent(original, payload_decoded));
  return 0;
}
