// Reactor reassembly harness: arbitrary bytes arrive at a REAL
// ReactorConnection over a socketpair, in ragged chunks, so the fuzzer
// exercises the loop-thread parse path itself — read_buffer_ growth,
// parse_offset_ resumption, pending-frame redelivery under inbox
// backpressure, conformance violations and the EOF/error EndRead paths —
// not a model of it. fuzz_protocol_stream checks the spec table; this one
// checks the transport that consults it, with the sanitizers watching.
//
// Input format: byte 0 picks the receive direction (bit 0), the negotiated
// wire version (bit 1: v4 vs v5 — v5-only traffic at v4 must be a
// violation, never a crash) and the chunk phase; the rest is the stream.
//
// The oracle is memory safety plus clean teardown. Liveness is a backstop
// deadline only: popping the inboxes frees space, which resumes a paused
// read, so a full inbox cannot wedge the parser forever.

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/check.h"
#include "net/codec.h"
#include "net/protocol_spec.h"
#include "net/reactor.h"
#include "net/reactor_transport.h"
#include "net/tcp_socket.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace dsgm;
  if (size == 0) return 0;
  int fds[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return 0;

  Reactor reactor;
  reactor.Start();

  std::atomic<bool> read_end{false};
  ReactorConnection::Options options;
  options.receive_direction = (data[0] & 1)
                                  ? ProtocolDirection::kCoordinatorToSite
                                  : ProtocolDirection::kSiteToCoordinator;
  options.negotiated_version = (data[0] & 2) ? uint8_t{4} : kProtocolVersion;
  options.on_read_end = [&read_end] {
    read_end.store(true, std::memory_order_release);
  };
  ReactorConnection connection(&reactor, TcpSocket(fds[0]), /*site=*/0,
                               options);
  connection.Start();

  // Feed the stream in Fibonacci-ish chunks (same scheme as
  // fuzz_protocol_stream) so every frame boundary lands mid-chunk
  // somewhere. A send error just means the connection already dropped the
  // peer (conformance violation) — that is a valid outcome, keep going.
  TcpSocket peer(fds[1]);
  static constexpr size_t kChunks[] = {1, 2, 3, 5, 8, 13, 21, 34};
  size_t offset = 1;
  size_t chunk_index = data[0] % 8;
  while (offset < size) {
    size_t chunk = kChunks[chunk_index];
    chunk_index = (chunk_index + 1) % 8;
    if (chunk > size - offset) chunk = size - offset;
    if (!peer.SendAll(data + offset, chunk).ok()) break;
    offset += chunk;
  }
  peer.ShutdownBoth();

  std::vector<EventBatch> events;
  std::vector<RoundAdvance> advances;
  std::vector<UpdateBundle> bundles;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!read_end.load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() < deadline) {
    size_t drained = 0;
    events.clear();
    advances.clear();
    bundles.clear();
    drained += connection.events()->TryPopBatch(&events, 64);
    drained += connection.commands()->TryPopBatch(&advances, 64);
    drained += connection.updates()->TryPopBatch(&bundles, 64);
    if (drained == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  DSGM_CHECK(read_end.load(std::memory_order_acquire))
      << "read side neither finished nor failed within the backstop";

  // Owner teardown contract: stop the reactor FIRST, then shut the
  // connection down single-threaded.
  reactor.Stop();
  connection.ShutdownFromOwner();
  return 0;
}
