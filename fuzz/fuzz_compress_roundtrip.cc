// Compressor round-trip harness: for ANY input bytes, LzCompress must
// produce a block within LzCompressBound that LzDecompress restores
// bit-exactly. This is the property that makes the kCompressed envelope
// safe to enable by default — a compressor bug here silently corrupts
// event batches in flight, which no memory sanitizer would flag.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.h"
#include "net/compress.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace dsgm;
  std::vector<uint8_t> packed;
  LzCompress(data, size, &packed);
  DSGM_CHECK_LE(packed.size(), LzCompressBound(size))
      << "compressed block exceeds LzCompressBound";
  DSGM_CHECK_GE(packed.size(), size_t{1})
      << "a block is never empty (terminal sequence is mandatory)";

  std::vector<uint8_t> restored;
  const Status status = LzDecompress(packed.data(), packed.size(), size,
                                     &restored);
  DSGM_CHECK(status.ok()) << "own output rejected: " << status;
  DSGM_CHECK_EQ(restored.size(), size);
  DSGM_CHECK(size == 0 || std::memcmp(restored.data(), data, size) == 0)
      << "round trip changed the payload";

  // Decompression must APPEND (the codec decodes envelopes into buffers
  // that already hold earlier frames), so re-run with a dirty prefix.
  std::vector<uint8_t> dirty = {0xde, 0xad, 0xbe, 0xef};
  DSGM_CHECK(LzDecompress(packed.data(), packed.size(), size, &dirty).ok());
  DSGM_CHECK_EQ(dirty.size(), size + 4);
  DSGM_CHECK(size == 0 || std::memcmp(dirty.data() + 4, data, size) == 0)
      << "append-mode decompression diverged from fresh-buffer mode";
  return 0;
}
