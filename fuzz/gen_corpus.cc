// Regenerates the committed seed corpora under fuzz/corpus/.
//
//   fuzz_gen_corpus [output_root]   (default: ./corpus)
//
// The seeds are deterministic, reproducing the exact generator recipes of
// codec_test.cc's RandomizedFuzzNeverCrashes (Rng(777) random buffers) and
// BitflipFuzzOnValidFrames (Rng(31337) flips on a pristine sync bundle) —
// the gtest loops stay as cheap always-on regression sweeps, while the same
// inputs seed the coverage-guided harnesses here — plus one valid encoding
// of every frame type, truncation ladders, and legal/violating/ malformed
// protocol streams for the stateful harness.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "net/codec.h"
#include "net/compress.h"
#include "net/protocol_spec.h"
#include "net/wire.h"

namespace dsgm {
namespace {

namespace fs = std::filesystem;

void WriteSeed(const fs::path& dir, const std::string& name,
               const std::vector<uint8_t>& bytes) {
  std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
  DSGM_CHECK(out.good()) << "cannot write" << (dir / name).string();
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

std::vector<uint8_t> Encode(const Frame& frame) {
  std::vector<uint8_t> bytes;
  AppendFrame(frame, &bytes);
  return bytes;
}

/// One representative valid frame per wire type, with non-trivial fields.
std::vector<Frame> RepresentativeFrames() {
  UpdateBundle bundle;
  bundle.kind = UpdateBundle::Kind::kSync;
  bundle.site = 2;
  bundle.round = 4;
  for (int64_t c = 0; c < 50; ++c) {
    bundle.reports.push_back(CounterReport{c * 3, static_cast<uint32_t>(c)});
  }
  RoundAdvance advance;
  advance.counter = 123456789;
  advance.round = 7;
  advance.probability = 0.25f;
  EventBatch batch;
  batch.num_events = 3;
  batch.values = {0, 1, 2, 1, 0, 2, 2, 1, 0};
  SiteStatsReport stats;
  stats.site = 1;
  stats.events_processed = 100000;
  stats.updates_sent = 4096;
  stats.syncs_sent = 17;
  stats.rounds_seen = 17;
  stats.heartbeats_sent = 250;
  HeartbeatTimestamps hb;
  hb.send_nanos = 1'000'000'000;
  hb.echo_nanos = 999'000'000;
  hb.echo_recv_nanos = 999'500'000;
  TraceChunk trace;
  trace.site = 1;
  trace.first_seq = 4096;
  trace.events.push_back(TraceEvent{1'000'000, TraceEventType::kHeartbeat, 1, 7});
  trace.events.push_back(TraceEvent{900'000, TraceEventType::kSyncMessage, -1, -3});
  trace.events.push_back(TraceEvent{1'100'000, TraceEventType::kAlert, 0, 2});
  return {MakeFrame(std::move(bundle)),
          MakeFrame(advance),
          MakeFrame(std::move(batch)),
          MakeChannelClose(FrameType::kUpdateBundle),
          MakeHello(3),
          MakeHeartbeat(3, hb),
          MakeStatsReport(stats),
          MakeTraceChunk(std::move(trace))};
}

void GenCodecDecode(const fs::path& dir) {
  const std::vector<Frame> frames = RepresentativeFrames();
  for (size_t i = 0; i < frames.size(); ++i) {
    WriteSeed(dir, "valid-type" + std::to_string(i + 1) + ".bin",
              Encode(frames[i]));
  }
  // Truncation ladder on the richest frame (the sync bundle).
  const std::vector<uint8_t> pristine = Encode(frames[0]);
  for (size_t keep : {size_t{3}, size_t{4}, size_t{5}, size_t{16},
                      pristine.size() / 2, pristine.size() - 1}) {
    WriteSeed(dir, "trunc-" + std::to_string(keep) + ".bin",
              std::vector<uint8_t>(pristine.begin(),
                                   pristine.begin() +
                                       static_cast<std::ptrdiff_t>(keep)));
  }
  // codec_test.cc RandomizedFuzzNeverCrashes recipe: Rng(777), 2000 random
  // buffers of length < 64. Committing every 50th keeps the corpus small
  // while staying bit-identical to the gtest sweep.
  {
    Rng rng(777);
    std::vector<uint8_t> buffer;
    for (int iteration = 0; iteration < 2000; ++iteration) {
      buffer.clear();
      const size_t size = rng.NextBounded(64);
      for (size_t i = 0; i < size; ++i) {
        buffer.push_back(static_cast<uint8_t>(rng.Next()));
      }
      if (iteration % 50 == 0) {
        WriteSeed(dir, "rand777-" + std::to_string(iteration) + ".bin",
                  buffer);
      }
    }
  }
  // codec_test.cc BitflipFuzzOnValidFrames recipe: Rng(31337), 1-4 flips on
  // the pristine sync bundle. First 40 of the 2000 iterations.
  {
    Rng rng(31337);
    for (int iteration = 0; iteration < 40; ++iteration) {
      std::vector<uint8_t> corrupted = pristine;
      const size_t flips = 1 + rng.NextBounded(4);
      for (size_t f = 0; f < flips; ++f) {
        const size_t at = rng.NextBounded(corrupted.size());
        corrupted[at] ^= static_cast<uint8_t>(1u << rng.NextBounded(8));
      }
      WriteSeed(dir, "flip31337-" + std::to_string(iteration) + ".bin",
                corrupted);
    }
  }
}

void GenFrameRoundtrip(const fs::path& dir) {
  // The round-trip harness reads its input as a decision stream (first byte
  // selects the frame type). One directed seed per type...
  for (uint8_t type = 0; type < 8; ++type) {
    std::vector<uint8_t> seed = {type};
    for (int i = 0; i < 48; ++i) {
      seed.push_back(static_cast<uint8_t>((i * 37 + type) & 0xff));
    }
    WriteSeed(dir, "type" + std::to_string(type) + ".bin", seed);
  }
  // ...plus random decision streams of varied length.
  Rng rng(4242);
  for (int i = 0; i < 32; ++i) {
    std::vector<uint8_t> seed;
    const size_t size = 1 + rng.NextBounded(256);
    for (size_t b = 0; b < size; ++b) {
      seed.push_back(static_cast<uint8_t>(rng.Next()));
    }
    WriteSeed(dir, "rand4242-" + std::to_string(i) + ".bin", seed);
  }
}

void GenProtocolStream(const fs::path& dir) {
  // First byte selects direction: even = site->coordinator (coordinator
  // receiving), odd = coordinator->site.
  const auto stream = [](uint8_t direction,
                         const std::vector<Frame>& frames) {
    std::vector<uint8_t> bytes = {direction};
    for (const Frame& frame : frames) AppendFrame(frame, &bytes);
    return bytes;
  };
  UpdateBundle bundle;
  bundle.site = 0;
  bundle.reports.push_back(CounterReport{7, 1});
  EventBatch batch;
  batch.num_events = 1;
  batch.values = {0, 1};
  RoundAdvance advance;

  // Legal site->coordinator life cycle. Payload site ids must match the
  // hello's: since v4 the conformance machine binds the connection to its
  // hello id and rejects forged kStatsReport/kTraceChunk claims.
  SiteStatsReport stats;
  stats.site = 0;
  TraceChunk trace;
  trace.site = 0;
  trace.events.push_back(TraceEvent{500, TraceEventType::kHeartbeat, 0, 1});
  WriteSeed(dir, "legal-s2c.bin",
            stream(0, {MakeHello(0), MakeFrame(bundle), MakeHeartbeat(0),
                       MakeStatsReport(stats), MakeTraceChunk(trace),
                       MakeFrame(bundle),
                       MakeChannelClose(FrameType::kUpdateBundle),
                       MakeHeartbeat(0)}));
  // Legal coordinator->site life cycle (straggler events while draining).
  WriteSeed(dir, "legal-c2s.bin",
            stream(1, {MakeHello(0), MakeFrame(batch), MakeFrame(advance),
                       MakeChannelClose(FrameType::kEventBatch),
                       MakeChannelClose(FrameType::kRoundAdvance),
                       MakeFrame(batch)}));
  // Violations the spec table must catch.
  WriteSeed(dir, "viol-data-before-hello.bin", stream(0, {MakeFrame(bundle)}));
  WriteSeed(dir, "viol-duplicate-hello.bin",
            stream(0, {MakeHello(0), MakeHello(0)}));
  WriteSeed(dir, "viol-stats-after-close.bin",
            stream(0, {MakeHello(0),
                       MakeChannelClose(FrameType::kUpdateBundle),
                       MakeStatsReport(SiteStatsReport{})}));
  WriteSeed(dir, "viol-wrong-direction.bin",
            stream(0, {MakeHello(0), MakeFrame(advance)}));
  // Forged observability payloads: site id claims that contradict the
  // connection's bound hello id.
  {
    SiteStatsReport forged_stats;
    forged_stats.site = 5;
    WriteSeed(dir, "viol-forged-stats.bin",
              stream(0, {MakeHello(0), MakeStatsReport(forged_stats)}));
    TraceChunk forged_trace;
    forged_trace.site = 5;
    WriteSeed(dir, "viol-forged-trace.bin",
              stream(0, {MakeHello(0), MakeTraceChunk(forged_trace)}));
  }
  // Version-mismatched hello.
  {
    Frame old_hello = MakeHello(0);
    old_hello.protocol_version = 1;
    std::vector<uint8_t> bytes =
        stream(0, {old_hello, MakeHeartbeat(0)});
    WriteSeed(dir, "viol-version-v1-heartbeat.bin", bytes);
  }
  // Malformed wire bytes after a legal prefix.
  {
    std::vector<uint8_t> bytes = stream(0, {MakeHello(0)});
    const std::vector<uint8_t> junk = {5, 0, 0, 0, 99, 1, 2, 3, 4};
    bytes.insert(bytes.end(), junk.begin(), junk.end());
    WriteSeed(dir, "malformed-bad-tag.bin", bytes);
  }
  {
    std::vector<uint8_t> bytes = stream(0, {MakeHello(0)});
    bytes.insert(bytes.end(), {0xff, 0xff, 0xff, 0xff});
    WriteSeed(dir, "malformed-oversized-prefix.bin", bytes);
  }
}

/// Raw payload textures the wire actually carries, for the compressor
/// harnesses: an encoded event-batch frame (tiny alphabet, highly
/// repetitive), a pure run, interleaved repeats, and incompressible noise.
std::vector<std::vector<uint8_t>> CompressiblePayloads() {
  std::vector<std::vector<uint8_t>> payloads;
  EventBatch batch;
  batch.num_events = 256;
  for (int i = 0; i < 1024; ++i) {
    batch.values.push_back(static_cast<uint8_t>(i % 3));
  }
  payloads.push_back(Encode(MakeFrame(std::move(batch))));
  payloads.push_back(std::vector<uint8_t>(512, 0x61));
  {
    std::vector<uint8_t> interleaved;
    for (int i = 0; i < 300; ++i) {
      const char* word = (i % 2) ? "alarm" : "sync!";
      interleaved.insert(interleaved.end(), word, word + 5);
    }
    payloads.push_back(std::move(interleaved));
  }
  {
    Rng rng(90210);
    std::vector<uint8_t> noise;
    for (int i = 0; i < 256; ++i) {
      noise.push_back(static_cast<uint8_t>(rng.Next()));
    }
    payloads.push_back(std::move(noise));
  }
  payloads.push_back({});
  payloads.push_back({'x', 'y', 'z'});
  return payloads;
}

void GenCompressRoundtrip(const fs::path& dir) {
  // The round-trip harness takes raw bytes directly.
  const auto payloads = CompressiblePayloads();
  for (size_t i = 0; i < payloads.size(); ++i) {
    WriteSeed(dir, "payload-" + std::to_string(i) + ".bin", payloads[i]);
  }
}

void GenCompressDecode(const fs::path& dir) {
  // The decode harness reads a 2-byte little-endian declared size, then the
  // LZ block. Valid seeds (honest size + honest block) give coverage deep
  // inside the decoder; the fuzzer mutates them into the adversarial cases.
  const auto pack = [](const std::vector<uint8_t>& payload) {
    std::vector<uint8_t> seed = {
        static_cast<uint8_t>(payload.size() & 0xff),
        static_cast<uint8_t>((payload.size() >> 8) & 0xff)};
    LzCompress(payload.data(), payload.size(), &seed);
    return seed;
  };
  const auto payloads = CompressiblePayloads();
  for (size_t i = 0; i < payloads.size(); ++i) {
    WriteSeed(dir, "valid-" + std::to_string(i) + ".bin", pack(payloads[i]));
  }
  // Dishonest declared size on an otherwise-valid block.
  {
    std::vector<uint8_t> lying = pack(payloads[1]);
    lying[0] = 0x10;
    lying[1] = 0x00;
    WriteSeed(dir, "wrong-declared-size.bin", lying);
  }
  // Truncation ladder on the richest valid block.
  {
    const std::vector<uint8_t> whole = pack(payloads[0]);
    for (size_t keep : {size_t{3}, size_t{8}, whole.size() / 2,
                        whole.size() - 1}) {
      WriteSeed(dir, "trunc-" + std::to_string(keep) + ".bin",
                std::vector<uint8_t>(whole.begin(),
                                     whole.begin() +
                                         static_cast<std::ptrdiff_t>(keep)));
    }
  }
  // Directed adversarial shapes from compress_test.cc: zero offset,
  // out-of-window offset, and a length-extension 255-run bomb.
  WriteSeed(dir, "zero-offset.bin",
            {0x08, 0x00, 0x41, 'a', 'b', 'c', 'd', 0x00, 0x00});
  WriteSeed(dir, "oow-offset.bin",
            {0x08, 0x00, 0x41, 'a', 'b', 'c', 'd', 0x05, 0x00});
  {
    std::vector<uint8_t> bomb = {0xff, 0xff, 0xf0};
    bomb.insert(bomb.end(), 64, 0xff);
    WriteSeed(dir, "extension-bomb.bin", bomb);
  }
}

void GenReactorStream(const fs::path& dir) {
  // Byte 0: bit 0 = receive direction, bit 1 = negotiated version (set =
  // v4); the rest is the wire stream. The connection arrives hello-paired
  // (conformance starts kActive), so streams begin with data frames.
  const auto stream = [](uint8_t head, const std::vector<Frame>& frames) {
    std::vector<uint8_t> bytes = {head};
    for (const Frame& frame : frames) AppendFrame(frame, &bytes);
    return bytes;
  };
  UpdateBundle bundle;
  bundle.site = 0;
  bundle.kind = UpdateBundle::Kind::kSync;
  bundle.round = 1;
  bundle.reports.push_back(CounterReport{7, 1});
  SiteStatsReport stats;
  stats.site = 0;
  EventBatch batch;
  batch.num_events = 1;
  batch.values = {0, 1};
  RoundAdvance advance;
  advance.round = 1;

  // Legal post-hello traffic, both directions.
  WriteSeed(dir, "legal-s2c.bin",
            stream(0, {MakeFrame(bundle), MakeHeartbeat(0),
                       MakeStatsReport(stats), MakeFrame(bundle),
                       MakeChannelClose(FrameType::kUpdateBundle)}));
  WriteSeed(dir, "legal-c2s.bin",
            stream(1, {MakeFrame(batch), MakeFrame(advance),
                       MakeChannelClose(FrameType::kEventBatch),
                       MakeChannelClose(FrameType::kRoundAdvance)}));
  // A compressed envelope mid-stream (v5): a big compressible batch that
  // AppendFrameMaybeCompressed provably wraps, between raw frames.
  {
    EventBatch big;
    big.num_events = 512;
    big.values.assign(2048, 1);
    std::vector<uint8_t> bytes = stream(1, {MakeFrame(batch)});
    AppendFrameMaybeCompressed(MakeFrame(std::move(big)), &bytes);
    AppendFrame(MakeFrame(advance), &bytes);
    WriteSeed(dir, "legal-c2s-compressed.bin", bytes);
    // The same stream at a v4-negotiated connection: the envelope is now a
    // model-checked violation the reactor must turn into a clean drop.
    bytes[0] = 3;
    WriteSeed(dir, "viol-compressed-at-v4.bin", bytes);
  }
  // Direction violation: a coordinator-only frame on the s2c half.
  WriteSeed(dir, "viol-wrong-direction.bin", stream(0, {MakeFrame(advance)}));
  // Malformed bytes after a legal prefix: bad tag, then oversized prefix.
  {
    std::vector<uint8_t> bytes = stream(0, {MakeFrame(bundle)});
    bytes.insert(bytes.end(), {5, 0, 0, 0, 99, 1, 2, 3, 4});
    WriteSeed(dir, "malformed-bad-tag.bin", bytes);
  }
  {
    std::vector<uint8_t> bytes = stream(0, {MakeHeartbeat(0)});
    bytes.insert(bytes.end(), {0xff, 0xff, 0xff, 0xff});
    WriteSeed(dir, "malformed-oversized-prefix.bin", bytes);
  }
  // Partial frame then EOF: the reassembly buffer ends mid-frame.
  {
    std::vector<uint8_t> whole = stream(0, {MakeFrame(bundle)});
    WriteSeed(dir, "trunc-mid-frame.bin",
              std::vector<uint8_t>(whole.begin(), whole.end() - 2));
  }
}

int Run(int argc, char** argv) {
  const fs::path root = argc > 1 ? fs::path(argv[1]) : fs::path("corpus");
  const struct {
    const char* name;
    void (*generate)(const fs::path&);
  } kCorpora[] = {{"codec_decode", GenCodecDecode},
                  {"frame_roundtrip", GenFrameRoundtrip},
                  {"protocol_stream", GenProtocolStream},
                  {"compress_roundtrip", GenCompressRoundtrip},
                  {"compress_decode", GenCompressDecode},
                  {"reactor_stream", GenReactorStream}};
  for (const auto& corpus : kCorpora) {
    const fs::path dir = root / corpus.name;
    fs::create_directories(dir);
    corpus.generate(dir);
    size_t count = 0;
    for (const auto& entry : fs::directory_iterator(dir)) {
      count += entry.is_regular_file() ? 1 : 0;
    }
    std::printf("%-16s %zu seeds -> %s\n", corpus.name, count,
                dir.string().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace dsgm

int main(int argc, char** argv) { return dsgm::Run(argc, argv); }
