# Opt-in sanitizer support, driven by the DSGM_SANITIZE cache variable.
#
#   cmake -B build -DDSGM_SANITIZE=address,undefined
#   cmake -B build -DDSGM_SANITIZE=thread        # for the threaded cluster/ layer
#
# Sanitizers are applied globally (compile + link) so the static layer
# libraries, tests, benches, and examples all agree on instrumentation.

function(dsgm_enable_sanitizers spec)
  if(spec STREQUAL "")
    return()
  endif()

  string(REPLACE "," ";" requested "${spec}")
  set(flags "")
  foreach(san IN LISTS requested)
    string(STRIP "${san}" san)
    if(san STREQUAL "")
      continue()
    endif()
    if(san MATCHES "^(address|thread|undefined|leak)$")
      list(APPEND flags "-fsanitize=${san}")
    else()
      message(FATAL_ERROR
        "DSGM_SANITIZE: unknown sanitizer '${san}' (expected address, thread, undefined, or leak)")
    endif()
  endforeach()

  if("-fsanitize=thread" IN_LIST flags
     AND ("-fsanitize=address" IN_LIST flags OR "-fsanitize=leak" IN_LIST flags))
    message(FATAL_ERROR "DSGM_SANITIZE: thread is mutually exclusive with address/leak")
  endif()

  message(STATUS "Sanitizers enabled: ${spec}")
  add_compile_options(${flags} -fno-omit-frame-pointer)
  add_link_options(${flags})
endfunction()
