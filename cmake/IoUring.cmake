# Compile-time probe for the io_uring reactor backend.
#
# Sets DSGM_HAVE_IO_URING when the toolchain's kernel headers carry
# everything the backend needs: the setup/enter syscall numbers, multishot
# poll (IORING_POLL_ADD_MULTI, kernel headers >= 5.13), and enter-with-
# timeout (IORING_ENTER_EXT_ARG + io_uring_getevents_arg, >= 5.11). The
# probe is about HEADERS only — whether the running kernel (or a seccomp
# sandbox) actually allows io_uring_setup is decided again at runtime by
# MakeIoUringBackend(), which falls back to epoll. Without the headers the
# backend source compiles to a stub factory and everything runs on epoll.

include(CheckCXXSourceCompiles)

function(dsgm_probe_io_uring)
  check_cxx_source_compiles("
    #include <linux/io_uring.h>
    #include <linux/time_types.h>
    #include <sys/syscall.h>
    #if !defined(__NR_io_uring_setup) || !defined(__NR_io_uring_enter)
    #error no io_uring syscalls
    #endif
    int main() {
      io_uring_params params{};
      params.flags = IORING_SETUP_CQSIZE;
      io_uring_sqe sqe{};
      sqe.opcode = IORING_OP_POLL_ADD;
      sqe.poll32_events = 0;
      sqe.len = IORING_POLL_ADD_MULTI;
      sqe.opcode = IORING_OP_POLL_REMOVE;
      io_uring_cqe cqe{};
      (void)(cqe.flags & IORING_CQE_F_MORE);
      io_uring_getevents_arg arg{};
      __kernel_timespec ts{};
      arg.ts = 0;
      unsigned feats = IORING_FEAT_EXT_ARG | IORING_FEAT_SINGLE_MMAP;
      unsigned enter = IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG;
      (void)params; (void)ts; (void)feats; (void)enter;
      return 0;
    }
  " DSGM_HAVE_IO_URING)
  if(DSGM_HAVE_IO_URING)
    message(STATUS "io_uring backend: headers OK (runtime probe decides per process)")
  else()
    message(STATUS "io_uring backend: headers missing or too old; epoll only")
  endif()
endfunction()

dsgm_probe_io_uring()
