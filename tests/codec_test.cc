// Tests for net/codec.h: exact round-trips over randomized frames, and
// malformed-input robustness — every corrupt buffer must come back as a
// Status error, never a crash or an out-of-bounds read (the ASan/UBSan CI
// job runs this suite to enforce the latter).

#include <gtest/gtest.h>

#include <cstring>
#include <limits>

#include "common/rng.h"
#include "monitor/comm_stats.h"
#include "net/codec.h"

namespace dsgm {
namespace {

std::vector<uint8_t> Encode(const Frame& frame) {
  std::vector<uint8_t> buffer;
  AppendFrame(frame, &buffer);
  return buffer;
}

Frame DecodeOrDie(const std::vector<uint8_t>& buffer) {
  Frame frame;
  size_t consumed = 0;
  const Status status = DecodeFrame(buffer.data(), buffer.size(), &frame, &consumed);
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_EQ(consumed, buffer.size());
  return frame;
}

TEST(CodecTest, VarintBoundaries) {
  for (uint64_t value : {uint64_t{0}, uint64_t{1}, uint64_t{127}, uint64_t{128},
                         uint64_t{16383}, uint64_t{16384},
                         std::numeric_limits<uint64_t>::max()}) {
    std::vector<uint8_t> buffer;
    AppendVarint(value, &buffer);
    EXPECT_LE(buffer.size(), 10u);
  }
}

TEST(CodecTest, ZigzagRoundTrip) {
  for (int64_t value : {int64_t{0}, int64_t{-1}, int64_t{1}, int64_t{-64},
                        std::numeric_limits<int64_t>::min(),
                        std::numeric_limits<int64_t>::max()}) {
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(value)), value);
  }
}

TEST(CodecTest, UpdateBundleRoundTrip) {
  UpdateBundle bundle;
  bundle.kind = UpdateBundle::Kind::kSync;
  bundle.site = 13;
  bundle.round = 7;
  bundle.reports = {{0, 1}, {5, 1000}, {4, 42}, {1000000007, 0xffffffffu}};
  const Frame decoded = DecodeOrDie(Encode(MakeFrame(bundle)));
  ASSERT_EQ(decoded.type, FrameType::kUpdateBundle);
  EXPECT_TRUE(decoded.bundle == bundle);
}

TEST(CodecTest, EmptyBundleAndDefaults) {
  UpdateBundle bundle;  // kReports, site -1, round -1, no reports.
  const Frame decoded = DecodeOrDie(Encode(MakeFrame(bundle)));
  EXPECT_TRUE(decoded.bundle == bundle);
}

TEST(CodecTest, RoundAdvanceRoundTripPreservesFloatBits) {
  RoundAdvance advance;
  advance.counter = 123456789012345;
  advance.round = 31;
  advance.probability = 0.0437f;
  const Frame decoded = DecodeOrDie(Encode(MakeFrame(advance)));
  ASSERT_EQ(decoded.type, FrameType::kRoundAdvance);
  EXPECT_TRUE(decoded.advance == advance);
  uint32_t want_bits = 0;
  uint32_t got_bits = 0;
  std::memcpy(&want_bits, &advance.probability, 4);
  std::memcpy(&got_bits, &decoded.advance.probability, 4);
  EXPECT_EQ(got_bits, want_bits);
}

TEST(CodecTest, EventBatchRoundTrip) {
  EventBatch batch;
  batch.num_events = 3;
  batch.values = {0, 1, 2, 5, 0, 3, 1, 1, 0};
  const Frame decoded = DecodeOrDie(Encode(MakeFrame(batch)));
  ASSERT_EQ(decoded.type, FrameType::kEventBatch);
  EXPECT_TRUE(decoded.batch == batch);
}

TEST(CodecTest, ControlFramesRoundTrip) {
  Frame close = DecodeOrDie(Encode(MakeChannelClose(FrameType::kRoundAdvance)));
  ASSERT_EQ(close.type, FrameType::kChannelClose);
  EXPECT_EQ(close.channel, FrameType::kRoundAdvance);

  Frame hello = DecodeOrDie(Encode(MakeHello(17)));
  ASSERT_EQ(hello.type, FrameType::kHello);
  EXPECT_EQ(hello.site, 17);
  EXPECT_EQ(hello.protocol_version, kProtocolVersion);
}

TEST(CodecTest, HelloRoundTripsForeignProtocolVersions) {
  // The codec must transport ANY version value faithfully — rejecting a
  // mismatch is the transport's job, and it can only produce a clear error
  // if the decoded frame still says what the peer claimed.
  for (uint8_t version : {uint8_t{0}, uint8_t{2}, uint8_t{255}}) {
    Frame hello = MakeHello(3);
    hello.protocol_version = version;
    const Frame decoded = DecodeOrDie(Encode(hello));
    ASSERT_EQ(decoded.type, FrameType::kHello);
    EXPECT_EQ(decoded.protocol_version, version);
    EXPECT_EQ(decoded.site, 3);
  }
}

TEST(CodecTest, HeartbeatRoundTrip) {
  for (int32_t site : {0, 1, 511, std::numeric_limits<int32_t>::max(), -1}) {
    const Frame decoded = DecodeOrDie(Encode(MakeHeartbeat(site)));
    EXPECT_EQ(decoded.type, FrameType::kHeartbeat);
    EXPECT_EQ(decoded.site, site);
  }
}

TEST(CodecTest, TruncatedHeartbeatFails) {
  // A bare kHeartbeat tag with no site id must fail, not read past the end.
  const std::vector<uint8_t> payload = {
      static_cast<uint8_t>(FrameType::kHeartbeat)};
  Frame frame;
  EXPECT_FALSE(DecodeFramePayload(payload.data(), payload.size(), &frame).ok());
}

TEST(CodecTest, ForgedHeartbeatWithHugeSiteIdFails) {
  // site ids beyond int32 are rejected by the decoder (consumers also
  // ignore heartbeat site ids entirely, but the codec is the first gate).
  std::vector<uint8_t> payload = {static_cast<uint8_t>(FrameType::kHeartbeat)};
  AppendVarint(ZigzagEncode(int64_t{1} << 40), &payload);
  Frame frame;
  EXPECT_FALSE(DecodeFramePayload(payload.data(), payload.size(), &frame).ok());
}

TEST(CodecTest, TruncatedHelloMissingSiteFails) {
  // A hello that ends right after the version byte (an old-format peer
  // would not even have the version) must fail cleanly, not misparse.
  std::vector<uint8_t> payload = {static_cast<uint8_t>(FrameType::kHello),
                                  kProtocolVersion};
  Frame frame;
  EXPECT_FALSE(DecodeFramePayload(payload.data(), payload.size(), &frame).ok());
}

TEST(CodecTest, RandomizedBundleRoundTripProperty) {
  Rng rng(20260727);
  for (int iteration = 0; iteration < 500; ++iteration) {
    UpdateBundle bundle;
    bundle.kind = static_cast<UpdateBundle::Kind>(rng.NextBounded(4));
    bundle.site = static_cast<int32_t>(rng.NextBounded(1000)) - 1;
    bundle.round = static_cast<int32_t>(rng.NextBounded(64)) - 1;
    const size_t reports = rng.NextBounded(64);
    int64_t counter = 0;
    for (size_t r = 0; r < reports; ++r) {
      // Deliberately non-monotone ids to exercise negative deltas.
      counter += static_cast<int64_t>(rng.NextBounded(1 << 20)) - (1 << 18);
      bundle.reports.push_back(
          CounterReport{counter, static_cast<uint32_t>(rng.Next())});
    }
    const Frame decoded = DecodeOrDie(Encode(MakeFrame(bundle)));
    ASSERT_TRUE(decoded.bundle == bundle) << "iteration " << iteration;
  }
}

TEST(CodecTest, RandomizedEventBatchRoundTripProperty) {
  Rng rng(424242);
  for (int iteration = 0; iteration < 200; ++iteration) {
    EventBatch batch;
    batch.num_events = static_cast<int32_t>(rng.NextBounded(100));
    const size_t values = rng.NextBounded(512);
    for (size_t v = 0; v < values; ++v) {
      batch.values.push_back(static_cast<int32_t>(rng.NextBounded(128)));
    }
    const Frame decoded = DecodeOrDie(Encode(MakeFrame(batch)));
    ASSERT_TRUE(decoded.batch == batch) << "iteration " << iteration;
  }
}

TEST(CodecTest, DeltaPackingIsCompactForDenseCounters) {
  // A sync over a dense counter range (the common case) should cost a
  // couple of bytes per report, not the 12 of the naive fixed layout.
  UpdateBundle bundle;
  bundle.kind = UpdateBundle::Kind::kSync;
  bundle.site = 1;
  bundle.round = 3;
  for (int64_t c = 0; c < 1000; ++c) {
    bundle.reports.push_back(CounterReport{c, static_cast<uint32_t>(c % 100)});
  }
  const std::vector<uint8_t> encoded = Encode(MakeFrame(bundle));
  EXPECT_LT(encoded.size(), bundle.reports.size() * 3 + 16);
}

// --- Malformed inputs: errors, never crashes. --------------------------

TEST(CodecTest, TruncationAtEveryPrefixFailsCleanly) {
  UpdateBundle bundle;
  bundle.kind = UpdateBundle::Kind::kReports;
  bundle.site = 3;
  bundle.round = 2;
  bundle.reports = {{100, 5}, {200, 6}, {300, 7}};
  const std::vector<uint8_t> encoded = Encode(MakeFrame(bundle));
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    Frame frame;
    size_t consumed = 0;
    const Status status = DecodeFrame(encoded.data(), cut, &frame, &consumed);
    EXPECT_FALSE(status.ok()) << "prefix of length " << cut << " decoded";
  }
}

TEST(CodecTest, OversizedLengthPrefixRejectedBeforeAllocation) {
  std::vector<uint8_t> buffer = {0xff, 0xff, 0xff, 0xff, 0x01};
  Frame frame;
  size_t consumed = 0;
  const Status status = DecodeFrame(buffer.data(), buffer.size(), &frame, &consumed);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(CodecTest, BadFrameTypeTagFails) {
  // 8 became kTraceChunk in protocol v4; the first invalid tag is now 9.
  for (uint8_t tag : {uint8_t{0}, uint8_t{9}, uint8_t{99}, uint8_t{255}}) {
    const std::vector<uint8_t> payload = {tag};
    Frame frame;
    EXPECT_FALSE(DecodeFramePayload(payload.data(), payload.size(), &frame).ok());
  }
}

TEST(CodecTest, BadBundleKindTagFails) {
  std::vector<uint8_t> encoded = Encode(MakeFrame(UpdateBundle{}));
  encoded[5] = 99;  // Byte 4 is the frame type; byte 5 the bundle kind.
  Frame frame;
  size_t consumed = 0;
  EXPECT_FALSE(DecodeFrame(encoded.data(), encoded.size(), &frame, &consumed).ok());
}

TEST(CodecTest, BadChannelCloseTagFails) {
  std::vector<uint8_t> encoded = Encode(MakeChannelClose(FrameType::kEventBatch));
  encoded[5] = static_cast<uint8_t>(FrameType::kHello);  // Not a channel.
  Frame frame;
  size_t consumed = 0;
  EXPECT_FALSE(DecodeFrame(encoded.data(), encoded.size(), &frame, &consumed).ok());
}

TEST(CodecTest, TrailingGarbageInPayloadFails) {
  std::vector<uint8_t> encoded = Encode(MakeHello(3));
  // Grow the payload by one byte and patch the length prefix to match: the
  // frame parses but leaves an unconsumed byte.
  encoded.push_back(0x00);
  encoded[0] = static_cast<uint8_t>(encoded.size() - 4);
  Frame frame;
  size_t consumed = 0;
  EXPECT_FALSE(DecodeFrame(encoded.data(), encoded.size(), &frame, &consumed).ok());
}

TEST(CodecTest, ForgedHugeReportCountFailsWithoutHugeAllocation) {
  // Claim 2^40 reports with a 6-byte payload. The decoder must bail once
  // bytes run out, and SafeReserve must not pre-allocate the claimed count.
  std::vector<uint8_t> payload = {static_cast<uint8_t>(FrameType::kUpdateBundle),
                                  0 /* kind */, 0 /* site */, 0 /* round */};
  AppendVarint(uint64_t{1} << 40, &payload);
  Frame frame;
  EXPECT_FALSE(DecodeFramePayload(payload.data(), payload.size(), &frame).ok());
}

TEST(CodecTest, OverlongVarintFails) {
  // 11 continuation bytes: more than a 64-bit varint can carry.
  std::vector<uint8_t> payload = {static_cast<uint8_t>(FrameType::kEventBatch)};
  for (int i = 0; i < 11; ++i) payload.push_back(0x80);
  Frame frame;
  EXPECT_FALSE(DecodeFramePayload(payload.data(), payload.size(), &frame).ok());
}

// --- CommStats byte-constant calibration ---------------------------------
//
// The per-message byte estimates in monitor/comm_stats.h claim to match
// this codec's wire format; these tests re-derive them from actually
// encoded representative frames so the constants cannot silently drift
// from the wire (they are what fig6/fig11 byte counts are built from).

TEST(CodecCalibrationTest, UpdateBytesMatchEncodedReportsBundle) {
  // Representative mid-run kReports bundle: the counter ids an event
  // touches are near-sorted in layout order (small deltas), cumulative
  // counts sit in the thousands-to-hundred-thousands varint band.
  UpdateBundle bundle;
  bundle.kind = UpdateBundle::Kind::kReports;
  bundle.site = 2;
  for (int64_t i = 0; i < 74; ++i) {
    bundle.reports.push_back(CounterReport{i * 5, 50000});
  }
  const std::vector<uint8_t> encoded = Encode(MakeFrame(bundle));
  // Exact wire size so ANY codec change trips this test: 9-byte frame
  // header (4 length + type + kind + site + round + count) plus 4 bytes per
  // report (1-byte delta + 3-byte varint count). The constant is the
  // rounded per-report cost with the header amortized (305/74 = 4.12).
  ASSERT_EQ(encoded.size(), 9u + 74u * 4u);
  const double per_report =
      static_cast<double>(encoded.size()) / static_cast<double>(bundle.reports.size());
  EXPECT_EQ(kEstimatedUpdateBytes, static_cast<uint64_t>(per_report + 0.5));
}

TEST(CodecCalibrationTest, BroadcastBytesMatchEncodedRoundAdvance) {
  // One RoundAdvance travels as its own frame: length prefix + type +
  // zigzag counter id (2 bytes for networks up to ~8k counters) + round +
  // f32 probability.
  RoundAdvance advance;
  advance.counter = 1500;
  advance.round = 3;
  advance.probability = 0.25f;
  const std::vector<uint8_t> encoded = Encode(MakeFrame(advance));
  EXPECT_EQ(encoded.size(), kEstimatedBroadcastBytes);
}

TEST(CodecCalibrationTest, SyncBytesMatchEncodedSyncBundle) {
  // Sync replies enumerate dense counter ranges: deltas collapse to one
  // byte each.
  UpdateBundle bundle;
  bundle.kind = UpdateBundle::Kind::kSync;
  bundle.site = 1;
  bundle.round = 2;
  for (int64_t c = 100; c < 164; ++c) {
    bundle.reports.push_back(CounterReport{c, 50000});
  }
  const std::vector<uint8_t> encoded = Encode(MakeFrame(bundle));
  // Exact wire size: 9-byte header, a 5-byte first report (2-byte delta to
  // id 100 + 3-byte count), then 4 bytes per dense-range report.
  ASSERT_EQ(encoded.size(), 9u + 5u + 63u * 4u);
  const double per_report =
      static_cast<double>(encoded.size()) / static_cast<double>(bundle.reports.size());
  EXPECT_EQ(kEstimatedSyncBytes, static_cast<uint64_t>(per_report + 0.5));
}

TEST(CodecTest, RandomizedFuzzNeverCrashes) {
  Rng rng(777);
  std::vector<uint8_t> buffer;
  for (int iteration = 0; iteration < 2000; ++iteration) {
    buffer.clear();
    const size_t size = rng.NextBounded(64);
    for (size_t i = 0; i < size; ++i) {
      buffer.push_back(static_cast<uint8_t>(rng.Next()));
    }
    Frame frame;
    size_t consumed = 0;
    // Outcome (ok or error) is irrelevant; surviving under ASan/UBSan is
    // the assertion.
    DecodeFrame(buffer.data(), buffer.size(), &frame, &consumed).ok();
  }
}

// --- Adversarial shapes the fuzz/ harnesses exercise continuously; pinned
// here as always-on regressions (the fuzz sweep found no crashes against
// these defenses — these tests keep it that way).

TEST(CodecTest, ForgedHugeEventBatchCountIsRejectedWithoutAllocation) {
  // Hand-built payload claiming ~2^40 values backed by 2 bytes: the decoder
  // must fail on truncation, and SafeReserve must cap the reserve() at what
  // the remaining bytes could hold — not the claimed count (an OOM lever
  // otherwise).
  std::vector<uint8_t> payload = {static_cast<uint8_t>(FrameType::kEventBatch)};
  AppendVarint(ZigzagEncode(1), &payload);  // num_events
  AppendVarint(uint64_t{1} << 40, &payload);  // forged value count
  payload.push_back(0x00);  // one real value, then nothing
  Frame frame;
  EXPECT_FALSE(DecodeFramePayload(payload.data(), payload.size(), &frame).ok());
}

TEST(CodecTest, ForgedHugeReportCountIsRejectedWithoutAllocation) {
  std::vector<uint8_t> payload = {
      static_cast<uint8_t>(FrameType::kUpdateBundle)};
  payload.push_back(0);  // kind = kReports
  AppendVarint(ZigzagEncode(0), &payload);  // site
  AppendVarint(ZigzagEncode(0), &payload);  // round
  AppendVarint(std::numeric_limits<uint64_t>::max(), &payload);  // count
  Frame frame;
  EXPECT_FALSE(DecodeFramePayload(payload.data(), payload.size(), &frame).ok());
}

TEST(CodecTest, ExtremeCounterDeltasRoundTripWithoutOverflow) {
  // Adjacent INT64 extremes force maximal-magnitude deltas; the delta
  // arithmetic is defined-behavior unsigned wraparound on both sides, so
  // the exact ids must survive (UBSan asserts the "defined" part).
  UpdateBundle bundle;
  bundle.reports = {{std::numeric_limits<int64_t>::max(), 1},
                    {std::numeric_limits<int64_t>::min(), 2},
                    {0, 3},
                    {std::numeric_limits<int64_t>::min(), 4},
                    {std::numeric_limits<int64_t>::max(), 5}};
  const Frame decoded = DecodeOrDie(Encode(MakeFrame(bundle)));
  EXPECT_TRUE(decoded.bundle == bundle);
}

TEST(CodecTest, NanProbabilityRoundTripsBitExactly) {
  // The codec transports float BITS; a NaN probability (possible from a
  // corrupted peer) must come back bit-identical, not normalized.
  RoundAdvance advance;
  advance.counter = 1;
  advance.round = 2;
  uint32_t nan_bits = 0x7fc00001u;
  std::memcpy(&advance.probability, &nan_bits, sizeof(advance.probability));
  const Frame decoded = DecodeOrDie(Encode(MakeFrame(advance)));
  uint32_t decoded_bits = 0;
  std::memcpy(&decoded_bits, &decoded.advance.probability,
              sizeof(decoded_bits));
  EXPECT_EQ(decoded_bits, nan_bits);
}

TEST(CodecTest, BitflipFuzzOnValidFramesNeverCrashes) {
  Rng rng(31337);
  UpdateBundle bundle;
  bundle.kind = UpdateBundle::Kind::kSync;
  bundle.site = 2;
  bundle.round = 4;
  for (int64_t c = 0; c < 50; ++c) {
    bundle.reports.push_back(CounterReport{c * 3, static_cast<uint32_t>(c)});
  }
  const std::vector<uint8_t> pristine = Encode(MakeFrame(bundle));
  for (int iteration = 0; iteration < 2000; ++iteration) {
    std::vector<uint8_t> corrupted = pristine;
    const size_t flips = 1 + rng.NextBounded(4);
    for (size_t f = 0; f < flips; ++f) {
      const size_t at = rng.NextBounded(corrupted.size());
      corrupted[at] ^= static_cast<uint8_t>(1u << rng.NextBounded(8));
    }
    Frame frame;
    size_t consumed = 0;
    DecodeFrame(corrupted.data(), corrupted.size(), &frame, &consumed).ok();
  }
}

}  // namespace
}  // namespace dsgm
