// Tests for monitor/approx_counter.h — empirical verification of the
// Lemma 4 contract: E[A] = C, Var[A] <= O((eps C)^2), logarithmic
// communication, and exactness below the sampling threshold.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/statistics.h"
#include "monitor/approx_counter.h"
#include "monitor/round_schedule.h"

namespace dsgm {
namespace {

ApproxCounterOptions Options(int sites, uint64_t seed) {
  ApproxCounterOptions options;
  options.num_sites = sites;
  options.seed = seed;
  return options;
}

TEST(RoundScheduleTest, ProbabilityHalvesAsRoundsAdvance) {
  // sqrt(16)/0.1 = 40, so rounds 6+ (2^6 = 64) are in the sampled regime.
  const double p6 = RoundProbability(0.1, 6, 16, 1.0);
  const double p7 = RoundProbability(0.1, 7, 16, 1.0);
  ASSERT_LT(p6, 1.0);
  EXPECT_NEAR(p6 / p7, 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(RoundProbability(0.1, 0, 16, 1.0), 1.0);  // 40 >> 1
  EXPECT_DOUBLE_EQ(RoundThreshold(3), 16.0);
}

TEST(ApproxCounterTest, ExactWhileSmall) {
  CommStats stats;
  ApproxCounterFamily family({0.1f}, Options(4, 1), &stats);
  // Exact phase lasts until ~sqrt(k)/eps = 20.
  for (int i = 0; i < 15; ++i) family.Increment(0, i % 4);
  EXPECT_DOUBLE_EQ(family.Estimate(0), 15.0);
  EXPECT_EQ(family.ExactTotal(0), 15u);
  EXPECT_EQ(stats.update_messages, 15u);
  EXPECT_EQ(stats.sync_messages, 0u);
  EXPECT_DOUBLE_EQ(family.probability(0), 1.0);
}

TEST(ApproxCounterTest, EntersSampledRegimeForLargeCounts) {
  CommStats stats;
  ApproxCounterFamily family({0.1f}, Options(4, 2), &stats);
  for (int i = 0; i < 10000; ++i) family.Increment(0, i % 4);
  EXPECT_LT(family.probability(0), 1.0);
  EXPECT_GT(family.round(0), 5);
  EXPECT_GT(stats.rounds_advanced, 0u);
  EXPECT_GT(stats.broadcast_messages, 0u);
}

TEST(ApproxCounterTest, EstimateTracksCountWithinTolerance) {
  CommStats stats;
  ApproxCounterFamily family({0.05f}, Options(8, 3), &stats);
  constexpr int kTotal = 200000;
  for (int i = 0; i < kTotal; ++i) family.Increment(0, i % 8);
  const double estimate = family.Estimate(0);
  // Chebyshev with the (eps C)^2 variance bound: being 5 sigma out has
  // probability < 5%; the seed is fixed so this is deterministic anyway.
  EXPECT_NEAR(estimate, kTotal, 5 * 0.05 * kTotal);
}

TEST(ApproxCounterTest, CommunicationIsLogarithmicInCount) {
  CommStats stats;
  ApproxCounterFamily family({0.1f}, Options(4, 4), &stats);
  constexpr int kTotal = 1 << 18;  // 262144
  uint64_t messages_at_half = 0;
  for (int i = 0; i < kTotal; ++i) {
    family.Increment(0, i % 4);
    if (i + 1 == kTotal / 2) messages_at_half = stats.TotalMessages();
  }
  const uint64_t total_messages = stats.TotalMessages();
  // Exact maintenance would send 262144 updates; the sampled counter must be
  // far below (one extra doubling costs O(sqrt(k)/eps + k), not O(C)).
  EXPECT_LT(total_messages, static_cast<uint64_t>(kTotal) / 10);
  const uint64_t last_doubling = total_messages - messages_at_half;
  EXPECT_LT(last_doubling, static_cast<uint64_t>(kTotal) / 64);
}

TEST(ApproxCounterTest, SmallerEpsilonCostsMoreMessages) {
  uint64_t messages[2];
  int index = 0;
  for (float eps : {0.2f, 0.02f}) {
    CommStats stats;
    ApproxCounterFamily family({eps}, Options(4, 5), &stats);
    for (int i = 0; i < 100000; ++i) family.Increment(0, i % 4);
    messages[index++] = stats.TotalMessages();
  }
  EXPECT_LT(messages[0], messages[1]);
}

TEST(ApproxCounterTest, PerCounterEpsilonsAreIndependent) {
  CommStats stats;
  ApproxCounterFamily family({0.2f, 0.02f}, Options(4, 6), &stats);
  for (int i = 0; i < 50000; ++i) {
    family.Increment(0, i % 4);
    family.Increment(1, i % 4);
  }
  // The tighter counter must still be accurate; both should be close but
  // counter 1 is guaranteed a smaller deviation band.
  EXPECT_NEAR(family.Estimate(0), 50000.0, 5 * 0.2 * 50000);
  EXPECT_NEAR(family.Estimate(1), 50000.0, 5 * 0.02 * 50000);
}

TEST(ApproxCounterTest, UnbiasedAcrossTrials) {
  // Mean of the estimator over many independent trials must converge to the
  // true count (Lemma 4: E[A] = C).
  constexpr int kTrials = 400;
  constexpr int kCount = 5000;
  constexpr double kEps = 0.1;
  OnlineStats estimates;
  for (int trial = 0; trial < kTrials; ++trial) {
    CommStats stats;
    ApproxCounterFamily family({static_cast<float>(kEps)},
                               Options(4, 1000 + static_cast<uint64_t>(trial)),
                               &stats);
    for (int i = 0; i < kCount; ++i) family.Increment(0, i % 4);
    estimates.Add(family.Estimate(0));
  }
  // Standard error of the mean is ~ eps*C/sqrt(trials) = 25; allow 4x.
  EXPECT_NEAR(estimates.mean(), kCount, 4 * kEps * kCount / std::sqrt(kTrials));
}

TEST(ApproxCounterTest, VarianceBoundHolds) {
  constexpr int kTrials = 400;
  constexpr int kCount = 5000;
  constexpr double kEps = 0.1;
  OnlineStats estimates;
  for (int trial = 0; trial < kTrials; ++trial) {
    CommStats stats;
    ApproxCounterFamily family({static_cast<float>(kEps)},
                               Options(4, 5000 + static_cast<uint64_t>(trial)),
                               &stats);
    for (int i = 0; i < kCount; ++i) family.Increment(0, i % 4);
    estimates.Add(family.Estimate(0));
  }
  // Lemma 4 contract: Var[A] <= (eps C)^2 (small constant slack for the
  // finite-trial variance estimate).
  EXPECT_LE(estimates.variance(), 1.5 * (kEps * kCount) * (kEps * kCount));
}

TEST(ApproxCounterTest, SkewedSiteDistributionStillAccurate) {
  // All mass on one site out of many: per-site estimator must cope.
  CommStats stats;
  ApproxCounterFamily family({0.1f}, Options(30, 7), &stats);
  constexpr int kCount = 100000;
  for (int i = 0; i < kCount; ++i) family.Increment(0, 0);
  EXPECT_NEAR(family.Estimate(0), kCount, 5 * 0.1 * kCount);
}

TEST(ApproxCounterTest, ManyCountersShareAccounting) {
  CommStats stats;
  std::vector<float> epsilons(100, 0.1f);
  ApproxCounterFamily family(epsilons, Options(4, 8), &stats);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    family.Increment(static_cast<int64_t>(rng.NextBounded(100)),
                     static_cast<int>(rng.NextBounded(4)));
  }
  uint64_t exact_total = 0;
  for (int64_t c = 0; c < 100; ++c) exact_total += family.ExactTotal(c);
  EXPECT_EQ(exact_total, 20000u);
  EXPECT_GT(stats.TotalMessages(), 0u);
}

TEST(ApproxCounterTest, RoundsAreMonotoneAndProbabilityNonIncreasing) {
  CommStats stats;
  ApproxCounterFamily family({0.1f}, Options(4, 9), &stats);
  int last_round = 0;
  double last_p = 1.0;
  for (int i = 0; i < 100000; ++i) {
    family.Increment(0, i % 4);
    EXPECT_GE(family.round(0), last_round);
    EXPECT_LE(family.probability(0), last_p + 1e-12);
    last_round = family.round(0);
    last_p = family.probability(0);
  }
}

TEST(ApproxCounterTest, SafetyConstantTradesErrorForMessages) {
  uint64_t messages_low = 0;
  uint64_t messages_high = 0;
  for (double safety : {0.5, 4.0}) {
    CommStats stats;
    ApproxCounterOptions options = Options(4, 10);
    options.probability_constant = safety;
    ApproxCounterFamily family({0.1f}, options, &stats);
    for (int i = 0; i < 100000; ++i) family.Increment(0, i % 4);
    (safety < 1.0 ? messages_low : messages_high) = stats.TotalMessages();
  }
  EXPECT_LT(messages_low, messages_high);
}

TEST(ApproxCounterTest, RejectsInvalidEpsilon) {
  CommStats stats;
  EXPECT_DEATH(ApproxCounterFamily({0.0f}, Options(4, 11), &stats), "epsilon");
  EXPECT_DEATH(ApproxCounterFamily({1.5f}, Options(4, 11), &stats), "epsilon");
}

// Parameterized sweep of the variance contract over (epsilon, sites).
class CounterContractTest
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(CounterContractTest, MeanAndVarianceWithinContract) {
  const double eps = std::get<0>(GetParam());
  const int sites = std::get<1>(GetParam());
  constexpr int kTrials = 150;
  constexpr int kCount = 4000;
  OnlineStats estimates;
  for (int trial = 0; trial < kTrials; ++trial) {
    CommStats stats;
    ApproxCounterFamily family(
        {static_cast<float>(eps)},
        Options(sites, 77000 + static_cast<uint64_t>(trial)), &stats);
    for (int i = 0; i < kCount; ++i) family.Increment(0, i % sites);
    estimates.Add(family.Estimate(0));
  }
  EXPECT_NEAR(estimates.mean(), kCount, 5 * eps * kCount / std::sqrt(kTrials));
  EXPECT_LE(estimates.variance(), 2.0 * (eps * kCount) * (eps * kCount));
}

INSTANTIATE_TEST_SUITE_P(Contract, CounterContractTest,
                         ::testing::Combine(::testing::Values(0.05, 0.1, 0.3),
                                            ::testing::Values(2, 8, 30)));

}  // namespace
}  // namespace dsgm
