// Tests for the observability layer (common/metrics.h): registry and
// histogram semantics, the multi-writer lock-free contract (this suite is
// in the TSan CI regex — 8 writers + a concurrent snapshotting reader must
// be race-free), trace-ring overflow, the kStatsReport wire frame
// (round-trip, truncation, forged-site-id rejection at the reactor), and
// an end-to-end kLocalTcp run whose coordinator health table must converge
// on the sites' true totals.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bayes/repository.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "dsgm/dsgm.h"
#include "net/codec.h"
#include "net/tcp_socket.h"

namespace dsgm {
namespace {

// --- Registry and instruments ---------------------------------------------

TEST(MetricsTest, SameNameReturnsSameHandle) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  EXPECT_EQ(registry.GetCounter("test.registry.c"),
            registry.GetCounter("test.registry.c"));
  EXPECT_EQ(registry.GetGauge("test.registry.g"),
            registry.GetGauge("test.registry.g"));
  EXPECT_EQ(registry.GetHistogram("test.registry.h"),
            registry.GetHistogram("test.registry.h"));
  // Distinct kinds with the same name are distinct instruments.
  EXPECT_NE(static_cast<void*>(registry.GetCounter("test.registry.same")),
            static_cast<void*>(registry.GetGauge("test.registry.same")));
}

TEST(MetricsTest, CounterAndGaugeUpdatesLandInSnapshots) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("test.basics.counter");
  Gauge* gauge = registry.GetGauge("test.basics.gauge");
  const uint64_t counter_before = counter->Value();
  counter->Increment();
  counter->Add(41);
  gauge->Set(100);
  gauge->Add(-58);

  EXPECT_EQ(counter->Value(), counter_before + 42);
  EXPECT_EQ(gauge->Value(), 42);

  const MetricsSnapshot snapshot = registry.Snapshot();
  const auto* counter_value = snapshot.FindCounter("test.basics.counter");
  ASSERT_NE(counter_value, nullptr);
  EXPECT_EQ(counter_value->value, counter_before + 42);
  const auto* gauge_value = snapshot.FindGauge("test.basics.gauge");
  ASSERT_NE(gauge_value, nullptr);
  EXPECT_EQ(gauge_value->value, 42);
  EXPECT_EQ(snapshot.FindCounter("test.basics.nonexistent"), nullptr);

  // Snapshots are name-sorted so successive dumps diff cleanly.
  for (size_t i = 1; i < snapshot.counters.size(); ++i) {
    EXPECT_LT(snapshot.counters[i - 1].name, snapshot.counters[i].name);
  }
}

TEST(MetricsTest, KillSwitchDropsUpdates) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("test.killswitch.counter");
  Histogram* histogram = registry.GetHistogram("test.killswitch.h_ns");
  const uint64_t before = counter->Value();
  const uint64_t samples_before = histogram->Stats().count;

  SetMetricsEnabled(false);
  counter->Add(1000);
  histogram->Record(1000);
  Trace(TraceEventType::kRoundAdvance, 0, 0);
  SetMetricsEnabled(true);

  EXPECT_EQ(counter->Value(), before);
  EXPECT_EQ(histogram->Stats().count, samples_before);
  counter->Increment();
  EXPECT_EQ(counter->Value(), before + 1);
}

TEST(MetricsTest, HistogramCountSumMaxAreExactQuantilesAreBounded) {
  Histogram* histogram =
      MetricsRegistry::Global().GetHistogram("test.histogram.exact_ns");
  uint64_t sum = 0;
  for (uint64_t v = 1; v <= 1000; ++v) {
    histogram->Record(v);
    sum += v;
  }
  const HistogramStats stats = histogram->Stats();
  EXPECT_EQ(stats.count, 1000u);
  EXPECT_EQ(stats.sum, sum);
  EXPECT_EQ(stats.max, 1000u);
  EXPECT_DOUBLE_EQ(stats.mean(), static_cast<double>(sum) / 1000.0);
  // Quantiles are log2-bucket upper bounds: >= the true quantile, < 2x it.
  EXPECT_GE(stats.p50, 500u);
  EXPECT_LT(stats.p50, 1000u);
  EXPECT_GE(stats.p99, 990u);
  EXPECT_LT(stats.p99, 2u * 990u);
}

TEST(MetricsTest, HistogramBucketBoundaries) {
  EXPECT_EQ(Histogram::BucketOf(0), 0);
  EXPECT_EQ(Histogram::BucketOf(1), 1);
  EXPECT_EQ(Histogram::BucketOf(2), 2);
  EXPECT_EQ(Histogram::BucketOf(3), 2);
  EXPECT_EQ(Histogram::BucketOf(4), 3);
  EXPECT_EQ(Histogram::BucketOf(~uint64_t{0}), Histogram::kBuckets - 1);
  // A value always falls at or under its bucket's upper bound.
  for (uint64_t v : {uint64_t{1}, uint64_t{7}, uint64_t{1000},
                     uint64_t{1} << 40}) {
    EXPECT_GE(Histogram::BucketUpperBound(Histogram::BucketOf(v)), v);
  }
}

// The lock-free contract under fire: 8 writers hammer one counter, one
// gauge, and one histogram while a reader snapshots continuously. TSan
// must stay quiet (CI runs this suite under -fsanitize=thread) and the
// post-join totals must be exact — relaxed atomics lose ordering, never
// increments.
TEST(MetricsTest, EightWriterHammerWithConcurrentReaderKeepsExactTotals) {
  constexpr int kWriters = 8;
  constexpr uint64_t kPerWriter = 50000;
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("test.hammer.counter");
  Gauge* gauge = registry.GetGauge("test.hammer.gauge");
  Histogram* histogram = registry.GetHistogram("test.hammer.h_ns");

  std::atomic<bool> done{false};
  std::thread reader([&done, &registry] {
    while (!done.load(std::memory_order_acquire)) {
      const MetricsSnapshot snapshot = registry.Snapshot();
      ASSERT_NE(snapshot.FindCounter("test.hammer.counter"), nullptr);
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([counter, gauge, histogram, w] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        counter->Increment();
        gauge->Add(1);
        histogram->Record(i % 1024);
        Trace(TraceEventType::kSyncMessage, w, static_cast<int64_t>(i));
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(counter->Value(), kWriters * kPerWriter);
  EXPECT_EQ(gauge->Value(), static_cast<int64_t>(kWriters * kPerWriter));
  EXPECT_EQ(histogram->Stats().count, kWriters * kPerWriter);
}

TEST(MetricsTest, JsonLineCarriesEverySection) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.jsonline.counter")->Increment();
  registry.GetHistogram("test.jsonline.h_ns")->Record(7);
  MetricsSnapshot snapshot = registry.Snapshot();
  snapshot.captured_nanos = 1234567890;
  SiteHealth site;
  site.site = 0;
  site.alive = true;
  site.heartbeat_age_ms = 1.5;
  site.syncs_sent = 9;
  snapshot.sites.push_back(site);

  const std::string line = MetricsSnapshotToJsonLine(snapshot);
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"t_ms\":"), std::string::npos);
  EXPECT_NE(line.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(line.find("\"test.jsonline.counter\":"), std::string::npos);
  EXPECT_NE(line.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(line.find("\"test.jsonline.h_ns\":{\"count\":"), std::string::npos);
  EXPECT_NE(line.find("\"sites\":[{\"site\":0,\"alive\":true,\"hb_age_ms\":1.500"),
            std::string::npos);
  EXPECT_NE(line.find("\"syncs\":9"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(MetricsTest, DumperEmitsPeriodicLinesPlusFinal) {
  std::ostringstream out;
  std::atomic<int> calls{0};
  {
    MetricsDumper dumper(/*period_ms=*/5, &out, [&calls] {
      calls.fetch_add(1);
      MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
      snapshot.captured_nanos = NowNanos();
      return snapshot;
    });
    // Wait for at least one periodic line (deadline, not a fixed sleep, so
    // sanitizer-slowed runs don't flake); Stop() then adds the final line.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (calls.load() < 1 && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    dumper.Stop();
    dumper.Stop();  // idempotent
  }
  const std::string dump = out.str();
  int lines = 0;
  std::istringstream stream(dump);
  for (std::string line; std::getline(stream, line);) {
    ++lines;
    EXPECT_EQ(line.compare(0, 8, "{\"t_ms\":"), 0) << line;
    EXPECT_EQ(line.back(), '}') << line;
  }
  // At least one periodic line plus the final one from Stop().
  EXPECT_GE(lines, 2);
  EXPECT_EQ(calls.load(), lines);
}

// --- Trace ring ------------------------------------------------------------

TEST(TraceRingTest, OverflowKeepsTheNewestEvents) {
  TraceRing ring;
  const size_t total = TraceRing::kCapacity + 100;
  for (size_t i = 0; i < total; ++i) {
    ring.Record(TraceEventType::kRoundAdvance, 1, static_cast<int64_t>(i));
  }
  const std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), TraceRing::kCapacity);
  // Oldest-first, and the oldest 100 were overwritten.
  EXPECT_EQ(events.front().arg, 100);
  EXPECT_EQ(events.back().arg, static_cast<int64_t>(total - 1));
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg, events[i - 1].arg + 1);
    EXPECT_GE(events[i].t_nanos, events[i - 1].t_nanos);
  }
}

TEST(TraceRingTest, PartialRingSnapshotsOldestFirst) {
  TraceRing ring;
  ring.Record(TraceEventType::kSnapshotPublish, 2, 10);
  ring.Record(TraceEventType::kSnapshotDefer, 3, 20);
  const std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, TraceEventType::kSnapshotPublish);
  EXPECT_EQ(events[0].site, 2);
  EXPECT_EQ(events[0].arg, 10);
  EXPECT_EQ(events[1].type, TraceEventType::kSnapshotDefer);
}

TEST(TraceRingTest, MergedTimelineSplicesThreadsTimeSorted) {
  // Three threads trace with a sentinel site id; the merged timeline must
  // contain all of their events (rings outlive joined threads) in
  // timestamp order.
  constexpr int32_t kSentinelSite = 7777;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        Trace(TraceEventType::kHeartbeat, kSentinelSite, t * 1000 + i);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const std::vector<TraceEvent> timeline = MergedTraceTimeline();
  int sentinel_events = 0;
  for (size_t i = 0; i < timeline.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(timeline[i].t_nanos, timeline[i - 1].t_nanos);
    }
    if (timeline[i].site == kSentinelSite) ++sentinel_events;
  }
  EXPECT_GE(sentinel_events, 3 * kPerThread);
  EXPECT_FALSE(FormatTraceTimeline(timeline).empty());
}

// --- kStatsReport wire frame -----------------------------------------------

SiteStatsReport DistinctiveStats() {
  SiteStatsReport stats;
  stats.site = 3;
  stats.events_processed = 123456789012345;
  stats.updates_sent = 987654321;
  stats.syncs_sent = 4242;
  stats.rounds_seen = 17;
  stats.heartbeats_sent = ~uint64_t{0} - 5;  // varint-coded 64-bit extreme
  return stats;
}

TEST(StatsReportCodecTest, RoundTripsEveryField) {
  const SiteStatsReport stats = DistinctiveStats();
  std::vector<uint8_t> buffer;
  AppendFrame(MakeStatsReport(stats), &buffer);

  Frame decoded;
  size_t consumed = 0;
  const Status status =
      DecodeFrame(buffer.data(), buffer.size(), &decoded, &consumed);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(consumed, buffer.size());
  EXPECT_EQ(decoded.type, FrameType::kStatsReport);
  EXPECT_EQ(decoded.stats, stats);
}

TEST(StatsReportCodecTest, TruncationAtEveryPrefixFailsCleanly) {
  std::vector<uint8_t> buffer;
  AppendFrame(MakeStatsReport(DistinctiveStats()), &buffer);
  for (size_t size = 0; size < buffer.size(); ++size) {
    Frame decoded;
    size_t consumed = 0;
    EXPECT_FALSE(DecodeFrame(buffer.data(), size, &decoded, &consumed).ok())
        << "prefix of " << size << " bytes decoded";
  }
}

TEST(StatsReportCodecTest, TrailingBytesRejected) {
  std::vector<uint8_t> buffer;
  AppendFrame(MakeStatsReport(DistinctiveStats()), &buffer);
  // The payload follows the 4-byte length prefix; pad it and decode the
  // padded payload directly — exact consumption is part of the contract.
  std::vector<uint8_t> payload(buffer.begin() + 4, buffer.end());
  payload.push_back(0);
  Frame decoded;
  EXPECT_FALSE(
      DecodeFramePayload(payload.data(), payload.size(), &decoded).ok());
}

// --- End-to-end: the coordinator's live per-site health table --------------

int64_t CounterValueOrZero(const MetricsSnapshot& snapshot,
                           const std::string& name) {
  const auto* counter = snapshot.FindCounter(name);
  return counter == nullptr ? 0 : static_cast<int64_t>(counter->value);
}

TEST(MetricsClusterTest, LocalTcpHealthTableConvergesOnTrueTotals) {
  // Alarm + this event count + epsilon reliably drive round advances, so
  // the sites' syncs_sent columns must come up non-zero.
  const BayesianNetwork net = Alarm();
  constexpr int kSites = 3;
  constexpr int64_t kEvents = 20000;
  StatusOr<std::unique_ptr<Session>> session =
      SessionBuilder(net)
          .WithBackend(Backend::kLocalTcp)
          .WithStrategy(TrackingStrategy::kUniform)
          .WithEpsilon(0.05)
          .WithSites(kSites)
          .WithSeed(11)
          .WithHeartbeatInterval(10)  // stats reports ride the heartbeats
          .Build();
  ASSERT_TRUE(session.ok()) << session.status();
  ASSERT_TRUE((*session)->StreamGroundTruth(kEvents).ok());
  // Snapshot hands this thread's staged batches to the sites; without it
  // the tail of the stream sits in the ingest shard and the table can
  // never reach the full total.
  ASSERT_TRUE((*session)->Snapshot().ok());

  // Stats arrive on the heartbeat cadence; the table must converge on the
  // sites' true totals while the run idles, well inside the deadline.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  MetricsSnapshot live;
  int64_t events_seen = 0;
  bool all_reported = false;
  while (std::chrono::steady_clock::now() < deadline) {
    live = (*session)->Metrics();
    events_seen = 0;
    all_reported = live.sites.size() == kSites;
    for (const SiteHealth& site : live.sites) {
      events_seen += site.events_processed;
      all_reported = all_reported && site.stats_reports > 0;
    }
    if (all_reported && events_seen == kEvents) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(all_reported);
  EXPECT_EQ(events_seen, kEvents) << "health table never converged";
  uint64_t syncs_total = 0;
  for (const SiteHealth& site : live.sites) {
    EXPECT_TRUE(site.alive) << "site " << site.site;
    EXPECT_GE(site.heartbeat_age_ms, 0.0) << "site " << site.site;
    EXPECT_GT(site.events_processed, 0) << "site " << site.site;
    syncs_total += site.syncs_sent;
  }
  EXPECT_GT(syncs_total, 0u);
  EXPECT_GT(CounterValueOrZero(live, "net.reactor.stats_reports_rx"), 0);
  EXPECT_EQ(CounterValueOrZero(live, "net.reactor.forged_stats_dropped"), 0);

  StatusOr<RunReport> report = (*session)->Finish();
  ASSERT_TRUE(report.ok()) << report.status();
  // End-of-run metrics ride the report and its final view.
  EXPECT_FALSE(report->metrics.counters.empty());
  EXPECT_EQ(report->metrics.sites.size(), static_cast<size_t>(kSites));
  EXPECT_EQ(report->model.metrics().sites.size(), static_cast<size_t>(kSites));
  const auto* loop = report->metrics.FindHistogram("net.reactor.loop_ns");
  ASSERT_NE(loop, nullptr);
  EXPECT_GT(loop->stats.p99, 0u);
}

/// A fake external site for the forged-id test: handshakes as `hello_id`,
/// then runs `behavior` on the raw socket (same harness as liveness_test).
class FakeSite {
 public:
  FakeSite(int port, int hello_id, std::function<void(TcpSocket*)> behavior) {
    thread_ = std::thread([port, hello_id, behavior] {
      StatusOr<TcpSocket> socket = TcpSocket::Connect("127.0.0.1", port);
      for (int retry = 0; !socket.ok() && retry < 100; ++retry) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        socket = TcpSocket::Connect("127.0.0.1", port);
      }
      if (!socket.ok()) return;
      std::vector<uint8_t> hello;
      AppendFrame(MakeHello(hello_id), &hello);
      if (!socket->SendAll(hello.data(), hello.size()).ok()) return;
      behavior(&socket.value());
    });
  }
  ~FakeSite() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  std::thread thread_;
};

std::string TempPortFile(const char* tag) {
  return ::testing::TempDir() + "/dsgm_metrics_" + tag + "_" +
         std::to_string(::getpid()) + ".port";
}

int ReadPortFile(const std::string& path) {
  for (int retry = 0; retry < 500; ++retry) {
    std::ifstream in(path);
    int port = 0;
    if (in >> port) return port;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return 0;
}

TEST(MetricsClusterTest, ForgedStatsReportIsDroppedNeverIndexed) {
  // Site 0's connection sends a truthful stats report, then one CLAIMING to
  // be site 1 (valid range, wrong connection) with a poisoned event count.
  // The truthful one must land on site 0's row; the forged frame is a
  // protocol violation at the spec layer (the conformance machine is bound
  // to the connection's hello id) — it must bump the drop counter, kill the
  // connection, and leave site 1's health row untouched.
  const BayesianNetwork net = StudentNetwork();
  const std::string port_file = TempPortFile("forged");
  std::unique_ptr<FakeSite> site0;
  std::unique_ptr<FakeSite> site1;
  std::atomic<bool> stop{false};
  std::thread connector([&site0, &site1, &stop, &port_file] {
    const int port = ReadPortFile(port_file);
    ASSERT_GT(port, 0);
    site0 = std::make_unique<FakeSite>(port, 0, [&stop](TcpSocket* socket) {
      SiteStatsReport honest;
      honest.site = 0;
      honest.events_processed = 4242;
      honest.syncs_sent = 7;
      SiteStatsReport forged;
      forged.site = 1;
      forged.events_processed = 999999;
      std::vector<uint8_t> frames;
      AppendFrame(MakeStatsReport(honest), &frames);
      AppendFrame(MakeStatsReport(forged), &frames);
      if (!socket->SendAll(frames.data(), frames.size()).ok()) return;
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<uint8_t> beat;
        AppendFrame(MakeHeartbeat(0), &beat);
        if (!socket->SendAll(beat.data(), beat.size()).ok()) return;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    });
    site1 = std::make_unique<FakeSite>(port, 1, [&stop](TcpSocket* socket) {
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<uint8_t> beat;
        AppendFrame(MakeHeartbeat(1), &beat);
        if (!socket->SendAll(beat.data(), beat.size()).ok()) return;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    });
  });

  const int64_t dropped_before = static_cast<int64_t>(
      MetricsRegistry::Global()
          .GetCounter("net.reactor.forged_stats_dropped")
          ->Value());
  StatusOr<std::unique_ptr<Session>> session =
      SessionBuilder(net)
          .WithBackend(Backend::kLocalTcp)
          .WithExternalSites()
          .WithStrategy(TrackingStrategy::kUniform)
          .WithSites(2)
          .WithSeed(5)
          .WithListenPort(0)
          .WithPortFile(port_file)
          .WithLivenessTimeout(5000)
          .Build();
  connector.join();
  ASSERT_TRUE(session.ok()) << session.status();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  MetricsSnapshot live;
  bool settled = false;
  while (std::chrono::steady_clock::now() < deadline && !settled) {
    live = (*session)->Metrics();
    const int64_t dropped =
        CounterValueOrZero(live, "net.reactor.forged_stats_dropped");
    settled = dropped > dropped_before && live.sites.size() == 2 &&
              live.sites[0].events_processed == 4242;
    if (!settled) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(settled) << "forged report never observed as dropped";
  // The truthful report landed; the forged one indexed nothing.
  EXPECT_EQ(live.sites[0].events_processed, 4242);
  EXPECT_EQ(live.sites[0].syncs_sent, 7u);
  EXPECT_EQ(live.sites[1].events_processed, 0);
  EXPECT_EQ(live.sites[1].stats_reports, 0u);

  stop.store(true, std::memory_order_release);
  session->reset();  // closes the connections, releasing the fake sites
  site0.reset();
  site1.reset();
}

}  // namespace
}  // namespace dsgm
