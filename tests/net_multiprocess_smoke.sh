#!/usr/bin/env bash
# Multi-process cluster smoke test, run by ctest as net.multiprocess_smoke:
# starts one dsgm_coordinator and two dsgm_site processes on localhost TCP
# (ephemeral port via a port file), streams 50k events, and requires the
# coordinator's estimates to satisfy the same max_counter_rel_error bound
# as the in-process run (cluster_test.cc's ApproxModeBoundedError: 0.05).
#
# Usage: net_multiprocess_smoke.sh <dsgm_coordinator> <dsgm_site>
set -euo pipefail

COORDINATOR_BIN="$1"
SITE_BIN="$2"
NETWORK=student
EVENTS=50000
SITES=2
BOUND=0.05

WORKDIR="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

PORT_FILE="$WORKDIR/port"

"$COORDINATOR_BIN" \
  --network "$NETWORK" --strategy uniform --sites "$SITES" \
  --events "$EVENTS" --seed 12345 \
  --port 0 --port-file "$PORT_FILE" --max-rel-error "$BOUND" &
COORDINATOR_PID=$!
PIDS+=("$COORDINATOR_PID")

# Wait for the coordinator to publish its ephemeral port.
for _ in $(seq 1 200); do
  [ -s "$PORT_FILE" ] && break
  if ! kill -0 "$COORDINATOR_PID" 2>/dev/null; then
    echo "FAIL: coordinator exited before publishing its port" >&2
    exit 1
  fi
  sleep 0.05
done
if [ ! -s "$PORT_FILE" ]; then
  echo "FAIL: port file never appeared" >&2
  exit 1
fi
PORT="$(cat "$PORT_FILE")"
echo "coordinator listening on port $PORT"

SITE_PIDS=()
for site in $(seq 0 $((SITES - 1))); do
  "$SITE_BIN" --network "$NETWORK" --site "$site" --port "$PORT" --seed 12345 &
  SITE_PIDS+=("$!")
  PIDS+=("$!")
done

STATUS=0
for pid in "${SITE_PIDS[@]}"; do
  wait "$pid" || STATUS=$?
done
wait "$COORDINATOR_PID" || STATUS=$?

if [ "$STATUS" -ne 0 ]; then
  echo "FAIL: a cluster process exited with status $STATUS" >&2
  exit "$STATUS"
fi
echo "PASS: $SITES site processes, $EVENTS events over localhost TCP, rel error <= $BOUND"
