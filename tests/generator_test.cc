// Tests for bayes/generator.h.

#include <gtest/gtest.h>

#include <cmath>

#include "bayes/generator.h"
#include "bayes/io.h"
#include "bayes/repository.h"

namespace dsgm {
namespace {

NetworkSpec SmallSpec() {
  NetworkSpec spec;
  spec.name = "small";
  spec.num_nodes = 20;
  spec.num_edges = 30;
  spec.min_cardinality = 2;
  spec.max_cardinality = 4;
  spec.target_params = 300;
  return spec;
}

TEST(GeneratorTest, MatchesStructuralSpec) {
  StatusOr<BayesianNetwork> net = GenerateNetwork(SmallSpec(), 1);
  ASSERT_TRUE(net.ok()) << net.status();
  EXPECT_EQ(net->num_variables(), 20);
  EXPECT_EQ(net->dag().num_edges(), 30);
  const double miss = std::abs(static_cast<double>(net->FreeParams() - 300)) / 300.0;
  EXPECT_LE(miss, 0.05) << "achieved params: " << net->FreeParams();
}

TEST(GeneratorTest, DeterministicInSeed) {
  StatusOr<BayesianNetwork> a = GenerateNetwork(SmallSpec(), 5);
  StatusOr<BayesianNetwork> b = GenerateNetwork(SmallSpec(), 5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(SerializeNetwork(*a), SerializeNetwork(*b));
}

TEST(GeneratorTest, DifferentSeedsGiveDifferentNetworks) {
  StatusOr<BayesianNetwork> a = GenerateNetwork(SmallSpec(), 5);
  StatusOr<BayesianNetwork> b = GenerateNetwork(SmallSpec(), 6);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(SerializeNetwork(*a), SerializeNetwork(*b));
}

TEST(GeneratorTest, RespectsInDegreeCap) {
  NetworkSpec spec = SmallSpec();
  spec.max_parents = 2;
  spec.target_params = 0;  // No repair; structure only.
  StatusOr<BayesianNetwork> net = GenerateNetwork(spec, 2);
  ASSERT_TRUE(net.ok()) << net.status();
  for (int i = 0; i < net->num_variables(); ++i) {
    EXPECT_LE(static_cast<int>(net->dag().parents(i).size()), 2);
  }
}

TEST(GeneratorTest, CpdFloorRespected) {
  NetworkSpec spec = SmallSpec();
  spec.min_prob = 0.03;
  StatusOr<BayesianNetwork> net = GenerateNetwork(spec, 3);
  ASSERT_TRUE(net.ok());
  EXPECT_GE(net->MinCpdEntry(), std::min(0.03, 0.5 / spec.max_cardinality) - 1e-12);
}

TEST(GeneratorTest, InfeasibleSpecsRejected) {
  NetworkSpec spec = SmallSpec();
  spec.num_edges = 10;  // Below num_nodes - 1.
  EXPECT_FALSE(GenerateNetwork(spec, 1).ok());

  spec = SmallSpec();
  spec.num_nodes = 1;
  EXPECT_FALSE(GenerateNetwork(spec, 1).ok());

  spec = SmallSpec();
  spec.min_cardinality = 5;
  spec.max_cardinality = 4;
  EXPECT_FALSE(GenerateNetwork(spec, 1).ok());

  spec = SmallSpec();
  spec.max_parents = 1;  // 20 nodes can host at most 19 edges with cap 1.
  EXPECT_FALSE(GenerateNetwork(spec, 1).ok());
}

TEST(GeneratorTest, UnreachableParamTargetRejected) {
  NetworkSpec spec = SmallSpec();
  spec.target_params = 1000000;  // Impossible with cards <= 4, 20 nodes.
  EXPECT_FALSE(GenerateNetwork(spec, 1).ok());
}

TEST(MakeNaiveBayesTest, ShapeIsTwoLayerTree) {
  const BayesianNetwork nb = MakeNaiveBayes(10, 3, 4, 77);
  EXPECT_EQ(nb.num_variables(), 11);
  EXPECT_EQ(nb.cardinality(0), 3);
  EXPECT_TRUE(nb.dag().parents(0).empty());
  for (int i = 1; i <= 10; ++i) {
    EXPECT_EQ(nb.dag().parents(i), (std::vector<int>{0}));
    EXPECT_EQ(nb.cardinality(i), 4);
    EXPECT_EQ(nb.parent_cardinality(i), 3);
  }
}

TEST(InflateDomainsTest, NewAlarmShape) {
  const BayesianNetwork alarm = Alarm();
  const BayesianNetwork inflated = InflateDomains(alarm, 6, 20, 9);
  EXPECT_EQ(inflated.num_variables(), alarm.num_variables());
  EXPECT_EQ(inflated.dag().num_edges(), alarm.dag().num_edges());
  // Exactly 6 variables have cardinality 20 (ALARM's own cards are <= 4).
  int big = 0;
  for (int i = 0; i < inflated.num_variables(); ++i) {
    if (inflated.cardinality(i) == 20) ++big;
    // Structure preserved.
    EXPECT_EQ(inflated.dag().parents(i), alarm.dag().parents(i));
  }
  EXPECT_EQ(big, 6);
  EXPECT_GT(inflated.FreeParams(), alarm.FreeParams());
}

TEST(InflateDomainsTest, UntouchedCpdsPreserved) {
  const BayesianNetwork alarm = Alarm();
  const BayesianNetwork inflated = InflateDomains(alarm, 6, 20, 9);
  for (int i = 0; i < alarm.num_variables(); ++i) {
    bool touched = inflated.cardinality(i) != alarm.cardinality(i);
    for (int parent : alarm.dag().parents(i)) {
      touched = touched || inflated.cardinality(parent) != alarm.cardinality(parent);
    }
    if (touched) continue;
    ASSERT_EQ(inflated.cpd(i).num_rows(), alarm.cpd(i).num_rows());
    for (int64_t row = 0; row < alarm.cpd(i).num_rows(); ++row) {
      for (int j = 0; j < alarm.cardinality(i); ++j) {
        EXPECT_DOUBLE_EQ(inflated.cpd(i).prob(j, row), alarm.cpd(i).prob(j, row));
      }
    }
  }
}

TEST(RemoveSinksTest, ShrinksToTargetAndPreservesCpds) {
  const BayesianNetwork link = Link();
  const BayesianNetwork small = RemoveSinksToSize(link, 224);
  EXPECT_EQ(small.num_variables(), 224);
  EXPECT_TRUE(small.dag().IsAcyclic());
  EXPECT_LT(small.dag().num_edges(), link.dag().num_edges());
  // Every retained variable keeps its exact CPD (spot check the first few).
  for (int i = 0; i < 10; ++i) {
    const CpdTable& cpd = small.cpd(i);
    for (int64_t row = 0; row < std::min<int64_t>(cpd.num_rows(), 4); ++row) {
      double total = 0.0;
      for (int j = 0; j < cpd.cardinality(); ++j) total += cpd.prob(j, row);
      EXPECT_NEAR(total, 1.0, 1e-9);
    }
  }
}

TEST(RemoveSinksTest, SeriesIsMonotone) {
  const BayesianNetwork link = Link();
  int prev_edges = link.dag().num_edges();
  for (int target : {624, 524, 424}) {
    const BayesianNetwork net = RemoveSinksToSize(link, target);
    EXPECT_EQ(net.num_variables(), target);
    EXPECT_LE(net.dag().num_edges(), prev_edges);
    prev_edges = net.dag().num_edges();
  }
}

TEST(RemoveSinksTest, IdentityWhenTargetIsCurrentSize) {
  const BayesianNetwork alarm = Alarm();
  const BayesianNetwork same = RemoveSinksToSize(alarm, alarm.num_variables());
  EXPECT_EQ(same.num_variables(), alarm.num_variables());
  EXPECT_EQ(same.dag().num_edges(), alarm.dag().num_edges());
}

}  // namespace
}  // namespace dsgm
