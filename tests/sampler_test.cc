// Tests for bayes/sampler.h: forward sampling and test-event generation.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "bayes/repository.h"
#include "bayes/sampler.h"

namespace dsgm {
namespace {

TEST(ForwardSamplerTest, MarginalsMatchGroundTruth) {
  const BayesianNetwork net = StudentNetwork();
  ForwardSampler sampler(net, 42);
  constexpr int kDraws = 200000;
  std::vector<double> difficulty(2, 0.0);
  std::vector<double> grade(3, 0.0);
  Instance x;
  for (int i = 0; i < kDraws; ++i) {
    sampler.Sample(&x);
    ++difficulty[static_cast<size_t>(x[0])];
    ++grade[static_cast<size_t>(x[2])];
  }
  EXPECT_NEAR(difficulty[0] / kDraws, 0.6, 0.01);
  // P(g0) = sum over d,i of P(d)P(i)P(g0|d,i)
  //       = .6*.7*.3 + .6*.3*.9 + .4*.7*.05 + .4*.3*.5 = 0.362.
  EXPECT_NEAR(grade[0] / kDraws, 0.362, 0.01);
}

TEST(ForwardSamplerTest, DeterministicForFixedSeed) {
  const BayesianNetwork net = StudentNetwork();
  ForwardSampler a(net, 7);
  ForwardSampler b(net, 7);
  Instance xa;
  Instance xb;
  for (int i = 0; i < 100; ++i) {
    a.Sample(&xa);
    b.Sample(&xb);
    EXPECT_EQ(xa, xb);
  }
}

TEST(ForwardSamplerTest, JointFrequencyMatchesProbability) {
  const BayesianNetwork net = StudentNetwork();
  ForwardSampler sampler(net, 99);
  constexpr int kDraws = 300000;
  std::map<Instance, int> counts;
  Instance x;
  for (int i = 0; i < kDraws; ++i) {
    sampler.Sample(&x);
    ++counts[x];
  }
  // Check a handful of assignments against the exact joint.
  for (const Instance& probe :
       {Instance{0, 0, 0, 0, 0}, Instance{1, 1, 2, 1, 1}, Instance{0, 1, 0, 1, 0}}) {
    const double expected = net.JointProbability(probe);
    const double observed = counts[probe] / static_cast<double>(kDraws);
    EXPECT_NEAR(observed, expected, 0.01) << "assignment mismatch";
  }
}

TEST(TestEventsTest, EventsAreAncestrallyClosedAndAboveFloor) {
  const BayesianNetwork net = StudentNetwork();
  Rng rng(1);
  TestEventOptions options;
  options.count = 200;
  options.min_prob = 0.01;
  const std::vector<TestEvent> events = GenerateTestEvents(net, options, rng);
  ASSERT_EQ(events.size(), 200u);
  for (const TestEvent& event : events) {
    EXPECT_GE(event.truth_prob, 0.01);
    // Verify closure: every parent of every node is present.
    for (int node : event.assignment.nodes) {
      for (int parent : net.dag().parents(node)) {
        EXPECT_TRUE(std::binary_search(event.assignment.nodes.begin(),
                                       event.assignment.nodes.end(), parent));
      }
    }
    // Stored probability must match recomputation.
    EXPECT_NEAR(event.truth_prob, net.ClosedSubsetProbability(event.assignment),
                1e-12);
  }
}

TEST(TestEventsTest, SubsetSizeRespected) {
  const BayesianNetwork net = Alarm();
  Rng rng(2);
  TestEventOptions options;
  options.count = 100;
  options.max_subset = 8;
  const std::vector<TestEvent> events = GenerateTestEvents(net, options, rng);
  for (const TestEvent& event : events) {
    EXPECT_LE(static_cast<int>(event.assignment.nodes.size()), 8);
  }
}

TEST(TestEventsTest, WorksOnLargeNetworks) {
  // LINK has 724 variables; full assignments have negligible probability, so
  // event generation must rely on small ancestral closures.
  const BayesianNetwork net = Link();
  Rng rng(3);
  TestEventOptions options;
  options.count = 50;
  const std::vector<TestEvent> events = GenerateTestEvents(net, options, rng);
  ASSERT_EQ(events.size(), 50u);
  for (const TestEvent& event : events) {
    EXPECT_GT(event.truth_prob, 0.0);
    EXPECT_LE(static_cast<int>(event.assignment.nodes.size()), options.max_subset);
  }
}

}  // namespace
}  // namespace dsgm
