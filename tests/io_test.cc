// Tests for bayes/io.h: serialization round trips and parse diagnostics.

#include <gtest/gtest.h>

#include <cstdio>

#include "bayes/generator.h"
#include "bayes/io.h"
#include "bayes/repository.h"

namespace dsgm {
namespace {

void ExpectNetworksEqual(const BayesianNetwork& a, const BayesianNetwork& b) {
  ASSERT_EQ(a.num_variables(), b.num_variables());
  EXPECT_EQ(a.name(), b.name());
  for (int i = 0; i < a.num_variables(); ++i) {
    EXPECT_EQ(a.variable(i).name, b.variable(i).name);
    ASSERT_EQ(a.cardinality(i), b.cardinality(i));
    ASSERT_EQ(a.dag().parents(i), b.dag().parents(i));
    ASSERT_EQ(a.cpd(i).num_rows(), b.cpd(i).num_rows());
    for (int64_t row = 0; row < a.cpd(i).num_rows(); ++row) {
      for (int j = 0; j < a.cardinality(i); ++j) {
        EXPECT_NEAR(a.cpd(i).prob(j, row), b.cpd(i).prob(j, row), 1e-12);
      }
    }
  }
}

TEST(IoTest, StudentRoundTrip) {
  const BayesianNetwork net = StudentNetwork();
  StatusOr<BayesianNetwork> parsed = ParseNetwork(SerializeNetwork(net));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ExpectNetworksEqual(net, *parsed);
}

TEST(IoTest, GeneratedNetworkRoundTrip) {
  NetworkSpec spec;
  spec.name = "roundtrip";
  spec.num_nodes = 25;
  spec.num_edges = 40;
  spec.target_params = 400;
  StatusOr<BayesianNetwork> net = GenerateNetwork(spec, 11);
  ASSERT_TRUE(net.ok());
  StatusOr<BayesianNetwork> parsed = ParseNetwork(SerializeNetwork(*net));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ExpectNetworksEqual(*net, *parsed);
}

TEST(IoTest, FileRoundTrip) {
  const BayesianNetwork net = StudentNetwork();
  const std::string path = ::testing::TempDir() + "/student.bn";
  ASSERT_TRUE(WriteNetworkToFile(net, path).ok());
  StatusOr<BayesianNetwork> parsed = ReadNetworkFromFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ExpectNetworksEqual(net, *parsed);
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileIsNotFound) {
  StatusOr<BayesianNetwork> result = ReadNetworkFromFile("/nonexistent/x.bn");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(IoTest, RejectsBadHeader) {
  EXPECT_FALSE(ParseNetwork("not_a_network v1\nnodes 1\n").ok());
  EXPECT_FALSE(ParseNetwork("").ok());
}

TEST(IoTest, RejectsUnknownKeyword) {
  const std::string text =
      "dsgm_network v1\nnodes 1\nnode 0 2 A\nfrobnicate 3\nend\n";
  StatusOr<BayesianNetwork> result = ParseNetwork(text);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("frobnicate"), std::string::npos);
}

TEST(IoTest, RejectsRowNotSummingToOne) {
  const std::string text =
      "dsgm_network v1\n"
      "nodes 1\n"
      "node 0 2 A\n"
      "edges 0\n"
      "cpd 0\n"
      "row 0 0.5 0.4\n"
      "end\n";
  EXPECT_FALSE(ParseNetwork(text).ok());
}

TEST(IoTest, RejectsMissingCpdRows) {
  const std::string text =
      "dsgm_network v1\n"
      "nodes 2\n"
      "node 0 2 A\n"
      "node 1 2 B\n"
      "edges 1\n"
      "edge 0 1\n"
      "cpd 0\n"
      "row 0 0.5 0.5\n"
      "cpd 1\n"
      "row 0 0.5 0.5\n"
      "end\n";  // cpd 1 needs 2 rows.
  EXPECT_FALSE(ParseNetwork(text).ok());
}

TEST(IoTest, RejectsEdgeCountMismatch) {
  const std::string text =
      "dsgm_network v1\n"
      "nodes 2\n"
      "node 0 2 A\n"
      "node 1 2 B\n"
      "edges 2\n"
      "edge 0 1\n"
      "cpd 0\nrow 0 0.5 0.5\n"
      "cpd 1\nrow 0 0.5 0.5\nrow 1 0.5 0.5\n"
      "end\n";
  EXPECT_FALSE(ParseNetwork(text).ok());
}

TEST(IoTest, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "dsgm_network v1\n"
      "# a comment\n"
      "\n"
      "name demo net\n"
      "nodes 1\n"
      "node 0 2 OnlyVar\n"
      "edges 0\n"
      "cpd 0\n"
      "row 0 0.25 0.75\n"
      "end\n";
  StatusOr<BayesianNetwork> net = ParseNetwork(text);
  ASSERT_TRUE(net.ok()) << net.status();
  EXPECT_EQ(net->name(), "demo net");
  EXPECT_EQ(net->variable(0).name, "OnlyVar");
  EXPECT_DOUBLE_EQ(net->cpd(0).prob(1, 0), 0.75);
}

}  // namespace
}  // namespace dsgm
