// Tests for common/statistics.h.

#include <gtest/gtest.h>

#include <cmath>

#include "common/statistics.h"

namespace dsgm {
namespace {

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(OnlineStatsTest, MatchesDirectComputation) {
  OnlineStats stats;
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double v : values) stats.Add(v);
  EXPECT_EQ(stats.count(), 8);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance of the classic example is 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stats.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(OnlineStatsTest, SingleValue) {
  OnlineStats stats;
  stats.Add(3.5);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 3.5);
  EXPECT_DOUBLE_EQ(stats.max(), 3.5);
}

TEST(SampleSetTest, QuantilesOfKnownSequence) {
  SampleSet samples;
  for (int i = 1; i <= 100; ++i) samples.Add(static_cast<double>(i));
  EXPECT_EQ(samples.count(), 100);
  EXPECT_NEAR(samples.Quantile(0.0), 1.0, 1e-12);
  EXPECT_NEAR(samples.Quantile(1.0), 100.0, 1e-12);
  EXPECT_NEAR(samples.Quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(samples.Mean(), 50.5, 1e-9);
}

TEST(SampleSetTest, QuantileAfterLaterAddIsCorrect) {
  SampleSet samples;
  samples.Add(1.0);
  samples.Add(3.0);
  EXPECT_NEAR(samples.Quantile(0.5), 2.0, 1e-12);
  samples.Add(100.0);  // Must invalidate the sorted cache.
  EXPECT_NEAR(samples.Quantile(1.0), 100.0, 1e-12);
}

TEST(SampleSetTest, BoxplotOrdering) {
  SampleSet samples;
  for (int i = 0; i < 1000; ++i) samples.Add(static_cast<double>(i % 97));
  const BoxplotSummary box = samples.Boxplot();
  EXPECT_LE(box.p10, box.p25);
  EXPECT_LE(box.p25, box.p50);
  EXPECT_LE(box.p50, box.p75);
  EXPECT_LE(box.p75, box.p90);
  EXPECT_EQ(box.count, 1000);
}

TEST(SampleSetTest, EmptyQuantileIsZero) {
  SampleSet samples;
  EXPECT_DOUBLE_EQ(samples.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(samples.Mean(), 0.0);
}

}  // namespace
}  // namespace dsgm
