// Tests for net/compress.h (the protocol-v5 LZ byte codec) and the
// kCompressed envelope path in net/codec.h. The decompressor is the
// untrusted surface — every adversarial shape here must come back as a
// Status error, never a crash, an out-of-bounds access, or a silent
// wrong-size output (the ASan/UBSan CI job runs this suite to enforce
// that; fuzz_compress_decode and fuzz_compress_roundtrip keep probing the
// same surface continuously).

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "net/codec.h"
#include "net/compress.h"

namespace dsgm {
namespace {

std::vector<uint8_t> Pack(const std::vector<uint8_t>& raw) {
  std::vector<uint8_t> packed;
  LzCompress(raw.data(), raw.size(), &packed);
  return packed;
}

std::vector<uint8_t> UnpackOrDie(const std::vector<uint8_t>& packed,
                                 size_t expected_size) {
  std::vector<uint8_t> raw;
  const Status status =
      LzDecompress(packed.data(), packed.size(), expected_size, &raw);
  EXPECT_TRUE(status.ok()) << status;
  return raw;
}

TEST(CompressTest, EmptyInputRoundTrips) {
  const std::vector<uint8_t> packed = Pack({});
  EXPECT_TRUE(UnpackOrDie(packed, 0).empty());
}

TEST(CompressTest, TinyInputsBelowMinMatchRoundTrip) {
  // 1..kLzMinMatch-byte inputs cannot contain a match; they must still
  // round-trip as literal-only blocks.
  for (size_t n = 1; n <= kLzMinMatch; ++n) {
    std::vector<uint8_t> raw;
    for (size_t i = 0; i < n; ++i) raw.push_back(static_cast<uint8_t>(i * 37));
    EXPECT_EQ(UnpackOrDie(Pack(raw), raw.size()), raw) << "n=" << n;
  }
}

TEST(CompressTest, RepetitiveInputCompressesWell) {
  // The wire case the codec exists for: a varint-packed low-cardinality
  // event batch is a short alphabet tiling a long buffer. Demand a real
  // ratio, not just "smaller".
  std::vector<uint8_t> raw;
  for (int i = 0; i < 8192; ++i) raw.push_back(static_cast<uint8_t>(i % 3));
  const std::vector<uint8_t> packed = Pack(raw);
  EXPECT_LT(packed.size(), raw.size() / 4);
  EXPECT_EQ(UnpackOrDie(packed, raw.size()), raw);
}

TEST(CompressTest, IncompressibleInputStaysWithinBound) {
  Rng rng(98765);
  std::vector<uint8_t> raw;
  for (int i = 0; i < 4096; ++i) raw.push_back(static_cast<uint8_t>(rng.Next()));
  const std::vector<uint8_t> packed = Pack(raw);
  EXPECT_LE(packed.size(), LzCompressBound(raw.size()));
  EXPECT_EQ(UnpackOrDie(packed, raw.size()), raw);
}

TEST(CompressTest, RandomizedRoundTripProperty) {
  // Mixed-texture buffers: runs, copies of earlier windows (long matches at
  // varied offsets), and noise. Every shape must round-trip bit-exactly.
  Rng rng(20260807);
  for (int iteration = 0; iteration < 300; ++iteration) {
    std::vector<uint8_t> raw;
    const size_t target = rng.NextBounded(4096);
    while (raw.size() < target) {
      switch (rng.NextBounded(3)) {
        case 0: {  // Literal noise.
          const size_t n = 1 + rng.NextBounded(32);
          for (size_t i = 0; i < n; ++i) {
            raw.push_back(static_cast<uint8_t>(rng.Next()));
          }
          break;
        }
        case 1: {  // A run.
          const uint8_t byte = static_cast<uint8_t>(rng.Next());
          const size_t n = 1 + rng.NextBounded(256);
          raw.insert(raw.end(), n, byte);
          break;
        }
        default: {  // Copy an earlier window (forces interior matches).
          if (raw.empty()) break;
          const size_t offset = 1 + rng.NextBounded(raw.size());
          const size_t n = 1 + rng.NextBounded(128);
          for (size_t i = 0; i < n; ++i) {
            raw.push_back(raw[raw.size() - offset]);
          }
          break;
        }
      }
    }
    const std::vector<uint8_t> packed = Pack(raw);
    ASSERT_LE(packed.size(), LzCompressBound(raw.size()))
        << "iteration " << iteration;
    ASSERT_EQ(UnpackOrDie(packed, raw.size()), raw) << "iteration " << iteration;
  }
}

TEST(CompressTest, DecompressAppendsAfterExistingBytes) {
  const std::vector<uint8_t> raw = {1, 2, 3, 4, 5, 1, 2, 3, 4, 5, 1, 2, 3};
  const std::vector<uint8_t> packed = Pack(raw);
  std::vector<uint8_t> out = {0xaa, 0xbb};
  ASSERT_TRUE(LzDecompress(packed.data(), packed.size(), raw.size(), &out).ok());
  ASSERT_EQ(out.size(), 2 + raw.size());
  EXPECT_EQ(out[0], 0xaa);
  EXPECT_EQ(out[1], 0xbb);
  EXPECT_TRUE(std::memcmp(out.data() + 2, raw.data(), raw.size()) == 0);
}

// --- Adversarial inputs: errors, never crashes. ------------------------

TEST(CompressTest, TruncationAtEveryPrefixFails) {
  std::vector<uint8_t> raw;
  for (int i = 0; i < 600; ++i) raw.push_back(static_cast<uint8_t>(i % 7));
  for (int i = 0; i < 64; ++i) raw.push_back(static_cast<uint8_t>(i * 13));
  const std::vector<uint8_t> packed = Pack(raw);
  for (size_t cut = 0; cut < packed.size(); ++cut) {
    std::vector<uint8_t> out;
    EXPECT_FALSE(LzDecompress(packed.data(), cut, raw.size(), &out).ok())
        << "prefix of length " << cut << " decompressed";
  }
}

TEST(CompressTest, DeclaredSizeMismatchFailsBothWays) {
  std::vector<uint8_t> raw;
  for (int i = 0; i < 500; ++i) raw.push_back(static_cast<uint8_t>(i % 5));
  const std::vector<uint8_t> packed = Pack(raw);
  for (size_t claimed : {raw.size() - 1, raw.size() + 1, size_t{0}}) {
    std::vector<uint8_t> out;
    EXPECT_FALSE(LzDecompress(packed.data(), packed.size(), claimed, &out).ok())
        << "claimed " << claimed << " for a " << raw.size() << "-byte block";
  }
}

TEST(CompressTest, ZeroMatchOffsetFails) {
  // token: 4 literals, then a match; offset 0x0000 points at nothing.
  std::vector<uint8_t> packed = {0x41, 'a', 'b', 'c', 'd', 0x00, 0x00};
  std::vector<uint8_t> out;
  EXPECT_FALSE(LzDecompress(packed.data(), packed.size(), 9, &out).ok());
}

TEST(CompressTest, OutOfWindowMatchOffsetFails) {
  // 4 literals produced so far, then a match reaching 5 bytes back: one
  // byte before the start of the output buffer.
  std::vector<uint8_t> packed = {0x41, 'a', 'b', 'c', 'd', 0x05, 0x00};
  std::vector<uint8_t> out;
  EXPECT_FALSE(LzDecompress(packed.data(), packed.size(), 9, &out).ok());
}

TEST(CompressTest, MatchFromEmptyOutputFails) {
  // A match token before any literal exists to copy from.
  std::vector<uint8_t> packed = {0x01, 0x01, 0x00};
  std::vector<uint8_t> out;
  EXPECT_FALSE(LzDecompress(packed.data(), packed.size(), 5, &out).ok());
}

TEST(CompressTest, LiteralLengthOverrunFails) {
  // Token claims 10 literals; only 3 bytes follow.
  std::vector<uint8_t> packed = {0xa0, 'x', 'y', 'z'};
  std::vector<uint8_t> out;
  EXPECT_FALSE(LzDecompress(packed.data(), packed.size(), 10, &out).ok());
}

TEST(CompressTest, ExtensionByteBombIsBounded) {
  // A literal-length nibble of 15 continued by a long 0xff chain claims a
  // gigantic literal run backed by nothing. Must fail promptly — the
  // declared expected_size (capped by the caller) bounds any allocation.
  std::vector<uint8_t> packed(1, 0xf0);
  packed.insert(packed.end(), 4096, 0xff);
  std::vector<uint8_t> out;
  EXPECT_FALSE(LzDecompress(packed.data(), packed.size(), 1 << 20, &out).ok());
}

TEST(CompressTest, RandomBytesNeverCrash) {
  Rng rng(1337);
  std::vector<uint8_t> packed;
  for (int iteration = 0; iteration < 3000; ++iteration) {
    packed.clear();
    const size_t size = rng.NextBounded(128);
    for (size_t i = 0; i < size; ++i) {
      packed.push_back(static_cast<uint8_t>(rng.Next()));
    }
    std::vector<uint8_t> out;
    // Outcome (ok or error) is irrelevant; surviving under ASan/UBSan is
    // the assertion. Cap expected_size the way the codec does.
    LzDecompress(packed.data(), packed.size(), rng.NextBounded(1 << 16), &out)
        .ok();
  }
}

TEST(CompressTest, WireCompressionSwitchToggles) {
  ASSERT_TRUE(WireCompressionEnabled());  // On by default.
  SetWireCompressionEnabled(false);
  EXPECT_FALSE(WireCompressionEnabled());
  SetWireCompressionEnabled(true);
  EXPECT_TRUE(WireCompressionEnabled());
}

// --- The kCompressed envelope through the frame codec. -----------------

Frame BigBatchFrame() {
  EventBatch batch;
  batch.num_events = 1024;
  batch.values.assign(4096, 2);
  return MakeFrame(batch);
}

TEST(CompressEnvelopeTest, EligibleFrameShipsSmallerAndRoundTrips) {
  SetWireCompressionEnabled(true);
  const Frame frame = BigBatchFrame();
  std::vector<uint8_t> raw;
  AppendFrame(frame, &raw);
  std::vector<uint8_t> wire;
  AppendFrameMaybeCompressed(frame, &wire);
  EXPECT_LT(wire.size(), raw.size());
  EXPECT_EQ(wire[4], static_cast<uint8_t>(FrameType::kCompressed));

  Frame decoded;
  size_t consumed = 0;
  ASSERT_TRUE(DecodeFrame(wire.data(), wire.size(), &decoded, &consumed).ok());
  EXPECT_EQ(consumed, wire.size());
  // The envelope is unwrapped in the decoder: the Frame carries the INNER
  // type plus the compressed flag for the conformance layer.
  ASSERT_EQ(decoded.type, FrameType::kEventBatch);
  EXPECT_TRUE(decoded.compressed);
  EXPECT_TRUE(decoded.batch == frame.batch);
}

TEST(CompressEnvelopeTest, DisabledSwitchShipsRaw) {
  SetWireCompressionEnabled(false);
  std::vector<uint8_t> wire;
  AppendFrameMaybeCompressed(BigBatchFrame(), &wire);
  SetWireCompressionEnabled(true);
  EXPECT_EQ(wire[4], static_cast<uint8_t>(FrameType::kEventBatch));
}

TEST(CompressEnvelopeTest, IneligibleFrameTypesAlwaysShipRaw) {
  // kReports bundles ride the latency path — only kFinalCounts bundles and
  // event batches are eligible.
  UpdateBundle bundle;
  bundle.kind = UpdateBundle::Kind::kReports;
  bundle.site = 1;
  for (int64_t c = 0; c < 2000; ++c) {
    bundle.reports.push_back(CounterReport{c, 9});
  }
  std::vector<uint8_t> wire;
  AppendFrameMaybeCompressed(MakeFrame(bundle), &wire);
  EXPECT_EQ(wire[4], static_cast<uint8_t>(FrameType::kUpdateBundle));
}

TEST(CompressEnvelopeTest, IncompressiblePayloadFallsBackToRaw) {
  // An eligible batch of high-entropy values: the LZ pass cannot win, so
  // the profitability check must ship the raw frame, not a bigger envelope.
  Rng rng(5150);
  EventBatch batch;
  batch.num_events = 256;
  for (int i = 0; i < 4096; ++i) {
    batch.values.push_back(static_cast<int32_t>(rng.NextBounded(1 << 20)));
  }
  std::vector<uint8_t> raw;
  AppendFrame(MakeFrame(batch), &raw);
  std::vector<uint8_t> wire;
  AppendFrameMaybeCompressed(MakeFrame(batch), &wire);
  EXPECT_EQ(wire[4], static_cast<uint8_t>(FrameType::kEventBatch));
  EXPECT_EQ(wire.size(), raw.size());
}

TEST(CompressEnvelopeTest, TinyEligibleFrameStaysRaw) {
  // Below the kCompressMinPayload floor the envelope cannot amortize.
  EventBatch batch;
  batch.num_events = 1;
  batch.values = {1, 2, 3};
  std::vector<uint8_t> wire;
  AppendFrameMaybeCompressed(MakeFrame(batch), &wire);
  EXPECT_EQ(wire[4], static_cast<uint8_t>(FrameType::kEventBatch));
}

std::vector<uint8_t> FrameOf(const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> wire;
  wire.reserve(payload.size() + 4);
  for (int i = 0; i < 4; ++i) {
    wire.push_back(static_cast<uint8_t>(payload.size() >> (8 * i)));
  }
  wire.insert(wire.end(), payload.begin(), payload.end());
  return wire;
}

Status DecodeWire(const std::vector<uint8_t>& wire) {
  Frame frame;
  size_t consumed = 0;
  return DecodeFrame(wire.data(), wire.size(), &frame, &consumed);
}

TEST(CompressEnvelopeTest, DeclaredSizeZeroRejected) {
  std::vector<uint8_t> payload = {static_cast<uint8_t>(FrameType::kCompressed)};
  AppendVarint(0, &payload);
  EXPECT_FALSE(DecodeWire(FrameOf(payload)).ok());
}

TEST(CompressEnvelopeTest, DeclaredSizeBeyondMaxPayloadRejected) {
  // The envelope's declared raw size is a remote claim; anything past
  // kMaxFramePayload must be rejected BEFORE any decompression work.
  std::vector<uint8_t> payload = {static_cast<uint8_t>(FrameType::kCompressed)};
  AppendVarint(static_cast<uint64_t>(kMaxFramePayload) + 1, &payload);
  payload.push_back(0x00);
  EXPECT_FALSE(DecodeWire(FrameOf(payload)).ok());
}

TEST(CompressEnvelopeTest, NestedEnvelopeRejected) {
  // Compress a buffer that decompresses to another kCompressed tag: the
  // decoder must refuse to recurse (a zip-bomb lever otherwise).
  std::vector<uint8_t> inner = {static_cast<uint8_t>(FrameType::kCompressed),
                                0x01, 0x00};
  std::vector<uint8_t> payload = {static_cast<uint8_t>(FrameType::kCompressed)};
  AppendVarint(inner.size(), &payload);
  LzCompress(inner.data(), inner.size(), &payload);
  EXPECT_FALSE(DecodeWire(FrameOf(payload)).ok());
}

TEST(CompressEnvelopeTest, CompressedHelloRejected) {
  // Hellos must stay readable pre-negotiation; an enveloped hello is a
  // protocol violation the codec itself refuses.
  std::vector<uint8_t> inner;
  AppendFrame(MakeHello(3), &inner);
  std::vector<uint8_t> hello_payload(inner.begin() + 4, inner.end());
  std::vector<uint8_t> payload = {static_cast<uint8_t>(FrameType::kCompressed)};
  AppendVarint(hello_payload.size(), &payload);
  LzCompress(hello_payload.data(), hello_payload.size(), &payload);
  EXPECT_FALSE(DecodeWire(FrameOf(payload)).ok());
}

TEST(CompressEnvelopeTest, TruncatedLzBlockRejected) {
  const Frame frame = BigBatchFrame();
  SetWireCompressionEnabled(true);
  std::vector<uint8_t> wire;
  AppendFrameMaybeCompressed(frame, &wire);
  ASSERT_EQ(wire[4], static_cast<uint8_t>(FrameType::kCompressed));
  // Chop the LZ block's tail and patch the length prefix to match.
  std::vector<uint8_t> cut(wire.begin(), wire.end() - 16);
  const size_t payload = cut.size() - 4;
  for (int i = 0; i < 4; ++i) {
    cut[static_cast<size_t>(i)] = static_cast<uint8_t>(payload >> (8 * i));
  }
  EXPECT_FALSE(DecodeWire(cut).ok());
}

TEST(CompressEnvelopeTest, GarbageLzBlockNeverCrashes) {
  Rng rng(40490);
  for (int iteration = 0; iteration < 500; ++iteration) {
    std::vector<uint8_t> payload = {
        static_cast<uint8_t>(FrameType::kCompressed)};
    AppendVarint(1 + rng.NextBounded(1 << 12), &payload);
    const size_t garbage = rng.NextBounded(256);
    for (size_t i = 0; i < garbage; ++i) {
      payload.push_back(static_cast<uint8_t>(rng.Next()));
    }
    DecodeWire(FrameOf(payload)).ok();
  }
}

// --- v5 hello capability bits through the codec. -----------------------

TEST(CompressCapsTest, HelloCapsRoundTrip) {
  Frame hello = MakeHello(7, kCapCompression | (uint64_t{1} << 17));
  std::vector<uint8_t> wire;
  AppendFrame(hello, &wire);
  Frame decoded;
  size_t consumed = 0;
  ASSERT_TRUE(DecodeFrame(wire.data(), wire.size(), &decoded, &consumed).ok());
  ASSERT_EQ(decoded.type, FrameType::kHello);
  EXPECT_EQ(decoded.site, 7);
  EXPECT_EQ(decoded.caps, kCapCompression | (uint64_t{1} << 17));
}

TEST(CompressCapsTest, DefaultHelloAdvertisesCompressionWhenEnabled) {
  SetWireCompressionEnabled(true);
  EXPECT_EQ(MakeHello(1).caps & kCapCompression, kCapCompression);
  SetWireCompressionEnabled(false);
  EXPECT_EQ(MakeHello(1).caps & kCapCompression, 0u);
  SetWireCompressionEnabled(true);
}

TEST(CompressCapsTest, V4HelloOmitsTheCapsVarintByteExactly) {
  // Downgraded hellos must be byte-identical to what a real v4 peer sends:
  // no trailing caps varint at all, not a zero varint (a v4 decoder would
  // reject the trailing byte as garbage).
  Frame v4 = MakeHello(3, kCapCompression);
  v4.protocol_version = 4;
  std::vector<uint8_t> v4_wire;
  AppendFrame(v4, &v4_wire);
  Frame v5 = MakeHello(3, 0);
  std::vector<uint8_t> v5_wire;
  AppendFrame(v5, &v5_wire);
  EXPECT_EQ(v4_wire.size() + 1, v5_wire.size());

  Frame decoded;
  size_t consumed = 0;
  ASSERT_TRUE(
      DecodeFrame(v4_wire.data(), v4_wire.size(), &decoded, &consumed).ok());
  EXPECT_EQ(decoded.protocol_version, 4);
  EXPECT_EQ(decoded.caps, 0u);  // Never inherited from the unsent field.
}

}  // namespace
}  // namespace dsgm
