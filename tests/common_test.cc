// Tests for common/: Status, StatusOr, flags, and table formatting.

#include <gtest/gtest.h>

#include "common/flags.h"
#include "common/status.h"
#include "common/table.h"

namespace dsgm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = InvalidArgumentError("bad thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad thing");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad thing");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(FailedPreconditionError("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = NotFoundError("missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValueSupported) {
  StatusOr<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 7);
}

TEST(StatusOrTest, ValueOnErrorDies) {
  StatusOr<int> result = InternalError("boom");
  EXPECT_DEATH((void)result.value(), "boom");
}

TEST(FlagsTest, DefaultsAreReturnedWithoutParsing) {
  Flags flags;
  flags.DefineInt64("instances", 500, "stream length");
  flags.DefineDouble("eps", 0.1, "approximation factor");
  flags.DefineBool("full", false, "full sweep");
  flags.DefineString("network", "alarm", "network name");
  EXPECT_EQ(flags.GetInt64("instances"), 500);
  EXPECT_DOUBLE_EQ(flags.GetDouble("eps"), 0.1);
  EXPECT_FALSE(flags.GetBool("full"));
  EXPECT_EQ(flags.GetString("network"), "alarm");
}

TEST(FlagsTest, ParsesEqualsAndSpaceForms) {
  Flags flags;
  flags.DefineInt64("instances", 500, "");
  flags.DefineDouble("eps", 0.1, "");
  flags.DefineString("network", "alarm", "");
  const char* argv[] = {"prog", "--instances=1000", "--eps", "0.25",
                        "--network=link"};
  ASSERT_TRUE(flags.Parse(5, const_cast<char**>(argv)).ok());
  EXPECT_EQ(flags.GetInt64("instances"), 1000);
  EXPECT_DOUBLE_EQ(flags.GetDouble("eps"), 0.25);
  EXPECT_EQ(flags.GetString("network"), "link");
}

TEST(FlagsTest, BareBoolFlagMeansTrue) {
  Flags flags;
  flags.DefineBool("full", false, "");
  const char* argv[] = {"prog", "--full"};
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(argv)).ok());
  EXPECT_TRUE(flags.GetBool("full"));
}

TEST(FlagsTest, BoolFlagAcceptsExplicitValue) {
  Flags flags;
  flags.DefineBool("full", true, "");
  const char* argv[] = {"prog", "--full", "false"};
  ASSERT_TRUE(flags.Parse(3, const_cast<char**>(argv)).ok());
  EXPECT_FALSE(flags.GetBool("full"));
}

TEST(FlagsTest, UnknownFlagIsAnError) {
  Flags flags;
  flags.DefineInt64("instances", 500, "");
  const char* argv[] = {"prog", "--instancez=1"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagsTest, MalformedNumberIsAnError) {
  Flags flags;
  flags.DefineInt64("instances", 500, "");
  const char* argv[] = {"prog", "--instances=abc"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagsTest, HelpReturnsNotFoundWithUsageText) {
  Flags flags;
  flags.DefineInt64("instances", 500, "stream length");
  const char* argv[] = {"prog", "--help"};
  Status status = flags.Parse(2, const_cast<char**>(argv));
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_NE(status.message().find("--instances"), std::string::npos);
}

TEST(TableTest, FormatCountInsertsSeparators) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(5000000), "5,000,000");
  EXPECT_EQ(FormatCount(-1234567), "-1,234,567");
}

TEST(TableTest, FormatScientificMatchesPaperStyle) {
  EXPECT_EQ(FormatScientific(3.70e6, 2), "3.70e+06");
  EXPECT_EQ(FormatScientific(1.04e8, 2), "1.04e+08");
}

TEST(TableTest, PrintsAlignedColumns) {
  TablePrinter table("demo");
  table.SetHeader({"a", "bbbb", "c"});
  table.AddRow({"xx", "y", "zzz"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("a   bbbb  c"), std::string::npos);
  EXPECT_NE(out.find("xx  y     zzz"), std::string::npos);
}

TEST(TableTest, RowWidthMismatchDies) {
  TablePrinter table;
  table.SetHeader({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "row width");
}

}  // namespace
}  // namespace dsgm
