// Tests for core/classifier.h — approximate Bayesian classification.

#include <gtest/gtest.h>

#include "bayes/generator.h"
#include "bayes/repository.h"
#include "bayes/sampler.h"
#include "core/classifier.h"
#include "core/mle_tracker.h"

namespace dsgm {
namespace {

TEST(ClassifierTest, GroundTruthPredictorPicksArgmax) {
  const BayesianNetwork net = StudentNetwork();
  // With Grade observed g2, Letter's best prediction is l1
  // (P(l1|g2) = 0.99). Letter has no children, so the blanket factor is
  // just its own CPD row.
  Instance evidence = {0, 0, 2, 0, /*Letter=*/0};
  EXPECT_EQ(PredictWithNetwork(net, 4, evidence), 1);
  evidence[2] = 0;  // g0: P(l0|g0) = 0.9 wins.
  EXPECT_EQ(PredictWithNetwork(net, 4, evidence), 0);
}

TEST(ClassifierTest, BlanketScoringUsesChildren) {
  const BayesianNetwork net = StudentNetwork();
  // Predict Intelligence with evidence: easy class (d0), top grade (g0),
  // high SAT (s1). Children Grade and SAT both favour i1 strongly:
  // score(i0) = .7 * P(g0|d0,i0) * P(s1|i0) = .7*.3*.05
  // score(i1) = .3 * P(g0|d0,i1) * P(s1|i1) = .3*.9*.8.
  const Instance evidence = {0, /*target*/ 0, 0, 1, 0};
  EXPECT_EQ(PredictWithNetwork(net, 1, evidence), 1);
}

TEST(ClassifierTest, ExactTrackerMatchesGroundTruthModelPredictions) {
  const BayesianNetwork net = StudentNetwork();
  TrackerConfig config;
  config.strategy = TrackingStrategy::kExactMle;
  config.num_sites = 4;
  MleTracker tracker(net, config);
  ForwardSampler sampler(net, 7);
  Rng router(8);
  Instance x;
  for (int e = 0; e < 100000; ++e) {
    sampler.Sample(&x);
    tracker.Observe(x, static_cast<int>(router.NextBounded(4)));
  }
  // With this much data, tracker-based predictions should agree with the
  // ground-truth model's predictions nearly always.
  ForwardSampler test_sampler(net, 97);
  Rng picker(98);
  int agree = 0;
  constexpr int kTests = 500;
  for (int t = 0; t < kTests; ++t) {
    test_sampler.Sample(&x);
    const int target = static_cast<int>(picker.NextBounded(5));
    agree += (PredictWithTracker(tracker, target, x) ==
              PredictWithNetwork(net, target, x));
  }
  EXPECT_GE(agree, kTests * 95 / 100);
}

TEST(ClassifierTest, ApproxTrackerErrorCloseToExact) {
  // Table II behaviour: approximate strategies predict nearly as well as
  // EXACTMLE.
  const BayesianNetwork net = Alarm();
  TrackerConfig exact_config;
  exact_config.strategy = TrackingStrategy::kExactMle;
  exact_config.num_sites = 5;
  TrackerConfig approx_config = exact_config;
  approx_config.strategy = TrackingStrategy::kNonUniform;
  approx_config.epsilon = 0.1;
  MleTracker exact(net, exact_config);
  MleTracker approx(net, approx_config);

  ForwardSampler sampler(net, 301);
  Rng router(302);
  Instance x;
  for (int e = 0; e < 20000; ++e) {
    sampler.Sample(&x);
    const int site = static_cast<int>(router.NextBounded(5));
    exact.Observe(x, site);
    approx.Observe(x, site);
  }

  ForwardSampler test_sampler(net, 303);
  Rng picker(304);
  int exact_errors = 0;
  int approx_errors = 0;
  constexpr int kTests = 500;
  for (int t = 0; t < kTests; ++t) {
    test_sampler.Sample(&x);
    const int target =
        static_cast<int>(picker.NextBounded(static_cast<uint64_t>(net.num_variables())));
    const int truth = x[static_cast<size_t>(target)];
    exact_errors += (PredictWithTracker(exact, target, x) != truth);
    approx_errors += (PredictWithTracker(approx, target, x) != truth);
  }
  // Approximate error rate within 5 percentage points of exact.
  EXPECT_LE(std::abs(approx_errors - exact_errors), kTests * 5 / 100);
}

TEST(ClassifierTest, NaiveBayesClassPrediction) {
  const BayesianNetwork nb = MakeNaiveBayes(12, 2, 3, 41, /*alpha=*/0.4);
  TrackerConfig config;
  config.strategy = TrackingStrategy::kNaiveBayes;
  config.num_sites = 6;
  MleTracker tracker(nb, config);
  ForwardSampler sampler(nb, 42);
  Rng router(43);
  Instance x;
  for (int e = 0; e < 30000; ++e) {
    sampler.Sample(&x);
    tracker.Observe(x, static_cast<int>(router.NextBounded(6)));
  }
  // Tracker predictions of the class variable should match the Bayes
  // decision of the ground-truth model most of the time.
  ForwardSampler test_sampler(nb, 44);
  int agree = 0;
  constexpr int kTests = 400;
  for (int t = 0; t < kTests; ++t) {
    test_sampler.Sample(&x);
    agree += (PredictWithTracker(tracker, 0, x) == PredictWithNetwork(nb, 0, x));
  }
  EXPECT_GE(agree, kTests * 90 / 100);
}

}  // namespace
}  // namespace dsgm
