#!/usr/bin/env python3
"""Self-test for tools/check_layering.py.

Builds synthetic source trees with known-bad include edges and asserts the
linter exits nonzero AND names the offending edge; also asserts the real
repository passes. Plain python (no pytest): exits 0 on success, 1 with a
message on the first failure.
"""

import pathlib
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
CHECKER = REPO_ROOT / "tools" / "check_layering.py"


def run_checker(root):
    return subprocess.run(
        [sys.executable, str(CHECKER), "--root", str(root)],
        capture_output=True,
        text=True,
    )


def fail(message, result=None):
    print(f"FAIL: {message}")
    if result is not None:
        print(f"  exit: {result.returncode}")
        print(f"  stdout: {result.stdout}")
        print(f"  stderr: {result.stderr}")
    sys.exit(1)


def write(root, rel, text):
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)


def expect_violation(case, tree, needles):
    """The tree must fail the lint and the report must name the edge."""
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        for rel, text in tree.items():
            write(root, rel, text)
        result = run_checker(root)
        if result.returncode == 0:
            fail(f"{case}: expected a violation, got exit 0", result)
        out = result.stdout + result.stderr
        for needle in needles:
            if needle not in out:
                fail(f"{case}: report does not name '{needle}'", result)
        print(f"ok: {case}")


def expect_clean(case, tree):
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        for rel, text in tree.items():
            write(root, rel, text)
        result = run_checker(root)
        if result.returncode != 0:
            fail(f"{case}: expected clean, got exit {result.returncode}",
                 result)
        print(f"ok: {case}")


def main():
    if not CHECKER.is_file():
        fail(f"checker not found at {CHECKER}")

    # The real repository must be layering-clean.
    result = run_checker(REPO_ROOT)
    if result.returncode != 0:
        fail("the real repository has layering violations", result)
    print("ok: real repository is clean")

    # Upward include: cluster (rank 3) reaching into api (rank 4).
    expect_violation(
        "cluster includes api",
        {"src/cluster/bad.h": '#include "api/backends.h"\n'},
        ["src/cluster/bad.h:1", "cluster", "api", "upward"],
    )

    # Rank-1 subsystems are mutually independent.
    expect_violation(
        "net includes bayes",
        {"src/net/bad.cc": '#include "bayes/network.h"\n'},
        ["src/net/bad.cc:1", "net", "bayes", "independent"],
    )

    # Production code must not include test/bench code.
    expect_violation(
        "src includes bench harness",
        {"src/core/bad.cc": '#include "harness/experiment.h"\n'},
        ["src/core/bad.cc:1", "harness", "test/bench"],
    )

    # Public headers must not include internal api plumbing.
    expect_violation(
        "public header includes src/api",
        {
            "src/common/ok.h": "// fine\n",
            "include/dsgm/bad.h": '#include "api/backends.h"\n',
        },
        ["include/dsgm/bad.h:1", "internal"],
    )

    # common/metrics.h may only include its frozen allowlist — even other
    # common/ headers are out, so it stays cheap to include from every
    # layer's hot path.
    expect_violation(
        "metrics header grows a dependency",
        {"src/common/metrics.h": '#include "common/check.h"\n'},
        ["src/common/metrics.h:1", "allowlist", "common/check.h"],
    )
    expect_clean(
        "metrics header on its allowlist",
        {
            "src/common/metrics.h": (
                '#include "common/mutex.h"\n'
                '#include "common/thread_annotations.h"\n'
                '#include "common/timer.h"\n'
                "#include <atomic>\n"
            ),
        },
    )

    # common/tracing.h has its own frozen allowlist: it may build on the
    # metrics spine but must not reach sideways (status, timer, ...).
    expect_violation(
        "tracing header grows a dependency",
        {"src/common/tracing.h": '#include "common/status.h"\n'},
        ["src/common/tracing.h:1", "allowlist", "common/status.h"],
    )
    expect_clean(
        "tracing header on its allowlist",
        {
            "src/common/tracing.h": (
                '#include "common/metrics.h"\n'
                '#include "common/mutex.h"\n'
                '#include "common/thread_annotations.h"\n'
                "#include <vector>\n"
            ),
        },
    )

    # fuzz/ harnesses may reach only net/ and common/ (rule 6).
    expect_violation(
        "fuzz includes cluster",
        {
            "src/common/ok.h": "// fine\n",
            "fuzz/bad_harness.cc": '#include "cluster/coordinator_node.h"\n',
        },
        ["fuzz/bad_harness.cc:1", "fuzz", "cluster", "only net/ and common/"],
    )
    expect_violation(
        "fuzz includes api",
        {
            "src/common/ok.h": "// fine\n",
            "fuzz/bad_harness.cc": '#include "api/backends.h"\n',
        },
        ["fuzz/bad_harness.cc:1", "fuzz", "api"],
    )
    expect_violation(
        "fuzz includes bench harness",
        {
            "src/common/ok.h": "// fine\n",
            "fuzz/bad_harness.cc": '#include "harness/experiment.h"\n',
        },
        ["fuzz/bad_harness.cc:1", "harness", "test/bench"],
    )
    expect_clean(
        "fuzz on its allowed surface",
        {
            "src/common/ok.h": "// fine\n",
            "fuzz/ok_harness.cc": (
                '#include "net/codec.h"\n'
                '#include "net/protocol_spec.h"\n'
                '#include "common/rng.h"\n'
                '#include "fuzz_util.h"\n'
                "#include <vector>\n"
            ),
        },
    )

    # Downward and same-layer includes are legal.
    expect_clean(
        "legal downward edges",
        {
            "src/api/ok.cc": (
                '#include "dsgm/session.h"\n'
                '#include "cluster/coordinator_node.h"\n'
                '#include "core/mle_tracker.h"\n'
                '#include "net/channel.h"\n'
                '#include "common/mutex.h"\n'
                "#include <vector>\n"
            ),
            "src/core/ok.h": (
                '#include "bayes/network.h"\n'
                '#include "monitor/comm_stats.h"\n'
                '#include "net/wire.h"\n'
            ),
            "include/dsgm/ok.h": '#include "common/status.h"\n',
        },
    )

    # A tree with no src/ is a usage error, not a silent pass.
    with tempfile.TemporaryDirectory() as tmp:
        result = run_checker(tmp)
        if result.returncode == 0:
            fail("rootless tree should not pass", result)
        print("ok: missing src/ rejected")

    print("check_layering_test: all cases passed")


if __name__ == "__main__":
    main()
