// The liveness protocol end to end, in one process: a kLocalTcp session
// expecting external sites is fed fake site connections that handshake and
// then misbehave — going silent (heartbeat timeout) or hanging up mid-run
// (EOF) — and the run must fail with an UNAVAILABLE status naming the site
// instead of stalling (the regression this subsystem exists to kill), with
// healthy runs unaffected. Also covers heartbeat robustness: a connection
// whose only traffic is (forged-id) heartbeats stays alive exactly until
// it stops sending them.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bayes/repository.h"
#include "dsgm/dsgm.h"
#include "net/codec.h"
#include "net/tcp_socket.h"

namespace dsgm {
namespace {

constexpr int kLivenessTimeoutMs = 400;

/// A fake external site: completes the hello handshake, then runs
/// `behavior` with the raw socket. Never speaks the real site protocol.
class FakeSite {
 public:
  FakeSite(int port, int site_id, std::function<void(TcpSocket*)> behavior) {
    thread_ = std::thread([port, site_id, behavior] {
      StatusOr<TcpSocket> socket = TcpSocket::Connect("127.0.0.1", port);
      for (int retry = 0; !socket.ok() && retry < 100; ++retry) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        socket = TcpSocket::Connect("127.0.0.1", port);
      }
      if (!socket.ok()) return;
      std::vector<uint8_t> hello;
      AppendFrame(MakeHello(site_id), &hello);
      if (!socket->SendAll(hello.data(), hello.size()).ok()) return;
      behavior(&socket.value());
    });
  }
  ~FakeSite() { join(); }
  void join() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  std::thread thread_;
};

void SendHeartbeats(TcpSocket* socket, int site_id, int count, int interval_ms) {
  for (int i = 0; i < count; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    std::vector<uint8_t> beat;
    AppendFrame(MakeHeartbeat(site_id), &beat);
    if (!socket->SendAll(beat.data(), beat.size()).ok()) return;
  }
}

StatusOr<std::unique_ptr<Session>> BuildExternalSession(
    const BayesianNetwork& net, int sites, const std::string& port_file) {
  return SessionBuilder(net)
      .WithBackend(Backend::kLocalTcp)
      .WithExternalSites()
      .WithStrategy(TrackingStrategy::kUniform)
      .WithSites(sites)
      .WithSeed(4242)
      .WithListenPort(0)
      .WithPortFile(port_file)
      .WithLivenessTimeout(kLivenessTimeoutMs)
      .Build();
}

int ReadPortFile(const std::string& path) {
  for (int retry = 0; retry < 500; ++retry) {
    std::ifstream in(path);
    int port = 0;
    if (in >> port) return port;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return 0;
}

std::string TempPortFile(const char* tag) {
  return ::testing::TempDir() + "/dsgm_liveness_" + tag + "_" +
         std::to_string(::getpid()) + ".port";
}

TEST(LivenessTest, SilentSiteFailsTheRunWithUnavailable) {
  const BayesianNetwork net = StudentNetwork();
  const std::string port_file = TempPortFile("silent");

  // The accept loop blocks until the site connects, so start it first.
  std::unique_ptr<FakeSite> site;
  std::thread connector([&site, &port_file] {
    const int port = ReadPortFile(port_file);
    ASSERT_GT(port, 0);
    // Handshake, then total silence: no heartbeats, no data, socket open.
    site = std::make_unique<FakeSite>(port, /*site_id=*/0, [](TcpSocket* socket) {
      uint8_t unused = 0;
      (void)socket->RecvAll(&unused, 1);  // Parked until the coordinator closes.
    });
  });

  StatusOr<std::unique_ptr<Session>> session =
      BuildExternalSession(net, /*sites=*/1, port_file);
  connector.join();
  ASSERT_TRUE(session.ok()) << session.status();

  // The run must fail within a few timeouts — not hang. Finish() exercises
  // the whole failure path: coordinator exit, cancelled syncs, teardown.
  const auto started = std::chrono::steady_clock::now();
  StatusOr<RunReport> report = (*session)->Finish();
  const auto elapsed = std::chrono::steady_clock::now() - started;
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kUnavailable) << report.status();
  EXPECT_NE(report.status().message().find("site 0"), std::string::npos)
      << report.status();
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
            20 * kLivenessTimeoutMs);
  // The failure is sticky: queries after a failed run report it too.
  StatusOr<ModelView> view = (*session)->Snapshot();
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kUnavailable);
  session->reset();  // Closes the connection, releasing the fake site.
  site->join();
}

TEST(LivenessTest, SiteHangupMidRunFailsFastWithUnavailable) {
  const BayesianNetwork net = StudentNetwork();
  const std::string port_file = TempPortFile("hangup");

  std::unique_ptr<FakeSite> healthy;
  std::unique_ptr<FakeSite> doomed;
  std::thread connector([&healthy, &doomed, &port_file] {
    const int port = ReadPortFile(port_file);
    ASSERT_GT(port, 0);
    // Site 0 stays alive (heartbeating) for the whole test; site 1 hangs
    // up shortly after the handshake — a crashed process, kernel-closed.
    healthy = std::make_unique<FakeSite>(port, 0, [](TcpSocket* socket) {
      SendHeartbeats(socket, 0, /*count=*/40, /*interval_ms=*/50);
    });
    doomed = std::make_unique<FakeSite>(port, 1, [](TcpSocket* socket) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      socket->Close();
    });
  });

  StatusOr<std::unique_ptr<Session>> session =
      BuildExternalSession(net, /*sites=*/2, port_file);
  connector.join();
  ASSERT_TRUE(session.ok()) << session.status();

  // EOF detection is immediate — no need to wait out the liveness timeout.
  StatusOr<RunReport> report = (*session)->Finish();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kUnavailable) << report.status();
  EXPECT_NE(report.status().message().find("site 1"), std::string::npos)
      << report.status();
  session->reset();
  healthy->join();
  doomed->join();
}

TEST(LivenessTest, HeartbeatsAloneKeepASiteAliveEvenWithForgedId) {
  const BayesianNetwork net = StudentNetwork();
  const std::string port_file = TempPortFile("forged");

  std::unique_ptr<FakeSite> site;
  std::thread connector([&site, &port_file] {
    const int port = ReadPortFile(port_file);
    ASSERT_GT(port, 0);
    // Heartbeats with a nonsense site id for ~4 liveness timeouts, then
    // silence. Liveness is per-connection: the forged id must neither
    // corrupt protocol state nor extend any OTHER site's deadline — and
    // must keep THIS connection alive while the beats flow.
    site = std::make_unique<FakeSite>(port, 0, [](TcpSocket* socket) {
      SendHeartbeats(socket, /*site_id=*/987654, /*count=*/16,
                     /*interval_ms=*/kLivenessTimeoutMs / 4);
      uint8_t unused = 0;
      (void)socket->RecvAll(&unused, 1);
    });
  });

  StatusOr<std::unique_ptr<Session>> session =
      BuildExternalSession(net, /*sites=*/1, port_file);
  connector.join();
  ASSERT_TRUE(session.ok()) << session.status();

  // While heartbeats flow, the run is healthy: Snapshot succeeds.
  std::this_thread::sleep_for(std::chrono::milliseconds(2 * kLivenessTimeoutMs));
  StatusOr<ModelView> alive_view = (*session)->Snapshot();
  EXPECT_TRUE(alive_view.ok()) << alive_view.status();

  // After the beats stop, the deadline fires and the run fails.
  StatusOr<RunReport> report = (*session)->Finish();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kUnavailable) << report.status();
  session->reset();
  site->join();
}

TEST(LivenessTest, HealthyInProcessRunIsUnaffectedByLiveness) {
  // Internal sites heartbeat automatically; a short timeout must not
  // misfire on a healthy run, including across idle gaps longer than the
  // timeout where only heartbeats flow.
  const BayesianNetwork net = StudentNetwork();
  StatusOr<std::unique_ptr<Session>> session =
      SessionBuilder(net)
          .WithBackend(Backend::kLocalTcp)
          .WithStrategy(TrackingStrategy::kUniform)
          .WithSites(2)
          .WithSeed(99)
          .WithLivenessTimeout(kLivenessTimeoutMs)
          .WithHeartbeatInterval(kLivenessTimeoutMs / 8)
          .Build();
  ASSERT_TRUE(session.ok()) << session.status();
  ASSERT_TRUE((*session)->StreamGroundTruth(5000).ok());
  // Idle gap: no events, only heartbeats keep the sites alive.
  std::this_thread::sleep_for(std::chrono::milliseconds(2 * kLivenessTimeoutMs));
  ASSERT_TRUE((*session)->StreamGroundTruth(5000).ok());
  StatusOr<RunReport> report = (*session)->Finish();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->events_processed, 10000);
  EXPECT_LT(report->max_counter_rel_error, 0.1);
}

}  // namespace
}  // namespace dsgm
