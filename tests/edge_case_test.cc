// Edge-case and failure-injection tests across modules: degenerate
// networks, boundary configurations, and misuse that must fail loudly.

#include <gtest/gtest.h>

#include <cmath>

#include "bayes/generator.h"
#include "bayes/io.h"
#include "bayes/repository.h"
#include "bayes/sampler.h"
#include "core/classifier.h"
#include "core/mle_tracker.h"

namespace dsgm {
namespace {

BayesianNetwork SingleVariableNetwork() {
  std::vector<Variable> variables = {{"Only", 3}};
  Dag dag(1);
  std::vector<CpdTable> cpds;
  CpdTable cpd(3, {});
  EXPECT_TRUE(cpd.SetRow(0, {0.5, 0.3, 0.2}).ok());
  cpds.push_back(std::move(cpd));
  StatusOr<BayesianNetwork> net = BayesianNetwork::Create(
      "single", std::move(variables), std::move(dag), std::move(cpds));
  EXPECT_TRUE(net.ok());
  return std::move(net).value();
}

TEST(EdgeCaseTest, SingleVariableNetworkWorksEndToEnd) {
  const BayesianNetwork net = SingleVariableNetwork();
  EXPECT_EQ(net.FreeParams(), 2);
  TrackerConfig config;
  config.strategy = TrackingStrategy::kNonUniform;
  config.num_sites = 2;
  MleTracker tracker(net, config);
  ForwardSampler sampler(net, 3);
  Instance x;
  for (int e = 0; e < 10000; ++e) {
    sampler.Sample(&x);
    tracker.Observe(x, e % 2);
  }
  // Estimated marginal close to the CPD.
  EXPECT_NEAR(tracker.CpdEstimate(0, 0, 0), 0.5, 0.05);
  EXPECT_NEAR(tracker.CpdEstimate(0, 1, 0), 0.3, 0.05);
  // Classification degenerates to the prior argmax.
  EXPECT_EQ(PredictWithTracker(tracker, 0, {0}), 0);
}

TEST(EdgeCaseTest, EmptyPartialAssignmentHasProbabilityOne) {
  const BayesianNetwork net = StudentNetwork();
  TrackerConfig config;
  config.strategy = TrackingStrategy::kExactMle;
  config.num_sites = 2;
  MleTracker tracker(net, config);
  PartialAssignment empty;
  EXPECT_DOUBLE_EQ(tracker.JointProbability(empty), 1.0);
  EXPECT_DOUBLE_EQ(net.ClosedSubsetProbability(empty), 1.0);
}

TEST(EdgeCaseTest, SingleSiteTrackerIsStillCorrect) {
  const BayesianNetwork net = StudentNetwork();
  TrackerConfig config;
  config.strategy = TrackingStrategy::kUniform;
  config.num_sites = 1;  // k = 1 degenerates gracefully
  MleTracker tracker(net, config);
  ForwardSampler sampler(net, 5);
  Instance x;
  for (int e = 0; e < 20000; ++e) {
    sampler.Sample(&x);
    tracker.Observe(x, 0);
  }
  const Instance probe = {0, 0, 0, 0, 0};
  EXPECT_NEAR(tracker.JointProbability(probe), net.JointProbability(probe),
              0.2 * net.JointProbability(probe));
}

TEST(EdgeCaseTest, LargeEpsilonStillValidates) {
  TrackerConfig config;
  config.epsilon = 0.99;
  EXPECT_TRUE(config.Validate().ok());
  config.epsilon = 1.0;
  EXPECT_FALSE(config.Validate().ok());
  config.epsilon = 0.1;
  config.num_sites = 0;
  EXPECT_FALSE(config.Validate().ok());
  config.num_sites = 4;
  config.replicas = 0;
  EXPECT_FALSE(config.Validate().ok());
  config.replicas = 1;
  config.allocation_relaxation = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config.allocation_relaxation = 1.0;
  config.laplace_alpha = -1.0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(EdgeCaseTest, NaiveBayesStrategyRejectsNonNbNetwork) {
  const BayesianNetwork net = StudentNetwork();
  TrackerConfig config;
  config.strategy = TrackingStrategy::kNaiveBayes;
  config.num_sites = 2;
  EXPECT_DEATH(MleTracker(net, config), "naive-bayes");
}

TEST(EdgeCaseTest, MaxCardinalityDomainsWork) {
  // A variable with a large domain exercises the counter layout arithmetic.
  const BayesianNetwork nb = MakeNaiveBayes(3, 2, 64, 11);
  TrackerConfig config;
  config.strategy = TrackingStrategy::kNonUniform;
  config.num_sites = 3;
  MleTracker tracker(nb, config);
  EXPECT_EQ(tracker.num_joint_counters(), 2 + 3 * 64 * 2);
  ForwardSampler sampler(nb, 12);
  Instance x;
  for (int e = 0; e < 5000; ++e) {
    sampler.Sample(&x);
    tracker.Observe(x, e % 3);
  }
  double total = 0.0;
  for (int v = 0; v < 64; ++v) total += tracker.CpdEstimate(1, v, 0);
  EXPECT_NEAR(total, 1.0, 0.05);
}

TEST(EdgeCaseTest, GeneratorMinimumSizes) {
  NetworkSpec spec;
  spec.name = "tiny";
  spec.num_nodes = 2;
  spec.num_edges = 1;
  spec.target_params = 0;
  StatusOr<BayesianNetwork> net = GenerateNetwork(spec, 1);
  ASSERT_TRUE(net.ok()) << net.status();
  EXPECT_EQ(net->num_variables(), 2);
  EXPECT_EQ(net->dag().num_edges(), 1);
}

TEST(EdgeCaseTest, RemoveSinksToSingleNode) {
  const BayesianNetwork alarm = Alarm();
  const BayesianNetwork one = RemoveSinksToSize(alarm, 1);
  EXPECT_EQ(one.num_variables(), 1);
  EXPECT_EQ(one.dag().num_edges(), 0);
  // The survivor's CPD must still be a valid distribution.
  double total = 0.0;
  for (int v = 0; v < one.cardinality(0); ++v) total += one.cpd(0).prob(v, 0);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(EdgeCaseTest, SerializationOfSingleVariableNetwork) {
  const BayesianNetwork net = SingleVariableNetwork();
  StatusOr<BayesianNetwork> parsed = ParseNetwork(SerializeNetwork(net));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_DOUBLE_EQ(parsed->cpd(0).prob(0, 0), 0.5);
}

TEST(EdgeCaseTest, ReplicatedExactTrackerForcedToOneReplica) {
  // Replicas only make sense for randomized counters; exact ignores them.
  const BayesianNetwork net = StudentNetwork();
  TrackerConfig config;
  config.strategy = TrackingStrategy::kExactMle;
  config.num_sites = 2;
  config.replicas = 5;
  MleTracker tracker(net, config);
  tracker.Observe({0, 0, 0, 0, 0}, 0);
  // One replica => exactly 2n update messages for the single event.
  EXPECT_EQ(tracker.comm().update_messages,
            static_cast<uint64_t>(2 * net.num_variables()));
}

}  // namespace
}  // namespace dsgm
