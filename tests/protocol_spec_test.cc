// Model-checks the protocol conformance table of net/protocol_spec.h by
// exhaustive enumeration: the state space is tiny (4 states x 2 directions
// x 11 inputs x 5 versions = 440 cells), so instead of sampling behaviors we
// iterate all of them and prove the contract's load-bearing properties —
// totality, hello-before-anything, nothing-after-close, version gates,
// directional ownership, and reachability of every state. Below that, unit
// tests drive the ProtocolConformance validator (including the v4 payload
// site binding and the v5 downgrade negotiation) and the
// ProtocolStreamChecker through legal and adversarial sequences.

#include "net/protocol_spec.h"

#include <cstdint>
#include <set>
#include <vector>

#include "common/metrics.h"
#include "gtest/gtest.h"
#include "net/codec.h"

namespace dsgm {
namespace {

constexpr uint8_t kAllVersions[] = {1, 2, 3, 4, 5};
static_assert(sizeof(kAllVersions) == kNumProtocolVersions,
              "enumerate every version the table covers");

// --- Table enumeration ----------------------------------------------------

TEST(ProtocolSpecTable, EveryTripleHasADefinedVerdict) {
  int cells = 0;
  for (ProtocolState state : kAllProtocolStates) {
    for (ProtocolDirection direction : kAllProtocolDirections) {
      for (WireInput input : kAllWireInputs) {
        for (uint8_t version : kAllVersions) {
          const FrameRule& rule = LookupRule(state, direction, input, version);
          // Totality: the verdict is one of the two table outcomes (the
          // kVersionMismatch refinement exists only in OnFrame), and a
          // violation always lands in the terminal state.
          EXPECT_TRUE(rule.verdict == ProtocolVerdict::kAccept ||
                      rule.verdict == ProtocolVerdict::kViolation)
              << ProtocolStateName(state) << " x "
              << ProtocolDirectionName(direction) << " x "
              << WireInputName(input) << " v" << int(version);
          if (rule.verdict == ProtocolVerdict::kViolation) {
            EXPECT_EQ(rule.next, ProtocolState::kClosed)
                << "violations must be terminal: " << ProtocolStateName(state)
                << " x " << WireInputName(input);
          }
          ++cells;
        }
      }
    }
  }
  EXPECT_EQ(cells, 4 * 2 * 11 * 5);
}

TEST(ProtocolSpecTable, HelloBeforeAnything) {
  for (ProtocolDirection direction : kAllProtocolDirections) {
    for (uint8_t version : kAllVersions) {
      for (WireInput input : kAllWireInputs) {
        const FrameRule& rule = LookupRule(ProtocolState::kAwaitingHello,
                                           direction, input, version);
        if (input == WireInput::kInHello) {
          EXPECT_EQ(rule.verdict, ProtocolVerdict::kAccept);
          EXPECT_EQ(rule.next, ProtocolState::kActive);
        } else {
          EXPECT_EQ(rule.verdict, ProtocolVerdict::kViolation)
              << WireInputName(input) << " must not precede the hello ("
              << ProtocolDirectionName(direction) << ", v" << int(version)
              << ")";
        }
      }
    }
  }
}

TEST(ProtocolSpecTable, NothingAfterClose) {
  for (ProtocolDirection direction : kAllProtocolDirections) {
    for (uint8_t version : kAllVersions) {
      for (WireInput input : kAllWireInputs) {
        EXPECT_EQ(
            LookupRule(ProtocolState::kClosed, direction, input, version)
                .verdict,
            ProtocolVerdict::kViolation)
            << WireInputName(input) << " accepted in the terminal state";
      }
    }
  }
}

TEST(ProtocolSpecTable, ExactlyOneHelloEver) {
  // A hello is legal in kAwaitingHello (checked above) and nowhere else —
  // with ONE carve-out: the v5 capability reply-hello the coordinator sends
  // a site (kCoordinatorToSite, kActive, v5 only), which must be
  // state-preserving. Every other late hello stays a violation.
  for (ProtocolState state :
       {ProtocolState::kActive, ProtocolState::kDraining,
        ProtocolState::kClosed}) {
    for (ProtocolDirection direction : kAllProtocolDirections) {
      for (uint8_t version : kAllVersions) {
        const FrameRule& rule =
            LookupRule(state, direction, WireInput::kInHello, version);
        if (state == ProtocolState::kActive &&
            direction == ProtocolDirection::kCoordinatorToSite &&
            version == 5) {
          EXPECT_EQ(rule.verdict, ProtocolVerdict::kAccept);
          EXPECT_EQ(rule.next, ProtocolState::kActive)
              << "the capability reply-hello must not change state";
        } else {
          EXPECT_EQ(rule.verdict, ProtocolVerdict::kViolation)
              << "duplicate hello accepted in " << ProtocolStateName(state)
              << " (" << ProtocolDirectionName(direction) << ", v"
              << int(version) << ")";
        }
      }
    }
  }
}

TEST(ProtocolSpecTable, VersionGates) {
  constexpr ProtocolDirection kS2C = ProtocolDirection::kSiteToCoordinator;
  constexpr ProtocolDirection kC2S = ProtocolDirection::kCoordinatorToSite;
  // Heartbeats exist since v2: a v1 peer sending one is malformed traffic.
  EXPECT_EQ(LookupRule(ProtocolState::kActive, kS2C, WireInput::kInHeartbeat, 1)
                .verdict,
            ProtocolVerdict::kViolation);
  for (uint8_t v : {uint8_t{2}, uint8_t{3}, uint8_t{4}, uint8_t{5}}) {
    EXPECT_EQ(
        LookupRule(ProtocolState::kActive, kS2C, WireInput::kInHeartbeat, v)
            .verdict,
        ProtocolVerdict::kAccept);
    EXPECT_EQ(
        LookupRule(ProtocolState::kDraining, kS2C, WireInput::kInHeartbeat, v)
            .verdict,
        ProtocolVerdict::kAccept);
  }
  // Stats reports exist since v3, and only while the update lane is open.
  for (uint8_t v : {uint8_t{1}, uint8_t{2}}) {
    EXPECT_EQ(
        LookupRule(ProtocolState::kActive, kS2C, WireInput::kInStatsReport, v)
            .verdict,
        ProtocolVerdict::kViolation);
  }
  for (uint8_t v : {uint8_t{3}, uint8_t{4}, uint8_t{5}}) {
    EXPECT_EQ(
        LookupRule(ProtocolState::kActive, kS2C, WireInput::kInStatsReport, v)
            .verdict,
        ProtocolVerdict::kAccept);
    EXPECT_EQ(
        LookupRule(ProtocolState::kDraining, kS2C, WireInput::kInStatsReport,
                   v)
            .verdict,
        ProtocolVerdict::kViolation)
        << "stats are data; data after the terminal close is a violation";
  }
  // Trace chunks exist since v4, and, like stats, only while the update
  // lane is open.
  for (uint8_t v : {uint8_t{1}, uint8_t{2}, uint8_t{3}}) {
    EXPECT_EQ(
        LookupRule(ProtocolState::kActive, kS2C, WireInput::kInTraceChunk, v)
            .verdict,
        ProtocolVerdict::kViolation);
  }
  for (uint8_t v : {uint8_t{4}, uint8_t{5}}) {
    EXPECT_EQ(
        LookupRule(ProtocolState::kActive, kS2C, WireInput::kInTraceChunk, v)
            .verdict,
        ProtocolVerdict::kAccept);
    EXPECT_EQ(
        LookupRule(ProtocolState::kDraining, kS2C, WireInput::kInTraceChunk, v)
            .verdict,
        ProtocolVerdict::kViolation);
  }
  // Coordinator heartbeat echoes exist since v4; they follow the site's own
  // heartbeat lifetime (legal through Draining, gone after close).
  for (uint8_t v : {uint8_t{1}, uint8_t{2}, uint8_t{3}}) {
    EXPECT_EQ(
        LookupRule(ProtocolState::kActive, kC2S, WireInput::kInHeartbeat, v)
            .verdict,
        ProtocolVerdict::kViolation);
  }
  for (uint8_t v : {uint8_t{4}, uint8_t{5}}) {
    EXPECT_EQ(
        LookupRule(ProtocolState::kActive, kC2S, WireInput::kInHeartbeat, v)
            .verdict,
        ProtocolVerdict::kAccept);
    EXPECT_EQ(
        LookupRule(ProtocolState::kDraining, kC2S, WireInput::kInHeartbeat, v)
            .verdict,
        ProtocolVerdict::kAccept);
  }
  // Compression envelopes exist since v5: a wrapped frame from any older
  // revision is a violation in every state, and even at v5 the envelope
  // follows the wrapped data's lifetime — S2C data ends at the update-lane
  // close, C2S event stragglers stay legal through Draining.
  for (uint8_t v : {uint8_t{1}, uint8_t{2}, uint8_t{3}, uint8_t{4}}) {
    for (ProtocolState state : kAllProtocolStates) {
      for (ProtocolDirection direction : kAllProtocolDirections) {
        EXPECT_EQ(
            LookupRule(state, direction, WireInput::kInCompressed, v).verdict,
            ProtocolVerdict::kViolation)
            << "compressed envelope accepted at v" << int(v) << " in "
            << ProtocolStateName(state);
      }
    }
  }
  EXPECT_EQ(
      LookupRule(ProtocolState::kActive, kS2C, WireInput::kInCompressed, 5)
          .verdict,
      ProtocolVerdict::kAccept);
  EXPECT_EQ(
      LookupRule(ProtocolState::kDraining, kS2C, WireInput::kInCompressed, 5)
          .verdict,
      ProtocolVerdict::kViolation)
      << "S2C data after the update-lane close stays illegal, wrapped or not";
  EXPECT_EQ(
      LookupRule(ProtocolState::kActive, kC2S, WireInput::kInCompressed, 5)
          .verdict,
      ProtocolVerdict::kAccept);
  EXPECT_EQ(
      LookupRule(ProtocolState::kDraining, kC2S, WireInput::kInCompressed, 5)
          .verdict,
      ProtocolVerdict::kAccept)
      << "compressed event stragglers mirror raw ones through Draining";
}

TEST(ProtocolSpecTable, DirectionalOwnership) {
  constexpr ProtocolDirection kS2C = ProtocolDirection::kSiteToCoordinator;
  constexpr ProtocolDirection kC2S = ProtocolDirection::kCoordinatorToSite;
  // Frame kinds only the coordinator sends must never be accepted FROM a
  // site, in any state or version — and vice versa. Heartbeats left this
  // list in v4 (the coordinator echoes them); their C2S version gate is
  // checked in VersionGates above.
  const WireInput never_from_site[] = {
      WireInput::kInRoundAdvance, WireInput::kInEventBatch,
      WireInput::kInCloseCommands, WireInput::kInCloseEvents};
  const WireInput never_from_coordinator[] = {
      WireInput::kInUpdateBundle, WireInput::kInCloseUpdates,
      WireInput::kInStatsReport, WireInput::kInTraceChunk};
  for (ProtocolState state : kAllProtocolStates) {
    for (uint8_t version : kAllVersions) {
      for (WireInput input : never_from_site) {
        EXPECT_EQ(LookupRule(state, kS2C, input, version).verdict,
                  ProtocolVerdict::kViolation)
            << "a site may not send " << WireInputName(input);
      }
      for (WireInput input : never_from_coordinator) {
        EXPECT_EQ(LookupRule(state, kC2S, input, version).verdict,
                  ProtocolVerdict::kViolation)
            << "the coordinator may not send " << WireInputName(input);
      }
    }
  }
}

TEST(ProtocolSpecTable, OutOfRangeVersionsRejectEverything) {
  for (uint8_t version : {uint8_t{0}, uint8_t{6}, uint8_t{200}, uint8_t{255}}) {
    for (ProtocolState state : kAllProtocolStates) {
      for (ProtocolDirection direction : kAllProtocolDirections) {
        for (WireInput input : kAllWireInputs) {
          EXPECT_EQ(LookupRule(state, direction, input, version).verdict,
                    ProtocolVerdict::kViolation);
        }
      }
    }
  }
}

TEST(ProtocolSpecTable, NoUnreachableStates) {
  // Fixed-point reachability from kAwaitingHello per (direction, version):
  // accept edges plus the implicit violation edge to kClosed. Every state
  // must be reachable — an unreachable state would be dead spec.
  for (ProtocolDirection direction : kAllProtocolDirections) {
    for (uint8_t version : kAllVersions) {
      std::set<ProtocolState> reached = {ProtocolState::kAwaitingHello};
      bool grew = true;
      while (grew) {
        grew = false;
        for (ProtocolState state : kAllProtocolStates) {
          if (reached.count(state) == 0) continue;
          for (WireInput input : kAllWireInputs) {
            const FrameRule& rule = LookupRule(state, direction, input, version);
            if (reached.insert(rule.next).second) grew = true;
          }
        }
      }
      EXPECT_EQ(reached.size(), kNumProtocolStates)
          << ProtocolDirectionName(direction) << " v" << int(version)
          << " leaves states unreachable";
      // And specifically: the happy path reaches Draining via an ACCEPT,
      // not just via violations.
      const WireInput terminal_close =
          direction == ProtocolDirection::kSiteToCoordinator
              ? WireInput::kInCloseUpdates
              : WireInput::kInCloseCommands;
      const FrameRule& rule = LookupRule(ProtocolState::kActive, direction,
                                         terminal_close, version);
      EXPECT_EQ(rule.verdict, ProtocolVerdict::kAccept);
      EXPECT_EQ(rule.next, ProtocolState::kDraining);
    }
  }
}

TEST(ProtocolSpecTable, WireInputOfCoversEveryFrameKind) {
  EXPECT_EQ(WireInputOf(MakeFrame(UpdateBundle{})), WireInput::kInUpdateBundle);
  EXPECT_EQ(WireInputOf(MakeFrame(RoundAdvance{})), WireInput::kInRoundAdvance);
  EXPECT_EQ(WireInputOf(MakeFrame(EventBatch{})), WireInput::kInEventBatch);
  EXPECT_EQ(WireInputOf(MakeChannelClose(FrameType::kUpdateBundle)),
            WireInput::kInCloseUpdates);
  EXPECT_EQ(WireInputOf(MakeChannelClose(FrameType::kRoundAdvance)),
            WireInput::kInCloseCommands);
  EXPECT_EQ(WireInputOf(MakeChannelClose(FrameType::kEventBatch)),
            WireInput::kInCloseEvents);
  EXPECT_EQ(WireInputOf(MakeHello(0)), WireInput::kInHello);
  EXPECT_EQ(WireInputOf(MakeHeartbeat(0)), WireInput::kInHeartbeat);
  EXPECT_EQ(WireInputOf(MakeStatsReport(SiteStatsReport{})),
            WireInput::kInStatsReport);
  EXPECT_EQ(WireInputOf(MakeTraceChunk(TraceChunk{})),
            WireInput::kInTraceChunk);
}

// --- ProtocolConformance --------------------------------------------------

TEST(ProtocolConformanceTest, HappyPathSiteToCoordinator) {
  MetricsRegistry::Global().ResetForTest();
  ProtocolConformance conformance(ProtocolDirection::kSiteToCoordinator);
  EXPECT_EQ(conformance.state(), ProtocolState::kAwaitingHello);

  EXPECT_EQ(conformance.OnFrame(MakeHello(2)), ProtocolVerdict::kAccept);
  EXPECT_EQ(conformance.state(), ProtocolState::kActive);
  EXPECT_EQ(conformance.bound_site(), 2);  // Auto-bound by the hello.
  EXPECT_EQ(conformance.OnFrame(MakeFrame(UpdateBundle{})),
            ProtocolVerdict::kAccept);
  EXPECT_EQ(conformance.OnFrame(MakeHeartbeat(2)), ProtocolVerdict::kAccept);
  SiteStatsReport stats;
  stats.site = 2;
  EXPECT_EQ(conformance.OnFrame(MakeStatsReport(stats)),
            ProtocolVerdict::kAccept);
  TraceChunk chunk;
  chunk.site = 2;
  EXPECT_EQ(conformance.OnFrame(MakeTraceChunk(chunk)),
            ProtocolVerdict::kAccept);
  EXPECT_EQ(conformance.OnFrame(MakeChannelClose(FrameType::kUpdateBundle)),
            ProtocolVerdict::kAccept);
  EXPECT_EQ(conformance.state(), ProtocolState::kDraining);
  EXPECT_EQ(conformance.OnFrame(MakeHeartbeat(2)), ProtocolVerdict::kAccept);
  EXPECT_EQ(conformance.violations(), 0u);
  EXPECT_EQ(MetricsRegistry::Global()
                .GetCounter(kProtocolViolationsMetric)
                ->Value(),
            0u);
}

TEST(ProtocolConformanceTest, StatsAfterCloseIsAViolation) {
  MetricsRegistry::Global().ResetForTest();
  ProtocolConformance conformance(ProtocolDirection::kSiteToCoordinator);
  ASSERT_EQ(conformance.OnFrame(MakeHello(0)), ProtocolVerdict::kAccept);
  ASSERT_EQ(conformance.OnFrame(MakeChannelClose(FrameType::kUpdateBundle)),
            ProtocolVerdict::kAccept);
  EXPECT_EQ(conformance.OnFrame(MakeStatsReport(SiteStatsReport{})),
            ProtocolVerdict::kViolation);
  EXPECT_EQ(conformance.state(), ProtocolState::kClosed);
  EXPECT_EQ(conformance.violations(), 1u);
  EXPECT_EQ(MetricsRegistry::Global()
                .GetCounter(kProtocolViolationsMetric)
                ->Value(),
            1u);
}

TEST(ProtocolConformanceTest, DuplicateHelloIsAViolation) {
  ProtocolConformance conformance(ProtocolDirection::kSiteToCoordinator);
  ASSERT_EQ(conformance.OnFrame(MakeHello(0)), ProtocolVerdict::kAccept);
  EXPECT_EQ(conformance.OnFrame(MakeHello(0)), ProtocolVerdict::kViolation);
  EXPECT_EQ(conformance.state(), ProtocolState::kClosed);
  EXPECT_EQ(conformance.violations(), 1u);
}

TEST(ProtocolConformanceTest, VersionMismatchIsDistinctButCounted) {
  MetricsRegistry::Global().ResetForTest();
  ProtocolConformance conformance(ProtocolDirection::kSiteToCoordinator);
  Frame hello = MakeHello(0);
  hello.protocol_version = kProtocolVersion + 1;
  EXPECT_EQ(conformance.OnFrame(hello), ProtocolVerdict::kVersionMismatch);
  EXPECT_EQ(conformance.state(), ProtocolState::kClosed);
  EXPECT_EQ(conformance.violations(), 1u);
  EXPECT_EQ(MetricsRegistry::Global()
                .GetCounter(kProtocolViolationsMetric)
                ->Value(),
            1u);
}

TEST(ProtocolConformanceTest, OnHelloSentArmsTheConnectingSide) {
  ProtocolConformance conformance(ProtocolDirection::kCoordinatorToSite);
  conformance.OnHelloSent();
  EXPECT_EQ(conformance.state(), ProtocolState::kActive);
  EXPECT_EQ(conformance.OnFrame(MakeFrame(EventBatch{})),
            ProtocolVerdict::kAccept);
  EXPECT_EQ(conformance.OnFrame(MakeFrame(RoundAdvance{})),
            ProtocolVerdict::kAccept);
  // The coordinator's terminal act; event stragglers stay legal after it.
  EXPECT_EQ(conformance.OnFrame(MakeChannelClose(FrameType::kRoundAdvance)),
            ProtocolVerdict::kAccept);
  EXPECT_EQ(conformance.state(), ProtocolState::kDraining);
  EXPECT_EQ(conformance.OnFrame(MakeFrame(EventBatch{})),
            ProtocolVerdict::kAccept);
  EXPECT_EQ(conformance.OnFrame(MakeChannelClose(FrameType::kEventBatch)),
            ProtocolVerdict::kAccept);
  // But commands after the command-lane close are a violation.
  EXPECT_EQ(conformance.OnFrame(MakeFrame(RoundAdvance{})),
            ProtocolVerdict::kViolation);
}

TEST(ProtocolConformanceTest, MalformedFrameIsTerminal) {
  MetricsRegistry::Global().ResetForTest();
  ProtocolConformance conformance(ProtocolDirection::kSiteToCoordinator,
                                  kProtocolVersion, ProtocolState::kActive);
  EXPECT_EQ(conformance.OnMalformedFrame(), ProtocolVerdict::kViolation);
  EXPECT_EQ(conformance.state(), ProtocolState::kClosed);
  EXPECT_EQ(conformance.OnFrame(MakeFrame(UpdateBundle{})),
            ProtocolVerdict::kViolation);
  EXPECT_EQ(conformance.violations(), 2u);
  EXPECT_EQ(MetricsRegistry::Global()
                .GetCounter(kProtocolViolationsMetric)
                ->Value(),
            2u);
}

TEST(ProtocolConformanceTest, ForgedStatsSiteIsAViolation) {
  MetricsRegistry::Global().ResetForTest();
  ProtocolConformance conformance(ProtocolDirection::kSiteToCoordinator);
  ASSERT_EQ(conformance.OnFrame(MakeHello(2)), ProtocolVerdict::kAccept);
  SiteStatsReport honest;
  honest.site = 2;
  ASSERT_EQ(conformance.OnFrame(MakeStatsReport(honest)),
            ProtocolVerdict::kAccept);
  // A report claiming another site's identity is a terminal violation —
  // the payload's site id is part of the contract, not advisory.
  SiteStatsReport forged;
  forged.site = 5;
  EXPECT_EQ(conformance.OnFrame(MakeStatsReport(forged)),
            ProtocolVerdict::kViolation);
  EXPECT_EQ(conformance.state(), ProtocolState::kClosed);
  EXPECT_EQ(conformance.violations(), 1u);
}

TEST(ProtocolConformanceTest, ForgedTraceChunkSiteIsAViolation) {
  ProtocolConformance conformance(ProtocolDirection::kSiteToCoordinator);
  ASSERT_EQ(conformance.OnFrame(MakeHello(3)), ProtocolVerdict::kAccept);
  TraceChunk forged;
  forged.site = 0;
  EXPECT_EQ(conformance.OnFrame(MakeTraceChunk(forged)),
            ProtocolVerdict::kViolation);
  EXPECT_EQ(conformance.state(), ProtocolState::kClosed);
}

TEST(ProtocolConformanceTest, BindSiteIdArmsConnectionsConstructedActive) {
  // Connections that skip OnFrame's hello (the reactor transport does its
  // handshake in the accept loop, then constructs kActive) bind explicitly.
  ProtocolConformance conformance(ProtocolDirection::kSiteToCoordinator,
                                  kProtocolVersion, ProtocolState::kActive);
  EXPECT_EQ(conformance.bound_site(), -1);
  conformance.BindSiteId(4);
  EXPECT_EQ(conformance.bound_site(), 4);
  SiteStatsReport forged;
  forged.site = 2;
  EXPECT_EQ(conformance.OnFrame(MakeStatsReport(forged)),
            ProtocolVerdict::kViolation);
}

TEST(ProtocolConformanceTest, UnboundConnectionSkipsThePayloadSiteCheck) {
  ProtocolConformance conformance(ProtocolDirection::kSiteToCoordinator,
                                  kProtocolVersion, ProtocolState::kActive);
  SiteStatsReport stats;
  stats.site = 7;  // Any site id passes while nothing is bound.
  EXPECT_EQ(conformance.OnFrame(MakeStatsReport(stats)),
            ProtocolVerdict::kAccept);
  EXPECT_EQ(conformance.violations(), 0u);
}

TEST(ProtocolConformanceTest, MarkClosedIsNotAViolation) {
  ProtocolConformance conformance(ProtocolDirection::kSiteToCoordinator,
                                  kProtocolVersion, ProtocolState::kActive);
  conformance.MarkClosed();
  EXPECT_EQ(conformance.state(), ProtocolState::kClosed);
  EXPECT_EQ(conformance.violations(), 0u);
  // But traffic after an orderly close still violates.
  EXPECT_EQ(conformance.OnFrame(MakeHeartbeat(0)), ProtocolVerdict::kViolation);
  EXPECT_EQ(conformance.violations(), 1u);
}

// --- v5 negotiation: downgrades, capabilities, compression ---------------

TEST(ProtocolConformanceTest, V4HelloNegotiatesTheConnectionDown) {
  ProtocolConformance conformance(ProtocolDirection::kSiteToCoordinator);
  ASSERT_EQ(conformance.version(), kProtocolVersion);
  Frame hello = MakeHello(1);
  hello.protocol_version = 4;
  hello.caps = 0;
  EXPECT_EQ(conformance.OnFrame(hello), ProtocolVerdict::kAccept);
  EXPECT_EQ(conformance.negotiated_version(), 4);
  EXPECT_EQ(conformance.peer_caps(), 0u);
  // v4 traffic flows as ever.
  EXPECT_EQ(conformance.OnFrame(MakeFrame(UpdateBundle{})),
            ProtocolVerdict::kAccept);
}

TEST(ProtocolConformanceTest, TooOldHelloIsStillAVersionMismatch) {
  // kMinNegotiableVersion bounds the downgrade: v3 changed frame bodies, so
  // a v3 hello at a v5 endpoint is the same deployment error it always was.
  ProtocolConformance conformance(ProtocolDirection::kSiteToCoordinator);
  Frame hello = MakeHello(0);
  hello.protocol_version = 3;
  EXPECT_EQ(conformance.OnFrame(hello), ProtocolVerdict::kVersionMismatch);
  EXPECT_EQ(conformance.state(), ProtocolState::kClosed);
}

TEST(ProtocolConformanceTest, ForgedCompressedFlagFromV4PeerIsTerminal) {
  // The model-checked forgery: a peer that negotiated v4 ships a frame
  // inside a kCompressed envelope anyway. The wrapper rule is checked FIRST
  // (kInCompressed has no row below v5), so the inner frame being otherwise
  // legal does not save it.
  MetricsRegistry::Global().ResetForTest();
  ProtocolConformance conformance(ProtocolDirection::kSiteToCoordinator);
  Frame hello = MakeHello(1);
  hello.protocol_version = 4;
  ASSERT_EQ(conformance.OnFrame(hello), ProtocolVerdict::kAccept);
  Frame wrapped = MakeFrame(UpdateBundle{});
  wrapped.compressed = true;
  EXPECT_EQ(conformance.OnFrame(wrapped), ProtocolVerdict::kViolation);
  EXPECT_EQ(conformance.state(), ProtocolState::kClosed);
  EXPECT_EQ(conformance.violations(), 1u);
}

TEST(ProtocolConformanceTest, CompressedFramesFlowOnAV5Connection) {
  ProtocolConformance conformance(ProtocolDirection::kSiteToCoordinator);
  ASSERT_EQ(conformance.OnFrame(MakeHello(1, kCapCompression)),
            ProtocolVerdict::kAccept);
  EXPECT_EQ(conformance.negotiated_version(), kProtocolVersion);
  EXPECT_EQ(conformance.peer_caps(), kCapCompression);
  Frame wrapped = MakeFrame(UpdateBundle{});
  wrapped.compressed = true;
  EXPECT_EQ(conformance.OnFrame(wrapped), ProtocolVerdict::kAccept);
  // But not past the update-lane close: the envelope follows its cargo.
  ASSERT_EQ(conformance.OnFrame(MakeChannelClose(FrameType::kUpdateBundle)),
            ProtocolVerdict::kAccept);
  Frame late = MakeFrame(UpdateBundle{});
  late.compressed = true;
  EXPECT_EQ(conformance.OnFrame(late), ProtocolVerdict::kViolation);
}

TEST(ProtocolConformanceTest, ReplyHelloIsStatePreservingAndCarriesCaps) {
  // The site side: its own hello armed the machine (OnHelloSent); the
  // coordinator's v5 capability reply-hello then lands in kActive, must not
  // disturb the state, and delivers the coordinator's capability bits.
  ProtocolConformance conformance(ProtocolDirection::kCoordinatorToSite);
  conformance.OnHelloSent();
  ASSERT_EQ(conformance.state(), ProtocolState::kActive);
  EXPECT_EQ(conformance.OnFrame(MakeHello(1, kCapCompression)),
            ProtocolVerdict::kAccept);
  EXPECT_EQ(conformance.state(), ProtocolState::kActive);
  EXPECT_EQ(conformance.peer_caps(), kCapCompression);
  EXPECT_EQ(conformance.OnFrame(MakeFrame(EventBatch{})),
            ProtocolVerdict::kAccept);
}

TEST(ProtocolConformanceTest, ReplyHelloClaimingAncientVersionIsTerminal) {
  // The reply-hello row is in the table, but the frame's own version claim
  // still has to be one this endpoint can run.
  ProtocolConformance conformance(ProtocolDirection::kCoordinatorToSite);
  conformance.OnHelloSent();
  Frame hello = MakeHello(0);
  hello.protocol_version = 2;
  EXPECT_EQ(conformance.OnFrame(hello), ProtocolVerdict::kViolation);
  EXPECT_EQ(conformance.state(), ProtocolState::kClosed);
}

TEST(ProtocolConformanceTest, V4PinnedEndpointStillDemandsAnExactMatch) {
  // An endpoint explicitly pinned to v4 (as an actual v4 build would be)
  // must reject a v5 hello: negotiation only runs DOWN from the newer end.
  ProtocolConformance conformance(ProtocolDirection::kSiteToCoordinator,
                                  /*version=*/4);
  Frame hello = MakeHello(0);
  hello.protocol_version = 5;
  EXPECT_EQ(conformance.OnFrame(hello), ProtocolVerdict::kVersionMismatch);
}

// --- ProtocolStreamChecker ------------------------------------------------

std::vector<uint8_t> EncodeStream(const std::vector<Frame>& frames) {
  std::vector<uint8_t> bytes;
  for (const Frame& frame : frames) AppendFrame(frame, &bytes);
  return bytes;
}

TEST(ProtocolStreamCheckerTest, AcceptsALegalSiteStream) {
  UpdateBundle bundle;
  bundle.kind = UpdateBundle::Kind::kSync;
  bundle.site = 1;
  bundle.round = 3;
  bundle.reports.push_back({7, 42});
  SiteStatsReport stats;
  stats.site = 1;  // Must match the hello: the checker binds the site id.
  TraceChunk chunk;
  chunk.site = 1;
  chunk.events.push_back(
      TraceEvent{/*t_nanos=*/123, TraceEventType::kHeartbeat, 1, 0});
  const std::vector<uint8_t> bytes = EncodeStream(
      {MakeHello(1), MakeFrame(bundle), MakeHeartbeat(1),
       MakeStatsReport(stats), MakeTraceChunk(chunk),
       MakeChannelClose(FrameType::kUpdateBundle), MakeHeartbeat(1)});

  ProtocolStreamChecker checker(ProtocolDirection::kSiteToCoordinator);
  // Feed byte-by-byte: frame boundaries must not matter.
  for (uint8_t byte : bytes) ASSERT_TRUE(checker.Append(&byte, 1).ok());
  EXPECT_EQ(checker.frames_accepted(), 7u);
  EXPECT_EQ(checker.conformance().state(), ProtocolState::kDraining);
  EXPECT_EQ(checker.conformance().violations(), 0u);
}

TEST(ProtocolStreamCheckerTest, RejectsSyncBeforeHello) {
  UpdateBundle bundle;
  bundle.kind = UpdateBundle::Kind::kSync;
  const std::vector<uint8_t> bytes = EncodeStream({MakeFrame(bundle)});
  ProtocolStreamChecker checker(ProtocolDirection::kSiteToCoordinator);
  const Status status = checker.Append(bytes.data(), bytes.size());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(checker.conformance().violations(), 1u);
  // The first error is sticky: more bytes do not resurrect the stream.
  const std::vector<uint8_t> more = EncodeStream({MakeHello(0)});
  EXPECT_FALSE(checker.Append(more.data(), more.size()).ok());
  EXPECT_EQ(checker.frames_accepted(), 0u);
}

TEST(ProtocolStreamCheckerTest, RejectsMalformedBytes) {
  // A length prefix promising 5 bytes of an unknown frame type.
  const std::vector<uint8_t> bytes = {5, 0, 0, 0, 99, 1, 2, 3, 4};
  ProtocolStreamChecker checker(ProtocolDirection::kSiteToCoordinator);
  EXPECT_FALSE(checker.Append(bytes.data(), bytes.size()).ok());
  EXPECT_EQ(checker.conformance().violations(), 1u);
}

TEST(ProtocolStreamCheckerTest, RejectsOversizedLengthPrefix) {
  const std::vector<uint8_t> bytes = {0xff, 0xff, 0xff, 0xff};
  ProtocolStreamChecker checker(ProtocolDirection::kSiteToCoordinator);
  const Status status = checker.Append(bytes.data(), bytes.size());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(checker.conformance().state(), ProtocolState::kClosed);
}

TEST(ProtocolStreamCheckerTest, ReportsVersionMismatchDistinctly) {
  Frame hello = MakeHello(0);
  hello.protocol_version = 9;
  const std::vector<uint8_t> bytes = EncodeStream({hello});
  ProtocolStreamChecker checker(ProtocolDirection::kSiteToCoordinator);
  EXPECT_EQ(checker.Append(bytes.data(), bytes.size()).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ProtocolStreamCheckerTest, LongStreamStaysLinear) {
  // Exercises the internal compaction: many small frames through a checker
  // must all be parsed (the test bound is correctness; the compaction keeps
  // it from going quadratic).
  ProtocolStreamChecker checker(ProtocolDirection::kSiteToCoordinator);
  std::vector<uint8_t> bytes = EncodeStream({MakeHello(0)});
  ASSERT_TRUE(checker.Append(bytes.data(), bytes.size()).ok());
  UpdateBundle bundle;
  bundle.kind = UpdateBundle::Kind::kReports;
  bundle.site = 0;
  bytes = EncodeStream({MakeFrame(bundle)});
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(checker.Append(bytes.data(), bytes.size()).ok());
  }
  EXPECT_EQ(checker.frames_accepted(), 20001u);
}

}  // namespace
}  // namespace dsgm
