// Tests for the shared bench harness (bench/harness/experiment.*): the
// experiment driver every figure/table binary relies on.

#include <gtest/gtest.h>

#include "bayes/repository.h"
#include "harness/experiment.h"

namespace dsgm {
namespace {

ExperimentOptions SmallOptions() {
  ExperimentOptions options;
  options.checkpoints = {500, 2000};
  options.sites = 4;
  options.test_events = 50;
  options.seed = 7;
  return options;
}

TEST(StreamExperimentTest, ProducesOneSnapshotPerStrategyPerCheckpoint) {
  const BayesianNetwork net = StudentNetwork();
  const std::vector<Snapshot> snapshots = RunStreamExperiment(net, SmallOptions());
  ASSERT_EQ(snapshots.size(), 4u * 2u);  // 4 strategies x 2 checkpoints.
  for (TrackingStrategy strategy :
       {TrackingStrategy::kExactMle, TrackingStrategy::kBaseline,
        TrackingStrategy::kUniform, TrackingStrategy::kNonUniform}) {
    for (int64_t checkpoint : {500, 2000}) {
      const Snapshot& snap = FindSnapshot(snapshots, strategy, checkpoint);
      EXPECT_EQ(snap.instances, checkpoint);
      EXPECT_EQ(snap.error_to_truth.count(), 50);
    }
  }
}

TEST(StreamExperimentTest, CommunicationGrowsAcrossCheckpoints) {
  const BayesianNetwork net = StudentNetwork();
  const std::vector<Snapshot> snapshots = RunStreamExperiment(net, SmallOptions());
  for (TrackingStrategy strategy :
       {TrackingStrategy::kExactMle, TrackingStrategy::kUniform}) {
    const Snapshot& early = FindSnapshot(snapshots, strategy, 500);
    const Snapshot& late = FindSnapshot(snapshots, strategy, 2000);
    EXPECT_GT(late.comm.TotalMessages(), early.comm.TotalMessages());
  }
}

TEST(StreamExperimentTest, ExactStrategyHasEmptyErrorToMle) {
  const BayesianNetwork net = StudentNetwork();
  const std::vector<Snapshot> snapshots = RunStreamExperiment(net, SmallOptions());
  EXPECT_EQ(FindSnapshot(snapshots, TrackingStrategy::kExactMle, 500)
                .error_to_mle.count(),
            0);
  EXPECT_EQ(FindSnapshot(snapshots, TrackingStrategy::kUniform, 500)
                .error_to_mle.count(),
            50);
}

TEST(StreamExperimentTest, ExactCommunicationIsTwoNPerEvent) {
  const BayesianNetwork net = StudentNetwork();
  const std::vector<Snapshot> snapshots = RunStreamExperiment(net, SmallOptions());
  const Snapshot& snap = FindSnapshot(snapshots, TrackingStrategy::kExactMle, 2000);
  EXPECT_EQ(snap.comm.update_messages,
            static_cast<uint64_t>(2000 * 2 * net.num_variables()));
}

TEST(StreamExperimentTest, DeterministicInSeed) {
  const BayesianNetwork net = StudentNetwork();
  const std::vector<Snapshot> a = RunStreamExperiment(net, SmallOptions());
  const std::vector<Snapshot> b = RunStreamExperiment(net, SmallOptions());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].comm.TotalMessages(), b[i].comm.TotalMessages());
    EXPECT_DOUBLE_EQ(a[i].error_to_truth.Mean(), b[i].error_to_truth.Mean());
  }
}

TEST(StreamExperimentTest, ZipfRoutingRuns) {
  const BayesianNetwork net = StudentNetwork();
  ExperimentOptions options = SmallOptions();
  options.zipf_exponent = 1.5;
  const std::vector<Snapshot> snapshots = RunStreamExperiment(net, options);
  EXPECT_EQ(snapshots.size(), 8u);
  EXPECT_GT(FindSnapshot(snapshots, TrackingStrategy::kUniform, 2000)
                .comm.TotalMessages(),
            0u);
}

TEST(StreamExperimentTest, MissingSnapshotDies) {
  const BayesianNetwork net = StudentNetwork();
  const std::vector<Snapshot> snapshots = RunStreamExperiment(net, SmallOptions());
  EXPECT_DEATH(FindSnapshot(snapshots, TrackingStrategy::kUniform, 999),
               "no snapshot");
}

TEST(HarnessHelpersTest, FormatInstances) {
  EXPECT_EQ(FormatInstances(5000), "5K");
  EXPECT_EQ(FormatInstances(500000), "500K");
  EXPECT_EQ(FormatInstances(5000000), "5M");
  EXPECT_EQ(FormatInstances(1234), "1234");
}

TEST(HarnessHelpersTest, SplitCommaList) {
  EXPECT_EQ(SplitCommaList("alarm,hepar , link"),
            (std::vector<std::string>{"alarm", "hepar", "link"}));
  EXPECT_EQ(SplitCommaList(""), std::vector<std::string>{});
  EXPECT_EQ(SplitCommaList("one"), std::vector<std::string>{"one"});
  EXPECT_EQ(SplitCommaList("a,,b"), (std::vector<std::string>{"a", "b"}));
}

TEST(HarnessHelpersTest, CheckpointsFromFlags) {
  Flags flags;
  DefineCommonFlags(&flags);
  EXPECT_EQ(CheckpointsFromFlags(flags),
            (std::vector<int64_t>{5000, 50000, 500000}));
  const char* argv[] = {"prog", "--full"};
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(argv)).ok());
  EXPECT_EQ(CheckpointsFromFlags(flags),
            (std::vector<int64_t>{5000, 50000, 500000, 5000000}));
}

}  // namespace
}  // namespace dsgm
