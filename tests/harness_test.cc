// Tests for the shared bench harness (bench/harness/experiment.*): the
// experiment driver every figure/table binary relies on, and the JSON
// report writer (bench/harness/json_report.*).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "bayes/repository.h"
#include "harness/experiment.h"
#include "harness/json_report.h"

namespace dsgm {
namespace {

TEST(JsonReportTest, RendersNestedStructure) {
  Json root = Json::Object();
  root.Add("name", Json::Str("fig8"))
      .Add("count", Json::Int(42))
      .Add("ratio", Json::Double(0.5))
      .Add("ok", Json::Bool(true))
      .Add("missing", Json::Null());
  Json list = Json::Array();
  list.Append(Json::Int(1)).Append(Json::Int(2));
  root.Add("list", std::move(list));
  const std::string text = root.ToString();
  EXPECT_NE(text.find("\"name\": \"fig8\""), std::string::npos);
  EXPECT_NE(text.find("\"count\": 42"), std::string::npos);
  EXPECT_NE(text.find("\"ok\": true"), std::string::npos);
  EXPECT_NE(text.find("\"missing\": null"), std::string::npos);
}

TEST(JsonReportTest, EscapesStringsAndHandlesNonFiniteNumbers) {
  Json root = Json::Object();
  root.Add("quote\"back\\slash\nnewline", Json::Str("tab\there"));
  root.Add("inf", Json::Double(std::numeric_limits<double>::infinity()));
  root.Add("nan", Json::Double(std::numeric_limits<double>::quiet_NaN()));
  const std::string text = root.ToString();
  EXPECT_NE(text.find("quote\\\"back\\\\slash\\nnewline"), std::string::npos);
  EXPECT_NE(text.find("tab\\there"), std::string::npos);
  EXPECT_NE(text.find("\"inf\": null"), std::string::npos);
  EXPECT_NE(text.find("\"nan\": null"), std::string::npos);
}

TEST(JsonReportTest, EmptyContainersRenderCompactly) {
  Json root = Json::Object();
  root.Add("empty_list", Json::Array()).Add("empty_obj", Json::Object());
  const std::string text = root.ToString();
  EXPECT_NE(text.find("\"empty_list\": []"), std::string::npos);
  EXPECT_NE(text.find("\"empty_obj\": {}"), std::string::npos);
}

TEST(JsonReportTest, WriteJsonReportRoundTripsThroughDisk) {
  const std::string path = ::testing::TempDir() + "/dsgm_json_report_test.json";
  Json root = Json::Object();
  root.Add("bench", Json::Str("test")).Add("value", Json::Int(7));
  ASSERT_TRUE(WriteJsonReport(path, root).ok());
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), root.ToString() + "\n");
  std::remove(path.c_str());
}

TEST(JsonReportTest, ClusterResultRecordCarriesTransportBytesWhenMeasured) {
  ClusterResult result;
  result.events_processed = 10;
  result.transport_measured = true;
  result.transport_bytes_up = 123;
  result.transport_bytes_down = 456;
  const std::string text = ClusterResultToJson(result).ToString();
  EXPECT_NE(text.find("\"transport_bytes_up\": 123"), std::string::npos);
  EXPECT_NE(text.find("\"transport_bytes_down\": 456"), std::string::npos);

  ClusterResult loopback;
  const std::string loopback_text = ClusterResultToJson(loopback).ToString();
  EXPECT_EQ(loopback_text.find("transport_bytes_up"), std::string::npos);
  EXPECT_NE(loopback_text.find("\"transport_measured\": false"), std::string::npos);
}

ExperimentOptions SmallOptions() {
  ExperimentOptions options;
  options.checkpoints = {500, 2000};
  options.sites = 4;
  options.test_events = 50;
  options.seed = 7;
  return options;
}

TEST(StreamExperimentTest, ProducesOneSnapshotPerStrategyPerCheckpoint) {
  const BayesianNetwork net = StudentNetwork();
  const std::vector<Snapshot> snapshots = RunStreamExperiment(net, SmallOptions());
  ASSERT_EQ(snapshots.size(), 4u * 2u);  // 4 strategies x 2 checkpoints.
  for (TrackingStrategy strategy :
       {TrackingStrategy::kExactMle, TrackingStrategy::kBaseline,
        TrackingStrategy::kUniform, TrackingStrategy::kNonUniform}) {
    for (int64_t checkpoint : {500, 2000}) {
      const Snapshot& snap = FindSnapshot(snapshots, strategy, checkpoint);
      EXPECT_EQ(snap.instances, checkpoint);
      EXPECT_EQ(snap.error_to_truth.count(), 50);
    }
  }
}

TEST(StreamExperimentTest, CommunicationGrowsAcrossCheckpoints) {
  const BayesianNetwork net = StudentNetwork();
  const std::vector<Snapshot> snapshots = RunStreamExperiment(net, SmallOptions());
  for (TrackingStrategy strategy :
       {TrackingStrategy::kExactMle, TrackingStrategy::kUniform}) {
    const Snapshot& early = FindSnapshot(snapshots, strategy, 500);
    const Snapshot& late = FindSnapshot(snapshots, strategy, 2000);
    EXPECT_GT(late.comm.TotalMessages(), early.comm.TotalMessages());
  }
}

TEST(StreamExperimentTest, ExactStrategyHasEmptyErrorToMle) {
  const BayesianNetwork net = StudentNetwork();
  const std::vector<Snapshot> snapshots = RunStreamExperiment(net, SmallOptions());
  EXPECT_EQ(FindSnapshot(snapshots, TrackingStrategy::kExactMle, 500)
                .error_to_mle.count(),
            0);
  EXPECT_EQ(FindSnapshot(snapshots, TrackingStrategy::kUniform, 500)
                .error_to_mle.count(),
            50);
}

TEST(StreamExperimentTest, ExactCommunicationIsTwoNPerEvent) {
  const BayesianNetwork net = StudentNetwork();
  const std::vector<Snapshot> snapshots = RunStreamExperiment(net, SmallOptions());
  const Snapshot& snap = FindSnapshot(snapshots, TrackingStrategy::kExactMle, 2000);
  EXPECT_EQ(snap.comm.update_messages,
            static_cast<uint64_t>(2000 * 2 * net.num_variables()));
}

TEST(StreamExperimentTest, DeterministicInSeed) {
  const BayesianNetwork net = StudentNetwork();
  const std::vector<Snapshot> a = RunStreamExperiment(net, SmallOptions());
  const std::vector<Snapshot> b = RunStreamExperiment(net, SmallOptions());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].comm.TotalMessages(), b[i].comm.TotalMessages());
    EXPECT_DOUBLE_EQ(a[i].error_to_truth.Mean(), b[i].error_to_truth.Mean());
  }
}

TEST(StreamExperimentTest, ZipfRoutingRuns) {
  const BayesianNetwork net = StudentNetwork();
  ExperimentOptions options = SmallOptions();
  options.zipf_exponent = 1.5;
  const std::vector<Snapshot> snapshots = RunStreamExperiment(net, options);
  EXPECT_EQ(snapshots.size(), 8u);
  EXPECT_GT(FindSnapshot(snapshots, TrackingStrategy::kUniform, 2000)
                .comm.TotalMessages(),
            0u);
}

TEST(StreamExperimentTest, MissingSnapshotDies) {
  const BayesianNetwork net = StudentNetwork();
  const std::vector<Snapshot> snapshots = RunStreamExperiment(net, SmallOptions());
  EXPECT_DEATH(FindSnapshot(snapshots, TrackingStrategy::kUniform, 999),
               "no snapshot");
}

TEST(HarnessHelpersTest, FormatInstances) {
  EXPECT_EQ(FormatInstances(5000), "5K");
  EXPECT_EQ(FormatInstances(500000), "500K");
  EXPECT_EQ(FormatInstances(5000000), "5M");
  EXPECT_EQ(FormatInstances(1234), "1234");
}

TEST(HarnessHelpersTest, SplitCommaList) {
  EXPECT_EQ(SplitCommaList("alarm,hepar , link"),
            (std::vector<std::string>{"alarm", "hepar", "link"}));
  EXPECT_EQ(SplitCommaList(""), std::vector<std::string>{});
  EXPECT_EQ(SplitCommaList("one"), std::vector<std::string>{"one"});
  EXPECT_EQ(SplitCommaList("a,,b"), (std::vector<std::string>{"a", "b"}));
}

TEST(HarnessHelpersTest, CheckpointsFromFlags) {
  Flags flags;
  DefineCommonFlags(&flags);
  EXPECT_EQ(CheckpointsFromFlags(flags),
            (std::vector<int64_t>{5000, 50000, 500000}));
  const char* argv[] = {"prog", "--full"};
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(argv)).ok());
  EXPECT_EQ(CheckpointsFromFlags(flags),
            (std::vector<int64_t>{5000, 50000, 500000, 5000000}));
}

}  // namespace
}  // namespace dsgm
