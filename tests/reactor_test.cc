// Unit tests for the epoll event-loop substrate (net/reactor.h) and the
// flow-controlled queue the reactor transport feeds (net/reactor_transport.h):
// the timer wheel's pure tick arithmetic, cross-thread Post, fd readiness,
// periodic timers, and the TryPush/space-callback contract.

#include <gtest/gtest.h>

#include <sys/epoll.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "net/reactor.h"
#include "net/reactor_transport.h"

namespace dsgm {
namespace {

// --- TimerWheel (no clock, no sleeping) ----------------------------------

TEST(TimerWheelTest, FiresAtTheScheduledTick) {
  TimerWheel wheel(/*tick_ms=*/5, /*num_slots=*/16);
  wheel.Schedule(1, /*delay_ms=*/25);  // 5 ticks out.
  std::vector<uint64_t> fired;
  wheel.Advance(4, &fired);
  EXPECT_TRUE(fired.empty());
  wheel.Advance(5, &fired);
  EXPECT_EQ(fired, std::vector<uint64_t>{1});
  EXPECT_EQ(wheel.live(), 0u);
}

TEST(TimerWheelTest, ZeroDelayRoundsUpToOneTick) {
  TimerWheel wheel(5, 16);
  wheel.Schedule(7, 0);
  std::vector<uint64_t> fired;
  wheel.Advance(0, &fired);  // Stale advance: no-op.
  EXPECT_TRUE(fired.empty());
  wheel.Advance(1, &fired);
  EXPECT_EQ(fired, std::vector<uint64_t>{7});
}

TEST(TimerWheelTest, CancelSuppressesFiring) {
  TimerWheel wheel(5, 16);
  wheel.Schedule(1, 10);
  wheel.Schedule(2, 10);
  wheel.Cancel(1);
  std::vector<uint64_t> fired;
  wheel.Advance(10, &fired);
  EXPECT_EQ(fired, std::vector<uint64_t>{2});
  EXPECT_EQ(wheel.live(), 0u);
}

TEST(TimerWheelTest, MultiRotationDelaysSurviveBucketRevisits) {
  // 16 slots x 5 ms = one rotation per 80 ms; a 500 ms timer has its
  // bucket visited several times before it is due.
  TimerWheel wheel(5, 16);
  wheel.Schedule(9, 500);  // 100 ticks.
  std::vector<uint64_t> fired;
  for (uint64_t tick = 1; tick < 100; ++tick) {
    wheel.Advance(tick, &fired);
    ASSERT_TRUE(fired.empty()) << "fired early at tick " << tick;
  }
  wheel.Advance(100, &fired);
  EXPECT_EQ(fired, std::vector<uint64_t>{9});
}

TEST(TimerWheelTest, StalledWheelCatchesUpInOneSweep) {
  TimerWheel wheel(5, 16);
  wheel.Schedule(1, 10);
  wheel.Schedule(2, 200);
  std::vector<uint64_t> fired;
  // Advance far past a whole rotation in one call (a stalled loop).
  wheel.Advance(1000, &fired);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(wheel.live(), 0u);
}

// --- FlowQueue -----------------------------------------------------------

TEST(FlowQueueTest, TryPushReportsFullWithoutConsumingTheItem) {
  FlowQueue<std::vector<int>> queue(1);
  std::vector<int> first = {1, 2, 3};
  ASSERT_EQ(queue.TryPush(std::move(first)), FlowPush::kOk);
  std::vector<int> second = {4, 5, 6};
  ASSERT_EQ(queue.TryPush(std::move(second)), FlowPush::kFull);
  // kFull must leave the caller's object intact for re-delivery.
  EXPECT_EQ(second, (std::vector<int>{4, 5, 6}));
}

TEST(FlowQueueTest, SpaceCallbackFiresAfterStarvedPop) {
  FlowQueue<int> queue(1);
  std::atomic<int> fired{0};
  queue.set_space_callback([&fired] { fired.fetch_add(1); });
  ASSERT_EQ(queue.TryPush(1), FlowPush::kOk);
  std::vector<int> out;
  queue.TryPopBatch(&out, 8);
  EXPECT_EQ(fired.load(), 0);  // Never starved: no callback.
  ASSERT_EQ(queue.TryPush(2), FlowPush::kOk);
  ASSERT_EQ(queue.TryPush(3), FlowPush::kFull);  // Starved.
  out.clear();
  queue.TryPopBatch(&out, 8);
  EXPECT_EQ(fired.load(), 1);
  out.clear();
  queue.TryPopBatch(&out, 8);  // No longer starved: no second callback.
  EXPECT_EQ(fired.load(), 1);
}

TEST(FlowQueueTest, CloseWhileStarvedFiresCallbackAndDrains) {
  FlowQueue<int> queue(1);
  std::atomic<int> fired{0};
  queue.set_space_callback([&fired] { fired.fetch_add(1); });
  ASSERT_EQ(queue.TryPush(1), FlowPush::kOk);
  ASSERT_EQ(queue.TryPush(2), FlowPush::kFull);
  queue.Close();
  EXPECT_EQ(fired.load(), 1);  // A paused producer must wake and observe closed.
  EXPECT_EQ(queue.TryPush(3), FlowPush::kClosed);
  std::vector<int> out;
  EXPECT_EQ(queue.PopBatch(&out, 8), 1u);  // Drain-then-fail.
  EXPECT_EQ(queue.PopBatch(&out, 8), 0u);
}

TEST(FlowQueueTest, PopBatchBlocksUntilPushOrClose) {
  FlowQueue<int> queue(4);
  std::atomic<bool> got{false};
  std::thread consumer([&queue, &got] {
    std::vector<int> out;
    if (queue.PopBatch(&out, 4) == 1 && out[0] == 42) got.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  ASSERT_EQ(queue.TryPush(42), FlowPush::kOk);
  consumer.join();
  EXPECT_TRUE(got.load());
}

// --- Reactor -------------------------------------------------------------

TEST(ReactorTest, PostFromAnotherThreadRunsOnTheLoop) {
  Reactor reactor;
  reactor.Start();
  std::mutex mu;
  std::condition_variable cv;
  bool ran = false;
  bool in_loop = false;
  reactor.Post([&] {
    std::lock_guard<std::mutex> lock(mu);
    ran = true;
    in_loop = reactor.InLoopThread();
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return ran; }));
  EXPECT_TRUE(in_loop);
  lock.unlock();
  reactor.Stop();
}

TEST(ReactorTest, OneShotTimerFires) {
  Reactor reactor;
  reactor.Start();
  std::mutex mu;
  std::condition_variable cv;
  bool fired = false;
  reactor.Post([&] {
    // Posted closures run on the loop thread, which holds the loop role;
    // the assertion tells the static analysis (and debug builds) so.
    reactor.loop_role.AssertHeld();
    reactor.AddTimer(20, [&] {
      std::lock_guard<std::mutex> lock(mu);
      fired = true;
      cv.notify_all();
    });
  });
  std::unique_lock<std::mutex> lock(mu);
  EXPECT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return fired; }));
  lock.unlock();
  reactor.Stop();
}

TEST(ReactorTest, PeriodicTimerFiresRepeatedlyUntilCancelled) {
  Reactor reactor;
  reactor.Start();
  std::mutex mu;
  std::condition_variable cv;
  int count = 0;
  reactor.Post([&] {
    reactor.loop_role.AssertHeld();
    // Cancelled from inside its own callback on the third firing.
    Reactor::TimerId* id = new Reactor::TimerId(0);
    *id = reactor.AddTimer(
        10,
        [&, id] {
          reactor.loop_role.AssertHeld();
          std::lock_guard<std::mutex> lock(mu);
          if (++count == 3) {
            reactor.CancelTimer(*id);
            delete id;
            cv.notify_all();
          }
        },
        /*periodic=*/true);
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return count >= 3; }));
  }
  // Give a cancelled timer the chance to misfire, then confirm it did not.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(count, 3);
  }
  reactor.Stop();
}

TEST(ReactorTest, FdReadinessInvokesHandler) {
  Reactor reactor;
  reactor.Start();
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::mutex mu;
  std::condition_variable cv;
  std::vector<uint8_t> received;
  reactor.Post([&] {
    reactor.loop_role.AssertHeld();
    reactor.AddFd(fds[0], EPOLLIN, [&](uint32_t) {
      // Edge-triggered: drain to EAGAIN.
      uint8_t buffer[16];
      ssize_t n;
      while ((n = ::read(fds[0], buffer, sizeof(buffer))) > 0) {
        std::lock_guard<std::mutex> lock(mu);
        received.insert(received.end(), buffer, buffer + n);
        cv.notify_all();
      }
    });
  });
  // Nonblocking read side is required for drain-to-EAGAIN; the write side
  // stays blocking.
  TcpSocket reader(fds[0]);
  ASSERT_TRUE(reader.SetNonBlocking().ok());
  const uint8_t payload[3] = {7, 8, 9};
  ASSERT_EQ(::write(fds[1], payload, 3), 3);
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                            [&] { return received.size() == 3; }));
    EXPECT_EQ(received, (std::vector<uint8_t>{7, 8, 9}));
  }
  reactor.Post([&] {
    reactor.loop_role.AssertHeld();
    reactor.RemoveFd(fds[0]);
  });
  reactor.Stop();
  // reader's destructor closes fds[0].
  ::close(fds[1]);
}

TEST(ReactorTest, StopIsIdempotentAndStartableOnceOnly) {
  Reactor reactor;
  reactor.Start();
  reactor.Stop();
  reactor.Stop();
}

}  // namespace
}  // namespace dsgm
