// Tests for cluster/: the threaded site/coordinator implementation must
// agree with the synchronous simulation's semantics.

#include <gtest/gtest.h>

#include "bayes/repository.h"
#include "cluster/cluster_runner.h"
#include "cluster/queue.h"

namespace dsgm {
namespace {

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> queue(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(queue.Push(i));
  std::vector<int> out;
  EXPECT_EQ(queue.PopBatch(&out, 100), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i);
}

TEST(BoundedQueueTest, CloseDrainsThenFails) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.Push(1));
  queue.Close();
  EXPECT_FALSE(queue.Push(2));
  std::vector<int> out;
  EXPECT_EQ(queue.PopBatch(&out, 10), 1u);
  EXPECT_EQ(queue.PopBatch(&out, 10), 0u);
}

TEST(BoundedQueueTest, TryPopDoesNotBlock) {
  BoundedQueue<int> queue(4);
  std::vector<int> out;
  EXPECT_EQ(queue.TryPopBatch(&out, 10), 0u);
  ASSERT_TRUE(queue.Push(5));
  EXPECT_EQ(queue.TryPopBatch(&out, 10), 1u);
  EXPECT_EQ(out[0], 5);
}

ClusterConfig MakeConfig(TrackingStrategy strategy, int sites, int64_t events) {
  ClusterConfig config;
  config.tracker.strategy = strategy;
  config.tracker.num_sites = sites;
  config.tracker.epsilon = 0.1;
  config.tracker.seed = 12345;
  config.num_events = events;
  return config;
}

TEST(ClusterTest, ExactModeReproducesCountsExactly) {
  const BayesianNetwork net = StudentNetwork();
  const ClusterResult result =
      RunCluster(net, MakeConfig(TrackingStrategy::kExactMle, 3, 20000));
  EXPECT_EQ(result.events_processed, 20000);
  // Exact mode: coordinator estimates equal summed site counts.
  EXPECT_DOUBLE_EQ(result.max_counter_rel_error, 0.0);
  // 2n update messages per event.
  EXPECT_EQ(result.comm.update_messages,
            static_cast<uint64_t>(20000 * 2 * net.num_variables()));
  EXPECT_GT(result.runtime_seconds, 0.0);
  EXPECT_GT(result.throughput_events_per_sec, 0.0);
}

TEST(ClusterTest, ApproxModeBoundedError) {
  const BayesianNetwork net = StudentNetwork();
  const ClusterResult result =
      RunCluster(net, MakeConfig(TrackingStrategy::kUniform, 4, 50000));
  EXPECT_EQ(result.events_processed, 50000);
  // Counter-level deviation stays within a few epsilon' bands. The
  // per-counter epsilon for UNIFORM on n=5 is 0.1/(16*sqrt(5)) ~ 0.0028;
  // in-flight reports at shutdown can add slack, so the bound is loose.
  EXPECT_LT(result.max_counter_rel_error, 0.05);
  EXPECT_LT(result.comm.update_messages,
            static_cast<uint64_t>(50000 * 2 * net.num_variables()));
}

TEST(ClusterTest, ApproxSendsFewerMessagesThanExact) {
  const BayesianNetwork net = Alarm();
  const ClusterResult exact =
      RunCluster(net, MakeConfig(TrackingStrategy::kExactMle, 4, 30000));
  const ClusterResult approx =
      RunCluster(net, MakeConfig(TrackingStrategy::kNonUniform, 4, 30000));
  EXPECT_LT(approx.comm.TotalMessages(), exact.comm.TotalMessages());
  // Bundled wire messages stay ~1/event for every algorithm (the paper makes
  // the same observation about its cluster runs); the payload shrinks.
  EXPECT_LT(approx.comm.bytes_up, exact.comm.bytes_up);
}

TEST(ClusterTest, ScalesAcrossSiteCounts) {
  const BayesianNetwork net = StudentNetwork();
  for (int sites : {2, 6, 10}) {
    const ClusterResult result =
        RunCluster(net, MakeConfig(TrackingStrategy::kUniform, sites, 10000));
    EXPECT_EQ(result.events_processed, 10000) << "sites=" << sites;
    EXPECT_LT(result.max_counter_rel_error, 0.1) << "sites=" << sites;
  }
}

TEST(ClusterTest, SingleSiteWorks) {
  const BayesianNetwork net = StudentNetwork();
  const ClusterResult result =
      RunCluster(net, MakeConfig(TrackingStrategy::kBaseline, 1, 5000));
  EXPECT_EQ(result.events_processed, 5000);
  EXPECT_LT(result.max_counter_rel_error, 0.05);
}

}  // namespace
}  // namespace dsgm
