// Tests for cluster/: the threaded site/coordinator implementation must
// agree with the synchronous simulation's semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "bayes/repository.h"
#include "cluster/coordinator_node.h"
#include "cluster/site_node.h"
#include "common/queue.h"
#include "dsgm/dsgm.h"
#include "net/channel.h"

namespace dsgm {
namespace {

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> queue(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(queue.Push(i));
  std::vector<int> out;
  EXPECT_EQ(queue.PopBatch(&out, 100), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i);
}

TEST(BoundedQueueTest, CloseDrainsThenFails) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.Push(1));
  queue.Close();
  EXPECT_FALSE(queue.Push(2));
  std::vector<int> out;
  EXPECT_EQ(queue.PopBatch(&out, 10), 1u);
  EXPECT_EQ(queue.PopBatch(&out, 10), 0u);
}

TEST(BoundedQueueTest, TryPopDoesNotBlock) {
  BoundedQueue<int> queue(4);
  std::vector<int> out;
  EXPECT_EQ(queue.TryPopBatch(&out, 10), 0u);
  ASSERT_TRUE(queue.Push(5));
  EXPECT_EQ(queue.TryPopBatch(&out, 10), 1u);
  EXPECT_EQ(out[0], 5);
}

TEST(BoundedQueueTest, PushBatchNeverOvershootsCapacity) {
  // Regression: PushBatch used to append the whole batch after one
  // not-full wait, ballooning a capacity-4 queue to arbitrary size. It must
  // now chunk against the bound and wait for consumers between chunks.
  constexpr size_t kCapacity = 4;
  constexpr int kItems = 100;
  BoundedQueue<int> queue(kCapacity);
  std::thread producer([&queue] {
    std::vector<int> batch;
    for (int i = 0; i < kItems; ++i) batch.push_back(i);
    EXPECT_TRUE(queue.PushBatch(std::move(batch)));
  });
  std::vector<int> received;
  size_t max_seen = 0;
  while (received.size() < static_cast<size_t>(kItems)) {
    max_seen = std::max(max_seen, queue.size());
    queue.PopBatch(&received, 1);
  }
  producer.join();
  EXPECT_LE(max_seen, kCapacity);
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(received[static_cast<size_t>(i)], i);
}

TEST(BoundedQueueTest, PushBatchSmallBatchStaysAtomic) {
  BoundedQueue<int> queue(8);
  EXPECT_TRUE(queue.PushBatch({1, 2, 3}));
  EXPECT_EQ(queue.size(), 3u);
  std::vector<int> out;
  EXPECT_EQ(queue.PopBatch(&out, 10), 3u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(BoundedQueueTest, CloseUnblocksPushBatchMidway) {
  BoundedQueue<int> queue(2);
  std::atomic<bool> returned{false};
  std::thread producer([&queue, &returned] {
    std::vector<int> batch(50, 7);
    EXPECT_FALSE(queue.PushBatch(std::move(batch)));  // Blocked, then closed.
    returned.store(true);
  });
  // Let the producer fill the queue and block on the capacity bound.
  while (queue.size() < 2) std::this_thread::yield();
  EXPECT_FALSE(returned.load());
  queue.Close();
  producer.join();
  EXPECT_TRUE(returned.load());
  // Chunks pushed before the close stay poppable.
  std::vector<int> out;
  EXPECT_EQ(queue.PopBatch(&out, 10), 2u);
}

TEST(CoordinatorNodeTest, IgnoresForgedSiteAndCounterIds) {
  // Bundles arrive from real network peers in the multi-process deployment;
  // out-of-range ids must be dropped, not indexed.
  BoundedQueue<UpdateBundle> updates(64);
  QueueChannel<UpdateBundle> update_channel(&updates);
  BoundedQueue<RoundAdvance> commands(64);
  QueueChannel<RoundAdvance> command_channel(&commands);
  CoordinatorNode coordinator(/*epsilons=*/{}, /*num_counters=*/2,
                              /*num_sites=*/1, 1.0, &update_channel,
                              {&command_channel});

  UpdateBundle forged_site;
  forged_site.kind = UpdateBundle::Kind::kReports;
  forged_site.site = 99;
  forged_site.reports = {{0, 5}};
  ASSERT_TRUE(updates.Push(forged_site));
  forged_site.site = -1;
  ASSERT_TRUE(updates.Push(forged_site));

  UpdateBundle forged_counters;
  forged_counters.kind = UpdateBundle::Kind::kReports;
  forged_counters.site = 0;
  forged_counters.reports = {{-1, 3}, {1000000007, 4}, {1, 7}};
  ASSERT_TRUE(updates.Push(forged_counters));

  UpdateBundle done;
  done.kind = UpdateBundle::Kind::kSiteDone;
  done.site = 0;
  ASSERT_TRUE(updates.Push(done));

  coordinator.Run();
  EXPECT_EQ(coordinator.Estimate(0), 0.0);  // Forged-site reports dropped.
  EXPECT_EQ(coordinator.Estimate(1), 7.0);  // The one valid report landed.
}

TEST(CoordinatorNodeTest, MidRunAccessorsDoNotRaceTheProtocolThread) {
  // Regression for a defect the thread-safety annotation pass surfaced:
  // Run() wrote the first/last-message timestamps (and comm_) outside any
  // lock while ActiveSeconds()/comm() read them bare — benign for
  // post-join callers, a data race for mid-run ones. Every accessor now
  // takes the protocol mutex; this test exercises all of them against a
  // live Run() thread (TSan covers this suite in CI).
  BoundedQueue<UpdateBundle> updates(64);
  QueueChannel<UpdateBundle> update_channel(&updates);
  BoundedQueue<RoundAdvance> commands(64);
  QueueChannel<RoundAdvance> command_channel(&commands);
  CoordinatorNode coordinator(/*epsilons=*/{}, /*num_counters=*/2,
                              /*num_sites=*/1, 1.0, &update_channel,
                              {&command_channel});
  std::thread protocol([&coordinator] { coordinator.Run(); });

  uint64_t max_updates_seen = 0;
  for (uint32_t i = 1; i <= 200; ++i) {
    UpdateBundle bundle;
    bundle.kind = UpdateBundle::Kind::kReports;
    bundle.site = 0;
    bundle.reports = {{0, i}};
    ASSERT_TRUE(updates.Push(std::move(bundle)));
    // The racing reads under test: every accessor is legal mid-run.
    EXPECT_GE(coordinator.ActiveSeconds(), 0.0);
    EXPECT_GE(coordinator.Estimate(0), 0.0);
    max_updates_seen = std::max(max_updates_seen,
                                coordinator.comm().update_messages);
    std::vector<double> estimates;
    CommStats comm;
    coordinator.SnapshotState(&estimates, &comm);
  }

  UpdateBundle done;
  done.kind = UpdateBundle::Kind::kSiteDone;
  done.site = 0;
  ASSERT_TRUE(updates.Push(done));
  protocol.join();
  EXPECT_EQ(coordinator.Estimate(0), 200.0);
  EXPECT_EQ(coordinator.comm().update_messages, 200u);
  EXPECT_GE(coordinator.comm().update_messages, max_updates_seen);
}

TEST(SiteNodeTest, IgnoresForgedRoundAdvances) {
  const BayesianNetwork net = StudentNetwork();
  BoundedQueue<EventBatch> events(4);
  BoundedQueue<RoundAdvance> commands(16);
  BoundedQueue<UpdateBundle> updates(64);
  QueueChannel<EventBatch> event_channel(&events);
  QueueChannel<RoundAdvance> command_channel(&commands);
  QueueChannel<UpdateBundle> update_channel(&updates);
  SiteNode site(0, net, /*seed=*/1, &event_channel, &command_channel,
                &update_channel);

  ASSERT_TRUE(commands.Push(RoundAdvance{1000000009, 1, 0.5f}));
  ASSERT_TRUE(commands.Push(RoundAdvance{-5, 1, 0.5f}));
  events.Close();
  commands.Close();
  site.Run();

  // Only the SiteDone marker: forged advances produce no sync reports.
  std::vector<UpdateBundle> out;
  updates.TryPopBatch(&out, 10);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, UpdateBundle::Kind::kSiteDone);
}

/// One threaded-cluster run through the Session API (the former RunCluster
/// free function's behavior: same seed schedule, same report fields).
RunReport RunThreadedCluster(const BayesianNetwork& net, TrackingStrategy strategy,
                             int sites, int64_t events) {
  StatusOr<std::unique_ptr<Session>> session = SessionBuilder(net)
                                                   .WithBackend(Backend::kThreads)
                                                   .WithStrategy(strategy)
                                                   .WithSites(sites)
                                                   .WithEpsilon(0.1)
                                                   .WithSeed(12345)
                                                   .Build();
  EXPECT_TRUE(session.ok()) << session.status();
  EXPECT_TRUE((*session)->StreamGroundTruth(events).ok());
  StatusOr<RunReport> report = (*session)->Finish();
  EXPECT_TRUE(report.ok()) << report.status();
  return *report;
}

TEST(ClusterTest, ExactModeReproducesCountsExactly) {
  const BayesianNetwork net = StudentNetwork();
  const RunReport result =
      RunThreadedCluster(net, TrackingStrategy::kExactMle, 3, 20000);
  EXPECT_EQ(result.events_processed, 20000);
  // Exact mode: coordinator estimates equal summed site counts.
  EXPECT_DOUBLE_EQ(result.max_counter_rel_error, 0.0);
  // 2n update messages per event.
  EXPECT_EQ(result.comm.update_messages,
            static_cast<uint64_t>(20000 * 2 * net.num_variables()));
  EXPECT_GT(result.runtime_seconds, 0.0);
  EXPECT_GT(result.throughput_events_per_sec, 0.0);
}

TEST(ClusterTest, ApproxModeBoundedError) {
  const BayesianNetwork net = StudentNetwork();
  const RunReport result =
      RunThreadedCluster(net, TrackingStrategy::kUniform, 4, 50000);
  EXPECT_EQ(result.events_processed, 50000);
  // Counter-level deviation stays within a few epsilon' bands. The
  // per-counter epsilon for UNIFORM on n=5 is 0.1/(16*sqrt(5)) ~ 0.0028;
  // in-flight reports at shutdown can add slack, so the bound is loose.
  EXPECT_LT(result.max_counter_rel_error, 0.05);
  EXPECT_LT(result.comm.update_messages,
            static_cast<uint64_t>(50000 * 2 * net.num_variables()));
}

TEST(ClusterTest, ApproxSendsFewerMessagesThanExact) {
  const BayesianNetwork net = Alarm();
  const RunReport exact =
      RunThreadedCluster(net, TrackingStrategy::kExactMle, 4, 30000);
  const RunReport approx =
      RunThreadedCluster(net, TrackingStrategy::kNonUniform, 4, 30000);
  EXPECT_LT(approx.comm.TotalMessages(), exact.comm.TotalMessages());
  // Bundled wire messages stay ~1/event for every algorithm (the paper makes
  // the same observation about its cluster runs); the payload shrinks.
  EXPECT_LT(approx.comm.bytes_up, exact.comm.bytes_up);
}

TEST(ClusterTest, ScalesAcrossSiteCounts) {
  const BayesianNetwork net = StudentNetwork();
  for (int sites : {2, 6, 10}) {
    const RunReport result =
        RunThreadedCluster(net, TrackingStrategy::kUniform, sites, 10000);
    EXPECT_EQ(result.events_processed, 10000) << "sites=" << sites;
    EXPECT_LT(result.max_counter_rel_error, 0.1) << "sites=" << sites;
  }
}

TEST(ClusterTest, SingleSiteWorks) {
  const BayesianNetwork net = StudentNetwork();
  const RunReport result =
      RunThreadedCluster(net, TrackingStrategy::kBaseline, 1, 5000);
  EXPECT_EQ(result.events_processed, 5000);
  // The realized error is scheduling-dependent (round advances race event
  // processing), and under sanitizer timings this short run was observed up
  // to ~0.09 on the unmodified pre-transport code; 0.1 matches
  // ScalesAcrossSiteCounts.
  EXPECT_LT(result.max_counter_rel_error, 0.1);
}

}  // namespace
}  // namespace dsgm
