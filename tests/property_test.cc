// Property-based sweeps over randomized inputs (parameterized gtest):
// invariants that must hold for every generated network, seed, and
// configuration, not just hand-picked examples.

#include <gtest/gtest.h>

#include <cmath>

#include "bayes/generator.h"
#include "bayes/io.h"
#include "bayes/sampler.h"
#include "core/error_allocation.h"
#include "core/mle_tracker.h"

namespace dsgm {
namespace {

BayesianNetwork RandomNetwork(uint64_t seed) {
  Rng rng(seed);
  NetworkSpec spec;
  spec.name = "prop" + std::to_string(seed);
  spec.num_nodes = 8 + static_cast<int>(rng.NextBounded(30));
  spec.num_edges = spec.num_nodes - 1 + static_cast<int>(rng.NextBounded(
                                            static_cast<uint64_t>(spec.num_nodes)));
  spec.min_cardinality = 2;
  spec.max_cardinality = 2 + static_cast<int>(rng.NextBounded(4));
  spec.target_params = 0;  // Structure-driven; no repair loop.
  StatusOr<BayesianNetwork> net = GenerateNetwork(spec, seed * 31 + 7);
  EXPECT_TRUE(net.ok()) << net.status();
  return std::move(net).value();
}

class NetworkPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(NetworkPropertyTest, GeneratedNetworksAreValidAndRoundTrip) {
  const BayesianNetwork net = RandomNetwork(static_cast<uint64_t>(GetParam()));
  EXPECT_TRUE(net.dag().IsAcyclic());
  // Every CPD row is a distribution.
  for (int i = 0; i < net.num_variables(); ++i) {
    for (int64_t row = 0; row < net.cpd(i).num_rows(); ++row) {
      double total = 0.0;
      for (int j = 0; j < net.cardinality(i); ++j) total += net.cpd(i).prob(j, row);
      ASSERT_NEAR(total, 1.0, 1e-9);
    }
  }
  // Serialization round trip preserves the network.
  StatusOr<BayesianNetwork> parsed = ParseNetwork(SerializeNetwork(net));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(SerializeNetwork(net), SerializeNetwork(*parsed));
}

TEST_P(NetworkPropertyTest, SampledInstancesAreInDomain) {
  const BayesianNetwork net = RandomNetwork(static_cast<uint64_t>(GetParam()));
  ForwardSampler sampler(net, static_cast<uint64_t>(GetParam()) + 99);
  Instance x;
  for (int draw = 0; draw < 200; ++draw) {
    sampler.Sample(&x);
    ASSERT_EQ(static_cast<int>(x.size()), net.num_variables());
    for (int i = 0; i < net.num_variables(); ++i) {
      ASSERT_GE(x[static_cast<size_t>(i)], 0);
      ASSERT_LT(x[static_cast<size_t>(i)], net.cardinality(i));
    }
  }
}

TEST_P(NetworkPropertyTest, ClosedSubsetProbabilityPositiveAndAtMostOne) {
  const BayesianNetwork net = RandomNetwork(static_cast<uint64_t>(GetParam()));
  Rng rng(static_cast<uint64_t>(GetParam()) + 1234);
  TestEventOptions options;
  options.count = 30;
  options.min_prob = 1e-6;
  const std::vector<TestEvent> events = GenerateTestEvents(net, options, rng);
  for (const TestEvent& event : events) {
    ASSERT_GT(event.truth_prob, 0.0);
    ASSERT_LE(event.truth_prob, 1.0 + 1e-12);
  }
}

TEST_P(NetworkPropertyTest, AllocationConstraintHoldsForAllStrategies) {
  const BayesianNetwork net = RandomNetwork(static_cast<uint64_t>(GetParam()));
  for (TrackingStrategy strategy :
       {TrackingStrategy::kUniform, TrackingStrategy::kNonUniform}) {
    const ErrorAllocation allocation = ComputeAllocation(net, strategy, 0.1);
    double joint_sq = 0.0;
    double parent_sq = 0.0;
    for (double nu : allocation.joint) joint_sq += nu * nu;
    for (double mu : allocation.parent) parent_sq += mu * mu;
    // Both blocks satisfy sum nu^2 = eps^2/256 (eq. 5).
    EXPECT_NEAR(joint_sq, 0.1 * 0.1 / 256.0, 1e-12);
    EXPECT_NEAR(parent_sq, 0.1 * 0.1 / 256.0, 1e-12);
  }
}

TEST_P(NetworkPropertyTest, ExactTrackerCpdRowsSumToOne) {
  const BayesianNetwork net = RandomNetwork(static_cast<uint64_t>(GetParam()));
  TrackerConfig config;
  config.strategy = TrackingStrategy::kExactMle;
  config.num_sites = 3;
  MleTracker tracker(net, config);
  ForwardSampler sampler(net, static_cast<uint64_t>(GetParam()) + 5);
  Rng router(static_cast<uint64_t>(GetParam()) + 6);
  Instance x;
  for (int e = 0; e < 3000; ++e) {
    sampler.Sample(&x);
    tracker.Observe(x, static_cast<int>(router.NextBounded(3)));
  }
  // For every observed parent row, the estimated CPD row is a distribution.
  for (int i = 0; i < net.num_variables(); ++i) {
    for (int64_t row = 0; row < net.parent_cardinality(i); ++row) {
      if (tracker.ParentCounterExact(i, row) == 0) continue;
      double total = 0.0;
      for (int j = 0; j < net.cardinality(i); ++j) {
        total += tracker.CpdEstimate(i, j, row);
      }
      ASSERT_NEAR(total, 1.0, 1e-9) << "variable " << i << " row " << row;
    }
  }
}

TEST_P(NetworkPropertyTest, JointCountersSumToParentCounter) {
  // Structural invariant of Algorithm 2: for every variable and parent row,
  // sum_x F_i(x, row) == F_i(row), and summing parent counters over rows
  // gives the number of events.
  const BayesianNetwork net = RandomNetwork(static_cast<uint64_t>(GetParam()));
  TrackerConfig config;
  config.strategy = TrackingStrategy::kUniform;  // Exact totals tracked too.
  config.num_sites = 4;
  MleTracker tracker(net, config);
  ForwardSampler sampler(net, static_cast<uint64_t>(GetParam()) + 7);
  Rng router(static_cast<uint64_t>(GetParam()) + 8);
  Instance x;
  constexpr int kEvents = 2000;
  for (int e = 0; e < kEvents; ++e) {
    sampler.Sample(&x);
    tracker.Observe(x, static_cast<int>(router.NextBounded(4)));
  }
  for (int i = 0; i < net.num_variables(); ++i) {
    uint64_t variable_total = 0;
    for (int64_t row = 0; row < net.parent_cardinality(i); ++row) {
      uint64_t joint_sum = 0;
      for (int j = 0; j < net.cardinality(i); ++j) {
        joint_sum += tracker.JointCounterExact(i, j, row);
      }
      ASSERT_EQ(joint_sum, tracker.ParentCounterExact(i, row));
      variable_total += joint_sum;
    }
    ASSERT_EQ(variable_total, static_cast<uint64_t>(kEvents));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkPropertyTest, ::testing::Range(1, 13));

// Approximation-quality property across epsilons: the tracked joint stays
// within the e^{±eps} band of the exact MLE on a moderate stream.
class EpsilonPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(EpsilonPropertyTest, TrackedJointWithinBandOfExact) {
  const double eps = GetParam();
  const BayesianNetwork net = RandomNetwork(3);
  TrackerConfig config;
  config.num_sites = 8;
  config.epsilon = eps;
  config.seed = 1717;
  config.strategy = TrackingStrategy::kExactMle;
  MleTracker exact(net, config);
  config.strategy = TrackingStrategy::kNonUniform;
  MleTracker approx(net, config);
  ForwardSampler sampler(net, 1718);
  Rng router(1719);
  Instance x;
  for (int e = 0; e < 40000; ++e) {
    sampler.Sample(&x);
    const int site = static_cast<int>(router.NextBounded(8));
    exact.Observe(x, site);
    approx.Observe(x, site);
  }
  Rng event_rng(1720);
  TestEventOptions options;
  options.count = 100;
  options.min_prob = 0.01;
  const std::vector<TestEvent> events = GenerateTestEvents(net, options, event_rng);
  int outside = 0;
  for (const TestEvent& event : events) {
    const double mle = exact.JointProbability(event.assignment);
    if (mle <= 0.0) continue;
    const double ratio = approx.JointProbability(event.assignment) / mle;
    if (ratio < std::exp(-eps) || ratio > std::exp(eps)) ++outside;
  }
  // The analysis gives the band with probability 3/4 per instance; in
  // practice nearly all queries are inside. Allow a 10% tail.
  EXPECT_LE(outside, 10);
}

INSTANTIATE_TEST_SUITE_P(Epsilons, EpsilonPropertyTest,
                         ::testing::Values(0.05, 0.1, 0.2, 0.4));

}  // namespace
}  // namespace dsgm
