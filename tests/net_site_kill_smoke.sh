#!/usr/bin/env bash
# Site-kill liveness smoke test, run by ctest as net.site_kill_smoke:
# starts one dsgm_coordinator and THREE dsgm_site processes over localhost
# TCP, SIGKILLs one site mid-run, and requires the coordinator to fail with
# a clear UNAVAILABLE status naming the dead site within the liveness
# timeout — the regression guard for the pre-reactor behavior, where a
# single dead site stalled the protocol until the coordinator was killed.
#
# The coordinator runs with --postmortem-dir: the failed run must leave a
# flight-recorder bundle (dsgm_postmortem.json) whose failure reason names
# the dead site and whose merged timeline ends, for that site, on a shipped
# heartbeat — the post-mortem proof that trace shipping survived up to the
# moment of death.
#
# Usage: net_site_kill_smoke.sh <dsgm_coordinator> <dsgm_site>
set -uo pipefail

COORDINATOR_BIN="$1"
SITE_BIN="$2"
NETWORK=alarm
EVENTS=2000000     # Big enough that the stream is still flowing at kill time.
SITES=3
KILL_SITE=2
LIVENESS_MS=2000

WORKDIR="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

PORT_FILE="$WORKDIR/port"
COORD_LOG="$WORKDIR/coordinator.log"

"$COORDINATOR_BIN" \
  --network "$NETWORK" --strategy uniform --sites "$SITES" \
  --events "$EVENTS" --seed 12345 \
  --liveness-timeout-ms "$LIVENESS_MS" \
  --postmortem-dir "$WORKDIR" \
  --port 0 --port-file "$PORT_FILE" > "$COORD_LOG" 2>&1 &
COORDINATOR_PID=$!
PIDS+=("$COORDINATOR_PID")

for _ in $(seq 1 200); do
  [ -s "$PORT_FILE" ] && break
  if ! kill -0 "$COORDINATOR_PID" 2>/dev/null; then
    echo "FAIL: coordinator exited before publishing its port" >&2
    cat "$COORD_LOG" >&2
    exit 1
  fi
  sleep 0.05
done
if [ ! -s "$PORT_FILE" ]; then
  echo "FAIL: port file never appeared" >&2
  exit 1
fi
PORT="$(cat "$PORT_FILE")"
echo "coordinator listening on port $PORT"

SITE_PIDS=()
for site in $(seq 0 $((SITES - 1))); do
  # A fast heartbeat ships several trace chunks before the kill, so the
  # post-mortem has the dead site's timeline to show.
  "$SITE_BIN" --network "$NETWORK" --site "$site" --port "$PORT" \
    --seed 12345 --heartbeat-ms 100 &
  SITE_PIDS+=("$!")
  PIDS+=("$!")
done

# Let the run get going, then kill one site the way a crashed machine would.
sleep 1
if ! kill -0 "${SITE_PIDS[$KILL_SITE]}" 2>/dev/null; then
  echo "FAIL: site $KILL_SITE already exited before the kill (run too short?)" >&2
  exit 1
fi
kill -9 "${SITE_PIDS[$KILL_SITE]}"
KILL_EPOCH=$(date +%s)
echo "killed site $KILL_SITE (pid ${SITE_PIDS[$KILL_SITE]})"

# The coordinator must now terminate ON ITS OWN, quickly, with a failure.
# Allow the liveness timeout plus generous slack, but nowhere near the old
# behavior (hang forever).
DEADLINE=$((KILL_EPOCH + (LIVENESS_MS / 1000) + 30))
while kill -0 "$COORDINATOR_PID" 2>/dev/null; do
  if [ "$(date +%s)" -gt "$DEADLINE" ]; then
    echo "FAIL: coordinator still running $((LIVENESS_MS / 1000 + 30))s after the kill (stall regression)" >&2
    cat "$COORD_LOG" >&2
    exit 1
  fi
  sleep 0.1
done
wait "$COORDINATOR_PID"
COORD_STATUS=$?
echo "coordinator exited with status $COORD_STATUS, $(($(date +%s) - KILL_EPOCH))s after the kill"

if [ "$COORD_STATUS" -eq 0 ]; then
  echo "FAIL: coordinator exited 0 despite a dead site" >&2
  cat "$COORD_LOG" >&2
  exit 1
fi
if ! grep -q "UNAVAILABLE" "$COORD_LOG"; then
  echo "FAIL: coordinator did not report UNAVAILABLE" >&2
  cat "$COORD_LOG" >&2
  exit 1
fi
if ! grep -q "site $KILL_SITE" "$COORD_LOG"; then
  echo "FAIL: failure status does not name site $KILL_SITE" >&2
  cat "$COORD_LOG" >&2
  exit 1
fi

# The flight recorder must have dumped a post-mortem bundle naming the dead
# site, with the site's shipped trace ending on its final heartbeat.
POSTMORTEM="$WORKDIR/dsgm_postmortem.json"
if [ ! -s "$POSTMORTEM" ]; then
  echo "FAIL: no post-mortem bundle at $POSTMORTEM" >&2
  cat "$COORD_LOG" >&2
  exit 1
fi
if ! grep -q "dsgm_postmortem.json" "$COORD_LOG"; then
  echo "FAIL: the failure message does not name the post-mortem bundle" >&2
  cat "$COORD_LOG" >&2
  exit 1
fi
if ! python3 - "$POSTMORTEM" "$KILL_SITE" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
dead = int(sys.argv[2])
reason = doc["failure_reason"]
if f"site {dead}" not in reason:
    sys.exit(f"FAIL: failure_reason does not name site {dead}: {reason!r}")
if "metrics" not in doc or "clock_offsets_nanos" not in doc:
    sys.exit("FAIL: post-mortem is missing the metrics/offsets sections")
shipped = [e for e in doc["timeline"] if e["origin"] == dead]
if not shipped:
    sys.exit(f"FAIL: no shipped trace events from dead site {dead}")
beats = [e for e in shipped if e["type"] == "heartbeat"]
if not beats:
    sys.exit(f"FAIL: dead site {dead} shipped no heartbeat trace events")
# The site traces its heartbeat immediately before draining the chunk that
# carries it, so its shipped timeline must END on (or within a drain's width
# of) that final heartbeat.
tail = shipped[-5:]
if not any(e["type"] == "heartbeat" for e in tail):
    sys.exit(f"FAIL: dead site {dead}'s last events hold no heartbeat: {tail}")
print(f"post-mortem: reason names site {dead}; {len(shipped)} shipped events, "
      f"{len(beats)} heartbeats, last events OK")
EOF
then
  cat "$COORD_LOG" >&2
  exit 1
fi

# The surviving sites must also unwind on their own once the coordinator is
# gone (their connections die), not linger as zombies.
for site in $(seq 0 $((SITES - 1))); do
  [ "$site" -eq "$KILL_SITE" ] && continue
  wait "${SITE_PIDS[$site]}" 2>/dev/null || true
done

echo "PASS: killing site $KILL_SITE failed the run with UNAVAILABLE naming it; no stall; post-mortem validated"
