// Tests for monitor/deterministic_counter.h — the prior-art threshold
// counter (paper reference [22]) used by the counter-type ablation.

#include <gtest/gtest.h>

#include <cmath>

#include "bayes/repository.h"
#include "bayes/sampler.h"
#include "core/mle_tracker.h"
#include "monitor/deterministic_counter.h"

namespace dsgm {
namespace {

TEST(DeterministicCounterTest, FirstIncrementAlwaysReports) {
  CommStats stats;
  DeterministicCounterFamily family({0.5f}, 4, &stats);
  EXPECT_TRUE(family.Increment(0, 0));
  EXPECT_DOUBLE_EQ(family.Estimate(0), 1.0);
  EXPECT_EQ(stats.update_messages, 1u);
}

TEST(DeterministicCounterTest, EstimateWithinOneSidedBand) {
  // Deterministic guarantee: (1 - eps/(1+eps)) * C <= A <= C.
  CommStats stats;
  const float eps = 0.2f;
  DeterministicCounterFamily family({eps}, 8, &stats);
  constexpr int kCount = 100000;
  for (int i = 0; i < kCount; ++i) family.Increment(0, i % 8);
  const double estimate = family.Estimate(0);
  EXPECT_LE(estimate, static_cast<double>(kCount));
  EXPECT_GE(estimate, (1.0 - eps / (1.0 + eps)) * kCount);
  EXPECT_EQ(family.ExactTotal(0), static_cast<uint64_t>(kCount));
}

TEST(DeterministicCounterTest, CommunicationIsLogarithmicPerSite) {
  CommStats stats;
  DeterministicCounterFamily family({0.1f}, 4, &stats);
  constexpr int kCount = 1 << 18;
  for (int i = 0; i < kCount; ++i) family.Increment(0, i % 4);
  // Per site: ~log_{1.1}(C/k) ~ 116 reports; 4 sites ~ 465. Far below C.
  EXPECT_LT(stats.update_messages, 1000u);
  EXPECT_GT(stats.update_messages, 100u);
}

TEST(DeterministicCounterTest, TighterEpsilonCostsMore) {
  uint64_t messages[2];
  int index = 0;
  for (float eps : {0.2f, 0.02f}) {
    CommStats stats;
    DeterministicCounterFamily family({eps}, 4, &stats);
    for (int i = 0; i < 100000; ++i) family.Increment(0, i % 4);
    messages[index++] = stats.TotalMessages();
  }
  EXPECT_LT(messages[0], messages[1]);
}

TEST(DeterministicCounterTest, SkewedSitesStillBounded) {
  CommStats stats;
  const float eps = 0.1f;
  DeterministicCounterFamily family({eps}, 30, &stats);
  constexpr int kCount = 50000;
  for (int i = 0; i < kCount; ++i) family.Increment(0, 0);  // one hot site
  EXPECT_GE(family.Estimate(0), (1.0 - eps / (1.0 + eps)) * kCount);
  EXPECT_LE(family.Estimate(0), static_cast<double>(kCount));
}

TEST(DeterministicCounterTest, RejectsInvalidEpsilon) {
  CommStats stats;
  EXPECT_DEATH(DeterministicCounterFamily({0.0f}, 4, &stats), "epsilon");
}

TEST(DeterministicTrackerTest, TracksMleWithinBand) {
  const BayesianNetwork net = StudentNetwork();
  TrackerConfig config;
  config.strategy = TrackingStrategy::kUniform;
  config.counter_type = CounterType::kDeterministic;
  config.num_sites = 5;
  config.epsilon = 0.1;
  MleTracker exact(net, [] {
    TrackerConfig c;
    c.strategy = TrackingStrategy::kExactMle;
    c.num_sites = 5;
    return c;
  }());
  MleTracker deterministic(net, config);
  ForwardSampler sampler(net, 808);
  Rng router(809);
  Instance x;
  for (int e = 0; e < 50000; ++e) {
    sampler.Sample(&x);
    const int site = static_cast<int>(router.NextBounded(5));
    exact.Observe(x, site);
    deterministic.Observe(x, site);
  }
  ForwardSampler probe(net, 810);
  for (int q = 0; q < 30; ++q) {
    probe.Sample(&x);
    const double mle = exact.JointProbability(x);
    if (mle <= 0.0) continue;
    const double ratio = deterministic.JointProbability(x) / mle;
    EXPECT_GT(ratio, std::exp(-0.2));
    EXPECT_LT(ratio, std::exp(0.2));
  }
}

TEST(DeterministicTrackerTest, RandomizedBeatsDeterministicOnManySites) {
  // The motivation for the paper's randomized counter: O(√k) vs O(k)
  // dependence on the number of sites. With k = 30 the gap must be visible.
  const BayesianNetwork net = Alarm();
  TrackerConfig config;
  config.strategy = TrackingStrategy::kNonUniform;
  config.num_sites = 30;
  config.epsilon = 0.1;
  config.seed = 4;
  config.counter_type = CounterType::kRandomized;
  MleTracker randomized(net, config);
  config.counter_type = CounterType::kDeterministic;
  MleTracker deterministic(net, config);

  ForwardSampler sampler(net, 811);
  Rng router(812);
  Instance x;
  for (int e = 0; e < 200000; ++e) {
    sampler.Sample(&x);
    const int site = static_cast<int>(router.NextBounded(30));
    randomized.Observe(x, site);
    deterministic.Observe(x, site);
  }
  EXPECT_LT(randomized.comm().TotalMessages(),
            deterministic.comm().TotalMessages());
}

TEST(DeterministicTrackerTest, CounterTypeNameRoundTrip) {
  EXPECT_STREQ(ToString(CounterType::kRandomized), "randomized");
  EXPECT_STREQ(ToString(CounterType::kDeterministic), "deterministic");
}

}  // namespace
}  // namespace dsgm
