// Shared conformance suite for cluster transports: every behavior the
// cluster nodes rely on, asserted against BOTH implementations (in-process
// loopback and localhost TCP) through the same parameterized tests. A new
// transport earns its place by passing this suite.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "net/cluster_transport.h"
#include "net/codec.h"
#include "net/compress.h"
#include "net/protocol_spec.h"
#include "net/reactor_transport.h"
#include "net/tcp_socket.h"
#include "net/tcp_transport.h"

namespace dsgm {
namespace {

struct TransportParam {
  const char* name;
  TransportFactory factory;
  /// Entries that need a readiness backend the kernel may refuse (io_uring)
  /// skip instead of silently testing the epoll fallback twice.
  bool requires_io_uring = false;
};

class TransportConformanceTest : public ::testing::TestWithParam<TransportParam> {
 protected:
  void SetUp() override {
    if (GetParam().requires_io_uring && !IoUringAvailable()) {
      GTEST_SKIP() << "io_uring unavailable on this kernel";
    }
  }

  std::unique_ptr<ClusterTransport> Make(int num_sites) {
    return GetParam().factory(num_sites);
  }

  /// Pop helper with a real deadline, for channels fed asynchronously: a
  /// transport that drops a frame makes the caller's size check fail with
  /// context instead of hanging the binary until the ctest timeout.
  template <typename T>
  std::vector<T> PopExactly(Channel<T>* channel, size_t want) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    std::vector<T> out;
    while (out.size() < want && std::chrono::steady_clock::now() < deadline) {
      if (channel->TryPopBatch(&out, want - out.size()) == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    return out;
  }
};

TEST_P(TransportConformanceTest, EventBatchesArriveInOrderPerSite) {
  auto transport = Make(2);
  const CoordinatorEndpoints coordinator = transport->coordinator();
  for (int s = 0; s < 2; ++s) {
    for (int i = 0; i < 5; ++i) {
      EventBatch batch;
      batch.num_events = 1;
      batch.values = {s, i, i * i};
      ASSERT_TRUE(coordinator.events[static_cast<size_t>(s)]->Push(std::move(batch)));
    }
  }
  for (int s = 0; s < 2; ++s) {
    const std::vector<EventBatch> got = PopExactly(transport->site(s).events, 5);
    ASSERT_EQ(got.size(), 5u) << "site " << s;
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(got[static_cast<size_t>(i)].values,
                (std::vector<int32_t>{s, i, i * i}));
    }
  }
  transport->Shutdown();
}

TEST_P(TransportConformanceTest, CommandsReachTheRightSite) {
  auto transport = Make(3);
  const CoordinatorEndpoints coordinator = transport->coordinator();
  for (int s = 0; s < 3; ++s) {
    RoundAdvance advance;
    advance.counter = 100 + s;
    advance.round = s;
    advance.probability = 0.5f / static_cast<float>(s + 1);
    ASSERT_TRUE(coordinator.commands[static_cast<size_t>(s)]->Push(advance));
  }
  for (int s = 0; s < 3; ++s) {
    const std::vector<RoundAdvance> got = PopExactly(transport->site(s).commands, 1);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].counter, 100 + s);
    EXPECT_EQ(got[0].round, s);
    EXPECT_EQ(got[0].probability, 0.5f / static_cast<float>(s + 1));
  }
  transport->Shutdown();
}

TEST_P(TransportConformanceTest, UpdatesMergeFromAllSites) {
  auto transport = Make(4);
  const CoordinatorEndpoints coordinator = transport->coordinator();
  for (int s = 0; s < 4; ++s) {
    UpdateBundle bundle;
    bundle.kind = UpdateBundle::Kind::kReports;
    bundle.site = s;
    bundle.reports = {{s, static_cast<uint32_t>(10 * s + 1)}};
    ASSERT_TRUE(transport->site(s).updates->Push(std::move(bundle)));
  }
  std::vector<UpdateBundle> got = PopExactly(coordinator.updates, 4);
  ASSERT_EQ(got.size(), 4u);
  std::vector<bool> seen(4, false);
  for (const UpdateBundle& bundle : got) {
    ASSERT_GE(bundle.site, 0);
    ASSERT_LT(bundle.site, 4);
    EXPECT_FALSE(seen[static_cast<size_t>(bundle.site)]);
    seen[static_cast<size_t>(bundle.site)] = true;
    ASSERT_EQ(bundle.reports.size(), 1u);
    EXPECT_EQ(bundle.reports[0].counter, bundle.site);
    EXPECT_EQ(bundle.reports[0].value, static_cast<uint32_t>(10 * bundle.site + 1));
  }
  transport->Shutdown();
}

TEST_P(TransportConformanceTest, CloseDrainsThenReportsEnd) {
  auto transport = Make(1);
  const CoordinatorEndpoints coordinator = transport->coordinator();
  for (int i = 0; i < 3; ++i) {
    EventBatch batch;
    batch.num_events = i;
    ASSERT_TRUE(coordinator.events[0]->Push(std::move(batch)));
  }
  coordinator.events[0]->Close();
  Channel<EventBatch>* site_events = transport->site(0).events;
  std::vector<EventBatch> got;
  size_t total = 0;
  while (true) {
    const size_t n = site_events->PopBatch(&got, 16);
    if (n == 0) break;
    total += n;
  }
  EXPECT_EQ(total, 3u);  // All pre-close items delivered before the end.
  // And the end state is sticky.
  EXPECT_EQ(site_events->PopBatch(&got, 16), 0u);
  transport->Shutdown();
}

TEST_P(TransportConformanceTest, PushAfterCloseFails) {
  auto transport = Make(1);
  const CoordinatorEndpoints coordinator = transport->coordinator();
  coordinator.commands[0]->Close();
  EXPECT_FALSE(coordinator.commands[0]->Push(RoundAdvance{}));
  transport->Shutdown();
}

TEST_P(TransportConformanceTest, TryPopDoesNotBlockOnEmptyChannel) {
  auto transport = Make(1);
  std::vector<RoundAdvance> out;
  EXPECT_EQ(transport->site(0).commands->TryPopBatch(&out, 8), 0u);
  transport->Shutdown();
}

TEST_P(TransportConformanceTest, LargeFrameSurvivesIntact) {
  auto transport = Make(1);
  EventBatch batch;
  batch.num_events = 20000;
  batch.values.reserve(100000);
  for (int i = 0; i < 100000; ++i) batch.values.push_back(i % 97);
  const EventBatch expected = batch;
  ASSERT_TRUE(transport->coordinator().events[0]->Push(std::move(batch)));
  const std::vector<EventBatch> got = PopExactly(transport->site(0).events, 1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_TRUE(got[0] == expected);
  transport->Shutdown();
}

TEST_P(TransportConformanceTest, ConcurrentBidirectionalTraffic) {
  constexpr int kFrames = 500;
  auto transport = Make(1);
  const CoordinatorEndpoints coordinator = transport->coordinator();
  const SiteEndpoints site = transport->site(0);

  std::thread downstream([&coordinator] {
    for (int i = 0; i < kFrames; ++i) {
      EventBatch batch;
      batch.num_events = i;
      ASSERT_TRUE(coordinator.events[0]->Push(std::move(batch)));
    }
  });
  std::thread site_echo([this, &site] {
    // The site drains events while pushing its own updates upstream.
    const std::vector<EventBatch> got = PopExactly(site.events, kFrames);
    ASSERT_EQ(got.size(), static_cast<size_t>(kFrames));
    for (int i = 0; i < kFrames; ++i) {
      EXPECT_EQ(got[static_cast<size_t>(i)].num_events, i);
      UpdateBundle bundle;
      bundle.kind = UpdateBundle::Kind::kReports;
      bundle.site = 0;
      bundle.reports = {{i, static_cast<uint32_t>(i)}};
      ASSERT_TRUE(site.updates->Push(std::move(bundle)));
    }
  });
  const std::vector<UpdateBundle> updates = PopExactly(coordinator.updates, kFrames);
  downstream.join();
  site_echo.join();
  ASSERT_EQ(updates.size(), static_cast<size_t>(kFrames));
  for (int i = 0; i < kFrames; ++i) {
    EXPECT_EQ(updates[static_cast<size_t>(i)].reports[0].counter, i);
  }
  transport->Shutdown();
}

TEST_P(TransportConformanceTest, ShutdownIsIdempotent) {
  auto transport = Make(2);
  transport->Shutdown();
  transport->Shutdown();
}

INSTANTIATE_TEST_SUITE_P(
    AllTransports, TransportConformanceTest,
    ::testing::Values(
        TransportParam{"Loopback", MakeLoopbackTransport},
        TransportParam{"LocalTcp", MakeLocalTcpTransport},
        // The reactor runs once per readiness backend: epoll is always
        // there; the io_uring entry skips (not passes) when the kernel
        // refuses rings, so CI records which backend actually ran.
        TransportParam{"ReactorEpoll",
                       [](int n) {
                         return MakeReactorTransport(n, IoBackendKind::kEpoll);
                       }},
        TransportParam{"ReactorIoUring",
                       [](int n) {
                         return MakeReactorTransport(n, IoBackendKind::kIoUring);
                       },
                       /*requires_io_uring=*/true}),
    [](const ::testing::TestParamInfo<TransportParam>& info) {
      return std::string(info.param.name);
    });

// --- Hello protocol versioning ------------------------------------------

TEST(ProtocolVersionTest, MismatchedHelloIsRejectedWithClearStatus) {
  StatusOr<TcpListener> listener = TcpListener::Listen(0, 4);
  ASSERT_TRUE(listener.ok()) << listener.status();
  const int port = listener->port();

  // A "future" dsgm site: perfectly valid framing, wrong protocol
  // revision. Unlike a stray port probe (dropped and re-accepted), this
  // must fail the accept loop loudly — both ends would otherwise hang.
  std::thread peer([port] {
    StatusOr<TcpSocket> socket = TcpSocket::Connect("127.0.0.1", port);
    if (!socket.ok()) return;
    Frame hello = MakeHello(/*site=*/0);
    hello.protocol_version = static_cast<uint8_t>(kProtocolVersion + 1);
    std::vector<uint8_t> bytes;
    AppendFrame(hello, &bytes);
    (void)socket->SendAll(bytes.data(), bytes.size());
    // Wait for the coordinator to react (it closes without replying).
    uint8_t unused = 0;
    (void)socket->RecvAll(&unused, 1);
  });

  TcpConnection::Options options;
  StatusOr<std::vector<std::unique_ptr<TcpConnection>>> accepted =
      AcceptSiteConnections(&listener.value(), /*num_sites=*/1, options);
  ASSERT_FALSE(accepted.ok());
  EXPECT_EQ(accepted.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(accepted.status().message().find("protocol version mismatch"),
            std::string::npos)
      << accepted.status();
  listener->Close();
  peer.join();
}

TEST(ProtocolVersionTest, EarlyHeartbeatIsDroppedAsStray) {
  // A peer whose first frame is a kHeartbeat (never a hello) is line noise
  // as far as the handshake is concerned: it must be dropped and the slot
  // re-accepted, exactly like a port probe — not crash, not hang, not
  // occupy a site slot.
  StatusOr<TcpListener> listener = TcpListener::Listen(0, 4);
  ASSERT_TRUE(listener.ok()) << listener.status();
  const int port = listener->port();

  std::thread early_peer([port] {
    StatusOr<TcpSocket> socket = TcpSocket::Connect("127.0.0.1", port);
    if (!socket.ok()) return;
    std::vector<uint8_t> bytes;
    AppendFrame(MakeHeartbeat(/*site=*/0), &bytes);
    (void)socket->SendAll(bytes.data(), bytes.size());
    uint8_t unused = 0;
    (void)socket->RecvAll(&unused, 1);  // Wait for the coordinator's close.
  });
  std::thread real_site([port] {
    StatusOr<TcpSocket> socket = TcpSocket::Connect("127.0.0.1", port);
    if (!socket.ok()) return;
    TcpConnection connection(std::move(socket).value());
    if (!connection.SendHello(/*site=*/0).ok()) return;
    connection.Start();
    connection.Shutdown();
  });

  TcpConnection::Options options;
  StatusOr<std::vector<std::unique_ptr<TcpConnection>>> accepted =
      AcceptSiteConnections(&listener.value(), /*num_sites=*/1, options);
  EXPECT_TRUE(accepted.ok()) << accepted.status();
  listener->Close();
  early_peer.join();
  real_site.join();
  if (accepted.ok()) {
    for (auto& connection : *accepted) connection->Shutdown();
  }
}

TEST(ProtocolVersionTest, CurrentVersionHelloIsAccepted) {
  StatusOr<TcpListener> listener = TcpListener::Listen(0, 4);
  ASSERT_TRUE(listener.ok()) << listener.status();
  const int port = listener->port();

  std::thread peer([port] {
    StatusOr<TcpSocket> socket = TcpSocket::Connect("127.0.0.1", port);
    if (!socket.ok()) return;
    TcpConnection connection(std::move(socket).value());
    // SendHello stamps the current kProtocolVersion.
    if (!connection.SendHello(/*site=*/0).ok()) return;
    connection.Start();
    connection.Shutdown();
  });

  TcpConnection::Options options;
  StatusOr<std::vector<std::unique_ptr<TcpConnection>>> accepted =
      AcceptSiteConnections(&listener.value(), /*num_sites=*/1, options);
  EXPECT_TRUE(accepted.ok()) << accepted.status();
  peer.join();
  if (accepted.ok()) {
    for (auto& connection : *accepted) connection->Shutdown();
  }
}

TEST(ReactorCoordinatorTest, StatsDuringAcceptDoNotRaceSlotPublication) {
  // Regression for a defect the thread-safety annotation pass surfaced:
  // bytes_up()/bytes_down() iterated the connection slots bare while
  // AcceptSites published them from the accept thread — mid-run stats were
  // fine only by accident of call order. The accessors take the slot lock
  // now, so sampling stats during an ongoing accept is legal; this test
  // does exactly that (TSan covers this suite in CI).
  constexpr int kSites = 3;
  StatusOr<TcpListener> listener = TcpListener::Listen(0, kSites + 2);
  ASSERT_TRUE(listener.ok()) << listener.status();
  const int port = listener->port();

  ReactorCoordinator::Options options;
  options.liveness_timeout_ms = 0;  // Hello-only peers must not be "dead".
  ReactorCoordinator coordinator(kSites, options);

  std::atomic<bool> stop{false};
  std::thread poller([&coordinator, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)coordinator.bytes_up();
      (void)coordinator.bytes_down();
    }
  });

  // The peers stay open past AcceptSites: an EOF mid-accept would count as
  // a defective connection, not the race under test.
  std::vector<TcpSocket> peers;
  std::thread sites([port, &peers] {
    for (int s = 0; s < kSites; ++s) {
      StatusOr<TcpSocket> socket = TcpSocket::Connect("127.0.0.1", port);
      if (!socket.ok() || !SendHelloBlocking(&socket.value(), s).ok()) return;
      peers.push_back(std::move(socket).value());
      // Gaps between hellos widen the accept window the poller races.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  const Status accepted = coordinator.AcceptSites(&listener.value());
  sites.join();
  stop.store(true, std::memory_order_relaxed);
  poller.join();
  ASSERT_TRUE(accepted.ok()) << accepted;
  ASSERT_EQ(peers.size(), static_cast<size_t>(kSites));
  for (int s = 0; s < kSites; ++s) {
    EXPECT_NE(coordinator.events(s), nullptr);
    EXPECT_NE(coordinator.commands(s), nullptr);
  }
  // Hellos are consumed on the blocking accept path before a connection
  // joins the reactor, so the post-accept counters legitimately read zero;
  // the assertions that matter here are TSan's.
  EXPECT_EQ(coordinator.bytes_down(), 0u);
  coordinator.Shutdown();
}

// --- Protocol conformance on the socket transports ------------------------
//
// Out-of-state frames (data before the hello, a duplicate hello, data after
// the terminal lane close) must drop the offending connection and increment
// `net.protocol.violations` — the table-driven contract of
// net/protocol_spec.h, asserted here against BOTH socket transports'
// integration points (the blocking TCP reader and the reactor loop).

uint64_t ProtocolViolations() {
  return MetricsRegistry::Global().GetCounter(kProtocolViolationsMetric)->Value();
}

std::vector<uint8_t> EncodeFrames(const std::vector<Frame>& frames) {
  std::vector<uint8_t> bytes;
  for (const Frame& frame : frames) AppendFrame(frame, &bytes);
  return bytes;
}

/// Waits (bounded) for the reader of `connection` to exit.
bool WaitFinished(TcpConnection* connection) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!connection->finished() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return connection->finished();
}

TEST(ProtocolConformanceTcpTest, SyncBeforeHelloIsCountedAndDropped) {
  MetricsRegistry::Global().ResetForTest();
  StatusOr<TcpListener> listener = TcpListener::Listen(0, 4);
  ASSERT_TRUE(listener.ok()) << listener.status();
  const int port = listener->port();

  // The stray connects (and its bytes are in flight) BEFORE the real site,
  // so the accept loop — which takes connections in arrival order — must
  // reject it to finish. Data before the hello is the violation.
  StatusOr<TcpSocket> stray = TcpSocket::Connect("127.0.0.1", port);
  ASSERT_TRUE(stray.ok()) << stray.status();
  UpdateBundle sync;
  sync.kind = UpdateBundle::Kind::kSync;
  sync.site = 0;
  const std::vector<uint8_t> stray_bytes = EncodeFrames({MakeFrame(sync)});
  ASSERT_TRUE(stray->SendAll(stray_bytes.data(), stray_bytes.size()).ok());

  std::thread real_site([port] {
    StatusOr<TcpSocket> socket = TcpSocket::Connect("127.0.0.1", port);
    if (!socket.ok()) return;
    if (!SendHelloBlocking(&socket.value(), /*site=*/0).ok()) return;
    uint8_t unused = 0;
    (void)socket->RecvAll(&unused, 1);  // Linger until the coordinator closes.
  });

  StatusOr<std::vector<std::unique_ptr<TcpConnection>>> accepted =
      AcceptSiteConnections(&listener.value(), /*num_sites=*/1,
                            TcpConnection::Options());
  EXPECT_TRUE(accepted.ok()) << accepted.status();
  EXPECT_EQ(ProtocolViolations(), 1u);
  listener->Close();
  if (accepted.ok()) {
    for (auto& connection : *accepted) connection->Shutdown();
  }
  real_site.join();
}

TEST(ProtocolConformanceTcpTest, DuplicateHelloDropsTheConnection) {
  MetricsRegistry::Global().ResetForTest();
  StatusOr<TcpListener> listener = TcpListener::Listen(0, 4);
  ASSERT_TRUE(listener.ok()) << listener.status();
  const int port = listener->port();

  std::thread peer([port] {
    StatusOr<TcpSocket> socket = TcpSocket::Connect("127.0.0.1", port);
    if (!socket.ok()) return;
    // The second hello is the violation: one handshake per connection.
    const std::vector<uint8_t> bytes =
        EncodeFrames({MakeHello(0), MakeHello(0)});
    (void)socket->SendAll(bytes.data(), bytes.size());
    uint8_t unused = 0;
    (void)socket->RecvAll(&unused, 1);
  });

  StatusOr<std::vector<std::unique_ptr<TcpConnection>>> accepted =
      AcceptSiteConnections(&listener.value(), /*num_sites=*/1,
                            TcpConnection::Options());
  ASSERT_TRUE(accepted.ok()) << accepted.status();
  // The reader hits the duplicate hello and drops the connection.
  EXPECT_TRUE(WaitFinished((*accepted)[0].get()));
  EXPECT_EQ(ProtocolViolations(), 1u);
  listener->Close();
  for (auto& connection : *accepted) connection->Shutdown();
  peer.join();
}

TEST(ProtocolConformanceTcpTest, StatsAfterCloseDropsTheConnection) {
  MetricsRegistry::Global().ResetForTest();
  StatusOr<TcpListener> listener = TcpListener::Listen(0, 4);
  ASSERT_TRUE(listener.ok()) << listener.status();
  const int port = listener->port();

  std::thread peer([port] {
    StatusOr<TcpSocket> socket = TcpSocket::Connect("127.0.0.1", port);
    if (!socket.ok()) return;
    // Closing the update lane is the site's terminal act; a stats report
    // (data) after it violates the contract. The preceding heartbeat is
    // legal in Draining and must NOT trip anything.
    const std::vector<uint8_t> bytes = EncodeFrames(
        {MakeHello(0), MakeChannelClose(FrameType::kUpdateBundle),
         MakeHeartbeat(0), MakeStatsReport(SiteStatsReport{})});
    (void)socket->SendAll(bytes.data(), bytes.size());
    uint8_t unused = 0;
    (void)socket->RecvAll(&unused, 1);
  });

  StatusOr<std::vector<std::unique_ptr<TcpConnection>>> accepted =
      AcceptSiteConnections(&listener.value(), /*num_sites=*/1,
                            TcpConnection::Options());
  ASSERT_TRUE(accepted.ok()) << accepted.status();
  EXPECT_TRUE(WaitFinished((*accepted)[0].get()));
  EXPECT_EQ(ProtocolViolations(), 1u);
  listener->Close();
  for (auto& connection : *accepted) connection->Shutdown();
  peer.join();
}

/// Reactor-side harness: accepts one adversarial peer under a
/// ReactorCoordinator and returns the status on_site_failure captured.
class ProtocolConformanceReactorTest : public ::testing::Test {
 protected:
  /// Runs `peer_frames` (sent after the hello the accept loop consumes)
  /// against a one-site coordinator; returns the captured failure status,
  /// or OK if none arrived before the deadline.
  Status RunAdversarialPeer(const std::vector<Frame>& peer_frames) {
    StatusOr<TcpListener> listener = TcpListener::Listen(0, 4);
    if (!listener.ok()) return listener.status();
    const int port = listener->port();

    Mutex mu;
    Status captured;
    bool failed = false;
    ReactorCoordinator::Options options;
    // Liveness on: a protocol violation is then surfaced through the same
    // UNAVAILABLE site-failure path a vanished site uses.
    options.liveness_timeout_ms = 5000;
    options.on_site_failure = [&mu, &captured, &failed](int /*site*/,
                                                        const Status& status) {
      MutexLock lock(&mu);
      captured = status;
      failed = true;
    };
    ReactorCoordinator coordinator(1, options);

    std::thread peer([port, &peer_frames] {
      StatusOr<TcpSocket> socket = TcpSocket::Connect("127.0.0.1", port);
      if (!socket.ok()) return;
      if (!SendHelloBlocking(&socket.value(), /*site=*/0).ok()) return;
      const std::vector<uint8_t> bytes = EncodeFrames(peer_frames);
      (void)socket->SendAll(bytes.data(), bytes.size());
      uint8_t unused = 0;
      (void)socket->RecvAll(&unused, 1);  // Wait for the coordinator's drop.
    });

    Status result;
    const Status accepted = coordinator.AcceptSites(&listener.value());
    if (accepted.ok()) {
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (std::chrono::steady_clock::now() < deadline) {
        {
          MutexLock lock(&mu);
          if (failed) {
            result = captured;
            break;
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    } else {
      result = accepted;
    }
    listener->Close();
    coordinator.Shutdown();
    peer.join();
    return result;
  }
};

TEST_F(ProtocolConformanceReactorTest, DuplicateHelloDropsTheSite) {
  MetricsRegistry::Global().ResetForTest();
  const Status failure = RunAdversarialPeer({MakeHello(0)});
  EXPECT_EQ(failure.code(), StatusCode::kUnavailable) << failure;
  EXPECT_NE(failure.message().find("violated the protocol"), std::string::npos)
      << failure;
  EXPECT_NE(failure.message().find("hello"), std::string::npos) << failure;
  EXPECT_EQ(ProtocolViolations(), 1u);
}

TEST_F(ProtocolConformanceReactorTest, StatsAfterCloseDropsTheSite) {
  MetricsRegistry::Global().ResetForTest();
  const Status failure = RunAdversarialPeer(
      {MakeFrame(UpdateBundle{}), MakeChannelClose(FrameType::kUpdateBundle),
       MakeHeartbeat(0), MakeStatsReport(SiteStatsReport{})});
  EXPECT_EQ(failure.code(), StatusCode::kUnavailable) << failure;
  EXPECT_NE(failure.message().find("stats_report in state draining"),
            std::string::npos)
      << failure;
  EXPECT_EQ(ProtocolViolations(), 1u);
}

TEST(ProtocolConformanceReactorAcceptTest, SyncBeforeHelloIsCountedAsStray) {
  MetricsRegistry::Global().ResetForTest();
  StatusOr<TcpListener> listener = TcpListener::Listen(0, 4);
  ASSERT_TRUE(listener.ok()) << listener.status();
  const int port = listener->port();

  ReactorCoordinator::Options options;
  options.liveness_timeout_ms = 0;
  ReactorCoordinator coordinator(1, options);

  // Stray first (arrival order = accept order), real site second.
  StatusOr<TcpSocket> stray = TcpSocket::Connect("127.0.0.1", port);
  ASSERT_TRUE(stray.ok()) << stray.status();
  UpdateBundle sync;
  sync.kind = UpdateBundle::Kind::kSync;
  sync.site = 0;
  const std::vector<uint8_t> stray_bytes = EncodeFrames({MakeFrame(sync)});
  ASSERT_TRUE(stray->SendAll(stray_bytes.data(), stray_bytes.size()).ok());

  std::thread real_site([port] {
    StatusOr<TcpSocket> socket = TcpSocket::Connect("127.0.0.1", port);
    if (!socket.ok()) return;
    (void)SendHelloBlocking(&socket.value(), /*site=*/0);
    uint8_t unused = 0;
    (void)socket->RecvAll(&unused, 1);
  });

  const Status accepted = coordinator.AcceptSites(&listener.value());
  EXPECT_TRUE(accepted.ok()) << accepted;
  EXPECT_EQ(ProtocolViolations(), 1u);
  listener->Close();
  coordinator.Shutdown();
  real_site.join();
}

// --- v5 wire negotiation: mixed versions and compression -------------------

TEST(MixedVersionTest, V4SiteRunsUncompressedAgainstV5Coordinator) {
  // A genuine v4 site against this (v5) coordinator: the hello negotiates
  // the connection down to v4 — no capability reply-hello (that row is
  // version-gated; a v4 peer would call it a violation), no caps, and every
  // outbound batch stays raw no matter how compressible.
  StatusOr<TcpListener> listener = TcpListener::Listen(0, 4);
  ASSERT_TRUE(listener.ok()) << listener.status();
  const int port = listener->port();

  std::atomic<bool> got_raw_batch{false};
  std::thread v4_site([port, &got_raw_batch] {
    StatusOr<TcpSocket> socket = TcpSocket::Connect("127.0.0.1", port);
    if (!socket.ok()) return;
    Frame hello = MakeHello(/*site=*/0);
    hello.protocol_version = 4;  // The encoder omits the caps varint at v4.
    hello.caps = 0;
    std::vector<uint8_t> bytes;
    AppendFrame(hello, &bytes);
    if (!socket->SendAll(bytes.data(), bytes.size()).ok()) return;
    // The FIRST frame back must be the raw event batch: nothing (especially
    // not a reply-hello or a kCompressed envelope) may precede it.
    uint8_t prefix[4];
    if (!socket->RecvAll(prefix, 4).ok()) return;
    std::vector<uint8_t> payload(DecodeLengthPrefix(prefix));
    if (!socket->RecvAll(payload.data(), payload.size()).ok()) return;
    if (payload.empty() ||
        payload[0] != static_cast<uint8_t>(FrameType::kEventBatch)) {
      return;
    }
    Frame frame;
    if (!DecodeFramePayload(payload.data(), payload.size(), &frame).ok()) return;
    got_raw_batch.store(!frame.compressed && frame.batch.values.size() == 4096,
                        std::memory_order_relaxed);
  });

  StatusOr<std::vector<std::unique_ptr<TcpConnection>>> accepted =
      AcceptSiteConnections(&listener.value(), /*num_sites=*/1,
                            TcpConnection::Options());
  ASSERT_TRUE(accepted.ok()) << accepted.status();
  TcpConnection* connection = (*accepted)[0].get();
  EXPECT_EQ(connection->negotiated_version(), 4);
  EXPECT_EQ(connection->peer_caps(), 0u);

  EventBatch batch;
  batch.num_events = 4096;
  batch.values.assign(4096, 7);  // Maximally compressible — must ship raw.
  ASSERT_TRUE(connection->SendFrame(MakeFrame(std::move(batch))));
  v4_site.join();
  EXPECT_TRUE(got_raw_batch.load(std::memory_order_relaxed));
  listener->Close();
  for (auto& c : *accepted) c->Shutdown();
}

TEST(WireCompressionTest, V5PeersCompressEligibleBatchesEndToEnd) {
  // Both ends of a LocalTcp transport speak v5 with the process-wide switch
  // on (the default), so a repetitive batch must cross the wire inside an
  // envelope — visible through the net.compress instruments — and decode to
  // the identical batch on the far side.
  MetricsRegistry::Global().ResetForTest();
  ASSERT_TRUE(WireCompressionEnabled());
  auto transport = MakeLocalTcpTransport(1);
  EventBatch batch;
  batch.num_events = 2048;
  batch.values.assign(8192, 3);
  const EventBatch expected = batch;
  ASSERT_TRUE(transport->coordinator().events[0]->Push(std::move(batch)));

  Channel<EventBatch>* site_events = transport->site(0).events;
  std::vector<EventBatch> got;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (got.empty() && std::chrono::steady_clock::now() < deadline) {
    if (site_events->TryPopBatch(&got, 1) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_TRUE(got[0] == expected);

  const uint64_t bytes_in =
      MetricsRegistry::Global().GetCounter("net.compress.bytes_in")->Value();
  const uint64_t bytes_out =
      MetricsRegistry::Global().GetCounter("net.compress.bytes_out")->Value();
  EXPECT_GT(bytes_in, 0u);
  EXPECT_LT(bytes_out, bytes_in);
  transport->Shutdown();
}

}  // namespace
}  // namespace dsgm
