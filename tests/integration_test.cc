// End-to-end integration tests: stream -> four trackers -> error and
// communication relationships reported in the paper's evaluation.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "bayes/repository.h"
#include "bayes/sampler.h"
#include "common/statistics.h"
#include "core/classifier.h"
#include "core/mle_tracker.h"

namespace dsgm {
namespace {

struct FourTrackers {
  std::unique_ptr<MleTracker> exact;
  std::unique_ptr<MleTracker> baseline;
  std::unique_ptr<MleTracker> uniform;
  std::unique_ptr<MleTracker> nonuniform;
};

FourTrackers MakeTrackers(const BayesianNetwork& net, int sites, double eps) {
  FourTrackers trackers;
  TrackerConfig config;
  config.num_sites = sites;
  config.epsilon = eps;
  config.seed = 4242;
  config.strategy = TrackingStrategy::kExactMle;
  trackers.exact = std::make_unique<MleTracker>(net, config);
  config.strategy = TrackingStrategy::kBaseline;
  trackers.baseline = std::make_unique<MleTracker>(net, config);
  config.strategy = TrackingStrategy::kUniform;
  trackers.uniform = std::make_unique<MleTracker>(net, config);
  config.strategy = TrackingStrategy::kNonUniform;
  trackers.nonuniform = std::make_unique<MleTracker>(net, config);
  return trackers;
}

void StreamToAll(const BayesianNetwork& net, FourTrackers* trackers,
                 int64_t events, int sites) {
  ForwardSampler sampler(net, 1001);
  Rng router(1002);
  Instance x;
  for (int64_t e = 0; e < events; ++e) {
    sampler.Sample(&x);
    const int site = static_cast<int>(router.NextBounded(static_cast<uint64_t>(sites)));
    trackers->exact->Observe(x, site);
    trackers->baseline->Observe(x, site);
    trackers->uniform->Observe(x, site);
    trackers->nonuniform->Observe(x, site);
  }
}

TEST(IntegrationTest, CommunicationOrderingOnAlarm) {
  const BayesianNetwork net = Alarm();
  FourTrackers trackers = MakeTrackers(net, 10, 0.1);
  StreamToAll(net, &trackers, 50000, 10);

  const uint64_t exact = trackers.exact->comm().TotalMessages();
  const uint64_t baseline = trackers.baseline->comm().TotalMessages();
  const uint64_t uniform = trackers.uniform->comm().TotalMessages();
  const uint64_t nonuniform = trackers.nonuniform->comm().TotalMessages();

  // Fig. 6 / Table III ordering: approx algorithms beat EXACTMLE; the
  // variance-analysis algorithms beat BASELINE (whose per-counter epsilon
  // is much smaller).
  EXPECT_LT(baseline, exact);
  EXPECT_LT(uniform, baseline);
  // UNIFORM and NONUNIFORM are close on ALARM (similar cardinalities);
  // allow 20% slack either way but require the same magnitude.
  EXPECT_LT(nonuniform, uniform + uniform / 5);
  EXPECT_GT(nonuniform, uniform / 2);
}

TEST(IntegrationTest, ErrorToMleWithinApproximationBand) {
  const BayesianNetwork net = Alarm();
  FourTrackers trackers = MakeTrackers(net, 10, 0.1);
  StreamToAll(net, &trackers, 50000, 10);

  Rng rng(31337);
  TestEventOptions options;
  options.count = 300;
  const std::vector<TestEvent> events = GenerateTestEvents(net, options, rng);

  // Definition 2 (with the experiment's single-instance, constant-probability
  // setting): the ratio P~/P^ concentrates within e^{±eps}. Check the mean
  // relative deviation is well under eps and the worst case under 3 eps.
  for (const MleTracker* tracker :
       {trackers.baseline.get(), trackers.uniform.get(), trackers.nonuniform.get()}) {
    OnlineStats deviation;
    for (const TestEvent& event : events) {
      const double mle = trackers.exact->JointProbability(event.assignment);
      const double approx = tracker->JointProbability(event.assignment);
      ASSERT_GT(mle, 0.0);
      deviation.Add(std::abs(approx - mle) / mle);
    }
    EXPECT_LT(deviation.mean(), 0.1)
        << "strategy " << ToString(tracker->config().strategy);
    EXPECT_LT(deviation.max(), 0.3)
        << "strategy " << ToString(tracker->config().strategy);
  }
}

TEST(IntegrationTest, ErrorToTruthShrinksWithMoreData) {
  const BayesianNetwork net = Hepar();
  TrackerConfig config;
  config.strategy = TrackingStrategy::kNonUniform;
  config.num_sites = 10;
  config.epsilon = 0.1;
  MleTracker tracker(net, config);

  Rng rng(777);
  TestEventOptions options;
  options.count = 200;
  const std::vector<TestEvent> events = GenerateTestEvents(net, options, rng);

  ForwardSampler sampler(net, 778);
  Rng router(779);
  Instance x;
  auto mean_error = [&]() {
    OnlineStats err;
    for (const TestEvent& event : events) {
      const double estimate = tracker.JointProbability(event.assignment);
      err.Add(std::abs(estimate - event.truth_prob) / event.truth_prob);
    }
    return err.mean();
  };

  for (int64_t e = 0; e < 2000; ++e) {
    sampler.Sample(&x);
    tracker.Observe(x, static_cast<int>(router.NextBounded(10)));
  }
  const double error_small = mean_error();
  for (int64_t e = 0; e < 48000; ++e) {
    sampler.Sample(&x);
    tracker.Observe(x, static_cast<int>(router.NextBounded(10)));
  }
  const double error_large = mean_error();
  // Fig. 1-3 behaviour: statistical error shrinks as the stream grows.
  EXPECT_LT(error_large, error_small);
}

TEST(IntegrationTest, NewAlarmSeparatesNonUniformFromUniform) {
  // Section VI-B: on NEW-ALARM the NONUNIFORM allocation saves messages
  // relative to UNIFORM (the paper reports ~35%; see EXPERIMENTS.md for the
  // crossover analysis — the separation appears once most counter cells are
  // in the sampled regime, which needs a couple of million events here).
  // All seeds are fixed, so the outcome is deterministic.
  const BayesianNetwork net = NewAlarm();
  TrackerConfig config;
  config.num_sites = 30;
  config.epsilon = 0.1;
  config.seed = 5150;
  config.strategy = TrackingStrategy::kUniform;
  MleTracker uniform(net, config);
  config.strategy = TrackingStrategy::kNonUniform;
  MleTracker nonuniform(net, config);

  ForwardSampler sampler(net, 5151);
  Rng router(5152);
  Instance x;
  for (int64_t e = 0; e < 2000000; ++e) {
    sampler.Sample(&x);
    const int site = static_cast<int>(router.NextBounded(30));
    uniform.Observe(x, site);
    nonuniform.Observe(x, site);
  }
  EXPECT_LT(nonuniform.comm().TotalMessages(), uniform.comm().TotalMessages());
}

TEST(IntegrationTest, ClassificationAccuracyComparableAcrossStrategies) {
  // Table II: prediction error of approximate strategies is very close to
  // EXACTMLE's.
  const BayesianNetwork net = Alarm();
  FourTrackers trackers = MakeTrackers(net, 10, 0.1);
  StreamToAll(net, &trackers, 30000, 10);

  ForwardSampler test_sampler(net, 8888);
  Rng picker(8889);
  Instance x;
  constexpr int kTests = 600;
  int errors[4] = {0, 0, 0, 0};
  const MleTracker* all[4] = {trackers.exact.get(), trackers.baseline.get(),
                              trackers.uniform.get(), trackers.nonuniform.get()};
  for (int t = 0; t < kTests; ++t) {
    test_sampler.Sample(&x);
    const int target = static_cast<int>(
        picker.NextBounded(static_cast<uint64_t>(net.num_variables())));
    const int truth = x[static_cast<size_t>(target)];
    for (int a = 0; a < 4; ++a) {
      errors[a] += (PredictWithTracker(*all[a], target, x) != truth);
    }
  }
  for (int a = 1; a < 4; ++a) {
    EXPECT_LE(std::abs(errors[a] - errors[0]), kTests * 6 / 100)
        << "strategy " << ToString(all[a]->config().strategy);
  }
}

}  // namespace
}  // namespace dsgm
