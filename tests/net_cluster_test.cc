// End-to-end cluster runs over real localhost TCP sockets: a kThreads
// Session with the MakeLocalTcpTransport / MakeReactorTransport factories
// must satisfy the same correctness bounds as the in-process loopback run
// (tests/cluster_test.cc), with every frame codec-serialized through the
// kernel socket layer.

#include <gtest/gtest.h>

#include <memory>

#include "bayes/repository.h"
#include "dsgm/dsgm.h"
#include "net/cluster_transport.h"

namespace dsgm {
namespace {

RunReport RunWithTransport(const BayesianNetwork& net, TrackingStrategy strategy,
                           int sites, int64_t events, TransportFactory transport) {
  SessionBuilder builder(net);
  builder.WithBackend(Backend::kThreads)
      .WithStrategy(strategy)
      .WithSites(sites)
      .WithEpsilon(0.1)
      .WithSeed(12345);
  if (transport) builder.WithTransport(std::move(transport));
  StatusOr<std::unique_ptr<Session>> session = builder.Build();
  EXPECT_TRUE(session.ok()) << session.status();
  EXPECT_TRUE((*session)->StreamGroundTruth(events).ok());
  StatusOr<RunReport> report = (*session)->Finish();
  EXPECT_TRUE(report.ok()) << report.status();
  return *report;
}

struct NetClusterParam {
  const char* name;
  TransportFactory factory;
};

/// Both socketed transports (thread-per-connection and reactor) must meet
/// the same end-to-end bounds.
class NetClusterTest : public ::testing::TestWithParam<NetClusterParam> {};

TEST_P(NetClusterTest, ExactModeOverTcpReproducesCountsExactly) {
  const BayesianNetwork net = StudentNetwork();
  const RunReport result = RunWithTransport(net, TrackingStrategy::kExactMle, 3,
                                            20000, GetParam().factory);
  EXPECT_EQ(result.events_processed, 20000);
  EXPECT_DOUBLE_EQ(result.max_counter_rel_error, 0.0);
  EXPECT_EQ(result.comm.update_messages,
            static_cast<uint64_t>(20000 * 2 * net.num_variables()));
}

TEST_P(NetClusterTest, ApproxModeOverTcpStaysWithinValidationBound) {
  // The acceptance bar for a transport: >= 2 sites, >= 50k events over
  // localhost TCP, and the same max_counter_rel_error bound as the
  // in-process run (cluster_test.cc's ApproxModeBoundedError).
  const BayesianNetwork net = StudentNetwork();
  const RunReport result = RunWithTransport(net, TrackingStrategy::kUniform, 4,
                                            50000, GetParam().factory);
  EXPECT_EQ(result.events_processed, 50000);
  // 0.1, not 0.05: in-flight reports at shutdown make the realized error
  // scheduling-dependent, and on loaded single-core machines the tighter
  // bound fails ~1/15 runs on an unmodified tree (same rationale as
  // ClusterTest.SingleSiteWorks and session_test.cc).
  EXPECT_LT(result.max_counter_rel_error, 0.1);
  // <=, not <: every-increment-reports (exactly 2 * num_variables per
  // event) is legal protocol behavior — under heavy scheduling contention
  // the sites can drain the whole stream at p = 1.0 before the first round
  // advance reaches them. The guarantee is "never MORE than exact mode".
  EXPECT_LE(result.comm.update_messages,
            static_cast<uint64_t>(50000 * 2 * net.num_variables()));
}

TEST_P(NetClusterTest, TransportMeasuresRealBytes) {
  const BayesianNetwork net = StudentNetwork();
  const RunReport result = RunWithTransport(net, TrackingStrategy::kUniform, 2,
                                            10000, GetParam().factory);
  EXPECT_TRUE(result.transport_measured);
  // Every event crosses the wire downstream, and reports flow upstream.
  EXPECT_GT(result.transport_bytes_down, static_cast<uint64_t>(10000));
  EXPECT_GT(result.transport_bytes_up, 0u);
}

TEST_P(NetClusterTest, TcpAndLoopbackAgreeOnProtocolTraffic) {
  // The transport must be invisible to the protocol: same seed, same
  // strategy => identical logical message counts on both substrates
  // (scheduling can only reorder, not create or destroy updates, because
  // reports are Bernoulli draws from per-site RNGs and rounds are
  // threshold-driven... in exact mode there is no randomness at all).
  const BayesianNetwork net = StudentNetwork();
  const RunReport a = RunWithTransport(net, TrackingStrategy::kExactMle, 3,
                                       15000, TransportFactory());
  const RunReport b = RunWithTransport(net, TrackingStrategy::kExactMle, 3,
                                       15000, GetParam().factory);
  EXPECT_EQ(a.comm.update_messages, b.comm.update_messages);
  EXPECT_EQ(a.comm.broadcast_messages, b.comm.broadcast_messages);
}

INSTANTIATE_TEST_SUITE_P(
    SocketTransports, NetClusterTest,
    ::testing::Values(NetClusterParam{"LocalTcp", MakeLocalTcpTransport},
                      NetClusterParam{"Reactor",
                                      [](int n) {
                                        return MakeReactorTransport(n);
                                      }}),
    [](const ::testing::TestParamInfo<NetClusterParam>& info) {
      return std::string(info.param.name);
    });

TEST(NetClusterTest, LoopbackReportsNoMeasuredBytes) {
  const BayesianNetwork net = StudentNetwork();
  const RunReport result = RunWithTransport(net, TrackingStrategy::kUniform, 2,
                                            5000, TransportFactory());
  EXPECT_FALSE(result.transport_measured);
  EXPECT_EQ(result.transport_bytes_up, 0u);
}

}  // namespace
}  // namespace dsgm
