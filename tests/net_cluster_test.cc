// End-to-end cluster runs over real localhost TCP sockets: RunCluster with
// the MakeLocalTcpTransport factory must satisfy the same correctness
// bounds as the in-process loopback run (tests/cluster_test.cc), with every
// frame codec-serialized through the kernel socket layer.

#include <gtest/gtest.h>

#include "bayes/repository.h"
#include "cluster/cluster_runner.h"
#include "net/cluster_transport.h"

namespace dsgm {
namespace {

ClusterConfig MakeTcpConfig(TrackingStrategy strategy, int sites, int64_t events) {
  ClusterConfig config;
  config.tracker.strategy = strategy;
  config.tracker.num_sites = sites;
  config.tracker.epsilon = 0.1;
  config.tracker.seed = 12345;
  config.num_events = events;
  config.transport = MakeLocalTcpTransport;
  return config;
}

TEST(NetClusterTest, ExactModeOverTcpReproducesCountsExactly) {
  const BayesianNetwork net = StudentNetwork();
  const ClusterResult result =
      RunCluster(net, MakeTcpConfig(TrackingStrategy::kExactMle, 3, 20000));
  EXPECT_EQ(result.events_processed, 20000);
  EXPECT_DOUBLE_EQ(result.max_counter_rel_error, 0.0);
  EXPECT_EQ(result.comm.update_messages,
            static_cast<uint64_t>(20000 * 2 * net.num_variables()));
}

TEST(NetClusterTest, ApproxModeOverTcpStaysWithinValidationBound) {
  // The acceptance bar for the transport: >= 2 sites, >= 50k events over
  // localhost TCP, and the same max_counter_rel_error bound as the
  // in-process run (cluster_test.cc's ApproxModeBoundedError).
  const BayesianNetwork net = StudentNetwork();
  const ClusterResult result =
      RunCluster(net, MakeTcpConfig(TrackingStrategy::kUniform, 4, 50000));
  EXPECT_EQ(result.events_processed, 50000);
  EXPECT_LT(result.max_counter_rel_error, 0.05);
  EXPECT_LT(result.comm.update_messages,
            static_cast<uint64_t>(50000 * 2 * net.num_variables()));
}

TEST(NetClusterTest, TcpTransportMeasuresRealBytes) {
  const BayesianNetwork net = StudentNetwork();
  const ClusterResult result =
      RunCluster(net, MakeTcpConfig(TrackingStrategy::kUniform, 2, 10000));
  EXPECT_TRUE(result.transport_measured);
  // Every event crosses the wire downstream, and reports flow upstream.
  EXPECT_GT(result.transport_bytes_down, static_cast<uint64_t>(10000));
  EXPECT_GT(result.transport_bytes_up, 0u);
}

TEST(NetClusterTest, LoopbackReportsNoMeasuredBytes) {
  const BayesianNetwork net = StudentNetwork();
  ClusterConfig config = MakeTcpConfig(TrackingStrategy::kUniform, 2, 5000);
  config.transport = TransportFactory();  // Default: loopback.
  const ClusterResult result = RunCluster(net, config);
  EXPECT_FALSE(result.transport_measured);
  EXPECT_EQ(result.transport_bytes_up, 0u);
}

TEST(NetClusterTest, TcpAndLoopbackAgreeOnProtocolTraffic) {
  // The transport must be invisible to the protocol: same seed, same
  // strategy => identical logical message counts on both substrates
  // (scheduling can only reorder, not create or destroy updates, because
  // reports are Bernoulli draws from per-site RNGs and rounds are
  // threshold-driven... in exact mode there is no randomness at all).
  const BayesianNetwork net = StudentNetwork();
  ClusterConfig loopback = MakeTcpConfig(TrackingStrategy::kExactMle, 3, 15000);
  loopback.transport = TransportFactory();
  const ClusterResult a = RunCluster(net, loopback);
  const ClusterResult b =
      RunCluster(net, MakeTcpConfig(TrackingStrategy::kExactMle, 3, 15000));
  EXPECT_EQ(a.comm.update_messages, b.comm.update_messages);
  EXPECT_EQ(a.comm.broadcast_messages, b.comm.broadcast_messages);
}

}  // namespace
}  // namespace dsgm
