// Tests for bayes/dag.h.

#include <gtest/gtest.h>

#include <algorithm>

#include "bayes/dag.h"
#include "common/rng.h"

namespace dsgm {
namespace {

TEST(DagTest, AddEdgeMaintainsSortedAdjacency) {
  Dag dag(4);
  ASSERT_TRUE(dag.AddEdge(2, 3).ok());
  ASSERT_TRUE(dag.AddEdge(0, 3).ok());
  ASSERT_TRUE(dag.AddEdge(1, 3).ok());
  EXPECT_EQ(dag.parents(3), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(dag.num_edges(), 3);
  EXPECT_TRUE(dag.HasEdge(0, 3));
  EXPECT_FALSE(dag.HasEdge(3, 0));
}

TEST(DagTest, RejectsBadEdges) {
  Dag dag(3);
  EXPECT_FALSE(dag.AddEdge(0, 0).ok());   // self loop
  EXPECT_FALSE(dag.AddEdge(-1, 2).ok());  // out of range
  EXPECT_FALSE(dag.AddEdge(0, 3).ok());   // out of range
  ASSERT_TRUE(dag.AddEdge(0, 1).ok());
  EXPECT_FALSE(dag.AddEdge(0, 1).ok());  // duplicate
  EXPECT_EQ(dag.num_edges(), 1);
}

TEST(DagTest, TopologicalOrderRespectsEdges) {
  Dag dag(5);
  ASSERT_TRUE(dag.AddEdge(3, 1).ok());
  ASSERT_TRUE(dag.AddEdge(1, 0).ok());
  ASSERT_TRUE(dag.AddEdge(4, 2).ok());
  StatusOr<std::vector<int>> order = dag.TopologicalOrder();
  ASSERT_TRUE(order.ok());
  std::vector<int> position(5);
  for (int i = 0; i < 5; ++i) position[static_cast<size_t>((*order)[static_cast<size_t>(i)])] = i;
  EXPECT_LT(position[3], position[1]);
  EXPECT_LT(position[1], position[0]);
  EXPECT_LT(position[4], position[2]);
}

TEST(DagTest, CycleDetected) {
  Dag dag(3);
  ASSERT_TRUE(dag.AddEdge(0, 1).ok());
  ASSERT_TRUE(dag.AddEdge(1, 2).ok());
  ASSERT_TRUE(dag.AddEdge(2, 0).ok());
  EXPECT_FALSE(dag.IsAcyclic());
  EXPECT_FALSE(dag.TopologicalOrder().ok());
}

TEST(DagTest, AncestralClosureIncludesAllAncestors) {
  // 0 -> 1 -> 3, 2 -> 3, 3 -> 4.
  Dag dag(5);
  ASSERT_TRUE(dag.AddEdge(0, 1).ok());
  ASSERT_TRUE(dag.AddEdge(1, 3).ok());
  ASSERT_TRUE(dag.AddEdge(2, 3).ok());
  ASSERT_TRUE(dag.AddEdge(3, 4).ok());
  EXPECT_EQ(dag.AncestralClosure({4}), (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(dag.AncestralClosure({1}), (std::vector<int>{0, 1}));
  EXPECT_EQ(dag.AncestralClosure({0}), (std::vector<int>{0}));
  EXPECT_EQ(dag.AncestralClosure({1, 2}), (std::vector<int>{0, 1, 2}));
}

TEST(DagTest, SinksAndRoots) {
  Dag dag(4);
  ASSERT_TRUE(dag.AddEdge(0, 1).ok());
  ASSERT_TRUE(dag.AddEdge(0, 2).ok());
  EXPECT_EQ(dag.Roots(), (std::vector<int>{0, 3}));
  EXPECT_EQ(dag.Sinks(), (std::vector<int>{1, 2, 3}));
}

TEST(DagTest, InducedSubgraphRemapsEdges) {
  // 0 -> 1 -> 2, 0 -> 2; keep {0, 2}.
  Dag dag(3);
  ASSERT_TRUE(dag.AddEdge(0, 1).ok());
  ASSERT_TRUE(dag.AddEdge(1, 2).ok());
  ASSERT_TRUE(dag.AddEdge(0, 2).ok());
  Dag sub = dag.InducedSubgraph({0, 2});
  EXPECT_EQ(sub.num_nodes(), 2);
  EXPECT_EQ(sub.num_edges(), 1);
  EXPECT_TRUE(sub.HasEdge(0, 1));  // old 0 -> old 2
}

TEST(DagTest, ClosureOfSortedSeedsIsSorted) {
  Rng rng(5);
  Dag dag(50);
  for (int child = 1; child < 50; ++child) {
    ASSERT_TRUE(dag.AddEdge(static_cast<int>(rng.NextBounded(static_cast<uint64_t>(child))), child).ok());
  }
  const std::vector<int> closure = dag.AncestralClosure({49, 25});
  EXPECT_TRUE(std::is_sorted(closure.begin(), closure.end()));
  // Closure is idempotent.
  EXPECT_EQ(dag.AncestralClosure(closure), closure);
}

// Property sweep: random DAGs built parent->child by construction are always
// acyclic, and the topological order is consistent with every edge.
class RandomDagTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomDagTest, TopologicalOrderIsValid) {
  const int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  const int n = 2 + static_cast<int>(rng.NextBounded(60));
  Dag dag(n);
  const int edges = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(2 * n)));
  for (int e = 0; e < edges; ++e) {
    const int to = 1 + static_cast<int>(rng.NextBounded(static_cast<uint64_t>(n - 1)));
    const int from = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(to)));
    (void)dag.AddEdge(from, to);  // Duplicates rejected; fine.
  }
  ASSERT_TRUE(dag.IsAcyclic());
  StatusOr<std::vector<int>> order = dag.TopologicalOrder();
  ASSERT_TRUE(order.ok());
  std::vector<int> position(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    position[static_cast<size_t>((*order)[static_cast<size_t>(i)])] = i;
  }
  for (int child = 0; child < n; ++child) {
    for (int parent : dag.parents(child)) {
      EXPECT_LT(position[static_cast<size_t>(parent)],
                position[static_cast<size_t>(child)]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace dsgm
