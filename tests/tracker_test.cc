// Tests for core/mle_tracker.h — Algorithms 1-3 over exact and randomized
// counters.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "bayes/repository.h"
#include "bayes/sampler.h"
#include "core/mle_tracker.h"

namespace dsgm {
namespace {

TrackerConfig Config(TrackingStrategy strategy, int sites = 5,
                     double epsilon = 0.1) {
  TrackerConfig config;
  config.strategy = strategy;
  config.num_sites = sites;
  config.epsilon = epsilon;
  config.seed = 99;
  return config;
}

/// Streams `count` instances into `tracker`, routing uniformly to sites,
/// and returns the instances for reference counting.
std::vector<Instance> Stream(const BayesianNetwork& net, MleTracker* tracker,
                             int64_t count, uint64_t seed = 1234) {
  ForwardSampler sampler(net, seed);
  Rng router(seed ^ 0xabcdef);
  std::vector<Instance> instances;
  instances.reserve(static_cast<size_t>(count));
  Instance x;
  for (int64_t e = 0; e < count; ++e) {
    sampler.Sample(&x);
    tracker->Observe(x, static_cast<int>(router.NextBounded(
                            static_cast<uint64_t>(tracker->config().num_sites))));
    instances.push_back(x);
  }
  return instances;
}

TEST(MleTrackerTest, CounterLayoutSizes) {
  const BayesianNetwork net = StudentNetwork();
  MleTracker tracker(net, Config(TrackingStrategy::kExactMle));
  EXPECT_EQ(tracker.num_joint_counters(), net.TotalJointCells());
  EXPECT_EQ(tracker.num_parent_counters(), net.TotalParentCells());
}

TEST(MleTrackerTest, ExactCpdEstimateIsEmpiricalFrequency) {
  const BayesianNetwork net = StudentNetwork();
  MleTracker tracker(net, Config(TrackingStrategy::kExactMle));
  const std::vector<Instance> data = Stream(net, &tracker, 5000);

  // Hand-count P(Grade=g | D=d, I=i) for one parent row.
  int64_t row_count = 0;
  int64_t joint_count = 0;
  for (const Instance& x : data) {
    if (x[0] == 0 && x[1] == 1) {
      ++row_count;
      if (x[2] == 0) ++joint_count;
    }
  }
  ASSERT_GT(row_count, 0);
  // Parent row of Grade for (d0, i1) is 1 (last parent fastest).
  EXPECT_DOUBLE_EQ(tracker.ParentCounterExact(2, 1),
                   static_cast<double>(row_count));
  EXPECT_DOUBLE_EQ(tracker.JointCounterExact(2, 0, 1),
                   static_cast<double>(joint_count));
  EXPECT_NEAR(tracker.CpdEstimate(2, 0, 1),
              static_cast<double>(joint_count) / static_cast<double>(row_count),
              1e-12);
}

TEST(MleTrackerTest, ExactJointProbabilityIsProductOfFrequencies) {
  const BayesianNetwork net = StudentNetwork();
  MleTracker tracker(net, Config(TrackingStrategy::kExactMle));
  Stream(net, &tracker, 2000);

  const Instance probe = {0, 1, 0, 1, 1};
  double expected = 1.0;
  for (int i = 0; i < net.num_variables(); ++i) {
    const int64_t row = net.ParentIndexOf(i, probe);
    expected *= tracker.CpdEstimate(i, probe[static_cast<size_t>(i)], row);
  }
  EXPECT_NEAR(tracker.JointProbability(probe), expected, 1e-12);
}

TEST(MleTrackerTest, ExactMleConvergesToGroundTruth) {
  const BayesianNetwork net = StudentNetwork();
  MleTracker tracker(net, Config(TrackingStrategy::kExactMle));
  Stream(net, &tracker, 100000);
  const Instance probe = {0, 1, 0, 1, 1};
  EXPECT_NEAR(tracker.JointProbability(probe), net.JointProbability(probe),
              0.15 * net.JointProbability(probe));
}

TEST(MleTrackerTest, ExactCommunicationIsTwoNPerEvent) {
  const BayesianNetwork net = StudentNetwork();
  MleTracker tracker(net, Config(TrackingStrategy::kExactMle));
  constexpr int64_t kEvents = 1000;
  Stream(net, &tracker, kEvents);
  EXPECT_EQ(tracker.comm().update_messages,
            static_cast<uint64_t>(kEvents * 2 * net.num_variables()));
  // Bundling: one wire message per event.
  EXPECT_EQ(tracker.comm().wire_messages, static_cast<uint64_t>(kEvents));
  EXPECT_EQ(tracker.events_observed(), kEvents);
}

TEST(MleTrackerTest, PartialAssignmentQueryMatchesManualProduct) {
  const BayesianNetwork net = StudentNetwork();
  MleTracker tracker(net, Config(TrackingStrategy::kExactMle));
  Stream(net, &tracker, 5000);
  PartialAssignment pa;
  pa.nodes = {0, 1, 2};
  pa.values = {0, 1, 0};
  const double expected = tracker.CpdEstimate(0, 0, 0) *
                          tracker.CpdEstimate(1, 1, 0) *
                          tracker.CpdEstimate(2, 0, 1);
  EXPECT_NEAR(tracker.JointProbability(pa), expected, 1e-12);
}

TEST(MleTrackerTest, UnseenParentRowFallsBackToUniform) {
  const BayesianNetwork net = StudentNetwork();
  MleTracker tracker(net, Config(TrackingStrategy::kExactMle));
  // No data at all: every estimate must be the uniform fallback.
  EXPECT_DOUBLE_EQ(tracker.CpdEstimate(2, 0, 3), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(tracker.CpdEstimate(0, 1, 0), 1.0 / 2.0);
}

TEST(MleTrackerTest, LaplaceSmoothingChangesZeroCounts) {
  const BayesianNetwork net = StudentNetwork();
  TrackerConfig config = Config(TrackingStrategy::kExactMle);
  config.laplace_alpha = 1.0;
  MleTracker tracker(net, config);
  // One event: (d0, i0, g0, s0, l0).
  tracker.Observe({0, 0, 0, 0, 0}, 0);
  // P(g1 | d0,i0) with Laplace-1: (0+1)/(1+3) = 0.25.
  EXPECT_NEAR(tracker.CpdEstimate(2, 1, 0), 0.25, 1e-12);
  // P(g0 | d0,i0) = (1+1)/(1+3) = 0.5.
  EXPECT_NEAR(tracker.CpdEstimate(2, 0, 0), 0.5, 1e-12);
}

TEST(MleTrackerTest, ApproxTrackerStaysCloseToExactMle) {
  const BayesianNetwork net = StudentNetwork();
  MleTracker exact(net, Config(TrackingStrategy::kExactMle));
  MleTracker uniform(net, Config(TrackingStrategy::kUniform, 5, 0.1));
  constexpr int64_t kEvents = 50000;
  {
    ForwardSampler sampler(net, 555);
    Rng router(777);
    Instance x;
    for (int64_t e = 0; e < kEvents; ++e) {
      sampler.Sample(&x);
      const int site = static_cast<int>(router.NextBounded(5));
      exact.Observe(x, site);
      uniform.Observe(x, site);
    }
  }
  // Definition 2: e^-eps <= P~/P^ <= e^eps. Check on several assignments
  // with non-trivial mass.
  ForwardSampler probe_sampler(net, 999);
  Instance probe;
  for (int q = 0; q < 50; ++q) {
    probe_sampler.Sample(&probe);
    const double approx = uniform.JointProbability(probe);
    const double mle = exact.JointProbability(probe);
    if (mle <= 0.0) continue;
    const double ratio = approx / mle;
    EXPECT_GT(ratio, std::exp(-0.15));
    EXPECT_LT(ratio, std::exp(0.15));
  }
}

TEST(MleTrackerTest, ApproxUsesFewerMessagesThanExactOnLongStreams) {
  const BayesianNetwork net = StudentNetwork();
  MleTracker exact(net, Config(TrackingStrategy::kExactMle));
  MleTracker nonuniform(net, Config(TrackingStrategy::kNonUniform, 5, 0.1));
  constexpr int64_t kEvents = 200000;
  {
    ForwardSampler sampler(net, 2024);
    Rng router(4048);
    Instance x;
    for (int64_t e = 0; e < kEvents; ++e) {
      sampler.Sample(&x);
      const int site = static_cast<int>(router.NextBounded(5));
      exact.Observe(x, site);
      nonuniform.Observe(x, site);
    }
  }
  EXPECT_LT(nonuniform.comm().TotalMessages(),
            exact.comm().TotalMessages() / 4);
}

TEST(MleTrackerTest, StrategiesShareExactCounts) {
  // Whatever the messaging policy, the ground-truth per-counter totals must
  // agree: the strategies differ only in what the coordinator knows.
  const BayesianNetwork net = StudentNetwork();
  MleTracker exact(net, Config(TrackingStrategy::kExactMle));
  MleTracker baseline(net, Config(TrackingStrategy::kBaseline));
  {
    ForwardSampler sampler(net, 31);
    Rng router(32);
    Instance x;
    for (int64_t e = 0; e < 20000; ++e) {
      sampler.Sample(&x);
      const int site = static_cast<int>(router.NextBounded(5));
      exact.Observe(x, site);
      baseline.Observe(x, site);
    }
  }
  for (int i = 0; i < net.num_variables(); ++i) {
    for (int64_t row = 0; row < net.parent_cardinality(i); ++row) {
      EXPECT_EQ(exact.ParentCounterExact(i, row),
                baseline.ParentCounterExact(i, row));
    }
  }
}

TEST(MleTrackerTest, ReplicatedTrackerMultipliesCommunication) {
  const BayesianNetwork net = StudentNetwork();
  TrackerConfig single = Config(TrackingStrategy::kUniform);
  TrackerConfig triple = Config(TrackingStrategy::kUniform);
  triple.replicas = 3;
  MleTracker one(net, single);
  MleTracker three(net, triple);
  {
    ForwardSampler sampler(net, 61);
    Rng router(62);
    Instance x;
    for (int64_t e = 0; e < 20000; ++e) {
      sampler.Sample(&x);
      const int site = static_cast<int>(router.NextBounded(5));
      one.Observe(x, site);
      three.Observe(x, site);
    }
  }
  EXPECT_GT(three.comm().TotalMessages(), 2 * one.comm().TotalMessages());
  // And the median estimate still tracks the exact count.
  const Instance probe = {0, 0, 0, 0, 0};
  EXPECT_NEAR(three.JointProbability(probe), one.JointProbability(probe),
              0.2 * one.JointProbability(probe) + 1e-9);
}

TEST(MleTrackerTest, InvalidConfigDies) {
  const BayesianNetwork net = StudentNetwork();
  TrackerConfig config = Config(TrackingStrategy::kUniform);
  config.epsilon = 0.0;
  EXPECT_DEATH(MleTracker(net, config), "epsilon");
}

TEST(MleTrackerTest, MemoryAccountingPositive) {
  const BayesianNetwork net = StudentNetwork();
  MleTracker tracker(net, Config(TrackingStrategy::kUniform));
  EXPECT_GT(tracker.MemoryBytes(), 0u);
}

// --- TrackerConfig::Validate edge cases --------------------------------

TEST(TrackerConfigTest, DefaultConfigIsValid) {
  EXPECT_TRUE(TrackerConfig().Validate().ok());
}

TEST(TrackerConfigTest, EpsilonMustBeInOpenUnitInterval) {
  TrackerConfig config;
  config.epsilon = -0.1;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config.epsilon = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config.epsilon = 1.0;
  EXPECT_FALSE(config.Validate().ok());
  config.epsilon = 0.999;
  EXPECT_TRUE(config.Validate().ok());
  config.epsilon = 1e-9;  // Tiny but legal: approaches exact maintenance.
  EXPECT_TRUE(config.Validate().ok());
}

TEST(TrackerConfigTest, SitesAndReplicasMustBePositive) {
  TrackerConfig config;
  config.num_sites = 0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config.num_sites = -3;
  EXPECT_FALSE(config.Validate().ok());
  config.num_sites = 1;  // A one-site "distributed" stream is legal.
  EXPECT_TRUE(config.Validate().ok());

  config.replicas = 0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config.replicas = -1;
  EXPECT_FALSE(config.Validate().ok());
  config.replicas = 1;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(TrackerConfigTest, ConstantsMustBePositiveAndLaplaceNonNegative) {
  TrackerConfig config;
  config.probability_constant = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config.probability_constant = 1.0;
  config.allocation_relaxation = -4.0;
  EXPECT_FALSE(config.Validate().ok());
  config.allocation_relaxation = 4.0;
  config.laplace_alpha = -0.5;
  EXPECT_FALSE(config.Validate().ok());
  config.laplace_alpha = 0.0;  // Zero is the paper's raw MLE.
  EXPECT_TRUE(config.Validate().ok());
}

// --- TrackingStrategyFromName edge cases -------------------------------

TEST(TrackerConfigTest, StrategyNamesParseCaseAndSeparatorInsensitively) {
  const struct {
    const char* name;
    TrackingStrategy expected;
  } kCases[] = {
      {"exact", TrackingStrategy::kExactMle},
      {"EXACT", TrackingStrategy::kExactMle},
      {"Exact-MLE", TrackingStrategy::kExactMle},
      {"exact_mle", TrackingStrategy::kExactMle},
      {"baseline", TrackingStrategy::kBaseline},
      {"BaseLine", TrackingStrategy::kBaseline},
      {"uniform", TrackingStrategy::kUniform},
      {"UnIfOrM", TrackingStrategy::kUniform},
      {"nonuniform", TrackingStrategy::kNonUniform},
      {"non-uniform", TrackingStrategy::kNonUniform},
      {"NON_UNIFORM", TrackingStrategy::kNonUniform},
      {"naive-bayes", TrackingStrategy::kNaiveBayes},
      {"NaiveBayes", TrackingStrategy::kNaiveBayes},
      {"NB", TrackingStrategy::kNaiveBayes},
  };
  for (const auto& test_case : kCases) {
    const StatusOr<TrackingStrategy> parsed =
        TrackingStrategyFromName(test_case.name);
    ASSERT_TRUE(parsed.ok()) << test_case.name;
    EXPECT_EQ(*parsed, test_case.expected) << test_case.name;
  }
}

TEST(TrackerConfigTest, UnknownStrategyNamesAreNotFound) {
  for (const char* name : {"", "exactly", "uniform2", "non", "bayes",
                           "naive bayes", "-", "__"}) {
    const StatusOr<TrackingStrategy> parsed = TrackingStrategyFromName(name);
    ASSERT_FALSE(parsed.ok()) << name;
    EXPECT_EQ(parsed.status().code(), StatusCode::kNotFound) << name;
  }
}

TEST(TrackerConfigTest, ParsedNamesRoundTripThroughToString) {
  for (TrackingStrategy strategy :
       {TrackingStrategy::kExactMle, TrackingStrategy::kBaseline,
        TrackingStrategy::kUniform, TrackingStrategy::kNonUniform,
        TrackingStrategy::kNaiveBayes}) {
    const StatusOr<TrackingStrategy> parsed =
        TrackingStrategyFromName(ToString(strategy));
    ASSERT_TRUE(parsed.ok()) << ToString(strategy);
    EXPECT_EQ(*parsed, strategy);
  }
}

}  // namespace
}  // namespace dsgm
