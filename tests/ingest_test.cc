// Concurrent-ingest coverage: the SPSC ring, the per-site lane hub, and —
// the headline — N producer threads hammering Push/PushBatch on ONE
// Session on every backend, validated by exact-mode count equality against
// a serial run (total exact counts are independent of routing, ordering,
// and interleaving), with a high-frequency Snapshot() poller thread mixed
// in. These suites run under TSan in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "api/sharded_router.h"
#include "bayes/repository.h"
#include "bayes/sampler.h"
#include "common/spsc_ring.h"
#include "dsgm/dsgm.h"

namespace dsgm {
namespace {

// --- SpscRing -----------------------------------------------------------

TEST(SpscRingTest, FifoOrderAcrossWraparound) {
  SpscRing<int> ring(4);  // rounds to capacity 4
  EXPECT_EQ(ring.capacity(), 4u);
  std::vector<int> out;
  int next_push = 0;
  int next_pop = 0;
  // Push/pop in a ragged pattern so the indices wrap several times.
  for (int cycle = 0; cycle < 10; ++cycle) {
    for (int i = 0; i < 3; ++i) {
      int value = next_push;
      ASSERT_TRUE(ring.TryPush(std::move(value)));
      ++next_push;
    }
    out.clear();
    ASSERT_EQ(ring.TryPopBatch(&out, 2), 2u);
    for (int value : out) EXPECT_EQ(value, next_pop++);
    out.clear();
    ASSERT_EQ(ring.TryPopBatch(&out, 8), 1u);
    EXPECT_EQ(out[0], next_pop++);
  }
  out.clear();
  EXPECT_EQ(ring.TryPopBatch(&out, 1), 0u);
}

TEST(SpscRingTest, FullPushLeavesItemIntact) {
  SpscRing<std::vector<int>> ring(2);
  ASSERT_TRUE(ring.TryPush({1}));
  ASSERT_TRUE(ring.TryPush({2}));
  std::vector<int> held = {3, 4, 5};
  EXPECT_FALSE(ring.TryPush(std::move(held)));
  EXPECT_EQ(held.size(), 3u);  // not consumed by the failed push
  std::vector<std::vector<int>> out;
  ASSERT_EQ(ring.TryPopBatch(&out, 1), 1u);
  EXPECT_TRUE(ring.TryPush(std::move(held)));
}

TEST(SpscRingTest, ConcurrentTransferDeliversEverythingInOrder) {
  // Yield on the raw ring's full/empty edges: this test drives the ring
  // without the hub's blocking layer, and pure spinning starves the peer
  // on single-core machines.
  constexpr int kItems = 50000;
  SpscRing<int> ring(64);
  std::thread producer([&ring] {
    for (int i = 0; i < kItems;) {
      int value = i;
      if (ring.TryPush(std::move(value))) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::vector<int> out;
  out.reserve(kItems);
  std::vector<int> scratch;
  while (out.size() < kItems) {
    scratch.clear();
    if (ring.TryPopBatch(&scratch, 32) == 0) std::this_thread::yield();
    out.insert(out.end(), scratch.begin(), scratch.end());
  }
  producer.join();
  ASSERT_EQ(out.size(), static_cast<size_t>(kItems));
  for (int i = 0; i < kItems; ++i) ASSERT_EQ(out[i], i);
}

// --- SpscLaneHub --------------------------------------------------------

EventBatch MakeBatch(int32_t tag) {
  EventBatch batch;
  batch.num_events = 1;
  batch.values = {tag};
  return batch;
}

TEST(SpscLaneHubTest, ManyProducersOneConsumerDeliverAll) {
  constexpr int kProducers = 4;
  constexpr int kBatchesPer = 500;
  internal::SpscLaneHub hub(/*lane_capacity=*/8);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    Channel<EventBatch>* lane = hub.AddLane();
    producers.emplace_back([lane, p] {
      for (int b = 0; b < kBatchesPer; ++b) {
        ASSERT_TRUE(lane->Push(MakeBatch(p * kBatchesPer + b)));
      }
    });
  }
  std::vector<EventBatch> got;
  std::vector<EventBatch> scratch;
  while (got.size() < kProducers * kBatchesPer) {
    scratch.clear();
    if (hub.PopBatch(&scratch, 16) == 0) break;
    for (EventBatch& batch : scratch) got.push_back(std::move(batch));
  }
  for (std::thread& thread : producers) thread.join();
  ASSERT_EQ(got.size(), static_cast<size_t>(kProducers * kBatchesPer));
  // Every tag exactly once, and each producer's tags in its push order.
  std::vector<int> last_tag(kProducers, -1);
  std::vector<uint8_t> seen(kProducers * kBatchesPer, 0);
  for (const EventBatch& batch : got) {
    const int tag = batch.values[0];
    ASSERT_FALSE(seen[static_cast<size_t>(tag)]);
    seen[static_cast<size_t>(tag)] = 1;
    const int producer = tag / kBatchesPer;
    ASSERT_GT(tag, last_tag[static_cast<size_t>(producer)]);
    last_tag[static_cast<size_t>(producer)] = tag;
  }
}

TEST(SpscLaneHubTest, CloseReleasesProducersAndDrains) {
  internal::SpscLaneHub hub(/*lane_capacity=*/2);
  Channel<EventBatch>* lane = hub.AddLane();
  ASSERT_TRUE(lane->Push(MakeBatch(1)));
  ASSERT_TRUE(lane->Push(MakeBatch(2)));
  // Lane is full; this push parks until Close fails it.
  std::thread blocked([lane] { EXPECT_FALSE(lane->Push(MakeBatch(3))); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  hub.Close();
  blocked.join();
  // Buffered batches stay poppable, then the hub reports closed-and-drained.
  std::vector<EventBatch> out;
  EXPECT_EQ(hub.PopBatch(&out, 16), 2u);
  out.clear();
  EXPECT_EQ(hub.PopBatch(&out, 16), 0u);
  // Registration after close hands out a dead lane.
  EXPECT_FALSE(hub.AddLane()->Push(MakeBatch(4)));
}

// --- Concurrent ingest through the Session API --------------------------

std::vector<Instance> SampleEvents(const BayesianNetwork& net, int64_t count) {
  ForwardSampler sampler(net, /*seed=*/4242);
  return sampler.SampleMany(count);
}

std::unique_ptr<Session> BuildExact(const BayesianNetwork& net, Backend backend) {
  SessionBuilder builder(net);
  builder.WithBackend(backend)
      .WithStrategy(TrackingStrategy::kExactMle)
      .WithSites(3)
      .WithSeed(7)
      .WithBatchSize(64);
  StatusOr<std::unique_ptr<Session>> session = builder.Build();
  EXPECT_TRUE(session.ok()) << session.status();
  return std::move(*session);
}

/// Final exact-mode counter estimates after pushing `events` with
/// `num_threads` concurrent producers (1 = the serial reference).
std::vector<double> CountsAfterIngest(const BayesianNetwork& net,
                                      Backend backend,
                                      const std::vector<Instance>& events,
                                      int num_threads, bool use_push_batch) {
  std::unique_ptr<Session> session = BuildExact(net, backend);
  if (num_threads == 1) {
    for (const Instance& event : events) {
      EXPECT_TRUE(session->Push(event).ok());
    }
  } else {
    std::vector<std::thread> threads;
    const size_t per = events.size() / static_cast<size_t>(num_threads);
    for (int t = 0; t < num_threads; ++t) {
      const size_t begin = static_cast<size_t>(t) * per;
      const size_t end =
          t + 1 == num_threads ? events.size() : begin + per;
      threads.emplace_back([&session, &events, begin, end, use_push_batch] {
        if (use_push_batch) {
          std::vector<Instance> slice(events.begin() + begin,
                                      events.begin() + end);
          ASSERT_TRUE(session->PushBatch(slice).ok());
        } else {
          for (size_t e = begin; e < end; ++e) {
            ASSERT_TRUE(session->Push(events[e]).ok());
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  EXPECT_EQ(session->events_pushed(), static_cast<int64_t>(events.size()));
  StatusOr<RunReport> report = session->Finish();
  EXPECT_TRUE(report.ok()) << report.status();
  // Exact mode: zero estimator error regardless of thread interleaving.
  EXPECT_DOUBLE_EQ(report->max_counter_rel_error, 0.0);
  std::vector<double> counts;
  counts.reserve(static_cast<size_t>(report->model.num_counters()));
  for (int64_t c = 0; c < report->model.num_counters(); ++c) {
    counts.push_back(report->model.CounterEstimate(c));
  }
  return counts;
}

void ExpectConcurrentMatchesSerial(Backend backend, bool use_push_batch) {
  const BayesianNetwork net = StudentNetwork();
  const std::vector<Instance> events = SampleEvents(net, 12000);
  const std::vector<double> serial =
      CountsAfterIngest(net, backend, events, 1, false);
  const std::vector<double> concurrent =
      CountsAfterIngest(net, backend, events, 4, use_push_batch);
  ASSERT_EQ(serial.size(), concurrent.size());
  for (size_t c = 0; c < serial.size(); ++c) {
    ASSERT_DOUBLE_EQ(serial[c], concurrent[c]) << "counter " << c;
  }
}

TEST(ConcurrentIngestTest, ExactCountsMatchSerialInProcess) {
  ExpectConcurrentMatchesSerial(Backend::kInProcess, false);
}

TEST(ConcurrentIngestTest, ExactCountsMatchSerialThreads) {
  ExpectConcurrentMatchesSerial(Backend::kThreads, false);
}

TEST(ConcurrentIngestTest, ExactCountsMatchSerialLocalTcp) {
  ExpectConcurrentMatchesSerial(Backend::kLocalTcp, false);
}

TEST(ConcurrentIngestTest, PushBatchConcurrentMatchesSerial) {
  ExpectConcurrentMatchesSerial(Backend::kThreads, true);
}

TEST(ConcurrentIngestTest, SnapshotPollerDuringConcurrentIngest) {
  // 4 producers + a high-frequency Snapshot() poller on one kThreads
  // session: every query must succeed and observe non-decreasing progress,
  // and the final counts must still be exactly right.
  const BayesianNetwork net = StudentNetwork();
  const std::vector<Instance> events = SampleEvents(net, 16000);
  std::unique_ptr<Session> session = BuildExact(net, Backend::kThreads);

  std::atomic<bool> done{false};
  std::atomic<int> polls{0};
  std::thread poller([&session, &done, &polls] {
    int64_t last_observed = 0;
    while (!done.load(std::memory_order_acquire)) {
      StatusOr<ModelView> view = session->Snapshot();
      ASSERT_TRUE(view.ok()) << view.status();
      ASSERT_GE(view->events_observed(), last_observed);
      last_observed = view->events_observed();
      polls.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  constexpr int kThreads = 4;
  std::vector<std::thread> producers;
  const size_t per = events.size() / kThreads;
  for (int t = 0; t < kThreads; ++t) {
    const size_t begin = static_cast<size_t>(t) * per;
    const size_t end = t + 1 == kThreads ? events.size() : begin + per;
    producers.emplace_back([&session, &events, begin, end] {
      for (size_t e = begin; e < end; ++e) {
        ASSERT_TRUE(session->Push(events[e]).ok());
      }
    });
  }
  for (std::thread& thread : producers) thread.join();
  done.store(true, std::memory_order_release);
  poller.join();
  EXPECT_GT(polls.load(), 0);

  StatusOr<RunReport> report = session->Finish();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->events_processed, static_cast<int64_t>(events.size()));
  EXPECT_DOUBLE_EQ(report->max_counter_rel_error, 0.0);
}

TEST(ConcurrentIngestTest, ExitedProducerThreadsFlushTheirStagedEvents) {
  // Thread churn: short-lived producers whose last partial batch would
  // otherwise sit staged until Finish. The thread-exit flush must deliver
  // it, so a snapshot taken AFTER the threads died (but before Finish)
  // eventually reflects every pushed event.
  const BayesianNetwork net = StudentNetwork();
  const std::vector<Instance> events = SampleEvents(net, 1600);
  std::unique_ptr<Session> session = BuildExact(net, Backend::kThreads);
  constexpr int kChurnThreads = 16;  // 100 events each < batch size 64 * 3
  const size_t per = events.size() / kChurnThreads;
  for (int t = 0; t < kChurnThreads; ++t) {
    const size_t begin = static_cast<size_t>(t) * per;
    const size_t end = t + 1 == kChurnThreads ? events.size() : begin + per;
    std::thread producer([&session, &events, begin, end] {
      for (size_t e = begin; e < end; ++e) {
        ASSERT_TRUE(session->Push(events[e]).ok());
      }
    });
    producer.join();
  }
  EXPECT_EQ(session->events_pushed(), static_cast<int64_t>(events.size()));
  // A root variable's parent counter counts every event; poll until the
  // sites absorbed the exit-flushed batches (delivery is asynchronous).
  const CounterLayout layout(net);
  StatusOr<ModelView> view = session->Snapshot();
  ASSERT_TRUE(view.ok()) << view.status();
  for (int poll = 0; poll < 500 &&
       view->CounterEstimate(layout.ParentId(0, 0)) <
           static_cast<double>(events.size());
       ++poll) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    view = session->Snapshot();
    ASSERT_TRUE(view.ok()) << view.status();
  }
  EXPECT_DOUBLE_EQ(view->CounterEstimate(layout.ParentId(0, 0)),
                   static_cast<double>(events.size()));
  StatusOr<RunReport> report = session->Finish();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->events_processed, static_cast<int64_t>(events.size()));
  EXPECT_DOUBLE_EQ(report->max_counter_rel_error, 0.0);
}

TEST(ConcurrentIngestTest, ApproxModeConcurrentPushStaysBounded) {
  // Approx mode under concurrent ingest: interleavings may change WHICH
  // reports are sampled, but the protocol's error guarantee must hold for
  // any arrival order.
  const BayesianNetwork net = StudentNetwork();
  const std::vector<Instance> events = SampleEvents(net, 20000);
  SessionBuilder builder(net);
  builder.WithBackend(Backend::kThreads)
      .WithStrategy(TrackingStrategy::kUniform)
      .WithEpsilon(0.1)
      .WithSites(3)
      .WithSeed(11);
  StatusOr<std::unique_ptr<Session>> session = builder.Build();
  ASSERT_TRUE(session.ok()) << session.status();
  constexpr int kThreads = 4;
  std::vector<std::thread> producers;
  const size_t per = events.size() / kThreads;
  for (int t = 0; t < kThreads; ++t) {
    const size_t begin = static_cast<size_t>(t) * per;
    const size_t end = t + 1 == kThreads ? events.size() : begin + per;
    producers.emplace_back([&session, &events, begin, end] {
      for (size_t e = begin; e < end; ++e) {
        ASSERT_TRUE((*session)->Push(events[e]).ok());
      }
    });
  }
  for (std::thread& thread : producers) thread.join();
  StatusOr<RunReport> report = (*session)->Finish();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->events_processed, static_cast<int64_t>(events.size()));
  EXPECT_LT(report->max_counter_rel_error, 0.1);
}

}  // namespace
}  // namespace dsgm
