// Tests for bayes/repository.h: the synthetic stand-ins must match the
// structural statistics of the paper's Table I.

#include <gtest/gtest.h>

#include <cmath>

#include "bayes/io.h"
#include "bayes/repository.h"

namespace dsgm {
namespace {

struct RepoCase {
  const char* name;
  int nodes;
  int edges;
  int64_t params;
};

class RepositoryTableTest : public ::testing::TestWithParam<RepoCase> {};

TEST_P(RepositoryTableTest, MatchesTableOne) {
  const RepoCase& expected = GetParam();
  StatusOr<BayesianNetwork> net = NetworkByName(expected.name);
  ASSERT_TRUE(net.ok()) << net.status();
  EXPECT_EQ(net->num_variables(), expected.nodes);
  EXPECT_EQ(net->dag().num_edges(), expected.edges);
  const double miss =
      std::abs(static_cast<double>(net->FreeParams() - expected.params)) /
      static_cast<double>(expected.params);
  EXPECT_LE(miss, 0.05) << expected.name << " params " << net->FreeParams()
                        << " vs target " << expected.params;
  EXPECT_TRUE(net->dag().IsAcyclic());
}

INSTANTIATE_TEST_SUITE_P(TableOne, RepositoryTableTest,
                         ::testing::Values(RepoCase{"alarm", 37, 46, 509},
                                           RepoCase{"hepar", 70, 123, 1453},
                                           RepoCase{"link", 724, 1125, 14211},
                                           RepoCase{"munin", 1041, 1397, 80592}),
                         [](const ::testing::TestParamInfo<RepoCase>& info) {
                           return std::string(info.param.name);
                         });

TEST(RepositoryTest, NetworksAreStableAcrossCalls) {
  EXPECT_EQ(SerializeNetwork(Alarm()), SerializeNetwork(Alarm()));
  EXPECT_EQ(SerializeNetwork(Hepar()), SerializeNetwork(Hepar()));
}

TEST(RepositoryTest, NewAlarmHasSixInflatedDomains) {
  const BayesianNetwork net = NewAlarm();
  EXPECT_EQ(net.num_variables(), 37);
  int big = 0;
  for (int i = 0; i < net.num_variables(); ++i) {
    if (net.cardinality(i) == 20) ++big;
  }
  EXPECT_EQ(big, 6);
}

TEST(RepositoryTest, NameLookupAliases) {
  EXPECT_TRUE(NetworkByName("ALARM").ok());
  EXPECT_TRUE(NetworkByName("Hepar-II").ok());
  EXPECT_TRUE(NetworkByName("new-alarm").ok());
  EXPECT_TRUE(NetworkByName("student").ok());
  EXPECT_FALSE(NetworkByName("nosuch").ok());
}

TEST(RepositoryTest, PaperTargetsExposed) {
  const std::vector<NetworkTarget> targets = PaperNetworkTargets();
  ASSERT_EQ(targets.size(), 4u);
  EXPECT_EQ(targets[0].name, "ALARM");
  EXPECT_EQ(targets[3].params, 80592);
}

TEST(RepositoryTest, CpdFloorsArePositive) {
  // Lemma 3 requires a positive lambda; the generator enforces a floor.
  EXPECT_GT(Alarm().MinCpdEntry(), 0.0);
  EXPECT_GT(Hepar().MinCpdEntry(), 0.0);
}

}  // namespace
}  // namespace dsgm
