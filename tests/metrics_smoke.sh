#!/usr/bin/env bash
# obs.metrics_smoke: run the observability demo (a real kLocalTcp cluster
# with --metrics-dump-ms-style dumping enabled) and validate the dump with
# tools/metrics_text.py --check-cluster — every line must be well-formed
# JSON and the final snapshot must show a live cluster: per-site heartbeat
# ages present, sync counts non-zero, reactor loop p99 non-zero.
#
# Usage: metrics_smoke.sh <observability_demo-binary> <metrics_text.py>
set -euo pipefail

demo_bin=$1
metrics_text=$2

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
dump="$workdir/run.metrics"

"$demo_bin" "$dump"

test -s "$dump" || { echo "FAIL: $dump is empty"; exit 1; }
python3 "$metrics_text" --check-cluster "$dump"

# The renderer itself must also survive the dump (it is the operator UI).
python3 "$metrics_text" "$dump" > /dev/null

echo "metrics_smoke: OK"
