#!/usr/bin/env bash
# obs.metrics_smoke: run the observability demo (a real kLocalTcp cluster
# with --metrics-dump-ms-style dumping enabled) and validate the dump with
# tools/metrics_text.py --check-cluster — every line must be well-formed
# JSON and the final snapshot must show a live cluster: per-site heartbeat
# ages present, sync counts non-zero, reactor loop p99 non-zero.
#
# The demo also exports the merged, skew-corrected cluster timeline as
# Chrome-trace JSON; the smoke schema-validates it with --timeline-summary
# and requires events from the coordinator AND every site, with per-site
# clock offsets embedded. The timeline is left in the working directory as
# BENCH_trace_timeline.json (a named CI artifact, like BENCH_ingest.json).
#
# Usage: metrics_smoke.sh <observability_demo-binary> <metrics_text.py>
set -euo pipefail

demo_bin=$1
metrics_text=$2

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
dump="$workdir/run.metrics"
timeline="$PWD/BENCH_trace_timeline.json"

"$demo_bin" "$dump" "$timeline"

test -s "$dump" || { echo "FAIL: $dump is empty"; exit 1; }
python3 "$metrics_text" --check-cluster "$dump"

# The renderer itself must also survive the dump (it is the operator UI).
python3 "$metrics_text" "$dump" > /dev/null

# Trace timeline: schema-valid Chrome trace JSON covering the whole cluster.
test -s "$timeline" || { echo "FAIL: $timeline is empty"; exit 1; }
python3 "$metrics_text" --timeline-summary "$timeline" > /dev/null
python3 - "$timeline" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
events = [e for e in doc["traceEvents"] if e.get("ph") == "i"]
sites = {e["args"]["site"] for e in events}
offsets = doc["otherData"]["clock_offsets_nanos"]
# The demo runs 4 kLocalTcp sites: the timeline must carry events from the
# coordinator (site -1) and every site, and an offset estimate per site.
missing = {-1, 0, 1, 2, 3} - sites
if missing:
    sys.exit(f"FAIL: timeline has no events for sites {sorted(missing)}")
if sorted(offsets) != ["0", "1", "2", "3"]:
    sys.exit(f"FAIL: expected 4 per-site clock offsets, got {sorted(offsets)}")
print(f"timeline: {len(events)} events, sites {sorted(sites)}, "
      f"offsets {offsets}")
EOF

echo "metrics_smoke: OK"
