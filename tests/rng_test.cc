// Tests for common/rng.h: determinism and distributional sanity of the
// xoshiro-based generator that drives every randomized counter decision.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace dsgm {
namespace {

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 5);
}

TEST(RngTest, SplitStreamsAreUncorrelated) {
  Rng parent(99);
  Rng child = parent.Split();
  // Crude correlation check on sign bits.
  int agree = 0;
  for (int i = 0; i < 4096; ++i) {
    agree += ((parent.Next() >> 63) == (child.Next() >> 63));
  }
  EXPECT_NEAR(agree, 2048, 200);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.NextDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(RngTest, NextBoundedCoversRangeUniformly) {
  Rng rng(11);
  constexpr int kBound = 10;
  std::vector<int> counts(kBound, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const uint64_t v = rng.NextBounded(kBound);
    ASSERT_LT(v, static_cast<uint64_t>(kBound));
    ++counts[static_cast<size_t>(v)];
  }
  for (int c : counts) EXPECT_NEAR(c, kDraws / kBound, 500);
}

TEST(RngTest, NextIntInclusiveEndpointsReached) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInt(3, 5);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 5);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  for (double p : {0.01, 0.25, 0.5, 0.9}) {
    int hits = 0;
    constexpr int kDraws = 200000;
    for (int i = 0; i < kDraws; ++i) hits += rng.NextBernoulli(p);
    EXPECT_NEAR(static_cast<double>(hits) / kDraws, p, 0.01) << "p=" << p;
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_TRUE(rng.NextBernoulli(1.5));
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_FALSE(rng.NextBernoulli(-0.5));
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.03);
}

TEST(RngTest, GammaMeanMatchesShape) {
  Rng rng(29);
  for (double shape : {0.5, 1.0, 3.0, 10.0}) {
    double sum = 0.0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) sum += rng.NextGamma(shape);
    EXPECT_NEAR(sum / kDraws, shape, 0.15 * shape) << "shape=" << shape;
  }
}

TEST(RngTest, DirichletRowsSumToOne) {
  Rng rng(31);
  for (double alpha : {0.2, 0.5, 1.0, 5.0}) {
    for (int dim : {2, 4, 20}) {
      const std::vector<double> row = rng.NextDirichlet(dim, alpha);
      ASSERT_EQ(static_cast<int>(row.size()), dim);
      double total = 0.0;
      for (double p : row) {
        ASSERT_GE(p, 0.0);
        total += p;
      }
      EXPECT_NEAR(total, 1.0, 1e-12);
    }
  }
}

TEST(RngTest, SmallAlphaDirichletIsSkewed) {
  Rng rng(37);
  // With alpha << 1 the largest coordinate should usually dominate.
  int dominated = 0;
  for (int trial = 0; trial < 500; ++trial) {
    const std::vector<double> row = rng.NextDirichlet(4, 0.1);
    const double max = *std::max_element(row.begin(), row.end());
    dominated += (max > 0.7);
  }
  EXPECT_GT(dominated, 300);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(41);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[static_cast<size_t>(rng.NextCategorical(weights))];
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kDraws), 0.6, 0.01);
}

TEST(ZipfTest, FirstRankDominates) {
  Rng rng(43);
  ZipfDistribution zipf(10, 1.2);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[static_cast<size_t>(zipf.Sample(rng))];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[5]);
  int total = 0;
  for (int c : counts) total += c;
  EXPECT_EQ(total, kDraws);
}

TEST(ZipfTest, ExponentZeroIsUniform) {
  Rng rng(47);
  ZipfDistribution zipf(4, 0.0);
  std::vector<int> counts(4, 0);
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++counts[static_cast<size_t>(zipf.Sample(rng))];
  for (int c : counts) EXPECT_NEAR(c, kDraws / 4, 600);
}

}  // namespace
}  // namespace dsgm
