// Tests for bayes/structure.h — the offline Chow-Liu structure learner.

#include <gtest/gtest.h>

#include <cmath>

#include "bayes/generator.h"
#include "bayes/sampler.h"
#include "bayes/structure.h"

namespace dsgm {
namespace {

TEST(MutualInformationTest, IndependentColumnsNearZero) {
  Rng rng(1);
  std::vector<Instance> data;
  for (int i = 0; i < 20000; ++i) {
    data.push_back({static_cast<int>(rng.NextBounded(3)),
                    static_cast<int>(rng.NextBounded(4))});
  }
  EXPECT_LT(EmpiricalMutualInformation(data, 0, 1, 3, 4), 0.005);
}

TEST(MutualInformationTest, IdenticalColumnsGiveEntropy) {
  Rng rng(2);
  std::vector<Instance> data;
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 50000; ++i) {
    const int v = static_cast<int>(rng.NextBounded(3));
    data.push_back({v, v});
    ++counts[v];
  }
  double entropy = 0.0;
  for (int c : counts) {
    const double p = c / 50000.0;
    entropy -= p * std::log(p);
  }
  EXPECT_NEAR(EmpiricalMutualInformation(data, 0, 1, 3, 3), entropy, 1e-9);
}

TEST(MutualInformationTest, SymmetricInArguments) {
  Rng rng(3);
  std::vector<Instance> data;
  for (int i = 0; i < 5000; ++i) {
    const int a = static_cast<int>(rng.NextBounded(2));
    const int b = rng.NextBernoulli(0.8) ? a : static_cast<int>(rng.NextBounded(2));
    data.push_back({a, b});
  }
  EXPECT_NEAR(EmpiricalMutualInformation(data, 0, 1, 2, 2),
              EmpiricalMutualInformation(data, 1, 0, 2, 2), 1e-12);
}

TEST(ChowLiuTest, InputValidation) {
  EXPECT_FALSE(LearnChowLiuTree({}, {2, 2}).ok());          // no data
  EXPECT_FALSE(LearnChowLiuTree({{0}}, {2}).ok());          // one variable
  EXPECT_FALSE(LearnChowLiuTree({{0, 1, 0}}, {2, 2}).ok()); // arity mismatch
  EXPECT_FALSE(LearnChowLiuTree({{0, 5}}, {2, 2}).ok());    // out of domain
  ChowLiuOptions options;
  options.root = 9;
  EXPECT_FALSE(LearnChowLiuTree({{0, 1}}, {2, 2}, options).ok());  // bad root
}

TEST(ChowLiuTest, ResultIsATreeRootedAtRequestedNode) {
  Rng rng(4);
  std::vector<Instance> data;
  for (int i = 0; i < 2000; ++i) {
    data.push_back({static_cast<int>(rng.NextBounded(2)),
                    static_cast<int>(rng.NextBounded(2)),
                    static_cast<int>(rng.NextBounded(2)),
                    static_cast<int>(rng.NextBounded(2))});
  }
  ChowLiuOptions options;
  options.root = 2;
  StatusOr<BayesianNetwork> learned =
      LearnChowLiuTree(data, {2, 2, 2, 2}, options);
  ASSERT_TRUE(learned.ok()) << learned.status();
  EXPECT_EQ(learned->dag().num_edges(), 3);  // spanning tree over 4 nodes
  EXPECT_TRUE(learned->dag().parents(2).empty());
  for (int i = 0; i < 4; ++i) {
    EXPECT_LE(learned->dag().parents(i).size(), 1u);  // tree: <= 1 parent
  }
  EXPECT_TRUE(learned->dag().IsAcyclic());
}

TEST(ChowLiuTest, RecoversTreeSkeletonFromSampledData) {
  // Ground truth: a random tree-structured network (spine only).
  NetworkSpec spec;
  spec.name = "truth-tree";
  spec.num_nodes = 12;
  spec.num_edges = 11;  // exactly a tree
  spec.min_cardinality = 2;
  spec.max_cardinality = 3;
  spec.target_params = 0;
  spec.max_parents = 1;
  spec.dirichlet_alpha = 0.25;  // strong dependencies, easy to detect
  StatusOr<BayesianNetwork> truth = GenerateNetwork(spec, 99);
  ASSERT_TRUE(truth.ok()) << truth.status();

  ForwardSampler sampler(*truth, 100);
  const std::vector<Instance> data = sampler.SampleMany(30000);
  std::vector<int> cards;
  for (int i = 0; i < truth->num_variables(); ++i) {
    cards.push_back(truth->cardinality(i));
  }
  StatusOr<BayesianNetwork> learned = LearnChowLiuTree(data, cards);
  ASSERT_TRUE(learned.ok()) << learned.status();

  // Chow-Liu provably recovers the skeleton of a tree-factored distribution
  // given enough data (all edges here have noticeable mutual information).
  EXPECT_EQ(UndirectedSkeleton(*learned), UndirectedSkeleton(*truth));
}

TEST(ChowLiuTest, LearnedCpdsApproximateTruthAlongTreeEdges) {
  NetworkSpec spec;
  spec.name = "truth-tree";
  spec.num_nodes = 6;
  spec.num_edges = 5;
  spec.max_parents = 1;
  spec.target_params = 0;
  spec.dirichlet_alpha = 0.3;
  StatusOr<BayesianNetwork> truth = GenerateNetwork(spec, 7);
  ASSERT_TRUE(truth.ok());
  ForwardSampler sampler(*truth, 8);
  const std::vector<Instance> data = sampler.SampleMany(50000);
  std::vector<int> cards;
  for (int i = 0; i < truth->num_variables(); ++i) {
    cards.push_back(truth->cardinality(i));
  }
  ChowLiuOptions options;
  options.root = 0;
  StatusOr<BayesianNetwork> learned = LearnChowLiuTree(data, cards, options);
  ASSERT_TRUE(learned.ok());

  // The learned model must reproduce the joint distribution of the truth:
  // compare probabilities of sampled assignments (tree factorizations of the
  // same distribution agree regardless of edge orientation).
  ForwardSampler probe(*truth, 9);
  Instance x;
  for (int q = 0; q < 50; ++q) {
    probe.Sample(&x);
    const double p_truth = truth->JointProbability(x);
    const double p_learned = learned->JointProbability(x);
    EXPECT_NEAR(p_learned, p_truth, 0.25 * p_truth + 1e-4);
  }
}

TEST(ChowLiuTest, ZeroAlphaUnseenRowsFallBackToUniform) {
  // Two perfectly correlated binary variables: rows for the unseen parent
  // value must become uniform when alpha = 0.
  std::vector<Instance> data(100, Instance{0, 0});
  ChowLiuOptions options;
  options.laplace_alpha = 0.0;
  StatusOr<BayesianNetwork> learned = LearnChowLiuTree(data, {2, 2}, options);
  ASSERT_TRUE(learned.ok());
  // Variable 1's CPD row for parent value 1 was never observed.
  const CpdTable& cpd = learned->cpd(1);
  if (cpd.num_rows() == 2) {
    EXPECT_DOUBLE_EQ(cpd.prob(0, 1), 0.5);
    EXPECT_DOUBLE_EQ(cpd.prob(1, 1), 0.5);
  }
}

TEST(UndirectedSkeletonTest, SortedAndOrientationInvariant) {
  Dag a(3);
  ASSERT_TRUE(a.AddEdge(0, 1).ok());
  ASSERT_TRUE(a.AddEdge(2, 1).ok());
  std::vector<Variable> vars = {{"A", 2}, {"B", 2}, {"C", 2}};
  std::vector<CpdTable> cpds;
  cpds.emplace_back(2, std::vector<int>{});
  cpds.emplace_back(2, std::vector<int>{2, 2});
  cpds.emplace_back(2, std::vector<int>{});
  StatusOr<BayesianNetwork> net =
      BayesianNetwork::Create("skel", vars, a, std::move(cpds));
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(UndirectedSkeleton(*net),
            (std::vector<std::pair<int, int>>{{0, 1}, {1, 2}}));
}

}  // namespace
}  // namespace dsgm
