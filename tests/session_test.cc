// Tests for the public Session API (include/dsgm/): one queryable session
// interface over all three backends. The headline property is the paper's
// continuous-tracking capability — Snapshot() answers Algorithm 3's QUERY
// mid-stream — checked against ground truth on every backend.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "bayes/repository.h"
#include "dsgm/dsgm.h"

namespace dsgm {
namespace {

constexpr double kEpsilon = 0.1;

SessionBuilder MakeBuilder(const BayesianNetwork& network, Backend backend) {
  SessionBuilder builder(network);
  builder.WithBackend(backend)
      .WithStrategy(TrackingStrategy::kUniform)
      .WithEpsilon(kEpsilon)
      .WithSites(3)
      .WithSeed(20260727);
  return builder;
}

/// Checks every CPD cell whose parent assignment carries real observed
/// mass against the network's ground-truth CPD. The strategy keeps each
/// counter within a (1 ± eps') band of its exact count with eps' << eps
/// (the per-variable error split), so the CPD ratio stays well within eps
/// of the empirical frequency; the empirical frequency itself needs
/// sampling slack to reach the truth, hence the >= 2000-count mass gate
/// and the eps-wide absolute bound.
void ExpectCpdsNearTruth(const ModelView& view, const BayesianNetwork& truth,
                         const char* where) {
  const CounterLayout layout(truth);
  int checked = 0;
  for (int i = 0; i < truth.num_variables(); ++i) {
    for (int64_t row = 0; row < truth.parent_cardinality(i); ++row) {
      if (view.CounterEstimate(layout.ParentId(i, row)) < 2000.0) continue;
      for (int v = 0; v < truth.cardinality(i); ++v) {
        const double estimate = view.CpdEstimate(i, v, row);
        const double actual = truth.cpd(i).prob(v, row);
        EXPECT_NEAR(estimate, actual, kEpsilon)
            << where << ": CPD(" << i << ", " << v << " | row " << row << ")";
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0) << where << ": no CPD cells had observable mass";
}

void RunMidStreamSnapshotTest(Backend backend) {
  const BayesianNetwork truth = StudentNetwork();
  StatusOr<std::unique_ptr<Session>> built = MakeBuilder(truth, backend).Build();
  ASSERT_TRUE(built.ok()) << built.status();
  Session& session = **built;
  EXPECT_EQ(session.backend(), backend);

  // First half of the stream, then a genuinely mid-run snapshot: the
  // protocol is still open (rounds outstanding, more events to come).
  // Snapshots are asynchronous on the cluster backends — pushed events may
  // still be in flight to the sites — so poll until the coordinator has
  // absorbed most of the first half (a root variable's parent counter
  // counts every event); each poll is itself a live mid-run QUERY.
  ASSERT_TRUE(session.StreamGroundTruth(25000).ok());
  const CounterLayout layout(truth);
  StatusOr<ModelView> mid = session.Snapshot();
  ASSERT_TRUE(mid.ok()) << mid.status();
  for (int poll = 0;
       poll < 500 && mid->CounterEstimate(layout.ParentId(0, 0)) < 20000.0;
       ++poll) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    mid = session.Snapshot();
    ASSERT_TRUE(mid.ok()) << mid.status();
  }
  EXPECT_FALSE(mid->empty());
  EXPECT_EQ(mid->events_observed(), 25000);
  ExpectCpdsNearTruth(*mid, truth, "mid-stream");

  // Second half; the old snapshot must stay immutable while the model
  // moves on underneath it.
  const double frozen = mid->CpdEstimate(0, 0, 0);
  ASSERT_TRUE(session.StreamGroundTruth(25000).ok());
  EXPECT_DOUBLE_EQ(mid->CpdEstimate(0, 0, 0), frozen);

  StatusOr<RunReport> report = session.Finish();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->backend, backend);
  EXPECT_EQ(report->events_processed, 50000);
  // 0.1, not 0.05: in-flight reports at shutdown make the realized error
  // scheduling-dependent, and sanitizer timings push short runs past
  // tighter bounds (same rationale as ClusterTest.SingleSiteWorks).
  EXPECT_LT(report->max_counter_rel_error, 0.1);
  EXPECT_GT(report->comm.TotalMessages(), 0u);
  ExpectCpdsNearTruth(report->model, truth, "final");

  // The session stays queryable (returning the final model) but rejects
  // further events.
  StatusOr<ModelView> after = session.Snapshot();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->events_observed(), 50000);
  const Status pushed = session.Push(Instance(5, 0));
  EXPECT_EQ(pushed.code(), StatusCode::kFailedPrecondition);
}

/// Regression for a defect the thread-safety annotation pass surfaced: the
/// final model was written AFTER the finished_ flag flipped, while the
/// post-Finish Snapshot path read it bare — so a snapshot racing Finish (a
/// contract violation, but one that must stay memory-safe) could read a
/// half-written ModelView. The view is now mutex-guarded on both backends'
/// paths; pollers here deliberately overlap Finish and must get either a
/// valid view or a defined error, never a torn read (TSan covers this
/// suite in CI).
void RunSnapshotRacesFinishTest(Backend backend) {
  const BayesianNetwork truth = StudentNetwork();
  StatusOr<std::unique_ptr<Session>> built = MakeBuilder(truth, backend).Build();
  ASSERT_TRUE(built.ok()) << built.status();
  Session& session = **built;
  ASSERT_TRUE(session.StreamGroundTruth(5000).ok());

  std::atomic<bool> stop{false};
  std::vector<std::thread> pollers;
  for (int t = 0; t < 4; ++t) {
    pollers.emplace_back([&session, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        StatusOr<ModelView> view = session.Snapshot();
        if (view.ok()) {
          // A successful snapshot is never torn: it is either the live
          // model or the complete final model.
          EXPECT_GE(view->events_observed(), 0);
        }
      }
    });
  }
  StatusOr<RunReport> report = session.Finish();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& poller : pollers) poller.join();
  ASSERT_TRUE(report.ok()) << report.status();

  // With the race over, the finished session serves the final model.
  StatusOr<ModelView> after = session.Snapshot();
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_FALSE(after->empty());
  EXPECT_EQ(after->events_observed(), 5000);
}

TEST(SessionTest, SnapshotRacingFinishStaysMemorySafeInProcess) {
  RunSnapshotRacesFinishTest(Backend::kInProcess);
}

TEST(SessionTest, SnapshotRacingFinishStaysMemorySafeThreads) {
  RunSnapshotRacesFinishTest(Backend::kThreads);
}

TEST(SessionTest, SnapshotMidStreamInProcess) {
  RunMidStreamSnapshotTest(Backend::kInProcess);
}

TEST(SessionTest, SnapshotMidStreamThreads) {
  RunMidStreamSnapshotTest(Backend::kThreads);
}

TEST(SessionTest, SnapshotMidStreamLocalTcp) {
  RunMidStreamSnapshotTest(Backend::kLocalTcp);
}

TEST(SessionTest, ExactModeAgreesAcrossAllBackends) {
  // Identical config => identical event stream on every backend (the seed
  // schedule is shared); in exact mode the final counter estimates must be
  // bit-identical to the exact counts, hence equal across backends.
  const BayesianNetwork truth = StudentNetwork();
  std::vector<ModelView> models;
  for (Backend backend :
       {Backend::kInProcess, Backend::kThreads, Backend::kLocalTcp}) {
    SessionBuilder builder(truth);
    builder.WithBackend(backend)
        .WithStrategy(TrackingStrategy::kExactMle)
        .WithSites(3)
        .WithSeed(99);
    StatusOr<std::unique_ptr<Session>> session = builder.Build();
    ASSERT_TRUE(session.ok()) << session.status();
    ASSERT_TRUE((*session)->StreamGroundTruth(20000).ok());
    StatusOr<RunReport> report = (*session)->Finish();
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_DOUBLE_EQ(report->max_counter_rel_error, 0.0)
        << ToString(backend);
    models.push_back(report->model);
  }
  for (int64_t c = 0; c < models[0].num_counters(); ++c) {
    ASSERT_DOUBLE_EQ(models[0].CounterEstimate(c), models[1].CounterEstimate(c))
        << "counter " << c;
    ASSERT_DOUBLE_EQ(models[0].CounterEstimate(c), models[2].CounterEstimate(c))
        << "counter " << c;
  }
}

TEST(SessionTest, BuilderValidatesConfiguration) {
  const BayesianNetwork net = StudentNetwork();
  {
    SessionBuilder builder(net);
    builder.WithEpsilon(-0.5);
    EXPECT_FALSE(builder.Build().ok());
  }
  {
    SessionBuilder builder(net);
    builder.WithSites(0);
    EXPECT_FALSE(builder.Build().ok());
  }
  {
    SessionBuilder builder(net);
    builder.WithBatchSize(0);
    EXPECT_FALSE(builder.Build().ok());
  }
  {
    // Transport factories only make sense for the threaded backend.
    SessionBuilder builder(net);
    builder.WithBackend(Backend::kInProcess).WithTransport(MakeLoopbackTransport);
    const StatusOr<std::unique_ptr<Session>> built = builder.Build();
    ASSERT_FALSE(built.ok());
    EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
  }
  {
    // Listener options only make sense for the local-TCP backend.
    SessionBuilder builder(net);
    builder.WithBackend(Backend::kThreads).WithListenPort(7700);
    EXPECT_FALSE(builder.Build().ok());
  }
}

TEST(SessionTest, PushValidatesInstances) {
  const BayesianNetwork net = StudentNetwork();
  StatusOr<std::unique_ptr<Session>> session =
      MakeBuilder(net, Backend::kInProcess).Build();
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->Push(Instance{0, 0}).code(),
            StatusCode::kInvalidArgument);  // wrong arity
  Instance bad(static_cast<size_t>(net.num_variables()), 0);
  bad[0] = net.cardinality(0);  // out of domain
  EXPECT_EQ((*session)->Push(bad).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ((*session)->events_pushed(), 0);
  Instance good(static_cast<size_t>(net.num_variables()), 0);
  EXPECT_TRUE((*session)->Push(good).ok());
  EXPECT_EQ((*session)->events_pushed(), 1);
}

TEST(SessionTest, EventSourcesDrainIntoTheModel) {
  const BayesianNetwork net = StudentNetwork();
  StatusOr<std::unique_ptr<Session>> session =
      MakeBuilder(net, Backend::kInProcess).Build();
  ASSERT_TRUE(session.ok());

  // Replay a recorded trace.
  std::vector<Instance> trace(100, Instance(5, 0));
  auto replay = MakeReplaySource(trace);
  ASSERT_TRUE((*session)->Drain(replay.get()).ok());
  EXPECT_EQ((*session)->events_pushed(), 100);

  // Callback source: 50 more events.
  int remaining = 50;
  auto callback = MakeCallbackSource([&remaining](Instance* out) {
    if (remaining-- <= 0) return false;
    *out = Instance(5, 1);
    return true;
  });
  ASSERT_TRUE((*session)->Drain(callback.get()).ok());
  EXPECT_EQ((*session)->events_pushed(), 150);

  // Sampler source over the ground truth.
  auto sampler = MakeSamplerSource(net, /*seed=*/5, /*limit=*/200);
  ASSERT_TRUE((*session)->Drain(sampler.get()).ok());
  EXPECT_EQ((*session)->events_pushed(), 350);

  StatusOr<RunReport> report = (*session)->Finish();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->events_processed, 350);
  EXPECT_EQ(report->model.events_observed(), 350);
}

TEST(SessionTest, InProcessViewMatchesDirectTrackerQueries) {
  // The quickstart path: an exact-mode in-process session whose snapshot
  // must reproduce the empirical frequencies exactly.
  const BayesianNetwork net = StudentNetwork();
  SessionBuilder builder(net);
  builder.WithStrategy(TrackingStrategy::kExactMle).WithSites(4).WithSeed(1);
  StatusOr<std::unique_ptr<Session>> session = builder.Build();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->StreamGroundTruth(30000).ok());
  StatusOr<ModelView> view = (*session)->Snapshot();
  ASSERT_TRUE(view.ok());
  // Exact mode: the joint estimate over a full instance is a product of
  // empirical frequencies, which converges to the truth.
  const Instance probe = {0, 1, 0, 1, 1};
  EXPECT_NEAR(view->JointProbability(probe), net.JointProbability(probe),
              0.02);
  // Ancestrally-closed partial query agrees with the chain-rule product.
  PartialAssignment pa;
  pa.nodes = {0, 1, 2};
  pa.values = {0, 1, 0};
  EXPECT_NEAR(view->JointProbability(pa), net.ClosedSubsetProbability(pa), 0.02);
}

}  // namespace
}  // namespace dsgm
