// Unit tests for the cluster-wide tracing stack (common/tracing.h) and the
// kTraceChunk wire codec: chunk round-trip and truncation safety, drain
// cursor resume, sequence-gap loss accounting on the ClusterTraceBoard,
// clock-skew estimation under symmetric and asymmetric delay, skew-corrected
// timeline merging, Chrome-trace / flight-record JSON shapes, and the alert
// rules' firing thresholds. The forged-site-id rejection paths live with
// their layers: protocol_spec_test (spec machine) and metrics_test (reactor).

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/tracing.h"
#include "net/codec.h"
#include "net/wire.h"

namespace dsgm {
namespace {

constexpr int64_t kMs = 1'000'000;
constexpr int64_t kSec = 1'000'000'000;

// --- ClockSkewEstimator ----------------------------------------------------

TEST(ClockSkewEstimatorTest, SymmetricSampleRecoversTheExactOffset) {
  // Site clock = coordinator clock + 5 ms, 1 ms delay on both legs.
  constexpr int64_t kOffset = 5 * kMs;
  constexpr int64_t kDelay = 1 * kMs;
  ClockSkewEstimator skew;
  const int64_t t1 = 100 * kMs;                    // echo leaves coordinator
  const int64_t t2 = t1 + kDelay + kOffset;        // echo arrives (site clock)
  const int64_t t3 = 120 * kMs + kOffset;          // next beat leaves (site)
  const int64_t t4 = 120 * kMs + kDelay;           // beat arrives (coordinator)
  skew.AddSample(t1, t2, t3, t4);
  EXPECT_EQ(skew.offset_nanos(), kOffset);
  EXPECT_EQ(skew.rtt_nanos(), 2 * kDelay);
  EXPECT_EQ(skew.samples(), 1u);
  EXPECT_EQ(skew.two_way_samples(), 1u);
}

TEST(ClockSkewEstimatorTest, AsymmetricDelayErrorIsHalfTheAsymmetry) {
  // True offset 0, but the echo leg takes 1 ms and the heartbeat leg 3 ms.
  // The NTP estimate's error is exactly half the delay asymmetry.
  constexpr int64_t kForward = 1 * kMs;
  constexpr int64_t kBackward = 3 * kMs;
  ClockSkewEstimator skew;
  // T1 = 0 would read as "no echo yet" (one-way fallback), so anchor the
  // exchange away from the epoch.
  const int64_t t1 = 100 * kMs;
  const int64_t t2 = t1 + kForward;
  const int64_t t3 = 110 * kMs;
  const int64_t t4 = t3 + kBackward;
  skew.AddSample(t1, t2, t3, t4);
  EXPECT_EQ(skew.offset_nanos(), -(kBackward - kForward) / 2);
  EXPECT_LE(std::abs(skew.offset_nanos()), (kBackward - kForward) / 2);
}

TEST(ClockSkewEstimatorTest, OneWaySampleSeedsTheFilterWithDelayBias) {
  // Before the first echo round-trip the site sends T1 = T2 = 0; the
  // estimator falls back to T3 - T4 = offset - delay.
  constexpr int64_t kOffset = 2 * kMs;
  constexpr int64_t kDelay = 1 * kMs;
  ClockSkewEstimator skew;
  const int64_t t3 = 50 * kMs + kOffset;
  const int64_t t4 = 50 * kMs + kDelay;
  skew.AddSample(0, 0, t3, t4);
  EXPECT_EQ(skew.offset_nanos(), kOffset - kDelay);
  EXPECT_EQ(skew.samples(), 1u);
  EXPECT_EQ(skew.two_way_samples(), 0u);
  EXPECT_EQ(skew.rtt_nanos(), 0);
}

TEST(ClockSkewEstimatorTest, EwmaTracksAStepChangeInOffset) {
  ClockSkewEstimator skew;
  // Seed at offset 0, then 20 symmetric samples at offset +10 ms. With
  // alpha = 1/8 the residue of the seed is (7/8)^20 ~ 7%.
  skew.AddSample(100 * kMs, 101 * kMs, 110 * kMs, 111 * kMs);
  ASSERT_EQ(skew.offset_nanos(), 0);
  constexpr int64_t kOffset = 10 * kMs;
  for (int i = 1; i <= 20; ++i) {
    const int64_t t1 = i * 100 * kMs;
    skew.AddSample(t1, t1 + kMs + kOffset, t1 + 20 * kMs + kOffset,
                   t1 + 20 * kMs + kMs);
  }
  EXPECT_GT(skew.offset_nanos(), 9 * kMs);
  EXPECT_LE(skew.offset_nanos(), kOffset);
}

// --- kTraceChunk codec -----------------------------------------------------

TraceEvent MakeEvent(int64_t t_nanos, TraceEventType type, int32_t site,
                     int64_t arg) {
  TraceEvent event;
  event.t_nanos = t_nanos;
  event.type = type;
  event.site = site;
  event.arg = arg;
  return event;
}

TEST(TraceChunkCodecTest, RoundTripsExtremes) {
  TraceChunk chunk;
  chunk.site = 3;
  chunk.first_seq = (uint64_t{1} << 40) + 17;  // deep into a long run
  // Out-of-order timestamps (negative delta), a negative absolute time, the
  // wildcard site, and the full arg range all must survive the delta coding.
  chunk.events.push_back(
      MakeEvent(1'000'000'000, TraceEventType::kHeartbeat, 0, 42));
  chunk.events.push_back(
      MakeEvent(999'000'000, TraceEventType::kSyncMessage, -1, -7));
  chunk.events.push_back(
      MakeEvent(-5, TraceEventType::kAlert, 2, INT64_MIN + 1));
  chunk.events.push_back(
      MakeEvent(2'000'000'000, TraceEventType::kRoundAdvance, 1, INT64_MAX));

  std::vector<uint8_t> bytes;
  AppendFrame(MakeTraceChunk(chunk), &bytes);
  Frame decoded;
  size_t consumed = 0;
  const Status status = DecodeFrame(bytes.data(), bytes.size(), &decoded, &consumed);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(consumed, bytes.size());
  ASSERT_EQ(decoded.type, FrameType::kTraceChunk);
  EXPECT_TRUE(decoded.trace == chunk);
}

TEST(TraceChunkCodecTest, EmptyChunkRoundTrips) {
  TraceChunk chunk;
  chunk.site = 0;
  chunk.first_seq = 9;
  std::vector<uint8_t> bytes;
  AppendFrame(MakeTraceChunk(chunk), &bytes);
  Frame decoded;
  size_t consumed = 0;
  ASSERT_TRUE(DecodeFrame(bytes.data(), bytes.size(), &decoded, &consumed).ok());
  EXPECT_TRUE(decoded.trace == chunk);
}

TEST(TraceChunkCodecTest, EveryTruncationFailsCleanly) {
  TraceChunk chunk;
  chunk.site = 1;
  chunk.first_seq = 100;
  for (int i = 0; i < 8; ++i) {
    chunk.events.push_back(
        MakeEvent(i * 1000, TraceEventType::kStatsReport, 1, i));
  }
  std::vector<uint8_t> bytes;
  AppendFrame(MakeTraceChunk(chunk), &bytes);
  for (size_t len = 0; len < bytes.size(); ++len) {
    Frame decoded;
    size_t consumed = 0;
    EXPECT_FALSE(DecodeFrame(bytes.data(), len, &decoded, &consumed).ok())
        << "prefix of " << len << " bytes decoded";
  }
}

TEST(TraceChunkCodecTest, BadEventTypeTagIsRejected) {
  TraceChunk chunk;
  chunk.site = 1;
  chunk.events.push_back(MakeEvent(0, static_cast<TraceEventType>(99), 1, 0));
  std::vector<uint8_t> bytes;
  AppendFrame(MakeTraceChunk(chunk), &bytes);
  Frame decoded;
  size_t consumed = 0;
  EXPECT_FALSE(DecodeFrame(bytes.data(), bytes.size(), &decoded, &consumed).ok());
}

// --- TraceDrainCursor ------------------------------------------------------

TEST(TraceDrainTest, CursorResumesWhereTheLastDrainStopped) {
  SetMetricsEnabled(true);
  TraceDrainCursor cursor;
  std::vector<TraceEvent> discard;
  uint64_t first_seq = 0;
  DrainTraceEvents(&cursor, &discard, &first_seq);  // swallow history
  const uint64_t base = cursor.next_seq;

  Trace(TraceEventType::kHeartbeat, 7, 1);
  Trace(TraceEventType::kHeartbeat, 7, 2);
  Trace(TraceEventType::kHeartbeat, 7, 3);
  std::vector<TraceEvent> batch1;
  ASSERT_EQ(DrainTraceEvents(&cursor, &batch1, &first_seq), 3u);
  EXPECT_EQ(first_seq, base);
  EXPECT_EQ(batch1[0].arg, 1);
  EXPECT_EQ(batch1[2].arg, 3);

  Trace(TraceEventType::kSyncMessage, 7, 4);
  Trace(TraceEventType::kSyncMessage, 7, 5);
  std::vector<TraceEvent> batch2;
  ASSERT_EQ(DrainTraceEvents(&cursor, &batch2, &first_seq), 2u);
  // The global sequence is gapless across drains — that is what lets the
  // coordinator detect loss when a chunk goes missing.
  EXPECT_EQ(first_seq, base + 3);
  EXPECT_EQ(cursor.next_seq, base + 5);

  std::vector<TraceEvent> batch3;
  EXPECT_EQ(DrainTraceEvents(&cursor, &batch3, &first_seq), 0u);
}

// --- ClusterTraceBoard -----------------------------------------------------

TEST(ClusterTraceBoardTest, SequenceGapsCountAsLossOverlapsDeduplicate) {
  ClusterTraceBoard board(2);
  std::vector<TraceEvent> two = {
      MakeEvent(10, TraceEventType::kHeartbeat, 0, 0),
      MakeEvent(20, TraceEventType::kHeartbeat, 0, 1)};
  ASSERT_TRUE(board.Ingest(0, 0, two));
  EXPECT_EQ(board.EventsIngested(0), 2u);
  EXPECT_EQ(board.EventsLost(0), 0u);

  // The next chunk starts at seq 5: seqs 2..4 were overwritten on the site
  // (or their chunk was dropped with the connection) — that is loss, not an
  // error.
  std::vector<TraceEvent> late = {MakeEvent(50, TraceEventType::kHeartbeat, 0, 5)};
  ASSERT_TRUE(board.Ingest(0, 5, late));
  EXPECT_EQ(board.EventsIngested(0), 3u);
  EXPECT_EQ(board.EventsLost(0), 3u);

  // A reconnect replay overlapping already-folded sequence positions is
  // deduplicated, not double-counted.
  std::vector<TraceEvent> replay = {
      MakeEvent(40, TraceEventType::kHeartbeat, 0, 4),
      MakeEvent(50, TraceEventType::kHeartbeat, 0, 5)};
  ASSERT_TRUE(board.Ingest(0, 4, replay));
  EXPECT_EQ(board.EventsIngested(0), 3u);
  EXPECT_EQ(board.EventsLost(0), 3u);
  EXPECT_EQ(board.ChunksIngested(0), 3u);

  EXPECT_FALSE(board.Ingest(2, 0, two));   // out of range
  EXPECT_FALSE(board.Ingest(-1, 0, two));  // forged / nonsense id
  EXPECT_EQ(board.EventsIngested(1), 0u);  // the other site is untouched
}

TEST(ClusterTraceBoardTest, EvictionKeepsTheNewestEvents) {
  ClusterTraceBoard board(1);
  const size_t total = ClusterTraceBoard::kMaxEventsPerSite + 100;
  std::vector<TraceEvent> events;
  events.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    events.push_back(MakeEvent(static_cast<int64_t>(i), TraceEventType::kHeartbeat,
                               0, static_cast<int64_t>(i)));
  }
  ASSERT_TRUE(board.Ingest(0, 0, events));
  EXPECT_EQ(board.EventsIngested(0), total);  // evicted events still counted

  size_t kept = 0;
  int64_t oldest_arg = INT64_MAX;
  for (const ClusterTraceEvent& e : board.MergedClusterTimeline()) {
    if (e.origin != 0) continue;  // skip this process's own rings
    ++kept;
    oldest_arg = std::min(oldest_arg, e.event.arg);
  }
  EXPECT_EQ(kept, ClusterTraceBoard::kMaxEventsPerSite);
  EXPECT_EQ(oldest_arg, 100);  // the 100 oldest were evicted
}

TEST(ClusterTraceBoardTest, MergedTimelineCorrectsSiteClocksOntoCoordinator) {
  ClusterTraceBoard board(1);
  // One symmetric sample fixes the offset exactly at +5 ms.
  constexpr int64_t kOffset = 5 * kMs;
  board.AddSkewSample(0, 100 * kMs, 100 * kMs + kMs + kOffset,
                      120 * kMs + kOffset, 120 * kMs + kMs);
  ASSERT_EQ(board.OffsetsNanos()[0], kOffset);

  std::vector<TraceEvent> events = {
      MakeEvent(kSec + kOffset, TraceEventType::kSyncMessage, 0, 1)};
  ASSERT_TRUE(board.Ingest(0, 0, events));
  bool found = false;
  for (const ClusterTraceEvent& e : board.MergedClusterTimeline()) {
    if (e.origin != 0) continue;
    found = true;
    EXPECT_EQ(e.event.t_nanos, kSec);  // site clock -> coordinator clock
  }
  EXPECT_TRUE(found);
}

// --- JSON renderers --------------------------------------------------------

TEST(TimelineJsonTest, ChromeJsonCarriesProcessesEventsAndOffsets) {
  std::vector<ClusterTraceEvent> timeline;
  timeline.push_back(
      {MakeEvent(2'000'000, TraceEventType::kHeartbeat, -1, 0), -1});
  timeline.push_back(
      {MakeEvent(3'000'000, TraceEventType::kSyncMessage, 0, 4), 0});
  const std::string json =
      TimelineToChromeJson(timeline, std::vector<int64_t>{5 * kMs});

  // Process metadata for both origins, pid = origin + 1.
  EXPECT_NE(json.find("\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,"
                      "\"args\":{\"name\":\"coordinator\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"site 0\"}"), std::string::npos);
  // Instant events with microsecond timestamps and site/arg args.
  EXPECT_NE(json.find("\"ph\":\"i\",\"s\":\"g\",\"name\":\"sync_message\""),
            std::string::npos);
  EXPECT_NE(json.find("\"ts\":3000.000"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"site\":0,\"arg\":4}"), std::string::npos);
  // The applied correction is embedded for the reader.
  EXPECT_NE(json.find("\"clock_offsets_nanos\":{\"0\":5000000}"),
            std::string::npos);
}

TEST(TimelineJsonTest, FlightRecordEscapesTheReasonAndListsTheTimeline) {
  FlightRecord record;
  record.failure_reason = "site 2 \"died\"\nmid-run";
  record.offsets_nanos = {11, -22};
  record.trace_events_lost = 7;
  record.timeline.push_back(
      {MakeEvent(4'000'000, TraceEventType::kProtocolViolation, 2, 8), 2});
  const std::string json = FlightRecordToJson(record);

  EXPECT_NE(json.find("\"failure_reason\":\"site 2 \\\"died\\\"\\u000amid-run\""),
            std::string::npos);
  EXPECT_NE(json.find("\"clock_offsets_nanos\":[11,-22]"), std::string::npos);
  EXPECT_NE(json.find("\"trace_events_lost\":7"), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"protocol_violation\",\"site\":2,\"arg\":8,"
                      "\"origin\":2"),
            std::string::npos);
  // The metrics snapshot is embedded as a JSON object, not a string.
  EXPECT_NE(json.find("\"metrics\":{"), std::string::npos);
}

// --- AlertEngine -----------------------------------------------------------

SiteHealth MakeHealth(int site, bool alive, double age_ms, int64_t events,
                      uint64_t syncs) {
  SiteHealth health;
  health.site = site;
  health.alive = alive;
  health.heartbeat_age_ms = age_ms;
  health.events_processed = events;
  health.syncs_sent = syncs;
  return health;
}

TEST(AlertEngineTest, HeartbeatStaleIsEdgeTriggeredAndRearms) {
  AlertConfig config;
  config.heartbeat_interval_ms = 100.0;
  config.stale_multiplier = 3.0;  // threshold: 300 ms
  AlertEngine engine(config);

  int64_t now = kSec;
  std::vector<Alert> fired =
      engine.Evaluate({MakeHealth(0, true, 500.0, 0, 0)}, now);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].rule, AlertRule::kHeartbeatStale);
  EXPECT_EQ(fired[0].site, 0);
  EXPECT_DOUBLE_EQ(fired[0].value, 500.0);
  EXPECT_DOUBLE_EQ(fired[0].threshold, 300.0);

  // Still stale: latched, no re-fire.
  now += kSec;
  EXPECT_TRUE(engine.Evaluate({MakeHealth(0, true, 600.0, 0, 0)}, now).empty());
  // Recovered: the rule re-arms...
  now += kSec;
  EXPECT_TRUE(engine.Evaluate({MakeHealth(0, true, 50.0, 0, 0)}, now).empty());
  // ...and fires again on the next crossing.
  now += kSec;
  fired = engine.Evaluate({MakeHealth(0, true, 400.0, 0, 0)}, now);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(engine.alerts_fired(), 2u);

  // A dead site is the liveness machinery's problem, not a staleness alert.
  now += kSec;
  EXPECT_TRUE(
      engine.Evaluate({MakeHealth(0, false, 9000.0, 0, 0)}, now).empty());
}

TEST(AlertEngineTest, SyncRateCollapseFiresAgainstTheTrailingMean) {
  AlertConfig config;
  config.heartbeat_interval_ms = 100.0;
  config.warmup_ticks = 2;
  AlertEngine engine(config);

  int64_t now = kSec;
  uint64_t syncs = 0;
  // Warm up at a steady 100 syncs/sec.
  for (int tick = 0; tick < 4; ++tick) {
    syncs += 100;
    EXPECT_TRUE(
        engine.Evaluate({MakeHealth(0, true, 10.0, 0, syncs)}, now).empty())
        << "tick " << tick;
    now += kSec;
  }
  // The site stops answering: rate 0 < 0.2 x trailing mean.
  std::vector<Alert> fired =
      engine.Evaluate({MakeHealth(0, true, 10.0, 0, syncs)}, now);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].rule, AlertRule::kSyncRateCollapse);
  EXPECT_DOUBLE_EQ(fired[0].value, 0.0);
  EXPECT_GT(fired[0].threshold, 0.0);
  // Latched while the collapse persists.
  now += kSec;
  EXPECT_TRUE(
      engine.Evaluate({MakeHealth(0, true, 10.0, 0, syncs)}, now).empty());
}

TEST(AlertEngineTest, EventRateOutlierComparesAgainstTheClusterMedian) {
  AlertConfig config;
  config.heartbeat_interval_ms = 100.0;
  config.warmup_ticks = 2;
  AlertEngine engine(config);

  int64_t now = kSec;
  int64_t events[3] = {0, 0, 0};
  auto snapshot = [&events] {
    return std::vector<SiteHealth>{
        MakeHealth(0, true, 10.0, events[0], 0),
        MakeHealth(1, true, 10.0, events[1], 0),
        MakeHealth(2, true, 10.0, events[2], 0)};
  };
  for (int tick = 0; tick < 4; ++tick) {
    for (int64_t& e : events) e += 1000;
    EXPECT_TRUE(engine.Evaluate(snapshot(), now).empty()) << "tick " << tick;
    now += kSec;
  }
  // Site 2 straggles at 1% of the cluster median.
  events[0] += 1000;
  events[1] += 1000;
  events[2] += 10;
  std::vector<Alert> fired = engine.Evaluate(snapshot(), now);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].rule, AlertRule::kEventRateOutlier);
  EXPECT_EQ(fired[0].site, 2);
  EXPECT_DOUBLE_EQ(fired[0].value, 10.0);
  EXPECT_DOUBLE_EQ(fired[0].threshold, 0.2 * 1000.0);
}

TEST(AlertEngineTest, IdleClustersAndWarmupNeverFireRateRules) {
  AlertConfig config;
  config.heartbeat_interval_ms = 100.0;
  config.warmup_ticks = 3;
  AlertEngine engine(config);

  // A cluster that never syncs and never processes events is idle, not
  // collapsed: every reference rate sits below min_rate_per_sec.
  int64_t now = kSec;
  for (int tick = 0; tick < 8; ++tick) {
    EXPECT_TRUE(
        engine.Evaluate({MakeHealth(0, true, 10.0, 0, 0),
                         MakeHealth(1, true, 10.0, 0, 0)},
                        now)
            .empty())
        << "tick " << tick;
    now += kSec;
  }
  EXPECT_EQ(engine.alerts_fired(), 0u);
}

TEST(AlertEngineTest, FiringRecordsCountersAndAKAlertTraceEvent) {
  SetMetricsEnabled(true);
  const uint64_t total_before =
      MetricsRegistry::Global().GetCounter("obs.alerts.total")->Value();
  const uint64_t stale_before = MetricsRegistry::Global()
                                    .GetCounter("obs.alerts.heartbeat_stale")
                                    ->Value();
  TraceDrainCursor cursor;
  std::vector<TraceEvent> discard;
  uint64_t first_seq = 0;
  DrainTraceEvents(&cursor, &discard, &first_seq);

  AlertConfig config;
  config.heartbeat_interval_ms = 100.0;
  AlertEngine engine(config);
  ASSERT_EQ(engine.Evaluate({MakeHealth(3, true, 900.0, 0, 0)}, kSec).size(),
            1u);

  EXPECT_EQ(MetricsRegistry::Global().GetCounter("obs.alerts.total")->Value(),
            total_before + 1);
  EXPECT_EQ(MetricsRegistry::Global()
                .GetCounter("obs.alerts.heartbeat_stale")
                ->Value(),
            stale_before + 1);
  std::vector<TraceEvent> drained;
  DrainTraceEvents(&cursor, &drained, &first_seq);
  bool saw_alert = false;
  for (const TraceEvent& event : drained) {
    if (event.type != TraceEventType::kAlert) continue;
    saw_alert = true;
    EXPECT_EQ(event.site, 3);
    EXPECT_EQ(event.arg, static_cast<int64_t>(AlertRule::kHeartbeatStale));
  }
  EXPECT_TRUE(saw_alert);
}

}  // namespace
}  // namespace dsgm
