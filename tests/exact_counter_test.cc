// Tests for monitor/exact_counter.h.

#include <gtest/gtest.h>

#include "monitor/exact_counter.h"

namespace dsgm {
namespace {

TEST(ExactCounterTest, CountsExactly) {
  CommStats stats;
  ExactCounterFamily family(4, 3, &stats);
  for (int i = 0; i < 100; ++i) family.Increment(0, i % 3);
  for (int i = 0; i < 7; ++i) family.Increment(2, 0);
  EXPECT_DOUBLE_EQ(family.Estimate(0), 100.0);
  EXPECT_DOUBLE_EQ(family.Estimate(1), 0.0);
  EXPECT_DOUBLE_EQ(family.Estimate(2), 7.0);
  EXPECT_EQ(family.ExactTotal(0), 100u);
  EXPECT_EQ(family.ExactTotal(2), 7u);
}

TEST(ExactCounterTest, OneMessagePerIncrement) {
  CommStats stats;
  ExactCounterFamily family(2, 5, &stats);
  for (int i = 0; i < 250; ++i) {
    EXPECT_TRUE(family.Increment(i % 2, i % 5));
  }
  EXPECT_EQ(stats.update_messages, 250u);
  EXPECT_EQ(stats.broadcast_messages, 0u);
  EXPECT_EQ(stats.sync_messages, 0u);
  EXPECT_EQ(stats.TotalMessages(), 250u);
  EXPECT_GT(stats.bytes_up, 0u);
}

TEST(ExactCounterTest, AccessorsAndMemory) {
  CommStats stats;
  ExactCounterFamily family(10, 4, &stats);
  EXPECT_EQ(family.num_counters(), 10);
  EXPECT_EQ(family.num_sites(), 4);
  EXPECT_EQ(family.MemoryBytes(), 10 * sizeof(uint64_t));
}

TEST(CommStatsTest, AccumulateAndPrint) {
  CommStats a;
  a.update_messages = 5;
  a.broadcast_messages = 2;
  CommStats b;
  b.update_messages = 3;
  b.sync_messages = 1;
  a += b;
  EXPECT_EQ(a.update_messages, 8u);
  EXPECT_EQ(a.TotalMessages(), 11u);
  EXPECT_NE(a.ToString().find("updates=8"), std::string::npos);
}

}  // namespace
}  // namespace dsgm
