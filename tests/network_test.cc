// Tests for bayes/network.h using the hand-coded student network whose
// probabilities can be checked by hand.

#include <gtest/gtest.h>

#include <cmath>

#include "bayes/network.h"
#include "bayes/repository.h"

namespace dsgm {
namespace {

TEST(NetworkTest, CreateValidatesShapes) {
  std::vector<Variable> variables = {{"A", 2}, {"B", 2}};
  Dag dag(2);
  ASSERT_TRUE(dag.AddEdge(0, 1).ok());

  // CPD of B must have parent cards {2}.
  std::vector<CpdTable> wrong;
  wrong.emplace_back(2, std::vector<int>{});
  wrong.emplace_back(2, std::vector<int>{3});  // wrong parent cardinality
  EXPECT_FALSE(
      BayesianNetwork::Create("bad", variables, dag, std::move(wrong)).ok());

  std::vector<CpdTable> right;
  right.emplace_back(2, std::vector<int>{});
  right.emplace_back(2, std::vector<int>{2});
  EXPECT_TRUE(
      BayesianNetwork::Create("good", variables, dag, std::move(right)).ok());
}

TEST(NetworkTest, CreateRejectsCycles) {
  std::vector<Variable> variables = {{"A", 2}, {"B", 2}};
  Dag dag(2);
  ASSERT_TRUE(dag.AddEdge(0, 1).ok());
  ASSERT_TRUE(dag.AddEdge(1, 0).ok());
  std::vector<CpdTable> cpds;
  cpds.emplace_back(2, std::vector<int>{2});
  cpds.emplace_back(2, std::vector<int>{2});
  EXPECT_FALSE(BayesianNetwork::Create("cyclic", variables, dag, std::move(cpds)).ok());
}

TEST(NetworkTest, CreateRejectsCountMismatches) {
  std::vector<Variable> variables = {{"A", 2}};
  Dag dag(2);  // 2 nodes vs 1 variable
  std::vector<CpdTable> cpds;
  cpds.emplace_back(2, std::vector<int>{});
  EXPECT_FALSE(BayesianNetwork::Create("bad", variables, dag, std::move(cpds)).ok());
}

TEST(StudentNetworkTest, StructureAndCounts) {
  const BayesianNetwork net = StudentNetwork();
  EXPECT_EQ(net.num_variables(), 5);
  EXPECT_EQ(net.dag().num_edges(), 4);
  // Free params: D 1, I 1, G 4*2=8, S 2*1=2, L 3*1=3 => 15.
  EXPECT_EQ(net.FreeParams(), 15);
  EXPECT_EQ(net.cardinality(2), 3);
  EXPECT_EQ(net.parent_cardinality(2), 4);
  EXPECT_EQ(net.parent_cardinality(0), 1);
  // Joint cells: 2 + 2 + 12 + 4 + 6 = 26; parent cells: 1+1+4+2+3 = 11.
  EXPECT_EQ(net.TotalJointCells(), 26);
  EXPECT_EQ(net.TotalParentCells(), 11);
}

TEST(StudentNetworkTest, JointProbabilityByHand) {
  const BayesianNetwork net = StudentNetwork();
  // P(d0, i1, g0, s1, l1) = 0.6 * 0.3 * P(g0|d0,i1) * P(s1|i1) * P(l1|g0)
  //                       = 0.6 * 0.3 * 0.9 * 0.8 * 0.1 = 0.012960.
  const Instance x = {0, 1, 0, 1, 1};
  EXPECT_NEAR(net.JointProbability(x), 0.6 * 0.3 * 0.9 * 0.8 * 0.1, 1e-12);
  EXPECT_NEAR(net.LogJointProbability(x),
              std::log(0.6 * 0.3 * 0.9 * 0.8 * 0.1), 1e-9);
}

TEST(StudentNetworkTest, FullJointSumsToOne) {
  const BayesianNetwork net = StudentNetwork();
  double total = 0.0;
  Instance x(5);
  for (x[0] = 0; x[0] < 2; ++x[0])
    for (x[1] = 0; x[1] < 2; ++x[1])
      for (x[2] = 0; x[2] < 3; ++x[2])
        for (x[3] = 0; x[3] < 2; ++x[3])
          for (x[4] = 0; x[4] < 2; ++x[4]) total += net.JointProbability(x);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(StudentNetworkTest, ClosedSubsetProbabilityMatchesMarginal) {
  const BayesianNetwork net = StudentNetwork();
  // {Difficulty, Intelligence, Grade} is ancestrally closed.
  PartialAssignment pa;
  pa.nodes = {0, 1, 2};
  pa.values = {1, 0, 2};
  // P(d1, i0, g2) = 0.4 * 0.7 * P(g2 | d1, i0) = 0.4 * 0.7 * 0.7.
  EXPECT_NEAR(net.ClosedSubsetProbability(pa), 0.4 * 0.7 * 0.7, 1e-12);

  // Must equal the brute-force marginal over SAT and Letter.
  double marginal = 0.0;
  Instance x = {1, 0, 2, 0, 0};
  for (x[3] = 0; x[3] < 2; ++x[3])
    for (x[4] = 0; x[4] < 2; ++x[4]) marginal += net.JointProbability(x);
  EXPECT_NEAR(net.ClosedSubsetProbability(pa), marginal, 1e-12);
}

TEST(StudentNetworkTest, SingleRootSubset) {
  const BayesianNetwork net = StudentNetwork();
  PartialAssignment pa;
  pa.nodes = {1};
  pa.values = {1};
  EXPECT_NEAR(net.ClosedSubsetProbability(pa), 0.3, 1e-12);
}

TEST(StudentNetworkTest, ParentIndexOf) {
  const BayesianNetwork net = StudentNetwork();
  // Grade's parents are (Difficulty, Intelligence); last parent fastest.
  EXPECT_EQ(net.ParentIndexOf(2, {0, 0, 0, 0, 0}), 0);
  EXPECT_EQ(net.ParentIndexOf(2, {0, 1, 0, 0, 0}), 1);
  EXPECT_EQ(net.ParentIndexOf(2, {1, 0, 0, 0, 0}), 2);
  EXPECT_EQ(net.ParentIndexOf(2, {1, 1, 0, 0, 0}), 3);
  // Letter's parent is Grade.
  EXPECT_EQ(net.ParentIndexOf(4, {0, 0, 2, 0, 0}), 2);
  // Roots always map to row 0.
  EXPECT_EQ(net.ParentIndexOf(0, {1, 1, 2, 1, 1}), 0);
}

TEST(StudentNetworkTest, MarkovBlanket) {
  const BayesianNetwork net = StudentNetwork();
  // Blanket of Intelligence: children Grade+SAT, co-parent Difficulty.
  EXPECT_EQ(net.MarkovBlanket(1), (std::vector<int>{0, 2, 3}));
  // Blanket of Grade: parents D,I and child Letter.
  EXPECT_EQ(net.MarkovBlanket(2), (std::vector<int>{0, 1, 4}));
  // Blanket of Letter: just Grade.
  EXPECT_EQ(net.MarkovBlanket(4), (std::vector<int>{2}));
}

TEST(StudentNetworkTest, MinCpdEntry) {
  const BayesianNetwork net = StudentNetwork();
  EXPECT_NEAR(net.MinCpdEntry(), 0.01, 1e-12);  // P(l0 | g2) = 0.01.
}

}  // namespace
}  // namespace dsgm
