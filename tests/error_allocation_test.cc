// Tests for core/error_allocation.h — the Lagrange split (eqs. 5-9).

#include <gtest/gtest.h>

#include <cmath>

#include "bayes/generator.h"
#include "bayes/repository.h"
#include "common/rng.h"
#include "core/error_allocation.h"

namespace dsgm {
namespace {

double SumSquares(const std::vector<double>& values) {
  double total = 0.0;
  for (double v : values) total += v * v;
  return total;
}

TEST(AllocateBudgetTest, SatisfiesConstraintExactly) {
  const std::vector<double> weights = {1.0, 8.0, 27.0, 64.0};
  const std::vector<double> nus = AllocateBudget(weights, 0.00625);
  EXPECT_NEAR(SumSquares(nus), 0.00625 * 0.00625, 1e-15);
}

TEST(AllocateBudgetTest, ClosedFormProportionalToCubeRoot) {
  const std::vector<double> weights = {1.0, 8.0, 27.0};
  const std::vector<double> nus = AllocateBudget(weights, 1.0);
  // nu_i proportional to w^{1/3}: ratios 1 : 2 : 3.
  EXPECT_NEAR(nus[1] / nus[0], 2.0, 1e-12);
  EXPECT_NEAR(nus[2] / nus[0], 3.0, 1e-12);
}

TEST(AllocateBudgetTest, UniformWeightsGiveUniformSplit) {
  const std::vector<double> weights(10, 3.5);
  const std::vector<double> nus = AllocateBudget(weights, 0.1);
  for (double nu : nus) EXPECT_NEAR(nu, 0.1 / std::sqrt(10.0), 1e-12);
}

TEST(AllocateBudgetTest, LagrangeSolutionIsOptimal) {
  // Property: any perturbation that still satisfies the constraint must not
  // beat the closed-form optimum's communication cost.
  Rng rng(17);
  const std::vector<double> weights = {2.0, 10.0, 1.0, 40.0, 7.0};
  const double budget = 0.01;
  const std::vector<double> optimal = AllocateBudget(weights, budget);
  const double optimal_cost = AllocationCost(weights, optimal);
  for (int trial = 0; trial < 200; ++trial) {
    // Random positive direction, renormalized to the constraint sphere.
    std::vector<double> candidate(weights.size());
    for (double& v : candidate) v = 0.05 + rng.NextDouble();
    const double scale = budget / std::sqrt(SumSquares(candidate));
    for (double& v : candidate) v *= scale;
    EXPECT_GE(AllocationCost(weights, candidate), optimal_cost - 1e-9);
  }
}

TEST(ComputeAllocationTest, BaselineIsEpsOver3n) {
  const BayesianNetwork net = StudentNetwork();
  const ErrorAllocation allocation =
      ComputeAllocation(net, TrackingStrategy::kBaseline, 0.1);
  for (int i = 0; i < net.num_variables(); ++i) {
    EXPECT_NEAR(allocation.joint[static_cast<size_t>(i)], 0.1 / 15.0, 1e-12);
    EXPECT_NEAR(allocation.parent[static_cast<size_t>(i)], 0.1 / 15.0, 1e-12);
  }
}

TEST(ComputeAllocationTest, UniformIsEpsOver16SqrtN) {
  const BayesianNetwork net = StudentNetwork();
  const ErrorAllocation allocation =
      ComputeAllocation(net, TrackingStrategy::kUniform, 0.1);
  const double expected = 0.1 / (16.0 * std::sqrt(5.0));
  for (int i = 0; i < net.num_variables(); ++i) {
    EXPECT_NEAR(allocation.joint[static_cast<size_t>(i)], expected, 1e-12);
    EXPECT_NEAR(allocation.parent[static_cast<size_t>(i)], expected, 1e-12);
  }
}

TEST(ComputeAllocationTest, NonUniformMatchesEquationSeven) {
  const BayesianNetwork net = StudentNetwork();
  const double eps = 0.2;
  const ErrorAllocation allocation =
      ComputeAllocation(net, TrackingStrategy::kNonUniform, eps);
  // Equation (7): nu_i = (J_i K_i)^{1/3} eps / (16 alpha),
  // alpha = (sum (J_i K_i)^{2/3})^{1/2}.
  double alpha_sq = 0.0;
  for (int i = 0; i < net.num_variables(); ++i) {
    const double w = static_cast<double>(net.cardinality(i)) *
                     static_cast<double>(net.parent_cardinality(i));
    alpha_sq += std::cbrt(w * w);
  }
  const double alpha = std::sqrt(alpha_sq);
  for (int i = 0; i < net.num_variables(); ++i) {
    const double w = static_cast<double>(net.cardinality(i)) *
                     static_cast<double>(net.parent_cardinality(i));
    EXPECT_NEAR(allocation.joint[static_cast<size_t>(i)],
                std::cbrt(w) * eps / (16.0 * alpha), 1e-12);
  }
  // Equation (4)/(5) constraint: sum nu^2 = eps^2/256 for both blocks.
  EXPECT_NEAR(SumSquares(allocation.joint), eps * eps / 256.0, 1e-12);
  EXPECT_NEAR(SumSquares(allocation.parent), eps * eps / 256.0, 1e-12);
}

TEST(ComputeAllocationTest, UniformConstraintAlsoEpsSquaredOver256) {
  const BayesianNetwork net = StudentNetwork();
  const ErrorAllocation allocation =
      ComputeAllocation(net, TrackingStrategy::kUniform, 0.1);
  EXPECT_NEAR(SumSquares(allocation.joint), 0.1 * 0.1 / 256.0, 1e-12);
}

TEST(ComputeAllocationTest, NaiveBayesMatchesEquationNine) {
  const BayesianNetwork nb = MakeNaiveBayes(8, 3, 5, 123);
  const double eps = 0.1;
  const ErrorAllocation allocation =
      ComputeAllocation(nb, TrackingStrategy::kNaiveBayes, eps);
  // Equation (9): for features i >= 1 (paper's i >= 2 with 1-based ids),
  // nu_i = eps J_i^{1/3} / (16 sqrt(sum_j J_j^{2/3} J_1^{2/3} terms)) — the
  // generic solver uses w_i = J_i * K_i with K_i = J_root; the closed form
  // says the nu of every equal-cardinality feature is identical, and the
  // parent split is uniform over the J_root-row counters.
  for (int i = 2; i <= 8; ++i) {
    EXPECT_NEAR(allocation.joint[static_cast<size_t>(i)], allocation.joint[1], 1e-12);
    EXPECT_NEAR(allocation.parent[static_cast<size_t>(i)], allocation.parent[1],
                1e-12);
  }
  // Feature joint weights J_i*K_i = 5*3 = 15 > root weight 3*1, so the root
  // gets a smaller share.
  EXPECT_LT(allocation.joint[0], allocation.joint[1]);
  EXPECT_NEAR(SumSquares(allocation.joint), eps * eps / 256.0, 1e-12);
}

TEST(ComputeAllocationTest, NaiveBayesStrategyRejectsWrongShape) {
  const BayesianNetwork net = StudentNetwork();
  EXPECT_DEATH(ComputeAllocation(net, TrackingStrategy::kNaiveBayes, 0.1),
               "naive-bayes");
}

TEST(ComputeAllocationTest, ExactStrategyIsAnError) {
  const BayesianNetwork net = StudentNetwork();
  EXPECT_DEATH(ComputeAllocation(net, TrackingStrategy::kExactMle, 0.1),
               "exact");
}

TEST(ComputeAllocationTest, SkewedCardinalitiesSeparateNonUniformFromUniform) {
  // NEW-ALARM-style: when some domains are much larger, NONUNIFORM gives the
  // high-cardinality variables a larger error share than the low-cardinality
  // ones (ratio (w_big/w_small)^{1/3}), and its predicted communication cost
  // sum(w/nu) beats the uniform split's.
  const BayesianNetwork net = NewAlarm();
  const ErrorAllocation uniform =
      ComputeAllocation(net, TrackingStrategy::kUniform, 0.1);
  const ErrorAllocation nonuniform =
      ComputeAllocation(net, TrackingStrategy::kNonUniform, 0.1);
  // Find an inflated variable and a binary one.
  int big = -1;
  int small = -1;
  for (int i = 0; i < net.num_variables(); ++i) {
    if (net.cardinality(i) == 20 && big < 0) big = i;
    if (net.cardinality(i) == 2 && net.parent_cardinality(i) <= 4 && small < 0) {
      small = i;
    }
  }
  ASSERT_GE(big, 0);
  ASSERT_GE(small, 0);
  const double w_big = static_cast<double>(net.cardinality(big)) *
                       static_cast<double>(net.parent_cardinality(big));
  const double w_small = static_cast<double>(net.cardinality(small)) *
                         static_cast<double>(net.parent_cardinality(small));
  EXPECT_GT(nonuniform.joint[static_cast<size_t>(big)],
            nonuniform.joint[static_cast<size_t>(small)]);
  EXPECT_NEAR(nonuniform.joint[static_cast<size_t>(big)] /
                  nonuniform.joint[static_cast<size_t>(small)],
              std::cbrt(w_big / w_small), 1e-9);

  // Predicted asymptotic communication: the Lagrange split strictly beats
  // the uniform split on this skewed network.
  std::vector<double> weights;
  for (int i = 0; i < net.num_variables(); ++i) {
    weights.push_back(static_cast<double>(net.cardinality(i)) *
                      static_cast<double>(net.parent_cardinality(i)));
  }
  EXPECT_LT(AllocationCost(weights, nonuniform.joint),
            AllocationCost(weights, uniform.joint));
}

TEST(TrackingStrategyTest, NamesRoundTrip) {
  for (TrackingStrategy s :
       {TrackingStrategy::kExactMle, TrackingStrategy::kBaseline,
        TrackingStrategy::kUniform, TrackingStrategy::kNonUniform,
        TrackingStrategy::kNaiveBayes}) {
    StatusOr<TrackingStrategy> parsed = TrackingStrategyFromName(ToString(s));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_TRUE(TrackingStrategyFromName("NON_UNIFORM").ok());
  EXPECT_FALSE(TrackingStrategyFromName("bogus").ok());
}

}  // namespace
}  // namespace dsgm
