// Tests for bayes/cpd.h.

#include <gtest/gtest.h>

#include <vector>

#include "bayes/cpd.h"
#include "common/rng.h"

namespace dsgm {
namespace {

TEST(CpdTest, RootVariableHasOneRow) {
  CpdTable cpd(3, {});
  EXPECT_EQ(cpd.num_rows(), 1);
  EXPECT_EQ(cpd.cardinality(), 3);
  EXPECT_EQ(cpd.FreeParams(), 2);
  // Default-initialized to uniform.
  EXPECT_DOUBLE_EQ(cpd.prob(0, 0), 1.0 / 3.0);
}

TEST(CpdTest, ParentIndexIsRowMajorLastParentFastest) {
  CpdTable cpd(2, {2, 3});
  EXPECT_EQ(cpd.num_rows(), 6);
  EXPECT_EQ(cpd.ParentIndex({0, 0}), 0);
  EXPECT_EQ(cpd.ParentIndex({0, 1}), 1);
  EXPECT_EQ(cpd.ParentIndex({0, 2}), 2);
  EXPECT_EQ(cpd.ParentIndex({1, 0}), 3);
  EXPECT_EQ(cpd.ParentIndex({1, 2}), 5);
}

TEST(CpdTest, FreeParamsMatchesBnlearnConvention) {
  CpdTable cpd(4, {3, 2});
  EXPECT_EQ(cpd.num_rows(), 6);
  EXPECT_EQ(cpd.FreeParams(), 6 * 3);
}

TEST(CpdTest, SetRowValidation) {
  CpdTable cpd(2, {2});
  EXPECT_TRUE(cpd.SetRow(0, {0.3, 0.7}).ok());
  EXPECT_DOUBLE_EQ(cpd.prob(0, 0), 0.3);
  EXPECT_DOUBLE_EQ(cpd.prob(1, 0), 0.7);
  EXPECT_FALSE(cpd.SetRow(0, {0.3, 0.6}).ok());       // doesn't sum to 1
  EXPECT_FALSE(cpd.SetRow(0, {-0.1, 1.1}).ok());      // negative
  EXPECT_FALSE(cpd.SetRow(0, {1.0}).ok());            // wrong arity
  EXPECT_FALSE(cpd.SetRow(5, {0.5, 0.5}).ok());       // row out of range
  EXPECT_FALSE(cpd.SetRow(-1, {0.5, 0.5}).ok());      // row out of range
}

TEST(CpdTest, FillRandomRowsAreDistributions) {
  Rng rng(3);
  CpdTable cpd(4, {3, 3});
  cpd.FillRandom(rng, 0.5, 0.02);
  for (int64_t row = 0; row < cpd.num_rows(); ++row) {
    double total = 0.0;
    for (int j = 0; j < cpd.cardinality(); ++j) {
      const double p = cpd.prob(j, row);
      EXPECT_GE(p, 0.02);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
  EXPECT_GE(cpd.MinProb(), 0.02);
}

TEST(CpdTest, FillRandomClampsExcessiveFloor) {
  Rng rng(5);
  CpdTable cpd(10, {});
  // A floor of 0.3 with 10 values is impossible; must clamp to 0.5/J = 0.05.
  cpd.FillRandom(rng, 1.0, 0.3);
  double total = 0.0;
  for (int j = 0; j < 10; ++j) total += cpd.prob(j, 0);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GE(cpd.MinProb(), 0.05 - 1e-12);
}

TEST(CpdTest, SampleFollowsRowDistribution) {
  Rng rng(7);
  CpdTable cpd(3, {2});
  ASSERT_TRUE(cpd.SetRow(0, {0.7, 0.2, 0.1}).ok());
  ASSERT_TRUE(cpd.SetRow(1, {0.1, 0.1, 0.8}).ok());
  std::vector<int> counts(3, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[static_cast<size_t>(cpd.Sample(0, rng))];
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.7, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kDraws), 0.1, 0.01);
  std::fill(counts.begin(), counts.end(), 0);
  for (int i = 0; i < kDraws; ++i) ++counts[static_cast<size_t>(cpd.Sample(1, rng))];
  EXPECT_NEAR(counts[2] / static_cast<double>(kDraws), 0.8, 0.01);
}

// Parameterized sweep: FillRandom respects the floor across shapes/alphas.
class CpdFillTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(CpdFillTest, FloorHolds) {
  const int cardinality = std::get<0>(GetParam());
  const double alpha = std::get<1>(GetParam());
  Rng rng(static_cast<uint64_t>(cardinality * 100) + static_cast<uint64_t>(alpha * 10));
  CpdTable cpd(cardinality, {2, 2});
  cpd.FillRandom(rng, alpha, 0.02);
  EXPECT_GE(cpd.MinProb(), std::min(0.02, 0.5 / cardinality) - 1e-12);
  for (int64_t row = 0; row < cpd.num_rows(); ++row) {
    double total = 0.0;
    for (int j = 0; j < cardinality; ++j) total += cpd.prob(j, row);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CpdFillTest,
    ::testing::Combine(::testing::Values(2, 3, 4, 10, 20),
                       ::testing::Values(0.1, 0.5, 1.0, 5.0)));

}  // namespace
}  // namespace dsgm
