// Figure 11: communication cost vs number of sites (ALARM). The paper
// observes sub-linear growth in k for the randomized algorithms.

#include <iostream>

#include "bayes/repository.h"
#include "common/table.h"
#include "harness/experiment.h"
#include "harness/report.h"

namespace dsgm {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags);
  flags.DefineInt64("events", 100000, "training instances (paper: 500000)");
  flags.DefineString("site-counts", "10,20,30,40,50,60,70", "site sweep");
  ParseFlagsOrDie(&flags, argc, argv);

  const int64_t events =
      flags.GetBool("full") ? 500000 : flags.GetInt64("events");
  const BayesianNetwork net = Alarm();
  const std::vector<TrackingStrategy> strategies = {TrackingStrategy::kBaseline,
                                                    TrackingStrategy::kUniform,
                                                    TrackingStrategy::kNonUniform};
  TablePrinter table("Fig. 11 (ALARM): total messages vs number of sites, " +
                     FormatInstances(events) + " instances");
  std::vector<std::string> header = {"sites"};
  for (TrackingStrategy s : strategies) header.push_back(ToString(s));
  table.SetHeader(header);
  for (const std::string& sites_text : SplitCommaList(flags.GetString("site-counts"))) {
    ExperimentOptions options;
    ApplyCommonFlags(flags, &options);
    options.sites = std::stoi(sites_text);
    options.checkpoints = {events};
    options.strategies = strategies;
    options.test_events = 10;
    const std::vector<Snapshot> snapshots = RunStreamExperiment(net, options);
    std::vector<std::string> row = {sites_text};
    for (TrackingStrategy strategy : strategies) {
      row.push_back(FormatScientific(static_cast<double>(
          FindSnapshot(snapshots, strategy, events).comm.TotalMessages())));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace dsgm

int main(int argc, char** argv) { return dsgm::Main(argc, argv); }
