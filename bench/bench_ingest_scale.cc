// Ingest scaling bench: N producer threads hammering Push on ONE Session
// (the sharded-router hot path) × a Snapshot() poller, sweeping producer
// counts and poller frequencies. The claims under test:
//
//   1. Multi-producer Push scales: with the per-caller shards + SPSC site
//      lanes, 8 producer threads beat 1 by >= 3x on machines with >= 16
//      hardware threads — enough for the producers AND the 8 sites +
//      coordinator to run in parallel. The machine's parallelism is the
//      ceiling, so the gate auto-derates below that (1.5x at 8-15 threads,
//      parity floors below — see --assert-scaling's help): no ingest path
//      can extract a parallel speedup from hardware that cannot run the
//      pipeline's stages in parallel.
//   2. Queries are near-free: a 100 Hz Snapshot() poller costs < 10%
//      throughput, because the coordinator publishes double-buffered
//      snapshots in O(touched cells) and readers never block the protocol.
//   3. Observability is near-free: --metrics-overhead prices the
//      instruments themselves (enabled vs SetMetricsEnabled(false)) and
//      --trace-overhead prices the trace-shipping path (drain -> kTraceChunk
//      codec -> ClusterTraceBoard ingest at 25x the production cadence);
//      both must stay <= 3% of 8-producer throughput (derated to a 10%
//      collapse-check under sanitizers or below 16 hardware threads).
//
// Also runs ctest-gated as session.ingest_scale_smoke (reduced events,
// --assert-scaling) so a concurrency regression on either path shows up
// per commit. Emits BENCH_ingest.json for the perf trajectory;
// bench/harness/bench_diff.py diffs two such files across commits.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bayes/repository.h"
#include "bayes/sampler.h"
#include "common/metrics.h"
#include "common/table.h"
#include "common/timer.h"
#include "common/tracing.h"
#include "dsgm/dsgm.h"
#include "harness/experiment.h"
#include "harness/json_report.h"
#include "net/codec.h"
#include "net/wire.h"

namespace dsgm {
namespace {

// Sanitizer builds run this bench too (the smoke is part of the ASan/TSan
// CI jobs), but instrumented snapshot copies on an oversubscribed machine
// are not a perf environment: the poller-cost gate derates there.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitizedBuild = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitizedBuild = true;
#else
constexpr bool kSanitizedBuild = false;
#endif
#else
constexpr bool kSanitizedBuild = false;
#endif

struct IngestRun {
  int producers = 0;
  int poller_hz = 0;
  double events_per_sec = 0.0;  // end-to-end: first Push to Finish return
  double push_seconds = 0.0;    // producers' start to last Push return
  int64_t snapshots_taken = 0;
  uint64_t trace_events_shipped = 0;  // only when the shipper thread ran
  uint64_t trace_chunks_shipped = 0;
};

StatusOr<IngestRun> RunOnce(const BayesianNetwork& net,
                            const std::vector<Instance>& events, int sites,
                            int producers, int poller_hz, double eps,
                            uint64_t seed, int batch_size,
                            bool ship_traces = false) {
  SessionBuilder builder(net);
  builder.WithBackend(Backend::kThreads)
      .WithStrategy(TrackingStrategy::kUniform)
      .WithSites(sites)
      .WithEpsilon(eps)
      .WithSeed(seed)
      .WithBatchSize(batch_size);
  StatusOr<std::unique_ptr<Session>> built = builder.Build();
  if (!built.ok()) return built.status();
  Session& session = **built;

  std::atomic<bool> done{false};
  std::atomic<int64_t> snapshots{0};
  std::thread poller;
  if (poller_hz > 0) {
    const auto period =
        std::chrono::microseconds(1000000 / poller_hz);
    poller = std::thread([&session, &done, &snapshots, period] {
      while (!done.load(std::memory_order_acquire)) {
        if (session.Snapshot().ok()) {
          snapshots.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(period);
      }
    });
  }

  // Optional site-style trace shipper (--trace-overhead): replays the
  // standalone site's shipping loop in-process — drain every thread's ring
  // through one cursor, encode the chunk as a kTraceChunk frame, decode it
  // back, fold it into a ClusterTraceBoard — so the gate prices the whole
  // shipping path (drain + codec + board ingest), not just the Trace()
  // writes the --metrics-overhead gate already covers. The 20 ms cadence is
  // 25x the default 500 ms heartbeat piggyback, a deliberate
  // over-approximation: production shipping costs less than what's measured
  // here.
  ClusterTraceBoard board(1);
  std::atomic<uint64_t> shipped_events{0};
  std::atomic<uint64_t> shipped_chunks{0};
  std::thread shipper;
  if (ship_traces) {
    shipper = std::thread([&done, &board, &shipped_events, &shipped_chunks] {
      TraceDrainCursor cursor;
      const auto period = std::chrono::milliseconds(20);
      bool final_pass = false;
      while (true) {
        TraceChunk chunk;
        chunk.site = 0;
        const size_t drained =
            DrainTraceEvents(&cursor, &chunk.events, &chunk.first_seq);
        if (drained > 0) {
          std::vector<uint8_t> bytes;
          AppendFrame(MakeTraceChunk(std::move(chunk)), &bytes);
          Frame decoded;
          size_t consumed = 0;
          if (DecodeFrame(bytes.data(), bytes.size(), &decoded, &consumed)
                  .ok()) {
            board.Ingest(0, decoded.trace.first_seq, decoded.trace.events);
          }
          shipped_events.fetch_add(drained, std::memory_order_relaxed);
          shipped_chunks.fetch_add(1, std::memory_order_relaxed);
        }
        if (final_pass) break;
        if (done.load(std::memory_order_acquire)) {
          final_pass = true;  // one last drain after the producers stop
          continue;
        }
        std::this_thread::sleep_for(period);
      }
    });
  }

  WallTimer wall;
  std::vector<std::thread> threads;
  std::atomic<double> push_seconds{0.0};
  const size_t per = events.size() / static_cast<size_t>(producers);
  for (int t = 0; t < producers; ++t) {
    const size_t begin = static_cast<size_t>(t) * per;
    const size_t end = t + 1 == producers ? events.size() : begin + per;
    threads.emplace_back([&session, &events, &wall, &push_seconds, begin, end] {
      for (size_t e = begin; e < end; ++e) {
        if (!session.Push(events[e]).ok()) return;
      }
      const double elapsed = wall.ElapsedSeconds();
      // Keep the slowest producer's finish line (max via CAS).
      double seen = push_seconds.load(std::memory_order_relaxed);
      while (elapsed > seen &&
             !push_seconds.compare_exchange_weak(seen, elapsed)) {
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Stop the poller before Finish: Snapshot is cross-thread-safe against
  // ingest, but Finish's final-model publication is not a concurrent query
  // target (see the Session::Finish contract).
  done.store(true, std::memory_order_release);
  if (poller.joinable()) poller.join();
  if (shipper.joinable()) shipper.join();
  StatusOr<RunReport> report = session.Finish();
  const double total_seconds = wall.ElapsedSeconds();
  if (!report.ok()) return report.status();
  if (report->events_processed != static_cast<int64_t>(events.size())) {
    return InternalError("ingest bench: event count mismatch");
  }

  IngestRun run;
  run.producers = producers;
  run.poller_hz = poller_hz;
  run.push_seconds = push_seconds.load();
  run.events_per_sec =
      total_seconds > 0.0 ? static_cast<double>(events.size()) / total_seconds
                          : 0.0;
  run.snapshots_taken = snapshots.load();
  run.trace_events_shipped = shipped_events.load(std::memory_order_relaxed);
  run.trace_chunks_shipped = shipped_chunks.load(std::memory_order_relaxed);
  return run;
}

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags);
  flags.DefineInt64("events", 200000, "training instances per run");
  flags.DefineString("network", "alarm", "network to stream");
  flags.DefineInt64("sites", 8, "cluster size (kThreads backend)");
  flags.DefineInt64("batch", 256, "events per dispatch batch");
  flags.DefineString("producers", "1,2,4,8,16", "producer thread counts to sweep");
  flags.DefineString("poller-hz", "0,100", "Snapshot() poller frequencies to sweep");
  flags.DefineInt64("repeats", 2, "runs per config; the best run is reported "
                    "(throughput benches measure capacity, not scheduler noise)");
  flags.DefineBool("assert-scaling", false,
                   "exit 1 unless (a) 8-producer throughput clears the "
                   "hardware-derated multiple of 1-producer throughput "
                   "(>= 3x with >= 16 hardware threads, >= 1.5x with >= 8, "
                   ">= 0.85x with >= 2, >= 0.5x on a single core — below "
                   "~16 threads the 8 sites + coordinator saturate the "
                   "machine in BOTH configs, so parity, not speedup, is "
                   "the honest floor) and (b) the 100 Hz poller costs "
                   "< 10% throughput at every swept producer count "
                   "(ctest smoke gate)");
  flags.DefineBool("metrics-overhead", false,
                   "price the metrics layer itself: run the 8-producer quiet "
                   "config with instruments enabled and disabled "
                   "(SetMetricsEnabled) and exit 1 if enabling them costs "
                   "> 3% throughput (10% under sanitizers or below 16 "
                   "hardware threads, where scheduler noise exceeds the "
                   "effect)");
  flags.DefineBool("trace-overhead", false,
                   "price trace shipping: run the 8-producer quiet config "
                   "with and without a site-style shipper thread (drain -> "
                   "kTraceChunk encode -> decode -> ClusterTraceBoard "
                   "ingest, at 25x the production heartbeat cadence) and "
                   "exit 1 if shipping costs > 3% throughput (10% under "
                   "sanitizers or below 16 hardware threads)");
  flags.DefineString("json", "BENCH_ingest.json",
                     "machine-readable results file (empty disables)");
  ParseFlagsOrDie(&flags, argc, argv);

  const int64_t num_events = flags.GetInt64("events");
  const int sites = static_cast<int>(flags.GetInt64("sites"));
  const int batch = static_cast<int>(flags.GetInt64("batch"));
  const int repeats = std::max(1, static_cast<int>(flags.GetInt64("repeats")));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  const double eps = flags.GetDouble("eps");
  const StatusOr<BayesianNetwork> net = NetworkByName(flags.GetString("network"));
  if (!net.ok()) {
    std::cerr << net.status() << "\n";
    return 1;
  }
  // Pre-sample the stream once so the producers measure pure Push cost.
  ForwardSampler sampler(*net, seed + 1);
  const std::vector<Instance> events = sampler.SampleMany(num_events);

  std::vector<int> producer_counts;
  for (const std::string& text : SplitCommaList(flags.GetString("producers"))) {
    producer_counts.push_back(std::stoi(text));
  }
  std::vector<int> poller_rates;
  for (const std::string& text : SplitCommaList(flags.GetString("poller-hz"))) {
    poller_rates.push_back(std::stoi(text));
  }

  const unsigned hw = std::thread::hardware_concurrency();
  TablePrinter table("Ingest scaling (" + net->name() + ", " +
                     FormatInstances(num_events) + " instances, " +
                     std::to_string(sites) + " sites, hw threads: " +
                     std::to_string(hw) + ")");
  table.SetHeader({"producers", "poller Hz", "events/s", "vs 1 thread",
                   "snapshots"});
  Json records = Json::Array();
  // best_by[{producers, poller}] keyed positionally.
  std::vector<IngestRun> best;
  for (const int producers : producer_counts) {
    for (const int poller_hz : poller_rates) {
      IngestRun best_run;
      for (int r = 0; r < repeats; ++r) {
        StatusOr<IngestRun> run =
            RunOnce(*net, events, sites, producers, poller_hz, eps,
                    seed + static_cast<uint64_t>(r), batch);
        if (!run.ok()) {
          std::cerr << "producers=" << producers << " poller=" << poller_hz
                    << ": " << run.status() << "\n";
          return 1;
        }
        if (run->events_per_sec > best_run.events_per_sec) best_run = *run;
      }
      best.push_back(best_run);
    }
  }

  auto find_run = [&best](int producers, int poller_hz) -> const IngestRun* {
    for (const IngestRun& run : best) {
      if (run.producers == producers && run.poller_hz == poller_hz) return &run;
    }
    return nullptr;
  };
  // Speedups are relative to the true single-producer quiet run only; a
  // sweep without producers=1 reports no speedup rather than a misleading
  // ratio against whatever happened to come first.
  const IngestRun* baseline = find_run(1, 0);
  for (const IngestRun& run : best) {
    const bool has_baseline =
        baseline != nullptr && baseline->events_per_sec > 0.0;
    const double speedup =
        has_baseline ? run.events_per_sec / baseline->events_per_sec : 0.0;
    table.AddRow({std::to_string(run.producers), std::to_string(run.poller_hz),
                  FormatCount(static_cast<int64_t>(run.events_per_sec)),
                  has_baseline ? FormatDouble(speedup, 2) + "x" : "-",
                  std::to_string(run.snapshots_taken)});
    Json record = Json::Object();
    record.Add("network", Json::Str(net->name()))
        .Add("sites", Json::Int(sites))
        .Add("producers", Json::Int(run.producers))
        .Add("poller_hz", Json::Int(run.poller_hz))
        .Add("events_per_sec", Json::Double(run.events_per_sec))
        .Add("push_seconds", Json::Double(run.push_seconds));
    if (has_baseline) {
      record.Add("speedup_vs_single", Json::Double(speedup));
    }
    record.Add("snapshots_taken", Json::Int(run.snapshots_taken));
    records.Append(std::move(record));
  }
  table.Print(std::cout);
  std::cout << "\nthroughput is end-to-end (first Push to Finish); 'snapshots' "
               "counts live Snapshot()\nqueries served during the run by the "
               "poller thread.\n\n";

  bool gate_failed = false;
  if (flags.GetBool("assert-scaling")) {
    // (a) Multi-producer scaling, derated to the machine's parallelism.
    // Producer-side speedup is only expressible once the producers AND the
    // k sites + coordinator all get real cores (~16 threads for the
    // default 8x8 sweep); below that the downstream stages saturate the
    // machine in both configs and parity is the honest floor, and a single
    // hardware thread can only show that sharded ingest does not COLLAPSE
    // under contention.
    const double required =
        hw >= 16 ? 3.0 : (hw >= 8 ? 1.5 : (hw >= 2 ? 0.85 : 0.5));
    const IngestRun* single = find_run(1, 0);
    const IngestRun* multi = find_run(8, 0);
    if (single != nullptr && multi != nullptr) {
      if (multi->events_per_sec < required * single->events_per_sec) {
        std::cerr << "GATE FAILED: 8-producer throughput "
                  << static_cast<int64_t>(multi->events_per_sec)
                  << " ev/s < " << required << "x single-producer "
                  << static_cast<int64_t>(single->events_per_sec)
                  << " ev/s (hw threads: " << hw << ")\n";
        gate_failed = true;
      }
    } else {
      std::cerr << "GATE FAILED: --assert-scaling needs producers 1 and 8 "
                   "and poller-hz 0 in the sweep\n";
      gate_failed = true;
    }
    // (b) Poller cost: 100 Hz of live queries must stay under 10% (25%
    // under sanitizers, whose instrumented copies distort the ratio).
    const double poller_floor = kSanitizedBuild ? 0.75 : 0.9;
    for (const int producers : producer_counts) {
      const IngestRun* quiet = find_run(producers, 0);
      const IngestRun* polled = find_run(producers, 100);
      if (quiet == nullptr || polled == nullptr) continue;
      if (polled->events_per_sec < poller_floor * quiet->events_per_sec) {
        std::cerr << "GATE FAILED: 100 Hz poller cut throughput to "
                  << static_cast<int64_t>(polled->events_per_sec) << " ev/s (< "
                  << static_cast<int64_t>(poller_floor * 100) << "% of "
                  << static_cast<int64_t>(quiet->events_per_sec) << ") at "
                  << producers << " producers\n";
        gate_failed = true;
      }
    }
  }

  // The overhead gates record their measurements here; the block lands in
  // BENCH_ingest.json under "overhead" so the perf trajectory tracks the
  // cost of the observability layer, not just raw throughput.
  Json overhead = Json::Object();
  bool overhead_measured = false;

  // A 3% overhead bound is only measurable when the pipeline's ~17 threads
  // actually get cores: below 16 hardware threads the scheduler noise on an
  // oversubscribed machine exceeds the effect being measured (observed
  // swings of +-8% between back-to-back identical runs on 1 core), so the
  // gate derates to a 10% collapse-check there — same philosophy as
  // --assert-scaling's hardware ladder. Sanitizer instrumentation distorts
  // the ratio the same way.
  const double overhead_bound =
      kSanitizedBuild || hw < 16 ? 0.10 : 0.03;

  if (flags.GetBool("metrics-overhead")) {
    // Alternate enabled/disabled runs so both sides see the same machine
    // conditions, and keep the best of each: this prices the instruments,
    // not the scheduler. Events fan out over 8 producers, so every swept
    // hot path (ingest staging, lanes, sites, coordinator) is exercised.
    const int overhead_repeats = std::max(repeats, 3);
    double best_enabled = 0.0;
    double best_disabled = 0.0;
    for (int r = 0; r < overhead_repeats; ++r) {
      for (const bool enabled : {true, false}) {
        SetMetricsEnabled(enabled);
        StatusOr<IngestRun> run =
            RunOnce(*net, events, sites, 8, 0, eps,
                    seed + static_cast<uint64_t>(r), batch);
        if (!run.ok()) {
          SetMetricsEnabled(true);
          std::cerr << "metrics-overhead run: " << run.status() << "\n";
          return 1;
        }
        double& best = enabled ? best_enabled : best_disabled;
        if (run->events_per_sec > best) best = run->events_per_sec;
      }
    }
    SetMetricsEnabled(true);
    const double cost =
        best_disabled > 0.0
            ? std::max(0.0, 1.0 - best_enabled / best_disabled)
            : 0.0;
    const double bound = overhead_bound;
    std::cout << "metrics overhead at 8 producers: enabled "
              << static_cast<int64_t>(best_enabled) << " ev/s vs disabled "
              << static_cast<int64_t>(best_disabled) << " ev/s ("
              << FormatDouble(cost * 100.0, 2) << "% cost, bound "
              << static_cast<int64_t>(bound * 100.0 + 0.5) << "%)\n";
    if (cost > bound) {
      std::cerr << "GATE FAILED: metrics instrumentation cost "
                << FormatDouble(cost * 100.0, 2) << "% > "
                << static_cast<int64_t>(bound * 100.0 + 0.5) << "% of 8-producer "
                   "throughput\n";
      gate_failed = true;
    }
    Json gate = Json::Object();
    gate.Add("enabled_events_per_sec", Json::Double(best_enabled))
        .Add("disabled_events_per_sec", Json::Double(best_disabled))
        .Add("cost_fraction", Json::Double(cost))
        .Add("bound_fraction", Json::Double(bound));
    overhead.Add("metrics", std::move(gate));
    overhead_measured = true;
  }

  if (flags.GetBool("trace-overhead")) {
    // Same shape as the metrics gate: alternate shipper-on/shipper-off runs
    // under identical machine conditions and compare the best of each. The
    // shipper replays the standalone site's whole shipping path at 25x the
    // production cadence (see RunOnce), so the measured cost upper-bounds
    // what a real deployment pays for cluster-wide tracing.
    const int overhead_repeats = std::max(repeats, 3);
    IngestRun best_shipping;
    double best_quiet = 0.0;
    for (int r = 0; r < overhead_repeats; ++r) {
      for (const bool ship : {true, false}) {
        StatusOr<IngestRun> run =
            RunOnce(*net, events, sites, 8, 0, eps,
                    seed + static_cast<uint64_t>(r), batch, ship);
        if (!run.ok()) {
          std::cerr << "trace-overhead run: " << run.status() << "\n";
          return 1;
        }
        if (ship) {
          if (run->events_per_sec > best_shipping.events_per_sec) {
            best_shipping = *run;
          }
        } else if (run->events_per_sec > best_quiet) {
          best_quiet = run->events_per_sec;
        }
      }
    }
    const double cost =
        best_quiet > 0.0
            ? std::max(0.0, 1.0 - best_shipping.events_per_sec / best_quiet)
            : 0.0;
    const double bound = overhead_bound;
    std::cout << "trace shipping overhead at 8 producers: shipping "
              << static_cast<int64_t>(best_shipping.events_per_sec)
              << " ev/s vs quiet " << static_cast<int64_t>(best_quiet)
              << " ev/s (" << FormatDouble(cost * 100.0, 2)
              << "% cost, bound " << static_cast<int64_t>(bound * 100.0 + 0.5) << "%); "
              << best_shipping.trace_events_shipped << " events in "
              << best_shipping.trace_chunks_shipped << " chunks\n";
    if (cost > bound) {
      std::cerr << "GATE FAILED: trace shipping cost "
                << FormatDouble(cost * 100.0, 2) << "% > "
                << static_cast<int64_t>(bound * 100.0 + 0.5) << "% of 8-producer "
                   "throughput\n";
      gate_failed = true;
    }
    Json gate = Json::Object();
    gate.Add("shipping_events_per_sec",
             Json::Double(best_shipping.events_per_sec))
        .Add("quiet_events_per_sec", Json::Double(best_quiet))
        .Add("cost_fraction", Json::Double(cost))
        .Add("bound_fraction", Json::Double(bound))
        .Add("trace_events_shipped",
             Json::Int(static_cast<int64_t>(best_shipping.trace_events_shipped)))
        .Add("trace_chunks_shipped",
             Json::Int(static_cast<int64_t>(best_shipping.trace_chunks_shipped)));
    overhead.Add("trace_shipping", std::move(gate));
    overhead_measured = true;
  }

  if (!flags.GetString("json").empty()) {
    MetricsSnapshot final_metrics = MetricsRegistry::Global().Snapshot();
    final_metrics.captured_nanos = NowNanos();
    Json root = Json::Object();
    root.Add("bench", Json::Str("ingest_scale"))
        .Add("events_per_run", Json::Int(num_events))
        .Add("sites", Json::Int(sites))
        .Add("batch_size", Json::Int(batch))
        .Add("epsilon", Json::Double(eps))
        .Add("seed", Json::Int(flags.GetInt64("seed")))
        .Add("hardware_threads", Json::Int(static_cast<int64_t>(hw)))
        .Add("results", std::move(records));
    if (overhead_measured) {
      root.Add("overhead", std::move(overhead));
    }
    root.Add("metrics", MetricsSnapshotToJson(final_metrics));
    const Status written = WriteJsonReport(flags.GetString("json"), root);
    if (!written.ok()) {
      std::cerr << written << "\n";
      return 1;
    }
    std::cout << "wrote " << flags.GetString("json") << "\n";
  }
  return gate_failed ? 1 : 0;
}

}  // namespace
}  // namespace dsgm

int main(int argc, char** argv) { return dsgm::Main(argc, argv); }
