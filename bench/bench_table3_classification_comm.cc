// Table III: communication cost (messages) to learn the Bayesian classifier
// of Table II, per network and algorithm.

#include <iostream>

#include "bayes/repository.h"
#include "common/table.h"
#include "harness/classification.h"

namespace dsgm {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags);
  flags.DefineInt64("train", 50000, "training instances (paper: 50000)");
  flags.DefineString("networks", "alarm,hepar,link,munin",
                     "comma-separated network list");
  ParseFlagsOrDie(&flags, argc, argv);

  const std::vector<TrackingStrategy> strategies = {
      TrackingStrategy::kExactMle, TrackingStrategy::kBaseline,
      TrackingStrategy::kUniform, TrackingStrategy::kNonUniform};
  TablePrinter table(
      "Table III: communication cost (messages) to learn a Bayesian classifier, " +
      FormatInstances(flags.GetInt64("train")) + " training instances");
  std::vector<std::string> header = {"dataset"};
  for (TrackingStrategy s : strategies) header.push_back(ToString(s));
  table.SetHeader(header);
  for (const std::string& name : SplitCommaList(flags.GetString("networks"))) {
    StatusOr<BayesianNetwork> net = NetworkByName(name);
    if (!net.ok()) {
      std::cerr << net.status() << "\n";
      return 1;
    }
    const std::vector<ClassificationResult> results = RunClassificationExperiment(
        *net, strategies, flags.GetInt64("train"),
        /*tests=*/10,  // Predictions do not affect communication.
        static_cast<int>(flags.GetInt64("sites")), flags.GetDouble("eps"),
        static_cast<uint64_t>(flags.GetInt64("seed")));
    std::vector<std::string> row = {name};
    for (const ClassificationResult& result : results) {
      row.push_back(FormatScientific(static_cast<double>(result.messages)));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace dsgm

int main(int argc, char** argv) { return dsgm::Main(argc, argv); }
