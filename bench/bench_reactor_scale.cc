// Reactor scaling bench: one coordinator serving many concurrent TCP sites,
// thread-per-connection transport vs the reactor transport, side by side —
// sites vs OS threads vs throughput. The claim under test: the reactor
// serves >= 64 sites with O(1) I/O threads (two event loops, total) at
// throughput within 10% of (or better than) thread-per-connection at 8
// sites, where the latter spends ~3 threads per site (coordinator-side
// reader + writer, site-side reader).
//
// The reactor rows sweep the readiness backend (--io-backends): "reactor"
// is the epoll loop (name kept stable for bench_diff.py history),
// "reactor-io_uring" the multishot io_uring loop; the io_uring rows
// auto-skip on kernels without rings. --assert-io-uring gates the
// epoll-vs-io_uring comparison at the largest swept site count.
//
// Also runs ctest-gated as net.reactor_scale_smoke (16 sites,
// --assert-o1-io) so a thread-count or throughput regression in the
// reactor shows up per commit.

#include <fstream>
#include <iostream>
#include <string>

#include "bayes/repository.h"
#include "common/metrics.h"
#include "common/table.h"
#include "common/timer.h"
#include "dsgm/dsgm.h"
#include "harness/experiment.h"
#include "harness/json_report.h"
#include "net/cluster_transport.h"

namespace dsgm {
namespace {

/// Live thread count of this process, from /proc/self/status.
int CountThreads() {
  std::ifstream status("/proc/self/status");
  std::string key;
  while (status >> key) {
    if (key == "Threads:") {
      int count = 0;
      status >> count;
      return count;
    }
    status.ignore(4096, '\n');
  }
  return -1;
}

struct ScaleRun {
  int sites = 0;
  std::string transport;
  std::string io_backend;  // "epoll" / "io_uring"; "none" off the reactor.
  int threads_total = 0;   // Peak process thread count during the run.
  int io_threads = 0;      // threads_total - baseline - protocol threads.
  double events_per_sec = 0.0;
  uint64_t wire_bytes = 0;
};

StatusOr<ScaleRun> RunOnce(const BayesianNetwork& net, const std::string& name,
                           const std::string& io_backend,
                           const TransportFactory& factory, int sites,
                           int64_t events, double eps, uint64_t seed) {
  const int baseline_threads = CountThreads();
  SessionBuilder builder(net);
  builder.WithBackend(Backend::kThreads)
      .WithStrategy(TrackingStrategy::kUniform)
      .WithSites(sites)
      .WithEpsilon(eps)
      .WithSeed(seed)
      .WithTransport(factory);
  StatusOr<std::unique_ptr<Session>> session = builder.Build();
  if (!session.ok()) return session.status();
  // Everything is spun up now: k SiteNode threads + 1 coordinator thread
  // are protocol threads on ANY transport; the rest is transport I/O.
  const int running_threads = CountThreads();
  DSGM_RETURN_IF_ERROR((*session)->StreamGroundTruth(events));
  StatusOr<RunReport> report = (*session)->Finish();
  if (!report.ok()) return report.status();

  ScaleRun run;
  run.sites = sites;
  run.transport = name;
  run.io_backend = io_backend;
  run.threads_total = running_threads;
  run.io_threads = running_threads - baseline_threads - sites - 1;
  run.events_per_sec = report->throughput_events_per_sec;
  run.wire_bytes = report->transport_bytes_up + report->transport_bytes_down;
  return run;
}

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags);
  flags.DefineInt64("events", 50000, "training instances per run");
  flags.DefineString("network", "alarm", "network to stream");
  flags.DefineString("site-counts", "8,16,32,64", "cluster sizes to sweep");
  flags.DefineBool("assert-o1-io", false,
                   "exit 1 unless the reactor transport uses <= 4 I/O threads "
                   "at every site count AND, when both transports run at the "
                   "same site count, reactor throughput stays within 40% of "
                   "thread-per-connection (ctest smoke gate; the 10%% "
                   "acceptance claim is judged on the full bench numbers)");
  flags.DefineBool("reactor-only", false,
                   "skip the thread-per-connection baseline (fast smoke)");
  flags.DefineString("io-backends", "epoll,io_uring",
                     "readiness backends to sweep the reactor over; io_uring "
                     "entries auto-skip on kernels without rings");
  flags.DefineBool("assert-io-uring", false,
                   "exit 1 unless io_uring reactor throughput reaches >= 85% "
                   "of the epoll reactor at the largest swept site count "
                   "(noise-tolerant smoke gate; the >= 1x acceptance claim is "
                   "judged on the full bench numbers). No-op (skip, not fail) "
                   "when the kernel lacks io_uring");
  flags.DefineString("json", "BENCH_reactor.json",
                     "machine-readable results file (empty disables)");
  ParseFlagsOrDie(&flags, argc, argv);

  const int64_t events = flags.GetInt64("events");
  const StatusOr<BayesianNetwork> net = NetworkByName(flags.GetString("network"));
  if (!net.ok()) {
    std::cerr << net.status() << "\n";
    return 1;
  }

  struct TransportEntry {
    std::string name;
    TransportFactory factory;
    std::string io_backend;
  };
  std::vector<TransportEntry> transports;
  if (!flags.GetBool("reactor-only")) {
    transports.push_back({"thread-per-conn", MakeLocalTcpTransport, "none"});
  }
  bool io_uring_skipped = false;
  for (const std::string& backend_text :
       SplitCommaList(flags.GetString("io-backends"))) {
    IoBackendKind kind;
    if (!ParseIoBackendKind(backend_text, &kind)) {
      std::cerr << "unknown io backend: " << backend_text << "\n";
      return 1;
    }
    if (kind == IoBackendKind::kIoUring && !IoUringAvailable()) {
      std::cout << "io_uring unavailable on this kernel; skipping the "
                   "reactor-io_uring sweep\n";
      io_uring_skipped = true;
      continue;
    }
    // The epoll rows keep the historical "reactor" name so bench_diff.py
    // compares like against like across commits that predate the sweep.
    const std::string name = kind == IoBackendKind::kEpoll
                                 ? "reactor"
                                 : std::string("reactor-") +
                                       IoBackendKindName(kind);
    transports.push_back(
        {name,
         [kind](int n) { return MakeReactorTransport(n, kind); },
         IoBackendKindName(kind)});
  }

  TablePrinter table("Reactor scaling (" + net->name() + ", " +
                     FormatInstances(events) +
                     " instances): sites vs threads vs throughput");
  table.SetHeader({"sites", "transport", "backend", "threads", "I/O threads",
                   "events/s", "wire MiB"});
  Json records = Json::Array();
  bool gate_failed = false;
  double epoll_at_max_sites = 0.0;
  double io_uring_at_max_sites = 0.0;
  int max_sites = 0;
  for (const std::string& sites_text : SplitCommaList(flags.GetString("site-counts"))) {
    const int sites = std::stoi(sites_text);
    double baseline_throughput = 0.0;
    for (const TransportEntry& transport : transports) {
      StatusOr<ScaleRun> run =
          RunOnce(*net, transport.name, transport.io_backend,
                  transport.factory, sites, events, flags.GetDouble("eps"),
                  static_cast<uint64_t>(flags.GetInt64("seed")));
      if (!run.ok()) {
        std::cerr << "sites=" << sites << " " << transport.name << ": "
                  << run.status() << "\n";
        return 1;
      }
      if (run->transport == "thread-per-conn") {
        baseline_throughput = run->events_per_sec;
      }
      // The io_uring gate compares the two reactor rows at the largest
      // swept site count (the regime the backend exists for).
      if (sites >= max_sites) {
        max_sites = sites;
        if (run->io_backend == "epoll") epoll_at_max_sites = run->events_per_sec;
        if (run->io_backend == "io_uring") {
          io_uring_at_max_sites = run->events_per_sec;
        }
      }
      table.AddRow({std::to_string(run->sites), run->transport,
                    run->io_backend,
                    std::to_string(run->threads_total),
                    std::to_string(run->io_threads),
                    FormatCount(static_cast<int64_t>(run->events_per_sec)),
                    FormatDouble(static_cast<double>(run->wire_bytes) / (1 << 20), 3)});
      Json record = Json::Object();
      record.Add("network", Json::Str(net->name()))
          .Add("sites", Json::Int(run->sites))
          .Add("transport", Json::Str(run->transport))
          .Add("io_backend", Json::Str(run->io_backend))
          .Add("threads_total", Json::Int(run->threads_total))
          .Add("io_threads", Json::Int(run->io_threads))
          .Add("events_per_sec", Json::Double(run->events_per_sec))
          .Add("wire_bytes", Json::Int(static_cast<int64_t>(run->wire_bytes)));
      records.Append(std::move(record));

      if (flags.GetBool("assert-o1-io") && run->transport == "reactor") {
        if (run->io_threads > 4) {
          std::cerr << "GATE FAILED: reactor used " << run->io_threads
                    << " I/O threads at " << sites << " sites (O(1) bound: 4)\n";
          gate_failed = true;
        }
        if (baseline_throughput > 0.0 &&
            run->events_per_sec < 0.6 * baseline_throughput) {
          std::cerr << "GATE FAILED: reactor throughput "
                    << static_cast<int64_t>(run->events_per_sec) << " ev/s < 60% of "
                    << "thread-per-conn " << static_cast<int64_t>(baseline_throughput)
                    << " ev/s at " << sites << " sites\n";
          gate_failed = true;
        }
      }
    }
  }
  if (flags.GetBool("assert-io-uring") && !io_uring_skipped) {
    if (io_uring_at_max_sites <= 0.0 || epoll_at_max_sites <= 0.0) {
      std::cerr << "GATE FAILED: --assert-io-uring needs both the epoll and "
                   "io_uring reactor rows in --io-backends\n";
      gate_failed = true;
    } else if (io_uring_at_max_sites < 0.85 * epoll_at_max_sites) {
      std::cerr << "GATE FAILED: io_uring reactor "
                << static_cast<int64_t>(io_uring_at_max_sites)
                << " ev/s < 85% of epoll "
                << static_cast<int64_t>(epoll_at_max_sites) << " ev/s at "
                << max_sites << " sites\n";
      gate_failed = true;
    }
  }
  table.Print(std::cout);
  std::cout << "\nI/O threads = process threads minus the k+1 protocol threads "
               "(k SiteNodes + coordinator)\nand the pre-session baseline. "
               "thread-per-conn grows ~3 per site; the reactor holds at 2\n"
               "event loops regardless of k.\n\n";

  if (!flags.GetString("json").empty()) {
    // Cumulative across the whole sweep (the registry is process-global);
    // gives bench_diff.py per-metric series — reactor loop p99, flow-control
    // pauses, queue blocks — alongside the throughput numbers.
    MetricsSnapshot final_metrics = MetricsRegistry::Global().Snapshot();
    final_metrics.captured_nanos = NowNanos();
    Json root = Json::Object();
    root.Add("bench", Json::Str("reactor_scale"))
        .Add("events_per_run", Json::Int(events))
        .Add("epsilon", Json::Double(flags.GetDouble("eps")))
        .Add("seed", Json::Int(flags.GetInt64("seed")))
        .Add("results", std::move(records))
        .Add("metrics", MetricsSnapshotToJson(final_metrics));
    const Status written = WriteJsonReport(flags.GetString("json"), root);
    if (!written.ok()) {
      std::cerr << written << "\n";
      return 1;
    }
    std::cout << "wrote " << flags.GetString("json") << "\n";
  }
  return gate_failed ? 1 : 0;
}

}  // namespace
}  // namespace dsgm

int main(int argc, char** argv) { return dsgm::Main(argc, argv); }
