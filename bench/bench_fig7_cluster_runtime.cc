// Figure 7: training runtime on the (threaded) cluster vs number of sites,
// for ALARM and HEPAR II. The paper ran EC2 t2.micro machines; this build
// substitutes one thread per site with real message queues (DESIGN.md
// section 3) — relative runtimes between algorithms are the signal.

#include <iostream>

#include "bayes/repository.h"
#include "common/table.h"
#include "dsgm/dsgm.h"
#include "harness/experiment.h"
#include "harness/json_report.h"

namespace dsgm {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags);
  flags.DefineInt64("events", 100000,
                    "training instances per run (paper: 500000)");
  flags.DefineString("networks", "alarm,hepar", "comma-separated network list");
  flags.DefineString("site-counts", "2,4,6,8,10", "cluster sizes to sweep");
  flags.DefineString("json", "BENCH_cluster_runtime.json",
                     "machine-readable results file (empty disables)");
  ParseFlagsOrDie(&flags, argc, argv);

  const int64_t events =
      flags.GetBool("full") ? 500000 : flags.GetInt64("events");
  const std::vector<TrackingStrategy> strategies = {
      TrackingStrategy::kExactMle, TrackingStrategy::kBaseline,
      TrackingStrategy::kUniform, TrackingStrategy::kNonUniform};

  Json records = Json::Array();
  for (const std::string& name : SplitCommaList(flags.GetString("networks"))) {
    StatusOr<BayesianNetwork> net = NetworkByName(name);
    if (!net.ok()) {
      std::cerr << net.status() << "\n";
      return 1;
    }
    TablePrinter table("Fig. 7 (" + name + "): cluster runtime (sec) vs sites, " +
                       FormatInstances(events) + " instances");
    std::vector<std::string> header = {"sites"};
    for (TrackingStrategy s : strategies) header.push_back(ToString(s));
    table.SetHeader(header);
    for (const std::string& sites_text : SplitCommaList(flags.GetString("site-counts"))) {
      const int sites = std::stoi(sites_text);
      std::vector<std::string> row = {std::to_string(sites)};
      for (TrackingStrategy strategy : strategies) {
        auto session = SessionBuilder(*net)
                           .WithBackend(Backend::kThreads)
                           .WithStrategy(strategy)
                           .WithSites(sites)
                           .WithEpsilon(flags.GetDouble("eps"))
                           .WithSeed(static_cast<uint64_t>(flags.GetInt64("seed")))
                           .Build();
        if (!session.ok()) {
          std::cerr << session.status() << "\n";
          return 1;
        }
        const Status streamed = (*session)->StreamGroundTruth(events);
        if (!streamed.ok()) {
          std::cerr << streamed << "\n";
          return 1;
        }
        const auto report = (*session)->Finish();
        if (!report.ok()) {
          std::cerr << report.status() << "\n";
          return 1;
        }
        row.push_back(FormatDouble(report->runtime_seconds, 3));
        Json record = RunReportToJson(*report);
        record.Add("network", Json::Str(net->name()))
            .Add("sites", Json::Int(sites))
            .Add("strategy", Json::Str(ToString(strategy)));
        records.Append(std::move(record));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
    std::cout << "\n";
  }

  if (!flags.GetString("json").empty()) {
    Json root = Json::Object();
    root.Add("bench", Json::Str("fig7_cluster_runtime"))
        .Add("events_per_run", Json::Int(events))
        .Add("epsilon", Json::Double(flags.GetDouble("eps")))
        .Add("seed", Json::Int(flags.GetInt64("seed")))
        .Add("results", std::move(records));
    const Status written = WriteJsonReport(flags.GetString("json"), root);
    if (!written.ok()) {
      std::cerr << written << "\n";
      return 1;
    }
    std::cout << "wrote " << flags.GetString("json") << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace dsgm

int main(int argc, char** argv) { return dsgm::Main(argc, argv); }
