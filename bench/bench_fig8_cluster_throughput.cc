// Figure 8: cluster throughput (events/sec) vs number of sites, for ALARM
// and HEPAR II, on the threaded cluster substrate.

#include <iostream>

#include "bayes/repository.h"
#include "cluster/cluster_runner.h"
#include "common/table.h"
#include "harness/experiment.h"

namespace dsgm {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags);
  flags.DefineInt64("events", 100000,
                    "training instances per run (paper: 500000)");
  flags.DefineString("networks", "alarm,hepar", "comma-separated network list");
  flags.DefineString("site-counts", "2,4,6,8,10", "cluster sizes to sweep");
  ParseFlagsOrDie(&flags, argc, argv);

  const int64_t events =
      flags.GetBool("full") ? 500000 : flags.GetInt64("events");
  const std::vector<TrackingStrategy> strategies = {
      TrackingStrategy::kExactMle, TrackingStrategy::kBaseline,
      TrackingStrategy::kUniform, TrackingStrategy::kNonUniform};

  for (const std::string& name : SplitCommaList(flags.GetString("networks"))) {
    StatusOr<BayesianNetwork> net = NetworkByName(name);
    if (!net.ok()) {
      std::cerr << net.status() << "\n";
      return 1;
    }
    TablePrinter table("Fig. 8 (" + name +
                       "): cluster throughput (events/sec) vs sites, " +
                       FormatInstances(events) + " instances");
    std::vector<std::string> header = {"sites"};
    for (TrackingStrategy s : strategies) header.push_back(ToString(s));
    table.SetHeader(header);
    for (const std::string& sites_text : SplitCommaList(flags.GetString("site-counts"))) {
      const int sites = std::stoi(sites_text);
      std::vector<std::string> row = {std::to_string(sites)};
      for (TrackingStrategy strategy : strategies) {
        ClusterConfig config;
        config.tracker.strategy = strategy;
        config.tracker.num_sites = sites;
        config.tracker.epsilon = flags.GetDouble("eps");
        config.tracker.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
        config.num_events = events;
        const ClusterResult result = RunCluster(*net, config);
        row.push_back(FormatCount(
            static_cast<int64_t>(result.throughput_events_per_sec)));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace dsgm

int main(int argc, char** argv) { return dsgm::Main(argc, argv); }
