// Ablation: randomized (Huang-Yi-Zhang, the paper's Lemma 4) vs
// deterministic threshold counters (prior art, paper reference [22]) under
// the same NONUNIFORM error allocation. The randomized counter's O(√k)
// site-dependence is the reason the paper adopts it; this sweep shows the
// gap growing with k.

#include <iostream>

#include "bayes/repository.h"
#include "bayes/sampler.h"
#include "common/table.h"
#include "core/mle_tracker.h"
#include "harness/experiment.h"

namespace dsgm {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags);
  flags.DefineInt64("events", 200000, "training instances");
  flags.DefineString("network", "alarm", "network name");
  flags.DefineString("site-counts", "5,10,30,60", "site sweep");
  ParseFlagsOrDie(&flags, argc, argv);

  StatusOr<BayesianNetwork> net = NetworkByName(flags.GetString("network"));
  if (!net.ok()) {
    std::cerr << net.status() << "\n";
    return 1;
  }
  const int64_t events = flags.GetInt64("events");

  TablePrinter table("Ablation (" + flags.GetString("network") +
                     "): randomized vs deterministic counters, NONUNIFORM, " +
                     FormatInstances(events) + " instances");
  table.SetHeader({"sites", "randomized msgs", "deterministic msgs",
                   "deterministic/randomized"});
  for (const std::string& sites_text : SplitCommaList(flags.GetString("site-counts"))) {
    const int sites = std::stoi(sites_text);
    uint64_t messages[2] = {0, 0};
    int index = 0;
    for (CounterType type : {CounterType::kRandomized, CounterType::kDeterministic}) {
      TrackerConfig config;
      config.strategy = TrackingStrategy::kNonUniform;
      config.counter_type = type;
      config.num_sites = sites;
      config.epsilon = flags.GetDouble("eps");
      config.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
      MleTracker tracker(*net, config);
      ForwardSampler sampler(*net, config.seed + 1);
      Rng router(config.seed + 2);
      Instance x;
      for (int64_t e = 0; e < events; ++e) {
        sampler.Sample(&x);
        tracker.Observe(x, static_cast<int>(
                               router.NextBounded(static_cast<uint64_t>(sites))));
      }
      messages[index++] = tracker.comm().TotalMessages();
    }
    table.AddRow({sites_text, FormatScientific(static_cast<double>(messages[0])),
                  FormatScientific(static_cast<double>(messages[1])),
                  FormatDouble(static_cast<double>(messages[1]) /
                                   static_cast<double>(messages[0]),
                               3) +
                      "x"});
  }
  table.Print(std::cout);
  std::cout << "\n(The deterministic counter pays O(k) messages per doubling "
               "vs the randomized counter's O(sqrt(k)) — the gap widens with "
               "the number of sites, which is why the paper builds on the "
               "Huang-Yi-Zhang sampler.)\n";
  return 0;
}

}  // namespace
}  // namespace dsgm

int main(int argc, char** argv) { return dsgm::Main(argc, argv); }
