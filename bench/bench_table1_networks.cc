// Table I: statistics of the benchmark networks. Prints the paper's targets
// next to what the seeded synthetic stand-ins achieve (DESIGN.md section 3).

#include <iostream>

#include "bayes/repository.h"
#include "common/table.h"
#include "harness/experiment.h"

namespace dsgm {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags);
  ParseFlagsOrDie(&flags, argc, argv);

  TablePrinter table("Table I: Bayesian networks used in the experiments");
  table.SetHeader({"dataset", "nodes (paper)", "nodes (ours)", "edges (paper)",
                   "edges (ours)", "params (paper)", "params (ours)",
                   "min CPD entry"});
  const std::vector<NetworkTarget> targets = PaperNetworkTargets();
  const BayesianNetwork networks[4] = {Alarm(), Hepar(), Link(), Munin()};
  for (int i = 0; i < 4; ++i) {
    const NetworkTarget& target = targets[static_cast<size_t>(i)];
    const BayesianNetwork& net = networks[i];
    table.AddRow({target.name, std::to_string(target.nodes),
                  std::to_string(net.num_variables()), std::to_string(target.edges),
                  std::to_string(net.dag().num_edges()), FormatCount(target.params),
                  FormatCount(net.FreeParams()), FormatDouble(net.MinCpdEntry(), 3)});
  }
  table.Print(std::cout);
  std::cout << "\nNEW-ALARM (Section VI-B): " << NewAlarm().FreeParams()
            << " params after inflating 6 domains to 20 values (ALARM: "
            << Alarm().FreeParams() << ").\n";
  return 0;
}

}  // namespace
}  // namespace dsgm

int main(int argc, char** argv) { return dsgm::Main(argc, argv); }
