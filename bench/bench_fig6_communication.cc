// Figure 6: communication cost (number of messages, log scale in the paper)
// vs number of training instances, for all four algorithms on all four
// networks.

#include "bayes/repository.h"
#include "harness/experiment.h"
#include "harness/report.h"

namespace dsgm {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags);
  flags.DefineString("networks", "alarm,hepar,link,munin",
                     "comma-separated network list");
  ParseFlagsOrDie(&flags, argc, argv);

  ExperimentOptions options;
  ApplyCommonFlags(flags, &options);
  // Error evaluation is irrelevant here; keep it cheap.
  options.test_events = 10;

  for (const std::string& name : SplitCommaList(flags.GetString("networks"))) {
    StatusOr<BayesianNetwork> net = NetworkByName(name);
    if (!net.ok()) {
      std::cerr << net.status() << "\n";
      return 1;
    }
    const std::vector<Snapshot> snapshots = RunStreamExperiment(*net, options);
    PrintCommTable("Fig. 6 (" + name + "): total messages vs training instances",
                   snapshots, options.strategies, options.checkpoints);
  }
  return 0;
}

}  // namespace
}  // namespace dsgm

int main(int argc, char** argv) { return dsgm::Main(argc, argv); }
