// Figure 3: mean testing error (relative to the ground truth) vs number of
// training instances, on all four networks.

#include "bayes/repository.h"
#include "harness/experiment.h"
#include "harness/report.h"

namespace dsgm {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags);
  flags.DefineString("networks", "alarm,hepar,link,munin",
                     "comma-separated network list");
  ParseFlagsOrDie(&flags, argc, argv);

  ExperimentOptions options;
  ApplyCommonFlags(flags, &options);

  for (const std::string& name : SplitCommaList(flags.GetString("networks"))) {
    StatusOr<BayesianNetwork> net = NetworkByName(name);
    if (!net.ok()) {
      std::cerr << net.status() << "\n";
      return 1;
    }
    const std::vector<Snapshot> snapshots = RunStreamExperiment(*net, options);
    PrintMeanErrorTable("Fig. 3 (" + name + "): mean error to ground truth",
                        snapshots, options.strategies, options.checkpoints,
                        ErrorMetric::kToTruth);
  }
  return 0;
}

}  // namespace
}  // namespace dsgm

int main(int argc, char** argv) { return dsgm::Main(argc, argv); }
