// Transport comparison: the same cluster session runs on the in-process
// loopback and on localhost TCP (codec-serialized frames through the
// kernel socket layer), reporting throughput side by side plus the
// measured wire bytes the TCP substrate actually moved. Quantifies the
// serialization + syscall tax the transport abstraction introduces, and
// calibrates the honesty of the CommStats estimates: the est/wire column
// (and the estimated_to_wire_byte_ratio JSON field) is the factor by which
// the protocol-level byte estimate overshoots the varint-coded wire —
// about 3x, which also scales the fig6/fig11 byte reproductions.
//
// The TCP rows additionally sweep negotiated wire compression (protocol
// v5, --compression): each point runs once with the capability disabled
// (the v4 wire) and once with it on, reporting the realized byte reduction
// and its throughput cost. Compression targets the event stream (EventBatch
// frames) plus final-count bundles — kReports/kSync bundles ride the
// latency path raw — so the headline ratio is measured on the downstream
// (coordinator->site) direction the codec actually compresses; the total
// two-direction ratio is reported alongside. --assert-compression gates
// the sweep-wide numbers (>= 1.5x fewer event-stream bytes at >= 60% of
// the raw throughput in-gate; the <= 10% cost acceptance claim is judged
// on the full bench numbers).

#include <iostream>

#include "bayes/repository.h"
#include "common/metrics.h"
#include "common/table.h"
#include "dsgm/dsgm.h"
#include "harness/experiment.h"
#include "harness/json_report.h"
#include "net/compress.h"

namespace dsgm {
namespace {

StatusOr<RunReport> RunOnce(const BayesianNetwork& net, TrackingStrategy strategy,
                            int sites, int64_t events, double eps, uint64_t seed,
                            bool tcp, bool compression) {
  // Process-global switch: flip for the duration of this run only. Off
  // reproduces the v4 wire exactly (the capability is never advertised).
  SetWireCompressionEnabled(compression);
  SessionBuilder builder(net);
  builder.WithBackend(Backend::kThreads)
      .WithStrategy(strategy)
      .WithSites(sites)
      .WithEpsilon(eps)
      .WithSeed(seed);
  if (tcp) builder.WithTransport(MakeLocalTcpTransport);
  StatusOr<std::unique_ptr<Session>> session = builder.Build();
  if (!session.ok()) {
    SetWireCompressionEnabled(true);
    return session.status();
  }
  Status streamed = (*session)->StreamGroundTruth(events);
  StatusOr<RunReport> report =
      streamed.ok() ? (*session)->Finish() : StatusOr<RunReport>(streamed);
  SetWireCompressionEnabled(true);
  return report;
}

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags);
  flags.DefineInt64("events", 100000, "training instances per run");
  flags.DefineString("network", "alarm", "network to stream");
  flags.DefineString("site-counts", "2,4,8", "cluster sizes to sweep");
  flags.DefineBool("compression", true,
                   "also run each TCP point with negotiated v5 wire "
                   "compression and report the byte reduction + throughput "
                   "cost (off: v4 wire only)");
  flags.DefineBool("assert-compression", false,
                   "exit 1 unless, summed over the whole TCP sweep, "
                   "compression cuts event-stream (downstream) wire bytes "
                   ">= 1.5x AND the mean compressed-run throughput stays "
                   ">= 60% of uncompressed (noise-tolerant gate; the <= 10% "
                   "cost acceptance claim is judged on the full bench "
                   "numbers). Implies --compression");
  flags.DefineString("json", "BENCH_net.json",
                     "machine-readable results file (empty disables)");
  ParseFlagsOrDie(&flags, argc, argv);

  const int64_t events = flags.GetInt64("events");
  const bool sweep_compression =
      flags.GetBool("compression") || flags.GetBool("assert-compression");
  const StatusOr<BayesianNetwork> net = NetworkByName(flags.GetString("network"));
  if (!net.ok()) {
    std::cerr << net.status() << "\n";
    return 1;
  }
  const std::vector<TrackingStrategy> strategies = {TrackingStrategy::kExactMle,
                                                    TrackingStrategy::kNonUniform};

  TablePrinter table("Transport comparison (" + net->name() + ", " +
                     FormatInstances(events) +
                     " instances): loopback vs localhost TCP");
  table.SetHeader({"sites", "algorithm", "loopback events/s", "tcp events/s",
                   "tcp/loopback", "tcp MiB up", "tcp MiB down", "est/wire"});
  TablePrinter compression_table(
      "Wire compression (protocol v5): raw vs negotiated-LZ TCP bytes");
  compression_table.SetHeader({"sites", "algorithm", "raw MiB", "LZ MiB",
                               "stream ratio", "total ratio", "raw events/s",
                               "LZ events/s", "throughput"});
  Json records = Json::Array();
  uint64_t raw_wire_total = 0;
  uint64_t lz_wire_total = 0;
  uint64_t raw_down_total = 0;
  uint64_t lz_down_total = 0;
  double throughput_ratio_sum = 0.0;
  int throughput_ratio_count = 0;
  for (const std::string& sites_text : SplitCommaList(flags.GetString("site-counts"))) {
    const int sites = std::stoi(sites_text);
    for (TrackingStrategy strategy : strategies) {
      const double eps = flags.GetDouble("eps");
      const uint64_t seed = static_cast<uint64_t>(flags.GetInt64("seed"));

      const StatusOr<RunReport> loopback = RunOnce(
          *net, strategy, sites, events, eps, seed, /*tcp=*/false,
          /*compression=*/false);
      // The headline TCP row is the UNCOMPRESSED wire: est/wire calibration
      // and cross-commit throughput history stay comparable either way.
      const StatusOr<RunReport> tcp = RunOnce(*net, strategy, sites, events,
                                              eps, seed, /*tcp=*/true,
                                              /*compression=*/false);
      if (!loopback.ok() || !tcp.ok()) {
        std::cerr << loopback.status() << " " << tcp.status() << "\n";
        return 1;
      }

      const double ratio =
          loopback->throughput_events_per_sec > 0.0
              ? tcp->throughput_events_per_sec / loopback->throughput_events_per_sec
              : 0.0;
      // How far the protocol-level CommStats byte estimate overshoots the
      // measured wire bytes (varint coding shrinks real traffic).
      const uint64_t wire_bytes = tcp->transport_bytes_up + tcp->transport_bytes_down;
      const double est_to_wire =
          wire_bytes > 0
              ? static_cast<double>(tcp->comm.bytes_up + tcp->comm.bytes_down) /
                    static_cast<double>(wire_bytes)
              : 0.0;
      table.AddRow({std::to_string(sites), ToString(strategy),
                    FormatCount(static_cast<int64_t>(loopback->throughput_events_per_sec)),
                    FormatCount(static_cast<int64_t>(tcp->throughput_events_per_sec)),
                    FormatDouble(ratio, 2),
                    FormatDouble(static_cast<double>(tcp->transport_bytes_up) / (1 << 20), 1),
                    FormatDouble(static_cast<double>(tcp->transport_bytes_down) / (1 << 20), 1),
                    FormatDouble(est_to_wire, 2)});

      for (const auto& entry :
           {std::pair<const char*, const RunReport*>{"loopback", &*loopback},
            std::pair<const char*, const RunReport*>{"tcp", &*tcp}}) {
        Json record = RunReportToJson(*entry.second);
        record.Add("network", Json::Str(net->name()))
            .Add("sites", Json::Int(sites))
            .Add("strategy", Json::Str(ToString(strategy)))
            .Add("transport", Json::Str(entry.first))
            .Add("compression", Json::Str("off"));
        records.Append(std::move(record));
      }

      if (!sweep_compression) continue;
      const StatusOr<RunReport> tcp_lz = RunOnce(*net, strategy, sites, events,
                                                 eps, seed, /*tcp=*/true,
                                                 /*compression=*/true);
      if (!tcp_lz.ok()) {
        std::cerr << tcp_lz.status() << "\n";
        return 1;
      }
      const uint64_t lz_wire_bytes =
          tcp_lz->transport_bytes_up + tcp_lz->transport_bytes_down;
      const double total_ratio =
          lz_wire_bytes > 0
              ? static_cast<double>(wire_bytes) / static_cast<double>(lz_wire_bytes)
              : 0.0;
      // The event stream is the compressed direction; kReports syncs ride
      // upstream raw and would dilute the ratio the codec is judged on.
      const double stream_ratio =
          tcp_lz->transport_bytes_down > 0
              ? static_cast<double>(tcp->transport_bytes_down) /
                    static_cast<double>(tcp_lz->transport_bytes_down)
              : 0.0;
      const double throughput_ratio =
          tcp->throughput_events_per_sec > 0.0
              ? tcp_lz->throughput_events_per_sec / tcp->throughput_events_per_sec
              : 0.0;
      raw_wire_total += wire_bytes;
      lz_wire_total += lz_wire_bytes;
      raw_down_total += tcp->transport_bytes_down;
      lz_down_total += tcp_lz->transport_bytes_down;
      throughput_ratio_sum += throughput_ratio;
      ++throughput_ratio_count;
      compression_table.AddRow(
          {std::to_string(sites), ToString(strategy),
           FormatDouble(static_cast<double>(wire_bytes) / (1 << 20), 2),
           FormatDouble(static_cast<double>(lz_wire_bytes) / (1 << 20), 2),
           FormatDouble(stream_ratio, 2), FormatDouble(total_ratio, 2),
           FormatCount(static_cast<int64_t>(tcp->throughput_events_per_sec)),
           FormatCount(static_cast<int64_t>(tcp_lz->throughput_events_per_sec)),
           FormatDouble(throughput_ratio, 2)});
      Json record = RunReportToJson(*tcp_lz);
      record.Add("network", Json::Str(net->name()))
          .Add("sites", Json::Int(sites))
          .Add("strategy", Json::Str(ToString(strategy)))
          .Add("transport", Json::Str("tcp"))
          .Add("compression", Json::Str("on"))
          .Add("stream_compression_ratio", Json::Double(stream_ratio))
          .Add("wire_compression_ratio", Json::Double(total_ratio))
          .Add("compressed_throughput_ratio", Json::Double(throughput_ratio));
      records.Append(std::move(record));
    }
  }
  table.Print(std::cout);
  std::cout << "\nest/wire is the CommStats protocol-level byte estimate over "
               "the measured TCP bytes\n(framing included): the fig6/fig11 "
               "byte reproductions use the estimate, so divide\nby this "
               "factor for wire-honest numbers.\n\n";

  double sweep_total_ratio = 0.0;
  double sweep_stream_ratio = 0.0;
  double sweep_throughput_ratio = 0.0;
  bool gate_failed = false;
  if (sweep_compression && lz_wire_total > 0 && lz_down_total > 0 &&
      throughput_ratio_count > 0) {
    sweep_total_ratio = static_cast<double>(raw_wire_total) /
                        static_cast<double>(lz_wire_total);
    sweep_stream_ratio = static_cast<double>(raw_down_total) /
                         static_cast<double>(lz_down_total);
    sweep_throughput_ratio = throughput_ratio_sum / throughput_ratio_count;
    compression_table.Print(std::cout);
    std::cout << "\nsweep total: " << FormatDouble(sweep_stream_ratio, 2)
              << "x fewer event-stream bytes ("
              << FormatDouble(sweep_total_ratio, 2)
              << "x both directions) at "
              << FormatDouble(sweep_throughput_ratio, 2)
              << "x the uncompressed throughput\n\n";
    if (flags.GetBool("assert-compression")) {
      if (sweep_stream_ratio < 1.5) {
        std::cerr << "GATE FAILED: compression cut event-stream bytes only "
                  << FormatDouble(sweep_stream_ratio, 2) << "x (< 1.5x) over "
                  << "the TCP sweep\n";
        gate_failed = true;
      }
      if (sweep_throughput_ratio < 0.6) {
        std::cerr << "GATE FAILED: mean compressed throughput "
                  << FormatDouble(sweep_throughput_ratio, 2)
                  << "x of uncompressed (< 0.6x) over the TCP sweep\n";
        gate_failed = true;
      }
    }
  } else if (flags.GetBool("assert-compression")) {
    std::cerr << "GATE FAILED: --assert-compression ran no compressed TCP "
                 "points\n";
    gate_failed = true;
  }

  if (!flags.GetString("json").empty()) {
    Json root = Json::Object();
    // Cumulative across the sweep; carries the codec-level
    // net.compress.{bytes_in,bytes_out,ratio_x1000} series for
    // bench_diff.py alongside the per-run wire numbers.
    MetricsSnapshot final_metrics = MetricsRegistry::Global().Snapshot();
    final_metrics.captured_nanos = NowNanos();
    root.Add("bench", Json::Str("net_transport"))
        .Add("events_per_run", Json::Int(events))
        .Add("epsilon", Json::Double(flags.GetDouble("eps")))
        .Add("seed", Json::Int(flags.GetInt64("seed")))
        .Add("results", std::move(records))
        .Add("metrics", MetricsSnapshotToJson(final_metrics));
    if (sweep_compression) {
      Json summary = Json::Object();
      summary.Add("wire_bytes_uncompressed", Json::Int(static_cast<int64_t>(raw_wire_total)))
          .Add("wire_bytes_compressed", Json::Int(static_cast<int64_t>(lz_wire_total)))
          .Add("stream_bytes_uncompressed", Json::Int(static_cast<int64_t>(raw_down_total)))
          .Add("stream_bytes_compressed", Json::Int(static_cast<int64_t>(lz_down_total)))
          .Add("stream_compression_ratio", Json::Double(sweep_stream_ratio))
          .Add("wire_compression_ratio", Json::Double(sweep_total_ratio))
          .Add("compressed_throughput_ratio", Json::Double(sweep_throughput_ratio));
      root.Add("compression_summary", std::move(summary));
    }
    const Status written = WriteJsonReport(flags.GetString("json"), root);
    if (!written.ok()) {
      std::cerr << written << "\n";
      return 1;
    }
    std::cout << "wrote " << flags.GetString("json") << "\n";
  }
  return gate_failed ? 1 : 0;
}

}  // namespace
}  // namespace dsgm

int main(int argc, char** argv) { return dsgm::Main(argc, argv); }
