// Transport comparison: the same cluster session runs on the in-process
// loopback and on localhost TCP (codec-serialized frames through the
// kernel socket layer), reporting throughput side by side plus the
// measured wire bytes the TCP substrate actually moved. Quantifies the
// serialization + syscall tax the transport abstraction introduces, and
// calibrates the honesty of the CommStats estimates: the est/wire column
// (and the estimated_to_wire_byte_ratio JSON field) is the factor by which
// the protocol-level byte estimate overshoots the varint-coded wire —
// about 3x, which also scales the fig6/fig11 byte reproductions.

#include <iostream>

#include "bayes/repository.h"
#include "common/table.h"
#include "dsgm/dsgm.h"
#include "harness/experiment.h"
#include "harness/json_report.h"

namespace dsgm {
namespace {

StatusOr<RunReport> RunOnce(const BayesianNetwork& net, TrackingStrategy strategy,
                            int sites, int64_t events, double eps, uint64_t seed,
                            bool tcp) {
  SessionBuilder builder(net);
  builder.WithBackend(Backend::kThreads)
      .WithStrategy(strategy)
      .WithSites(sites)
      .WithEpsilon(eps)
      .WithSeed(seed);
  if (tcp) builder.WithTransport(MakeLocalTcpTransport);
  StatusOr<std::unique_ptr<Session>> session = builder.Build();
  if (!session.ok()) return session.status();
  DSGM_RETURN_IF_ERROR((*session)->StreamGroundTruth(events));
  return (*session)->Finish();
}

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags);
  flags.DefineInt64("events", 100000, "training instances per run");
  flags.DefineString("network", "alarm", "network to stream");
  flags.DefineString("site-counts", "2,4,8", "cluster sizes to sweep");
  flags.DefineString("json", "BENCH_net.json",
                     "machine-readable results file (empty disables)");
  ParseFlagsOrDie(&flags, argc, argv);

  const int64_t events = flags.GetInt64("events");
  const StatusOr<BayesianNetwork> net = NetworkByName(flags.GetString("network"));
  if (!net.ok()) {
    std::cerr << net.status() << "\n";
    return 1;
  }
  const std::vector<TrackingStrategy> strategies = {TrackingStrategy::kExactMle,
                                                    TrackingStrategy::kNonUniform};

  TablePrinter table("Transport comparison (" + net->name() + ", " +
                     FormatInstances(events) +
                     " instances): loopback vs localhost TCP");
  table.SetHeader({"sites", "algorithm", "loopback events/s", "tcp events/s",
                   "tcp/loopback", "tcp MiB up", "tcp MiB down", "est/wire"});
  Json records = Json::Array();
  for (const std::string& sites_text : SplitCommaList(flags.GetString("site-counts"))) {
    const int sites = std::stoi(sites_text);
    for (TrackingStrategy strategy : strategies) {
      const double eps = flags.GetDouble("eps");
      const uint64_t seed = static_cast<uint64_t>(flags.GetInt64("seed"));

      const StatusOr<RunReport> loopback =
          RunOnce(*net, strategy, sites, events, eps, seed, /*tcp=*/false);
      const StatusOr<RunReport> tcp =
          RunOnce(*net, strategy, sites, events, eps, seed, /*tcp=*/true);
      if (!loopback.ok() || !tcp.ok()) {
        std::cerr << loopback.status() << " " << tcp.status() << "\n";
        return 1;
      }

      const double ratio =
          loopback->throughput_events_per_sec > 0.0
              ? tcp->throughput_events_per_sec / loopback->throughput_events_per_sec
              : 0.0;
      // How far the protocol-level CommStats byte estimate overshoots the
      // measured wire bytes (varint coding shrinks real traffic).
      const uint64_t wire_bytes = tcp->transport_bytes_up + tcp->transport_bytes_down;
      const double est_to_wire =
          wire_bytes > 0
              ? static_cast<double>(tcp->comm.bytes_up + tcp->comm.bytes_down) /
                    static_cast<double>(wire_bytes)
              : 0.0;
      table.AddRow({std::to_string(sites), ToString(strategy),
                    FormatCount(static_cast<int64_t>(loopback->throughput_events_per_sec)),
                    FormatCount(static_cast<int64_t>(tcp->throughput_events_per_sec)),
                    FormatDouble(ratio, 2),
                    FormatDouble(static_cast<double>(tcp->transport_bytes_up) / (1 << 20), 1),
                    FormatDouble(static_cast<double>(tcp->transport_bytes_down) / (1 << 20), 1),
                    FormatDouble(est_to_wire, 2)});

      for (const auto& entry :
           {std::pair<const char*, const RunReport*>{"loopback", &*loopback},
            std::pair<const char*, const RunReport*>{"tcp", &*tcp}}) {
        Json record = RunReportToJson(*entry.second);
        record.Add("network", Json::Str(net->name()))
            .Add("sites", Json::Int(sites))
            .Add("strategy", Json::Str(ToString(strategy)))
            .Add("transport", Json::Str(entry.first));
        records.Append(std::move(record));
      }
    }
  }
  table.Print(std::cout);
  std::cout << "\nest/wire is the CommStats protocol-level byte estimate over "
               "the measured TCP bytes\n(framing included): the fig6/fig11 "
               "byte reproductions use the estimate, so divide\nby this "
               "factor for wire-honest numbers.\n\n";

  if (!flags.GetString("json").empty()) {
    Json root = Json::Object();
    root.Add("bench", Json::Str("net_transport"))
        .Add("events_per_run", Json::Int(events))
        .Add("epsilon", Json::Double(flags.GetDouble("eps")))
        .Add("seed", Json::Int(flags.GetInt64("seed")))
        .Add("results", std::move(records));
    const Status written = WriteJsonReport(flags.GetString("json"), root);
    if (!written.ok()) {
      std::cerr << written << "\n";
      return 1;
    }
    std::cout << "wrote " << flags.GetString("json") << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace dsgm

int main(int argc, char** argv) { return dsgm::Main(argc, argv); }
