// Transport comparison: the same cluster runs on the in-process loopback
// and on localhost TCP (codec-serialized frames through the kernel socket
// layer), reporting throughput side by side plus the measured wire bytes
// the TCP substrate actually moved. Quantifies the serialization + syscall
// tax the transport abstraction introduces, and gives the honest bytes the
// estimated CommStats can be checked against.

#include <iostream>

#include "bayes/repository.h"
#include "cluster/cluster_runner.h"
#include "common/table.h"
#include "harness/experiment.h"
#include "harness/json_report.h"

namespace dsgm {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags);
  flags.DefineInt64("events", 100000, "training instances per run");
  flags.DefineString("network", "alarm", "network to stream");
  flags.DefineString("site-counts", "2,4,8", "cluster sizes to sweep");
  flags.DefineString("json", "BENCH_net.json",
                     "machine-readable results file (empty disables)");
  ParseFlagsOrDie(&flags, argc, argv);

  const int64_t events = flags.GetInt64("events");
  const StatusOr<BayesianNetwork> net = NetworkByName(flags.GetString("network"));
  if (!net.ok()) {
    std::cerr << net.status() << "\n";
    return 1;
  }
  const std::vector<TrackingStrategy> strategies = {TrackingStrategy::kExactMle,
                                                    TrackingStrategy::kNonUniform};

  TablePrinter table("Transport comparison (" + net->name() + ", " +
                     FormatInstances(events) +
                     " instances): loopback vs localhost TCP");
  table.SetHeader({"sites", "algorithm", "loopback events/s", "tcp events/s",
                   "tcp/loopback", "tcp MiB up", "tcp MiB down"});
  Json records = Json::Array();
  for (const std::string& sites_text : SplitCommaList(flags.GetString("site-counts"))) {
    const int sites = std::stoi(sites_text);
    for (TrackingStrategy strategy : strategies) {
      ClusterConfig config;
      config.tracker.strategy = strategy;
      config.tracker.num_sites = sites;
      config.tracker.epsilon = flags.GetDouble("eps");
      config.tracker.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
      config.num_events = events;

      const ClusterResult loopback = RunCluster(*net, config);
      config.transport = MakeLocalTcpTransport;
      const ClusterResult tcp = RunCluster(*net, config);

      const double ratio =
          loopback.throughput_events_per_sec > 0.0
              ? tcp.throughput_events_per_sec / loopback.throughput_events_per_sec
              : 0.0;
      table.AddRow({std::to_string(sites), ToString(strategy),
                    FormatCount(static_cast<int64_t>(loopback.throughput_events_per_sec)),
                    FormatCount(static_cast<int64_t>(tcp.throughput_events_per_sec)),
                    FormatDouble(ratio, 2),
                    FormatDouble(static_cast<double>(tcp.transport_bytes_up) / (1 << 20), 1),
                    FormatDouble(static_cast<double>(tcp.transport_bytes_down) / (1 << 20), 1)});

      for (const auto& entry :
           {std::pair<const char*, const ClusterResult*>{"loopback", &loopback},
            std::pair<const char*, const ClusterResult*>{"tcp", &tcp}}) {
        Json record = ClusterResultToJson(*entry.second);
        record.Add("network", Json::Str(net->name()))
            .Add("sites", Json::Int(sites))
            .Add("strategy", Json::Str(ToString(strategy)))
            .Add("transport", Json::Str(entry.first));
        records.Append(std::move(record));
      }
    }
  }
  table.Print(std::cout);
  std::cout << "\n";

  if (!flags.GetString("json").empty()) {
    Json root = Json::Object();
    root.Add("bench", Json::Str("net_transport"))
        .Add("events_per_run", Json::Int(events))
        .Add("epsilon", Json::Double(flags.GetDouble("eps")))
        .Add("seed", Json::Int(flags.GetInt64("seed")))
        .Add("results", std::move(records));
    const Status written = WriteJsonReport(flags.GetString("json"), root);
    if (!written.ok()) {
      std::cerr << written << "\n";
      return 1;
    }
    std::cout << "wrote " << flags.GetString("json") << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace dsgm

int main(int argc, char** argv) { return dsgm::Main(argc, argv); }
