// Ablation: the paper's message-bundling optimization (Section VI-A) —
// merging all counter updates caused by one event into a single wire
// message. Reports logical counter-update messages vs bundled wire
// messages for each algorithm.

#include <iostream>

#include "bayes/repository.h"
#include "common/table.h"
#include "harness/experiment.h"

namespace dsgm {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags);
  flags.DefineInt64("events", 200000, "training instances");
  flags.DefineString("network", "alarm", "network name");
  ParseFlagsOrDie(&flags, argc, argv);

  StatusOr<BayesianNetwork> net = NetworkByName(flags.GetString("network"));
  if (!net.ok()) {
    std::cerr << net.status() << "\n";
    return 1;
  }
  ExperimentOptions options;
  ApplyCommonFlags(flags, &options);
  options.checkpoints = {flags.GetInt64("events")};
  options.test_events = 10;
  const std::vector<Snapshot> snapshots = RunStreamExperiment(*net, options);

  TablePrinter table("Ablation (" + flags.GetString("network") +
                     "): logical messages vs bundled wire messages, " +
                     FormatInstances(flags.GetInt64("events")) + " instances");
  table.SetHeader({"algorithm", "counter updates", "broadcast+sync",
                   "wire messages (bundled)", "bundling factor"});
  for (TrackingStrategy strategy : options.strategies) {
    const Snapshot& snap =
        FindSnapshot(snapshots, strategy, options.checkpoints[0]);
    const uint64_t control =
        snap.comm.broadcast_messages + snap.comm.sync_messages;
    const double factor =
        snap.comm.wire_messages > 0
            ? static_cast<double>(snap.comm.TotalMessages()) /
                  static_cast<double>(snap.comm.wire_messages)
            : 0.0;
    table.AddRow({ToString(strategy),
                  FormatScientific(static_cast<double>(snap.comm.update_messages)),
                  FormatScientific(static_cast<double>(control)),
                  FormatScientific(static_cast<double>(snap.comm.wire_messages)),
                  FormatDouble(factor, 3) + "x"});
  }
  table.Print(std::cout);
  std::cout << "\n(Bundling benefits EXACTMLE and BASELINE the most, exactly "
               "as observed in the paper's cluster runs.)\n";
  return 0;
}

}  // namespace
}  // namespace dsgm

int main(int argc, char** argv) { return dsgm::Main(argc, argv); }
