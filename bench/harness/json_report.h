// Machine-readable bench output, next to report.h's human tables: a
// minimal JSON value tree plus WriteJsonReport, so bench binaries can emit
// BENCH_*.json files and runs accumulate a perf trajectory that tooling
// can diff across commits.

#ifndef DSGM_BENCH_HARNESS_JSON_REPORT_H_
#define DSGM_BENCH_HARNESS_JSON_REPORT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster_runner.h"
#include "common/metrics.h"
#include "common/status.h"
#include "dsgm/report.h"

namespace dsgm {

/// A JSON value: null, bool, number, string, array, or object. Objects keep
/// insertion order so reports read stably. Build with the static factories
/// and Add/Append; render with Dump or WriteJsonReport.
class Json {
 public:
  Json() : kind_(Kind::kNull) {}

  static Json Null() { return Json(); }
  static Json Bool(bool value);
  static Json Int(int64_t value);
  static Json Double(double value);
  static Json Str(std::string value);
  static Json Array();
  static Json Object();

  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Object member (CHECK-fails unless this is an object). Returns *this
  /// for chaining.
  Json& Add(const std::string& key, Json value);

  /// Array element (CHECK-fails unless this is an array).
  Json& Append(Json value);

  /// Serializes with 2-space indentation. Non-finite numbers render as
  /// null, keeping the output standard JSON.
  void Dump(std::ostream& os) const;
  std::string ToString() const;

 private:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  void DumpIndented(std::ostream& os, int indent) const;

  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

/// Writes `root` to `path` (atomically: temp file + rename), with a
/// trailing newline.
Status WriteJsonReport(const std::string& path, const Json& root);

/// Flattens one cluster-layer ClusterResult into the same record shape as
/// RunReportToJson. `backend` tags the record (the default fits the
/// threaded benches; pass Backend::kLocalTcp for a socketed coordinator).
Json ClusterResultToJson(const ClusterResult& result,
                         Backend backend = Backend::kThreads);

/// Same record shape for a Session's RunReport, plus the backend tag and —
/// when the transport measured real bytes — the estimated/wire byte ratio,
/// so BENCH_*.json tracks how honest the CommStats estimates are.
Json RunReportToJson(const RunReport& report);

/// Structured metrics record: {"counters":{..},"gauges":{..},
/// "histograms":{name:{count,sum,p50,p99,max}},"sites":[..]} — the same
/// shape as the --metrics-dump-ms lines but pretty-printed into a bench
/// report, so bench_diff.py can diff per-metric series across commits.
Json MetricsSnapshotToJson(const MetricsSnapshot& snapshot);

}  // namespace dsgm

#endif  // DSGM_BENCH_HARNESS_JSON_REPORT_H_
