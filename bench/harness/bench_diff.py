#!/usr/bin/env python3
"""Diff two BENCH_*.json perf-trajectory files and print per-metric deltas.

The bench binaries (bench_fig7/8, bench_net_transport, bench_reactor_scale,
bench_ingest_scale, ...) all emit the same shape: a root object of run-level
scalars plus a "results" array of records. This tool aligns the two files'
records by their identifying (non-numeric) fields plus any numeric fields
that are sweep axes rather than measurements (sites, producers, poller_hz,
...), then prints old -> new with absolute and relative deltas for every
shared numeric metric.

Intended as a NON-GATING report: exit code is 0 unless --fail-above is given
a percent threshold AND a metric listed in --regress-metrics regresses past
it. CI runs it best-effort against the previous commit's uploaded artifacts
(see .github/workflows/ci.yml); locally:

    bench/harness/bench_diff.py old/BENCH_ingest.json BENCH_ingest.json
"""

import argparse
import json
import re
import sys

# Numeric fields that identify a record (sweep axes) rather than measure it.
KEY_FIELDS = {
    "sites", "producers", "poller_hz", "events_per_run", "batch_size",
    "seed", "epsilon", "events", "replicas", "num_events",
}
# Metrics where bigger is better; everything else numeric is assumed
# smaller-is-better when judging "regression" for --fail-above.
BIGGER_IS_BETTER = re.compile(
    r"(events_per_sec|throughput|speedup|snapshots_taken)")


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def record_key(record):
    """Stable identity of one results record: its non-metric fields."""
    parts = []
    for field in sorted(record):
        value = record[field]
        if not is_number(value) or field in KEY_FIELDS:
            parts.append(f"{field}={value}")
    return ", ".join(parts)


def extract_records(root):
    """Yields (key, {metric: value}) for the results array plus root scalars."""
    records = []
    if isinstance(root, dict):
        results = root.get("results", [])
        scalars = {k: v for k, v in root.items()
                   if is_number(v) and k not in KEY_FIELDS}
        if scalars:
            records.append(("<run totals>", scalars))
        for record in results:
            if not isinstance(record, dict):
                continue
            metrics = {k: v for k, v in record.items()
                       if is_number(v) and k not in KEY_FIELDS}
            if metrics:
                records.append((record_key(record), metrics))
    return records


def fmt(value):
    if isinstance(value, float) and value != int(value):
        return f"{value:,.4g}"
    return f"{int(value):,}"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline BENCH_*.json")
    parser.add_argument("new", help="candidate BENCH_*.json")
    parser.add_argument("--metrics", default="",
                        help="only report metrics matching this regex")
    parser.add_argument("--records", default="",
                        help="only report (and gate) records whose identity "
                             "key matches this regex — scopes --fail-above to "
                             "e.g. the 8-producer row or the tcp transport")
    parser.add_argument("--fail-above", type=float, default=None, metavar="PCT",
                        help="exit 1 if a --regress-metrics metric regresses "
                             "by more than PCT%% (default: never fail)")
    parser.add_argument("--regress-metrics", default="events_per_sec",
                        help="regex of metrics judged by --fail-above")
    args = parser.parse_args()

    with open(args.old) as f:
        old_root = json.load(f)
    with open(args.new) as f:
        new_root = json.load(f)

    old_records = dict(extract_records(old_root))
    new_records = dict(extract_records(new_root))
    metric_filter = re.compile(args.metrics) if args.metrics else None
    record_filter = re.compile(args.records) if args.records else None
    if record_filter:
        old_records = {k: v for k, v in old_records.items()
                       if record_filter.search(k)}
        new_records = {k: v for k, v in new_records.items()
                       if record_filter.search(k)}
    regress_filter = re.compile(args.regress_metrics)

    bench = new_root.get("bench", "?") if isinstance(new_root, dict) else "?"
    print(f"bench: {bench}   {args.old} -> {args.new}")
    failed = False
    width = max((len(k) for k in new_records), default=0)
    for key, new_metrics in new_records.items():
        old_metrics = old_records.get(key)
        if old_metrics is None:
            print(f"  {key:<{width}}  (new record; no baseline)")
            continue
        for metric, new_value in new_metrics.items():
            if metric_filter and not metric_filter.search(metric):
                continue
            old_value = old_metrics.get(metric)
            if old_value is None:
                continue
            delta = new_value - old_value
            if old_value:
                pct = delta / old_value * 100.0
            else:
                pct = 0.0 if delta == 0 else float("inf")
            arrow = "+" if delta >= 0 else ""
            line = (f"  {key:<{width}}  {metric}: {fmt(old_value)} -> "
                    f"{fmt(new_value)}  ({arrow}{pct:.1f}%)")
            if args.fail_above is not None and regress_filter.search(metric):
                bigger_better = bool(BIGGER_IS_BETTER.search(metric))
                regressed = (-pct if bigger_better else pct) > args.fail_above
                if regressed:
                    line += "  <-- REGRESSION"
                    failed = True
            print(line)
    for key in old_records:
        if key not in new_records:
            print(f"  {key:<{width}}  (dropped; present only in baseline)")
    if args.fail_above is not None and record_filter and not new_records:
        # A gate whose record vanished must fail loudly, not pass vacuously.
        print(f"  no records match --records '{args.records}'  <-- REGRESSION")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
