#include "harness/experiment.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "common/check.h"
#include "common/rng.h"

namespace dsgm {

std::vector<Snapshot> RunStreamExperiment(const BayesianNetwork& network,
                                          const ExperimentOptions& options) {
  DSGM_CHECK(!options.strategies.empty());
  DSGM_CHECK(!options.checkpoints.empty());
  DSGM_CHECK(std::is_sorted(options.checkpoints.begin(), options.checkpoints.end()));

  // Trackers: one per requested strategy, plus a hidden exact tracker as the
  // MLE reference if the exact strategy was not requested.
  std::vector<std::unique_ptr<MleTracker>> trackers;
  const MleTracker* exact_reference = nullptr;
  for (TrackingStrategy strategy : options.strategies) {
    TrackerConfig config;
    config.strategy = strategy;
    config.epsilon = options.epsilon;
    config.num_sites = options.sites;
    config.seed = options.seed ^ (0x9e37 + static_cast<uint64_t>(strategy) * 0x51ed);
    config.probability_constant = options.probability_constant;
    trackers.push_back(std::make_unique<MleTracker>(network, config));
    if (strategy == TrackingStrategy::kExactMle) {
      exact_reference = trackers.back().get();
    }
  }
  std::unique_ptr<MleTracker> hidden_exact;
  if (exact_reference == nullptr) {
    TrackerConfig config;
    config.strategy = TrackingStrategy::kExactMle;
    config.num_sites = options.sites;
    config.seed = options.seed;
    hidden_exact = std::make_unique<MleTracker>(network, config);
    exact_reference = hidden_exact.get();
  }

  // Test events are fixed up front so every checkpoint and strategy is
  // evaluated on the same queries.
  Rng master(options.seed);
  Rng event_rng = master.Split();
  TestEventOptions event_options;
  event_options.count = options.test_events;
  event_options.min_prob = options.test_event_min_prob;
  const std::vector<TestEvent> events =
      GenerateTestEvents(network, event_options, event_rng);

  ForwardSampler sampler(network, master.Next());
  Rng router = master.Split();
  std::unique_ptr<ZipfDistribution> zipf;
  if (options.zipf_exponent > 0.0) {
    zipf = std::make_unique<ZipfDistribution>(options.sites, options.zipf_exponent);
  }

  std::vector<Snapshot> snapshots;
  Instance instance;
  int64_t streamed = 0;
  for (int64_t checkpoint : options.checkpoints) {
    for (; streamed < checkpoint; ++streamed) {
      sampler.Sample(&instance);
      const int site =
          zipf ? zipf->Sample(router)
               : static_cast<int>(
                     router.NextBounded(static_cast<uint64_t>(options.sites)));
      for (auto& tracker : trackers) tracker->Observe(instance, site);
      if (hidden_exact) hidden_exact->Observe(instance, site);
    }
    for (auto& tracker : trackers) {
      Snapshot snap;
      snap.strategy = tracker->config().strategy;
      snap.instances = checkpoint;
      snap.comm = tracker->comm();
      for (const TestEvent& event : events) {
        const double estimate = tracker->JointProbability(event.assignment);
        snap.error_to_truth.Add(std::abs(estimate - event.truth_prob) /
                                event.truth_prob);
        if (tracker->config().strategy != TrackingStrategy::kExactMle) {
          const double mle = exact_reference->JointProbability(event.assignment);
          if (mle > 0.0) {
            snap.error_to_mle.Add(std::abs(estimate - mle) / mle);
          }
        }
      }
      snapshots.push_back(std::move(snap));
    }
  }
  return snapshots;
}

const Snapshot& FindSnapshot(const std::vector<Snapshot>& snapshots,
                             TrackingStrategy strategy, int64_t instances) {
  for (const Snapshot& snap : snapshots) {
    if (snap.strategy == strategy && snap.instances == instances) return snap;
  }
  DSGM_CHECK(false) << "no snapshot for" << ToString(strategy) << "at" << instances;
  std::abort();  // Unreachable.
}

void DefineCommonFlags(Flags* flags) {
  flags->DefineInt64("seed", 42, "master random seed");
  flags->DefineInt64("sites", 30, "number of distributed sites (paper: 30)");
  flags->DefineDouble("eps", 0.1, "approximation factor epsilon (paper: 0.1)");
  flags->DefineInt64("test-events", 1000, "number of evaluation queries");
  flags->DefineBool("full", false,
                    "use the paper's full stream lengths (5K..5M) instead of "
                    "the reduced default (5K..500K)");
  flags->DefineInt64("trials", 1, "independent repetitions (median reported)");
}

void ParseFlagsOrDie(Flags* flags, int argc, char** argv) {
  const Status status = flags->Parse(argc, argv);
  if (status.ok()) return;
  if (status.code() == StatusCode::kNotFound) {
    std::cout << status.message();
    std::exit(0);
  }
  std::cerr << "error: " << status.message() << "\n";
  std::cerr << flags->Usage(argv[0]);
  std::exit(1);
}

void ApplyCommonFlags(const Flags& flags, ExperimentOptions* options) {
  options->seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  options->sites = static_cast<int>(flags.GetInt64("sites"));
  options->epsilon = flags.GetDouble("eps");
  options->test_events = static_cast<int>(flags.GetInt64("test-events"));
  options->checkpoints = CheckpointsFromFlags(flags);
}

std::vector<int64_t> CheckpointsFromFlags(const Flags& flags) {
  if (flags.GetBool("full")) return {5000, 50000, 500000, 5000000};
  return {5000, 50000, 500000};
}

std::string FormatInstances(int64_t instances) {
  if (instances % 1000000 == 0) return std::to_string(instances / 1000000) + "M";
  if (instances % 1000 == 0) return std::to_string(instances / 1000) + "K";
  return std::to_string(instances);
}

std::vector<std::string> SplitCommaList(const std::string& text) {
  std::vector<std::string> items;
  size_t start = 0;
  while (start <= text.size()) {
    size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    std::string item = text.substr(start, comma - start);
    const size_t first = item.find_first_not_of(" \t");
    const size_t last = item.find_last_not_of(" \t");
    if (first != std::string::npos) {
      items.push_back(item.substr(first, last - first + 1));
    }
    start = comma + 1;
  }
  return items;
}

}  // namespace dsgm
