// Shared experiment driver for the paper-reproduction benches.
//
// One streaming pass feeds all requested strategies simultaneously (they see
// the identical event sequence and site routing), and snapshots are taken at
// the requested checkpoints: communication statistics plus per-test-event
// error samples against the ground truth and against the exact MLE.

#ifndef DSGM_BENCH_HARNESS_EXPERIMENT_H_
#define DSGM_BENCH_HARNESS_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bayes/network.h"
#include "bayes/sampler.h"
#include "common/flags.h"
#include "common/statistics.h"
#include "core/mle_tracker.h"
#include "monitor/comm_stats.h"

namespace dsgm {

/// Configuration of one streaming experiment.
struct ExperimentOptions {
  std::vector<TrackingStrategy> strategies = {
      TrackingStrategy::kExactMle, TrackingStrategy::kBaseline,
      TrackingStrategy::kUniform, TrackingStrategy::kNonUniform};
  /// Snapshot points (ascending); the stream length is the last checkpoint.
  std::vector<int64_t> checkpoints = {5000, 50000, 500000};
  int sites = 30;
  double epsilon = 0.1;
  uint64_t seed = 42;
  int test_events = 1000;
  double test_event_min_prob = 0.01;
  /// 0 routes events uniformly across sites (the paper's setting); > 0
  /// routes with a Zipf(exponent) distribution (site-skew ablation).
  double zipf_exponent = 0.0;
  /// Counter round-schedule constant (counter ablation).
  double probability_constant = 1.0;
};

/// Measurements of one (strategy, checkpoint) pair.
struct Snapshot {
  TrackingStrategy strategy;
  int64_t instances = 0;
  CommStats comm;
  /// |P~ - P*| / P* over the test events (paper's "error to ground truth").
  SampleSet error_to_truth;
  /// |P~ - P^| / P^ against the exact-counter MLE (paper's "error to MLE");
  /// empty for the exact strategy itself.
  SampleSet error_to_mle;
};

/// Runs the streaming pass and returns one Snapshot per strategy per
/// checkpoint, ordered by checkpoint then by strategy (options order).
std::vector<Snapshot> RunStreamExperiment(const BayesianNetwork& network,
                                          const ExperimentOptions& options);

/// Selects the snapshot for (strategy, instances); CHECK-fails if absent.
const Snapshot& FindSnapshot(const std::vector<Snapshot>& snapshots,
                             TrackingStrategy strategy, int64_t instances);

// --- Flag helpers shared by every bench binary -------------------------

/// Registers the common experiment flags (--seed, --sites, --eps,
/// --test-events, --full, --trials) on `flags`.
void DefineCommonFlags(Flags* flags);

/// Parses argv; on --help prints usage and exits 0; on error prints the
/// message and exits 1.
void ParseFlagsOrDie(Flags* flags, int argc, char** argv);

/// Applies the common flags to `options`.
void ApplyCommonFlags(const Flags& flags, ExperimentOptions* options);

/// Default checkpoints: {5K, 50K, 500K}, or the paper's full x-axis
/// {5K, 50K, 500K, 5M} when --full is set.
std::vector<int64_t> CheckpointsFromFlags(const Flags& flags);

/// Human-readable instance count, e.g. "5K", "500K", "5M".
std::string FormatInstances(int64_t instances);

/// Splits "alarm,hepar , link" into {"alarm","hepar","link"}.
std::vector<std::string> SplitCommaList(const std::string& text);

}  // namespace dsgm

#endif  // DSGM_BENCH_HARNESS_EXPERIMENT_H_
