#include "harness/json_report.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "api/backends.h"
#include "common/check.h"

namespace dsgm {
namespace {

void DumpEscapedString(std::ostream& os, const std::string& text) {
  os << '"';
  for (const char c : text) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          os << buffer;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

Json Json::Bool(bool value) {
  Json json;
  json.kind_ = Kind::kBool;
  json.bool_ = value;
  return json;
}

Json Json::Int(int64_t value) {
  Json json;
  json.kind_ = Kind::kInt;
  json.int_ = value;
  return json;
}

Json Json::Double(double value) {
  Json json;
  json.kind_ = Kind::kDouble;
  json.double_ = value;
  return json;
}

Json Json::Str(std::string value) {
  Json json;
  json.kind_ = Kind::kString;
  json.string_ = std::move(value);
  return json;
}

Json Json::Array() {
  Json json;
  json.kind_ = Kind::kArray;
  return json;
}

Json Json::Object() {
  Json json;
  json.kind_ = Kind::kObject;
  return json;
}

Json& Json::Add(const std::string& key, Json value) {
  DSGM_CHECK(is_object()) << "Json::Add on a non-object";
  object_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::Append(Json value) {
  DSGM_CHECK(is_array()) << "Json::Append on a non-array";
  array_.push_back(std::move(value));
  return *this;
}

void Json::DumpIndented(std::ostream& os, int indent) const {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  const std::string inner_pad(static_cast<size_t>(indent + 1) * 2, ' ');
  switch (kind_) {
    case Kind::kNull:
      os << "null";
      break;
    case Kind::kBool:
      os << (bool_ ? "true" : "false");
      break;
    case Kind::kInt:
      os << int_;
      break;
    case Kind::kDouble:
      if (!std::isfinite(double_)) {
        os << "null";
      } else {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%.17g", double_);
        os << buffer;
      }
      break;
    case Kind::kString:
      DumpEscapedString(os, string_);
      break;
    case Kind::kArray: {
      if (array_.empty()) {
        os << "[]";
        break;
      }
      os << "[\n";
      for (size_t i = 0; i < array_.size(); ++i) {
        os << inner_pad;
        array_[i].DumpIndented(os, indent + 1);
        if (i + 1 < array_.size()) os << ',';
        os << '\n';
      }
      os << pad << ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        os << "{}";
        break;
      }
      os << "{\n";
      for (size_t i = 0; i < object_.size(); ++i) {
        os << inner_pad;
        DumpEscapedString(os, object_[i].first);
        os << ": ";
        object_[i].second.DumpIndented(os, indent + 1);
        if (i + 1 < object_.size()) os << ',';
        os << '\n';
      }
      os << pad << '}';
      break;
    }
  }
}

void Json::Dump(std::ostream& os) const { DumpIndented(os, 0); }

std::string Json::ToString() const {
  std::ostringstream os;
  Dump(os);
  return os.str();
}

Json ClusterResultToJson(const ClusterResult& result, Backend backend) {
  // One serialization for both shapes: lift the legacy result into the
  // unified report.
  return RunReportToJson(internal::ReportFromClusterResult(result, backend));
}

Json RunReportToJson(const RunReport& report) {
  Json record = Json::Object();
  record.Add("backend", Json::Str(ToString(report.backend)))
      .Add("events", Json::Int(report.events_processed))
      .Add("runtime_seconds", Json::Double(report.runtime_seconds))
      .Add("wall_seconds", Json::Double(report.wall_seconds))
      .Add("throughput_events_per_sec", Json::Double(report.throughput_events_per_sec))
      .Add("max_counter_rel_error", Json::Double(report.max_counter_rel_error))
      .Add("update_messages", Json::Int(static_cast<int64_t>(report.comm.update_messages)))
      .Add("broadcast_messages", Json::Int(static_cast<int64_t>(report.comm.broadcast_messages)))
      .Add("sync_messages", Json::Int(static_cast<int64_t>(report.comm.sync_messages)))
      .Add("wire_messages", Json::Int(static_cast<int64_t>(report.comm.wire_messages)))
      .Add("total_messages", Json::Int(static_cast<int64_t>(report.comm.TotalMessages())))
      .Add("rounds_advanced", Json::Int(static_cast<int64_t>(report.comm.rounds_advanced)))
      .Add("bytes_up_estimated", Json::Int(static_cast<int64_t>(report.comm.bytes_up)))
      .Add("bytes_down_estimated", Json::Int(static_cast<int64_t>(report.comm.bytes_down)))
      .Add("transport_measured", Json::Bool(report.transport_measured));
  if (report.transport_measured) {
    const uint64_t wire = report.transport_bytes_up + report.transport_bytes_down;
    const uint64_t estimated = report.comm.bytes_up + report.comm.bytes_down;
    record.Add("transport_bytes_up", Json::Int(static_cast<int64_t>(report.transport_bytes_up)))
        .Add("transport_bytes_down", Json::Int(static_cast<int64_t>(report.transport_bytes_down)))
        .Add("estimated_to_wire_byte_ratio",
             Json::Double(wire > 0 ? static_cast<double>(estimated) /
                                         static_cast<double>(wire)
                                   : 0.0));
  }
  if (report.memory_bytes > 0) {
    record.Add("memory_bytes", Json::Int(static_cast<int64_t>(report.memory_bytes)));
  }
  return record;
}

Json MetricsSnapshotToJson(const MetricsSnapshot& snapshot) {
  Json record = Json::Object();
  Json counters = Json::Object();
  for (const auto& counter : snapshot.counters) {
    counters.Add(counter.name, Json::Int(static_cast<int64_t>(counter.value)));
  }
  Json gauges = Json::Object();
  for (const auto& gauge : snapshot.gauges) {
    gauges.Add(gauge.name, Json::Int(gauge.value));
  }
  Json histograms = Json::Object();
  for (const auto& histogram : snapshot.histograms) {
    Json stats = Json::Object();
    stats.Add("count", Json::Int(static_cast<int64_t>(histogram.stats.count)))
        .Add("sum", Json::Int(static_cast<int64_t>(histogram.stats.sum)))
        .Add("p50", Json::Int(static_cast<int64_t>(histogram.stats.p50)))
        .Add("p99", Json::Int(static_cast<int64_t>(histogram.stats.p99)))
        .Add("max", Json::Int(static_cast<int64_t>(histogram.stats.max)));
    histograms.Add(histogram.name, std::move(stats));
  }
  record.Add("counters", std::move(counters))
      .Add("gauges", std::move(gauges))
      .Add("histograms", std::move(histograms));
  if (!snapshot.sites.empty()) {
    Json sites = Json::Array();
    for (const SiteHealth& site : snapshot.sites) {
      Json row = Json::Object();
      row.Add("site", Json::Int(site.site))
          .Add("alive", Json::Bool(site.alive))
          .Add("heartbeat_age_ms", Json::Double(site.heartbeat_age_ms))
          .Add("events_processed", Json::Int(site.events_processed))
          .Add("updates_sent", Json::Int(static_cast<int64_t>(site.updates_sent)))
          .Add("syncs_sent", Json::Int(static_cast<int64_t>(site.syncs_sent)))
          .Add("rounds_seen", Json::Int(static_cast<int64_t>(site.rounds_seen)))
          .Add("stats_reports",
               Json::Int(static_cast<int64_t>(site.stats_reports)));
      sites.Append(std::move(row));
    }
    record.Add("sites", std::move(sites));
  }
  return record;
}

Status WriteJsonReport(const std::string& path, const Json& root) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return InternalError("cannot open " + tmp + " for writing");
    root.Dump(out);
    out << "\n";
    if (!out) return InternalError("write to " + tmp + " failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return InternalError("cannot rename " + tmp + " to " + path);
  }
  return Status::Ok();
}

}  // namespace dsgm
