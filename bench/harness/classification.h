// Shared driver for the classification experiments (paper Tables II-III).

#ifndef DSGM_BENCH_HARNESS_CLASSIFICATION_H_
#define DSGM_BENCH_HARNESS_CLASSIFICATION_H_

#include <memory>
#include <vector>

#include "bayes/network.h"
#include "bayes/sampler.h"
#include "core/classifier.h"
#include "core/mle_tracker.h"
#include "harness/experiment.h"

namespace dsgm {

struct ClassificationResult {
  TrackingStrategy strategy;
  double error_rate = 0.0;
  uint64_t messages = 0;
};

/// Trains one tracker per strategy on `train_instances` events, then runs
/// `tests` predictions: each test samples a fresh instance from the ground
/// truth, hides one uniformly random variable, predicts it from the rest
/// (Section VI-B "Classification"), and compares with the true value.
inline std::vector<ClassificationResult> RunClassificationExperiment(
    const BayesianNetwork& network, const std::vector<TrackingStrategy>& strategies,
    int64_t train_instances, int tests, int sites, double epsilon, uint64_t seed) {
  std::vector<std::unique_ptr<MleTracker>> trackers;
  for (TrackingStrategy strategy : strategies) {
    TrackerConfig config;
    config.strategy = strategy;
    config.epsilon = epsilon;
    config.num_sites = sites;
    config.seed = seed ^ (0x77 + static_cast<uint64_t>(strategy));
    trackers.push_back(std::make_unique<MleTracker>(network, config));
  }

  Rng master(seed);
  ForwardSampler sampler(network, master.Next());
  Rng router = master.Split();
  Instance x;
  for (int64_t e = 0; e < train_instances; ++e) {
    sampler.Sample(&x);
    const int site =
        static_cast<int>(router.NextBounded(static_cast<uint64_t>(sites)));
    for (auto& tracker : trackers) tracker->Observe(x, site);
  }

  ForwardSampler test_sampler(network, master.Next());
  Rng picker = master.Split();
  std::vector<int> errors(strategies.size(), 0);
  for (int t = 0; t < tests; ++t) {
    test_sampler.Sample(&x);
    const int target = static_cast<int>(
        picker.NextBounded(static_cast<uint64_t>(network.num_variables())));
    const int truth = x[static_cast<size_t>(target)];
    for (size_t s = 0; s < trackers.size(); ++s) {
      errors[s] += (PredictWithTracker(*trackers[s], target, x) != truth);
    }
  }

  std::vector<ClassificationResult> results;
  for (size_t s = 0; s < strategies.size(); ++s) {
    ClassificationResult result;
    result.strategy = strategies[s];
    result.error_rate = static_cast<double>(errors[s]) / tests;
    result.messages = trackers[s]->comm().TotalMessages();
    results.push_back(result);
  }
  return results;
}

}  // namespace dsgm

#endif  // DSGM_BENCH_HARNESS_CLASSIFICATION_H_
