// Report rendering shared by the bench binaries: turns experiment snapshots
// into the table/series layout of the corresponding paper figure.

#ifndef DSGM_BENCH_HARNESS_REPORT_H_
#define DSGM_BENCH_HARNESS_REPORT_H_

#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "harness/experiment.h"

namespace dsgm {

enum class ErrorMetric { kToTruth, kToMle };

inline const SampleSet& MetricOf(const Snapshot& snap, ErrorMetric metric) {
  return metric == ErrorMetric::kToTruth ? snap.error_to_truth : snap.error_to_mle;
}

/// Boxplot figures (Figs. 1, 2, 4): one row per (strategy, checkpoint) with
/// p10/p25/median/p75/p90 of the chosen error metric.
inline void PrintBoxplotTable(const std::string& title,
                              const std::vector<Snapshot>& snapshots,
                              const std::vector<TrackingStrategy>& strategies,
                              const std::vector<int64_t>& checkpoints,
                              ErrorMetric metric) {
  TablePrinter table(title);
  table.SetHeader({"algorithm", "instances", "p10", "p25", "median", "p75", "p90",
                   "mean"});
  for (TrackingStrategy strategy : strategies) {
    for (int64_t checkpoint : checkpoints) {
      const Snapshot& snap = FindSnapshot(snapshots, strategy, checkpoint);
      const BoxplotSummary box = MetricOf(snap, metric).Boxplot();
      table.AddRow({ToString(strategy), FormatInstances(checkpoint),
                    FormatDouble(box.p10), FormatDouble(box.p25),
                    FormatDouble(box.p50), FormatDouble(box.p75),
                    FormatDouble(box.p90), FormatDouble(box.mean)});
    }
  }
  table.Print(std::cout);
  std::cout << "\n";
}

/// Mean-error figures (Figs. 3, 5): instances on rows, strategies on columns.
inline void PrintMeanErrorTable(const std::string& title,
                                const std::vector<Snapshot>& snapshots,
                                const std::vector<TrackingStrategy>& strategies,
                                const std::vector<int64_t>& checkpoints,
                                ErrorMetric metric) {
  TablePrinter table(title);
  std::vector<std::string> header = {"instances"};
  for (TrackingStrategy strategy : strategies) header.push_back(ToString(strategy));
  table.SetHeader(header);
  for (int64_t checkpoint : checkpoints) {
    std::vector<std::string> row = {FormatInstances(checkpoint)};
    for (TrackingStrategy strategy : strategies) {
      const Snapshot& snap = FindSnapshot(snapshots, strategy, checkpoint);
      row.push_back(FormatDouble(MetricOf(snap, metric).Mean()));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\n";
}

/// Communication figures (Fig. 6 and friends): total messages per strategy
/// per checkpoint, in the paper's scientific notation.
inline void PrintCommTable(const std::string& title,
                           const std::vector<Snapshot>& snapshots,
                           const std::vector<TrackingStrategy>& strategies,
                           const std::vector<int64_t>& checkpoints) {
  TablePrinter table(title);
  std::vector<std::string> header = {"instances"};
  for (TrackingStrategy strategy : strategies) header.push_back(ToString(strategy));
  table.SetHeader(header);
  for (int64_t checkpoint : checkpoints) {
    std::vector<std::string> row = {FormatInstances(checkpoint)};
    for (TrackingStrategy strategy : strategies) {
      const Snapshot& snap = FindSnapshot(snapshots, strategy, checkpoint);
      row.push_back(
          FormatScientific(static_cast<double>(snap.comm.TotalMessages())));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace dsgm

#endif  // DSGM_BENCH_HARNESS_REPORT_H_
