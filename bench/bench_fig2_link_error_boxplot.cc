// Figure 2: testing error (relative to the ground truth) vs number of
// training instances on LINK; boxplot quantiles per algorithm.

#include "bayes/repository.h"
#include "harness/experiment.h"
#include "harness/report.h"

namespace dsgm {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags);
  ParseFlagsOrDie(&flags, argc, argv);

  ExperimentOptions options;
  ApplyCommonFlags(flags, &options);
  const BayesianNetwork net = Link();
  const std::vector<Snapshot> snapshots = RunStreamExperiment(net, options);
  PrintBoxplotTable(
      "Fig. 2: error to ground truth vs training instances (LINK, eps=" +
          FormatDouble(options.epsilon) + ", k=" + std::to_string(options.sites) + ")",
      snapshots, options.strategies, options.checkpoints, ErrorMetric::kToTruth);
  return 0;
}

}  // namespace
}  // namespace dsgm

int main(int argc, char** argv) { return dsgm::Main(argc, argv); }
