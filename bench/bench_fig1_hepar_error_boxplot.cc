// Figure 1: testing error (relative to the ground truth) vs number of
// training instances on HEPAR II; boxplot quantiles per algorithm.

#include "bayes/repository.h"
#include "harness/experiment.h"
#include "harness/report.h"

namespace dsgm {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags);
  ParseFlagsOrDie(&flags, argc, argv);

  ExperimentOptions options;
  ApplyCommonFlags(flags, &options);
  const BayesianNetwork net = Hepar();
  const std::vector<Snapshot> snapshots = RunStreamExperiment(net, options);
  PrintBoxplotTable(
      "Fig. 1: error to ground truth vs training instances (HEPAR II, eps=" +
          FormatDouble(options.epsilon) + ", k=" + std::to_string(options.sites) + ")",
      snapshots, options.strategies, options.checkpoints, ErrorMetric::kToTruth);
  return 0;
}

}  // namespace
}  // namespace dsgm

int main(int argc, char** argv) { return dsgm::Main(argc, argv); }
