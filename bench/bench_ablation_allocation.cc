// Ablation: is the Lagrange w^{1/3} error split (eq. 7) actually the right
// exponent? Compares predicted communication cost sum(w_i / nu_i) of the
// optimal split against uniform and sqrt splits on all repository networks,
// and measures real message counts for UNIFORM vs NONUNIFORM on NEW-ALARM.

#include <cmath>
#include <iostream>

#include "bayes/repository.h"
#include "common/table.h"
#include "core/error_allocation.h"
#include "harness/experiment.h"

namespace dsgm {
namespace {

/// Cost of splitting the budget proportionally to w^exponent.
double PowerSplitCost(const std::vector<double>& weights, double budget,
                      double exponent) {
  double norm = 0.0;
  for (double w : weights) norm += std::pow(w, 2.0 * exponent);
  const double scale = budget / std::sqrt(norm);
  double cost = 0.0;
  for (double w : weights) cost += w / (scale * std::pow(w, exponent));
  return cost;
}

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags);
  ParseFlagsOrDie(&flags, argc, argv);
  const double eps = flags.GetDouble("eps");

  TablePrinter table(
      "Ablation: predicted joint-counter communication (sum w/nu, lower is "
      "better) under different split exponents, budget eps/16");
  table.SetHeader({"network", "uniform (w^0)", "cube root (w^1/3, eq. 7)",
                   "sqrt (w^1/2)", "linear (w^1)", "1/3 vs uniform saving"});
  for (const char* name : {"alarm", "hepar", "link", "munin", "new-alarm"}) {
    StatusOr<BayesianNetwork> net = NetworkByName(name);
    if (!net.ok()) {
      std::cerr << net.status() << "\n";
      return 1;
    }
    std::vector<double> weights;
    for (int i = 0; i < net->num_variables(); ++i) {
      weights.push_back(static_cast<double>(net->cardinality(i)) *
                        static_cast<double>(net->parent_cardinality(i)));
    }
    const double budget = eps / 16.0;
    const double uniform = PowerSplitCost(weights, budget, 0.0);
    const double cube = PowerSplitCost(weights, budget, 1.0 / 3.0);
    const double sqrt_split = PowerSplitCost(weights, budget, 0.5);
    const double linear = PowerSplitCost(weights, budget, 1.0);
    // The closed-form optimum must coincide with the 1/3-power split.
    const double solver_cost =
        AllocationCost(weights, AllocateBudget(weights, budget));
    if (std::abs(solver_cost - cube) > 1e-6 * cube) {
      std::cerr << "solver disagrees with 1/3-power split on " << name << "\n";
      return 1;
    }
    table.AddRow({name, FormatScientific(uniform), FormatScientific(cube),
                  FormatScientific(sqrt_split), FormatScientific(linear),
                  FormatDouble(100.0 * (1.0 - cube / uniform), 3) + "%"});
  }
  table.Print(std::cout);
  std::cout << "\n(w^1/3 is the Lagrange optimum; the saving column is the "
               "theoretical gain of NONUNIFORM over UNIFORM.)\n";
  return 0;
}

}  // namespace
}  // namespace dsgm

int main(int argc, char** argv) { return dsgm::Main(argc, argv); }
