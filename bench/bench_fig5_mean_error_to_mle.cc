// Figure 5: mean testing error relative to EXACTMLE vs number of training
// instances, for BASELINE / UNIFORM / NONUNIFORM on all four networks.

#include "bayes/repository.h"
#include "harness/experiment.h"
#include "harness/report.h"

namespace dsgm {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags);
  flags.DefineString("networks", "alarm,hepar,link,munin",
                     "comma-separated network list");
  ParseFlagsOrDie(&flags, argc, argv);

  ExperimentOptions options;
  ApplyCommonFlags(flags, &options);
  options.strategies = {TrackingStrategy::kBaseline, TrackingStrategy::kUniform,
                        TrackingStrategy::kNonUniform};

  for (const std::string& name : SplitCommaList(flags.GetString("networks"))) {
    StatusOr<BayesianNetwork> net = NetworkByName(name);
    if (!net.ok()) {
      std::cerr << net.status() << "\n";
      return 1;
    }
    const std::vector<Snapshot> snapshots = RunStreamExperiment(*net, options);
    PrintMeanErrorTable("Fig. 5 (" + name + "): mean error relative to EXACTMLE",
                        snapshots, options.strategies, options.checkpoints,
                        ErrorMetric::kToMle);
  }
  return 0;
}

}  // namespace
}  // namespace dsgm

int main(int argc, char** argv) { return dsgm::Main(argc, argv); }
