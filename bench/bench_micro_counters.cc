// Micro-benchmarks (google-benchmark): per-increment cost of the counter
// families and per-event cost of the MLE tracker update/query paths.

#include <benchmark/benchmark.h>

#include "bayes/repository.h"
#include "bayes/sampler.h"
#include "core/mle_tracker.h"
#include "monitor/approx_counter.h"
#include "monitor/exact_counter.h"

namespace dsgm {
namespace {

void BM_ExactCounterIncrement(benchmark::State& state) {
  CommStats stats;
  ExactCounterFamily family(1024, 30, &stats);
  Rng rng(1);
  int64_t c = 0;
  for (auto _ : state) {
    family.Increment(c & 1023, static_cast<int>(c % 30));
    ++c;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExactCounterIncrement);

void BM_ApproxCounterIncrement(benchmark::State& state) {
  CommStats stats;
  std::vector<float> epsilons(1024, static_cast<float>(state.range(0)) / 1000.0f);
  ApproxCounterOptions options;
  options.num_sites = 30;
  options.seed = 2;
  ApproxCounterFamily family(epsilons, options, &stats);
  int64_t c = 0;
  for (auto _ : state) {
    family.Increment(c & 1023, static_cast<int>(c % 30));
    ++c;
  }
  state.SetItemsProcessed(state.iterations());
}
// 0.005 (tight, mostly exact phase) vs 0.1 (sampled quickly).
BENCHMARK(BM_ApproxCounterIncrement)->Arg(5)->Arg(100);

void BM_TrackerObserveAlarm(benchmark::State& state) {
  const BayesianNetwork net = Alarm();
  TrackerConfig config;
  config.strategy = static_cast<TrackingStrategy>(state.range(0));
  config.num_sites = 30;
  MleTracker tracker(net, config);
  ForwardSampler sampler(net, 3);
  Rng router(4);
  std::vector<Instance> batch(256);
  for (auto& x : batch) sampler.Sample(&x);
  size_t i = 0;
  for (auto _ : state) {
    tracker.Observe(batch[i & 255], static_cast<int>(router.NextBounded(30)));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(ToString(config.strategy));
}
BENCHMARK(BM_TrackerObserveAlarm)
    ->Arg(static_cast<int>(TrackingStrategy::kExactMle))
    ->Arg(static_cast<int>(TrackingStrategy::kNonUniform));

void BM_TrackerJointQueryAlarm(benchmark::State& state) {
  const BayesianNetwork net = Alarm();
  TrackerConfig config;
  config.strategy = TrackingStrategy::kNonUniform;
  config.num_sites = 30;
  MleTracker tracker(net, config);
  ForwardSampler sampler(net, 5);
  Rng router(6);
  Instance x;
  for (int e = 0; e < 20000; ++e) {
    sampler.Sample(&x);
    tracker.Observe(x, static_cast<int>(router.NextBounded(30)));
  }
  Rng event_rng(7);
  TestEventOptions options;
  options.count = 64;
  const std::vector<TestEvent> events = GenerateTestEvents(net, options, event_rng);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tracker.JointProbability(events[i & 63].assignment));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrackerJointQueryAlarm);

void BM_ForwardSampling(benchmark::State& state) {
  const BayesianNetwork net = Hepar();
  ForwardSampler sampler(net, 8);
  Instance x;
  for (auto _ : state) {
    sampler.Sample(&x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForwardSampling);

}  // namespace
}  // namespace dsgm

BENCHMARK_MAIN();
