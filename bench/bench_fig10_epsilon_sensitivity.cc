// Figure 10: mean testing error (to the ground truth) vs the approximation
// factor epsilon, for BASELINE and NONUNIFORM on HEPAR II, at several
// stream lengths.

#include <iostream>

#include "bayes/repository.h"
#include "common/table.h"
#include "harness/experiment.h"
#include "harness/report.h"

namespace dsgm {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags);
  flags.DefineString("epsilons", "0.05,0.1,0.15,0.2,0.25,0.3,0.35,0.4",
                     "epsilon sweep");
  ParseFlagsOrDie(&flags, argc, argv);

  const BayesianNetwork net = Hepar();
  const std::vector<int64_t> checkpoints =
      flags.GetBool("full") ? std::vector<int64_t>{50000, 500000, 1000000, 2000000}
                            : std::vector<int64_t>{5000, 50000, 500000};

  for (TrackingStrategy strategy :
       {TrackingStrategy::kBaseline, TrackingStrategy::kNonUniform}) {
    TablePrinter table("Fig. 10 (" + std::string(ToString(strategy)) +
                       "): HEPAR II mean error to ground truth vs epsilon");
    std::vector<std::string> header = {"epsilon"};
    for (int64_t c : checkpoints) header.push_back(FormatInstances(c));
    table.SetHeader(header);
    for (const std::string& eps_text : SplitCommaList(flags.GetString("epsilons"))) {
      ExperimentOptions options;
      ApplyCommonFlags(flags, &options);
      options.checkpoints = checkpoints;
      options.epsilon = std::stod(eps_text);
      options.strategies = {strategy};
      const std::vector<Snapshot> snapshots = RunStreamExperiment(net, options);
      std::vector<std::string> row = {eps_text};
      for (int64_t c : checkpoints) {
        row.push_back(
            FormatDouble(FindSnapshot(snapshots, strategy, c).error_to_truth.Mean()));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace dsgm

int main(int argc, char** argv) { return dsgm::Main(argc, argv); }
