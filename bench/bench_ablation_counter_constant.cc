// Ablation: the counter round-schedule safety constant c (DESIGN.md
// section 6) trades communication for approximation error. The paper's
// analysis constants are conservative; this sweep quantifies the practical
// operating curve.

#include <iostream>

#include "bayes/repository.h"
#include "common/table.h"
#include "harness/experiment.h"

namespace dsgm {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags);
  flags.DefineInt64("events", 200000, "training instances");
  flags.DefineString("network", "alarm", "network name");
  flags.DefineString("constants", "0.25,0.5,1.0,2.0,4.0", "safety constant sweep");
  ParseFlagsOrDie(&flags, argc, argv);

  StatusOr<BayesianNetwork> net = NetworkByName(flags.GetString("network"));
  if (!net.ok()) {
    std::cerr << net.status() << "\n";
    return 1;
  }

  TablePrinter table("Ablation (" + flags.GetString("network") +
                     "): counter safety constant c, NONUNIFORM, " +
                     FormatInstances(flags.GetInt64("events")) + " instances");
  table.SetHeader({"c", "total msgs", "mean err-to-MLE", "p90 err-to-MLE"});
  for (const std::string& c_text : SplitCommaList(flags.GetString("constants"))) {
    ExperimentOptions options;
    ApplyCommonFlags(flags, &options);
    options.checkpoints = {flags.GetInt64("events")};
    options.strategies = {TrackingStrategy::kNonUniform};
    options.probability_constant = std::stod(c_text);
    options.test_events = 300;
    const std::vector<Snapshot> snapshots = RunStreamExperiment(*net, options);
    const Snapshot& snap = FindSnapshot(snapshots, TrackingStrategy::kNonUniform,
                                        options.checkpoints[0]);
    table.AddRow({c_text,
                  FormatScientific(static_cast<double>(snap.comm.TotalMessages())),
                  FormatDouble(snap.error_to_mle.Mean()),
                  FormatDouble(snap.error_to_mle.Quantile(0.9))});
  }
  table.Print(std::cout);
  std::cout << "\n(Larger c keeps counters exact longer: more messages, "
               "smaller deviation from the exact MLE.)\n";
  return 0;
}

}  // namespace
}  // namespace dsgm

int main(int argc, char** argv) { return dsgm::Main(argc, argv); }
