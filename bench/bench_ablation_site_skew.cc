// Ablation (paper future-work item 1): events routed to sites with a skewed
// (Zipf) distribution instead of uniformly. Measures the effect on both
// communication and accuracy for the randomized algorithms.

#include <iostream>

#include "bayes/repository.h"
#include "common/table.h"
#include "harness/experiment.h"

namespace dsgm {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags);
  flags.DefineInt64("events", 200000, "training instances");
  flags.DefineString("network", "alarm", "network name");
  flags.DefineString("zipf-exponents", "0,0.5,1.0,2.0",
                     "site-routing skew sweep (0 = uniform)");
  ParseFlagsOrDie(&flags, argc, argv);

  StatusOr<BayesianNetwork> net = NetworkByName(flags.GetString("network"));
  if (!net.ok()) {
    std::cerr << net.status() << "\n";
    return 1;
  }

  TablePrinter table("Ablation (" + flags.GetString("network") +
                     "): site-skew sensitivity, " +
                     FormatInstances(flags.GetInt64("events")) + " instances");
  table.SetHeader({"zipf exponent", "uniform msgs", "non-uniform msgs",
                   "uniform err-to-MLE", "non-uniform err-to-MLE"});
  for (const std::string& skew_text :
       SplitCommaList(flags.GetString("zipf-exponents"))) {
    ExperimentOptions options;
    ApplyCommonFlags(flags, &options);
    options.checkpoints = {flags.GetInt64("events")};
    options.strategies = {TrackingStrategy::kUniform, TrackingStrategy::kNonUniform};
    options.zipf_exponent = std::stod(skew_text);
    options.test_events = 200;
    const std::vector<Snapshot> snapshots = RunStreamExperiment(*net, options);
    const Snapshot& uniform =
        FindSnapshot(snapshots, TrackingStrategy::kUniform, options.checkpoints[0]);
    const Snapshot& nonuniform = FindSnapshot(
        snapshots, TrackingStrategy::kNonUniform, options.checkpoints[0]);
    table.AddRow(
        {skew_text,
         FormatScientific(static_cast<double>(uniform.comm.TotalMessages())),
         FormatScientific(static_cast<double>(nonuniform.comm.TotalMessages())),
         FormatDouble(uniform.error_to_mle.Mean()),
         FormatDouble(nonuniform.error_to_mle.Mean())});
  }
  table.Print(std::cout);
  std::cout << "\n(The per-site last-report estimator keeps its guarantees "
               "under skew; only constants shift.)\n";
  return 0;
}

}  // namespace
}  // namespace dsgm

int main(int argc, char** argv) { return dsgm::Main(argc, argv); }
