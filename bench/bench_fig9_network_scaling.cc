// Figure 9: communication cost as the network scales. The LINK network is
// shrunk by iterative sink removal to {24, 124, ..., 724} variables
// (Fig. 9a keyed by variable count, Fig. 9b by edge count).

#include <iostream>

#include "bayes/generator.h"
#include "bayes/repository.h"
#include "common/table.h"
#include "harness/experiment.h"
#include "harness/report.h"

namespace dsgm {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags);
  flags.DefineInt64("events", 100000,
                    "training instances per network size (paper: 500000)");
  ParseFlagsOrDie(&flags, argc, argv);

  const int64_t events =
      flags.GetBool("full") ? 500000 : flags.GetInt64("events");
  ExperimentOptions options;
  ApplyCommonFlags(flags, &options);
  options.checkpoints = {events};
  options.test_events = 10;  // Communication-only experiment.

  const BayesianNetwork link = Link();
  TablePrinter table(
      "Fig. 9: total messages vs network size (LINK sink-removal series, " +
      FormatInstances(events) + " instances)");
  std::vector<std::string> header = {"variables", "edges"};
  for (TrackingStrategy s : options.strategies) header.push_back(ToString(s));
  table.SetHeader(header);
  for (int target : {24, 124, 224, 324, 424, 524, 624, 724}) {
    const BayesianNetwork net = RemoveSinksToSize(link, target);
    const std::vector<Snapshot> snapshots = RunStreamExperiment(net, options);
    std::vector<std::string> row = {std::to_string(net.num_variables()),
                                    std::to_string(net.dag().num_edges())};
    for (TrackingStrategy strategy : options.strategies) {
      const Snapshot& snap = FindSnapshot(snapshots, strategy, events);
      row.push_back(
          FormatScientific(static_cast<double>(snap.comm.TotalMessages())));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\n(Fig. 9a reads this table by the `variables` column, "
               "Fig. 9b by the `edges` column.)\n";
  return 0;
}

}  // namespace
}  // namespace dsgm

int main(int argc, char** argv) { return dsgm::Main(argc, argv); }
