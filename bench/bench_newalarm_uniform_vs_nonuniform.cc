// Section VI-B (NEW-ALARM): on a network with strongly skewed domain sizes,
// NONUNIFORM's cardinality-aware error split saves communication relative
// to UNIFORM (the paper reports ~35%).

#include <iostream>

#include "bayes/repository.h"
#include "common/table.h"
#include "harness/experiment.h"
#include "harness/report.h"

namespace dsgm {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags);
  flags.DefineInt64("events", 500000, "training instances");
  ParseFlagsOrDie(&flags, argc, argv);

  ExperimentOptions options;
  ApplyCommonFlags(flags, &options);
  options.checkpoints = {flags.GetInt64("events")};
  options.strategies = {TrackingStrategy::kUniform, TrackingStrategy::kNonUniform};
  options.test_events = 200;

  TablePrinter table("NEW-ALARM: UNIFORM vs NONUNIFORM (" +
                     FormatInstances(flags.GetInt64("events")) + " instances)");
  table.SetHeader({"network", "uniform msgs", "non-uniform msgs", "saving",
                   "uniform err-to-MLE", "non-uniform err-to-MLE"});
  for (const char* name : {"alarm", "new-alarm"}) {
    StatusOr<BayesianNetwork> net = NetworkByName(name);
    if (!net.ok()) {
      std::cerr << net.status() << "\n";
      return 1;
    }
    const std::vector<Snapshot> snapshots = RunStreamExperiment(*net, options);
    const Snapshot& uniform =
        FindSnapshot(snapshots, TrackingStrategy::kUniform, options.checkpoints[0]);
    const Snapshot& nonuniform = FindSnapshot(
        snapshots, TrackingStrategy::kNonUniform, options.checkpoints[0]);
    const double saving =
        1.0 - static_cast<double>(nonuniform.comm.TotalMessages()) /
                  static_cast<double>(uniform.comm.TotalMessages());
    table.AddRow({name,
                  FormatScientific(static_cast<double>(uniform.comm.TotalMessages())),
                  FormatScientific(static_cast<double>(nonuniform.comm.TotalMessages())),
                  FormatDouble(100.0 * saving, 3) + "%",
                  FormatDouble(uniform.error_to_mle.Mean()),
                  FormatDouble(nonuniform.error_to_mle.Mean())});
  }
  table.Print(std::cout);
  std::cout << "\n(The paper reports ~35% fewer messages for NONUNIFORM on "
               "NEW-ALARM and near-parity on the original ALARM.)\n";
  return 0;
}

}  // namespace
}  // namespace dsgm

int main(int argc, char** argv) { return dsgm::Main(argc, argv); }
