#!/usr/bin/env python3
"""Render a dsgm --metrics-dump-ms stream as human-readable tables.

A metrics dump is one JSON object per line (the format emitted by
MetricsSnapshotToJsonLine in src/common/metrics.cc):

    {"t_ms":..,"counters":{..},"gauges":{..},
     "histograms":{name:{count,sum,p50,p99,max}},"sites":[..]}

Default mode renders the LAST line (the end-of-run snapshot emitted by
MetricsDumper::Stop) as counter/gauge/histogram tables plus the per-site
health table, with per-second rates derived from the first line when the
dump has more than one. Histogram quantiles are log2-bucket upper bounds
(<= 2x the true value); names ending in _ns render as human durations.

    tools/metrics_text.py run.metrics          # render
    tools/metrics_text.py --check run.metrics  # validate only
    tools/metrics_text.py --alerts run.metrics # alert-rule firings
    tools/metrics_text.py --timeline-summary trace.json

--check validates every line parses and carries the expected keys, and
exits nonzero otherwise; --check-cluster additionally asserts the final
snapshot shows a live distributed run (every site alive with a
non-negative heartbeat age, site sync counts summing > 0, and a non-zero
net.reactor.loop_ns p99) — the acceptance probe for a kLocalTcp run and
the ctest obs.metrics_smoke gate.

--alerts renders the obs.alerts.* counters (the AlertEngine's health-rule
firings) from the final snapshot, with the same dump validation.

--timeline-summary reads a Chrome-trace JSON file written by --trace-out /
WithTraceExport (NOT a metrics dump), validates its schema (traceEvents
rows, per-process metadata, clock offsets), and prints per-process and
per-event-type counts; it is the schema gate obs.metrics_smoke runs over
the exported timeline.

Exits 0 on success, 1 on a failed check or malformed input, 2 on usage
errors (missing/empty file).
"""

import argparse
import json
import sys

REQUIRED_KEYS = ("t_ms", "counters", "gauges", "histograms", "sites")
HISTOGRAM_STAT_KEYS = ("count", "sum", "p50", "p99", "max")
SITE_KEYS = ("site", "alive", "hb_age_ms", "events", "updates", "syncs",
             "rounds", "stats_reports")


def parse_dump(stream, path):
    """Parses and validates every line; returns the snapshot list."""
    snapshots = []
    for lineno, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        where = f"{path}:{lineno}"
        try:
            snapshot = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"{where}: not valid JSON: {error}")
        if not isinstance(snapshot, dict):
            raise ValueError(f"{where}: line is not a JSON object")
        for key in REQUIRED_KEYS:
            if key not in snapshot:
                raise ValueError(f"{where}: missing key '{key}'")
        for name, stats in snapshot["histograms"].items():
            for key in HISTOGRAM_STAT_KEYS:
                if key not in stats:
                    raise ValueError(
                        f"{where}: histogram '{name}' missing '{key}'")
        for site in snapshot["sites"]:
            for key in SITE_KEYS:
                if key not in site:
                    raise ValueError(
                        f"{where}: site row missing '{key}'")
        snapshots.append(snapshot)
    if not snapshots:
        raise ValueError(f"{path}: empty dump (no JSON lines)")
    return snapshots


def check_cluster(snapshot):
    """Final-snapshot assertions for a live distributed (kLocalTcp) run."""
    problems = []
    sites = snapshot["sites"]
    if not sites:
        problems.append("no per-site health rows (cluster session expected)")
    for site in sites:
        if not site["alive"]:
            problems.append(f"site {site['site']} is not alive")
        if site["hb_age_ms"] < 0:
            problems.append(
                f"site {site['site']} has no heartbeat age "
                f"(hb_age_ms={site['hb_age_ms']})")
    if sites and sum(site["syncs"] for site in sites) == 0:
        problems.append("no site reported any sync messages")
    loop = snapshot["histograms"].get("net.reactor.loop_ns")
    if loop is None:
        problems.append("histogram net.reactor.loop_ns is absent")
    elif loop["p99"] == 0 or loop["count"] == 0:
        problems.append(
            f"net.reactor.loop_ns shows no samples "
            f"(count={loop['count']}, p99={loop['p99']})")
    return problems


ALERT_COUNTERS = ("obs.alerts.total", "obs.alerts.heartbeat_stale",
                  "obs.alerts.sync_collapse", "obs.alerts.event_rate_outlier")


def render_alerts(snapshots):
    """Alert-rule firings (obs.alerts.*) from the final snapshot."""
    first, last = snapshots[0], snapshots[-1]
    rows = []
    for name in ALERT_COUNTERS:
        value = last["counters"].get(name, 0)
        delta = value - first["counters"].get(name, 0)
        rows.append([name, str(value), str(delta)])
    print_table("alert firings (edge-triggered; see common/tracing.h)",
                ["rule counter", "total", "during dump"], rows)
    total = last["counters"].get("obs.alerts.total", 0)
    print(f"{total} alert(s) fired over the run")


def validate_timeline(doc, path):
    """Schema check for Chrome-trace JSON written by TimelineToChromeJson."""
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: not a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError(f"{path}: missing 'traceEvents' array")
    offsets = doc.get("otherData", {}).get("clock_offsets_nanos")
    if not isinstance(offsets, dict):
        raise ValueError(
            f"{path}: missing otherData.clock_offsets_nanos object")
    for i, event in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: not an object")
        ph = event.get("ph")
        if ph == "M":
            if event.get("name") != "process_name" or "pid" not in event:
                raise ValueError(f"{where}: malformed metadata row")
        elif ph == "i":
            for key in ("name", "pid", "tid", "ts", "args"):
                if key not in event:
                    raise ValueError(f"{where}: missing '{key}'")
            if "site" not in event["args"]:
                raise ValueError(f"{where}: args missing 'site'")
        else:
            raise ValueError(f"{where}: unexpected ph {ph!r}")
    return events, offsets


def render_timeline_summary(doc, path):
    events, offsets = validate_timeline(doc, path)
    names = {e["pid"]: e["args"]["name"]
             for e in events if e.get("ph") == "M"}
    instants = [e for e in events if e.get("ph") == "i"]
    by_process = {}
    by_type = {}
    for event in instants:
        by_process[event["pid"]] = by_process.get(event["pid"], 0) + 1
        by_type[event["name"]] = by_type.get(event["name"], 0) + 1

    span_us = (max(e["ts"] for e in instants) -
               min(e["ts"] for e in instants)) if instants else 0.0
    print(f"timeline: {len(instants)} event(s) across "
          f"{len(by_process)} process(es) over {span_us / 1e3:.2f} ms "
          f"(coordinator clock)\n")
    rows = [[names.get(pid, f"pid {pid}"), str(count),
             offsets.get(str(pid - 1), "-") if pid > 0 else "-"]
            for pid, count in sorted(by_process.items())]
    print_table("events per process",
                ["process", "events", "clock offset ns"], rows)
    rows = [[name, str(by_type[name])] for name in sorted(by_type)]
    print_table("events per type", ["type", "count"], rows)


def fmt_duration_ns(value):
    if value >= 1e9:
        return f"{value / 1e9:.2f}s"
    if value >= 1e6:
        return f"{value / 1e6:.2f}ms"
    if value >= 1e3:
        return f"{value / 1e3:.2f}us"
    return f"{int(value)}ns"


def fmt_metric(name, value):
    return fmt_duration_ns(value) if name.endswith("_ns") else f"{value}"


def print_table(title, header, rows):
    if not rows:
        return
    widths = [len(cell) for cell in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    print(title)
    line = "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(header))
    print(f"  {line}")
    print(f"  {'-' * len(line)}")
    for row in rows:
        line = "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        print(f"  {line}")
    print()


def render(snapshots):
    first, last = snapshots[0], snapshots[-1]
    span_ms = last["t_ms"] - first["t_ms"]
    print(f"metrics dump: {len(snapshots)} snapshot(s) over "
          f"{span_ms / 1000.0:.2f}s; showing the final one\n")

    rows = []
    for name in sorted(last["counters"]):
        value = last["counters"][name]
        rate = ""
        if span_ms > 0:
            delta = value - first["counters"].get(name, 0)
            rate = f"{delta * 1000.0 / span_ms:.1f}/s"
        rows.append([name, str(value), rate])
    print_table("counters", ["name", "value", "rate"], rows)

    rows = [[name, str(last["gauges"][name])]
            for name in sorted(last["gauges"])]
    print_table("gauges", ["name", "value"], rows)

    rows = []
    for name in sorted(last["histograms"]):
        stats = last["histograms"][name]
        rows.append([
            name,
            str(stats["count"]),
            fmt_metric(name, stats["p50"]),
            fmt_metric(name, stats["p99"]),
            fmt_metric(name, stats["max"]),
            fmt_metric(name, stats["sum"] / stats["count"])
            if stats["count"] else "-",
        ])
    print_table("histograms (quantiles are log2-bucket upper bounds)",
                ["name", "count", "p50", "p99", "max", "mean"], rows)

    rows = []
    for site in last["sites"]:
        rows.append([
            str(site["site"]),
            "yes" if site["alive"] else "NO",
            f"{site['hb_age_ms']:.1f}" if site["hb_age_ms"] >= 0 else "-",
            str(site["events"]),
            str(site["updates"]),
            str(site["syncs"]),
            str(site["rounds"]),
            str(site["stats_reports"]),
        ])
    print_table("per-site health",
                ["site", "alive", "hb age ms", "events", "updates", "syncs",
                 "rounds", "stats rx"], rows)


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("dump", help="metrics dump file ('-' for stdin)")
    parser.add_argument("--check", action="store_true",
                        help="validate the dump is well-formed, render nothing")
    parser.add_argument("--check-cluster", action="store_true",
                        help="with --check semantics, also assert the final "
                             "snapshot shows a live cluster (site heartbeat "
                             "ages, syncs, reactor loop p99 all present and "
                             "non-zero)")
    parser.add_argument("--alerts", action="store_true",
                        help="render the obs.alerts.* health-rule firings "
                             "from the final snapshot")
    parser.add_argument("--timeline-summary", action="store_true",
                        help="treat the input as Chrome-trace JSON written "
                             "by --trace-out, validate its schema, and "
                             "summarize events per process and type")
    args = parser.parse_args(argv)

    if args.timeline_summary:
        try:
            if args.dump == "-":
                doc = json.load(sys.stdin)
            else:
                with open(args.dump, encoding="utf-8") as stream:
                    doc = json.load(stream)
            render_timeline_summary(doc, args.dump)
        except OSError as error:
            print(f"metrics_text: {error}", file=sys.stderr)
            return 2
        except (ValueError, KeyError, TypeError) as error:
            print(f"metrics_text: {error}", file=sys.stderr)
            return 1
        return 0

    try:
        if args.dump == "-":
            snapshots = parse_dump(sys.stdin, "<stdin>")
        else:
            with open(args.dump, encoding="utf-8") as stream:
                snapshots = parse_dump(stream, args.dump)
    except OSError as error:
        print(f"metrics_text: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"metrics_text: {error}", file=sys.stderr)
        return 1

    if args.alerts:
        render_alerts(snapshots)
        return 0

    if args.check_cluster:
        problems = check_cluster(snapshots[-1])
        if problems:
            for problem in problems:
                print(f"metrics_text: cluster check: {problem}",
                      file=sys.stderr)
            return 1

    if args.check or args.check_cluster:
        print(f"metrics_text: OK ({len(snapshots)} well-formed snapshot(s))")
        return 0

    render(snapshots)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
