#!/usr/bin/env python3
"""Enforce the dsgm include-layering DAG.

The codebase is layered; lower layers must not include upward:

    common                      (rank 0)
    monitor, bayes, net         (rank 1, mutually independent)
    core                        (rank 2)
    cluster                     (rank 3)
    api, dsgm (include/dsgm)    (rank 4)

Rules checked, for every .h/.cc under src/ and include/:

  1. No upward include: a file in layer L may only include headers whose
     layer rank is <= L's rank.
  2. The rank-1 subsystems (monitor, bayes, net) are independent: none of
     them may include another.
  3. No src/ or include/ file may include test or bench code (the
     "harness/" prefix, or anything under tests/, bench/, examples/).
  4. Public headers (include/) may not include "api/..." — src/api is
     internal Session plumbing and is deliberately not installed.
  5. Frozen-allowlist headers: common/metrics.h is the observability spine
     (every layer includes it, so it must stay at the very bottom of the
     DAG) and common/tracing.h is the coordinator-side tracing stack built
     directly on it. Each may only have the quoted includes frozen below —
     growing their dependency sets would tax every hot path that
     instruments itself.
  6. fuzz/ harnesses target the untrusted wire surface and nothing else:
     they may include only net/ and common/ headers (plus their own
     fuzz-local helpers). A harness reaching into core/cluster/api would
     couple the fuzz build to the whole stack and blur what "input
     validated" means.

Prints one line per offending edge (file:line: explanation) and exits
nonzero when any violation exists, so it can gate as a ctest entry and a
CI step. Exits 2 on usage errors (e.g. a root with no src/ tree).
"""

import argparse
import pathlib
import re
import sys

LAYER_RANK = {
    "common": 0,
    "monitor": 1,
    "bayes": 1,
    "net": 1,
    "core": 2,
    "cluster": 3,
    "api": 4,
    "dsgm": 4,  # the public include/dsgm headers sit at the api layer
}

# Rank-1 subsystems must stay independent of one another.
INDEPENDENT = {"monitor", "bayes", "net"}

# Include prefixes that live outside src/: test/bench-only code that
# production sources must never reach into.
NON_SRC_PREFIXES = {"harness", "tests", "bench", "examples"}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')

# Rule 5: headers whose quoted includes are frozen, keyed by repo-relative
# path. Growing one of these sets is a deliberate layering decision, not a
# convenience edit.
FROZEN_ALLOWLISTS = {
    "src/common/metrics.h": {
        "common/mutex.h",
        "common/thread_annotations.h",
        "common/timer.h",
    },
    "src/common/tracing.h": {
        "common/metrics.h",
        "common/mutex.h",
        "common/thread_annotations.h",
    },
}

# Rule 6: the only layers a fuzz/ harness may include.
FUZZ_ALLOWED_LAYERS = {"net", "common"}


def layer_of(rel_path):
    """The layer name of a source file, or None if it has no layer."""
    parts = rel_path.parts
    if parts[0] == "src" and len(parts) > 1:
        return parts[1]
    if parts[0] == "include":
        return "dsgm"
    if parts[0] == "fuzz":
        return "fuzz"
    return None


def check_fuzz_file(path, rel_path, violations):
    """Rule 6: fuzz/ may include only net/, common/, and fuzz-local headers."""
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except (OSError, UnicodeDecodeError) as error:
        violations.append(f"{rel_path}: unreadable: {error}")
        return
    for lineno, line in enumerate(lines, start=1):
        match = INCLUDE_RE.match(line)
        if not match:
            continue
        target_path = match.group(1)
        target = target_path.split("/", 1)[0]
        where = f"{rel_path}:{lineno}"
        if target in NON_SRC_PREFIXES:
            violations.append(
                f"{where}: fuzz -> {target}: fuzz harnesses must not "
                f'include test/bench code ("{target_path}")'
            )
        elif target in LAYER_RANK and target not in FUZZ_ALLOWED_LAYERS:
            violations.append(
                f"{where}: fuzz -> {target}: fuzz harnesses may include "
                f'only net/ and common/ headers ("{target_path}")'
            )


def check_file(path, rel_path, violations):
    layer = layer_of(rel_path)
    if layer == "fuzz":
        check_fuzz_file(path, rel_path, violations)
        return
    if layer not in LAYER_RANK:
        return
    rank = LAYER_RANK[layer]
    in_public_include = rel_path.parts[0] == "include"
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except (OSError, UnicodeDecodeError) as error:
        violations.append(f"{rel_path}: unreadable: {error}")
        return
    frozen = FROZEN_ALLOWLISTS.get(rel_path.as_posix())
    for lineno, line in enumerate(lines, start=1):
        match = INCLUDE_RE.match(line)
        if not match:
            continue
        target_path = match.group(1)
        target = target_path.split("/", 1)[0]
        where = f"{rel_path}:{lineno}"
        if frozen is not None and target_path not in frozen:
            violations.append(
                f"{where}: {rel_path.as_posix()} must stay dependency-light "
                f'(includable from every layer); "{target_path}" is not in '
                f"its frozen allowlist"
            )
            continue
        if target in NON_SRC_PREFIXES:
            violations.append(
                f"{where}: {layer} -> {target}: production code must not "
                f'include test/bench code ("{target_path}")'
            )
            continue
        if target not in LAYER_RANK:
            continue  # third-party or unlayered quoted include
        if in_public_include and target == "api":
            violations.append(
                f"{where}: dsgm -> api: public headers must not include "
                f'internal Session plumbing ("{target_path}")'
            )
            continue
        target_rank = LAYER_RANK[target]
        if target_rank > rank:
            violations.append(
                f"{where}: upward include {layer} (rank {rank}) -> "
                f'{target} (rank {target_rank}) ("{target_path}")'
            )
        elif (
            target != layer and layer in INDEPENDENT and target in INDEPENDENT
        ):
            violations.append(
                f"{where}: rank-1 subsystems are independent: "
                f'{layer} -> {target} ("{target_path}")'
            )


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        default=str(pathlib.Path(__file__).resolve().parent.parent),
        help="repository root to scan (default: this script's repo)",
    )
    args = parser.parse_args(argv)
    root = pathlib.Path(args.root).resolve()
    if not (root / "src").is_dir():
        print(f"check_layering: no src/ under {root}", file=sys.stderr)
        return 2

    violations = []
    files = 0
    for top in ("src", "include", "fuzz"):
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".h", ".cc"):
                continue
            files += 1
            check_file(path, path.relative_to(root), violations)

    if violations:
        print(f"check_layering: {len(violations)} violation(s):")
        for violation in violations:
            print(f"  {violation}")
        return 1
    print(f"check_layering: OK ({files} files, 0 violations)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
