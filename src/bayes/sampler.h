// Generation of training instances and evaluation queries from a network.

#ifndef DSGM_BAYES_SAMPLER_H_
#define DSGM_BAYES_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "bayes/network.h"
#include "common/rng.h"

namespace dsgm {

/// Ancestral (forward) sampler: draws full instances from the ground-truth
/// joint distribution by assigning variables in topological order from their
/// CPDs, exactly the training-data procedure of the paper's Section VI-A.
class ForwardSampler {
 public:
  ForwardSampler(const BayesianNetwork& network, uint64_t seed);

  /// Fills `instance` (resized to n) with one draw from the joint.
  void Sample(Instance* instance);

  /// Convenience: draws `count` instances.
  std::vector<Instance> SampleMany(int64_t count);

 private:
  const BayesianNetwork& network_;
  Rng rng_;
};

/// One evaluation query: an assignment over an ancestrally-closed variable
/// subset together with its exact ground-truth probability.
struct TestEvent {
  PartialAssignment assignment;
  double truth_prob = 0.0;
};

/// Controls test-event generation (Section VI-A, "Testing Data").
struct TestEventOptions {
  int count = 1000;
  /// Reject events with ground-truth probability below this floor (the
  /// paper uses 0.01 to exclude events too rare to estimate).
  double min_prob = 0.01;
  /// Upper bound on the subset size; seeds whose ancestral closure is larger
  /// are rejected so the events stay local (full joint assignments of large
  /// networks all have negligible probability).
  int max_subset = 12;
  /// Attempts per event before relaxing min_prob by 10x (re-relaxed until 0).
  int max_tries = 400;
};

/// Generates events by (1) sampling a full instance from the ground truth,
/// (2) picking a random seed variable, (3) taking the ancestral closure of
/// the seed, and (4) projecting the instance onto the closure. The closure
/// is ancestrally closed by construction, so both the ground-truth network
/// and the tracked model can evaluate the event exactly by the chain rule.
std::vector<TestEvent> GenerateTestEvents(const BayesianNetwork& network,
                                          const TestEventOptions& options,
                                          Rng& rng);

}  // namespace dsgm

#endif  // DSGM_BAYES_SAMPLER_H_
