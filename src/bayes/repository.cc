#include "bayes/repository.h"

#include <algorithm>
#include <cctype>

#include "common/check.h"

namespace dsgm {
namespace {

// Fixed generator seeds; chosen once, never changed, so that every binary in
// the repository sees identical networks.
constexpr uint64_t kAlarmSeed = 0xa1a7'0001;
constexpr uint64_t kHeparSeed = 0x4e9a'0002;
constexpr uint64_t kLinkSeed = 0x117c'0003;
constexpr uint64_t kMuninSeed = 0x30a1'0004;
constexpr uint64_t kNewAlarmSeed = 0x5e1f'0005;

BayesianNetwork Materialize(const NetworkSpec& spec, uint64_t seed) {
  StatusOr<BayesianNetwork> net = GenerateNetwork(spec, seed);
  DSGM_CHECK(net.ok()) << "repository network generation failed:" << net.status();
  return std::move(net).value();
}

}  // namespace

std::vector<NetworkTarget> PaperNetworkTargets() {
  return {
      {"ALARM", 37, 46, 509},
      {"HEPAR II", 70, 123, 1453},
      {"LINK", 724, 1125, 14211},
      {"MUNIN", 1041, 1397, 80592},
  };
}

NetworkSpec AlarmSpec() {
  NetworkSpec spec;
  spec.name = "alarm";
  spec.num_nodes = 37;
  spec.num_edges = 46;
  spec.min_cardinality = 2;
  spec.max_cardinality = 4;
  spec.target_params = 509;
  spec.max_parents = 4;
  spec.edge_window = 12;
  return spec;
}

NetworkSpec HeparSpec() {
  NetworkSpec spec;
  spec.name = "hepar";
  spec.num_nodes = 70;
  spec.num_edges = 123;
  spec.min_cardinality = 2;
  spec.max_cardinality = 4;
  spec.target_params = 1453;
  spec.max_parents = 5;
  spec.edge_window = 20;
  return spec;
}

NetworkSpec LinkSpec() {
  NetworkSpec spec;
  spec.name = "link";
  spec.num_nodes = 724;
  spec.num_edges = 1125;
  spec.min_cardinality = 2;
  spec.max_cardinality = 4;
  spec.target_params = 14211;
  spec.max_parents = 3;
  spec.edge_window = 40;
  return spec;
}

NetworkSpec MuninSpec() {
  NetworkSpec spec;
  spec.name = "munin";
  spec.num_nodes = 1041;
  spec.num_edges = 1397;
  spec.min_cardinality = 2;
  spec.max_cardinality = 12;
  spec.target_params = 80592;
  spec.max_parents = 3;
  spec.edge_window = 60;
  return spec;
}

BayesianNetwork Alarm() { return Materialize(AlarmSpec(), kAlarmSeed); }
BayesianNetwork Hepar() { return Materialize(HeparSpec(), kHeparSeed); }
BayesianNetwork Link() { return Materialize(LinkSpec(), kLinkSeed); }
BayesianNetwork Munin() { return Materialize(MuninSpec(), kMuninSeed); }

BayesianNetwork NewAlarm() {
  // Section VI-B: keep ALARM's structure, raise 6 random domains to 20.
  // The refilled CPD rows use a near-uniform Dirichlet so the enlarged
  // domains actually spread probability mass over their 20 values — the
  // regime in which the paper observes NONUNIFORM's ~35% saving. With the
  // default skewed rows an inflated domain degenerates to a de-facto binary
  // variable and the two allocations coincide.
  return InflateDomains(Alarm(), /*count=*/6, /*new_cardinality=*/20, kNewAlarmSeed,
                        /*dirichlet_alpha=*/5.0);
}

StatusOr<BayesianNetwork> NetworkByName(const std::string& name) {
  std::string key = name;
  std::transform(key.begin(), key.end(), key.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (key == "alarm") return Alarm();
  if (key == "hepar" || key == "hepar2" || key == "hepar-ii") return Hepar();
  if (key == "link") return Link();
  if (key == "munin") return Munin();
  if (key == "new-alarm" || key == "newalarm") return NewAlarm();
  if (key == "student") return StudentNetwork();
  return NotFoundError("unknown network '" + name +
                       "' (try alarm, hepar, link, munin, new-alarm, student)");
}

BayesianNetwork StudentNetwork() {
  // Koller & Friedman's student example. Node order:
  // 0 Difficulty(2), 1 Intelligence(2), 2 Grade(3), 3 SAT(2), 4 Letter(2).
  std::vector<Variable> variables = {
      {"Difficulty", 2}, {"Intelligence", 2}, {"Grade", 3}, {"SAT", 2}, {"Letter", 2},
  };
  Dag dag(5);
  DSGM_CHECK(dag.AddEdge(0, 2).ok());  // Difficulty -> Grade
  DSGM_CHECK(dag.AddEdge(1, 2).ok());  // Intelligence -> Grade
  DSGM_CHECK(dag.AddEdge(1, 3).ok());  // Intelligence -> SAT
  DSGM_CHECK(dag.AddEdge(2, 4).ok());  // Grade -> Letter

  CpdTable difficulty(2, {});
  DSGM_CHECK(difficulty.SetRow(0, {0.6, 0.4}).ok());
  CpdTable intelligence(2, {});
  DSGM_CHECK(intelligence.SetRow(0, {0.7, 0.3}).ok());

  // Grade rows indexed by (Difficulty, Intelligence), last parent fastest:
  // row 0: d0,i0; row 1: d0,i1; row 2: d1,i0; row 3: d1,i1.
  CpdTable grade(3, {2, 2});
  DSGM_CHECK(grade.SetRow(0, {0.30, 0.40, 0.30}).ok());
  DSGM_CHECK(grade.SetRow(1, {0.90, 0.08, 0.02}).ok());
  DSGM_CHECK(grade.SetRow(2, {0.05, 0.25, 0.70}).ok());
  DSGM_CHECK(grade.SetRow(3, {0.50, 0.30, 0.20}).ok());

  CpdTable sat(2, {2});
  DSGM_CHECK(sat.SetRow(0, {0.95, 0.05}).ok());
  DSGM_CHECK(sat.SetRow(1, {0.20, 0.80}).ok());

  CpdTable letter(2, {3});
  DSGM_CHECK(letter.SetRow(0, {0.90, 0.10}).ok());
  DSGM_CHECK(letter.SetRow(1, {0.40, 0.60}).ok());
  DSGM_CHECK(letter.SetRow(2, {0.01, 0.99}).ok());

  std::vector<CpdTable> cpds;
  cpds.push_back(std::move(difficulty));
  cpds.push_back(std::move(intelligence));
  cpds.push_back(std::move(grade));
  cpds.push_back(std::move(sat));
  cpds.push_back(std::move(letter));

  StatusOr<BayesianNetwork> net = BayesianNetwork::Create(
      "student", std::move(variables), std::move(dag), std::move(cpds));
  DSGM_CHECK(net.ok()) << net.status();
  return std::move(net).value();
}

}  // namespace dsgm
