#include "bayes/network.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.h"

namespace dsgm {

StatusOr<BayesianNetwork> BayesianNetwork::Create(std::string name,
                                                  std::vector<Variable> variables,
                                                  Dag dag,
                                                  std::vector<CpdTable> cpds) {
  const int n = static_cast<int>(variables.size());
  if (n == 0) return InvalidArgumentError("network needs at least one variable");
  if (dag.num_nodes() != n) {
    return InvalidArgumentError("DAG node count differs from variable count");
  }
  if (static_cast<int>(cpds.size()) != n) {
    return InvalidArgumentError("CPD count differs from variable count");
  }
  for (int i = 0; i < n; ++i) {
    const Variable& var = variables[static_cast<size_t>(i)];
    const CpdTable& cpd = cpds[static_cast<size_t>(i)];
    if (var.cardinality < 2) {
      return InvalidArgumentError("variable " + var.name + " has cardinality < 2");
    }
    if (cpd.cardinality() != var.cardinality) {
      return InvalidArgumentError("CPD arity mismatch for variable " + var.name);
    }
    const std::vector<int>& parents = dag.parents(i);
    if (cpd.parent_cards().size() != parents.size()) {
      return InvalidArgumentError("CPD parent count mismatch for variable " + var.name);
    }
    for (size_t j = 0; j < parents.size(); ++j) {
      const int parent_card =
          variables[static_cast<size_t>(parents[j])].cardinality;
      if (cpd.parent_cards()[j] != parent_card) {
        return InvalidArgumentError("CPD parent cardinality mismatch for variable " +
                                    var.name);
      }
    }
  }
  StatusOr<std::vector<int>> topo = dag.TopologicalOrder();
  if (!topo.ok()) return topo.status();
  return BayesianNetwork(std::move(name), std::move(variables), std::move(dag),
                         std::move(cpds), std::move(topo).value());
}

BayesianNetwork::BayesianNetwork(std::string name, std::vector<Variable> variables,
                                 Dag dag, std::vector<CpdTable> cpds,
                                 std::vector<int> topo_order)
    : name_(std::move(name)),
      variables_(std::move(variables)),
      dag_(std::move(dag)),
      cpds_(std::move(cpds)),
      topo_order_(std::move(topo_order)) {}

int64_t BayesianNetwork::FreeParams() const {
  int64_t total = 0;
  for (const CpdTable& cpd : cpds_) total += cpd.FreeParams();
  return total;
}

int64_t BayesianNetwork::TotalJointCells() const {
  int64_t total = 0;
  for (const CpdTable& cpd : cpds_) total += cpd.num_rows() * cpd.cardinality();
  return total;
}

int64_t BayesianNetwork::TotalParentCells() const {
  int64_t total = 0;
  for (const CpdTable& cpd : cpds_) total += cpd.num_rows();
  return total;
}

int64_t BayesianNetwork::ParentIndexOf(int i, const Instance& instance) const {
  DSGM_DCHECK(static_cast<int>(instance.size()) == num_variables());
  const std::vector<int>& parents = dag_.parents(i);
  const CpdTable& cpd = cpds_[static_cast<size_t>(i)];
  int64_t index = 0;
  for (size_t j = 0; j < parents.size(); ++j) {
    index = index * cpd.parent_cards()[j] +
            instance[static_cast<size_t>(parents[j])];
  }
  return index;
}

double BayesianNetwork::LogJointProbability(const Instance& instance) const {
  DSGM_CHECK_EQ(static_cast<int>(instance.size()), num_variables());
  double log_prob = 0.0;
  for (int i = 0; i < num_variables(); ++i) {
    const int64_t row = ParentIndexOf(i, instance);
    log_prob += std::log(cpds_[static_cast<size_t>(i)].prob(
        instance[static_cast<size_t>(i)], row));
  }
  return log_prob;
}

double BayesianNetwork::JointProbability(const Instance& instance) const {
  return std::exp(LogJointProbability(instance));
}

double BayesianNetwork::ClosedSubsetProbability(const PartialAssignment& pa) const {
  DSGM_DCHECK(pa.nodes.size() == pa.values.size());
  DSGM_DCHECK(std::is_sorted(pa.nodes.begin(), pa.nodes.end()));
  // Map node -> position in the subset for parent lookup.
  double prob = 1.0;
  for (size_t j = 0; j < pa.nodes.size(); ++j) {
    const int i = pa.nodes[j];
    const CpdTable& cpd = cpds_[static_cast<size_t>(i)];
    const std::vector<int>& parents = dag_.parents(i);
    int64_t row = 0;
    for (size_t u = 0; u < parents.size(); ++u) {
      const auto it = std::lower_bound(pa.nodes.begin(), pa.nodes.end(), parents[u]);
      DSGM_DCHECK(it != pa.nodes.end() && *it == parents[u])
          << "subset is not ancestrally closed";
      const size_t pos = static_cast<size_t>(it - pa.nodes.begin());
      row = row * cpd.parent_cards()[u] + pa.values[pos];
    }
    prob *= cpd.prob(pa.values[j], row);
  }
  return prob;
}

double BayesianNetwork::MinCpdEntry() const {
  double result = 1.0;
  for (const CpdTable& cpd : cpds_) result = std::min(result, cpd.MinProb());
  return result;
}

std::vector<int> BayesianNetwork::MarkovBlanket(int i) const {
  std::set<int> blanket;
  for (int parent : dag_.parents(i)) blanket.insert(parent);
  for (int child : dag_.children(i)) {
    blanket.insert(child);
    for (int co_parent : dag_.parents(child)) blanket.insert(co_parent);
  }
  blanket.erase(i);
  return std::vector<int>(blanket.begin(), blanket.end());
}

}  // namespace dsgm
