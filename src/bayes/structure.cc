#include "bayes/structure.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace dsgm {

double EmpiricalMutualInformation(const std::vector<Instance>& data, int i, int j,
                                  int card_i, int card_j) {
  DSGM_CHECK(!data.empty());
  std::vector<int64_t> joint(static_cast<size_t>(card_i) * card_j, 0);
  std::vector<int64_t> margin_i(static_cast<size_t>(card_i), 0);
  std::vector<int64_t> margin_j(static_cast<size_t>(card_j), 0);
  for (const Instance& x : data) {
    const int a = x[static_cast<size_t>(i)];
    const int b = x[static_cast<size_t>(j)];
    ++joint[static_cast<size_t>(a) * card_j + b];
    ++margin_i[static_cast<size_t>(a)];
    ++margin_j[static_cast<size_t>(b)];
  }
  const double n = static_cast<double>(data.size());
  double mi = 0.0;
  for (int a = 0; a < card_i; ++a) {
    for (int b = 0; b < card_j; ++b) {
      const int64_t count = joint[static_cast<size_t>(a) * card_j + b];
      if (count == 0) continue;
      const double p_ab = static_cast<double>(count) / n;
      const double p_a = static_cast<double>(margin_i[static_cast<size_t>(a)]) / n;
      const double p_b = static_cast<double>(margin_j[static_cast<size_t>(b)]) / n;
      mi += p_ab * std::log(p_ab / (p_a * p_b));
    }
  }
  return std::max(0.0, mi);
}

StatusOr<BayesianNetwork> LearnChowLiuTree(const std::vector<Instance>& data,
                                           const std::vector<int>& cardinalities,
                                           const ChowLiuOptions& options) {
  const int n = static_cast<int>(cardinalities.size());
  if (n < 2) return InvalidArgumentError("need at least two variables");
  if (data.empty()) return InvalidArgumentError("need at least one instance");
  if (options.root < 0 || options.root >= n) {
    return InvalidArgumentError("root out of range");
  }
  if (options.laplace_alpha < 0.0) {
    return InvalidArgumentError("laplace_alpha must be non-negative");
  }
  for (const Instance& x : data) {
    if (static_cast<int>(x.size()) != n) {
      return InvalidArgumentError("instance arity mismatch");
    }
    for (int i = 0; i < n; ++i) {
      if (x[static_cast<size_t>(i)] < 0 ||
          x[static_cast<size_t>(i)] >= cardinalities[static_cast<size_t>(i)]) {
        return InvalidArgumentError("value out of domain for variable " +
                                    std::to_string(i));
      }
    }
  }

  // 1. Pairwise mutual information.
  std::vector<double> mi(static_cast<size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double value = EmpiricalMutualInformation(
          data, i, j, cardinalities[static_cast<size_t>(i)],
          cardinalities[static_cast<size_t>(j)]);
      mi[static_cast<size_t>(i) * n + j] = value;
      mi[static_cast<size_t>(j) * n + i] = value;
    }
  }

  // 2. Maximum-weight spanning tree (Prim from the root).
  std::vector<bool> in_tree(static_cast<size_t>(n), false);
  std::vector<double> best_weight(static_cast<size_t>(n),
                                  -std::numeric_limits<double>::infinity());
  std::vector<int> best_neighbor(static_cast<size_t>(n), -1);
  in_tree[static_cast<size_t>(options.root)] = true;
  for (int j = 0; j < n; ++j) {
    if (j == options.root) continue;
    best_weight[static_cast<size_t>(j)] =
        mi[static_cast<size_t>(options.root) * n + j];
    best_neighbor[static_cast<size_t>(j)] = options.root;
  }
  std::vector<std::pair<int, int>> tree_edges;  // (parent-side, child-side)
  for (int step = 1; step < n; ++step) {
    int pick = -1;
    for (int j = 0; j < n; ++j) {
      if (in_tree[static_cast<size_t>(j)]) continue;
      if (pick < 0 ||
          best_weight[static_cast<size_t>(j)] > best_weight[static_cast<size_t>(pick)]) {
        pick = j;
      }
    }
    DSGM_CHECK_GE(pick, 0);
    in_tree[static_cast<size_t>(pick)] = true;
    tree_edges.emplace_back(best_neighbor[static_cast<size_t>(pick)], pick);
    for (int j = 0; j < n; ++j) {
      if (in_tree[static_cast<size_t>(j)]) continue;
      const double w = mi[static_cast<size_t>(pick) * n + j];
      if (w > best_weight[static_cast<size_t>(j)]) {
        best_weight[static_cast<size_t>(j)] = w;
        best_neighbor[static_cast<size_t>(j)] = pick;
      }
    }
  }

  // 3. Prim grows outward from the root, so (from, to) is already oriented
  //    away from it.
  Dag dag(n);
  for (const auto& [from, to] : tree_edges) {
    DSGM_CHECK(dag.AddEdge(from, to).ok());
  }

  // 4. CPD estimation with Laplace smoothing.
  std::vector<Variable> variables;
  variables.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    variables.push_back(
        Variable{"X" + std::to_string(i), cardinalities[static_cast<size_t>(i)]});
  }
  std::vector<CpdTable> cpds;
  cpds.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int card = cardinalities[static_cast<size_t>(i)];
    std::vector<int> parent_cards;
    for (int parent : dag.parents(i)) {
      parent_cards.push_back(cardinalities[static_cast<size_t>(parent)]);
    }
    CpdTable cpd(card, parent_cards);
    // Count (value, parent-row) occurrences.
    std::vector<double> counts(static_cast<size_t>(cpd.num_rows()) * card,
                               options.laplace_alpha);
    for (const Instance& x : data) {
      int64_t row = 0;
      const std::vector<int>& parents = dag.parents(i);
      for (size_t u = 0; u < parents.size(); ++u) {
        row = row * parent_cards[u] + x[static_cast<size_t>(parents[u])];
      }
      counts[static_cast<size_t>(row) * card + x[static_cast<size_t>(i)]] += 1.0;
    }
    for (int64_t row = 0; row < cpd.num_rows(); ++row) {
      double total = 0.0;
      std::vector<double> probs(static_cast<size_t>(card));
      for (int v = 0; v < card; ++v) {
        probs[static_cast<size_t>(v)] = counts[static_cast<size_t>(row) * card + v];
        total += probs[static_cast<size_t>(v)];
      }
      if (total <= 0.0) {
        // alpha = 0 and the row never occurred: fall back to uniform.
        std::fill(probs.begin(), probs.end(), 1.0 / card);
      } else {
        for (double& p : probs) p /= total;
      }
      DSGM_CHECK(cpd.SetRow(row, probs).ok());
    }
    cpds.push_back(std::move(cpd));
  }

  return BayesianNetwork::Create(options.name, std::move(variables), std::move(dag),
                                 std::move(cpds));
}

std::vector<std::pair<int, int>> UndirectedSkeleton(const BayesianNetwork& network) {
  std::vector<std::pair<int, int>> edges;
  for (int child = 0; child < network.num_variables(); ++child) {
    for (int parent : network.dag().parents(child)) {
      edges.emplace_back(std::min(parent, child), std::max(parent, child));
    }
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

}  // namespace dsgm
