// Bayesian network: DAG structure plus one CPD per variable.

#ifndef DSGM_BAYES_NETWORK_H_
#define DSGM_BAYES_NETWORK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bayes/cpd.h"
#include "bayes/dag.h"
#include "bayes/variable.h"
#include "common/status.h"

namespace dsgm {

/// A full assignment of values to all variables: instance[i] is the value of
/// variable i, in {0, ..., J_i - 1}.
using Instance = std::vector<int>;

/// An assignment restricted to a subset of variables. `nodes` must be sorted
/// ascending; `values[j]` is the value of `nodes[j]`.
struct PartialAssignment {
  std::vector<int> nodes;
  std::vector<int> values;
};

/// Immutable Bayesian network over categorical variables (Definition 1 of
/// the paper): a DAG whose node i carries variable i and the CPD
/// P[X_i | par(X_i)]. Parents are ordered ascending by node id; CPD parent
/// rows use that order (see CpdTable).
class BayesianNetwork {
 public:
  /// Validates and assembles a network. Errors if sizes disagree, the graph
  /// is cyclic, or a CPD's shape does not match the variable/parent
  /// cardinalities.
  static StatusOr<BayesianNetwork> Create(std::string name,
                                          std::vector<Variable> variables, Dag dag,
                                          std::vector<CpdTable> cpds);

  const std::string& name() const { return name_; }
  int num_variables() const { return static_cast<int>(variables_.size()); }
  const Variable& variable(int i) const { return variables_[static_cast<size_t>(i)]; }
  const Dag& dag() const { return dag_; }
  const CpdTable& cpd(int i) const { return cpds_[static_cast<size_t>(i)]; }

  /// J_i: domain size of variable i.
  int cardinality(int i) const { return variables_[static_cast<size_t>(i)].cardinality; }
  /// K_i: number of joint parent assignments of variable i (1 for roots).
  int64_t parent_cardinality(int i) const { return cpds_[static_cast<size_t>(i)].num_rows(); }

  /// Variables in an order where parents precede children.
  const std::vector<int>& topological_order() const { return topo_order_; }

  /// Total free parameters: sum over i of K_i * (J_i - 1). This is the
  /// "Number of Parameters" column of the paper's Table I.
  int64_t FreeParams() const;
  /// Total tracked counters the MLE tracker will allocate:
  /// sum of J_i * K_i (joint) plus sum of K_i (parent).
  int64_t TotalJointCells() const;
  int64_t TotalParentCells() const;

  /// Row index into cpd(i) for the parent values found in `instance`.
  int64_t ParentIndexOf(int i, const Instance& instance) const;

  /// log P[instance] under this network (chain rule, eq. 1).
  double LogJointProbability(const Instance& instance) const;
  double JointProbability(const Instance& instance) const;

  /// Probability of an assignment over an ancestrally-closed subset: every
  /// parent of every node in `pa.nodes` must itself be in `pa.nodes` (checked
  /// in debug builds). For such subsets the marginal equals the product of
  /// the member CPD entries, with all excluded variables summing out to 1.
  double ClosedSubsetProbability(const PartialAssignment& pa) const;

  /// Smallest CPD entry across all variables (the lambda of Lemma 3).
  double MinCpdEntry() const;

  /// The Markov blanket of variable i: parents, children, and the children's
  /// other parents, sorted ascending, excluding i itself.
  std::vector<int> MarkovBlanket(int i) const;

 private:
  BayesianNetwork(std::string name, std::vector<Variable> variables, Dag dag,
                  std::vector<CpdTable> cpds, std::vector<int> topo_order);

  std::string name_;
  std::vector<Variable> variables_;
  Dag dag_;
  std::vector<CpdTable> cpds_;
  std::vector<int> topo_order_;
};

}  // namespace dsgm

#endif  // DSGM_BAYES_NETWORK_H_
