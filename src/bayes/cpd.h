// Conditional probability distribution table (CPT) of one variable.

#ifndef DSGM_BAYES_CPD_H_
#define DSGM_BAYES_CPD_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace dsgm {

/// The CPD P[X = x | par(X) = u] of a categorical variable, stored as a
/// dense table with one row per joint parent assignment.
///
/// Parent assignments are linearized in row-major order over the parents
/// sorted ascending by node id (the Dag contract): the LAST parent varies
/// fastest. `ParentIndex` maps a vector of parent values to the row id.
class CpdTable {
 public:
  /// `cardinality` is J (domain size of X); `parent_cards` are the domain
  /// sizes of par(X) in ascending-node-id order (empty for root variables).
  CpdTable(int cardinality, std::vector<int> parent_cards);

  int cardinality() const { return cardinality_; }
  const std::vector<int>& parent_cards() const { return parent_cards_; }
  /// K: the number of joint parent assignments (1 for roots).
  int64_t num_rows() const { return num_rows_; }
  /// Free parameters of this CPD: K * (J - 1), the convention used by the
  /// bnlearn repository figures quoted in the paper's Table I.
  int64_t FreeParams() const { return num_rows_ * (cardinality_ - 1); }

  /// Linearizes parent values (same order as parent_cards) into a row index.
  int64_t ParentIndex(const std::vector<int>& parent_values) const;

  double prob(int value, int64_t parent_index) const {
    return probs_[static_cast<size_t>(parent_index) * cardinality_ + value];
  }

  /// Replaces the distribution of one row. Returns InvalidArgument unless
  /// `row` has exactly J non-negative entries summing to 1 (within 1e-9).
  Status SetRow(int64_t parent_index, const std::vector<double>& row);

  /// Fills every row with Dirichlet(alpha) draws, then mixes each row with
  /// the uniform distribution so that every probability is at least
  /// `min_prob` (the floor lambda of the paper's Lemma 3). `min_prob` is
  /// clamped to at most 0.5/J to keep rows valid.
  void FillRandom(Rng& rng, double alpha, double min_prob);

  /// Samples a value of X given the parent row.
  int Sample(int64_t parent_index, Rng& rng) const;

  /// Smallest probability anywhere in the table.
  double MinProb() const;

 private:
  int cardinality_;
  std::vector<int> parent_cards_;
  int64_t num_rows_;
  std::vector<double> probs_;  // num_rows_ x cardinality_, row-major.
};

}  // namespace dsgm

#endif  // DSGM_BAYES_CPD_H_
