// Offline structure learning: Chow-Liu trees.
//
// The paper treats the graph G as given ("the graph structure can be learned
// offline based on a suitable sample of the data", Section III). This module
// supplies that offline step: the classic Chow-Liu algorithm builds the
// maximum-likelihood TREE-structured network from a sample by computing all
// pairwise mutual informations and taking a maximum-weight spanning tree.
// The result plugs directly into MleTracker (whose Lemma 10 specialization
// covers tree networks).

#ifndef DSGM_BAYES_STRUCTURE_H_
#define DSGM_BAYES_STRUCTURE_H_

#include <vector>

#include "bayes/network.h"
#include "common/status.h"

namespace dsgm {

/// Options for Chow-Liu learning.
struct ChowLiuOptions {
  /// Root of the learned tree (edges are oriented away from it).
  int root = 0;
  /// Laplace pseudo-count used when estimating the CPDs of the result.
  double laplace_alpha = 1.0;
  std::string name = "chow-liu";
};

/// Empirical mutual information I(X_i; X_j) of two columns of `data` under
/// add-zero (raw frequency) estimates, in nats. Exposed for tests.
double EmpiricalMutualInformation(const std::vector<Instance>& data, int i, int j,
                                  int card_i, int card_j);

/// Learns a tree-structured Bayesian network over `cardinalities.size()`
/// variables from `data` (each instance one full assignment):
///
///  1. compute I(X_i; X_j) for all pairs,
///  2. take a maximum-weight spanning tree (Prim),
///  3. orient edges away from `options.root`,
///  4. estimate each CPD from the data with Laplace smoothing.
///
/// Errors if data is empty, dimensions mismatch, or a value is out of range.
StatusOr<BayesianNetwork> LearnChowLiuTree(const std::vector<Instance>& data,
                                           const std::vector<int>& cardinalities,
                                           const ChowLiuOptions& options = {});

/// The undirected skeleton of a network as a sorted edge list (min, max);
/// convenience for comparing learned structure against ground truth.
std::vector<std::pair<int, int>> UndirectedSkeleton(const BayesianNetwork& network);

}  // namespace dsgm

#endif  // DSGM_BAYES_STRUCTURE_H_
