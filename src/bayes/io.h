// Plain-text serialization of Bayesian networks.
//
// Format (line oriented, '#' comments allowed):
//
//   dsgm_network v1
//   name <free text up to end of line>
//   nodes <n>
//   node <id> <cardinality> <name up to end of line>
//   edges <m>
//   edge <from> <to>
//   cpd <id>
//   row <parent_index> <p_0> ... <p_{J-1}>
//   end
//
// Every variable must have a `cpd` block covering all its rows.

#ifndef DSGM_BAYES_IO_H_
#define DSGM_BAYES_IO_H_

#include <string>

#include "bayes/network.h"
#include "common/status.h"

namespace dsgm {

/// Renders `network` in the format above.
std::string SerializeNetwork(const BayesianNetwork& network);

/// Parses a network from text; returns InvalidArgument with a line number
/// on malformed input.
StatusOr<BayesianNetwork> ParseNetwork(const std::string& text);

/// File convenience wrappers.
Status WriteNetworkToFile(const BayesianNetwork& network, const std::string& path);
StatusOr<BayesianNetwork> ReadNetworkFromFile(const std::string& path);

}  // namespace dsgm

#endif  // DSGM_BAYES_IO_H_
