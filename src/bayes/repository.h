// Named benchmark networks used throughout tests, benches, and examples.
//
// ALARM / HEPAR II / LINK / MUNIN are seeded synthetic stand-ins whose
// structural statistics match the paper's Table I (see DESIGN.md section 3
// for the substitution rationale). The functions are deterministic: the same
// binary always works with the same networks.

#ifndef DSGM_BAYES_REPOSITORY_H_
#define DSGM_BAYES_REPOSITORY_H_

#include <string>
#include <vector>

#include "bayes/generator.h"
#include "bayes/network.h"

namespace dsgm {

/// Target statistics from the paper's Table I.
struct NetworkTarget {
  std::string name;
  int nodes = 0;
  int edges = 0;
  int64_t params = 0;
};

/// The four Table I rows.
std::vector<NetworkTarget> PaperNetworkTargets();

/// Generator specs matched to Table I (used by benches to report achieved
/// statistics next to the targets).
NetworkSpec AlarmSpec();
NetworkSpec HeparSpec();
NetworkSpec LinkSpec();
NetworkSpec MuninSpec();

/// The seeded stand-in networks themselves.
BayesianNetwork Alarm();
BayesianNetwork Hepar();
BayesianNetwork Link();
BayesianNetwork Munin();

/// NEW-ALARM (Section VI-B): ALARM's structure with six domains inflated to
/// 20 values, used to separate UNIFORM from NONUNIFORM.
BayesianNetwork NewAlarm();

/// Looks a repository network up by name ("alarm", "hepar", "link", "munin",
/// "new-alarm", case-insensitive); errors on unknown names.
StatusOr<BayesianNetwork> NetworkByName(const std::string& name);

/// A tiny hand-coded 5-variable network (the classic student network:
/// Difficulty, Intelligence, Grade, SAT, Letter) with exact CPDs; used by
/// unit tests and the quickstart example where inspectable numbers matter.
BayesianNetwork StudentNetwork();

}  // namespace dsgm

#endif  // DSGM_BAYES_REPOSITORY_H_
