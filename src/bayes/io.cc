#include "bayes/io.h"

#include <cmath>
#include <fstream>
#include <sstream>

namespace dsgm {
namespace {

Status ParseError(int line_no, const std::string& message) {
  return InvalidArgumentError("line " + std::to_string(line_no) + ": " + message);
}

}  // namespace

std::string SerializeNetwork(const BayesianNetwork& network) {
  std::ostringstream os;
  os.precision(17);
  os << "dsgm_network v1\n";
  os << "name " << network.name() << "\n";
  os << "nodes " << network.num_variables() << "\n";
  for (int i = 0; i < network.num_variables(); ++i) {
    os << "node " << i << " " << network.cardinality(i) << " "
       << network.variable(i).name << "\n";
  }
  os << "edges " << network.dag().num_edges() << "\n";
  for (int child = 0; child < network.num_variables(); ++child) {
    for (int parent : network.dag().parents(child)) {
      os << "edge " << parent << " " << child << "\n";
    }
  }
  for (int i = 0; i < network.num_variables(); ++i) {
    const CpdTable& cpd = network.cpd(i);
    os << "cpd " << i << "\n";
    for (int64_t row = 0; row < cpd.num_rows(); ++row) {
      os << "row " << row;
      for (int j = 0; j < cpd.cardinality(); ++j) {
        os << " " << cpd.prob(j, row);
      }
      os << "\n";
    }
  }
  os << "end\n";
  return os.str();
}

StatusOr<BayesianNetwork> ParseNetwork(const std::string& text) {
  std::istringstream input(text);
  std::string line;
  int line_no = 0;

  auto next_line = [&](std::string* out) {
    while (std::getline(input, line)) {
      ++line_no;
      const size_t start = line.find_first_not_of(" \t\r");
      if (start == std::string::npos || line[start] == '#') continue;
      *out = line;
      return true;
    }
    return false;
  };

  std::string current;
  if (!next_line(&current) || current.rfind("dsgm_network", 0) != 0) {
    return ParseError(line_no, "expected 'dsgm_network v1' header");
  }

  std::string name = "unnamed";
  int n = -1;
  std::vector<Variable> variables;
  std::vector<std::pair<int, int>> edges;
  int declared_edges = -1;
  // CPD rows keyed by variable; assembled after structure is known.
  std::vector<std::vector<std::pair<int64_t, std::vector<double>>>> cpd_rows;
  int active_cpd = -1;  // Variable the current `row` lines belong to.

  while (next_line(&current)) {
    std::istringstream fields(current);
    std::string keyword;
    fields >> keyword;
    if (keyword == "end") break;
    if (keyword == "name") {
      std::string rest;
      std::getline(fields, rest);
      const size_t start = rest.find_first_not_of(' ');
      name = start == std::string::npos ? "" : rest.substr(start);
    } else if (keyword == "nodes") {
      if (!(fields >> n) || n <= 0) return ParseError(line_no, "bad node count");
      variables.resize(static_cast<size_t>(n));
      cpd_rows.resize(static_cast<size_t>(n));
    } else if (keyword == "node") {
      int id = -1;
      int card = -1;
      if (!(fields >> id >> card)) return ParseError(line_no, "bad node line");
      if (n < 0 || id < 0 || id >= n) return ParseError(line_no, "node id out of range");
      if (card < 2) return ParseError(line_no, "cardinality must be >= 2");
      std::string rest;
      std::getline(fields, rest);
      const size_t start = rest.find_first_not_of(' ');
      variables[static_cast<size_t>(id)].name =
          start == std::string::npos ? ("X" + std::to_string(id)) : rest.substr(start);
      variables[static_cast<size_t>(id)].cardinality = card;
    } else if (keyword == "edges") {
      if (!(fields >> declared_edges) || declared_edges < 0) {
        return ParseError(line_no, "bad edge count");
      }
    } else if (keyword == "edge") {
      int from = -1;
      int to = -1;
      if (!(fields >> from >> to)) return ParseError(line_no, "bad edge line");
      edges.emplace_back(from, to);
    } else if (keyword == "cpd") {
      int id = -1;
      if (!(fields >> id) || n < 0 || id < 0 || id >= n) {
        return ParseError(line_no, "bad cpd id");
      }
      // Subsequent `row` lines belong to this variable.
      active_cpd = id;
    } else if (keyword == "row") {
      if (active_cpd < 0) return ParseError(line_no, "row before any cpd");
      int64_t row_index = -1;
      if (!(fields >> row_index)) return ParseError(line_no, "bad row index");
      std::vector<double> probs;
      double p = 0.0;
      while (fields >> p) probs.push_back(p);
      cpd_rows[static_cast<size_t>(active_cpd)].emplace_back(row_index,
                                                             std::move(probs));
    } else {
      return ParseError(line_no, "unknown keyword '" + keyword + "'");
    }
  }

  if (n < 0) return ParseError(line_no, "missing 'nodes' section");
  if (declared_edges >= 0 && static_cast<int>(edges.size()) != declared_edges) {
    return ParseError(line_no, "edge count mismatch");
  }
  Dag dag(n);
  for (const auto& [from, to] : edges) {
    Status added = dag.AddEdge(from, to);
    if (!added.ok()) return added;
  }

  std::vector<CpdTable> cpds;
  cpds.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::vector<int> parent_cards;
    for (int parent : dag.parents(i)) {
      parent_cards.push_back(variables[static_cast<size_t>(parent)].cardinality);
    }
    CpdTable cpd(variables[static_cast<size_t>(i)].cardinality,
                 std::move(parent_cards));
    const auto& rows = cpd_rows[static_cast<size_t>(i)];
    if (static_cast<int64_t>(rows.size()) != cpd.num_rows()) {
      return InvalidArgumentError("cpd " + std::to_string(i) + " has " +
                                  std::to_string(rows.size()) + " rows, expected " +
                                  std::to_string(cpd.num_rows()));
    }
    for (const auto& [row_index, probs] : rows) {
      // Tolerate rounding: renormalize rows that sum close to (but not
      // exactly) 1. Rows already exact to 1e-12 are kept bit-identical so
      // serialization round trips are stable.
      double total = 0.0;
      for (double q : probs) total += q;
      if (std::abs(total - 1.0) > 1e-6 || probs.empty()) {
        return InvalidArgumentError("cpd " + std::to_string(i) + " row " +
                                    std::to_string(row_index) +
                                    " does not sum to 1");
      }
      std::vector<double> normalized = probs;
      if (std::abs(total - 1.0) > 1e-12) {
        for (double& q : normalized) q /= total;
      }
      Status set = cpd.SetRow(row_index, normalized);
      if (!set.ok()) return set;
    }
    cpds.push_back(std::move(cpd));
  }

  return BayesianNetwork::Create(name, std::move(variables), std::move(dag),
                                 std::move(cpds));
}

Status WriteNetworkToFile(const BayesianNetwork& network, const std::string& path) {
  std::ofstream file(path);
  if (!file) return InternalError("cannot open '" + path + "' for writing");
  file << SerializeNetwork(network);
  if (!file.good()) return InternalError("write to '" + path + "' failed");
  return Status::Ok();
}

StatusOr<BayesianNetwork> ReadNetworkFromFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return NotFoundError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseNetwork(buffer.str());
}

}  // namespace dsgm
