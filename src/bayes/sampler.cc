#include "bayes/sampler.h"

#include <algorithm>

#include "common/check.h"

namespace dsgm {

ForwardSampler::ForwardSampler(const BayesianNetwork& network, uint64_t seed)
    : network_(network), rng_(seed) {}

void ForwardSampler::Sample(Instance* instance) {
  const int n = network_.num_variables();
  instance->resize(static_cast<size_t>(n));
  for (int i : network_.topological_order()) {
    const int64_t row = network_.ParentIndexOf(i, *instance);
    (*instance)[static_cast<size_t>(i)] = network_.cpd(i).Sample(row, rng_);
  }
}

std::vector<Instance> ForwardSampler::SampleMany(int64_t count) {
  std::vector<Instance> result(static_cast<size_t>(count));
  for (auto& instance : result) Sample(&instance);
  return result;
}

std::vector<TestEvent> GenerateTestEvents(const BayesianNetwork& network,
                                          const TestEventOptions& options,
                                          Rng& rng) {
  DSGM_CHECK_GT(options.count, 0);
  const int n = network.num_variables();

  // Precompute which variables have a small enough ancestral closure to act
  // as seeds; large networks have deep nodes whose closures would span
  // hundreds of variables.
  std::vector<std::vector<int>> closures(static_cast<size_t>(n));
  std::vector<int> eligible;
  for (int i = 0; i < n; ++i) {
    std::vector<int> closure = network.dag().AncestralClosure({i});
    if (static_cast<int>(closure.size()) <= options.max_subset) {
      closures[static_cast<size_t>(i)] = std::move(closure);
      eligible.push_back(i);
    }
  }
  DSGM_CHECK(!eligible.empty())
      << "no variable has an ancestral closure within max_subset ="
      << options.max_subset;

  ForwardSampler sampler(network, rng.Next());
  std::vector<TestEvent> events;
  events.reserve(static_cast<size_t>(options.count));
  Instance instance;
  double floor = options.min_prob;
  int tries_at_floor = 0;
  while (static_cast<int>(events.size()) < options.count) {
    const int seed_var =
        eligible[rng.NextBounded(static_cast<uint64_t>(eligible.size()))];
    const std::vector<int>& closure = closures[static_cast<size_t>(seed_var)];
    sampler.Sample(&instance);
    TestEvent event;
    event.assignment.nodes = closure;
    event.assignment.values.reserve(closure.size());
    for (int node : closure) {
      event.assignment.values.push_back(instance[static_cast<size_t>(node)]);
    }
    event.truth_prob = network.ClosedSubsetProbability(event.assignment);
    if (event.truth_prob >= floor) {
      events.push_back(std::move(event));
      tries_at_floor = 0;
      continue;
    }
    if (++tries_at_floor >= options.max_tries) {
      // The requested floor is infeasible for this network; relax rather
      // than loop forever (documented in EXPERIMENTS.md).
      floor /= 10.0;
      tries_at_floor = 0;
    }
  }
  return events;
}

}  // namespace dsgm
