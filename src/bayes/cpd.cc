#include "bayes/cpd.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dsgm {

CpdTable::CpdTable(int cardinality, std::vector<int> parent_cards)
    : cardinality_(cardinality), parent_cards_(std::move(parent_cards)) {
  DSGM_CHECK_GE(cardinality_, 2) << "a categorical variable needs >= 2 values";
  num_rows_ = 1;
  for (int card : parent_cards_) {
    DSGM_CHECK_GE(card, 2);
    num_rows_ *= card;
  }
  probs_.assign(static_cast<size_t>(num_rows_) * cardinality_,
                1.0 / cardinality_);
}

int64_t CpdTable::ParentIndex(const std::vector<int>& parent_values) const {
  DSGM_DCHECK(parent_values.size() == parent_cards_.size());
  int64_t index = 0;
  for (size_t i = 0; i < parent_cards_.size(); ++i) {
    DSGM_DCHECK(parent_values[i] >= 0 && parent_values[i] < parent_cards_[i]);
    index = index * parent_cards_[i] + parent_values[i];
  }
  return index;
}

Status CpdTable::SetRow(int64_t parent_index, const std::vector<double>& row) {
  if (parent_index < 0 || parent_index >= num_rows_) {
    return OutOfRangeError("parent index out of range");
  }
  if (static_cast<int>(row.size()) != cardinality_) {
    return InvalidArgumentError("row has wrong arity");
  }
  double total = 0.0;
  for (double p : row) {
    if (p < 0.0) return InvalidArgumentError("negative probability");
    total += p;
  }
  if (std::abs(total - 1.0) > 1e-9) {
    return InvalidArgumentError("row does not sum to 1");
  }
  std::copy(row.begin(), row.end(),
            probs_.begin() + static_cast<size_t>(parent_index) * cardinality_);
  return Status::Ok();
}

void CpdTable::FillRandom(Rng& rng, double alpha, double min_prob) {
  const double floor = std::min(min_prob, 0.5 / cardinality_);
  const double scale = 1.0 - floor * cardinality_;
  for (int64_t row = 0; row < num_rows_; ++row) {
    const std::vector<double> raw = rng.NextDirichlet(cardinality_, alpha);
    double* out = &probs_[static_cast<size_t>(row) * cardinality_];
    for (int j = 0; j < cardinality_; ++j) out[j] = floor + scale * raw[j];
  }
}

int CpdTable::Sample(int64_t parent_index, Rng& rng) const {
  DSGM_DCHECK(parent_index >= 0 && parent_index < num_rows_);
  const double* row = &probs_[static_cast<size_t>(parent_index) * cardinality_];
  double target = rng.NextDouble();
  for (int j = 0; j < cardinality_; ++j) {
    target -= row[j];
    if (target < 0.0) return j;
  }
  return cardinality_ - 1;
}

double CpdTable::MinProb() const {
  double result = 1.0;
  for (double p : probs_) result = std::min(result, p);
  return result;
}

}  // namespace dsgm
