// Categorical random variable metadata.

#ifndef DSGM_BAYES_VARIABLE_H_
#define DSGM_BAYES_VARIABLE_H_

#include <string>

namespace dsgm {

/// A categorical random variable: a name plus a finite domain
/// {0, 1, ..., cardinality-1}. The paper calls the domain size J_i.
struct Variable {
  std::string name;
  int cardinality = 2;
};

}  // namespace dsgm

#endif  // DSGM_BAYES_VARIABLE_H_
