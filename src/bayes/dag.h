// Directed acyclic graph structure of a Bayesian network.

#ifndef DSGM_BAYES_DAG_H_
#define DSGM_BAYES_DAG_H_

#include <vector>

#include "common/status.h"

namespace dsgm {

/// Directed graph over nodes {0, ..., n-1} with parent/child adjacency.
///
/// Parents of each node are kept sorted by node id; this ordering is the
/// contract used by CpdTable parent indexing throughout the library.
/// The class itself does not forbid cycles while edges are being added;
/// call Validate() (or TopologicalOrder()) once construction is complete.
class Dag {
 public:
  explicit Dag(int num_nodes);

  /// Adds edge from -> to. Returns InvalidArgument on out-of-range ids,
  /// self-loops, or duplicate edges.
  Status AddEdge(int from, int to);

  int num_nodes() const { return static_cast<int>(parents_.size()); }
  int num_edges() const { return num_edges_; }

  /// Parents of `node`, sorted ascending by id.
  const std::vector<int>& parents(int node) const { return parents_[node]; }
  /// Children of `node`, sorted ascending by id.
  const std::vector<int>& children(int node) const { return children_[node]; }

  bool HasEdge(int from, int to) const;

  /// True iff the graph has no directed cycle.
  bool IsAcyclic() const;

  /// Nodes in an order where every parent precedes its children, or
  /// FailedPrecondition if the graph has a cycle.
  StatusOr<std::vector<int>> TopologicalOrder() const;

  /// The ancestral closure of `seeds`: the seeds plus all their ancestors,
  /// returned sorted ascending. For any assignment restricted to such a set,
  /// the joint probability factorizes exactly by the chain rule (every
  /// parent of a member is itself a member).
  std::vector<int> AncestralClosure(const std::vector<int>& seeds) const;

  /// Nodes with no outgoing edge, ascending.
  std::vector<int> Sinks() const;

  /// Nodes with no incoming edge, ascending.
  std::vector<int> Roots() const;

  /// The subgraph induced by `keep` (which must be closed under parents is
  /// NOT required; edges to dropped nodes are removed). Node i of the result
  /// corresponds to keep[i]; `keep` must be sorted ascending and duplicate
  /// free.
  Dag InducedSubgraph(const std::vector<int>& keep) const;

 private:
  std::vector<std::vector<int>> parents_;
  std::vector<std::vector<int>> children_;
  int num_edges_ = 0;
};

}  // namespace dsgm

#endif  // DSGM_BAYES_DAG_H_
