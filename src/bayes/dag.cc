#include "bayes/dag.h"

#include <algorithm>
#include <queue>

#include "common/check.h"

namespace dsgm {

Dag::Dag(int num_nodes) {
  DSGM_CHECK_GT(num_nodes, 0) << "a DAG needs at least one node";
  parents_.resize(static_cast<size_t>(num_nodes));
  children_.resize(static_cast<size_t>(num_nodes));
}

Status Dag::AddEdge(int from, int to) {
  if (from < 0 || from >= num_nodes() || to < 0 || to >= num_nodes()) {
    return InvalidArgumentError("edge endpoint out of range");
  }
  if (from == to) {
    return InvalidArgumentError("self-loop on node " + std::to_string(from));
  }
  if (HasEdge(from, to)) {
    return InvalidArgumentError("duplicate edge " + std::to_string(from) + "->" +
                                std::to_string(to));
  }
  auto& parents = parents_[static_cast<size_t>(to)];
  parents.insert(std::lower_bound(parents.begin(), parents.end(), from), from);
  auto& children = children_[static_cast<size_t>(from)];
  children.insert(std::lower_bound(children.begin(), children.end(), to), to);
  ++num_edges_;
  return Status::Ok();
}

bool Dag::HasEdge(int from, int to) const {
  if (from < 0 || from >= num_nodes() || to < 0 || to >= num_nodes()) return false;
  const auto& parents = parents_[static_cast<size_t>(to)];
  return std::binary_search(parents.begin(), parents.end(), from);
}

StatusOr<std::vector<int>> Dag::TopologicalOrder() const {
  // Kahn's algorithm; smallest-id-first to make the order deterministic.
  const int n = num_nodes();
  std::vector<int> in_degree(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) {
    in_degree[static_cast<size_t>(v)] = static_cast<int>(parents(v).size());
  }
  std::priority_queue<int, std::vector<int>, std::greater<int>> ready;
  for (int v = 0; v < n; ++v) {
    if (in_degree[static_cast<size_t>(v)] == 0) ready.push(v);
  }
  std::vector<int> order;
  order.reserve(static_cast<size_t>(n));
  while (!ready.empty()) {
    const int v = ready.top();
    ready.pop();
    order.push_back(v);
    for (int child : children(v)) {
      if (--in_degree[static_cast<size_t>(child)] == 0) ready.push(child);
    }
  }
  if (static_cast<int>(order.size()) != n) {
    return FailedPreconditionError("graph contains a directed cycle");
  }
  return order;
}

bool Dag::IsAcyclic() const { return TopologicalOrder().ok(); }

std::vector<int> Dag::AncestralClosure(const std::vector<int>& seeds) const {
  std::vector<bool> visited(static_cast<size_t>(num_nodes()), false);
  std::vector<int> stack;
  for (int seed : seeds) {
    DSGM_CHECK(seed >= 0 && seed < num_nodes()) << "seed out of range:" << seed;
    if (!visited[static_cast<size_t>(seed)]) {
      visited[static_cast<size_t>(seed)] = true;
      stack.push_back(seed);
    }
  }
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    for (int parent : parents(v)) {
      if (!visited[static_cast<size_t>(parent)]) {
        visited[static_cast<size_t>(parent)] = true;
        stack.push_back(parent);
      }
    }
  }
  std::vector<int> closure;
  for (int v = 0; v < num_nodes(); ++v) {
    if (visited[static_cast<size_t>(v)]) closure.push_back(v);
  }
  return closure;
}

std::vector<int> Dag::Sinks() const {
  std::vector<int> sinks;
  for (int v = 0; v < num_nodes(); ++v) {
    if (children(v).empty()) sinks.push_back(v);
  }
  return sinks;
}

std::vector<int> Dag::Roots() const {
  std::vector<int> roots;
  for (int v = 0; v < num_nodes(); ++v) {
    if (parents(v).empty()) roots.push_back(v);
  }
  return roots;
}

Dag Dag::InducedSubgraph(const std::vector<int>& keep) const {
  DSGM_CHECK(!keep.empty());
  DSGM_CHECK(std::is_sorted(keep.begin(), keep.end()));
  std::vector<int> new_id(static_cast<size_t>(num_nodes()), -1);
  for (size_t i = 0; i < keep.size(); ++i) {
    const int old = keep[i];
    DSGM_CHECK(old >= 0 && old < num_nodes());
    DSGM_CHECK_EQ(new_id[static_cast<size_t>(old)], -1) << "duplicate node in keep";
    new_id[static_cast<size_t>(old)] = static_cast<int>(i);
  }
  Dag result(static_cast<int>(keep.size()));
  for (int old_to : keep) {
    for (int old_from : parents(old_to)) {
      const int mapped_from = new_id[static_cast<size_t>(old_from)];
      if (mapped_from >= 0) {
        DSGM_CHECK(result.AddEdge(mapped_from, new_id[static_cast<size_t>(old_to)]).ok());
      }
    }
  }
  return result;
}

}  // namespace dsgm
