// Synthetic network generation and structural transformations.
//
// The bnlearn repository networks the paper evaluates on (ALARM, HEPAR II,
// LINK, MUNIN) are not redistributable/fetchable in this offline build, so
// the repository module (bayes/repository.h) generates stand-ins through
// GenerateNetwork that match each network's node count, edge count,
// domain-size range, and free-parameter count. See DESIGN.md section 3 for
// the substitution argument. This file also implements the two structural
// transformations of the paper's evaluation: domain inflation (NEW-ALARM)
// and iterative sink removal (the Fig. 9 scaling series).

#ifndef DSGM_BAYES_GENERATOR_H_
#define DSGM_BAYES_GENERATOR_H_

#include <cstdint>
#include <string>

#include "bayes/network.h"
#include "common/status.h"

namespace dsgm {

/// Declarative description of a synthetic network.
struct NetworkSpec {
  std::string name;
  int num_nodes = 0;
  int num_edges = 0;
  int min_cardinality = 2;
  int max_cardinality = 4;
  /// Desired total free parameters (sum of K_i * (J_i - 1)); 0 disables the
  /// repair loop and keeps the initially sampled cardinalities.
  int64_t target_params = 0;
  /// Accepted relative deviation from target_params.
  double param_tolerance = 0.05;
  /// In-degree cap (the paper's d).
  int max_parents = 4;
  /// Parents are drawn from the `edge_window` immediately preceding nodes in
  /// topological order; 0 means any earlier node. Local windows mimic the
  /// layered structure of the real diagnostic networks.
  int edge_window = 0;
  /// Dirichlet concentration for CPD rows; < 1 gives the skewed conditional
  /// distributions typical of the real networks.
  double dirichlet_alpha = 0.5;
  /// Probability floor for every CPD entry (lambda of Lemma 3).
  double min_prob = 0.02;
};

/// Generates a random network matching `spec`, deterministically in `seed`.
///
/// Construction: nodes 0..n-1 are created in topological order; n-1 "spine"
/// edges attach each node to a random earlier parent (requires
/// num_edges >= num_nodes - 1, which holds for all paper networks), the
/// remaining edges are placed uniformly subject to the in-degree cap; then
/// a greedy repair loop nudges cardinalities until the free-parameter count
/// is within `param_tolerance` of `target_params`.
///
/// Errors if the spec is infeasible (e.g. edge count too large for the cap,
/// or the parameter target unreachable within 20% with the given
/// cardinality range).
StatusOr<BayesianNetwork> GenerateNetwork(const NetworkSpec& spec, uint64_t seed);

/// Builds a Naive Bayes network: node 0 is the class variable with
/// `class_cardinality` values; nodes 1..num_features carry
/// `feature_cardinality` values and have the class as their only parent.
BayesianNetwork MakeNaiveBayes(int num_features, int class_cardinality,
                               int feature_cardinality, uint64_t seed,
                               double dirichlet_alpha = 0.5, double min_prob = 0.02);

/// NEW-ALARM transformation (Section VI-B): keeps the DAG, raises the
/// cardinality of `count` randomly chosen variables to `new_cardinality`,
/// and refills the CPDs whose shape changed.
BayesianNetwork InflateDomains(const BayesianNetwork& network, int count,
                               int new_cardinality, uint64_t seed,
                               double dirichlet_alpha = 0.5, double min_prob = 0.02);

/// Fig. 9 transformation: repeatedly removes the largest-id sink node until
/// `target_nodes` remain. Sinks have no children, so the CPDs of every
/// retained variable are preserved bit-for-bit. Requires
/// 1 <= target_nodes <= current size.
BayesianNetwork RemoveSinksToSize(const BayesianNetwork& network, int target_nodes);

}  // namespace dsgm

#endif  // DSGM_BAYES_GENERATOR_H_
