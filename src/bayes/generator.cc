#include "bayes/generator.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace dsgm {
namespace {

/// Free parameters implied by `cards` on `dag`: sum of K_i * (J_i - 1).
int64_t FreeParamsFor(const Dag& dag, const std::vector<int>& cards) {
  int64_t total = 0;
  for (int i = 0; i < dag.num_nodes(); ++i) {
    int64_t rows = 1;
    for (int parent : dag.parents(i)) rows *= cards[static_cast<size_t>(parent)];
    total += rows * (cards[static_cast<size_t>(i)] - 1);
  }
  return total;
}

/// Change in FreeParamsFor if cards[node] moves to new_card: affects the
/// node's own row width and the row counts of all its children.
int64_t ParamDelta(const Dag& dag, const std::vector<int>& cards, int node,
                   int new_card) {
  const int old_card = cards[static_cast<size_t>(node)];
  int64_t own_rows = 1;
  for (int parent : dag.parents(node)) own_rows *= cards[static_cast<size_t>(parent)];
  int64_t delta = own_rows * (new_card - old_card);
  for (int child : dag.children(node)) {
    int64_t child_rows_other = 1;
    for (int parent : dag.parents(child)) {
      if (parent != node) child_rows_other *= cards[static_cast<size_t>(parent)];
    }
    const int64_t child_cols = cards[static_cast<size_t>(child)] - 1;
    delta += child_rows_other * child_cols * (new_card - old_card);
  }
  return delta;
}

std::vector<CpdTable> BuildCpds(const Dag& dag, const std::vector<int>& cards,
                                double alpha, double min_prob, Rng& rng) {
  std::vector<CpdTable> cpds;
  cpds.reserve(static_cast<size_t>(dag.num_nodes()));
  for (int i = 0; i < dag.num_nodes(); ++i) {
    std::vector<int> parent_cards;
    parent_cards.reserve(dag.parents(i).size());
    for (int parent : dag.parents(i)) {
      parent_cards.push_back(cards[static_cast<size_t>(parent)]);
    }
    CpdTable cpd(cards[static_cast<size_t>(i)], std::move(parent_cards));
    cpd.FillRandom(rng, alpha, min_prob);
    cpds.push_back(std::move(cpd));
  }
  return cpds;
}

std::vector<Variable> BuildVariables(const std::string& prefix,
                                     const std::vector<int>& cards) {
  std::vector<Variable> variables;
  variables.reserve(cards.size());
  for (size_t i = 0; i < cards.size(); ++i) {
    variables.push_back(Variable{prefix + std::to_string(i), cards[i]});
  }
  return variables;
}

}  // namespace

StatusOr<BayesianNetwork> GenerateNetwork(const NetworkSpec& spec, uint64_t seed) {
  const int n = spec.num_nodes;
  if (n < 2) return InvalidArgumentError("spec needs at least two nodes");
  if (spec.num_edges < n - 1) {
    return InvalidArgumentError("spec needs at least num_nodes-1 edges for the spine");
  }
  if (spec.min_cardinality < 2 || spec.max_cardinality < spec.min_cardinality) {
    return InvalidArgumentError("invalid cardinality range");
  }
  const int64_t max_possible_edges =
      std::min<int64_t>(static_cast<int64_t>(n) * spec.max_parents,
                        static_cast<int64_t>(n) * (n - 1) / 2);
  if (spec.num_edges > max_possible_edges) {
    return InvalidArgumentError("edge count exceeds in-degree cap capacity");
  }

  Rng rng(seed);

  // --- Edges: spine first (every non-root gets one parent), then extras.
  Dag dag(n);
  const int window = spec.edge_window > 0 ? spec.edge_window : n;
  auto pick_parent = [&](int child) {
    const int lo = std::max(0, child - window);
    return static_cast<int>(rng.NextInt(lo, child - 1));
  };
  for (int child = 1; child < n; ++child) {
    DSGM_CHECK(dag.AddEdge(pick_parent(child), child).ok());
  }
  int placed = n - 1;
  int64_t attempts = 0;
  const int64_t max_attempts = static_cast<int64_t>(spec.num_edges) * 1000 + 100000;
  while (placed < spec.num_edges) {
    if (++attempts > max_attempts) {
      return InternalError("could not place all edges under the in-degree cap");
    }
    const int child = static_cast<int>(rng.NextInt(1, n - 1));
    if (static_cast<int>(dag.parents(child).size()) >= spec.max_parents) continue;
    const int parent = pick_parent(child);
    if (dag.HasEdge(parent, child)) continue;
    DSGM_CHECK(dag.AddEdge(parent, child).ok());
    ++placed;
  }

  // --- Cardinalities: random start, then greedy repair toward the target.
  std::vector<int> cards(static_cast<size_t>(n));
  for (int& card : cards) {
    card = static_cast<int>(rng.NextInt(spec.min_cardinality, spec.max_cardinality));
  }
  if (spec.target_params > 0) {
    int64_t current = FreeParamsFor(dag, cards);
    const int64_t tolerance = static_cast<int64_t>(
        std::llround(spec.param_tolerance * static_cast<double>(spec.target_params)));
    const int max_iters = 200 * n + 20000;
    for (int iter = 0; iter < max_iters; ++iter) {
      const int64_t error = current - spec.target_params;
      if (std::llabs(error) <= tolerance) break;
      const int direction = error > 0 ? -1 : +1;
      // Greedy among a random candidate pool: apply the move that brings the
      // total closest to the target without overshooting wildly.
      int best_node = -1;
      int64_t best_result = std::numeric_limits<int64_t>::max();
      for (int c = 0; c < 12; ++c) {
        const int node = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(n)));
        const int new_card = cards[static_cast<size_t>(node)] + direction;
        if (new_card < spec.min_cardinality || new_card > spec.max_cardinality) {
          continue;
        }
        const int64_t next =
            current + ParamDelta(dag, cards, node, new_card);
        if (std::llabs(next - spec.target_params) < std::llabs(best_result - spec.target_params)) {
          best_result = next;
          best_node = node;
        }
      }
      if (best_node < 0) continue;  // Pool had no movable card; resample.
      // Only take moves that reduce the distance to the target.
      if (std::llabs(best_result - spec.target_params) >= std::llabs(error)) continue;
      cards[static_cast<size_t>(best_node)] += direction;
      current = best_result;
    }
    current = FreeParamsFor(dag, cards);
    const double relative_miss =
        std::abs(static_cast<double>(current - spec.target_params)) /
        static_cast<double>(spec.target_params);
    if (relative_miss > 0.20) {
      return InternalError("parameter target unreachable: wanted " +
                           std::to_string(spec.target_params) + ", best " +
                           std::to_string(current));
    }
  }

  std::vector<CpdTable> cpds =
      BuildCpds(dag, cards, spec.dirichlet_alpha, spec.min_prob, rng);
  return BayesianNetwork::Create(spec.name, BuildVariables("X", cards),
                                 std::move(dag), std::move(cpds));
}

BayesianNetwork MakeNaiveBayes(int num_features, int class_cardinality,
                               int feature_cardinality, uint64_t seed,
                               double dirichlet_alpha, double min_prob) {
  DSGM_CHECK_GE(num_features, 1);
  const int n = num_features + 1;
  Dag dag(n);
  for (int i = 1; i < n; ++i) DSGM_CHECK(dag.AddEdge(0, i).ok());
  std::vector<int> cards(static_cast<size_t>(n), feature_cardinality);
  cards[0] = class_cardinality;
  Rng rng(seed);
  std::vector<CpdTable> cpds = BuildCpds(dag, cards, dirichlet_alpha, min_prob, rng);
  std::vector<Variable> variables = BuildVariables("F", cards);
  variables[0].name = "Class";
  StatusOr<BayesianNetwork> net = BayesianNetwork::Create(
      "naive_bayes", std::move(variables), std::move(dag), std::move(cpds));
  DSGM_CHECK(net.ok()) << net.status();
  return std::move(net).value();
}

BayesianNetwork InflateDomains(const BayesianNetwork& network, int count,
                               int new_cardinality, uint64_t seed,
                               double dirichlet_alpha, double min_prob) {
  const int n = network.num_variables();
  DSGM_CHECK(count >= 0 && count <= n);
  DSGM_CHECK_GE(new_cardinality, 2);
  Rng rng(seed);

  // Choose `count` distinct variables via partial Fisher-Yates.
  std::vector<int> ids(static_cast<size_t>(n));
  std::iota(ids.begin(), ids.end(), 0);
  for (int i = 0; i < count; ++i) {
    const int j = static_cast<int>(rng.NextInt(i, n - 1));
    std::swap(ids[static_cast<size_t>(i)], ids[static_cast<size_t>(j)]);
  }

  std::vector<int> cards(static_cast<size_t>(n));
  std::vector<Variable> variables;
  variables.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    variables.push_back(network.variable(i));
    cards[static_cast<size_t>(i)] = network.cardinality(i);
  }
  std::vector<bool> inflated(static_cast<size_t>(n), false);
  for (int i = 0; i < count; ++i) {
    const int node = ids[static_cast<size_t>(i)];
    inflated[static_cast<size_t>(node)] = true;
    cards[static_cast<size_t>(node)] = new_cardinality;
    variables[static_cast<size_t>(node)].cardinality = new_cardinality;
  }

  // Rebuild copies of the DAG and CPDs; shapes change for inflated variables
  // and for the children of inflated variables.
  Dag dag(n);
  for (int child = 0; child < n; ++child) {
    for (int parent : network.dag().parents(child)) {
      DSGM_CHECK(dag.AddEdge(parent, child).ok());
    }
  }
  std::vector<CpdTable> cpds;
  cpds.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    bool shape_changed = inflated[static_cast<size_t>(i)];
    for (int parent : dag.parents(i)) {
      shape_changed = shape_changed || inflated[static_cast<size_t>(parent)];
    }
    if (!shape_changed) {
      cpds.push_back(network.cpd(i));
      continue;
    }
    std::vector<int> parent_cards;
    for (int parent : dag.parents(i)) {
      parent_cards.push_back(cards[static_cast<size_t>(parent)]);
    }
    CpdTable cpd(cards[static_cast<size_t>(i)], std::move(parent_cards));
    cpd.FillRandom(rng, dirichlet_alpha, min_prob);
    cpds.push_back(std::move(cpd));
  }

  StatusOr<BayesianNetwork> result =
      BayesianNetwork::Create(network.name() + "-inflated", std::move(variables),
                              std::move(dag), std::move(cpds));
  DSGM_CHECK(result.ok()) << result.status();
  return std::move(result).value();
}

BayesianNetwork RemoveSinksToSize(const BayesianNetwork& network, int target_nodes) {
  DSGM_CHECK(target_nodes >= 1 && target_nodes <= network.num_variables());

  // Peel sinks (largest id first) on a mutable child-count view.
  const Dag& dag = network.dag();
  const int n = network.num_variables();
  std::vector<int> live_children(static_cast<size_t>(n));
  std::vector<bool> removed(static_cast<size_t>(n), false);
  for (int i = 0; i < n; ++i) {
    live_children[static_cast<size_t>(i)] = static_cast<int>(dag.children(i).size());
  }
  int remaining = n;
  while (remaining > target_nodes) {
    int victim = -1;
    for (int i = n - 1; i >= 0; --i) {
      if (!removed[static_cast<size_t>(i)] && live_children[static_cast<size_t>(i)] == 0) {
        victim = i;
        break;
      }
    }
    DSGM_CHECK_GE(victim, 0) << "no sink found; DAG invariant violated";
    removed[static_cast<size_t>(victim)] = true;
    for (int parent : dag.parents(victim)) {
      if (!removed[static_cast<size_t>(parent)]) {
        --live_children[static_cast<size_t>(parent)];
      }
    }
    --remaining;
  }

  std::vector<int> keep;
  keep.reserve(static_cast<size_t>(target_nodes));
  for (int i = 0; i < n; ++i) {
    if (!removed[static_cast<size_t>(i)]) keep.push_back(i);
  }

  // Sinks have no children, so every retained variable keeps its parents and
  // its exact CPD.
  Dag sub = dag.InducedSubgraph(keep);
  std::vector<Variable> variables;
  std::vector<CpdTable> cpds;
  variables.reserve(keep.size());
  cpds.reserve(keep.size());
  for (int old_id : keep) {
    variables.push_back(network.variable(old_id));
    cpds.push_back(network.cpd(old_id));
  }
  StatusOr<BayesianNetwork> result = BayesianNetwork::Create(
      network.name() + "-" + std::to_string(target_nodes), std::move(variables),
      std::move(sub), std::move(cpds));
  DSGM_CHECK(result.ok()) << result.status();
  return std::move(result).value();
}

}  // namespace dsgm
