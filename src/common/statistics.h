// Streaming and batch summary statistics used by tests and benchmarks.

#ifndef DSGM_COMMON_STATISTICS_H_
#define DSGM_COMMON_STATISTICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dsgm {

/// Welford-style accumulator for mean and variance of a stream of doubles.
class OnlineStats {
 public:
  void Add(double value);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance (0 when fewer than two observations).
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Five-number boxplot summary (10th/25th/50th/75th/90th percentiles) plus
/// mean; the terminal-friendly rendering of the paper's boxplot figures.
struct BoxplotSummary {
  double p10 = 0.0;
  double p25 = 0.0;
  double p50 = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;
  double mean = 0.0;
  int64_t count = 0;
};

/// Collects samples and answers quantile queries. Stores all samples;
/// experiment sample counts here are at most a few hundred thousand.
class SampleSet {
 public:
  void Add(double value) {
    values_.push_back(value);
    sorted_ = false;
  }
  void Reserve(size_t n) { values_.reserve(n); }

  int64_t count() const { return static_cast<int64_t>(values_.size()); }
  double Mean() const;

  /// Quantile in [0,1] with linear interpolation; 0 when empty.
  double Quantile(double q) const;

  BoxplotSummary Boxplot() const;

 private:
  // Sorted lazily by Quantile(); mutable cache keeps Add cheap.
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

}  // namespace dsgm

#endif  // DSGM_COMMON_STATISTICS_H_
