// Clang thread-safety-analysis attribute macros.
//
// These wrap the attributes documented at
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html in DSGM_-prefixed
// macros that expand to nothing on compilers without the attributes (GCC
// builds them as plain comments). The build turns the analysis into a hard
// error under clang (-Werror=thread-safety), so an annotation here is a
// compile-time contract, not documentation:
//
//   - DSGM_GUARDED_BY(mu): field may only be touched while `mu` is held.
//   - DSGM_REQUIRES(mu): function may only be called with `mu` held.
//   - DSGM_ACQUIRE/DSGM_RELEASE: function takes/drops the capability.
//   - DSGM_EXCLUDES(mu): caller must NOT hold `mu` (the function takes it).
//   - DSGM_CAPABILITY / DSGM_SCOPED_CAPABILITY: mark lock-like classes.
//
// The analysis is intraprocedural over annotated capabilities only. It can
// NOT see through std::function boundaries (posted closures re-assert their
// capability dynamically — see ThreadRole in common/mutex.h), and it cannot
// express lock-free protocols (SPSC rings, atomics); those keep dynamic
// asserts and TSan as their rail.

#ifndef DSGM_COMMON_THREAD_ANNOTATIONS_H_
#define DSGM_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define DSGM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DSGM_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define DSGM_CAPABILITY(x) DSGM_THREAD_ANNOTATION(capability(x))

#define DSGM_SCOPED_CAPABILITY DSGM_THREAD_ANNOTATION(scoped_lockable)

#define DSGM_GUARDED_BY(x) DSGM_THREAD_ANNOTATION(guarded_by(x))

#define DSGM_PT_GUARDED_BY(x) DSGM_THREAD_ANNOTATION(pt_guarded_by(x))

#define DSGM_REQUIRES(...) \
  DSGM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define DSGM_REQUIRES_SHARED(...) \
  DSGM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define DSGM_ACQUIRE(...) \
  DSGM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define DSGM_RELEASE(...) \
  DSGM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define DSGM_TRY_ACQUIRE(...) \
  DSGM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define DSGM_EXCLUDES(...) DSGM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define DSGM_ASSERT_CAPABILITY(x) \
  DSGM_THREAD_ANNOTATION(assert_capability(x))

#define DSGM_RETURN_CAPABILITY(x) DSGM_THREAD_ANNOTATION(lock_returned(x))

#define DSGM_NO_THREAD_SAFETY_ANALYSIS \
  DSGM_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // DSGM_COMMON_THREAD_ANNOTATIONS_H_
