#include "common/flags.h"

#include <cstdlib>
#include <sstream>

#include "common/check.h"

namespace dsgm {
namespace {

bool ParseBoolText(const std::string& text, bool* out) {
  if (text == "true" || text == "1" || text == "yes" || text == "on") {
    *out = true;
    return true;
  }
  if (text == "false" || text == "0" || text == "no" || text == "off") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

void Flags::DefineInt64(const std::string& name, int64_t default_value,
                        const std::string& help) {
  entries_[name] = Entry{Type::kInt64, std::to_string(default_value),
                         std::to_string(default_value), help};
}

void Flags::DefineDouble(const std::string& name, double default_value,
                         const std::string& help) {
  std::ostringstream os;
  os << default_value;
  entries_[name] = Entry{Type::kDouble, os.str(), os.str(), help};
}

void Flags::DefineBool(const std::string& name, bool default_value,
                       const std::string& help) {
  const char* text = default_value ? "true" : "false";
  entries_[name] = Entry{Type::kBool, text, text, help};
}

void Flags::DefineString(const std::string& name, const std::string& default_value,
                         const std::string& help) {
  entries_[name] = Entry{Type::kString, default_value, default_value, help};
}

Status Flags::SetValue(const std::string& name, const std::string& text) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return InvalidArgumentError("unknown flag --" + name);
  }
  Entry& entry = it->second;
  switch (entry.type) {
    case Type::kInt64: {
      char* end = nullptr;
      (void)std::strtoll(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0') {
        return InvalidArgumentError("flag --" + name + " expects an integer, got '" +
                                    text + "'");
      }
      break;
    }
    case Type::kDouble: {
      char* end = nullptr;
      (void)std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0') {
        return InvalidArgumentError("flag --" + name + " expects a number, got '" +
                                    text + "'");
      }
      break;
    }
    case Type::kBool: {
      bool parsed = false;
      if (!ParseBoolText(text, &parsed)) {
        return InvalidArgumentError("flag --" + name + " expects a boolean, got '" +
                                    text + "'");
      }
      break;
    }
    case Type::kString:
      break;
  }
  entry.value = text;
  return Status::Ok();
}

Status Flags::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::ostringstream os;
      os << Usage(argv[0]);
      // NotFound doubles as the "printed help, stop" signal.
      return NotFoundError(os.str());
    }
    if (arg.rfind("--", 0) != 0) {
      return InvalidArgumentError("unexpected positional argument '" + arg + "'");
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      DSGM_RETURN_IF_ERROR(SetValue(arg.substr(0, eq), arg.substr(eq + 1)));
      continue;
    }
    auto it = entries_.find(arg);
    if (it == entries_.end()) {
      return InvalidArgumentError("unknown flag --" + arg);
    }
    if (it->second.type == Type::kBool) {
      // `--flag` alone means true; `--flag value` also accepted below.
      const bool has_value_next =
          i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0;
      bool parsed = false;
      if (has_value_next && ParseBoolText(argv[i + 1], &parsed)) {
        DSGM_RETURN_IF_ERROR(SetValue(arg, argv[++i]));
      } else {
        DSGM_RETURN_IF_ERROR(SetValue(arg, "true"));
      }
      continue;
    }
    if (i + 1 >= argc) {
      return InvalidArgumentError("flag --" + arg + " is missing a value");
    }
    DSGM_RETURN_IF_ERROR(SetValue(arg, argv[++i]));
  }
  return Status::Ok();
}

int64_t Flags::GetInt64(const std::string& name) const {
  auto it = entries_.find(name);
  DSGM_CHECK(it != entries_.end()) << "flag --" << name << "not defined";
  DSGM_CHECK(it->second.type == Type::kInt64);
  return std::strtoll(it->second.value.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name) const {
  auto it = entries_.find(name);
  DSGM_CHECK(it != entries_.end()) << "flag --" << name << "not defined";
  DSGM_CHECK(it->second.type == Type::kDouble);
  return std::strtod(it->second.value.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name) const {
  auto it = entries_.find(name);
  DSGM_CHECK(it != entries_.end()) << "flag --" << name << "not defined";
  DSGM_CHECK(it->second.type == Type::kBool);
  bool value = false;
  DSGM_CHECK(ParseBoolText(it->second.value, &value));
  return value;
}

const std::string& Flags::GetString(const std::string& name) const {
  auto it = entries_.find(name);
  DSGM_CHECK(it != entries_.end()) << "flag --" << name << "not defined";
  DSGM_CHECK(it->second.type == Type::kString);
  return it->second.value;
}

std::string Flags::Usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, entry] : entries_) {
    os << "  --" << name << " (default: " << entry.fallback << ")  " << entry.help
       << "\n";
  }
  return os.str();
}

}  // namespace dsgm
