#include "common/table.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace dsgm {

std::string FormatDouble(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*g", digits, value);
  return buffer;
}

std::string FormatScientific(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*e", digits, value);
  return buffer;
}

std::string FormatCount(int64_t value) {
  std::string digits = std::to_string(value);
  std::string result;
  const size_t start = (digits[0] == '-') ? 1 : 0;
  const size_t length = digits.size() - start;
  result.reserve(digits.size() + length / 3);
  if (start == 1) result.push_back('-');
  for (size_t i = 0; i < length; ++i) {
    if (i > 0 && (length - i) % 3 == 0) result.push_back(',');
    result.push_back(digits[start + i]);
  }
  return result;
}

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  if (!header_.empty()) {
    DSGM_CHECK_EQ(row.size(), header_.size()) << "row width differs from header";
  }
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  if (!header_.empty()) widen(header_);
  for (const auto& row : rows_) widen(row);

  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << (i == 0 ? "" : "  ");
      os << row[i];
      // Pad right to the column width (skip trailing padding).
      if (i + 1 < row.size()) {
        os << std::string(widths[i] - row[i].size(), ' ');
      }
    }
    os << "\n";
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  if (!header_.empty()) {
    print_row(header_);
    size_t total = 0;
    for (size_t i = 0; i < widths.size(); ++i) total += widths[i] + (i ? 2 : 0);
    os << std::string(total, '-') << "\n";
  }
  for (const auto& row : rows_) print_row(row);
}

}  // namespace dsgm
