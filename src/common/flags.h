// Minimal command-line flag parsing for benchmark and example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name`. Unknown
// flags are an error so typos in experiment sweeps fail loudly instead of
// silently running the default configuration.

#ifndef DSGM_COMMON_FLAGS_H_
#define DSGM_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace dsgm {

/// Declarative flag set: define flags with defaults, then Parse(argc, argv).
class Flags {
 public:
  /// Registers a flag with its default value and one-line help text.
  void DefineInt64(const std::string& name, int64_t default_value, const std::string& help);
  void DefineDouble(const std::string& name, double default_value, const std::string& help);
  void DefineBool(const std::string& name, bool default_value, const std::string& help);
  void DefineString(const std::string& name, const std::string& default_value,
                    const std::string& help);

  /// Parses argv. Returns an error for unknown flags or malformed values.
  /// `--help` prints usage and returns a NotFound status the caller should
  /// treat as "exit 0".
  Status Parse(int argc, char** argv);

  int64_t GetInt64(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;

  /// Renders registered flags with defaults and help strings.
  std::string Usage(const std::string& program) const;

 private:
  enum class Type { kInt64, kDouble, kBool, kString };
  struct Entry {
    Type type;
    std::string value;   // Current value, textual.
    std::string fallback;  // Default, textual (for usage output).
    std::string help;
  };

  Status SetValue(const std::string& name, const std::string& text);

  std::map<std::string, Entry> entries_;
};

}  // namespace dsgm

#endif  // DSGM_COMMON_FLAGS_H_
