// Wall-clock timing for the cluster experiments (Figs. 7-8).

#ifndef DSGM_COMMON_TIMER_H_
#define DSGM_COMMON_TIMER_H_

#include <chrono>

namespace dsgm {

/// Monotonic wall-clock stopwatch, started at construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dsgm

#endif  // DSGM_COMMON_TIMER_H_
