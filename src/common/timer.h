// Monotonic time for the cluster experiments (Figs. 7-8) and the metrics
// layer: NowNanos() is the one clock everything reads — stopwatches,
// instrument timestamps, trace-ring events, heartbeat ages.

#ifndef DSGM_COMMON_TIMER_H_
#define DSGM_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace dsgm {

/// Monotonic nanoseconds (steady_clock). Comparable only within a process;
/// use for durations and ages, never wall-clock timestamps.
inline int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Monotonic wall-clock stopwatch, started at construction.
class WallTimer {
 public:
  WallTimer() : start_nanos_(NowNanos()) {}

  void Restart() { start_nanos_ = NowNanos(); }

  double ElapsedSeconds() const {
    return static_cast<double>(NowNanos() - start_nanos_) * 1e-9;
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  int64_t start_nanos_;
};

}  // namespace dsgm

#endif  // DSGM_COMMON_TIMER_H_
