#include "common/tracing.h"

#include <algorithm>
#include <cstdio>

namespace dsgm {
namespace {

// Same defensive escaping as the metrics dump (common/metrics.cc); the
// strings here are enum names and failure reasons, but a Status message can
// carry arbitrary bytes.
void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  *out += buf;
}

// EWMA weight of one new skew sample. 1/8 matches the classic NTP loop
// filter: heavy enough to track drift at the heartbeat cadence, light
// enough that one queueing-delayed sample cannot yank the offset.
constexpr double kSkewAlpha = 0.125;

}  // namespace

void ClockSkewEstimator::AddSample(int64_t t1, int64_t t2, int64_t t3,
                                   int64_t t4) {
  // Differences of nearby clock readings are small; keep the subtraction in
  // integers so 1e14-scale absolute timestamps never meet a double mantissa.
  double offset;
  const bool two_way = t1 != 0 && t2 != 0;
  if (two_way) {
    const int64_t forward = t2 - t1;   // echo leg, includes +offset
    const int64_t backward = t3 - t4;  // heartbeat leg, includes +offset
    offset = (static_cast<double>(forward) + static_cast<double>(backward)) / 2;
    const int64_t rtt = (t4 - t1) - (t3 - t2);
    if (rtt >= 0) {
      rtt_nanos_ = two_way_samples_ == 0
                       ? static_cast<double>(rtt)
                       : rtt_nanos_ + kSkewAlpha * (rtt - rtt_nanos_);
    }
    ++two_way_samples_;
  } else {
    // No echo reflected yet: the one-way estimate is offset + delay, an
    // upper bound. Good enough to seed the filter.
    offset = static_cast<double>(t3 - t4);
  }
  offset_nanos_ = samples_ == 0 ? offset
                                : offset_nanos_ + kSkewAlpha * (offset - offset_nanos_);
  ++samples_;
}

ClusterTraceBoard::ClusterTraceBoard(int num_sites)
    : num_sites_(num_sites < 0 ? 0 : num_sites),
      sites_(new SiteLog[static_cast<size_t>(num_sites_)]) {}

bool ClusterTraceBoard::Ingest(int site, uint64_t first_seq,
                               const std::vector<TraceEvent>& events) {
  if (!InRange(site)) return false;
  MutexLock lock(&mu_);
  SiteLog& log = sites_[site];
  ++log.chunks;
  size_t skip = 0;
  if (first_seq > log.next_seq) {
    log.lost += first_seq - log.next_seq;
  } else if (first_seq < log.next_seq) {
    // Reconnect replay: positions below next_seq were already folded in.
    skip = static_cast<size_t>(
        std::min<uint64_t>(log.next_seq - first_seq, events.size()));
  }
  log.ingested += events.size() - skip;
  log.events.insert(log.events.end(), events.begin() + static_cast<std::ptrdiff_t>(skip),
                    events.end());
  const uint64_t end_seq = first_seq + events.size();
  if (end_seq > log.next_seq) log.next_seq = end_seq;
  if (log.events.size() > kMaxEventsPerSite) {
    log.events.erase(log.events.begin(),
                     log.events.begin() + static_cast<std::ptrdiff_t>(
                                              log.events.size() - kMaxEventsPerSite));
  }
  return true;
}

void ClusterTraceBoard::AddSkewSample(int site, int64_t t1, int64_t t2,
                                      int64_t t3, int64_t t4) {
  if (!InRange(site)) return;
  MutexLock lock(&mu_);
  sites_[site].skew.AddSample(t1, t2, t3, t4);
}

std::vector<int64_t> ClusterTraceBoard::OffsetsNanos() const {
  std::vector<int64_t> offsets(static_cast<size_t>(num_sites_), 0);
  MutexLock lock(&mu_);
  for (int s = 0; s < num_sites_; ++s) {
    offsets[static_cast<size_t>(s)] = sites_[s].skew.offset_nanos();
  }
  return offsets;
}

uint64_t ClusterTraceBoard::EventsIngested(int site) const {
  if (!InRange(site)) return 0;
  MutexLock lock(&mu_);
  return sites_[site].ingested;
}

uint64_t ClusterTraceBoard::EventsLost(int site) const {
  if (!InRange(site)) return 0;
  MutexLock lock(&mu_);
  return sites_[site].lost;
}

uint64_t ClusterTraceBoard::ChunksIngested(int site) const {
  if (!InRange(site)) return 0;
  MutexLock lock(&mu_);
  return sites_[site].chunks;
}

std::vector<ClusterTraceEvent> ClusterTraceBoard::MergedClusterTimeline()
    const {
  std::vector<ClusterTraceEvent> timeline;
  for (const TraceEvent& event : MergedTraceTimeline()) {
    timeline.push_back(ClusterTraceEvent{event, -1});
  }
  {
    MutexLock lock(&mu_);
    for (int s = 0; s < num_sites_; ++s) {
      const SiteLog& log = sites_[s];
      const int64_t offset = log.skew.offset_nanos();
      for (TraceEvent event : log.events) {
        event.t_nanos -= offset;  // site clock -> coordinator clock
        timeline.push_back(ClusterTraceEvent{event, s});
      }
    }
  }
  std::stable_sort(timeline.begin(), timeline.end(),
                   [](const ClusterTraceEvent& a, const ClusterTraceEvent& b) {
                     return a.event.t_nanos < b.event.t_nanos;
                   });
  return timeline;
}

std::string TimelineToChromeJson(const std::vector<ClusterTraceEvent>& timeline,
                                 const std::vector<int64_t>& offsets_nanos) {
  std::string out;
  out.reserve(256 + timeline.size() * 96);
  out += "{\"traceEvents\":[";
  bool first = true;
  // Process-name metadata rows for every origin present, coordinator first.
  std::vector<int32_t> origins;
  for (const ClusterTraceEvent& e : timeline) {
    if (std::find(origins.begin(), origins.end(), e.origin) == origins.end()) {
      origins.push_back(e.origin);
    }
  }
  std::sort(origins.begin(), origins.end());
  for (int32_t origin : origins) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":";
    out += std::to_string(origin + 1);
    out += ",\"args\":{\"name\":";
    AppendJsonString(&out, origin < 0 ? std::string("coordinator")
                                      : "site " + std::to_string(origin));
    out += "}}";
  }
  for (const ClusterTraceEvent& e : timeline) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"ph\":\"i\",\"s\":\"g\",\"name\":";
    AppendJsonString(&out, TraceEventTypeName(e.event.type));
    out += ",\"pid\":";
    out += std::to_string(e.origin + 1);
    out += ",\"tid\":";
    out += std::to_string(e.event.site + 1);
    out += ",\"ts\":";
    AppendDouble(&out, static_cast<double>(e.event.t_nanos) * 1e-3);
    out += ",\"args\":{\"site\":";
    out += std::to_string(e.event.site);
    out += ",\"arg\":";
    out += std::to_string(e.event.arg);
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock_offsets_nanos\":{";
  for (size_t s = 0; s < offsets_nanos.size(); ++s) {
    if (s > 0) out.push_back(',');
    AppendJsonString(&out, std::to_string(s));
    out.push_back(':');
    out += std::to_string(offsets_nanos[s]);
  }
  out += "}}}";
  return out;
}

std::string FlightRecordToJson(const FlightRecord& record) {
  std::string out;
  out.reserve(2048);
  out += "{\"failure_reason\":";
  AppendJsonString(&out, record.failure_reason);
  out += ",\"captured_ms\":";
  AppendDouble(&out, static_cast<double>(record.metrics.captured_nanos) * 1e-6);
  // The full metrics dump line (counters, gauges, histograms, health table)
  // is already a JSON object — embed it verbatim.
  out += ",\"metrics\":";
  out += MetricsSnapshotToJsonLine(record.metrics);
  out += ",\"clock_offsets_nanos\":[";
  for (size_t s = 0; s < record.offsets_nanos.size(); ++s) {
    if (s > 0) out.push_back(',');
    out += std::to_string(record.offsets_nanos[s]);
  }
  out += "],\"trace_events_lost\":";
  out += std::to_string(record.trace_events_lost);
  out += ",\"timeline\":[";
  for (size_t i = 0; i < record.timeline.size(); ++i) {
    if (i > 0) out.push_back(',');
    const ClusterTraceEvent& e = record.timeline[i];
    out += "{\"t_ms\":";
    AppendDouble(&out, static_cast<double>(e.event.t_nanos) * 1e-6);
    out += ",\"type\":";
    AppendJsonString(&out, TraceEventTypeName(e.event.type));
    out += ",\"site\":";
    out += std::to_string(e.event.site);
    out += ",\"arg\":";
    out += std::to_string(e.event.arg);
    out += ",\"origin\":";
    out += std::to_string(e.origin);
    out.push_back('}');
  }
  out += "]}";
  return out;
}

// --- AlertEngine -----------------------------------------------------------

const char* AlertRuleName(AlertRule rule) {
  switch (rule) {
    case AlertRule::kHeartbeatStale:
      return "heartbeat_stale";
    case AlertRule::kSyncRateCollapse:
      return "sync_collapse";
    case AlertRule::kEventRateOutlier:
      return "event_rate_outlier";
  }
  return "unknown";
}

AlertEngine::AlertEngine(AlertConfig config)
    : config_(config),
      alerts_total_(MetricsRegistry::Global().GetCounter("obs.alerts.total")),
      alerts_by_rule_{
          MetricsRegistry::Global().GetCounter("obs.alerts.heartbeat_stale"),
          MetricsRegistry::Global().GetCounter("obs.alerts.sync_collapse"),
          MetricsRegistry::Global().GetCounter(
              "obs.alerts.event_rate_outlier")} {}

void AlertEngine::Fire(int site, AlertRule rule, double value,
                       double threshold, std::vector<Alert>* out) {
  out->push_back(Alert{site, rule, value, threshold});
  ++alerts_fired_;
  alerts_total_->Increment();
  alerts_by_rule_[static_cast<size_t>(rule) - 1]->Increment();
  Trace(TraceEventType::kAlert, site, static_cast<int64_t>(rule));
}

std::vector<Alert> AlertEngine::Evaluate(const std::vector<SiteHealth>& sites,
                                         int64_t now_nanos) {
  std::vector<Alert> fired;
  size_t max_site = states_.size();
  for (const SiteHealth& s : sites) {
    if (s.site >= 0 && static_cast<size_t>(s.site) + 1 > max_site) {
      max_site = static_cast<size_t>(s.site) + 1;
    }
  }
  states_.resize(max_site);

  // Pass 1: per-site rates this tick (needed cluster-wide for the median).
  struct Rates {
    bool valid = false;
    double events_per_sec = 0.0;
    double syncs_per_sec = 0.0;
  };
  std::vector<Rates> rates(sites.size());
  std::vector<double> alive_event_rates;
  for (size_t i = 0; i < sites.size(); ++i) {
    const SiteHealth& s = sites[i];
    if (s.site < 0) continue;
    SiteState& state = states_[static_cast<size_t>(s.site)];
    const double dt_sec =
        static_cast<double>(now_nanos - state.prev_nanos) * 1e-9;
    if (state.ticks > 0 && dt_sec > 0) {
      rates[i].valid = true;
      rates[i].events_per_sec =
          static_cast<double>(s.events_processed - state.prev_events) / dt_sec;
      rates[i].syncs_per_sec =
          static_cast<double>(s.syncs_sent - state.prev_syncs) / dt_sec;
      if (s.alive) alive_event_rates.push_back(rates[i].events_per_sec);
    }
  }
  double median_event_rate = 0.0;
  if (!alive_event_rates.empty()) {
    const size_t mid = alive_event_rates.size() / 2;
    std::nth_element(alive_event_rates.begin(), alive_event_rates.begin() + mid,
                     alive_event_rates.end());
    median_event_rate = alive_event_rates[mid];
  }

  // Pass 2: evaluate the rules, edge-triggered, then roll the state forward.
  for (size_t i = 0; i < sites.size(); ++i) {
    const SiteHealth& s = sites[i];
    if (s.site < 0) continue;
    SiteState& state = states_[static_cast<size_t>(s.site)];

    const double stale_threshold_ms =
        config_.stale_multiplier * config_.heartbeat_interval_ms;
    const bool stale =
        s.alive && s.heartbeat_age_ms > stale_threshold_ms;
    if (stale && !state.latched[0]) {
      Fire(s.site, AlertRule::kHeartbeatStale, s.heartbeat_age_ms,
           stale_threshold_ms, &fired);
    }
    state.latched[0] = stale;

    bool collapse = false;
    bool outlier = false;
    if (rates[i].valid && s.alive) {
      if (state.ticks >= config_.warmup_ticks &&
          state.sync_rate_ewma >= config_.min_rate_per_sec) {
        const double floor = config_.collapse_fraction * state.sync_rate_ewma;
        collapse = rates[i].syncs_per_sec < floor;
        if (collapse && !state.latched[1]) {
          Fire(s.site, AlertRule::kSyncRateCollapse, rates[i].syncs_per_sec,
               floor, &fired);
        }
      }
      if (state.ticks >= config_.warmup_ticks &&
          median_event_rate >= config_.min_rate_per_sec) {
        const double floor = config_.outlier_fraction * median_event_rate;
        outlier = rates[i].events_per_sec < floor;
        if (outlier && !state.latched[2]) {
          Fire(s.site, AlertRule::kEventRateOutlier, rates[i].events_per_sec,
               floor, &fired);
        }
      }
      // Trailing mean over this site's own history. Heavier weight than the
      // skew filter — sync rates move with the round schedule, and the rule
      // compares against recent behavior, not the run's lifetime average.
      state.sync_rate_ewma =
          state.ticks == 1 ? rates[i].syncs_per_sec
                           : state.sync_rate_ewma +
                                 0.3 * (rates[i].syncs_per_sec -
                                        state.sync_rate_ewma);
    }
    state.latched[1] = collapse;
    state.latched[2] = outlier;

    state.prev_nanos = now_nanos;
    state.prev_events = s.events_processed;
    state.prev_syncs = s.syncs_sent;
    ++state.ticks;
  }
  return fired;
}

}  // namespace dsgm
