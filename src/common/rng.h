// Fast, reproducible random number generation.
//
// The distributed-counter hot path draws one Bernoulli variate per counter
// increment (hundreds of millions per experiment), so we use xoshiro256++
// (Blackman & Vigna, public domain) rather than std::mt19937_64. All
// experiment entry points take an explicit 64-bit seed; derived streams are
// split off deterministically with SplitMix64 so that sites, counters, and
// samplers do not share state.

#ifndef DSGM_COMMON_RNG_H_
#define DSGM_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace dsgm {

/// SplitMix64 step: the standard 64-bit mixer used to seed other generators
/// and to derive independent substreams from one master seed.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ pseudo-random generator. Satisfies the essentials of
/// UniformRandomBitGenerator so it can also drive <random> distributions.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four state words through SplitMix64, per the reference
  /// implementation's recommendation.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  /// Returns a new generator whose stream is independent of this one
  /// (derived by mixing the next output; deterministic given the seed).
  Rng Split() { return Rng(Next() ^ 0xd3833e804f4c574bULL); }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return Next(); }

  /// Next raw 64 bits.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t NextBounded(uint64_t bound) {
    DSGM_DCHECK(bound > 0);
    // Lemire's multiply-shift rejection method.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    DSGM_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p) {
    if (p >= 1.0) return true;
    if (p <= 0.0) return false;
    return NextDouble() < p;
  }

  /// Standard normal via the polar (Marsaglia) method.
  double NextGaussian();

  /// Gamma(shape, 1) via Marsaglia-Tsang, valid for any shape > 0.
  double NextGamma(double shape);

  /// A point from Dirichlet(alpha, ..., alpha) of dimension `dim`.
  /// Larger alpha => more uniform; alpha < 1 => spiky (skewed) vectors.
  std::vector<double> NextDirichlet(int dim, double alpha);

  /// Samples an index from an (unnormalized) non-negative weight vector.
  int NextCategorical(const std::vector<double>& weights);

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

/// Zipf(s) sampler over {0, ..., n-1} using the inverse-CDF table method.
/// Used by the site-skew ablation to route events non-uniformly to sites.
class ZipfDistribution {
 public:
  ZipfDistribution(int n, double exponent);

  int Sample(Rng& rng) const;

  int n() const { return static_cast<int>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace dsgm

#endif  // DSGM_COMMON_RNG_H_
