#include "common/statistics.h"

#include <algorithm>
#include <cmath>

namespace dsgm {

void OnlineStats::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double SampleSet::Mean() const {
  if (values_.empty()) return 0.0;
  double total = 0.0;
  for (double v : values_) total += v;
  return total / static_cast<double>(values_.size());
}

double SampleSet::Quantile(double q) const {
  if (values_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

BoxplotSummary SampleSet::Boxplot() const {
  BoxplotSummary box;
  box.p10 = Quantile(0.10);
  box.p25 = Quantile(0.25);
  box.p50 = Quantile(0.50);
  box.p75 = Quantile(0.75);
  box.p90 = Quantile(0.90);
  box.mean = Mean();
  box.count = count();
  return box;
}

}  // namespace dsgm
