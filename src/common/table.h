// Aligned plain-text table rendering for benchmark output.
//
// Every experiment binary prints its table/figure series through this class
// so that the console output of `bench_*` binaries mirrors the rows the paper
// reports (see EXPERIMENTS.md).

#ifndef DSGM_COMMON_TABLE_H_
#define DSGM_COMMON_TABLE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace dsgm {

/// Formats a double with `digits` significant digits (general format).
std::string FormatDouble(double value, int digits = 4);

/// Formats a double in scientific notation, e.g. "3.70e+06" (paper style).
std::string FormatScientific(double value, int digits = 2);

/// Formats an integer with thousands separators, e.g. "5,000,000".
std::string FormatCount(int64_t value);

/// Collects rows of strings and prints them with aligned columns.
class TablePrinter {
 public:
  /// `title` is printed above the table; pass "" to omit.
  explicit TablePrinter(std::string title = "") : title_(std::move(title)) {}

  /// Sets the header row. Column count of subsequent rows must match.
  void SetHeader(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Renders the title, header, separator, and rows with aligned columns.
  void Print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dsgm

#endif  // DSGM_COMMON_TABLE_H_
