// Process-wide runtime metrics and protocol tracing.
//
// Three instrument kinds, registered by name and updated through handles:
//
//   Counter*   c = MetricsRegistry::Global().GetCounter("net.reactor.wakeups");
//   Gauge*     g = MetricsRegistry::Global().GetGauge("net.reactor.outbox_bytes");
//   Histogram* h = MetricsRegistry::Global().GetHistogram("net.reactor.loop_ns");
//
// Names follow `layer.component.name` (e.g. `cluster.coord.rounds_advanced`);
// histogram names end in a unit suffix (`_ns`). Registration takes the
// registry mutex once; the returned handle is valid for the life of the
// process, and every update through it is a relaxed atomic — no locks, no
// string lookups, no allocation on the hot path. Hot loops amortize further
// by updating at batch granularity (one Add(n) per batch, not per event) so
// eight producers never contend on a metric cache line per event.
//
// OWNERSHIP/RACES: instruments are plain relaxed atomics. Readers
// (Snapshot(), the dumper thread) observe each cell individually-atomic but
// mutually unordered values — a snapshot is a consistent-enough view for
// monitoring, not a linearizable cut. That is the documented contract, so
// none of the hot-path state is (falsely) annotated as lock-guarded.
//
// The trace ring records protocol events (round advances, syncs,
// heartbeats, site cancel/fail, snapshot publish/defer) into fixed-capacity
// per-thread rings with monotonic timestamps; MergedTraceTimeline() splices
// every thread's ring into one time-ordered view. Each slot field is an
// atomic: a dump that races a writer may read a torn (mixed-generation)
// event but never tears a field or trips TSan; dumps taken at quiesce
// points (run end, test asserts) are exact.

#ifndef DSGM_COMMON_METRICS_H_
#define DSGM_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/timer.h"

namespace dsgm {

namespace metrics_internal {
extern std::atomic<bool> g_enabled;
}  // namespace metrics_internal

/// Global kill switch (default on). Disabling turns every instrument update
/// and trace record into a single relaxed load + branch; used by
/// bench_ingest_scale to price the instrumentation itself.
inline bool MetricsEnabled() {
  return metrics_internal::g_enabled.load(std::memory_order_relaxed);
}
void SetMetricsEnabled(bool enabled);

/// Monotonic event count. Single relaxed fetch_add per update.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n) {
    if (!MetricsEnabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;  // ResetForTest zeroes in place
  std::atomic<uint64_t> value_{0};
};

/// Last-written level (queue depth, bytes outstanding, slack remaining).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) {
    if (!MetricsEnabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t d) {
    if (!MetricsEnabled()) return;
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;  // ResetForTest zeroes in place
  std::atomic<int64_t> value_{0};
};

/// Quantile readout of a Histogram. Quantiles are upper bounds of the
/// log2 bucket the quantile falls in (≤ 2x the true value by construction);
/// max is exact.
struct HistogramStats {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t p50 = 0;
  uint64_t p99 = 0;
  uint64_t max = 0;

  double mean() const { return count == 0 ? 0.0 : double(sum) / double(count); }
};

/// Log2-bucketed latency histogram. Record() is two relaxed fetch_adds, one
/// bucket increment, and a relaxed CAS-max — no locks, constant memory.
/// Bucket i holds values in [2^(i-1), 2^i); values ≥ 2^63 clamp into the
/// last bucket.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value) {
    if (!MetricsEnabled()) return;
    buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
  }

  HistogramStats Stats() const;

  /// Bucket index for a value: 0 for 0, otherwise bit_width(value) clamped.
  static int BucketOf(uint64_t value) {
    if (value == 0) return 0;
    return 64 - __builtin_clzll(value) < kBuckets
               ? 64 - __builtin_clzll(value)
               : kBuckets - 1;
  }
  /// Inclusive upper bound of bucket i (reported as the quantile value).
  static uint64_t BucketUpperBound(int bucket) {
    return bucket >= 63 ? ~uint64_t{0} : (uint64_t{1} << bucket) - 1;
  }

 private:
  friend class MetricsRegistry;  // ResetForTest zeroes in place
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// One site's row in the coordinator's live health table. Plain data —
/// produced by SiteHealthBoard::Snapshot(), shipped in MetricsSnapshot.
struct SiteHealth {
  int site = -1;
  bool alive = false;
  /// Milliseconds since the coordinator last heard anything from the site
  /// (any frame counts, exactly like the liveness clock). Negative until
  /// the site's hello is accepted.
  double heartbeat_age_ms = -1.0;
  int64_t events_processed = 0;
  uint64_t updates_sent = 0;
  uint64_t syncs_sent = 0;
  uint64_t rounds_seen = 0;
  /// kStatsReport frames received from this site.
  uint64_t stats_reports = 0;
};

/// Coordinator-side per-site health table, fed by heartbeats and
/// kStatsReport frames. Lock-free: each cell is a relaxed atomic written by
/// the reactor loop (kLocalTcp) or the site threads themselves (kThreads)
/// and read by snapshotters; same consistency contract as the instruments.
class SiteHealthBoard {
 public:
  explicit SiteHealthBoard(int num_sites);

  int num_sites() const { return num_sites_; }

  /// Any frame arrived from `site` at `now_nanos` — resets the heartbeat
  /// age and (re)marks the site alive.
  void Touch(int site, int64_t now_nanos);
  /// A kStatsReport from `site` (already validated against the connection's
  /// authenticated id by the caller).
  void Update(int site, int64_t events_processed, uint64_t updates_sent,
              uint64_t syncs_sent, uint64_t rounds_seen);
  /// Liveness declared the site dead (or the protocol cancelled it).
  void MarkDead(int site);

  std::vector<SiteHealth> Snapshot(int64_t now_nanos) const;

 private:
  struct Slot {
    std::atomic<int64_t> last_rx_nanos{-1};
    std::atomic<bool> alive{false};
    std::atomic<int64_t> events_processed{0};
    std::atomic<uint64_t> updates_sent{0};
    std::atomic<uint64_t> syncs_sent{0};
    std::atomic<uint64_t> rounds_seen{0};
    std::atomic<uint64_t> stats_reports{0};
  };

  bool InRange(int site) const { return site >= 0 && site < num_sites_; }

  const int num_sites_;
  std::unique_ptr<Slot[]> slots_;
};

/// Structured point-in-time view of every registered instrument, plus the
/// per-site health table when a cluster session attached one. Entries are
/// sorted by name so successive snapshots diff cleanly.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    int64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    HistogramStats stats;
  };

  int64_t captured_nanos = 0;
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
  std::vector<SiteHealth> sites;

  const CounterValue* FindCounter(const std::string& name) const;
  const GaugeValue* FindGauge(const std::string& name) const;
  const HistogramValue* FindHistogram(const std::string& name) const;
};

/// One line of compact JSON (no newline), the `--metrics-dump-ms` format:
/// {"t_ms":..,"counters":{..},"gauges":{..},"histograms":{..},"sites":[..]}
/// Rendered human-readable by tools/metrics_text.py.
std::string MetricsSnapshotToJsonLine(const MetricsSnapshot& snapshot);

/// Process-wide instrument registry. Get* registers on first use (mutex,
/// cold path) and returns the same handle for the same name thereafter, so
/// independent components share instruments by naming convention alone.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name) DSGM_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) DSGM_EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name) DSGM_EXCLUDES(mu_);

  /// Snapshot of every registered instrument (sites left empty; sessions
  /// splice in their board). Relaxed reads — see the header comment.
  MetricsSnapshot Snapshot() const DSGM_EXCLUDES(mu_);

  /// Test hook: zero every counter/gauge/histogram cell in place (handles
  /// stay valid). Races with concurrent writers are benign-by-contract.
  void ResetForTest() DSGM_EXCLUDES(mu_);

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  mutable Mutex mu_;
  // std::map: stable element addresses across inserts (handles are pointers
  // into the mapped values) and name-sorted iteration for Snapshot().
  std::map<std::string, Counter> counters_ DSGM_GUARDED_BY(mu_);
  std::map<std::string, Gauge> gauges_ DSGM_GUARDED_BY(mu_);
  std::map<std::string, Histogram> histograms_ DSGM_GUARDED_BY(mu_);
};

// --- Protocol trace ring ---------------------------------------------------

enum class TraceEventType : uint8_t {
  kNone = 0,  // unwritten slot
  kRoundAdvance = 1,
  kSyncMessage = 2,
  kHeartbeat = 3,
  kStatsReport = 4,
  kSiteCancelled = 5,
  kSiteFailed = 6,
  kSnapshotPublish = 7,
  kSnapshotDefer = 8,
  kProtocolViolation = 9,
  kAlert = 10,  // a health alert rule fired (arg = rule id)
};

const char* TraceEventTypeName(TraceEventType type);

struct TraceEvent {
  int64_t t_nanos = 0;
  TraceEventType type = TraceEventType::kNone;
  /// Site id the event concerns, or -1.
  int32_t site = -1;
  /// Type-specific payload: round number for kRoundAdvance/kSyncMessage,
  /// publish latency in nanos for kSnapshotPublish, 0 otherwise.
  int64_t arg = 0;
};

inline bool operator==(const TraceEvent& a, const TraceEvent& b) {
  return a.t_nanos == b.t_nanos && a.type == b.type && a.site == b.site &&
         a.arg == b.arg;
}

/// Fixed-capacity single-writer event ring. The owning thread Record()s;
/// overflow overwrites the oldest slot, so the ring always holds the newest
/// kCapacity events. Snapshot() from any thread returns oldest-first.
class TraceRing {
 public:
  static constexpr size_t kCapacity = 1024;

  TraceRing() = default;
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void Record(TraceEventType type, int32_t site, int64_t arg) {
    if (!MetricsEnabled()) return;
    const uint64_t n = head_.load(std::memory_order_relaxed);
    Slot& slot = slots_[n % kCapacity];
    slot.t_nanos.store(NowNanos(), std::memory_order_relaxed);
    slot.site.store(site, std::memory_order_relaxed);
    slot.arg.store(arg, std::memory_order_relaxed);
    slot.type.store(static_cast<uint8_t>(type), std::memory_order_relaxed);
    head_.store(n + 1, std::memory_order_release);
  }

  std::vector<TraceEvent> Snapshot() const;

  /// Total events ever recorded (monotone). The natural shipping cursor:
  /// events [head - kCapacity, head) are the ones still resident.
  uint64_t head() const { return head_.load(std::memory_order_acquire); }

  /// Copies events at absolute positions [begin, end) oldest-first,
  /// skipping unwritten slots. The caller must clamp `begin` to at least
  /// head() - kCapacity; slots racing a live writer follow the same
  /// benign-tear contract as Snapshot().
  void CopyRange(uint64_t begin, uint64_t end,
                 std::vector<TraceEvent>* out) const;

 private:
  struct Slot {
    std::atomic<int64_t> t_nanos{0};
    std::atomic<int64_t> arg{0};
    std::atomic<int32_t> site{-1};
    std::atomic<uint8_t> type{0};
  };

  std::atomic<uint64_t> head_{0};
  Slot slots_[kCapacity] = {};
};

/// The calling thread's trace ring, lazily created and registered with the
/// global trace log (rings outlive their threads; a dump after join sees
/// every event).
TraceRing* ThreadTraceRing();

/// Record a protocol event into the calling thread's ring. No-op when
/// metrics are disabled — checked before the thread-local lookup.
inline void Trace(TraceEventType type, int32_t site, int64_t arg) {
  if (!MetricsEnabled()) return;
  ThreadTraceRing()->Record(type, site, arg);
}

/// Every thread's ring spliced into one timeline, sorted by timestamp.
std::vector<TraceEvent> MergedTraceTimeline();

/// Incremental-drain position over the global trace log (all threads'
/// rings), for shipping trace events off the process in loss-tolerant
/// chunks. `next_seq` is a process-global monotone sequence number that
/// advances once per drained AND per overwritten-before-drained event, so
/// a receiver detects loss as a gap between chunks without any
/// retransmission machinery. Single-owner: one cursor belongs to one
/// draining thread.
struct TraceDrainCursor {
  std::vector<uint64_t> positions;  // per-ring drained-up-to heads
  uint64_t next_seq = 0;
  uint64_t dropped = 0;  // cumulative events lost to ring overwrite
};

/// Appends every event recorded since `cursor` (across all threads' rings,
/// time-sorted) to `out` and advances the cursor. Returns the number of
/// events appended; `*first_seq` receives the global sequence number of
/// the first appended event (meaningful only when the return is > 0).
size_t DrainTraceEvents(TraceDrainCursor* cursor, std::vector<TraceEvent>* out,
                        uint64_t* first_seq);

/// Human-readable one-event-per-line rendering of a timeline.
std::string FormatTraceTimeline(const std::vector<TraceEvent>& timeline);

// --- Periodic dumper -------------------------------------------------------

/// Background thread that emits MetricsSnapshotToJsonLine(fn()) + '\n' to
/// `out` every `period_ms`, plus one final line on Stop(). Backs the
/// Session `--metrics-dump-ms` / `WithMetricsDump` option.
class MetricsDumper {
 public:
  using SnapshotFn = std::function<MetricsSnapshot()>;

  MetricsDumper(int period_ms, std::ostream* out, SnapshotFn fn);
  ~MetricsDumper();

  /// Emits the final snapshot line and joins the thread. Idempotent.
  void Stop();

 private:
  void Loop();
  void EmitLine();

  const int period_ms_;
  std::ostream* const out_;
  const SnapshotFn fn_;
  Mutex mu_;
  CondVar cv_;
  bool stop_ DSGM_GUARDED_BY(mu_) = false;
  // Serializes EmitLine between the loop thread and Stop's final dump.
  Mutex emit_mu_;
  std::thread thread_;
};

}  // namespace dsgm

#endif  // DSGM_COMMON_METRICS_H_
