// Single-producer/single-consumer bounded ring buffer — the lock-free lane
// underneath the sharded ingest path (src/api/sharded_router.h).
//
// Why not BoundedQueue: the MPMC queue takes one mutex per operation, so N
// ingest threads funneling event batches through it serialize on that lock
// even though each (producer, site) pair is logically its own FIFO. An SPSC
// ring needs no lock at all on the hot path: the producer owns the tail
// index, the consumer owns the head index, and a release/acquire pair per
// side publishes the slots. Each side additionally caches the other side's
// index so an uncontended push/pop touches only its OWN cache line plus the
// slot (the classic Rigtorp/folly ProducerConsumerQueue layout).
//
// The ring itself is non-blocking (TryPush/TryPopBatch); blocking, close
// semantics, and many-lane multiplexing live one level up in
// api/sharded_router.h, which composes rings with condition variables only
// on the empty/full edges.
//
// === The SPSC contract (not expressible in thread-safety annotations) ===
//
// Clang's analysis models locks; this ring has none, so the contract is
// stated here and enforced dynamically in !NDEBUG builds:
//
//   1. At any instant, at most ONE thread may be inside a producer method
//      (TryPush) and at most ONE thread inside a consumer method
//      (TryPopBatch). Concurrent calls on the SAME side are the violation.
//   2. A side may migrate between threads — the sharded ingest path hands
//      the producer role to an orphan-flushing thread after the original
//      producer exits — provided the handoff is ordered by a happens-before
//      edge (the router serializes handoffs under the shard's flush mutex).
//      TSan validates those edges; the asserts below catch the same-side
//      concurrency that TSan can only catch when the race actually lands.
//   3. Close()/closed()/size_approx() are safe from either side at any
//      time.
//
// The debug guard is a per-side reentrancy counter: entering a side while
// another thread is mid-call on that side trips a CHECK deterministically,
// whereas the underlying index race would corrupt the ring silently.

#ifndef DSGM_COMMON_SPSC_RING_H_
#define DSGM_COMMON_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/check.h"

namespace dsgm {

namespace internal {

/// Debug-build guard asserting that a ring side is not entered
/// concurrently. Compiles away entirely under NDEBUG.
class SpscSideGuard {
 public:
#ifndef NDEBUG
  explicit SpscSideGuard(std::atomic<int>* depth, const char* side)
      : depth_(depth) {
    DSGM_CHECK(depth_->fetch_add(1, std::memory_order_acq_rel) == 0)
        << "SPSC contract violated: concurrent " << side
        << " calls on one SpscRing";
  }
  ~SpscSideGuard() { depth_->fetch_sub(1, std::memory_order_acq_rel); }

 private:
  std::atomic<int>* depth_;
#else
  SpscSideGuard(std::atomic<int>*, const char*) {}
#endif
  SpscSideGuard(const SpscSideGuard&) = delete;
  SpscSideGuard& operator=(const SpscSideGuard&) = delete;
};

}  // namespace internal

/// Fixed-capacity SPSC FIFO. Exactly one thread may be inside the producer
/// method (TryPush) and one inside the consumer method (TryPopBatch) at a
/// time — see the contract block above; Close/closed may be called from
/// either side.
template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (index masking instead of
  /// modulo). `min_capacity` must be positive.
  explicit SpscRing(size_t min_capacity) {
    DSGM_CHECK(min_capacity > 0);
    size_t capacity = 1;
    while (capacity < min_capacity) capacity <<= 1;
    slots_.resize(capacity);
    mask_ = capacity - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return slots_.size(); }

  /// Producer. Moves from `item` and returns true on success; on a full
  /// ring returns false with `item` left intact, so the caller can hold the
  /// value and retry (or block) without a copy.
  bool TryPush(T&& item) {
    internal::SpscSideGuard guard(&push_depth_, "producer");
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ == slots_.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ == slots_.size()) return false;
    }
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer: appends up to `max_items` to `out`, moving them out of their
  /// slots (a popped slot does not retain heap buffers). Returns the number
  /// appended; 0 means the ring was empty at the time of the call.
  size_t TryPopBatch(std::vector<T>* out, size_t max_items) {
    internal::SpscSideGuard guard(&pop_depth_, "consumer");
    const size_t head = head_.load(std::memory_order_relaxed);
    if (cached_tail_ == head) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (cached_tail_ == head) return 0;
    }
    size_t take = cached_tail_ - head;
    if (take > max_items) take = max_items;
    for (size_t i = 0; i < take; ++i) {
      out->push_back(std::move(slots_[(head + i) & mask_]));
    }
    head_.store(head + take, std::memory_order_release);
    return take;
  }

  /// Either side. After Close, the producer should stop pushing (the lane
  /// owner checks closed() in its blocking loop); buffered items remain
  /// poppable so the consumer can drain.
  void Close() { closed_.store(true, std::memory_order_release); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Racy by nature; for introspection and tests.
  size_t size_approx() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  /// Consumer-owned line: head plus the consumer's cache of tail.
  alignas(64) std::atomic<size_t> head_{0};
  size_t cached_tail_ = 0;
  /// Producer-owned line: tail plus the producer's cache of head.
  alignas(64) std::atomic<size_t> tail_{0};
  size_t cached_head_ = 0;
  alignas(64) std::atomic<bool> closed_{false};
  /// Debug reentrancy counters for the SPSC contract (see header comment).
  std::atomic<int> push_depth_{0};
  std::atomic<int> pop_depth_{0};
};

}  // namespace dsgm

#endif  // DSGM_COMMON_SPSC_RING_H_
