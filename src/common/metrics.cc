#include "common/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <iostream>
#include <memory>
#include <ostream>
#include <sstream>
#include <utility>

namespace dsgm {

namespace metrics_internal {
std::atomic<bool> g_enabled{true};
}  // namespace metrics_internal

void SetMetricsEnabled(bool enabled) {
  metrics_internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

// --- Histogram -------------------------------------------------------------

HistogramStats Histogram::Stats() const {
  HistogramStats stats;
  uint64_t buckets[kBuckets];
  // Read count last so the bucket sum can only exceed it, never fall short,
  // under concurrent writers; quantile walks use the bucket sum.
  for (int i = 0; i < kBuckets; ++i) {
    buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  stats.sum = sum_.load(std::memory_order_relaxed);
  stats.max = max_.load(std::memory_order_relaxed);
  stats.count = count_.load(std::memory_order_relaxed);
  uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) total += buckets[i];
  if (total == 0) return stats;

  auto quantile = [&](double q) -> uint64_t {
    // Rank of the q-quantile, 1-based; the bucket containing it bounds it.
    const uint64_t rank =
        std::max<uint64_t>(1, static_cast<uint64_t>(q * double(total) + 0.5));
    uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += buckets[i];
      if (seen >= rank) return BucketUpperBound(i);
    }
    return BucketUpperBound(kBuckets - 1);
  };
  stats.p50 = quantile(0.50);
  stats.p99 = quantile(0.99);
  // The top bucket's upper bound can overshoot the true max; max_ is exact,
  // so clamp quantiles to it.
  stats.p50 = std::min(stats.p50, stats.max);
  stats.p99 = std::min(stats.p99, stats.max);
  return stats;
}

// --- SiteHealthBoard -------------------------------------------------------

SiteHealthBoard::SiteHealthBoard(int num_sites)
    : num_sites_(num_sites), slots_(new Slot[static_cast<size_t>(
                                 num_sites > 0 ? num_sites : 0)]) {}

void SiteHealthBoard::Touch(int site, int64_t now_nanos) {
  if (!InRange(site)) return;
  Slot& slot = slots_[static_cast<size_t>(site)];
  slot.last_rx_nanos.store(now_nanos, std::memory_order_relaxed);
  slot.alive.store(true, std::memory_order_relaxed);
}

void SiteHealthBoard::Update(int site, int64_t events_processed,
                             uint64_t updates_sent, uint64_t syncs_sent,
                             uint64_t rounds_seen) {
  if (!InRange(site)) return;
  Slot& slot = slots_[static_cast<size_t>(site)];
  slot.events_processed.store(events_processed, std::memory_order_relaxed);
  slot.updates_sent.store(updates_sent, std::memory_order_relaxed);
  slot.syncs_sent.store(syncs_sent, std::memory_order_relaxed);
  slot.rounds_seen.store(rounds_seen, std::memory_order_relaxed);
  slot.stats_reports.fetch_add(1, std::memory_order_relaxed);
}

void SiteHealthBoard::MarkDead(int site) {
  if (!InRange(site)) return;
  slots_[static_cast<size_t>(site)].alive.store(false,
                                                std::memory_order_relaxed);
}

std::vector<SiteHealth> SiteHealthBoard::Snapshot(int64_t now_nanos) const {
  std::vector<SiteHealth> sites;
  sites.reserve(static_cast<size_t>(num_sites_));
  for (int s = 0; s < num_sites_; ++s) {
    const Slot& slot = slots_[static_cast<size_t>(s)];
    SiteHealth health;
    health.site = s;
    health.alive = slot.alive.load(std::memory_order_relaxed);
    const int64_t last_rx = slot.last_rx_nanos.load(std::memory_order_relaxed);
    health.heartbeat_age_ms =
        last_rx < 0 ? -1.0 : static_cast<double>(now_nanos - last_rx) * 1e-6;
    health.events_processed =
        slot.events_processed.load(std::memory_order_relaxed);
    health.updates_sent = slot.updates_sent.load(std::memory_order_relaxed);
    health.syncs_sent = slot.syncs_sent.load(std::memory_order_relaxed);
    health.rounds_seen = slot.rounds_seen.load(std::memory_order_relaxed);
    health.stats_reports = slot.stats_reports.load(std::memory_order_relaxed);
    sites.push_back(health);
  }
  return sites;
}

// --- MetricsSnapshot -------------------------------------------------------

const MetricsSnapshot::CounterValue* MetricsSnapshot::FindCounter(
    const std::string& name) const {
  for (const CounterValue& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const MetricsSnapshot::GaugeValue* MetricsSnapshot::FindGauge(
    const std::string& name) const {
  for (const GaugeValue& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const MetricsSnapshot::HistogramValue* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const HistogramValue& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

namespace {

// Metric names are dot-separated identifiers, but escape defensively so a
// stray name can never produce an unparseable dump line.
void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  *out += buf;
}

}  // namespace

std::string MetricsSnapshotToJsonLine(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(1024);
  out += "{\"t_ms\":";
  AppendDouble(&out, static_cast<double>(snapshot.captured_nanos) * 1e-6);
  out += ",\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendJsonString(&out, snapshot.counters[i].name);
    out.push_back(':');
    out += std::to_string(snapshot.counters[i].value);
  }
  out += "},\"gauges\":{";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendJsonString(&out, snapshot.gauges[i].name);
    out.push_back(':');
    out += std::to_string(snapshot.gauges[i].value);
  }
  out += "},\"histograms\":{";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    if (i > 0) out.push_back(',');
    const MetricsSnapshot::HistogramValue& h = snapshot.histograms[i];
    AppendJsonString(&out, h.name);
    out += ":{\"count\":" + std::to_string(h.stats.count);
    out += ",\"sum\":" + std::to_string(h.stats.sum);
    out += ",\"p50\":" + std::to_string(h.stats.p50);
    out += ",\"p99\":" + std::to_string(h.stats.p99);
    out += ",\"max\":" + std::to_string(h.stats.max);
    out.push_back('}');
  }
  out += "},\"sites\":[";
  for (size_t i = 0; i < snapshot.sites.size(); ++i) {
    if (i > 0) out.push_back(',');
    const SiteHealth& s = snapshot.sites[i];
    out += "{\"site\":" + std::to_string(s.site);
    out += ",\"alive\":";
    out += s.alive ? "true" : "false";
    out += ",\"hb_age_ms\":";
    AppendDouble(&out, s.heartbeat_age_ms);
    out += ",\"events\":" + std::to_string(s.events_processed);
    out += ",\"updates\":" + std::to_string(s.updates_sent);
    out += ",\"syncs\":" + std::to_string(s.syncs_sent);
    out += ",\"rounds\":" + std::to_string(s.rounds_seen);
    out += ",\"stats_reports\":" + std::to_string(s.stats_reports);
    out.push_back('}');
  }
  out += "]}";
  return out;
}

// --- MetricsRegistry -------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  return &counters_[name];
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  return &gauges_[name];
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(&mu_);
  return &histograms_[name];
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  snapshot.captured_nanos = NowNanos();
  MutexLock lock(&mu_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter.Value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge.Value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.push_back({name, histogram.Stats()});
  }
  return snapshot;
}

void MetricsRegistry::ResetForTest() {
  MutexLock lock(&mu_);
  for (auto& [name, counter] : counters_) {
    (void)name;
    counter.value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, gauge] : gauges_) {
    (void)name;
    gauge.value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, histogram] : histograms_) {
    (void)name;
    for (auto& bucket : histogram.buckets_) {
      bucket.store(0, std::memory_order_relaxed);
    }
    histogram.count_.store(0, std::memory_order_relaxed);
    histogram.sum_.store(0, std::memory_order_relaxed);
    histogram.max_.store(0, std::memory_order_relaxed);
  }
}

// --- Trace ring ------------------------------------------------------------

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kNone:
      return "none";
    case TraceEventType::kRoundAdvance:
      return "round_advance";
    case TraceEventType::kSyncMessage:
      return "sync_message";
    case TraceEventType::kHeartbeat:
      return "heartbeat";
    case TraceEventType::kStatsReport:
      return "stats_report";
    case TraceEventType::kSiteCancelled:
      return "site_cancelled";
    case TraceEventType::kSiteFailed:
      return "site_failed";
    case TraceEventType::kSnapshotPublish:
      return "snapshot_publish";
    case TraceEventType::kSnapshotDefer:
      return "snapshot_defer";
    case TraceEventType::kProtocolViolation:
      return "protocol_violation";
    case TraceEventType::kAlert:
      return "alert";
  }
  return "unknown";
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t n = head < kCapacity ? head : kCapacity;
  std::vector<TraceEvent> events;
  events.reserve(n);
  for (uint64_t i = head - n; i < head; ++i) {
    const Slot& slot = slots_[i % kCapacity];
    TraceEvent event;
    event.type =
        static_cast<TraceEventType>(slot.type.load(std::memory_order_relaxed));
    if (event.type == TraceEventType::kNone) continue;
    event.t_nanos = slot.t_nanos.load(std::memory_order_relaxed);
    event.site = slot.site.load(std::memory_order_relaxed);
    event.arg = slot.arg.load(std::memory_order_relaxed);
    events.push_back(event);
  }
  return events;
}

void TraceRing::CopyRange(uint64_t begin, uint64_t end,
                          std::vector<TraceEvent>* out) const {
  for (uint64_t i = begin; i < end; ++i) {
    const Slot& slot = slots_[i % kCapacity];
    TraceEvent event;
    event.type =
        static_cast<TraceEventType>(slot.type.load(std::memory_order_relaxed));
    if (event.type == TraceEventType::kNone) continue;
    event.t_nanos = slot.t_nanos.load(std::memory_order_relaxed);
    event.site = slot.site.load(std::memory_order_relaxed);
    event.arg = slot.arg.load(std::memory_order_relaxed);
    out->push_back(event);
  }
}

namespace {

/// Owns every thread's ring for the life of the process, so a merged dump
/// after a worker thread exits still sees its events.
class TraceLog {
 public:
  static TraceLog& Global() {
    static TraceLog* log = new TraceLog;
    return *log;
  }

  TraceRing* RingForThisThread() DSGM_EXCLUDES(mu_) {
    auto ring = std::make_unique<TraceRing>();
    TraceRing* raw = ring.get();
    MutexLock lock(&mu_);
    rings_.push_back(std::move(ring));
    return raw;
  }

  std::vector<TraceEvent> Merged() const DSGM_EXCLUDES(mu_) {
    std::vector<TraceEvent> merged;
    {
      MutexLock lock(&mu_);
      for (const auto& ring : rings_) {
        std::vector<TraceEvent> events = ring->Snapshot();
        merged.insert(merged.end(), events.begin(), events.end());
      }
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       return a.t_nanos < b.t_nanos;
                     });
    return merged;
  }

  size_t DrainInto(TraceDrainCursor* cursor, std::vector<TraceEvent>* out,
                   uint64_t* first_seq) const DSGM_EXCLUDES(mu_) {
    const size_t before = out->size();
    uint64_t consumed = 0;
    {
      MutexLock lock(&mu_);
      if (cursor->positions.size() < rings_.size()) {
        cursor->positions.resize(rings_.size(), 0);
      }
      for (size_t r = 0; r < rings_.size(); ++r) {
        const TraceRing& ring = *rings_[r];
        uint64_t pos = cursor->positions[r];
        const uint64_t head = ring.head();
        consumed += head - pos;
        // Positions the writer lapped are gone; start at the oldest
        // resident slot. The skipped span shows up as a sequence gap.
        if (head > pos + TraceRing::kCapacity) pos = head - TraceRing::kCapacity;
        ring.CopyRange(pos, head, out);
        cursor->positions[r] = head;
      }
    }
    std::stable_sort(out->begin() + static_cast<std::ptrdiff_t>(before),
                     out->end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       return a.t_nanos < b.t_nanos;
                     });
    const size_t appended = out->size() - before;
    // Every consumed ring position gets exactly one global sequence number;
    // positions that yielded no event (overwritten before the drain, or the
    // rare torn slot) read as a gap ahead of this chunk downstream.
    const uint64_t lost = consumed - static_cast<uint64_t>(appended);
    *first_seq = cursor->next_seq + lost;
    cursor->next_seq += consumed;
    cursor->dropped += lost;
    return appended;
  }

 private:
  mutable Mutex mu_;
  std::vector<std::unique_ptr<TraceRing>> rings_ DSGM_GUARDED_BY(mu_);
};

}  // namespace

TraceRing* ThreadTraceRing() {
  thread_local TraceRing* ring = TraceLog::Global().RingForThisThread();
  return ring;
}

std::vector<TraceEvent> MergedTraceTimeline() {
  return TraceLog::Global().Merged();
}

size_t DrainTraceEvents(TraceDrainCursor* cursor, std::vector<TraceEvent>* out,
                        uint64_t* first_seq) {
  return TraceLog::Global().DrainInto(cursor, out, first_seq);
}

std::string FormatTraceTimeline(const std::vector<TraceEvent>& timeline) {
  std::ostringstream out;
  const int64_t t0 = timeline.empty() ? 0 : timeline.front().t_nanos;
  for (const TraceEvent& event : timeline) {
    char line[128];
    std::snprintf(line, sizeof(line), "%12.3fms  %-16s site=%-3d arg=%" PRId64,
                  static_cast<double>(event.t_nanos - t0) * 1e-6,
                  TraceEventTypeName(event.type), event.site, event.arg);
    out << line << '\n';
  }
  return out.str();
}

// --- MetricsDumper ---------------------------------------------------------

MetricsDumper::MetricsDumper(int period_ms, std::ostream* out, SnapshotFn fn)
    : period_ms_(period_ms > 0 ? period_ms : 1000),
      out_(out != nullptr ? out : &std::cerr),
      fn_(std::move(fn)),
      thread_([this] { Loop(); }) {}

MetricsDumper::~MetricsDumper() { Stop(); }

void MetricsDumper::Stop() {
  {
    MutexLock lock(&mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
  // Final line: the post-run snapshot (Loop already exited, no overlap).
  EmitLine();
}

void MetricsDumper::Loop() {
  MutexLock lock(&mu_);
  while (!stop_) {
    cv_.WaitFor(&lock, std::chrono::milliseconds(period_ms_));
    if (stop_) break;
    lock.Unlock();
    EmitLine();
    lock.Lock();
  }
}

void MetricsDumper::EmitLine() {
  const MetricsSnapshot snapshot = fn_();
  const std::string line = MetricsSnapshotToJsonLine(snapshot);
  MutexLock lock(&emit_mu_);
  *out_ << line << '\n';
  out_->flush();
}

}  // namespace dsgm
