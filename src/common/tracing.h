// Cluster-wide causal tracing: the coordinator-side half of trace shipping.
//
// common/metrics.h gives every thread a TraceRing and every process a
// drain cursor; the net layer ships drained chunks coordinator-ward inside
// kTraceChunk frames. This header is where the shipped pieces become one
// picture:
//
//   ClusterTraceBoard   bounded per-site event logs fed by Ingest(), with
//                       sequence-gap loss accounting (chunks are
//                       loss-tolerant by construction — a gap is data, not
//                       an error) and a per-site ClockSkewEstimator.
//   MergedClusterTimeline()  every site's shipped events, skew-corrected
//                       onto the coordinator clock, spliced with the
//                       coordinator process's own rings.
//   TimelineToChromeJson()   that timeline as Chrome/Perfetto trace-event
//                       JSON (chrome://tracing, ui.perfetto.dev).
//   FlightRecordToJson()     the post-mortem bundle a failed run dumps:
//                       failure reason, metrics snapshot, health table,
//                       last-N timeline events.
//   AlertEngine         declarative health rules over SiteHealth rows,
//                       evaluated on the health cadence; fires
//                       `obs.alerts.*` counters and kAlert trace events.
//
// Clock skew: processes on one host share a steady_clock epoch, so real
// offsets are tiny — but the estimator does not assume that. It closes the
// NTP four-timestamp loop over two heartbeat legs (the coordinator echoes
// every site heartbeat; the site reflects the echo in its next beat) and
// EWMA-smooths offset = site_clock - coordinator_clock. Correcting a site
// timestamp onto the coordinator clock is therefore t - offset.

#ifndef DSGM_COMMON_TRACING_H_
#define DSGM_COMMON_TRACING_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dsgm {

/// EWMA estimate of one site's clock offset relative to the coordinator,
/// from NTP four-timestamp samples:
///
///   T1  coordinator clock when the echo left the coordinator
///   T2  site clock when the echo arrived at the site
///   T3  site clock when the site's next heartbeat left the site
///   T4  coordinator clock when that heartbeat arrived
///
///   offset = site - coordinator = ((T2-T1) + (T3-T4)) / 2
///   rtt    = (T4-T1) - (T3-T2)
///
/// Before the first echo round-trip completes the site sends T1 = T2 = 0;
/// such samples fall back to the one-way estimate T3 - T4, which is biased
/// by the full network delay but still bounds the offset. Single-threaded:
/// owned and advanced by whoever delivers the site's heartbeats.
class ClockSkewEstimator {
 public:
  void AddSample(int64_t t1, int64_t t2, int64_t t3, int64_t t4);

  /// Smoothed offset (site clock minus coordinator clock); 0 until the
  /// first sample.
  int64_t offset_nanos() const { return static_cast<int64_t>(offset_nanos_); }
  /// Smoothed round-trip time; 0 until the first two-way sample.
  int64_t rtt_nanos() const { return static_cast<int64_t>(rtt_nanos_); }
  uint64_t samples() const { return samples_; }
  uint64_t two_way_samples() const { return two_way_samples_; }

 private:
  double offset_nanos_ = 0.0;
  double rtt_nanos_ = 0.0;
  uint64_t samples_ = 0;
  uint64_t two_way_samples_ = 0;
};

/// One event on the merged cluster timeline. `origin` records which process
/// recorded it: -1 for the coordinator process (whose rings also hold the
/// events of in-process site threads), >= 0 for an event shipped from that
/// standalone site process. `event.t_nanos` is already skew-corrected onto
/// the coordinator clock.
struct ClusterTraceEvent {
  TraceEvent event;
  int32_t origin = -1;
};

/// Coordinator-side store for shipped trace chunks: a bounded per-site
/// event log plus sequence accounting and a clock-skew estimator per site.
/// Thread-safe; callers must have validated the chunk's site claim against
/// the connection's authenticated id BEFORE ingesting (same contract as
/// SiteHealthBoard::Update).
class ClusterTraceBoard {
 public:
  /// Newest events retained per site; older ones are dropped (and counted —
  /// a post-hoc reader can tell "quiet site" from "busy site, early events
  /// evicted").
  static constexpr size_t kMaxEventsPerSite = 2048;

  explicit ClusterTraceBoard(int num_sites);

  int num_sites() const { return num_sites_; }

  /// Folds one shipped chunk into `site`'s log. `first_seq` is the site's
  /// global sequence number of events[0]; a gap against the expected next
  /// sequence is counted as shipping loss, an overlap (reconnect replay) is
  /// deduplicated by sequence. Returns false for an out-of-range site.
  bool Ingest(int site, uint64_t first_seq,
              const std::vector<TraceEvent>& events) DSGM_EXCLUDES(mu_);

  /// Feeds one heartbeat's clock samples into `site`'s skew estimator.
  /// T4 (arrival on the coordinator clock) is measured by the caller at
  /// delivery, never read from the wire.
  void AddSkewSample(int site, int64_t t1, int64_t t2, int64_t t3, int64_t t4)
      DSGM_EXCLUDES(mu_);

  /// Smoothed clock offset (site minus coordinator) per site, indexed by
  /// site id.
  std::vector<int64_t> OffsetsNanos() const DSGM_EXCLUDES(mu_);

  /// Events shipped (and retained or evicted) from `site` so far.
  uint64_t EventsIngested(int site) const DSGM_EXCLUDES(mu_);
  /// Events lost before shipping (ring overwrite on the site, detected as
  /// sequence gaps) plus chunks dropped in transit.
  uint64_t EventsLost(int site) const DSGM_EXCLUDES(mu_);
  uint64_t ChunksIngested(int site) const DSGM_EXCLUDES(mu_);

  /// Every site's shipped events skew-corrected onto the coordinator clock,
  /// spliced with the coordinator process's own rings
  /// (MergedTraceTimeline()), sorted by corrected timestamp.
  std::vector<ClusterTraceEvent> MergedClusterTimeline() const
      DSGM_EXCLUDES(mu_);

 private:
  struct SiteLog {
    std::vector<TraceEvent> events;
    uint64_t next_seq = 0;  // expected first_seq of the next chunk
    uint64_t ingested = 0;
    uint64_t lost = 0;
    uint64_t chunks = 0;
    ClockSkewEstimator skew;
  };

  bool InRange(int site) const { return site >= 0 && site < num_sites_; }

  const int num_sites_;
  mutable Mutex mu_;
  std::unique_ptr<SiteLog[]> sites_ DSGM_GUARDED_BY(mu_);
};

/// Renders a merged timeline as Chrome trace-event JSON (the
/// chrome://tracing / Perfetto "JSON Array Format"): one instant event per
/// trace event, grouped into one pid per origin process (pid 0 =
/// coordinator, pid k+1 = site k) with process_name metadata, timestamps in
/// microseconds on the coordinator clock. `offsets_nanos` (indexed by site,
/// may be empty) is embedded under otherData.clock_offsets_nanos so a
/// reader can see what correction was applied.
std::string TimelineToChromeJson(const std::vector<ClusterTraceEvent>& timeline,
                                 const std::vector<int64_t>& offsets_nanos);

/// The post-mortem bundle a failed run dumps (the "flight recorder"):
/// everything a human needs to reconstruct the last moments of a dead run
/// without re-running it.
struct FlightRecord {
  std::string failure_reason;
  /// Metrics + health table at dump time (sites spliced in by the caller).
  MetricsSnapshot metrics;
  /// Last-N merged timeline events (caller trims; newest last).
  std::vector<ClusterTraceEvent> timeline;
  std::vector<int64_t> offsets_nanos;
  uint64_t trace_events_lost = 0;
};

std::string FlightRecordToJson(const FlightRecord& record);

// --- Health alert rules ----------------------------------------------------

/// The declarative rules AlertEngine evaluates. Values are the kAlert trace
/// event's arg, so they are wire-visible: renumbering is a trace format
/// change.
enum class AlertRule : int64_t {
  /// An alive site's heartbeat age exceeded stale_multiplier x the
  /// heartbeat interval — the site is lagging toward the liveness timeout.
  kHeartbeatStale = 1,
  /// A site's sync rate collapsed below collapse_fraction x its own
  /// trailing mean — it stopped answering round advances.
  kSyncRateCollapse = 2,
  /// A site's event rate fell below outlier_fraction x the cluster median —
  /// one straggler starving the round protocol.
  kEventRateOutlier = 3,
};

const char* AlertRuleName(AlertRule rule);

struct Alert {
  int site = -1;
  AlertRule rule = AlertRule::kHeartbeatStale;
  /// The observed value and the threshold it crossed, in the rule's unit
  /// (ms for kHeartbeatStale, events-or-syncs/sec for the rate rules).
  double value = 0.0;
  double threshold = 0.0;
};

struct AlertConfig {
  double heartbeat_interval_ms = 500.0;
  double stale_multiplier = 3.0;
  double collapse_fraction = 0.2;
  double outlier_fraction = 0.2;
  /// Rate rules stay disarmed for this many Evaluate() calls per site, so
  /// startup transients never fire.
  int warmup_ticks = 3;
  /// Reference rates (trailing mean, cluster median) below this never fire
  /// — an idle cluster is not a collapsed one.
  double min_rate_per_sec = 1.0;
};

/// Evaluates the alert rules over successive SiteHealth snapshots. Each
/// firing increments `obs.alerts.<rule>` and `obs.alerts.total` and records
/// a kAlert trace event (arg = rule id). Rules are edge-triggered: a
/// condition fires once when it becomes true and re-arms when it clears.
/// Single-threaded: owned by the one thread that walks the health cadence.
class AlertEngine {
 public:
  explicit AlertEngine(AlertConfig config);

  /// Evaluates every rule against one health snapshot taken at `now_nanos`;
  /// returns the alerts that fired on this tick.
  std::vector<Alert> Evaluate(const std::vector<SiteHealth>& sites,
                              int64_t now_nanos);

  uint64_t alerts_fired() const { return alerts_fired_; }

 private:
  static constexpr int kNumRules = 3;

  struct SiteState {
    int64_t prev_nanos = 0;
    int64_t prev_events = 0;
    uint64_t prev_syncs = 0;
    double sync_rate_ewma = 0.0;
    int ticks = 0;
    bool latched[kNumRules] = {false, false, false};
  };

  void Fire(int site, AlertRule rule, double value, double threshold,
            std::vector<Alert>* out);

  const AlertConfig config_;
  std::vector<SiteState> states_;
  uint64_t alerts_fired_ = 0;
  Counter* const alerts_total_;
  Counter* const alerts_by_rule_[kNumRules];
};

}  // namespace dsgm

#endif  // DSGM_COMMON_TRACING_H_
