// Annotated synchronization primitives.
//
// Thin wrappers over std::mutex / std::unique_lock / std::condition_variable
// that carry the Clang thread-safety attributes from
// common/thread_annotations.h, so "guarded by mu_" becomes a compile error
// instead of a comment. Under GCC they compile to the std primitives with
// zero overhead.
//
// Usage conventions in this codebase:
//
//   dsgm::Mutex mu_;
//   int value_ DSGM_GUARDED_BY(mu_);
//
//   {
//     dsgm::MutexLock lock(&mu_);
//     while (value_ == 0) cv_.Wait(&lock);   // explicit loop, no predicate
//     ...
//   }
//
// CondVar waits take the MutexLock and are written as explicit while-loops:
// a predicate lambda would read guarded fields in a context the analysis
// cannot attribute to the held lock.
//
// ThreadRole models "this state is owned by one thread" (the reactor loop,
// a node's protocol thread) as a capability without a lock. The owning
// thread Grant()s itself the role; functions touching owned state are
// annotated DSGM_REQUIRES(role). Closures that arrive over a
// std::function boundary (Reactor::Post, timers, fd handlers) cannot carry
// the static capability, so their bodies start with role.AssertHeld() —
// which both satisfies the analysis and, in !NDEBUG builds, verifies the
// calling thread really is the owner.

#ifndef DSGM_COMMON_MUTEX_H_
#define DSGM_COMMON_MUTEX_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/check.h"
#include "common/thread_annotations.h"

namespace dsgm {

class CondVar;

/// Annotated std::mutex. Prefer MutexLock for scoped acquisition; the bare
/// Lock/Unlock/TryLock exist for protocols that need them (double-buffer
/// try-then-block in the coordinator's snapshot path).
class DSGM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DSGM_ACQUIRE() { mu_.lock(); }
  void Unlock() DSGM_RELEASE() { mu_.unlock(); }
  bool TryLock() DSGM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped lock over a dsgm::Mutex. Supports mid-scope Unlock()/Lock() (both
/// visible to the analysis) for the "drop the lock around a blocking call"
/// pattern; the destructor releases only if currently held.
class DSGM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) DSGM_ACQUIRE(mu) : lock_(mu->mu_) {}

  /// Adopts a mutex the caller already locked (e.g. after Mutex::TryLock()).
  struct AdoptLock {};
  MutexLock(Mutex* mu, AdoptLock) DSGM_REQUIRES(mu)
      : lock_(mu->mu_, std::adopt_lock) {}

  ~MutexLock() DSGM_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Mid-scope release/reacquire; the destructor handles either state.
  void Unlock() DSGM_RELEASE() { lock_.unlock(); }
  void Lock() DSGM_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Annotated condition variable. Waits are not annotated (the lock is held
/// across them from the analysis's point of view, which matches reality at
/// both entry and exit); callers write explicit while-loops.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock* lock) { cv_.wait(lock->lock_); }

  /// Returns true on timeout, false when notified (possibly spuriously);
  /// either way the caller re-checks its condition in the enclosing loop.
  template <typename Rep, typename Period>
  bool WaitFor(MutexLock* lock,
               const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock->lock_, timeout) == std::cv_status::timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// A capability for single-owner-thread disciplines (the reactor loop, a
/// coordinator's protocol thread). Not a lock: Grant()/Yield() mark the
/// current thread as owner, and DSGM_REQUIRES(role) on a method means "only
/// the owner calls this". Closures crossing a std::function boundary begin
/// with AssertHeld(), which re-establishes the capability for the analysis
/// and — in !NDEBUG builds — verifies the caller really is the owner.
class DSGM_CAPABILITY("thread role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  /// The calling thread takes the role. The role must be free.
  void Grant() DSGM_ACQUIRE() {
#ifndef NDEBUG
    std::thread::id expected{};
    DSGM_CHECK(owner_.compare_exchange_strong(expected,
                                              std::this_thread::get_id()))
        << "ThreadRole granted while another thread holds it";
#endif
  }

  /// The owning thread gives the role up (so another thread — e.g. the
  /// object's owner after the loop stopped — may Grant() it).
  void Yield() DSGM_RELEASE() {
#ifndef NDEBUG
    std::thread::id self = std::this_thread::get_id();
    DSGM_CHECK(owner_.compare_exchange_strong(self, std::thread::id{}))
        << "ThreadRole yielded by a thread that does not hold it";
#endif
  }

  /// Asserts (statically and, in debug builds, dynamically) that the
  /// calling thread holds the role.
  void AssertHeld() const DSGM_ASSERT_CAPABILITY(this) {
#ifndef NDEBUG
    DSGM_CHECK(owner_.load(std::memory_order_relaxed) ==
               std::this_thread::get_id())
        << "called from a thread that does not hold the required role";
#endif
  }

 private:
#ifndef NDEBUG
  std::atomic<std::thread::id> owner_{};
#endif
};

}  // namespace dsgm

#endif  // DSGM_COMMON_MUTEX_H_
