// Lightweight CHECK macros for invariant enforcement.
//
// The project does not use C++ exceptions (see DESIGN.md); programmer errors
// and broken invariants abort the process with a diagnostic, while
// recoverable errors flow through Status/StatusOr (see common/status.h).

#ifndef DSGM_COMMON_CHECK_H_
#define DSGM_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace dsgm {
namespace internal {

/// Collects a diagnostic message via operator<< and aborts when destroyed.
/// Used only by the DSGM_CHECK family of macros below.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition;
  }

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dsgm

/// Aborts with a diagnostic unless `condition` holds. Extra context may be
/// streamed: DSGM_CHECK(x > 0) << "x was" << x;
#define DSGM_CHECK(condition)                                        \
  if (condition) {                                                   \
  } else                                                             \
    ::dsgm::internal::CheckFailure(__FILE__, __LINE__, #condition)

#define DSGM_CHECK_EQ(a, b) DSGM_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ")"
#define DSGM_CHECK_NE(a, b) DSGM_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ")"
#define DSGM_CHECK_LT(a, b) DSGM_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ")"
#define DSGM_CHECK_LE(a, b) DSGM_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ")"
#define DSGM_CHECK_GT(a, b) DSGM_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ")"
#define DSGM_CHECK_GE(a, b) DSGM_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ")"

/// Debug-only checks: compiled out in NDEBUG builds on hot paths.
#ifdef NDEBUG
#define DSGM_DCHECK(condition) \
  if (true) {                  \
  } else                       \
    ::dsgm::internal::CheckFailure(__FILE__, __LINE__, #condition)
#else
#define DSGM_DCHECK(condition) DSGM_CHECK(condition)
#endif

#endif  // DSGM_COMMON_CHECK_H_
