// Bounded blocking queue connecting cluster threads.

#ifndef DSGM_COMMON_QUEUE_H_
#define DSGM_COMMON_QUEUE_H_

#include <algorithm>
#include <deque>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dsgm {

namespace queue_internal {

// Process-wide backpressure instruments, bumped once per blocking EPISODE
// (not per wait-loop iteration) and only on the cold paths — the
// uncontended fast path never touches them.
inline Counter* ProducerBlocks() {
  static Counter* const c =
      MetricsRegistry::Global().GetCounter("common.queue.producer_blocks");
  return c;
}
inline Counter* ConsumerBlocks() {
  static Counter* const c =
      MetricsRegistry::Global().GetCounter("common.queue.consumer_blocks");
  return c;
}

}  // namespace queue_internal

/// Multi-producer multi-consumer bounded FIFO with close semantics:
/// after Close(), pushes fail and pops drain the remaining items then fail.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity = 4096) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full. Returns false iff the queue is closed.
  bool Push(T item) DSGM_EXCLUDES(mutex_) {
    {
      MutexLock lock(&mutex_);
      if (!closed_ && items_.size() >= capacity_) {
        queue_internal::ProducerBlocks()->Increment();
        while (!closed_ && items_.size() >= capacity_) not_full_.Wait(&lock);
      }
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Pushes a whole batch, chunking against the capacity bound: the queue
  /// never grows past `capacity`, and a batch larger than the remaining
  /// room waits for consumers between chunks. Items of one batch stay
  /// contiguous and in order, but other producers may interleave between
  /// chunks. Returns false iff closed (a close mid-batch drops the
  /// unpushed remainder; already-pushed chunks stay poppable).
  bool PushBatch(std::vector<T>&& batch) DSGM_EXCLUDES(mutex_) {
    if (batch.empty()) return true;
    MutexLock lock(&mutex_);
    size_t pushed = 0;
    while (pushed < batch.size()) {
      if (!closed_ && items_.size() >= capacity_) {
        queue_internal::ProducerBlocks()->Increment();
        while (!closed_ && items_.size() >= capacity_) not_full_.Wait(&lock);
      }
      if (closed_) return false;
      while (pushed < batch.size() && items_.size() < capacity_) {
        items_.push_back(std::move(batch[pushed++]));
      }
      // One waiter per chunk suffices: with multiple consumers parked, the
      // woken one re-arms the next (PopBatch/TryPopBatch notify not_empty_
      // again whenever items remain after their take), so MPMC liveness is
      // preserved by wakeup chaining instead of a notify_all storm on every
      // capacity-sized chunk.
      not_empty_.NotifyOne();
    }
    batch.clear();
    return true;
  }

  /// Blocks until at least one item or close. Appends up to `max_items` to
  /// `out` and returns the number appended (0 means closed and drained).
  size_t PopBatch(std::vector<T>* out, size_t max_items)
      DSGM_EXCLUDES(mutex_) {
    Take take;
    {
      MutexLock lock(&mutex_);
      if (!closed_ && items_.empty()) {
        queue_internal::ConsumerBlocks()->Increment();
        while (!closed_ && items_.empty()) not_empty_.Wait(&lock);
      }
      take = TakeLocked(out, max_items);
    }
    NotifyAfterTake(take);
    return take.count;
  }

  /// Non-blocking variant: appends whatever is immediately available.
  size_t TryPopBatch(std::vector<T>* out, size_t max_items)
      DSGM_EXCLUDES(mutex_) {
    Take take;
    {
      MutexLock lock(&mutex_);
      take = TakeLocked(out, max_items);
    }
    NotifyAfterTake(take);
    return take.count;
  }

  void Close() DSGM_EXCLUDES(mutex_) {
    {
      MutexLock lock(&mutex_);
      closed_ = true;
    }
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  bool closed() const DSGM_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return closed_;
  }

  /// Momentary item count (for tests and introspection; racy by nature).
  size_t size() const DSGM_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return items_.size();
  }

 private:
  struct Take {
    size_t count = 0;
    bool items_remain = false;
  };

  Take TakeLocked(std::vector<T>* out, size_t max_items)
      DSGM_REQUIRES(mutex_) {
    Take take;
    take.count = std::min(max_items, items_.size());
    for (size_t i = 0; i < take.count; ++i) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    take.items_remain = !items_.empty();
    return take;
  }

  void NotifyAfterTake(const Take& take) {
    if (take.count == 0) return;
    not_full_.NotifyAll();
    // The chaining half of PushBatch's single-notify: if this consumer
    // left items behind, re-arm one more parked consumer.
    if (take.items_remain) not_empty_.NotifyOne();
  }

  mutable Mutex mutex_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ DSGM_GUARDED_BY(mutex_);
  size_t capacity_;
  bool closed_ DSGM_GUARDED_BY(mutex_) = false;
};

}  // namespace dsgm

#endif  // DSGM_COMMON_QUEUE_H_
