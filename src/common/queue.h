// Bounded blocking queue connecting cluster threads.

#ifndef DSGM_COMMON_QUEUE_H_
#define DSGM_COMMON_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

namespace dsgm {

/// Multi-producer multi-consumer bounded FIFO with close semantics:
/// after Close(), pushes fail and pops drain the remaining items then fail.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity = 4096) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full. Returns false iff the queue is closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Pushes a whole batch, chunking against the capacity bound: the queue
  /// never grows past `capacity`, and a batch larger than the remaining
  /// room waits for consumers between chunks. Items of one batch stay
  /// contiguous and in order, but other producers may interleave between
  /// chunks. Returns false iff closed (a close mid-batch drops the
  /// unpushed remainder; already-pushed chunks stay poppable).
  bool PushBatch(std::vector<T>&& batch) {
    if (batch.empty()) return true;
    std::unique_lock<std::mutex> lock(mutex_);
    size_t pushed = 0;
    while (pushed < batch.size()) {
      not_full_.wait(lock, [this] { return closed_ || items_.size() < capacity_; });
      if (closed_) return false;
      while (pushed < batch.size() && items_.size() < capacity_) {
        items_.push_back(std::move(batch[pushed++]));
      }
      // One waiter per chunk suffices: with multiple consumers parked, the
      // woken one re-arms the next (PopBatch/TryPopBatch notify not_empty_
      // again whenever items remain after their take), so MPMC liveness is
      // preserved by wakeup chaining instead of a notify_all storm on every
      // capacity-sized chunk.
      not_empty_.notify_one();
    }
    batch.clear();
    return true;
  }

  /// Blocks until at least one item or close. Appends up to `max_items` to
  /// `out` and returns the number appended (0 means closed and drained).
  size_t PopBatch(std::vector<T>* out, size_t max_items) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    return TakeLocked(out, max_items, &lock);
  }

  /// Non-blocking variant: appends whatever is immediately available.
  size_t TryPopBatch(std::vector<T>* out, size_t max_items) {
    std::unique_lock<std::mutex> lock(mutex_);
    return TakeLocked(out, max_items, &lock);
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Momentary item count (for tests and introspection; racy by nature).
  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  size_t TakeLocked(std::vector<T>* out, size_t max_items,
                    std::unique_lock<std::mutex>* lock) {
    const size_t take = std::min(max_items, items_.size());
    for (size_t i = 0; i < take; ++i) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    const bool items_remain = !items_.empty();
    lock->unlock();
    if (take > 0) {
      not_full_.notify_all();
      // The chaining half of PushBatch's single-notify: if this consumer
      // left items behind, re-arm one more parked consumer.
      if (items_remain) not_empty_.notify_one();
    }
    return take;
  }

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  size_t capacity_;
  bool closed_ = false;
};

}  // namespace dsgm

#endif  // DSGM_COMMON_QUEUE_H_
