#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace dsgm {

double Rng::NextGaussian() {
  // Polar method; loop terminates with probability 1.
  while (true) {
    const double u = 2.0 * NextDouble() - 1.0;
    const double v = 2.0 * NextDouble() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Rng::NextGamma(double shape) {
  DSGM_CHECK(shape > 0.0) << "gamma shape must be positive, got" << shape;
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia-Tsang trick).
    const double u = NextDouble();
    return NextGamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = NextGaussian();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

std::vector<double> Rng::NextDirichlet(int dim, double alpha) {
  DSGM_CHECK(dim > 0);
  std::vector<double> sample(static_cast<size_t>(dim));
  double total = 0.0;
  for (double& value : sample) {
    value = NextGamma(alpha);
    total += value;
  }
  if (total <= 0.0) {
    // Numerically possible for tiny alpha: fall back to a one-hot vector.
    std::fill(sample.begin(), sample.end(), 0.0);
    sample[NextBounded(static_cast<uint64_t>(dim))] = 1.0;
    return sample;
  }
  for (double& value : sample) value /= total;
  return sample;
}

int Rng::NextCategorical(const std::vector<double>& weights) {
  DSGM_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    DSGM_DCHECK(w >= 0.0);
    total += w;
  }
  DSGM_CHECK(total > 0.0) << "categorical weights sum to zero";
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

ZipfDistribution::ZipfDistribution(int n, double exponent) {
  DSGM_CHECK(n > 0);
  cdf_.resize(static_cast<size_t>(n));
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[static_cast<size_t>(i)] = total;
  }
  for (double& value : cdf_) value /= total;
}

int ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int>(std::min<size_t>(
      static_cast<size_t>(it - cdf_.begin()), cdf_.size() - 1));
}

}  // namespace dsgm
