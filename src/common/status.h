// Error propagation without exceptions: Status and StatusOr<T>.
//
// Follows the conventions of absl::Status in miniature. Functions that can
// fail for reasons outside the programmer's control (parsing, I/O,
// infeasible generator specs) return Status or StatusOr<T>; broken
// invariants use DSGM_CHECK instead.

#ifndef DSGM_COMMON_STATUS_H_
#define DSGM_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

#include "common/check.h"

namespace dsgm {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kOutOfRange = 4,
  kInternal = 5,
  kUnimplemented = 6,
  kUnavailable = 7,
};

/// Returns the canonical spelling of a status code, e.g. "INVALID_ARGUMENT".
const char* StatusCodeToString(StatusCode code);

/// Value-semantic result of an operation: either OK or a code plus message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "CODE: message".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);
Status UnavailableError(std::string message);

/// Either a value of type T or a non-OK Status explaining why there is none.
///
/// Usage:
///   StatusOr<BayesianNetwork> net = ParseNetwork(text);
///   if (!net.ok()) return net.status();
///   Use(net.value());
template <typename T>
class StatusOr {
 public:
  /// Implicit from a value: the common success path reads naturally
  /// (`return my_network;`).
  StatusOr(T value) : status_(), value_(std::move(value)) {}

  /// Implicit from a non-OK status: `return InvalidArgumentError(...)`.
  StatusOr(Status status) : status_(std::move(status)) {
    DSGM_CHECK(!status_.ok()) << "StatusOr constructed from OK status without a value";
  }

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DSGM_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    DSGM_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    DSGM_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace dsgm

/// Propagates a non-OK status to the caller.
#define DSGM_RETURN_IF_ERROR(expr)               \
  do {                                           \
    ::dsgm::Status dsgm_status_ = (expr);        \
    if (!dsgm_status_.ok()) return dsgm_status_; \
  } while (false)

#endif  // DSGM_COMMON_STATUS_H_
