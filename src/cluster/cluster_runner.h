// Orchestration of the threaded cluster experiment (paper Figs. 7-8).

#ifndef DSGM_CLUSTER_CLUSTER_RUNNER_H_
#define DSGM_CLUSTER_CLUSTER_RUNNER_H_

#include <cstdint>

#include "bayes/network.h"
#include "core/tracker_config.h"
#include "monitor/comm_stats.h"

namespace dsgm {

/// Configuration of one cluster run.
struct ClusterConfig {
  TrackerConfig tracker;  // strategy, epsilon, num_sites, seed
  int64_t num_events = 100000;
  /// Events handed to a site per dispatch batch.
  int batch_size = 256;
};

/// Measurements of one cluster run.
struct ClusterResult {
  /// Wall-clock seconds from the first to the last message the coordinator
  /// received (the paper's runtime metric).
  double runtime_seconds = 0.0;
  /// End-to-end wall-clock of the whole run including setup.
  double wall_seconds = 0.0;
  /// num_events / runtime_seconds (the paper's throughput metric).
  double throughput_events_per_sec = 0.0;
  CommStats comm;
  int64_t events_processed = 0;
  /// Validation: max relative error of coordinator estimates against the
  /// summed site-local exact counts, over counters with exact total >= 64.
  double max_counter_rel_error = 0.0;
};

/// Spawns one thread per site plus a coordinator thread, streams
/// `num_events` instances sampled from `network`'s ground truth to uniformly
/// random sites, and reports timing/communication. Deterministic in
/// `config.tracker.seed` up to thread scheduling (which only affects timing).
ClusterResult RunCluster(const BayesianNetwork& network, const ClusterConfig& config);

}  // namespace dsgm

#endif  // DSGM_CLUSTER_CLUSTER_RUNNER_H_
