// Shared result/config types and protocol-side helpers of the cluster
// drivers. The orchestration itself lives behind the public Session API
// (include/dsgm/session.h, Backend::kThreads / kLocalTcp); the old
// free-function entry points (RunCluster, RunRemoteCoordinator) are gone —
// build a Session instead.

#ifndef DSGM_CLUSTER_CLUSTER_RUNNER_H_
#define DSGM_CLUSTER_CLUSTER_RUNNER_H_

#include <cstdint>
#include <vector>

#include "bayes/network.h"
#include "core/tracker_config.h"
#include "monitor/comm_stats.h"
#include "net/cluster_transport.h"

namespace dsgm {

/// Configuration of one cluster run.
struct ClusterConfig {
  TrackerConfig tracker;  // strategy, epsilon, num_sites, seed
  int64_t num_events = 100000;
  /// Events handed to a site per dispatch batch.
  int batch_size = 256;
  /// Builds the plumbing between coordinator and sites. Empty means the
  /// in-process loopback (the pre-transport behavior); pass
  /// MakeLocalTcpTransport to run the same threads over real sockets.
  TransportFactory transport;
};

/// Measurements of one cluster run.
struct ClusterResult {
  /// Wall-clock seconds from the first to the last message the coordinator
  /// received (the paper's runtime metric).
  double runtime_seconds = 0.0;
  /// End-to-end wall-clock of the whole run including setup.
  double wall_seconds = 0.0;
  /// num_events / runtime_seconds (the paper's throughput metric).
  double throughput_events_per_sec = 0.0;
  CommStats comm;
  int64_t events_processed = 0;
  /// Validation: max relative error of coordinator estimates against the
  /// summed site-local exact counts, over counters with exact total >= 64.
  double max_counter_rel_error = 0.0;
  /// Wire bytes actually observed by the transport (framing included).
  /// Zero with transport_measured == false on loopback, which moves no
  /// bytes; CommStats keeps the protocol-level estimate either way.
  uint64_t transport_bytes_up = 0;
  uint64_t transport_bytes_down = 0;
  bool transport_measured = false;
};

/// Per-counter epsilons in the MleTracker counter layout for the given
/// strategy, or empty for exact mode. Shared by the in-process and remote
/// (multi-process) coordinator drivers.
std::vector<float> LayoutEpsilons(const BayesianNetwork& network,
                                  const TrackerConfig& config);

class CoordinatorNode;

/// Fills the protocol-side measurements both drivers share once the
/// coordinator finished: comm stats, runtime (the paper's first-to-last
/// message definition), throughput from result->events_processed (which
/// the caller sets beforehand), and the validation metric — max relative
/// error of the coordinator's estimates against `exact_totals`, skipping
/// counters whose exact total is below 64 (noise-dominated).
void FinalizeClusterResult(const CoordinatorNode& coordinator,
                           const std::vector<uint64_t>& exact_totals,
                           ClusterResult* result);

}  // namespace dsgm

#endif  // DSGM_CLUSTER_CLUSTER_RUNNER_H_
