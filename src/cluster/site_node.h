// Site-side logic of the threaded cluster.

#ifndef DSGM_CLUSTER_SITE_NODE_H_
#define DSGM_CLUSTER_SITE_NODE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "bayes/network.h"
#include "core/counter_layout.h"
#include "net/wire.h"
#include "common/rng.h"
#include "net/channel.h"

namespace dsgm {

/// One remote site: consumes its event stream, keeps cumulative local
/// counts for every counter, makes the Bernoulli reporting decisions, and
/// answers round advances with exact sync replies.
///
/// Counter ids use the MleTracker layout (joint counters first, then parent
/// counters); the structural metadata needed to map an instance to counter
/// ids is precomputed at construction.
///
/// Concurrency contract: a SiteNode is single-threaded by construction —
/// every member is touched only by the thread running Run() (cross-thread
/// traffic flows through the Channels, which carry their own locks), so
/// there is no mutex and nothing to annotate. The one exception is the
/// stats block below: relaxed atomics written only by the Run() thread and
/// readable live by an observer thread (the heartbeat sender piggybacking
/// kStatsReport frames, or an in-process health board). local_counts() is
/// still for AFTER the thread joined.
class SiteNode {
 public:
  SiteNode(int site_id, const BayesianNetwork& network, uint64_t seed,
           Channel<EventBatch>* events, Channel<RoundAdvance>* commands,
           Channel<UpdateBundle>* to_coordinator);

  /// Thread body: runs until the event queue closes and drains, then keeps
  /// serving round advances until the command queue closes.
  void Run();

  int64_t events_processed() const {
    return events_processed_.load(std::memory_order_relaxed);
  }

  /// Cumulative protocol stats, safe to sample while Run() is live. The
  /// fields are sampled independently (no cross-field snapshot), which is
  /// fine for monitoring: each is monotone.
  SiteStatsReport StatsReport() const {
    SiteStatsReport report;
    report.site = site_id_;
    report.events_processed = events_processed_.load(std::memory_order_relaxed);
    report.updates_sent = updates_sent_.load(std::memory_order_relaxed);
    report.syncs_sent = syncs_sent_.load(std::memory_order_relaxed);
    report.rounds_seen = rounds_seen_.load(std::memory_order_relaxed);
    return report;
  }

  /// Exact cumulative local counts; read only after the thread has joined
  /// (used by the runner to validate coordinator estimates).
  const std::vector<uint32_t>& local_counts() const { return local_counts_; }

 private:
  /// Pop-batch bounds of the two consume loops (also the reserve sizes of
  /// the reused buffers below).
  static constexpr size_t kEventPopBatch = 4;
  static constexpr size_t kCommandPopBatch = 256;

  void ProcessEvent(const int32_t* values);
  void DrainCommands(bool block_until_closed);

  int site_id_;
  const BayesianNetwork* network_;
  Rng rng_;
  Channel<EventBatch>* events_;
  Channel<RoundAdvance>* commands_;
  Channel<UpdateBundle>* to_coordinator_;

  // Structure metadata (the canonical MleTracker counter flattening).
  CounterLayout layout_;

  // Per-counter site state.
  std::vector<uint32_t> local_counts_;
  std::vector<float> probs_;

  std::vector<CounterReport> outbox_;
  std::vector<RoundAdvance> command_buffer_;

  // Live stats: single writer (the Run() thread), any reader, relaxed.
  std::atomic<int64_t> events_processed_{0};
  std::atomic<uint64_t> updates_sent_{0};
  std::atomic<uint64_t> syncs_sent_{0};
  std::atomic<uint64_t> rounds_seen_{0};  // Highest round id answered.
};

}  // namespace dsgm

#endif  // DSGM_CLUSTER_SITE_NODE_H_
