// Coordinator-side logic of the threaded cluster.

#ifndef DSGM_CLUSTER_COORDINATOR_NODE_H_
#define DSGM_CLUSTER_COORDINATOR_NODE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "net/wire.h"
#include "net/channel.h"
#include "monitor/comm_stats.h"

namespace dsgm {

/// The coordinator thread: consumes update bundles from all sites, maintains
/// the per-counter estimates with the unbiased last-report estimator, and
/// drives round advances. Asynchrony is handled by cumulative-count
/// semantics (stale messages are max()-ed away) and by a per-counter
/// "sync pending" gate that defers further advances until every site has
/// acknowledged the current round.
class CoordinatorNode {
 public:
  /// `epsilons` follows the MleTracker counter layout; empty means exact
  /// mode (reporting probability pinned to 1, no rounds). `commands[s]` is
  /// site s's command queue.
  CoordinatorNode(std::vector<float> epsilons, int64_t num_counters, int num_sites,
                  double probability_constant,
                  Channel<UpdateBundle>* from_sites,
                  std::vector<Channel<RoundAdvance>*> commands);

  /// Thread body: runs until every site reported done and no sync replies
  /// are outstanding, then closes the command queues.
  void Run();

  /// Post-join accessors: valid once Run() has returned (the joining thread
  /// synchronizes with the coordinator thread). For queries while Run() is
  /// still live on another thread, use SnapshotState().
  const CommStats& comm() const { return comm_; }
  double Estimate(int64_t counter) const {
    return estimates_[static_cast<size_t>(counter)];
  }
  int64_t num_counters() const { return num_counters_; }

  /// Thread-safe mid-run snapshot — the coordinator-side half of the
  /// paper's Algorithm 3 QUERY: copies the current per-counter estimates
  /// (and, when `comm` is non-null, the communication stats) while Run()
  /// keeps consuming updates on its own thread. Consistent at bundle-batch
  /// granularity: Run() applies each popped batch under the same lock.
  void SnapshotState(std::vector<double>* estimates, CommStats* comm) const;

  /// Thread-safe outstanding-sync cancellation for a site declared dead by
  /// the transport's liveness protocol: marks the site done and forgives
  /// every sync reply it still owes, so Run()'s exit condition can settle
  /// instead of waiting forever on a peer that will never answer. Future
  /// round advances skip the site. Idempotent.
  void CancelSite(int site);

  /// Seconds between the first and the last message the coordinator
  /// received — the paper's Fig. 7 "total runtime" definition.
  double ActiveSeconds() const;

 private:
  void OnReport(int site, const CounterReport& report);
  void OnSync(int site, const CounterReport& report);
  void MaybeAdvance(int64_t counter);
  /// Current per-site estimate contribution of a cell.
  double SiteEstimate(size_t cell, double p) const;

  int64_t num_counters_;
  int num_sites_;
  double safety_;
  bool exact_mode_;
  Channel<UpdateBundle>* from_sites_;
  std::vector<Channel<RoundAdvance>*> commands_;

  // Coordinator protocol state (see monitor/approx_counter.h).
  std::vector<float> epsilons_;
  std::vector<float> probs_;
  std::vector<double> estimates_;
  std::vector<double> thresholds_;
  std::vector<uint8_t> rounds_;
  std::vector<uint8_t> sync_pending_;   // outstanding sync replies per counter
  std::vector<uint32_t> sync_counts_;   // [counter * k + site]
  std::vector<uint32_t> best_reports_;  // [counter * k + site]
  std::vector<uint8_t> sync_owed_;      // [counter * k + site]: reply pending
  std::vector<uint8_t> site_done_;      // which sites reported kSiteDone
  std::vector<uint8_t> site_dead_;      // sites cancelled via CancelSite

  int done_sites_ = 0;
  int dead_sites_ = 0;
  int64_t outstanding_syncs_ = 0;
  CommStats comm_;
  /// Guards estimates_/comm_ (and the protocol state mutated alongside
  /// them) between Run()'s batch processing and SnapshotState() callers.
  mutable std::mutex mu_;

  using Clock = std::chrono::steady_clock;
  Clock::time_point first_message_;
  Clock::time_point last_message_;
  bool saw_message_ = false;
};

}  // namespace dsgm

#endif  // DSGM_CLUSTER_COORDINATOR_NODE_H_
