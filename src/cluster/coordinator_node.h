// Coordinator-side logic of the threaded cluster.

#ifndef DSGM_CLUSTER_COORDINATOR_NODE_H_
#define DSGM_CLUSTER_COORDINATOR_NODE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "net/wire.h"
#include "net/channel.h"
#include "monitor/comm_stats.h"

namespace dsgm {

/// The coordinator thread: consumes update bundles from all sites, maintains
/// the per-counter estimates with the unbiased last-report estimator, and
/// drives round advances. Asynchrony is handled by cumulative-count
/// semantics (stale messages are max()-ed away) and by a per-counter
/// "sync pending" gate that defers further advances until every site has
/// acknowledged the current round.
class CoordinatorNode {
 public:
  /// `epsilons` follows the MleTracker counter layout; empty means exact
  /// mode (reporting probability pinned to 1, no rounds). `commands[s]` is
  /// site s's command queue.
  CoordinatorNode(std::vector<float> epsilons, int64_t num_counters, int num_sites,
                  double probability_constant,
                  Channel<UpdateBundle>* from_sites,
                  std::vector<Channel<RoundAdvance>*> commands);

  /// Thread body: runs until every site reported done and no sync replies
  /// are outstanding, then closes the command queues.
  void Run() DSGM_EXCLUDES(mu_);

  /// Authoritative-state accessors, safe at any time (they take the
  /// protocol lock). For high-rate mid-run polling prefer SnapshotState(),
  /// which reads the published buffers and never contends with Run().
  CommStats comm() const DSGM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return comm_;
  }
  double Estimate(int64_t counter) const DSGM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return estimates_[static_cast<size_t>(counter)];
  }
  int64_t num_counters() const { return num_counters_; }

  /// Thread-safe mid-run snapshot — the coordinator-side half of the
  /// paper's Algorithm 3 QUERY: copies the latest PUBLISHED estimates (and,
  /// when `comm` is non-null, the communication stats) while Run() keeps
  /// consuming updates on its own thread.
  ///
  /// Publication is double-buffered and activates on the first query (a
  /// run that never snapshots pays nothing on the update path): Run()
  /// periodically writes the cells touched since a buffer's last publish
  /// into the inactive buffer — O(touched cells), not O(counters) — and
  /// flips an epoch-style front index; it also publishes right before
  /// blocking on an empty queue, so snapshots of a quiet stream are exact.
  /// Readers copy the front buffer under that buffer's own mutex; the
  /// writer only try_locks the back buffer and defers a publish (keeping
  /// the cells dirty) when a laggard reader still holds it. In steady
  /// state Run() therefore NEVER blocks on snapshot readers, no matter how
  /// fast they poll (only the activating queries, before the first publish
  /// lands, are served from the live state under the protocol lock), and a
  /// snapshot is consistent at bundle-batch granularity — at most a few
  /// batches behind the live state while the stream is hot.
  void SnapshotState(std::vector<double>* estimates, CommStats* comm) const
      DSGM_EXCLUDES(mu_);

  /// Thread-safe outstanding-sync cancellation for a site declared dead by
  /// the transport's liveness protocol: marks the site done and forgives
  /// every sync reply it still owes, so Run()'s exit condition can settle
  /// instead of waiting forever on a peer that will never answer. Future
  /// round advances skip the site. Idempotent.
  void CancelSite(int site) DSGM_EXCLUDES(mu_);

  /// Seconds between the first and the last message the coordinator
  /// received — the paper's Fig. 7 "total runtime" definition.
  double ActiveSeconds() const DSGM_EXCLUDES(mu_);

 private:
  void OnReport(int site, const CounterReport& report) DSGM_REQUIRES(mu_);
  void OnSync(int site, const CounterReport& report) DSGM_REQUIRES(mu_);
  void MaybeAdvance(int64_t counter) DSGM_REQUIRES(mu_);
  /// Current per-site estimate contribution of a cell.
  double SiteEstimate(size_t cell, double p) const DSGM_REQUIRES(mu_);
  /// Records that estimates_[counter] changed since each buffer's last
  /// publish (deduplicated per buffer via dirty bits). No-op until the
  /// first query activates publication, so runs nobody queries pay nothing
  /// on the report path.
  void TouchEstimate(size_t counter) DSGM_REQUIRES(mu_);
  /// Starts dirty tracking after the first query: marks every cell pending
  /// once (the catch-up publish is one full copy, like a single pre-PR5
  /// snapshot), after which publishes are incremental.
  void ActivatePublication() DSGM_REQUIRES(mu_);
  /// The per-batch publish decision: no-op in state 0; immediate publish
  /// on activation (state 1) or when `force` or the cadence counter says
  /// so.
  void MaybePublish(bool force) DSGM_REQUIRES(mu_);
  /// Publishes the dirty cells + comm stats into the back buffer and flips
  /// the front index; returns whether it published. With `wait` false
  /// (cadence publishes), a reader holding the back buffer defers the
  /// publish — the caller must keep the cells dirty and retry; with `wait`
  /// true (pre-block and Run exit), waits out the reader's bounded copy so
  /// the published state is current whenever Run goes quiet.
  bool PublishSnapshot(bool wait) DSGM_REQUIRES(mu_);

  int64_t num_counters_;
  int num_sites_;
  double safety_;
  bool exact_mode_;
  Channel<UpdateBundle>* from_sites_;
  std::vector<Channel<RoundAdvance>*> commands_;

  /// Guards every piece of protocol and estimate state below: Run()'s
  /// batch processing, CancelSite (called from the transport's liveness
  /// thread mid-run), and the authoritative accessors (comm/Estimate/
  /// ActiveSeconds/the pre-publication SnapshotState path). Steady-state
  /// snapshot readers do NOT take it — they read the published buffers.
  /// Lock order: mu_ before a published_[i].mu (Run publishes while
  /// holding mu_); readers take exactly one of the two, never both.
  mutable Mutex mu_;

  // Coordinator protocol state (see monitor/approx_counter.h).
  std::vector<float> epsilons_ DSGM_GUARDED_BY(mu_);
  std::vector<float> probs_ DSGM_GUARDED_BY(mu_);
  std::vector<double> estimates_ DSGM_GUARDED_BY(mu_);
  std::vector<double> thresholds_ DSGM_GUARDED_BY(mu_);
  std::vector<uint8_t> rounds_ DSGM_GUARDED_BY(mu_);
  // outstanding sync replies per counter
  std::vector<uint8_t> sync_pending_ DSGM_GUARDED_BY(mu_);
  std::vector<uint32_t> sync_counts_ DSGM_GUARDED_BY(mu_);   // [counter*k+site]
  std::vector<uint32_t> best_reports_ DSGM_GUARDED_BY(mu_);  // [counter*k+site]
  // [counter * k + site]: reply pending
  std::vector<uint8_t> sync_owed_ DSGM_GUARDED_BY(mu_);
  // which sites reported kSiteDone
  std::vector<uint8_t> site_done_ DSGM_GUARDED_BY(mu_);
  // sites cancelled via CancelSite
  std::vector<uint8_t> site_dead_ DSGM_GUARDED_BY(mu_);

  int done_sites_ DSGM_GUARDED_BY(mu_) = 0;
  int dead_sites_ DSGM_GUARDED_BY(mu_) = 0;
  int64_t outstanding_syncs_ DSGM_GUARDED_BY(mu_) = 0;
  CommStats comm_ DSGM_GUARDED_BY(mu_);

  // --- Double-buffered snapshot publication ------------------------------
  // estimates_/comm_ are written only by the Run thread; steady-state
  // readers see them through these published copies (see SnapshotState's
  // contract).
  struct PublishedState {
    Mutex mu;
    std::vector<double> estimates DSGM_GUARDED_BY(mu);
    CommStats comm DSGM_GUARDED_BY(mu);
  };
  mutable PublishedState published_[2];
  std::atomic<int> published_front_{0};
  /// 0 = no query yet (Run skips publishing entirely); 1 = a query arrived,
  /// Run publishes at the next opportunity; 2 = published state is live,
  /// readers use the buffers. Monotone 0 -> 1 -> 2.
  mutable std::atomic<int> publish_state_{0};
  /// Bit b set: the cell is pending publication into buffer b.
  std::vector<uint8_t> publish_dirty_ DSGM_GUARDED_BY(mu_);
  std::vector<int64_t> publish_pending_[2] DSGM_GUARDED_BY(mu_);
  /// Run-thread mirror of "publication is on" (avoids an atomic load per
  /// report) plus the publish cadence counter.
  bool publish_tracking_ DSGM_GUARDED_BY(mu_) = false;
  int batches_since_publish_ DSGM_GUARDED_BY(mu_) = 0;

  // The annotation pass flagged these three: they were written by Run()
  // outside any lock while ActiveSeconds() read them bare — benign for
  // post-join callers, a data race for mid-run ones. Guarded now.
  // Monotonic NowNanos() timestamps (common/timer.h).
  int64_t first_message_nanos_ DSGM_GUARDED_BY(mu_) = 0;
  int64_t last_message_nanos_ DSGM_GUARDED_BY(mu_) = 0;
  bool saw_message_ DSGM_GUARDED_BY(mu_) = false;

  // Shared process-wide instruments (common/metrics.h). Updated at batch /
  // publish granularity only — never per report — so instrumentation cost
  // stays invisible next to the protocol work. Comm gauges mirror comm_
  // (satellite of the same registry snapshot a dump or bench embeds).
  Counter* const rounds_advanced_metric_;
  Counter* const publishes_metric_;
  Counter* const publish_deferred_metric_;
  Histogram* const publish_ns_metric_;
  Gauge* const outstanding_syncs_gauge_;
  Gauge* const bytes_up_gauge_;
  Gauge* const bytes_down_gauge_;
  Gauge* const wire_messages_gauge_;
  Gauge* const update_messages_gauge_;
  Gauge* const sync_messages_gauge_;
  Gauge* const broadcast_messages_gauge_;
};

}  // namespace dsgm

#endif  // DSGM_CLUSTER_COORDINATOR_NODE_H_
