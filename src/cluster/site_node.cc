#include "cluster/site_node.h"

#include "common/check.h"

namespace dsgm {

SiteNode::SiteNode(int site_id, const BayesianNetwork& network, uint64_t seed,
                   Channel<EventBatch>* events, Channel<RoundAdvance>* commands,
                   Channel<UpdateBundle>* to_coordinator)
    : site_id_(site_id),
      network_(&network),
      rng_(seed),
      events_(events),
      commands_(commands),
      to_coordinator_(to_coordinator),
      layout_(network) {
  local_counts_.assign(static_cast<size_t>(layout_.total_counters()), 0);
  probs_.assign(static_cast<size_t>(layout_.total_counters()), 1.0f);
  // Hot-path buffers sized once: an event reports at most two counters per
  // variable, and DrainCommands pops at most kCommandPopBatch commands.
  outbox_.reserve(2 * static_cast<size_t>(layout_.num_vars));
  command_buffer_.reserve(kCommandPopBatch);
}

void SiteNode::ProcessEvent(const int32_t* values) {
  outbox_.clear();
  auto increment = [this](int64_t counter) {
    const uint32_t local = ++local_counts_[static_cast<size_t>(counter)];
    const float p = probs_[static_cast<size_t>(counter)];
    if (p >= 1.0f || rng_.NextBernoulli(p)) {
      outbox_.push_back(CounterReport{counter, local});
    }
  };
  for (int i = 0; i < layout_.num_vars; ++i) {
    const int64_t row = layout_.ParentRowOf(i, values);
    increment(layout_.JointId(i, row, values[i]));
    increment(layout_.ParentId(i, row));
  }
  events_processed_.fetch_add(1, std::memory_order_relaxed);
  if (!outbox_.empty()) {
    UpdateBundle bundle;
    bundle.kind = UpdateBundle::Kind::kReports;
    bundle.site = site_id_;
    bundle.reports = outbox_;
    to_coordinator_->Push(std::move(bundle));
    updates_sent_.fetch_add(1, std::memory_order_relaxed);
  }
}

void SiteNode::DrainCommands(bool block_until_closed) {
  std::vector<RoundAdvance>& commands = command_buffer_;
  while (true) {
    commands.clear();
    size_t got = block_until_closed
                     ? commands_->PopBatch(&commands, kCommandPopBatch)
                     : commands_->TryPopBatch(&commands, kCommandPopBatch);
    if (got == 0) {
      // Blocking mode: queue closed and drained. Non-blocking: nothing now.
      return;
    }
    UpdateBundle sync;
    sync.kind = UpdateBundle::Kind::kSync;
    sync.site = site_id_;
    for (const RoundAdvance& advance : commands) {
      // Commands can arrive from a real network peer; reject out-of-range
      // counter ids before indexing.
      if (advance.counter < 0 ||
          advance.counter >= static_cast<int64_t>(probs_.size())) {
        continue;
      }
      probs_[static_cast<size_t>(advance.counter)] = advance.probability;
      sync.round = advance.round;
      sync.reports.push_back(CounterReport{
          advance.counter, local_counts_[static_cast<size_t>(advance.counter)]});
      if (advance.round > 0 &&
          static_cast<uint64_t>(advance.round) >
              rounds_seen_.load(std::memory_order_relaxed)) {
        rounds_seen_.store(static_cast<uint64_t>(advance.round),
                           std::memory_order_relaxed);
      }
    }
    if (sync.reports.empty()) {
      if (!block_until_closed) return;
      continue;
    }
    to_coordinator_->Push(std::move(sync));
    syncs_sent_.fetch_add(1, std::memory_order_relaxed);
    if (!block_until_closed) return;
  }
}

void SiteNode::Run() {
  std::vector<EventBatch> batches;
  batches.reserve(kEventPopBatch);
  while (true) {
    batches.clear();
    const size_t got = events_->PopBatch(&batches, kEventPopBatch);
    if (got == 0) break;  // Stream finished.
    for (const EventBatch& batch : batches) {
      const int32_t* cursor = batch.values.data();
      for (int32_t e = 0; e < batch.num_events; ++e) {
        ProcessEvent(cursor);
        cursor += layout_.num_vars;
      }
    }
    DrainCommands(/*block_until_closed=*/false);
  }
  UpdateBundle done;
  done.kind = UpdateBundle::Kind::kSiteDone;
  done.site = site_id_;
  to_coordinator_->Push(std::move(done));
  // Keep answering round advances until the coordinator closes our queue.
  DrainCommands(/*block_until_closed=*/true);
}

}  // namespace dsgm
