// The multi-process cluster roles: one coordinator process and k site
// processes talking localhost (or LAN) TCP through net/.
//
//   RunRemoteSite — the site side: connects (with retry while the
//     coordinator boots), announces its site id and protocol version, runs
//     the SiteNode, then reports final counts. The public ServeSite()
//     (include/dsgm/site_service.h) is a thin alias over this.
//   RunRemoteCoordinator — DEPRECATED coordinator-side wrapper over the
//     Session API (Backend::kLocalTcp + WithExternalSites); defined in the
//     dsgm_api library. New code should build a Session — it can
//     additionally query the model mid-run.

#ifndef DSGM_CLUSTER_REMOTE_RUNNER_H_
#define DSGM_CLUSTER_REMOTE_RUNNER_H_

#include <cstdint>
#include <string>

#include "bayes/network.h"
#include "cluster/cluster_runner.h"
#include "common/status.h"

namespace dsgm {

struct RemoteCoordinatorConfig {
  /// Strategy, epsilon, num_sites (= number of site processes expected),
  /// seed, num_events, batch_size. The transport field is ignored; the
  /// coordinator always serves TCP.
  ClusterConfig cluster;
  /// Port to listen on; 0 picks an ephemeral port.
  int port = 0;
  /// When non-empty, the bound port is written here (atomically, via
  /// rename) once the coordinator is accepting — lets scripts start site
  /// processes without guessing ports.
  std::string port_file;
};

/// Serves one full cluster run. Blocks until all sites finished and
/// reported their final counts. `result.events_processed` is the number of
/// events dispatched (the sites are remote; their processed totals arrive
/// only via the validation counts).
StatusOr<ClusterResult> RunRemoteCoordinator(const BayesianNetwork& network,
                                             const RemoteCoordinatorConfig& config);

struct RemoteSiteConfig {
  int site_id = 0;
  std::string host = "127.0.0.1";
  int port = 0;
  /// Seed for the site's Bernoulli reporting decisions.
  uint64_t seed = 7;
  /// How long to keep retrying the initial connect while the coordinator
  /// is still starting up.
  int connect_timeout_ms = 10000;
};

struct RemoteSiteResult {
  int64_t events_processed = 0;
};

/// Runs one site process's lifetime against a remote coordinator.
StatusOr<RemoteSiteResult> RunRemoteSite(const BayesianNetwork& network,
                                         const RemoteSiteConfig& config);

}  // namespace dsgm

#endif  // DSGM_CLUSTER_REMOTE_RUNNER_H_
