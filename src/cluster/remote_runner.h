// The multi-process cluster roles: one coordinator process and k site
// processes talking localhost (or LAN) TCP through net/.
//
//   RunRemoteSite — the site side: connects (with retry while the
//     coordinator boots), announces its site id and protocol version, runs
//     the SiteNode while a background thread sends kHeartbeat liveness
//     beacons, then reports final counts and lingers until the coordinator
//     closes the connection. The public ServeSite()
//     (include/dsgm/site_service.h) is a thin alias over this.
//
// The coordinator side is the Session API (Backend::kLocalTcp +
// WithExternalSites) — it runs the reactor transport with per-site
// liveness; see src/api/tcp_session.cc.

#ifndef DSGM_CLUSTER_REMOTE_RUNNER_H_
#define DSGM_CLUSTER_REMOTE_RUNNER_H_

#include <cstdint>
#include <string>

#include "bayes/network.h"
#include "common/status.h"

namespace dsgm {

struct RemoteSiteConfig {
  int site_id = 0;
  std::string host = "127.0.0.1";
  int port = 0;
  /// Seed for the site's Bernoulli reporting decisions.
  uint64_t seed = 7;
  /// How long to keep retrying the initial connect while the coordinator
  /// is still starting up.
  int connect_timeout_ms = 10000;
  /// kHeartbeat cadence, feeding the coordinator's liveness deadline (its
  /// default timeout is 5000 ms — keep interval well below the timeout).
  /// 0 disables heartbeats (the coordinator will declare the site dead
  /// unless its liveness is disabled too).
  int heartbeat_interval_ms = 500;
  /// After reporting final counts, how long to wait for the coordinator to
  /// close the connection before giving up. Lingering (instead of closing
  /// immediately) is what lets the coordinator treat ANY mid-run EOF as a
  /// site failure.
  int shutdown_linger_ms = 30000;
  /// Ship this process's trace rings to the coordinator in kTraceChunk
  /// frames on the heartbeat cadence. True only for standalone site
  /// processes (ServeSite): a kLocalTcp in-process site shares the
  /// coordinator's trace log already, and shipping would duplicate every
  /// event on the merged timeline.
  bool ship_traces = false;
};

struct RemoteSiteResult {
  int64_t events_processed = 0;
};

/// Runs one site process's lifetime against a remote coordinator.
StatusOr<RemoteSiteResult> RunRemoteSite(const BayesianNetwork& network,
                                         const RemoteSiteConfig& config);

}  // namespace dsgm

#endif  // DSGM_CLUSTER_REMOTE_RUNNER_H_
