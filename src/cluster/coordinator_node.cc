#include "cluster/coordinator_node.h"

#include <algorithm>

#include "common/check.h"
#include "monitor/round_schedule.h"

namespace dsgm {
namespace {

// Codec-calibrated wire payloads, matching monitor/approx_counter.cc (the
// constants live in monitor/comm_stats.h; tests/codec_test.cc verifies them
// against actually encoded frames).
constexpr uint64_t kUpdateBytes = kEstimatedUpdateBytes;
constexpr uint64_t kBroadcastBytes = kEstimatedBroadcastBytes;
constexpr uint64_t kSyncBytes = kEstimatedSyncBytes;

}  // namespace

CoordinatorNode::CoordinatorNode(std::vector<float> epsilons, int64_t num_counters,
                                 int num_sites, double probability_constant,
                                 Channel<UpdateBundle>* from_sites,
                                 std::vector<Channel<RoundAdvance>*> commands)
    : num_counters_(num_counters),
      num_sites_(num_sites),
      safety_(probability_constant),
      exact_mode_(epsilons.empty()),
      from_sites_(from_sites),
      commands_(std::move(commands)),
      epsilons_(std::move(epsilons)) {
  DSGM_CHECK_EQ(static_cast<int>(commands_.size()), num_sites_);
  if (!exact_mode_) {
    DSGM_CHECK_EQ(static_cast<int64_t>(epsilons_.size()), num_counters_);
  }
  const size_t n = static_cast<size_t>(num_counters_);
  probs_.assign(n, 1.0f);
  estimates_.assign(n, 0.0);
  thresholds_.assign(n, RoundThreshold(0));
  rounds_.assign(n, 0);
  sync_pending_.assign(n, 0);
  sync_counts_.assign(n * static_cast<size_t>(num_sites_), 0);
  best_reports_.assign(n * static_cast<size_t>(num_sites_), 0);
  sync_owed_.assign(n * static_cast<size_t>(num_sites_), 0);
  site_done_.assign(static_cast<size_t>(num_sites_), 0);
  site_dead_.assign(static_cast<size_t>(num_sites_), 0);
}

double CoordinatorNode::SiteEstimate(size_t cell, double p) const {
  const uint32_t sync = sync_counts_[cell];
  const uint32_t best = best_reports_[cell];
  if (best <= sync) return static_cast<double>(sync);
  return static_cast<double>(best) + (1.0 / p - 1.0);
}

void CoordinatorNode::OnReport(int site, const CounterReport& report) {
  const size_t c = static_cast<size_t>(report.counter);
  const size_t cell = c * static_cast<size_t>(num_sites_) + site;
  const double p = probs_[c];
  const double before = SiteEstimate(cell, p);
  if (report.value > std::max(best_reports_[cell], sync_counts_[cell])) {
    best_reports_[cell] = report.value;
  }
  estimates_[c] += SiteEstimate(cell, p) - before;
  if (!exact_mode_) MaybeAdvance(report.counter);
}

void CoordinatorNode::OnSync(int site, const CounterReport& report) {
  const size_t c = static_cast<size_t>(report.counter);
  const size_t cell = c * static_cast<size_t>(num_sites_) + site;
  const double p = probs_[c];
  const double before = SiteEstimate(cell, p);
  sync_counts_[cell] = std::max(sync_counts_[cell], report.value);
  // A sync settles this round's state: reports older than the sync carry no
  // information beyond it.
  best_reports_[cell] = std::max(best_reports_[cell], sync_counts_[cell]);
  estimates_[c] += SiteEstimate(cell, p) - before;
  // Count the reply against the round only while THIS site actually owes
  // one for this counter: an unsolicited (forged or duplicate) sync must
  // not drive outstanding_syncs_ negative — which would keep Run's exit
  // condition false forever — nor consume another site's pending slot.
  // Invariant: outstanding_syncs_ == sum(sync_pending_) == sum(sync_owed_).
  if (sync_owed_[cell] && sync_pending_[c] > 0) {
    sync_owed_[cell] = 0;
    --outstanding_syncs_;
    if (--sync_pending_[c] == 0) MaybeAdvance(report.counter);
  }
}

void CoordinatorNode::CancelSite(int site) {
  std::lock_guard<std::mutex> lock(mu_);
  if (site < 0 || site >= num_sites_) return;
  const size_t s = static_cast<size_t>(site);
  if (site_dead_[s]) return;
  site_dead_[s] = 1;
  ++dead_sites_;
  if (!site_done_[s]) {
    site_done_[s] = 1;
    ++done_sites_;
  }
  // Forgive every sync reply the site still owes. MaybeAdvance is NOT
  // re-entered here: the run is being failed by the caller's policy, and
  // advancing rounds against a shrinking quorum would only send commands
  // nobody needs.
  for (size_t c = 0; c < static_cast<size_t>(num_counters_); ++c) {
    const size_t cell = c * static_cast<size_t>(num_sites_) + s;
    if (sync_owed_[cell] && sync_pending_[c] > 0) {
      sync_owed_[cell] = 0;
      --sync_pending_[c];
      --outstanding_syncs_;
    }
  }
}

void CoordinatorNode::MaybeAdvance(int64_t counter) {
  const size_t c = static_cast<size_t>(counter);
  if (sync_pending_[c] > 0) return;  // Wait for the current round to settle.
  if (estimates_[c] < thresholds_[c]) return;

  int round = rounds_[c];
  while (estimates_[c] >= RoundThreshold(round) && round < kMaxRound) ++round;
  const double new_p = RoundProbability(epsilons_[c], round, num_sites_, safety_);
  rounds_[c] = static_cast<uint8_t>(round);
  thresholds_[c] = RoundThreshold(round);
  if (new_p >= 1.0) {
    probs_[c] = 1.0f;  // Still exact; transition is silent.
    return;
  }
  probs_[c] = static_cast<float>(new_p);
  ++comm_.rounds_advanced;
  // Only sites that can still answer owe a sync; a cancelled (dead) site
  // would otherwise re-wedge outstanding_syncs_ forever.
  const int alive = num_sites_ - dead_sites_;
  sync_pending_[c] = static_cast<uint8_t>(alive);
  outstanding_syncs_ += alive;
  comm_.broadcast_messages += static_cast<uint64_t>(alive);
  comm_.wire_messages += static_cast<uint64_t>(alive);
  comm_.bytes_down += kBroadcastBytes * static_cast<uint64_t>(alive);
  for (int s = 0; s < num_sites_; ++s) {
    if (site_dead_[static_cast<size_t>(s)]) continue;
    sync_owed_[c * static_cast<size_t>(num_sites_) + static_cast<size_t>(s)] = 1;
    RoundAdvance advance;
    advance.counter = counter;
    advance.round = round;
    advance.probability = static_cast<float>(new_p);
    commands_[static_cast<size_t>(s)]->Push(advance);
  }
}

void CoordinatorNode::Run() {
  std::vector<UpdateBundle> batch;
  while (true) {
    {
      // Under the lock: CancelSite mutates done/outstanding from the
      // transport's liveness thread while this loop is live.
      std::lock_guard<std::mutex> lock(mu_);
      if (done_sites_ == num_sites_ && outstanding_syncs_ == 0) break;
    }
    batch.clear();
    const size_t got = from_sites_->PopBatch(&batch, 64);
    if (got == 0) break;  // Queue closed: all readers gone or run failed.
    const auto now = Clock::now();
    if (!saw_message_) {
      first_message_ = now;
      saw_message_ = true;
    }
    last_message_ = now;
    std::lock_guard<std::mutex> lock(mu_);
    for (const UpdateBundle& bundle : batch) {
      // Bundles can arrive from a real network peer; ids must be validated
      // before they index protocol state (a forged site/counter would be an
      // out-of-bounds write, not just a bad estimate).
      const bool site_ok = bundle.site >= 0 && bundle.site < num_sites_;
      switch (bundle.kind) {
        case UpdateBundle::Kind::kReports:
          ++comm_.wire_messages;
          comm_.update_messages += bundle.reports.size();
          comm_.bytes_up += kUpdateBytes * bundle.reports.size();
          if (!site_ok) break;
          for (const CounterReport& report : bundle.reports) {
            if (report.counter < 0 || report.counter >= num_counters_) continue;
            OnReport(bundle.site, report);
          }
          break;
        case UpdateBundle::Kind::kSync:
          ++comm_.wire_messages;
          comm_.sync_messages += bundle.reports.size();
          comm_.bytes_up += kSyncBytes * bundle.reports.size();
          if (!site_ok) break;
          for (const CounterReport& report : bundle.reports) {
            if (report.counter < 0 || report.counter >= num_counters_) continue;
            OnSync(bundle.site, report);
          }
          break;
        case UpdateBundle::Kind::kSiteDone:
          // One done per real site: a forged or repeated marker must not
          // end the run while genuine sites are still streaming.
          if (site_ok && !site_done_[static_cast<size_t>(bundle.site)]) {
            site_done_[static_cast<size_t>(bundle.site)] = 1;
            ++done_sites_;
          }
          break;
        case UpdateBundle::Kind::kFinalCounts:
          // Validation frames for the multi-process driver; they are sent
          // only after the protocol finished, so Run never sees one. Ignore
          // defensively.
          break;
      }
    }
  }
  for (Channel<RoundAdvance>* channel : commands_) channel->Close();
}

void CoordinatorNode::SnapshotState(std::vector<double>* estimates,
                                    CommStats* comm) const {
  std::lock_guard<std::mutex> lock(mu_);
  *estimates = estimates_;
  if (comm != nullptr) *comm = comm_;
}

double CoordinatorNode::ActiveSeconds() const {
  if (!saw_message_) return 0.0;
  return std::chrono::duration<double>(last_message_ - first_message_).count();
}

}  // namespace dsgm
