#include "cluster/coordinator_node.h"

#include <algorithm>

#include "common/check.h"
#include "common/timer.h"
#include "monitor/round_schedule.h"

namespace dsgm {
namespace {

// Codec-calibrated wire payloads, matching monitor/approx_counter.cc (the
// constants live in monitor/comm_stats.h; tests/codec_test.cc verifies them
// against actually encoded frames).
constexpr uint64_t kUpdateBytes = kEstimatedUpdateBytes;
constexpr uint64_t kBroadcastBytes = kEstimatedBroadcastBytes;
constexpr uint64_t kSyncBytes = kEstimatedSyncBytes;

// Publish cadence under load: every batch would be freshest, but in exact
// mode nearly every report dirties a cell, so publishing per batch costs a
// second write of most of the update volume (~15% throughput on the Fig. 8
// bench). Amortizing over a few batches keeps snapshots sub-millisecond
// stale at full rate; the pre-block publish in Run keeps them EXACT
// whenever the stream goes quiet.
constexpr int kPublishEveryBatches = 8;

}  // namespace

CoordinatorNode::CoordinatorNode(std::vector<float> epsilons, int64_t num_counters,
                                 int num_sites, double probability_constant,
                                 Channel<UpdateBundle>* from_sites,
                                 std::vector<Channel<RoundAdvance>*> commands)
    : num_counters_(num_counters),
      num_sites_(num_sites),
      safety_(probability_constant),
      exact_mode_(epsilons.empty()),
      from_sites_(from_sites),
      commands_(std::move(commands)),
      epsilons_(std::move(epsilons)),
      rounds_advanced_metric_(
          MetricsRegistry::Global().GetCounter("cluster.coord.rounds_advanced")),
      publishes_metric_(
          MetricsRegistry::Global().GetCounter("cluster.coord.publishes")),
      publish_deferred_metric_(
          MetricsRegistry::Global().GetCounter("cluster.coord.publish_deferred")),
      publish_ns_metric_(
          MetricsRegistry::Global().GetHistogram("cluster.coord.publish_ns")),
      outstanding_syncs_gauge_(
          MetricsRegistry::Global().GetGauge("cluster.coord.outstanding_syncs")),
      bytes_up_gauge_(MetricsRegistry::Global().GetGauge("cluster.comm.bytes_up")),
      bytes_down_gauge_(
          MetricsRegistry::Global().GetGauge("cluster.comm.bytes_down")),
      wire_messages_gauge_(
          MetricsRegistry::Global().GetGauge("cluster.comm.wire_messages")),
      update_messages_gauge_(
          MetricsRegistry::Global().GetGauge("cluster.comm.update_messages")),
      sync_messages_gauge_(
          MetricsRegistry::Global().GetGauge("cluster.comm.sync_messages")),
      broadcast_messages_gauge_(
          MetricsRegistry::Global().GetGauge("cluster.comm.broadcast_messages")) {
  DSGM_CHECK_EQ(static_cast<int>(commands_.size()), num_sites_);
  if (!exact_mode_) {
    DSGM_CHECK_EQ(static_cast<int64_t>(epsilons_.size()), num_counters_);
  }
  const size_t n = static_cast<size_t>(num_counters_);
  probs_.assign(n, 1.0f);
  estimates_.assign(n, 0.0);
  thresholds_.assign(n, RoundThreshold(0));
  rounds_.assign(n, 0);
  sync_pending_.assign(n, 0);
  sync_counts_.assign(n * static_cast<size_t>(num_sites_), 0);
  best_reports_.assign(n * static_cast<size_t>(num_sites_), 0);
  sync_owed_.assign(n * static_cast<size_t>(num_sites_), 0);
  site_done_.assign(static_cast<size_t>(num_sites_), 0);
  site_dead_.assign(static_cast<size_t>(num_sites_), 0);
  published_[0].estimates.assign(n, 0.0);
  published_[1].estimates.assign(n, 0.0);
  publish_dirty_.assign(n, 0);
}

void CoordinatorNode::TouchEstimate(size_t counter) {
  if (!publish_tracking_) return;
  uint8_t& dirty = publish_dirty_[counter];
  if (!(dirty & 1)) {
    dirty |= 1;
    publish_pending_[0].push_back(static_cast<int64_t>(counter));
  }
  if (!(dirty & 2)) {
    dirty |= 2;
    publish_pending_[1].push_back(static_cast<int64_t>(counter));
  }
}

void CoordinatorNode::ActivatePublication() {
  const size_t n = static_cast<size_t>(num_counters_);
  publish_dirty_.assign(n, 3);
  publish_pending_[0].resize(n);
  publish_pending_[1].resize(n);
  for (size_t c = 0; c < n; ++c) {
    publish_pending_[0][c] = static_cast<int64_t>(c);
    publish_pending_[1][c] = static_cast<int64_t>(c);
  }
  publish_tracking_ = true;
}

void CoordinatorNode::MaybePublish(bool force) {
  const int state = publish_state_.load(std::memory_order_acquire);
  if (state == 0) return;  // Nobody has ever queried; keep the path free.
  if (!publish_tracking_) ActivatePublication();
  if (state == 1 || force ||
      ++batches_since_publish_ >= kPublishEveryBatches) {
    // Forced publishes (about to block on an empty queue) must land: a
    // skipped one would leave the buffers stale for as long as the stream
    // stays quiet, breaking the quiet-stream-snapshots-are-exact promise.
    // Cadence publishes may be deferred by a laggard reader — then the
    // cells stay dirty, the saturated counter retries on the very next
    // batch, and readers stay off the stale buffers (state stays 1 on the
    // activation path).
    if (PublishSnapshot(/*wait=*/force)) {
      publish_state_.store(2, std::memory_order_release);
      batches_since_publish_ = 0;
    }
  }
}

bool CoordinatorNode::PublishSnapshot(bool wait) {
  const int back = published_front_.load(std::memory_order_relaxed) ^ 1;
  PublishedState& state = published_[back];
  if (!state.mu.TryLock()) {
    // A reader is copying this buffer (it loaded the front index just
    // before we flipped it last time). On a cadence publish we simply
    // defer — the caller keeps the cells dirty and retries next batch — so
    // a fast poller can never block the protocol loop. Pre-block and at
    // Run exit we must land the state, and the reader's copy is bounded,
    // so a blocking acquisition is fine (Run has nothing else to do then
    // anyway).
    if (!wait) {
      publish_deferred_metric_->Increment();
      Trace(TraceEventType::kSnapshotDefer, -1, 0);
      return false;
    }
    state.mu.Lock();
  }
  const int64_t publish_start = NowNanos();
  for (const int64_t counter : publish_pending_[back]) {
    state.estimates[static_cast<size_t>(counter)] =
        estimates_[static_cast<size_t>(counter)];
    publish_dirty_[static_cast<size_t>(counter)] &=
        static_cast<uint8_t>(~(1u << back));
  }
  publish_pending_[back].clear();
  state.comm = comm_;
  state.mu.Unlock();
  published_front_.store(back, std::memory_order_release);
  publishes_metric_->Increment();
  publish_ns_metric_->Record(static_cast<uint64_t>(NowNanos() - publish_start));
  Trace(TraceEventType::kSnapshotPublish, -1,
        static_cast<int64_t>(publishes_metric_->Value()));
  return true;
}

double CoordinatorNode::SiteEstimate(size_t cell, double p) const {
  const uint32_t sync = sync_counts_[cell];
  const uint32_t best = best_reports_[cell];
  if (best <= sync) return static_cast<double>(sync);
  return static_cast<double>(best) + (1.0 / p - 1.0);
}

void CoordinatorNode::OnReport(int site, const CounterReport& report) {
  const size_t c = static_cast<size_t>(report.counter);
  const size_t cell = c * static_cast<size_t>(num_sites_) + site;
  const double p = probs_[c];
  const double before = SiteEstimate(cell, p);
  if (report.value > std::max(best_reports_[cell], sync_counts_[cell])) {
    best_reports_[cell] = report.value;
  }
  const double delta = SiteEstimate(cell, p) - before;
  if (delta != 0.0) {
    estimates_[c] += delta;
    TouchEstimate(c);
  }
  if (!exact_mode_) MaybeAdvance(report.counter);
}

void CoordinatorNode::OnSync(int site, const CounterReport& report) {
  const size_t c = static_cast<size_t>(report.counter);
  const size_t cell = c * static_cast<size_t>(num_sites_) + site;
  const double p = probs_[c];
  const double before = SiteEstimate(cell, p);
  sync_counts_[cell] = std::max(sync_counts_[cell], report.value);
  // A sync settles this round's state: reports older than the sync carry no
  // information beyond it.
  best_reports_[cell] = std::max(best_reports_[cell], sync_counts_[cell]);
  const double delta = SiteEstimate(cell, p) - before;
  if (delta != 0.0) {
    estimates_[c] += delta;
    TouchEstimate(c);
  }
  // Count the reply against the round only while THIS site actually owes
  // one for this counter: an unsolicited (forged or duplicate) sync must
  // not drive outstanding_syncs_ negative — which would keep Run's exit
  // condition false forever — nor consume another site's pending slot.
  // Invariant: outstanding_syncs_ == sum(sync_pending_) == sum(sync_owed_).
  if (sync_owed_[cell] && sync_pending_[c] > 0) {
    sync_owed_[cell] = 0;
    --outstanding_syncs_;
    if (--sync_pending_[c] == 0) MaybeAdvance(report.counter);
  }
}

void CoordinatorNode::CancelSite(int site) {
  MutexLock lock(&mu_);
  if (site < 0 || site >= num_sites_) return;
  const size_t s = static_cast<size_t>(site);
  if (site_dead_[s]) return;
  site_dead_[s] = 1;
  ++dead_sites_;
  Trace(TraceEventType::kSiteCancelled, site, 0);
  if (!site_done_[s]) {
    site_done_[s] = 1;
    ++done_sites_;
  }
  // Forgive every sync reply the site still owes. MaybeAdvance is NOT
  // re-entered here: the run is being failed by the caller's policy, and
  // advancing rounds against a shrinking quorum would only send commands
  // nobody needs.
  for (size_t c = 0; c < static_cast<size_t>(num_counters_); ++c) {
    const size_t cell = c * static_cast<size_t>(num_sites_) + s;
    if (sync_owed_[cell] && sync_pending_[c] > 0) {
      sync_owed_[cell] = 0;
      --sync_pending_[c];
      --outstanding_syncs_;
    }
  }
}

void CoordinatorNode::MaybeAdvance(int64_t counter) {
  const size_t c = static_cast<size_t>(counter);
  if (sync_pending_[c] > 0) return;  // Wait for the current round to settle.
  if (estimates_[c] < thresholds_[c]) return;

  int round = rounds_[c];
  while (estimates_[c] >= RoundThreshold(round) && round < kMaxRound) ++round;
  const double new_p = RoundProbability(epsilons_[c], round, num_sites_, safety_);
  rounds_[c] = static_cast<uint8_t>(round);
  thresholds_[c] = RoundThreshold(round);
  if (new_p >= 1.0) {
    probs_[c] = 1.0f;  // Still exact; transition is silent.
    return;
  }
  probs_[c] = static_cast<float>(new_p);
  ++comm_.rounds_advanced;
  rounds_advanced_metric_->Increment();
  Trace(TraceEventType::kRoundAdvance, -1, counter);
  // Only sites that can still answer owe a sync; a cancelled (dead) site
  // would otherwise re-wedge outstanding_syncs_ forever.
  const int alive = num_sites_ - dead_sites_;
  sync_pending_[c] = static_cast<uint8_t>(alive);
  outstanding_syncs_ += alive;
  comm_.broadcast_messages += static_cast<uint64_t>(alive);
  comm_.wire_messages += static_cast<uint64_t>(alive);
  comm_.bytes_down += kBroadcastBytes * static_cast<uint64_t>(alive);
  for (int s = 0; s < num_sites_; ++s) {
    if (site_dead_[static_cast<size_t>(s)]) continue;
    sync_owed_[c * static_cast<size_t>(num_sites_) + static_cast<size_t>(s)] = 1;
    RoundAdvance advance;
    advance.counter = counter;
    advance.round = round;
    advance.probability = static_cast<float>(new_p);
    commands_[static_cast<size_t>(s)]->Push(advance);
  }
}

void CoordinatorNode::Run() {
  std::vector<UpdateBundle> batch;
  while (true) {
    {
      // Under the lock: CancelSite mutates done/outstanding from the
      // transport's liveness thread while this loop is live.
      MutexLock lock(&mu_);
      if (done_sites_ == num_sites_ && outstanding_syncs_ == 0) break;
    }
    batch.clear();
    size_t got = from_sites_->TryPopBatch(&batch, 64);
    if (got == 0) {
      // About to block: land the pending cells first, so a snapshot taken
      // while the sites are idle reflects everything received. The pops
      // themselves stay OUTSIDE mu_: holding it across a blocking PopBatch
      // would deadlock CancelSite — which is exactly what un-wedges a
      // dead-site run.
      {
        MutexLock lock(&mu_);
        MaybePublish(/*force=*/true);
      }
      got = from_sites_->PopBatch(&batch, 64);
      if (got == 0) break;  // Queue closed: all readers gone or run failed.
    }
    const int64_t now_nanos = NowNanos();
    {
      MutexLock lock(&mu_);
      if (!saw_message_) {
        first_message_nanos_ = now_nanos;
        saw_message_ = true;
      }
      last_message_nanos_ = now_nanos;
      for (const UpdateBundle& bundle : batch) {
        // Bundles can arrive from a real network peer; ids must be
        // validated before they index protocol state (a forged site/counter
        // would be an out-of-bounds write, not just a bad estimate).
        const bool site_ok = bundle.site >= 0 && bundle.site < num_sites_;
        switch (bundle.kind) {
          case UpdateBundle::Kind::kReports:
            ++comm_.wire_messages;
            comm_.update_messages += bundle.reports.size();
            comm_.bytes_up += kUpdateBytes * bundle.reports.size();
            if (!site_ok) break;
            for (const CounterReport& report : bundle.reports) {
              if (report.counter < 0 || report.counter >= num_counters_) continue;
              OnReport(bundle.site, report);
            }
            break;
          case UpdateBundle::Kind::kSync:
            ++comm_.wire_messages;
            comm_.sync_messages += bundle.reports.size();
            comm_.bytes_up += kSyncBytes * bundle.reports.size();
            Trace(TraceEventType::kSyncMessage, bundle.site,
                  static_cast<int64_t>(bundle.reports.size()));
            if (!site_ok) break;
            for (const CounterReport& report : bundle.reports) {
              if (report.counter < 0 || report.counter >= num_counters_) continue;
              OnSync(bundle.site, report);
            }
            break;
          case UpdateBundle::Kind::kSiteDone:
            // One done per real site: a forged or repeated marker must not
            // end the run while genuine sites are still streaming.
            if (site_ok && !site_done_[static_cast<size_t>(bundle.site)]) {
              site_done_[static_cast<size_t>(bundle.site)] = 1;
              ++done_sites_;
            }
            break;
          case UpdateBundle::Kind::kFinalCounts:
            // Validation frames for the multi-process driver; they are sent
            // only after the protocol finished, so Run never sees one.
            // Ignore defensively.
            break;
        }
      }
      // Publishing happens under mu_ (it reads estimates_/comm_), but
      // steady-state snapshot readers synchronize on the BUFFER locks, so a
      // poller still never delays the next PopBatch. State 0 (nobody ever
      // queried) skips publication entirely; state 1 (first query just
      // arrived) publishes immediately and moves readers onto the buffers.
      MaybePublish(/*force=*/false);
      // Mirror the comm totals into the registry at batch granularity: a
      // handful of gauge stores per ≤64 bundles, invisible next to the
      // protocol work, and a metrics dump needs no access to this node.
      outstanding_syncs_gauge_->Set(outstanding_syncs_);
      bytes_up_gauge_->Set(static_cast<int64_t>(comm_.bytes_up));
      bytes_down_gauge_->Set(static_cast<int64_t>(comm_.bytes_down));
      wire_messages_gauge_->Set(static_cast<int64_t>(comm_.wire_messages));
      update_messages_gauge_->Set(static_cast<int64_t>(comm_.update_messages));
      sync_messages_gauge_->Set(static_cast<int64_t>(comm_.sync_messages));
      broadcast_messages_gauge_->Set(
          static_cast<int64_t>(comm_.broadcast_messages));
    }
  }
  {
    // Land the final state even if a reader momentarily holds the back
    // buffer: post-join accessors and the session's final model read the
    // published front. A run nobody queried keeps skipping (post-join
    // readers are served from the live state).
    MutexLock lock(&mu_);
    if (publish_state_.load(std::memory_order_acquire) != 0) {
      if (!publish_tracking_) ActivatePublication();
      PublishSnapshot(/*wait=*/true);
      publish_state_.store(2, std::memory_order_release);
    }
  }
  for (Channel<RoundAdvance>* channel : commands_) channel->Close();
}

void CoordinatorNode::SnapshotState(std::vector<double>* estimates,
                                    CommStats* comm) const {
  if (publish_state_.load(std::memory_order_acquire) != 2) {
    // No published state yet (first query, or Run already exited without
    // one): request activation and serve this query from the live state
    // under the protocol lock — the pre-publication behavior. Run flips to
    // state 2 with its next publish; until then the buffers may be stale,
    // so every reader stays on this path.
    int expected = 0;
    publish_state_.compare_exchange_strong(expected, 1,
                                           std::memory_order_acq_rel);
    MutexLock lock(&mu_);
    *estimates = estimates_;
    if (comm != nullptr) *comm = comm_;
    return;
  }
  const int front = published_front_.load(std::memory_order_acquire);
  PublishedState& state = published_[front];
  MutexLock lock(&state.mu);
  // If the front flipped between the load and the lock, this buffer is now
  // the back: holding its mutex makes the writer's try_lock fail (it skips
  // that publish), so the copy is still a complete, consistent published
  // state — at most one publish stale.
  *estimates = state.estimates;
  if (comm != nullptr) *comm = state.comm;
}

double CoordinatorNode::ActiveSeconds() const {
  MutexLock lock(&mu_);
  if (!saw_message_) return 0.0;
  return static_cast<double>(last_message_nanos_ - first_message_nanos_) * 1e-9;
}

}  // namespace dsgm
