#include "cluster/cluster_runner.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "bayes/sampler.h"
#include "cluster/coordinator_node.h"
#include "cluster/queue.h"
#include "cluster/site_node.h"
#include "common/check.h"
#include "common/timer.h"
#include "core/error_allocation.h"

namespace dsgm {
namespace {

/// Per-counter epsilons in tracker layout, or empty for exact mode.
std::vector<float> LayoutEpsilons(const BayesianNetwork& network,
                                  const TrackerConfig& config) {
  if (config.strategy == TrackingStrategy::kExactMle) return {};
  const ErrorAllocation allocation =
      ComputeAllocation(network, config.strategy, config.epsilon);
  auto effective = [&config](double nu) {
    return static_cast<float>(std::min(0.999, config.allocation_relaxation * nu));
  };
  const int n = network.num_variables();
  std::vector<float> epsilons;
  epsilons.reserve(static_cast<size_t>(network.TotalJointCells() +
                                       network.TotalParentCells()));
  for (int i = 0; i < n; ++i) {
    const int64_t cells = network.parent_cardinality(i) * network.cardinality(i);
    for (int64_t c = 0; c < cells; ++c) {
      epsilons.push_back(effective(allocation.joint[static_cast<size_t>(i)]));
    }
  }
  for (int i = 0; i < n; ++i) {
    for (int64_t c = 0; c < network.parent_cardinality(i); ++c) {
      epsilons.push_back(effective(allocation.parent[static_cast<size_t>(i)]));
    }
  }
  return epsilons;
}

}  // namespace

ClusterResult RunCluster(const BayesianNetwork& network,
                         const ClusterConfig& config) {
  DSGM_CHECK(config.tracker.Validate().ok());
  DSGM_CHECK_GT(config.num_events, 0);
  const int k = config.tracker.num_sites;
  const int64_t total_counters =
      network.TotalJointCells() + network.TotalParentCells();

  WallTimer wall;

  // --- Plumbing.
  BoundedQueue<UpdateBundle> to_coordinator(8192);
  std::vector<std::unique_ptr<BoundedQueue<EventBatch>>> event_queues;
  std::vector<std::unique_ptr<BoundedQueue<RoundAdvance>>> command_queues;
  std::vector<BoundedQueue<RoundAdvance>*> command_ptrs;
  for (int s = 0; s < k; ++s) {
    event_queues.push_back(std::make_unique<BoundedQueue<EventBatch>>(64));
    command_queues.push_back(std::make_unique<BoundedQueue<RoundAdvance>>(1 << 16));
    command_ptrs.push_back(command_queues.back().get());
  }

  CoordinatorNode coordinator(LayoutEpsilons(network, config.tracker),
                              total_counters, k,
                              config.tracker.probability_constant, &to_coordinator,
                              command_ptrs);

  Rng seeder(config.tracker.seed);
  std::vector<std::unique_ptr<SiteNode>> sites;
  for (int s = 0; s < k; ++s) {
    sites.push_back(std::make_unique<SiteNode>(s, network, seeder.Next(),
                                               event_queues[static_cast<size_t>(s)].get(),
                                               command_queues[static_cast<size_t>(s)].get(),
                                               &to_coordinator));
  }

  // --- Threads.
  std::vector<std::thread> threads;
  threads.emplace_back([&coordinator] { coordinator.Run(); });
  for (int s = 0; s < k; ++s) {
    threads.emplace_back([&sites, s] { sites[static_cast<size_t>(s)]->Run(); });
  }

  // --- Dispatch: sample instances, route each to a uniformly random site.
  {
    ForwardSampler sampler(network, seeder.Next());
    Rng router(seeder.Next());
    const int n = network.num_variables();
    std::vector<EventBatch> pending(static_cast<size_t>(k));
    Instance instance;
    for (int64_t e = 0; e < config.num_events; ++e) {
      const int site = static_cast<int>(router.NextBounded(static_cast<uint64_t>(k)));
      EventBatch& batch = pending[static_cast<size_t>(site)];
      sampler.Sample(&instance);
      batch.values.insert(batch.values.end(), instance.begin(), instance.end());
      if (++batch.num_events >= config.batch_size) {
        event_queues[static_cast<size_t>(site)]->Push(std::move(batch));
        batch = EventBatch{};
        batch.values.reserve(static_cast<size_t>(config.batch_size) * n);
      }
    }
    for (int s = 0; s < k; ++s) {
      EventBatch& batch = pending[static_cast<size_t>(s)];
      if (batch.num_events > 0) {
        event_queues[static_cast<size_t>(s)]->Push(std::move(batch));
      }
      event_queues[static_cast<size_t>(s)]->Close();
    }
  }

  for (std::thread& thread : threads) thread.join();

  // --- Results & validation.
  ClusterResult result;
  result.wall_seconds = wall.ElapsedSeconds();
  result.runtime_seconds = coordinator.ActiveSeconds();
  result.comm = coordinator.comm();
  for (const auto& site : sites) result.events_processed += site->events_processed();
  result.throughput_events_per_sec =
      result.runtime_seconds > 0.0
          ? static_cast<double>(result.events_processed) / result.runtime_seconds
          : 0.0;
  // Site -> coordinator wire/update accounting happened coordinator-side.
  DSGM_CHECK_EQ(result.events_processed, config.num_events);

  // Validate coordinator estimates against summed exact site counts; the
  // threshold skips tiny counters whose relative error is noise-dominated.
  for (int64_t c = 0; c < total_counters; ++c) {
    uint64_t exact = 0;
    for (const auto& site : sites) {
      exact += site->local_counts()[static_cast<size_t>(c)];
    }
    if (exact < 64) continue;
    const double rel = std::abs(coordinator.Estimate(c) - static_cast<double>(exact)) /
                       static_cast<double>(exact);
    result.max_counter_rel_error = std::max(result.max_counter_rel_error, rel);
  }

  return result;
}

}  // namespace dsgm
