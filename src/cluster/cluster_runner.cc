#include "cluster/cluster_runner.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "cluster/coordinator_node.h"
#include "core/error_allocation.h"

namespace dsgm {

std::vector<float> LayoutEpsilons(const BayesianNetwork& network,
                                  const TrackerConfig& config) {
  if (config.strategy == TrackingStrategy::kExactMle) return {};
  const ErrorAllocation allocation =
      ComputeAllocation(network, config.strategy, config.epsilon);
  auto effective = [&config](double nu) {
    return static_cast<float>(std::min(0.999, config.allocation_relaxation * nu));
  };
  const int n = network.num_variables();
  std::vector<float> epsilons;
  epsilons.reserve(static_cast<size_t>(network.TotalJointCells() +
                                       network.TotalParentCells()));
  for (int i = 0; i < n; ++i) {
    const int64_t cells = network.parent_cardinality(i) * network.cardinality(i);
    for (int64_t c = 0; c < cells; ++c) {
      epsilons.push_back(effective(allocation.joint[static_cast<size_t>(i)]));
    }
  }
  for (int i = 0; i < n; ++i) {
    for (int64_t c = 0; c < network.parent_cardinality(i); ++c) {
      epsilons.push_back(effective(allocation.parent[static_cast<size_t>(i)]));
    }
  }
  return epsilons;
}

void FinalizeClusterResult(const CoordinatorNode& coordinator,
                           const std::vector<uint64_t>& exact_totals,
                           ClusterResult* result) {
  result->runtime_seconds = coordinator.ActiveSeconds();
  result->comm = coordinator.comm();
  result->throughput_events_per_sec =
      result->runtime_seconds > 0.0
          ? static_cast<double>(result->events_processed) / result->runtime_seconds
          : 0.0;
  result->max_counter_rel_error = 0.0;
  for (size_t c = 0; c < exact_totals.size(); ++c) {
    const uint64_t exact = exact_totals[c];
    if (exact < 64) continue;
    const double rel = std::abs(coordinator.Estimate(static_cast<int64_t>(c)) -
                                static_cast<double>(exact)) /
                       static_cast<double>(exact);
    result->max_counter_rel_error = std::max(result->max_counter_rel_error, rel);
  }
}

}  // namespace dsgm
