#include "cluster/cluster_runner.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "bayes/sampler.h"
#include "cluster/coordinator_node.h"
#include "cluster/site_node.h"
#include "common/check.h"
#include "common/timer.h"
#include "core/error_allocation.h"

namespace dsgm {

std::vector<float> LayoutEpsilons(const BayesianNetwork& network,
                                  const TrackerConfig& config) {
  if (config.strategy == TrackingStrategy::kExactMle) return {};
  const ErrorAllocation allocation =
      ComputeAllocation(network, config.strategy, config.epsilon);
  auto effective = [&config](double nu) {
    return static_cast<float>(std::min(0.999, config.allocation_relaxation * nu));
  };
  const int n = network.num_variables();
  std::vector<float> epsilons;
  epsilons.reserve(static_cast<size_t>(network.TotalJointCells() +
                                       network.TotalParentCells()));
  for (int i = 0; i < n; ++i) {
    const int64_t cells = network.parent_cardinality(i) * network.cardinality(i);
    for (int64_t c = 0; c < cells; ++c) {
      epsilons.push_back(effective(allocation.joint[static_cast<size_t>(i)]));
    }
  }
  for (int i = 0; i < n; ++i) {
    for (int64_t c = 0; c < network.parent_cardinality(i); ++c) {
      epsilons.push_back(effective(allocation.parent[static_cast<size_t>(i)]));
    }
  }
  return epsilons;
}

void FinalizeClusterResult(const CoordinatorNode& coordinator,
                           const std::vector<uint64_t>& exact_totals,
                           ClusterResult* result) {
  result->runtime_seconds = coordinator.ActiveSeconds();
  result->comm = coordinator.comm();
  result->throughput_events_per_sec =
      result->runtime_seconds > 0.0
          ? static_cast<double>(result->events_processed) / result->runtime_seconds
          : 0.0;
  result->max_counter_rel_error = 0.0;
  for (size_t c = 0; c < exact_totals.size(); ++c) {
    const uint64_t exact = exact_totals[c];
    if (exact < 64) continue;
    const double rel = std::abs(coordinator.Estimate(static_cast<int64_t>(c)) -
                                static_cast<double>(exact)) /
                       static_cast<double>(exact);
    result->max_counter_rel_error = std::max(result->max_counter_rel_error, rel);
  }
}

void DispatchEvents(const BayesianNetwork& network, int64_t num_events,
                    int batch_size, uint64_t sampler_seed, uint64_t router_seed,
                    const std::vector<Channel<EventBatch>*>& events) {
  const int k = static_cast<int>(events.size());
  DSGM_CHECK_GT(k, 0);
  DSGM_CHECK_GT(batch_size, 0);
  ForwardSampler sampler(network, sampler_seed);
  Rng router(router_seed);
  const int n = network.num_variables();
  std::vector<EventBatch> pending(static_cast<size_t>(k));
  Instance instance;
  for (int64_t e = 0; e < num_events; ++e) {
    const int site = static_cast<int>(router.NextBounded(static_cast<uint64_t>(k)));
    EventBatch& batch = pending[static_cast<size_t>(site)];
    sampler.Sample(&instance);
    batch.values.insert(batch.values.end(), instance.begin(), instance.end());
    if (++batch.num_events >= batch_size) {
      events[static_cast<size_t>(site)]->Push(std::move(batch));
      batch = EventBatch{};
      batch.values.reserve(static_cast<size_t>(batch_size) * n);
    }
  }
  for (int s = 0; s < k; ++s) {
    EventBatch& batch = pending[static_cast<size_t>(s)];
    if (batch.num_events > 0) {
      events[static_cast<size_t>(s)]->Push(std::move(batch));
    }
    events[static_cast<size_t>(s)]->Close();
  }
}

ClusterResult RunCluster(const BayesianNetwork& network,
                         const ClusterConfig& config) {
  DSGM_CHECK(config.tracker.Validate().ok());
  DSGM_CHECK_GT(config.num_events, 0);
  const int k = config.tracker.num_sites;
  const int64_t total_counters =
      network.TotalJointCells() + network.TotalParentCells();

  WallTimer wall;

  // --- Plumbing: loopback queues unless the config supplies a transport.
  std::unique_ptr<ClusterTransport> transport =
      config.transport ? config.transport(k) : MakeLoopbackTransport(k);
  DSGM_CHECK_EQ(transport->num_sites(), k);
  const CoordinatorEndpoints coordinator_endpoints = transport->coordinator();

  CoordinatorNode coordinator(LayoutEpsilons(network, config.tracker),
                              total_counters, k,
                              config.tracker.probability_constant,
                              coordinator_endpoints.updates,
                              coordinator_endpoints.commands);

  Rng seeder(config.tracker.seed);
  std::vector<std::unique_ptr<SiteNode>> sites;
  for (int s = 0; s < k; ++s) {
    const SiteEndpoints endpoints = transport->site(s);
    sites.push_back(std::make_unique<SiteNode>(s, network, seeder.Next(),
                                               endpoints.events,
                                               endpoints.commands,
                                               endpoints.updates));
  }

  // --- Threads.
  std::vector<std::thread> threads;
  threads.emplace_back([&coordinator] { coordinator.Run(); });
  for (int s = 0; s < k; ++s) {
    threads.emplace_back([&sites, s] { sites[static_cast<size_t>(s)]->Run(); });
  }

  // --- Dispatch: sample instances, route each to a uniformly random site.
  {
    const uint64_t sampler_seed = seeder.Next();
    const uint64_t router_seed = seeder.Next();
    DispatchEvents(network, config.num_events, config.batch_size, sampler_seed,
                   router_seed, coordinator_endpoints.events);
  }

  for (std::thread& thread : threads) thread.join();

  // --- Results & validation.
  ClusterResult result;
  result.wall_seconds = wall.ElapsedSeconds();
  const TransportStats transport_stats = transport->stats();
  result.transport_bytes_up = transport_stats.bytes_up;
  result.transport_bytes_down = transport_stats.bytes_down;
  result.transport_measured = transport_stats.measured;
  for (const auto& site : sites) result.events_processed += site->events_processed();
  // Site -> coordinator wire/update accounting happened coordinator-side.
  DSGM_CHECK_EQ(result.events_processed, config.num_events);

  // Validate coordinator estimates against summed exact site counts.
  std::vector<uint64_t> exact_totals(static_cast<size_t>(total_counters), 0);
  for (const auto& site : sites) {
    for (int64_t c = 0; c < total_counters; ++c) {
      exact_totals[static_cast<size_t>(c)] +=
          site->local_counts()[static_cast<size_t>(c)];
    }
  }
  FinalizeClusterResult(coordinator, exact_totals, &result);

  transport->Shutdown();
  return result;
}

}  // namespace dsgm
