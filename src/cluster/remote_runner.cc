#include "cluster/remote_runner.h"

#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/site_node.h"
#include "net/tcp_socket.h"
#include "net/tcp_transport.h"

namespace dsgm {

StatusOr<RemoteSiteResult> RunRemoteSite(const BayesianNetwork& network,
                                         const RemoteSiteConfig& config) {
  if (config.site_id < 0) return InvalidArgumentError("site_id must be >= 0");

  // The coordinator may still be booting; retry the connect until the
  // timeout budget runs out.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(config.connect_timeout_ms);
  StatusOr<TcpSocket> socket = TcpSocket::Connect(config.host, config.port);
  while (!socket.ok() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    socket = TcpSocket::Connect(config.host, config.port);
  }
  if (!socket.ok()) return socket.status();

  TcpConnection connection(std::move(socket).value());
  DSGM_RETURN_IF_ERROR(connection.SendHello(config.site_id));
  connection.Start();

  SiteNode site(config.site_id, network, config.seed, connection.events(),
                connection.commands(), connection.updates());
  site.Run();

  // Protocol finished; report exact totals so the coordinator can validate
  // its estimates. Zero counters are implicit.
  UpdateBundle final_counts;
  final_counts.kind = UpdateBundle::Kind::kFinalCounts;
  final_counts.site = config.site_id;
  const std::vector<uint32_t>& counts = site.local_counts();
  for (size_t c = 0; c < counts.size(); ++c) {
    if (counts[c] != 0) {
      final_counts.reports.push_back(
          CounterReport{static_cast<int64_t>(c), counts[c]});
    }
  }
  if (!connection.updates()->Push(std::move(final_counts))) {
    return InternalError("coordinator vanished before the final counts report");
  }
  connection.Shutdown();

  RemoteSiteResult result;
  result.events_processed = site.events_processed();
  return result;
}

}  // namespace dsgm
