#include "cluster/remote_runner.h"

#include <chrono>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/timer.h"
#include "cluster/site_node.h"
#include "net/codec.h"
#include "net/tcp_socket.h"
#include "net/tcp_transport.h"

namespace dsgm {
namespace {

/// Latest coordinator heartbeat echo: written by the connection's reader
/// thread (TcpConnection::Options::on_heartbeat), read by the heartbeat
/// sender when it builds the next beat. Closing the NTP timestamp loop is
/// the only coupling between the two threads, hence the dedicated mutex.
struct EchoBox {
  Mutex mu;
  /// The echo's send_nanos (coordinator clock); 0 until the first echo.
  int64_t echo_nanos DSGM_GUARDED_BY(mu) = 0;
  /// Local clock when that echo arrived.
  int64_t echo_recv_nanos DSGM_GUARDED_BY(mu) = 0;
};

/// Sends kHeartbeat frames on a fixed cadence until stopped (or until the
/// connection breaks). Runs beside the SiteNode thread so liveness evidence
/// flows even while the site is parked in a blocking push or pop.
///
/// Each heartbeat piggybacks a kStatsReport frame sampled from `stats` (when
/// provided) — the coordinator's health table rides the liveness cadence for
/// free, no extra timer and no extra wakeups on either end. With
/// `ship_traces`, an incremental kTraceChunk drain of this process's trace
/// rings rides the same cadence (loss-tolerant: the drain cursor accounts
/// for ring overwrite, and the coordinator reads gaps from the sequence
/// numbers).
class HeartbeatSender {
 public:
  using StatsFn = std::function<SiteStatsReport()>;

  HeartbeatSender(TcpConnection* connection, int site_id, int interval_ms,
                  StatsFn stats, EchoBox* echo, bool ship_traces) {
    if (interval_ms <= 0) return;
    thread_ = std::thread([this, connection, site_id, interval_ms,
                           stats = std::move(stats), echo, ship_traces] {
      uint64_t heartbeats_sent = 0;
      TraceDrainCursor cursor;
      MutexLock lock(&mu_);
      while (!stop_) {
        // A spurious or racing wakeup before the interval elapses just
        // sends the heartbeat a little early — harmless, so no need to
        // re-arm the timed wait in an inner loop.
        cv_.WaitFor(&lock, std::chrono::milliseconds(interval_ms));
        if (stop_) break;
        lock.Unlock();
        HeartbeatTimestamps hb;
        if (echo != nullptr) {
          MutexLock echo_lock(&echo->mu);
          hb.echo_nanos = echo->echo_nanos;
          hb.echo_recv_nanos = echo->echo_recv_nanos;
        }
        hb.send_nanos = NowNanos();
        // Recorded before the drain below, so the beat's own trace event
        // ships in the chunk that rides it — the coordinator's post-mortem
        // of a dead site ends with that site's final heartbeat.
        Trace(TraceEventType::kHeartbeat, site_id,
              static_cast<int64_t>(heartbeats_sent + 1));
        bool sent = connection->SendFrame(MakeHeartbeat(site_id, hb));
        if (sent) {
          ++heartbeats_sent;
          if (stats) {
            SiteStatsReport report = stats();
            report.site = site_id;
            report.heartbeats_sent = heartbeats_sent;
            sent = connection->SendFrame(MakeStatsReport(report));
          }
        }
        if (sent && ship_traces) {
          TraceChunk chunk;
          chunk.site = site_id;
          if (DrainTraceEvents(&cursor, &chunk.events, &chunk.first_seq) > 0) {
            sent = connection->SendFrame(MakeTraceChunk(std::move(chunk)));
          }
        }
        lock.Lock();
        if (!sent) break;  // Peer gone; nothing left to prove alive to.
      }
    });
  }

  ~HeartbeatSender() { Stop(); }

  void Stop() DSGM_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      stop_ = true;
    }
    cv_.NotifyAll();
    if (thread_.joinable()) thread_.join();
  }

 private:
  Mutex mu_;
  CondVar cv_;
  bool stop_ DSGM_GUARDED_BY(mu_) = false;
  std::thread thread_;
};

}  // namespace

StatusOr<RemoteSiteResult> RunRemoteSite(const BayesianNetwork& network,
                                         const RemoteSiteConfig& config) {
  if (config.site_id < 0) return InvalidArgumentError("site_id must be >= 0");

  // The coordinator may still be booting; retry the connect until the
  // timeout budget runs out.
  const int64_t deadline_nanos =
      NowNanos() + static_cast<int64_t>(config.connect_timeout_ms) * 1000000;
  StatusOr<TcpSocket> socket = TcpSocket::Connect(config.host, config.port);
  while (!socket.ok() && NowNanos() < deadline_nanos) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    socket = TcpSocket::Connect(config.host, config.port);
  }
  if (!socket.ok()) return socket.status();

  EchoBox echo;
  TcpConnection::Options options;
  options.on_heartbeat = [&echo](const HeartbeatTimestamps& frame_hb,
                                 int64_t recv_nanos) {
    MutexLock lock(&echo.mu);
    echo.echo_nanos = frame_hb.send_nanos;
    echo.echo_recv_nanos = recv_nanos;
  };
  TcpConnection connection(std::move(socket).value(), options);
  DSGM_RETURN_IF_ERROR(connection.SendHello(config.site_id));
  connection.Start();

  SiteNode site(config.site_id, network, config.seed, connection.events(),
                connection.commands(), connection.updates());
  // The sender samples the node's relaxed stats atomics; safe while Run()
  // is live, and the sender is stopped before `site` leaves scope. The
  // echo box is written by the connection's reader thread, which Shutdown()
  // joins before either outlives this frame.
  HeartbeatSender heartbeats(&connection, config.site_id,
                             config.heartbeat_interval_ms,
                             [&site] { return site.StatsReport(); }, &echo,
                             config.ship_traces);
  site.Run();

  // Protocol finished; report exact totals so the coordinator can validate
  // its estimates. Zero counters are implicit.
  UpdateBundle final_counts;
  final_counts.kind = UpdateBundle::Kind::kFinalCounts;
  final_counts.site = config.site_id;
  const std::vector<uint32_t>& counts = site.local_counts();
  for (size_t c = 0; c < counts.size(); ++c) {
    if (counts[c] != 0) {
      final_counts.reports.push_back(
          CounterReport{static_cast<int64_t>(c), counts[c]});
    }
  }
  if (!connection.updates()->Push(std::move(final_counts))) {
    return InternalError("coordinator vanished before the final counts report");
  }

  // Linger until the coordinator closes the connection (bounded): the
  // coordinator's liveness policy treats any mid-run EOF as a site failure,
  // so the site must not be the one to hang up while the coordinator is
  // still collecting final counts from its peers. Heartbeats keep flowing
  // through the wait.
  const int64_t linger_deadline_nanos =
      NowNanos() + static_cast<int64_t>(config.shutdown_linger_ms) * 1000000;
  while (!connection.finished() && NowNanos() < linger_deadline_nanos) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  heartbeats.Stop();
  connection.Shutdown();

  RemoteSiteResult result;
  result.events_processed = site.events_processed();
  return result;
}

}  // namespace dsgm
