#include "cluster/remote_runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/coordinator_node.h"
#include "cluster/site_node.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/timer.h"
#include "net/tcp_socket.h"
#include "net/tcp_transport.h"

namespace dsgm {
namespace {

Status WritePortFile(const std::string& path, int port) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return InternalError("cannot write port file " + tmp);
    out << port << "\n";
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return InternalError("cannot rename port file into place: " + path);
  }
  return Status::Ok();
}

}  // namespace

StatusOr<ClusterResult> RunRemoteCoordinator(const BayesianNetwork& network,
                                             const RemoteCoordinatorConfig& config) {
  DSGM_RETURN_IF_ERROR(config.cluster.tracker.Validate());
  if (config.cluster.num_events <= 0) {
    return InvalidArgumentError("num_events must be positive");
  }
  const int k = config.cluster.tracker.num_sites;
  const int64_t total_counters =
      network.TotalJointCells() + network.TotalParentCells();

  StatusOr<TcpListener> listener = TcpListener::Listen(config.port, k + 8);
  if (!listener.ok()) return listener.status();
  if (!config.port_file.empty()) {
    DSGM_RETURN_IF_ERROR(WritePortFile(config.port_file, listener->port()));
  }

  WallTimer wall;

  // Accept one connection per site; the hello frame carries the site id.
  // When the last reader exits (every site gone), the merged update queue
  // closes, so a cluster whose sites all vanished fails cleanly instead of
  // blocking forever in a pop. (A single site dying mid-run while others
  // stay connected can still stall the protocol — see ROADMAP, transport
  // follow-ons.)
  BoundedQueue<UpdateBundle> merged_updates(8192);
  QueueChannel<UpdateBundle> update_channel(&merged_updates);
  std::atomic<int> active_readers{k};
  TcpConnection::Options options;
  options.shared_updates = &merged_updates;
  options.buffered_commands = true;  // Deadlock avoidance; see Options.
  options.on_reader_exit = [&active_readers, &merged_updates] {
    if (active_readers.fetch_sub(1) == 1) merged_updates.Close();
  };
  StatusOr<std::vector<std::unique_ptr<TcpConnection>>> accepted =
      AcceptSiteConnections(&listener.value(), k, options);
  if (!accepted.ok()) return accepted.status();
  std::vector<std::unique_ptr<TcpConnection>> connections =
      std::move(accepted).value();

  std::vector<Channel<EventBatch>*> event_channels;
  std::vector<Channel<RoundAdvance>*> command_channels;
  for (int s = 0; s < k; ++s) {
    event_channels.push_back(connections[static_cast<size_t>(s)]->events());
    command_channels.push_back(connections[static_cast<size_t>(s)]->commands());
  }

  CoordinatorNode coordinator(LayoutEpsilons(network, config.cluster.tracker),
                              total_counters, k,
                              config.cluster.tracker.probability_constant,
                              &update_channel, command_channels);
  std::thread coordinator_thread([&coordinator] { coordinator.Run(); });

  // Same seed schedule as RunCluster (k site seeds are burned even though
  // remote sites seed themselves), so the dispatched stream is identical to
  // an in-process run with the same config.
  Rng seeder(config.cluster.tracker.seed);
  for (int s = 0; s < k; ++s) seeder.Next();
  const uint64_t sampler_seed = seeder.Next();
  const uint64_t router_seed = seeder.Next();
  DispatchEvents(network, config.cluster.num_events, config.cluster.batch_size,
                 sampler_seed, router_seed, event_channels);

  coordinator_thread.join();

  // Protocol finished (every site acknowledged; command channels closed).
  // Each site now reports its exact totals for validation.
  std::vector<uint64_t> exact(static_cast<size_t>(total_counters), 0);
  std::vector<uint8_t> reported(static_cast<size_t>(k), 0);
  int final_reports = 0;
  std::vector<UpdateBundle> batch;
  while (final_reports < k) {
    batch.clear();
    if (update_channel.PopBatch(&batch, 64) == 0) {
      // Closed and drained: every site's connection ended without all
      // final counts arriving.
      return InternalError("a site disconnected before sending final counts");
    }
    for (UpdateBundle& bundle : batch) {
      // One report per distinct site: a duplicated or forged bundle must
      // not satisfy the wait while a real site's totals are still missing.
      if (bundle.kind != UpdateBundle::Kind::kFinalCounts) continue;
      if (bundle.site < 0 || bundle.site >= k ||
          reported[static_cast<size_t>(bundle.site)]) {
        continue;
      }
      reported[static_cast<size_t>(bundle.site)] = 1;
      ++final_reports;
      for (const CounterReport& report : bundle.reports) {
        if (report.counter < 0 || report.counter >= total_counters) {
          return InvalidArgumentError("final counts report an unknown counter id");
        }
        exact[static_cast<size_t>(report.counter)] += report.value;
      }
    }
  }

  ClusterResult result;
  result.wall_seconds = wall.ElapsedSeconds();
  // Sites are remote; "processed" is the dispatched stream length (the
  // validation counts confirm delivery).
  result.events_processed = config.cluster.num_events;
  result.transport_measured = true;
  for (const auto& connection : connections) {
    result.transport_bytes_down += connection->bytes_sent();
    result.transport_bytes_up += connection->bytes_received();
  }
  FinalizeClusterResult(coordinator, exact, &result);

  for (auto& connection : connections) connection->Shutdown();
  return result;
}

StatusOr<RemoteSiteResult> RunRemoteSite(const BayesianNetwork& network,
                                         const RemoteSiteConfig& config) {
  if (config.site_id < 0) return InvalidArgumentError("site_id must be >= 0");

  // The coordinator may still be booting; retry the connect until the
  // timeout budget runs out.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(config.connect_timeout_ms);
  StatusOr<TcpSocket> socket = TcpSocket::Connect(config.host, config.port);
  while (!socket.ok() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    socket = TcpSocket::Connect(config.host, config.port);
  }
  if (!socket.ok()) return socket.status();

  TcpConnection connection(std::move(socket).value());
  DSGM_RETURN_IF_ERROR(connection.SendHello(config.site_id));
  connection.Start();

  SiteNode site(config.site_id, network, config.seed, connection.events(),
                connection.commands(), connection.updates());
  site.Run();

  // Protocol finished; report exact totals so the coordinator can validate
  // its estimates. Zero counters are implicit.
  UpdateBundle final_counts;
  final_counts.kind = UpdateBundle::Kind::kFinalCounts;
  final_counts.site = config.site_id;
  const std::vector<uint32_t>& counts = site.local_counts();
  for (size_t c = 0; c < counts.size(); ++c) {
    if (counts[c] != 0) {
      final_counts.reports.push_back(
          CounterReport{static_cast<int64_t>(c), counts[c]});
    }
  }
  if (!connection.updates()->Push(std::move(final_counts))) {
    return InternalError("coordinator vanished before the final counts report");
  }
  connection.Shutdown();

  RemoteSiteResult result;
  result.events_processed = site.events_processed();
  return result;
}

}  // namespace dsgm
