#include "api/sharded_router.h"

#include <chrono>

#include "common/check.h"
#include "common/metrics.h"

namespace dsgm {
namespace internal {

namespace {

// Cold-path instruments only — the lock-free steady state stays untouched.
Counter* LaneFullStalls() {
  static Counter* const c =
      MetricsRegistry::Global().GetCounter("api.lanehub.lane_full_stalls");
  return c;
}
Counter* ConsumerParks() {
  static Counter* const c =
      MetricsRegistry::Global().GetCounter("api.lanehub.consumer_parks");
  return c;
}

}  // namespace

/// One producer's private SPSC lane. Push is single-producer by contract;
/// the pop side is only ever called by the hub's single consumer.
class SpscLaneHub::Lane final : public Channel<EventBatch> {
 public:
  Lane(SpscLaneHub* hub, size_t capacity) : hub_(hub), ring_(capacity) {}

  bool Push(EventBatch item) override {
    while (true) {
      if (ring_.closed()) return false;
      if (ring_.TryPush(std::move(item))) break;
      // Lane full: park until the consumer frees space. The sleeper flag +
      // locked re-check pairs with NotifySpace below; the timed wait bounds
      // the one unfenced window (flag store vs the consumer's pop) without
      // costing anything in the steady state.
      LaneFullStalls()->Increment();
      MutexLock lock(&mu_);
      producer_waiting_.store(true, std::memory_order_seq_cst);
      if (ring_.closed()) {
        producer_waiting_.store(false, std::memory_order_relaxed);
        return false;
      }
      if (ring_.TryPush(std::move(item))) {
        producer_waiting_.store(false, std::memory_order_relaxed);
        break;
      }
      space_cv_.WaitFor(&lock, std::chrono::milliseconds(50));
      producer_waiting_.store(false, std::memory_order_relaxed);
    }
    hub_->NotifyData();
    return true;
  }

  size_t PopBatch(std::vector<EventBatch>*, size_t) override {
    DSGM_CHECK(false) << "lane pops go through the hub";
    return 0;
  }

  size_t TryPopBatch(std::vector<EventBatch>* out, size_t max_items) override {
    const size_t got = ring_.TryPopBatch(out, max_items);
    if (got > 0 && producer_waiting_.load(std::memory_order_seq_cst)) {
      NotifySpace();
    }
    return got;
  }

  void Close() override {
    ring_.Close();
    NotifySpace();
  }

  bool Drained() {
    // Consumer side: closed and nothing left to pop. The acquire load in
    // size_approx keeps a racing final push visible before the close.
    return ring_.closed() && ring_.size_approx() == 0;
  }

 private:
  void NotifySpace() {
    // Taking the lane mutex serializes with the producer's locked re-check,
    // so the wake cannot slip between its failed TryPush and its wait.
    MutexLock lock(&mu_);
    space_cv_.NotifyOne();
  }

  SpscLaneHub* hub_;
  SpscRing<EventBatch> ring_;
  Mutex mu_;
  CondVar space_cv_;
  std::atomic<bool> producer_waiting_{false};
};

SpscLaneHub::SpscLaneHub(size_t lane_capacity) : lane_capacity_(lane_capacity) {}

SpscLaneHub::~SpscLaneHub() = default;

Channel<EventBatch>* SpscLaneHub::AddLane() {
  MutexLock lock(&lanes_mu_);
  lanes_.push_back(std::make_unique<Lane>(this, lane_capacity_));
  Lane* lane = lanes_.back().get();
  if (closed_.load(std::memory_order_acquire)) lane->Close();
  lane_count_.store(lanes_.size(), std::memory_order_release);
  return lane;
}

bool SpscLaneHub::Push(EventBatch) {
  DSGM_CHECK(false) << "SpscLaneHub: producers must push through AddLane()";
  return false;
}

size_t SpscLaneHub::SweepLanes(std::vector<EventBatch>* out, size_t max_items) {
  if (cached_lanes_.size() != lane_count_.load(std::memory_order_acquire)) {
    MutexLock lock(&lanes_mu_);
    cached_lanes_.clear();
    for (const auto& lane : lanes_) cached_lanes_.push_back(lane.get());
  }
  size_t got = 0;
  const size_t n = cached_lanes_.size();
  for (size_t i = 0; i < n && got < max_items; ++i) {
    // Rotate the starting lane so one chatty producer cannot starve the
    // others out of their round-robin share.
    Lane* lane = cached_lanes_[(cursor_ + i) % n];
    got += lane->TryPopBatch(out, max_items - got);
  }
  if (n > 0) cursor_ = (cursor_ + 1) % n;
  return got;
}

size_t SpscLaneHub::TryPopBatch(std::vector<EventBatch>* out, size_t max_items) {
  return SweepLanes(out, max_items);
}

size_t SpscLaneHub::PopBatch(std::vector<EventBatch>* out, size_t max_items) {
  while (true) {
    const size_t got = SweepLanes(out, max_items);
    if (got > 0) return got;
    if (closed_.load(std::memory_order_acquire)) {
      // Closed: report 0 only once every lane is drained (a producer may
      // have completed a push that raced the close).
      bool drained = true;
      for (Lane* lane : cached_lanes_) drained = drained && lane->Drained();
      if (drained &&
          cached_lanes_.size() == lane_count_.load(std::memory_order_acquire)) {
        return 0;
      }
      continue;
    }
    // Park until a producer pushes. Flag first, then one more sweep: a push
    // that lands between the sweep above and the flag store is caught by
    // the re-check; one that races the re-check itself is caught by the
    // producer seeing the flag, or at worst by the timed wake.
    MutexLock lock(&sleep_mu_);
    consumer_waiting_.store(true, std::memory_order_seq_cst);
    const size_t again = SweepLanes(out, max_items);
    if (again > 0 || closed_.load(std::memory_order_acquire)) {
      consumer_waiting_.store(false, std::memory_order_relaxed);
      if (again > 0) return again;
      continue;
    }
    ConsumerParks()->Increment();
    data_cv_.WaitFor(&lock, std::chrono::milliseconds(50));
    consumer_waiting_.store(false, std::memory_order_relaxed);
  }
}

void SpscLaneHub::NotifyData() {
  if (consumer_waiting_.load(std::memory_order_seq_cst)) {
    MutexLock lock(&sleep_mu_);
    data_cv_.NotifyOne();
  }
}

void SpscLaneHub::Close() {
  closed_.store(true, std::memory_order_release);
  {
    MutexLock lock(&lanes_mu_);
    for (const auto& lane : lanes_) lane->Close();
  }
  MutexLock lock(&sleep_mu_);
  data_cv_.NotifyAll();
}

}  // namespace internal
}  // namespace dsgm
