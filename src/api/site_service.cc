#include "dsgm/site_service.h"

#include "cluster/remote_runner.h"

namespace dsgm {

StatusOr<SiteServiceResult> ServeSite(const BayesianNetwork& network,
                                      const SiteServiceConfig& config) {
  RemoteSiteConfig remote;
  remote.site_id = config.site_id;
  remote.host = config.coordinator_host;
  remote.port = config.coordinator_port;
  remote.seed = config.seed;
  remote.connect_timeout_ms = config.connect_timeout_ms;
  remote.heartbeat_interval_ms = config.heartbeat_interval_ms;
  // A served site is its own process with its own trace rings; ship them so
  // the coordinator's merged timeline covers every process in the cluster.
  remote.ship_traces = true;
  StatusOr<RemoteSiteResult> result = RunRemoteSite(network, remote);
  if (!result.ok()) return result.status();
  SiteServiceResult out;
  out.events_processed = result->events_processed;
  return out;
}

}  // namespace dsgm
