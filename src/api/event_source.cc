#include "dsgm/event_source.h"

#include <utility>

#include "bayes/sampler.h"

namespace dsgm {
namespace {

class SamplerSource final : public EventSource {
 public:
  SamplerSource(const BayesianNetwork& network, uint64_t seed, int64_t limit)
      : sampler_(network, seed), remaining_(limit) {}

  bool Next(Instance* out) override {
    if (remaining_ <= 0) return false;
    --remaining_;
    sampler_.Sample(out);
    return true;
  }

 private:
  ForwardSampler sampler_;
  int64_t remaining_;
};

class ReplaySource final : public EventSource {
 public:
  explicit ReplaySource(std::vector<Instance> events)
      : events_(std::move(events)) {}

  bool Next(Instance* out) override {
    if (next_ >= events_.size()) return false;
    *out = events_[next_++];
    return true;
  }

 private:
  std::vector<Instance> events_;
  size_t next_ = 0;
};

class CallbackSource final : public EventSource {
 public:
  explicit CallbackSource(std::function<bool(Instance*)> next)
      : next_(std::move(next)) {}

  bool Next(Instance* out) override { return next_(out); }

 private:
  std::function<bool(Instance*)> next_;
};

}  // namespace

std::unique_ptr<EventSource> MakeSamplerSource(const BayesianNetwork& network,
                                               uint64_t seed, int64_t limit) {
  return std::make_unique<SamplerSource>(network, seed, limit);
}

std::unique_ptr<EventSource> MakeReplaySource(std::vector<Instance> events) {
  return std::make_unique<ReplaySource>(std::move(events));
}

std::unique_ptr<EventSource> MakeCallbackSource(
    std::function<bool(Instance*)> next) {
  return std::make_unique<CallbackSource>(std::move(next));
}

}  // namespace dsgm
