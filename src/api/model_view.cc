#include "dsgm/model_view.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "core/classifier.h"

namespace dsgm {

ModelView::ModelView(const BayesianNetwork& network,
                     std::shared_ptr<const CounterLayout> layout,
                     std::vector<double> estimates, int64_t events_observed,
                     CommStats comm, double laplace_alpha)
    : network_(&network),
      layout_(std::move(layout)),
      estimates_(std::move(estimates)),
      events_observed_(events_observed),
      comm_(comm),
      laplace_alpha_(laplace_alpha) {
  DSGM_CHECK_EQ(static_cast<int64_t>(estimates_.size()),
                layout_->total_counters());
}

double ModelView::CpdEstimate(int variable, int value, int64_t parent_row) const {
  DSGM_CHECK(!empty()) << "querying an empty ModelView";
  const double joint =
      estimates_[static_cast<size_t>(layout_->JointId(variable, parent_row, value))];
  const double parent =
      estimates_[static_cast<size_t>(layout_->ParentId(variable, parent_row))];
  const double cardinality = layout_->cards[static_cast<size_t>(variable)];
  if (laplace_alpha_ > 0.0) {
    return (joint + laplace_alpha_) / (parent + laplace_alpha_ * cardinality);
  }
  if (parent <= 0.0) {
    // No observed mass for this parent assignment: fall back to uniform
    // (the MLE is undefined here; the paper queries only events of
    // probability >= 0.01 for the same reason).
    return 1.0 / cardinality;
  }
  return joint / parent;
}

double ModelView::JointProbability(const Instance& instance) const {
  DSGM_CHECK(!empty()) << "querying an empty ModelView";
  DSGM_CHECK_EQ(static_cast<int>(instance.size()), layout_->num_vars);
  double prob = 1.0;
  for (int i = 0; i < layout_->num_vars; ++i) {
    prob *= CpdEstimate(i, instance[static_cast<size_t>(i)],
                        layout_->ParentRowOf(i, instance));
  }
  return prob;
}

double ModelView::JointProbability(const PartialAssignment& assignment) const {
  DSGM_CHECK(!empty()) << "querying an empty ModelView";
  return ClosedAssignmentProbability(
      *layout_, assignment, [this](int variable, int value, int64_t row) {
        return CpdEstimate(variable, value, row);
      });
}

int Predict(const ModelView& model, int target, const Instance& evidence) {
  DSGM_CHECK(!model.empty()) << "predicting from an empty ModelView";
  return PredictWithCpd(model.network(), target, evidence,
                        [&model](int variable, int value, int64_t row) {
                          return model.CpdEstimate(variable, value, row);
                        });
}

}  // namespace dsgm
