// The kLocalTcp backend: the coordinator side of a genuinely socketed
// cluster, served by the reactor transport — ONE I/O thread owns every
// site connection (net/reactor_transport.h), so the coordinator scales to
// hundreds of sites without hundreds of reader/writer threads. Sites
// either run as in-process threads serving the full site role through
// ServeSite/RunRemoteSite (the default, self-contained mode) or as
// external dsgm_site processes (SessionOptions::external_sites — the
// multi-host deployment the dsgm_coordinator binary drives, reachable from
// other hosts via SessionOptions::bind_address).
//
// Liveness (the FailRun policy): the reactor arms a per-site deadline; a
// site silent past SessionOptions::liveness_timeout_ms — or whose
// connection drops mid-run — is declared dead. The failure handler records
// an UNAVAILABLE status naming the site, cancels the site's outstanding
// syncs on the CoordinatorNode, and closes the merged update queue so the
// protocol loop exits; every subsequent session call reports the recorded
// status instead of stalling.

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <utility>

#include "api/backends.h"
#include "cluster/remote_runner.h"
#include "common/check.h"
#include "common/tracing.h"
#include "net/reactor_transport.h"
#include "net/tcp_socket.h"

namespace dsgm {
namespace internal {
namespace {

Status WritePortFile(const std::string& path, int port) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return InternalError("cannot write port file " + tmp);
    out << port << "\n";
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return InternalError("cannot rename port file into place: " + path);
  }
  return Status::Ok();
}

Status WriteTextFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return InternalError("cannot write " + path);
  out << contents;
  out.flush();
  if (!out) return InternalError("short write to " + path);
  return Status::Ok();
}

class LocalTcpSession final : public ClusterSessionBase {
 public:
  LocalTcpSession(const BayesianNetwork& network, const SessionOptions& options,
                  const SeedSchedule& seeds)
      : ClusterSessionBase(Backend::kLocalTcp, network, options, seeds),
        seeds_(seeds) {}

  ~LocalTcpSession() override { Abort(); }

  /// Listens, (optionally) spawns the in-process site threads, accepts one
  /// hello-identified connection per site onto the reactor, and starts the
  /// coordinator.
  Status Init() {
    const int k = num_sites_;
    StatusOr<TcpListener> listener =
        TcpListener::Listen(options_.listen_port, k + 8, options_.bind_address);
    if (!listener.ok()) return listener.status();
    if (!options_.port_file.empty()) {
      DSGM_RETURN_IF_ERROR(WritePortFile(options_.port_file, listener->port()));
    }

    trace_board_ = std::make_unique<ClusterTraceBoard>(k);
    {
      AlertConfig alert_config;
      if (options_.heartbeat_interval_ms > 0) {
        alert_config.heartbeat_interval_ms = options_.heartbeat_interval_ms;
      }
      MutexLock lock(&alert_mu_);
      alert_engine_ = std::make_unique<AlertEngine>(alert_config);
    }

    ReactorCoordinator::Options io_options;
    io_options.io_backend = options_.io_backend;
    io_options.liveness_timeout_ms = options_.liveness_timeout_ms;
    io_options.health = &health_board_;
    io_options.trace_board = trace_board_.get();
    io_options.on_site_failure = [this](int site, const Status& status) {
      OnSiteFailure(site, status);
    };
    coordinator_io_ = std::make_unique<ReactorCoordinator>(k, io_options);

    if (!options_.external_sites) {
      site_status_.assign(static_cast<size_t>(k), Status::Ok());
      const int port = listener->port();
      // A wildcard bind still answers on loopback; a specific interface
      // address only answers there.
      const std::string host = options_.bind_address == "0.0.0.0"
                                   ? "127.0.0.1"
                                   : options_.bind_address;
      for (int s = 0; s < k; ++s) {
        RemoteSiteConfig site_config;
        site_config.site_id = s;
        site_config.host = host;
        site_config.port = port;
        site_config.seed = seeds_.site_seeds[static_cast<size_t>(s)];
        site_config.connect_timeout_ms = options_.site_connect_timeout_ms;
        site_config.heartbeat_interval_ms = options_.heartbeat_interval_ms;
        site_threads_.emplace_back([this, s, site_config] {
          site_status_[static_cast<size_t>(s)] =
              RunRemoteSite(network(), site_config).status();
        });
      }
    }

    const Status accepted = coordinator_io_->AcceptSites(&listener.value());
    if (!accepted.ok()) {
      // Close the listener BEFORE joining: a site parked in the accept
      // backlog only sees its connection die when the listening socket
      // goes away, and a site still retrying its connect runs out its
      // (bounded) timeout.
      listener->Close();
      coordinator_io_->Shutdown();
      JoinSiteThreads();
      return accepted;
    }

    std::vector<Channel<RoundAdvance>*> command_channels;
    for (int s = 0; s < k; ++s) {
      event_channels_.push_back(coordinator_io_->events(s));
      command_channels.push_back(coordinator_io_->commands(s));
    }
    StartCoordinator(coordinator_io_->updates(), std::move(command_channels));
    coordinator_started_.store(true, std::memory_order_release);
    // The board is live (reactor-fed) from here on.
    StartMetricsDump(options_.metrics_dump_ms, options_.metrics_dump_stream,
                     [this] { return Metrics(); });
    return Status::Ok();
  }

  StatusOr<RunReport> Finish() override {
    if (finished_.load(std::memory_order_acquire)) {
      return FailedPreconditionError("session: Finish called twice");
    }
    finished_.store(true, std::memory_order_release);
    const Status flushed = FlushAllShards();
    if (!flushed.ok()) {
      // A site vanished mid-run: tear everything down before reporting,
      // so the error return does not leak live threads and sockets.
      Abort();
      return WithPostmortem(flushed);
    }
    CloseEventChannels();
    JoinCoordinator();

    // Protocol finished (every live site acknowledged; command channels
    // closed). Each site now reports its exact totals for validation.
    std::vector<uint64_t> exact_totals(
        static_cast<size_t>(layout_->total_counters()), 0);
    const Status collected = CollectFinalCounts(&exact_totals);
    if (!collected.ok()) {
      Abort();
      return WithPostmortem(RunFailureOr(collected));
    }

    ClusterResult result;
    result.wall_seconds = wall_.ElapsedSeconds();
    // In external mode the sites are remote; "processed" is the accepted
    // stream length (the validation counts confirm delivery).
    result.events_processed = events_pushed();
    result.transport_measured = true;
    result.transport_bytes_up = coordinator_io_->bytes_up();
    result.transport_bytes_down = coordinator_io_->bytes_down();
    FinalizeClusterResult(*coordinator_, exact_totals, &result);

    // Closing the connections from our side releases the sites' post-final-
    // counts linger; only then are the in-process site threads joinable.
    coordinator_io_->Shutdown();
    JoinSiteThreads();
    // A failed site fails the run BEFORE the final model is published:
    // Snapshot() after a failed Finish must error, not present a model
    // validated against incomplete sites. A liveness failure recorded
    // during the final-counts window (rare, but a site can die between its
    // last sync and its final report) is surfaced the same way.
    const Status site_error = FirstSiteError();
    if (!site_error.ok()) return WithPostmortem(site_error);
    const Status failure = run_failure();
    if (!failure.ok()) return WithPostmortem(failure);

    // Capture metrics while the board still reflects the run, then stop
    // the dumper (its final line is this same end-of-run snapshot).
    RunReport report = ReportFromClusterResult(result, Backend::kLocalTcp);
    report.model = ViewFromCoordinator(result.events_processed);
    report.metrics = Metrics();
    report.model.AttachMetrics(report.metrics);
    StopMetricsDump();
    SetFinalView(report.model);
    if (!options_.trace_out.empty()) {
      // Observability output must never fail an otherwise-healthy run: a
      // write error leaves trace_path empty instead of erroring Finish.
      const Status written = WriteTextFile(
          options_.trace_out,
          TimelineToChromeJson(trace_board_->MergedClusterTimeline(),
                               trace_board_->OffsetsNanos()));
      if (written.ok()) report.trace_path = options_.trace_out;
    }
    report.postmortem_path = postmortem_path_;
    return report;
  }

 private:
  /// Alert rules ride the health cadence: every Metrics() poll — the dump
  /// thread's tick, or an explicit Metrics() call — scores the live board
  /// before it is spliced into the snapshot. The engine itself is
  /// single-threaded by contract, so concurrent pollers serialize here.
  void RefreshSiteHealth() const override {
    MutexLock lock(&alert_mu_);
    if (alert_engine_ == nullptr) return;
    const int64_t now = NowNanos();
    alert_engine_->Evaluate(health_board_.Snapshot(now), now);
  }

  /// The flight recorder: dumps the post-mortem bundle (once per session)
  /// and returns `reason` annotated with the bundle's path — Finish()
  /// returns no report on failure, so the path must travel in the status.
  /// A bundle write error changes nothing: observability output explains
  /// failures, it never replaces or causes them.
  Status WithPostmortem(Status reason) {
    if (options_.postmortem_dir.empty() || postmortem_written_) return reason;
    postmortem_written_ = true;
    FlightRecord record;
    record.failure_reason = reason.message();
    record.metrics = Metrics();
    record.timeline = trace_board_->MergedClusterTimeline();
    record.offsets_nanos = trace_board_->OffsetsNanos();
    for (int s = 0; s < num_sites_; ++s) {
      record.trace_events_lost += trace_board_->EventsLost(s);
    }
    const std::string path =
        options_.postmortem_dir + "/dsgm_postmortem.json";
    if (WriteTextFile(path, FlightRecordToJson(record)).ok()) {
      postmortem_path_ = path;
      return Status(reason.code(),
                    reason.message() + " (post-mortem: " + path + ")");
    }
    return reason;
  }

  /// Reactor-thread handler for a site declared dead (liveness timeout or
  /// mid-run disconnect) — the FailRun policy. Must not call
  /// ReactorCoordinator::Shutdown (it would join the thread running this).
  void OnSiteFailure(int site, const Status& status) {
    RecordRunFailure(status);
    // Cancel the dead site's outstanding syncs so the protocol state can
    // settle, then close the merged queue so the coordinator loop (and a
    // Finish() blocked collecting final counts) wakes up and observes the
    // failure instead of waiting for a reply that will never come.
    if (coordinator_started_.load(std::memory_order_acquire)) {
      coordinator_->CancelSite(site);
    }
    coordinator_io_->merged_updates()->Close();
  }

  Status CollectFinalCounts(std::vector<uint64_t>* exact_totals) {
    const int k = num_sites_;
    const int64_t total_counters = layout_->total_counters();
    std::vector<uint8_t> reported(static_cast<size_t>(k), 0);
    int final_reports = 0;
    std::vector<UpdateBundle> batch;
    Channel<UpdateBundle>* updates = coordinator_io_->updates();
    while (final_reports < k) {
      batch.clear();
      if (updates->PopBatch(&batch, 64) == 0) {
        // Closed and drained: every site's connection ended (or the run
        // failed) without all final counts arriving.
        return InternalError("a site disconnected before sending final counts");
      }
      for (UpdateBundle& bundle : batch) {
        // One report per distinct site: a duplicated or forged bundle must
        // not satisfy the wait while a real site's totals are missing.
        if (bundle.kind != UpdateBundle::Kind::kFinalCounts) continue;
        if (bundle.site < 0 || bundle.site >= k ||
            reported[static_cast<size_t>(bundle.site)]) {
          continue;
        }
        reported[static_cast<size_t>(bundle.site)] = 1;
        ++final_reports;
        for (const CounterReport& report : bundle.reports) {
          if (report.counter < 0 || report.counter >= total_counters) {
            return InvalidArgumentError(
                "final counts report an unknown counter id");
          }
          (*exact_totals)[static_cast<size_t>(report.counter)] += report.value;
        }
      }
    }
    return Status::Ok();
  }

  void JoinSiteThreads() {
    for (std::thread& thread : site_threads_) {
      if (thread.joinable()) thread.join();
    }
  }

  Status FirstSiteError() const {
    for (size_t s = 0; s < site_status_.size(); ++s) {
      if (!site_status_[s].ok()) {
        return InternalError("site " + std::to_string(s) +
                             " failed: " + site_status_[s].message());
      }
    }
    return Status::Ok();
  }

  /// Best-effort teardown for sessions dropped mid-run (or failed runs):
  /// stopping the reactor and shutting the connections down unblocks the
  /// site threads and the coordinator.
  void Abort() {
    StopMetricsDump();
    if (coordinator_io_ != nullptr) coordinator_io_->Shutdown();
    JoinCoordinator();
    JoinSiteThreads();
  }

  const SeedSchedule seeds_;
  /// Fed by the reactor I/O thread (trace chunks, skew samples); read by
  /// Finish's export and the flight recorder. Outlives the reactor.
  std::unique_ptr<ClusterTraceBoard> trace_board_;
  /// AlertEngine is single-threaded by contract; Metrics() is not.
  mutable Mutex alert_mu_;
  mutable std::unique_ptr<AlertEngine> alert_engine_
      DSGM_GUARDED_BY(alert_mu_);
  /// Where the flight recorder dumped, if it did. Finish-thread only.
  std::string postmortem_path_;
  bool postmortem_written_ = false;
  std::unique_ptr<ReactorCoordinator> coordinator_io_;
  /// OnSiteFailure can fire while Init is still accepting sites, before
  /// coordinator_ exists; it must not touch a null CoordinatorNode.
  std::atomic<bool> coordinator_started_{false};
  std::vector<std::thread> site_threads_;
  std::vector<Status> site_status_;
};

}  // namespace

StatusOr<std::unique_ptr<Session>> CreateLocalTcpSession(
    const BayesianNetwork& network, const SessionOptions& options) {
  auto session = std::unique_ptr<LocalTcpSession>(new LocalTcpSession(
      network, options, DeriveSeedSchedule(options.tracker)));
  DSGM_RETURN_IF_ERROR(session->Init());
  return std::unique_ptr<Session>(std::move(session));
}

}  // namespace internal
}  // namespace dsgm
