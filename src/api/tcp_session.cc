// The kLocalTcp backend: the coordinator side of a genuinely socketed
// cluster. One TCP connection per site carries codec-serialized frames;
// sites either run as in-process threads serving the full site role
// through ServeSite/RunRemoteSite (the default, self-contained mode) or as
// external dsgm_site processes (SessionOptions::external_sites — the
// multi-host deployment the dsgm_coordinator binary drives).

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <utility>

#include "api/backends.h"
#include "cluster/remote_runner.h"
#include "common/check.h"
#include "net/tcp_socket.h"
#include "net/tcp_transport.h"

namespace dsgm {
namespace internal {
namespace {

Status WritePortFile(const std::string& path, int port) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return InternalError("cannot write port file " + tmp);
    out << port << "\n";
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return InternalError("cannot rename port file into place: " + path);
  }
  return Status::Ok();
}

class LocalTcpSession final : public ClusterSessionBase {
 public:
  LocalTcpSession(const BayesianNetwork& network, const SessionOptions& options,
                  const SeedSchedule& seeds)
      : ClusterSessionBase(Backend::kLocalTcp, network, options, seeds),
        seeds_(seeds),
        merged_updates_(8192),
        update_channel_(&merged_updates_),
        active_readers_(options.tracker.num_sites) {}

  ~LocalTcpSession() override { Abort(); }

  /// Listens, (optionally) spawns the in-process site threads, accepts one
  /// hello-identified connection per site, and starts the coordinator.
  Status Init() {
    const int k = num_sites_;
    StatusOr<TcpListener> listener =
        TcpListener::Listen(options_.listen_port, k + 8);
    if (!listener.ok()) return listener.status();
    if (!options_.port_file.empty()) {
      DSGM_RETURN_IF_ERROR(WritePortFile(options_.port_file, listener->port()));
    }

    TcpConnection::Options connection_options;
    connection_options.shared_updates = &merged_updates_;
    connection_options.buffered_commands = true;  // Deadlock avoidance.
    // When the last reader exits (every site gone), the merged update queue
    // closes, so a cluster whose sites all vanished fails cleanly instead
    // of blocking forever in a pop.
    connection_options.on_reader_exit = [this] {
      if (active_readers_.fetch_sub(1) == 1) merged_updates_.Close();
    };

    if (!options_.external_sites) {
      site_status_.assign(static_cast<size_t>(k), Status::Ok());
      const int port = listener->port();
      for (int s = 0; s < k; ++s) {
        RemoteSiteConfig site_config;
        site_config.site_id = s;
        site_config.port = port;
        site_config.seed = seeds_.site_seeds[static_cast<size_t>(s)];
        site_config.connect_timeout_ms = options_.site_connect_timeout_ms;
        site_threads_.emplace_back([this, s, site_config] {
          site_status_[static_cast<size_t>(s)] =
              RunRemoteSite(network(), site_config).status();
        });
      }
    }

    StatusOr<std::vector<std::unique_ptr<TcpConnection>>> accepted =
        AcceptSiteConnections(&listener.value(), k, connection_options);
    if (!accepted.ok()) {
      // Partial accepts were torn down by the StatusOr. Close the listener
      // BEFORE joining: a site parked in the accept backlog only sees its
      // connection die when the listening socket goes away, and a site
      // still retrying its connect runs out its (bounded) timeout.
      listener->Close();
      JoinSiteThreads();
      return accepted.status();
    }
    connections_ = std::move(accepted).value();

    std::vector<Channel<RoundAdvance>*> command_channels;
    for (int s = 0; s < k; ++s) {
      event_channels_.push_back(connections_[static_cast<size_t>(s)]->events());
      command_channels.push_back(connections_[static_cast<size_t>(s)]->commands());
    }
    StartCoordinator(&update_channel_, std::move(command_channels));
    return Status::Ok();
  }

  StatusOr<RunReport> Finish() override {
    if (finished_) return FailedPreconditionError("session: Finish called twice");
    finished_ = true;
    const Status flushed = FlushAll();
    if (!flushed.ok()) {
      // A site vanished mid-run: tear everything down before reporting,
      // so the error return does not leak live threads and sockets.
      Abort();
      return flushed;
    }
    CloseEventChannels();
    JoinCoordinator();

    // Protocol finished (every site acknowledged; command channels
    // closed). Each site now reports its exact totals for validation.
    std::vector<uint64_t> exact_totals(
        static_cast<size_t>(layout_->total_counters()), 0);
    const Status collected = CollectFinalCounts(&exact_totals);
    if (!collected.ok()) {
      Abort();
      return collected;
    }

    ClusterResult result;
    result.wall_seconds = wall_.ElapsedSeconds();
    // In external mode the sites are remote; "processed" is the accepted
    // stream length (the validation counts confirm delivery).
    result.events_processed = events_pushed_;
    result.transport_measured = true;
    for (const auto& connection : connections_) {
      result.transport_bytes_down += connection->bytes_sent();
      result.transport_bytes_up += connection->bytes_received();
    }
    FinalizeClusterResult(*coordinator_, exact_totals, &result);

    for (auto& connection : connections_) connection->Shutdown();
    JoinSiteThreads();
    // A failed in-process site fails the run BEFORE the final model is
    // published: Snapshot() after a failed Finish must error, not present
    // a model validated against incomplete sites.
    DSGM_RETURN_IF_ERROR(FirstSiteError());

    RunReport report = ReportFromClusterResult(result, Backend::kLocalTcp);
    report.model = ViewFromCoordinator(result.events_processed);
    final_view_ = report.model;
    return report;
  }

 private:
  Status CollectFinalCounts(std::vector<uint64_t>* exact_totals) {
    const int k = num_sites_;
    const int64_t total_counters = layout_->total_counters();
    std::vector<uint8_t> reported(static_cast<size_t>(k), 0);
    int final_reports = 0;
    std::vector<UpdateBundle> batch;
    while (final_reports < k) {
      batch.clear();
      if (update_channel_.PopBatch(&batch, 64) == 0) {
        // Closed and drained: every site's connection ended without all
        // final counts arriving.
        return InternalError("a site disconnected before sending final counts");
      }
      for (UpdateBundle& bundle : batch) {
        // One report per distinct site: a duplicated or forged bundle must
        // not satisfy the wait while a real site's totals are missing.
        if (bundle.kind != UpdateBundle::Kind::kFinalCounts) continue;
        if (bundle.site < 0 || bundle.site >= k ||
            reported[static_cast<size_t>(bundle.site)]) {
          continue;
        }
        reported[static_cast<size_t>(bundle.site)] = 1;
        ++final_reports;
        for (const CounterReport& report : bundle.reports) {
          if (report.counter < 0 || report.counter >= total_counters) {
            return InvalidArgumentError(
                "final counts report an unknown counter id");
          }
          (*exact_totals)[static_cast<size_t>(report.counter)] += report.value;
        }
      }
    }
    return Status::Ok();
  }

  void JoinSiteThreads() {
    for (std::thread& thread : site_threads_) {
      if (thread.joinable()) thread.join();
    }
  }

  Status FirstSiteError() const {
    for (size_t s = 0; s < site_status_.size(); ++s) {
      if (!site_status_[s].ok()) {
        return InternalError("site " + std::to_string(s) +
                             " failed: " + site_status_[s].message());
      }
    }
    return Status::Ok();
  }

  /// Best-effort teardown for sessions dropped mid-run (or failed runs):
  /// shutting every connection down unblocks the site threads and the
  /// coordinator (the merged queue closes when the last reader exits).
  void Abort() {
    for (auto& connection : connections_) {
      if (connection != nullptr) connection->Shutdown();
    }
    merged_updates_.Close();
    JoinCoordinator();
    JoinSiteThreads();
  }

  const SeedSchedule seeds_;
  BoundedQueue<UpdateBundle> merged_updates_;
  QueueChannel<UpdateBundle> update_channel_;
  std::atomic<int> active_readers_;
  std::vector<std::unique_ptr<TcpConnection>> connections_;
  std::vector<std::thread> site_threads_;
  std::vector<Status> site_status_;
};

}  // namespace

StatusOr<std::unique_ptr<Session>> CreateLocalTcpSession(
    const BayesianNetwork& network, const SessionOptions& options) {
  auto session = std::unique_ptr<LocalTcpSession>(new LocalTcpSession(
      network, options, DeriveSeedSchedule(options.tracker)));
  DSGM_RETURN_IF_ERROR(session->Init());
  return std::unique_ptr<Session>(std::move(session));
}

}  // namespace internal
}  // namespace dsgm
