// Internal plumbing shared by the Session backends (not installed as part
// of the public surface; include "dsgm/dsgm.h" instead).

#ifndef DSGM_API_BACKENDS_H_
#define DSGM_API_BACKENDS_H_

#include <memory>
#include <thread>
#include <vector>

#include "cluster/cluster_runner.h"
#include "cluster/coordinator_node.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/timer.h"
#include "core/counter_layout.h"
#include "dsgm/session.h"
#include "net/channel.h"
#include "net/wire.h"

namespace dsgm {
namespace internal {

/// The seed schedule every backend derives from the tracker seed — the
/// same burn order the legacy free-function drivers used (k site seeds,
/// then the ground-truth sampler seed, then the router seed), so identical
/// configs produce identical event streams on every backend.
struct SeedSchedule {
  std::vector<uint64_t> site_seeds;
  uint64_t sampler_seed = 0;
  uint64_t router_seed = 0;
};

SeedSchedule DeriveSeedSchedule(const TrackerConfig& tracker);

/// Converts the cluster-layer result shape into the unified report
/// (everything except the model snapshot, which only sessions can take).
RunReport ReportFromClusterResult(const ClusterResult& result, Backend backend);

/// Machinery shared by the kThreads and kLocalTcp backends: a
/// CoordinatorNode running on its own thread, per-shard per-site event
/// lanes, and mid-run snapshots via CoordinatorNode's double-buffered
/// SnapshotState (which never blocks the protocol loop).
class ClusterSessionBase : public Session {
 public:
  StatusOr<ModelView> Snapshot() override;

  /// Registry snapshot plus this session's per-site health table.
  MetricsSnapshot Metrics() const override;

 protected:
  ClusterSessionBase(Backend backend, const BayesianNetwork& network,
                     const SessionOptions& options, const SeedSchedule& seeds);

  /// Backend hook run before a health-table snapshot: kThreads pushes its
  /// in-process SiteNodes' live stats into the board here; kLocalTcp's
  /// board is fed by the reactor I/O thread and needs no refresh. Called
  /// from Metrics()/dump threads — must be thread-safe.
  virtual void RefreshSiteHealth() const {}

  /// Pushes a full routed batch down the shard's lane for `site`, binding
  /// the lane on first use via ShardLane. Fails if the lane has closed
  /// underneath the session; a recorded run failure (see below) takes
  /// precedence as the error.
  Status DeliverBatch(internal::IngestShard& shard, int site,
                      EventBatch&& batch) override;

  /// The delivery channel a (new) shard should use for `site`. The default
  /// hands out the transport's event channel, whose Push is thread-safe on
  /// every socket transport (mutex/outbox-serialized); the loopback
  /// kThreads backend overrides this with a private SPSC hub lane per
  /// shard. Called from producer threads — must be thread-safe.
  virtual Channel<EventBatch>* ShardLane(int site) {
    return event_channels_[static_cast<size_t>(site)];
  }

  /// Builds the coordinator over the given plumbing and starts its thread.
  /// Called once from the derived constructor/Init after the transport is
  /// wired.
  void StartCoordinator(Channel<UpdateBundle>* updates,
                        std::vector<Channel<RoundAdvance>*> commands);

  void CloseEventChannels();
  void JoinCoordinator();

  /// Records the first run-level failure — e.g. a site declared dead by
  /// the transport's liveness protocol (the FailRun policy). Thread-safe
  /// (transport I/O threads call it); later failures are ignored. Once
  /// recorded, Push/Snapshot/Finish report this status instead of the
  /// secondary symptom (a closed lane or queue).
  void RecordRunFailure(const Status& status) DSGM_EXCLUDES(failure_mu_);
  Status run_failure() const DSGM_EXCLUDES(failure_mu_);
  /// `fallback` unless a run failure was recorded, which then explains WHY
  /// the fallback symptom happened and is returned instead.
  Status RunFailureOr(Status fallback) const DSGM_EXCLUDES(failure_mu_);

  /// Publishes the final model for post-Finish snapshots. The guard exists
  /// for the same reason as InProcessSession's: the annotation pass flagged
  /// final_view_ as written after finished_ flips, so a snapshot racing
  /// Finish (a contract violation) could read a half-written ModelView.
  void SetFinalView(const ModelView& view) DSGM_EXCLUDES(view_mu_);

  /// Consistent model snapshot from the (possibly live) coordinator.
  ModelView ViewFromCoordinator(int64_t events_observed) const;

  const SessionOptions options_;
  const int num_sites_;
  std::shared_ptr<const CounterLayout> layout_;
  /// Per-site liveness/progress table behind Metrics() and the dump lines;
  /// lock-free (common/metrics.h contract). Mutable: refreshing stats into
  /// it from the const Metrics() path mutates no logical session state.
  mutable SiteHealthBoard health_board_;
  WallTimer wall_;
  std::unique_ptr<CoordinatorNode> coordinator_;
  std::thread coordinator_thread_;
  /// One event lane per site, filled by the derived backend.
  std::vector<Channel<EventBatch>*> event_channels_;

 private:
  mutable Mutex failure_mu_;
  Status run_failure_ DSGM_GUARDED_BY(failure_mu_);
  mutable Mutex view_mu_;
  ModelView final_view_ DSGM_GUARDED_BY(view_mu_);
};

StatusOr<std::unique_ptr<Session>> CreateInProcessSession(
    const BayesianNetwork& network, const SessionOptions& options);
StatusOr<std::unique_ptr<Session>> CreateThreadsSession(
    const BayesianNetwork& network, const SessionOptions& options);
StatusOr<std::unique_ptr<Session>> CreateLocalTcpSession(
    const BayesianNetwork& network, const SessionOptions& options);

}  // namespace internal
}  // namespace dsgm

#endif  // DSGM_API_BACKENDS_H_
