// The concurrent-ingest plumbing behind Session::Push: per-caller ingest
// shards and the per-site SPSC lane hub.
//
// Ingest model. Every thread that calls Push/PushBatch/Drain on a Session
// gets its own IngestShard — a thread-local router holding a private Rng
// (the paper's uniformly-random site assignment), per-site staged
// EventBatches, and per-site delivery lanes. The hot path therefore touches
// no shared mutable state at all: route with the shard's own Rng, append to
// the shard's own staging batch, and only when a batch fills does the shard
// cross a thread boundary — through its own SPSC lane (in-process backends)
// or the transport's thread-safe channel Push (socket backends).
//
// Lane hub. On the in-process substrates (kInProcess delivery, kThreads
// over the loopback transport) the consumer of a site's events is a single
// thread, so a SpscLaneHub gives each producing shard its own
// common/spsc_ring.h lane and multiplexes them on the consumer side: the
// SiteNode pops round-robin across lanes with no producer-shared lock.
// Blocking happens only at the edges — a producer parks when its lane is
// full, the consumer parks when every lane is empty — via condition
// variables that the opposite side signals only when a sleeper flag is set,
// so the steady state stays wait-free. The socket transports keep their own
// (already thread-safe, mutex-serialized) channel Push at the transport
// boundary; the hub is not used there.

#ifndef DSGM_API_SHARDED_ROUTER_H_
#define DSGM_API_SHARDED_ROUTER_H_

#include <atomic>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/spsc_ring.h"
#include "common/thread_annotations.h"
#include "net/channel.h"
#include "net/wire.h"

namespace dsgm {
namespace internal {

/// One-producer/one-consumer multiplexer for a site's event stream:
/// producers register private SPSC lanes with AddLane(); the single
/// consumer drains all lanes through the Channel<EventBatch> interface.
/// Close() closes every lane; the consumer drains buffered batches and then
/// sees 0, matching BoundedQueue/Channel close semantics.
///
/// Concurrency contract (the hub-level half of common/spsc_ring.h's SPSC
/// contract): each lane's Push side belongs to exactly one producer at a
/// time — the registering shard's owner thread, or, after that thread
/// exits, whichever thread runs the session's serialized orphan flush (the
/// shard flush mutex provides the happens-before handoff). The pop side
/// (PopBatch/TryPopBatch and the consumer-only cached_lanes_/cursor_
/// below) belongs to exactly one consumer thread — the SiteNode. Both
/// sides are enforced dynamically in debug builds by SpscRing's
/// reentrancy guards; AddLane/Close/Push-parking are thread-safe through
/// the annotated mutexes below.
class SpscLaneHub final : public Channel<EventBatch> {
 public:
  /// `lane_capacity` bounds each producer's ring (backpressure per
  /// producer). The default matches the loopback transport's per-site event
  /// queue bound so the hub exerts comparable end-to-end backpressure.
  explicit SpscLaneHub(size_t lane_capacity = 64);
  ~SpscLaneHub() override;

  /// Registers a new producer lane. The returned channel's Push may be
  /// called by ONE thread only (the registering shard); it blocks while the
  /// lane is full and returns false once the hub is closed. Thread-safe.
  /// The hub owns the lane.
  Channel<EventBatch>* AddLane() DSGM_EXCLUDES(lanes_mu_);

  /// Producers reach the hub only through their own lanes.
  bool Push(EventBatch item) override;

  /// Single consumer: round-robin drain across every registered lane.
  size_t PopBatch(std::vector<EventBatch>* out, size_t max_items) override;
  size_t TryPopBatch(std::vector<EventBatch>* out, size_t max_items) override;

  void Close() override;

 private:
  class Lane;

  /// Round-robin sweep over the lanes; returns items appended. Refreshes
  /// the consumer's cached lane snapshot when producers registered since
  /// the last sweep.
  size_t SweepLanes(std::vector<EventBatch>* out, size_t max_items);
  /// Producer-side: wake the consumer if it parked waiting for data.
  void NotifyData();

  const size_t lane_capacity_;

  Mutex lanes_mu_;
  std::vector<std::unique_ptr<Lane>> lanes_ DSGM_GUARDED_BY(lanes_mu_);
  std::atomic<size_t> lane_count_{0};
  std::atomic<bool> closed_{false};

  /// Consumer park/wake. consumer_waiting_ is the sleeper flag producers
  /// check after a push; the timed wait below is belt-and-braces against
  /// the unfenced flag/data race window (see PopBatch).
  Mutex sleep_mu_;
  CondVar data_cv_;
  std::atomic<bool> consumer_waiting_{false};

  /// OWNERSHIP-guarded, not lock-guarded: single consumer by contract (see
  /// the class comment), so no annotation — the ring guards catch misuse.
  std::vector<Lane*> cached_lanes_;
  size_t cursor_ = 0;
};

}  // namespace internal
}  // namespace dsgm

#endif  // DSGM_API_SHARDED_ROUTER_H_
