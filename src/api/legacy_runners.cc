// Deprecated free-function entry points, kept as thin wrappers over the
// Session API so code written against the pre-session interface keeps
// working unchanged. New code should use dsgm/session.h directly — these
// wrappers discard the mid-run query capability (they only report after
// the run ends) and will be removed once nothing links them.

#include <utility>

#include "api/backends.h"
#include "cluster/cluster_runner.h"
#include "cluster/remote_runner.h"
#include "common/check.h"

namespace dsgm {
namespace internal {

RunReport ReportFromClusterResult(const ClusterResult& result, Backend backend) {
  RunReport report;
  report.backend = backend;
  report.events_processed = result.events_processed;
  report.runtime_seconds = result.runtime_seconds;
  report.wall_seconds = result.wall_seconds;
  report.throughput_events_per_sec = result.throughput_events_per_sec;
  report.comm = result.comm;
  report.max_counter_rel_error = result.max_counter_rel_error;
  report.transport_bytes_up = result.transport_bytes_up;
  report.transport_bytes_down = result.transport_bytes_down;
  report.transport_measured = result.transport_measured;
  return report;
}

ClusterResult ClusterResultFromReport(const RunReport& report) {
  ClusterResult result;
  result.events_processed = report.events_processed;
  result.runtime_seconds = report.runtime_seconds;
  result.wall_seconds = report.wall_seconds;
  result.throughput_events_per_sec = report.throughput_events_per_sec;
  result.comm = report.comm;
  result.max_counter_rel_error = report.max_counter_rel_error;
  result.transport_bytes_up = report.transport_bytes_up;
  result.transport_bytes_down = report.transport_bytes_down;
  result.transport_measured = report.transport_measured;
  return result;
}

}  // namespace internal

ClusterResult RunCluster(const BayesianNetwork& network,
                         const ClusterConfig& config) {
  DSGM_CHECK(config.tracker.Validate().ok());
  DSGM_CHECK_GT(config.num_events, 0);
  SessionBuilder builder(network);
  builder.WithBackend(Backend::kThreads)
      .WithTracker(config.tracker)
      .WithBatchSize(config.batch_size);
  if (config.transport) builder.WithTransport(config.transport);
  StatusOr<std::unique_ptr<Session>> session = builder.Build();
  DSGM_CHECK(session.ok()) << session.status();
  const Status streamed = (*session)->StreamGroundTruth(config.num_events);
  DSGM_CHECK(streamed.ok()) << streamed;
  StatusOr<RunReport> report = (*session)->Finish();
  DSGM_CHECK(report.ok()) << report.status();
  return internal::ClusterResultFromReport(*report);
}

StatusOr<ClusterResult> RunRemoteCoordinator(
    const BayesianNetwork& network, const RemoteCoordinatorConfig& config) {
  DSGM_RETURN_IF_ERROR(config.cluster.tracker.Validate());
  if (config.cluster.num_events <= 0) {
    return InvalidArgumentError("num_events must be positive");
  }
  SessionBuilder builder(network);
  builder.WithBackend(Backend::kLocalTcp)
      .WithTracker(config.cluster.tracker)
      .WithBatchSize(config.cluster.batch_size)
      .WithListenPort(config.port)
      .WithPortFile(config.port_file)
      .WithExternalSites();
  StatusOr<std::unique_ptr<Session>> session = builder.Build();
  if (!session.ok()) return session.status();
  DSGM_RETURN_IF_ERROR((*session)->StreamGroundTruth(config.cluster.num_events));
  StatusOr<RunReport> report = (*session)->Finish();
  if (!report.ok()) return report.status();
  return internal::ClusterResultFromReport(*report);
}

}  // namespace dsgm
