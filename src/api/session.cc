// Session base class, SessionBuilder, and the kInProcess backend.

#include "dsgm/session.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "api/backends.h"
#include "common/check.h"
#include "core/mle_tracker.h"

namespace dsgm {

const char* ToString(Backend backend) {
  switch (backend) {
    case Backend::kInProcess:
      return "in-process";
    case Backend::kThreads:
      return "threads";
    case Backend::kLocalTcp:
      return "local-tcp";
  }
  return "unknown";
}

// --- Session base -------------------------------------------------------

Session::Session(Backend backend, const BayesianNetwork& network, int num_sites,
                 uint64_t stream_seed, uint64_t router_seed)
    : backend_(backend),
      network_(&network),
      num_sites_(num_sites),
      stream_seed_(stream_seed),
      router_(router_seed) {}

Session::~Session() = default;

Status Session::Push(const Instance& event) {
  if (finished_) {
    return FailedPreconditionError("session: Push after Finish");
  }
  const int n = network_->num_variables();
  if (static_cast<int>(event.size()) != n) {
    return InvalidArgumentError(
        "session: instance has " + std::to_string(event.size()) +
        " values, network has " + std::to_string(n) + " variables");
  }
  for (int i = 0; i < n; ++i) {
    const int value = event[static_cast<size_t>(i)];
    if (value < 0 || value >= network_->cardinality(i)) {
      return InvalidArgumentError(
          "session: value " + std::to_string(value) + " for variable " +
          std::to_string(i) + " is outside [0, " +
          std::to_string(network_->cardinality(i)) + ")");
    }
  }
  DSGM_RETURN_IF_ERROR(PushImpl(event));
  ++events_pushed_;
  return Status::Ok();
}

Status Session::PushBatch(const std::vector<Instance>& events) {
  for (const Instance& event : events) {
    DSGM_RETURN_IF_ERROR(Push(event));
  }
  return Status::Ok();
}

Status Session::Drain(EventSource* source) {
  Instance event;
  while (source->Next(&event)) {
    DSGM_RETURN_IF_ERROR(Push(event));
  }
  return Status::Ok();
}

Status Session::StreamGroundTruth(int64_t num_events) {
  if (num_events < 0) {
    return InvalidArgumentError("session: num_events must be non-negative");
  }
  if (finished_) {
    return FailedPreconditionError("session: StreamGroundTruth after Finish");
  }
  if (ground_truth_ == nullptr) {
    ground_truth_ = std::make_unique<ForwardSampler>(*network_, stream_seed_);
  }
  Instance event;
  for (int64_t e = 0; e < num_events; ++e) {
    ground_truth_->Sample(&event);
    // Straight to the backend: the sampler produces in-domain values by
    // construction, and this is the Figs. 7-8 dispatch hot path — Push's
    // per-event domain validation is for external input.
    DSGM_RETURN_IF_ERROR(PushImpl(event));
    ++events_pushed_;
  }
  return Status::Ok();
}

// --- kInProcess backend -------------------------------------------------

namespace internal {

SeedSchedule DeriveSeedSchedule(const TrackerConfig& tracker) {
  Rng seeder(tracker.seed);
  SeedSchedule seeds;
  seeds.site_seeds.reserve(static_cast<size_t>(tracker.num_sites));
  for (int s = 0; s < tracker.num_sites; ++s) {
    seeds.site_seeds.push_back(seeder.Next());
  }
  seeds.sampler_seed = seeder.Next();
  seeds.router_seed = seeder.Next();
  return seeds;
}

namespace {

class InProcessSession final : public Session {
 public:
  InProcessSession(const BayesianNetwork& network, const SessionOptions& options,
                   const SeedSchedule& seeds)
      : Session(Backend::kInProcess, network, options.tracker.num_sites,
                seeds.sampler_seed, seeds.router_seed),
        layout_(std::make_shared<CounterLayout>(network)),
        tracker_(network, options.tracker) {}

  StatusOr<ModelView> Snapshot() override {
    if (finished_) return final_view_;
    return BuildView();
  }

  StatusOr<RunReport> Finish() override {
    if (finished_) return FailedPreconditionError("session: Finish called twice");
    finished_ = true;
    RunReport report;
    report.backend = Backend::kInProcess;
    report.events_processed = tracker_.events_observed();
    report.wall_seconds = wall_.ElapsedSeconds();
    report.runtime_seconds = report.wall_seconds;
    report.throughput_events_per_sec =
        report.runtime_seconds > 0.0
            ? static_cast<double>(report.events_processed) / report.runtime_seconds
            : 0.0;
    report.comm = tracker_.comm();
    report.memory_bytes = tracker_.MemoryBytes();
    report.max_counter_rel_error = MaxRelErrorToExact();
    report.model = BuildView();
    final_view_ = report.model;
    return report;
  }

 protected:
  Status PushImpl(const Instance& event) override {
    tracker_.Observe(event, NextSite());
    return Status::Ok();
  }

 private:
  ModelView BuildView() const {
    std::vector<double> estimates(
        static_cast<size_t>(layout_->total_counters()), 0.0);
    ForEachCell([&estimates](int64_t id, double estimate, uint64_t /*exact*/) {
      estimates[static_cast<size_t>(id)] = estimate;
    });
    return ModelView(network(), layout_, std::move(estimates),
                     tracker_.events_observed(), tracker_.comm(),
                     tracker_.config().laplace_alpha);
  }

  /// Same validation metric as the cluster backends: max relative error of
  /// the estimates against the exact totals, over counters with exact
  /// total >= 64.
  double MaxRelErrorToExact() const {
    double max_rel = 0.0;
    ForEachCell([&max_rel](int64_t /*id*/, double estimate, uint64_t exact) {
      if (exact < 64) return;
      const double rel = std::abs(estimate - static_cast<double>(exact)) /
                         static_cast<double>(exact);
      max_rel = std::max(max_rel, rel);
    });
    return max_rel;
  }

  template <typename Fn>
  void ForEachCell(Fn&& fn) const {
    const int n = layout_->num_vars;
    for (int i = 0; i < n; ++i) {
      const int64_t rows = network().parent_cardinality(i);
      const int card = network().cardinality(i);
      for (int64_t row = 0; row < rows; ++row) {
        for (int value = 0; value < card; ++value) {
          fn(layout_->JointId(i, row, value),
             tracker_.JointCounterEstimate(i, value, row),
             tracker_.JointCounterExact(i, value, row));
        }
        fn(layout_->ParentId(i, row), tracker_.ParentCounterEstimate(i, row),
           tracker_.ParentCounterExact(i, row));
      }
    }
  }

  std::shared_ptr<const CounterLayout> layout_;
  MleTracker tracker_;
  WallTimer wall_;
  ModelView final_view_;
};

}  // namespace

StatusOr<std::unique_ptr<Session>> CreateInProcessSession(
    const BayesianNetwork& network, const SessionOptions& options) {
  return std::unique_ptr<Session>(new InProcessSession(
      network, options, DeriveSeedSchedule(options.tracker)));
}

}  // namespace internal

// --- SessionBuilder -----------------------------------------------------

SessionBuilder::SessionBuilder(const BayesianNetwork& network)
    : network_(&network) {}

SessionBuilder& SessionBuilder::WithOptions(const SessionOptions& options) {
  options_ = options;
  return *this;
}
SessionBuilder& SessionBuilder::WithBackend(Backend backend) {
  options_.backend = backend;
  return *this;
}
SessionBuilder& SessionBuilder::WithTracker(const TrackerConfig& tracker) {
  options_.tracker = tracker;
  return *this;
}
SessionBuilder& SessionBuilder::WithStrategy(TrackingStrategy strategy) {
  options_.tracker.strategy = strategy;
  return *this;
}
SessionBuilder& SessionBuilder::WithCounterType(CounterType type) {
  options_.tracker.counter_type = type;
  return *this;
}
SessionBuilder& SessionBuilder::WithEpsilon(double epsilon) {
  options_.tracker.epsilon = epsilon;
  return *this;
}
SessionBuilder& SessionBuilder::WithSites(int num_sites) {
  options_.tracker.num_sites = num_sites;
  return *this;
}
SessionBuilder& SessionBuilder::WithSeed(uint64_t seed) {
  options_.tracker.seed = seed;
  return *this;
}
SessionBuilder& SessionBuilder::WithBatchSize(int batch_size) {
  options_.batch_size = batch_size;
  return *this;
}
SessionBuilder& SessionBuilder::WithTransport(TransportFactory transport) {
  options_.transport = std::move(transport);
  return *this;
}
SessionBuilder& SessionBuilder::WithListenPort(int port) {
  options_.listen_port = port;
  return *this;
}
SessionBuilder& SessionBuilder::WithPortFile(std::string path) {
  options_.port_file = std::move(path);
  return *this;
}
SessionBuilder& SessionBuilder::WithBindAddress(std::string address) {
  options_.bind_address = std::move(address);
  return *this;
}
SessionBuilder& SessionBuilder::WithExternalSites() {
  options_.external_sites = true;
  return *this;
}
SessionBuilder& SessionBuilder::WithSiteConnectTimeout(int timeout_ms) {
  options_.site_connect_timeout_ms = timeout_ms;
  return *this;
}
SessionBuilder& SessionBuilder::WithLivenessTimeout(int timeout_ms) {
  options_.liveness_timeout_ms = timeout_ms;
  return *this;
}
SessionBuilder& SessionBuilder::WithHeartbeatInterval(int interval_ms) {
  options_.heartbeat_interval_ms = interval_ms;
  return *this;
}

StatusOr<std::unique_ptr<Session>> SessionBuilder::Build() const {
  DSGM_RETURN_IF_ERROR(options_.tracker.Validate());
  if (options_.batch_size <= 0) {
    return InvalidArgumentError("session: batch_size must be positive");
  }
  if (options_.transport && options_.backend != Backend::kThreads) {
    return InvalidArgumentError(
        "session: WithTransport applies only to Backend::kThreads");
  }
  const SessionOptions defaults;
  const bool has_tcp_options =
      options_.external_sites || options_.listen_port != 0 ||
      !options_.port_file.empty() ||
      options_.bind_address != defaults.bind_address ||
      options_.liveness_timeout_ms != defaults.liveness_timeout_ms ||
      options_.heartbeat_interval_ms != defaults.heartbeat_interval_ms;
  if (has_tcp_options && options_.backend != Backend::kLocalTcp) {
    return InvalidArgumentError(
        "session: listener/liveness options apply only to Backend::kLocalTcp");
  }
  if (options_.liveness_timeout_ms < 0 || options_.heartbeat_interval_ms < 0) {
    return InvalidArgumentError(
        "session: liveness timeout and heartbeat interval must be >= 0");
  }
  if (options_.backend == Backend::kLocalTcp && !options_.external_sites &&
      options_.liveness_timeout_ms > 0 &&
      (options_.heartbeat_interval_ms == 0 ||
       options_.heartbeat_interval_ms >= options_.liveness_timeout_ms)) {
    // In-process sites heartbeat at the session-configured cadence; a
    // cadence at or past the deadline guarantees spurious site deaths.
    return InvalidArgumentError(
        "session: heartbeat_interval_ms must be in (0, liveness_timeout_ms) "
        "when liveness is enabled with in-process sites");
  }
  switch (options_.backend) {
    case Backend::kInProcess:
      return internal::CreateInProcessSession(*network_, options_);
    case Backend::kThreads:
      return internal::CreateThreadsSession(*network_, options_);
    case Backend::kLocalTcp:
      return internal::CreateLocalTcpSession(*network_, options_);
  }
  return InvalidArgumentError("session: unknown backend");
}

}  // namespace dsgm
