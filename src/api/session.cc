// Session base class (sharded concurrent ingest), SessionBuilder, and the
// kInProcess backend.

#include "dsgm/session.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "api/backends.h"
#include "common/check.h"
#include "core/mle_tracker.h"

namespace dsgm {

const char* ToString(Backend backend) {
  switch (backend) {
    case Backend::kInProcess:
      return "in-process";
    case Backend::kThreads:
      return "threads";
    case Backend::kLocalTcp:
      return "local-tcp";
  }
  return "unknown";
}

// --- Session base -------------------------------------------------------

namespace {

uint64_t NextSessionId() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

// Ingest-path instruments, resolved once. Updated at BATCH granularity only
// (one Add per delivered batch, never per event), so eight producers don't
// contend on a metric cache line inside the staging hot loop.
Counter* IngestEventsStaged() {
  static Counter* const counter =
      MetricsRegistry::Global().GetCounter("api.ingest.events_staged");
  return counter;
}
Counter* IngestBatchesFlushed() {
  static Counter* const counter =
      MetricsRegistry::Global().GetCounter("api.ingest.batches_flushed");
  return counter;
}

/// A thread's shard cache: one entry per session it has pushed into. The
/// shared_ptr keeps a shard's memory valid even after its session died;
/// `retired` entries are pruned on the next slow-path registration so
/// long-lived ingest threads don't accumulate shards across sessions. The
/// destructor runs at thread exit (and on pruning): it PARKS the shard
/// with its still-live session as an orphan, so an exited producer's
/// staged events are delivered by the session's next Snapshot or Finish
/// flush instead of waiting only for Finish. It must not deliver batches
/// itself: delivery runs transport code (e.g. the reactor's thread_local
/// encode scratch), and C++ gives no ordering among a dying thread's TLS
/// destructors — touching another thread_local here is a use-after-free.
struct ShardRef {
  uint64_t session_id = 0;
  std::shared_ptr<internal::IngestShard> shard;
  std::shared_ptr<internal::SessionLiveHandle> live;

  ShardRef(uint64_t id, std::shared_ptr<internal::IngestShard> shard_in,
           std::shared_ptr<internal::SessionLiveHandle> live_in)
      : session_id(id), shard(std::move(shard_in)), live(std::move(live_in)) {}
  // Moves must not park: vector growth and remove_if shuffle entries
  // around, and a moved-from ref holds null pointers, which the destructor
  // treats as "nothing to do".
  ShardRef(ShardRef&&) = default;
  ShardRef& operator=(ShardRef&&) = default;
  ShardRef(const ShardRef&) = delete;
  ShardRef& operator=(const ShardRef&) = delete;

  ~ShardRef() {
    if (shard == nullptr || live == nullptr) return;
    MutexLock lock(&live->mu);
    if (live->session != nullptr) {
      internal::FlushShardOnThreadExit(live->session, shard);
    }
  }
};
thread_local std::vector<ShardRef> tls_shards;

}  // namespace

namespace internal {

void FlushShardOnThreadExit(Session* session,
                            const std::shared_ptr<IngestShard>& shard) {
  // A finished session has flushed everything already; leftover staged
  // events of a thread outliving Finish are dropped, exactly as a failed
  // flush would drop them.
  if (session->finished_.load(std::memory_order_acquire)) return;
  MutexLock lock(&session->orphans_mu_);
  session->orphaned_shards_.push_back(shard);
}

}  // namespace internal

Session::Session(Backend backend, const BayesianNetwork& network, int num_sites,
                 int batch_size, uint64_t stream_seed, uint64_t router_seed)
    : backend_(backend),
      network_(&network),
      num_sites_(num_sites),
      batch_size_(batch_size),
      stream_seed_(stream_seed),
      router_seed_(router_seed),
      id_(NextSessionId()),
      live_(std::make_shared<internal::SessionLiveHandle>()) {
  live_->session = this;
}

Session::~Session() {
  // Backends whose dump fn captures derived state stopped the dumper in
  // their own teardown already; this covers the base-only case (kInProcess)
  // and is a no-op otherwise.
  StopMetricsDump();
  {
    // After this, an exiting producer thread's flush hook sees a dead
    // session and skips (the lock also waits out a flush already running).
    MutexLock lock(&live_->mu);
    live_->session = nullptr;
  }
  MutexLock lock(&shards_mu_);
  for (const auto& shard : shards_) {
    shard->retired.store(true, std::memory_order_release);
  }
}

MetricsSnapshot Session::Metrics() const {
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  snapshot.captured_nanos = NowNanos();
  return snapshot;
}

void Session::StartMetricsDump(int period_ms, std::ostream* out,
                               MetricsDumper::SnapshotFn fn) {
  if (period_ms <= 0) return;
  DSGM_CHECK(metrics_dumper_ == nullptr);
  metrics_dumper_ =
      std::make_unique<MetricsDumper>(period_ms, out, std::move(fn));
}

void Session::StopMetricsDump() {
  if (metrics_dumper_ != nullptr) metrics_dumper_->Stop();
}

internal::IngestShard* Session::CurrentShard() {
  for (const ShardRef& ref : tls_shards) {
    if (ref.session_id == id_) return ref.shard.get();
  }
  return RegisterShard();
}

internal::IngestShard* Session::RegisterShard() {
  tls_shards.erase(
      std::remove_if(tls_shards.begin(), tls_shards.end(),
                     [](const ShardRef& ref) {
                       return ref.shard->retired.load(std::memory_order_acquire);
                     }),
      tls_shards.end());
  auto shard = std::make_shared<internal::IngestShard>();
  shard->session_id = id_;
  const size_t reserve = static_cast<size_t>(batch_size_) *
                         static_cast<size_t>(network_->num_variables());
  shard->pending.resize(static_cast<size_t>(num_sites_));
  for (EventBatch& batch : shard->pending) batch.values.reserve(reserve);
  shard->lanes.assign(static_cast<size_t>(num_sites_), nullptr);
  {
    MutexLock lock(&shards_mu_);
    shard->index = static_cast<int>(shards_.size());
    if (shard->index == 0) {
      // The first shard routes with the session's own Rng — a single-caller
      // session assigns events to sites exactly as pre-sharding sessions
      // did, keeping identical configs bit-reproducible across backends.
      shard->router = Rng(router_seed_);
    } else {
      uint64_t derive =
          router_seed_ ^ (0x9e3779b97f4a7c15ULL *
                          static_cast<uint64_t>(shard->index));
      shard->router = Rng(SplitMix64(derive));
    }
    shards_.push_back(shard);
  }
  tls_shards.emplace_back(id_, shard, live_);
  return shard.get();
}

Status Session::StageRouted(internal::IngestShard* shard,
                            const Instance& event) {
  const int site =
      static_cast<int>(shard->router.NextBounded(static_cast<uint64_t>(num_sites_)));
  EventBatch& batch = shard->pending[static_cast<size_t>(site)];
  batch.values.insert(batch.values.end(), event.begin(), event.end());
  if (++batch.num_events >= batch_size_) {
    EventBatch full = std::move(batch);
    batch = EventBatch{};
    batch.values.reserve(static_cast<size_t>(batch_size_) *
                         static_cast<size_t>(network_->num_variables()));
    IngestEventsStaged()->Add(static_cast<uint64_t>(full.num_events));
    IngestBatchesFlushed()->Increment();
    DSGM_RETURN_IF_ERROR(DeliverBatch(*shard, site, std::move(full)));
  }
  events_pushed_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status Session::FlushShard(internal::IngestShard* shard) {
  MutexLock lock(&shard->flush_mu);
  return FlushShardLocked(shard);
}

Status Session::FlushShardLocked(internal::IngestShard* shard) {
  // Over pending.size(), not num_sites_: an exit-flushed shard has released
  // its (empty) staging buffers entirely.
  for (size_t s = 0; s < shard->pending.size(); ++s) {
    EventBatch& batch = shard->pending[s];
    if (batch.num_events == 0) continue;
    EventBatch full = std::move(batch);
    batch = EventBatch{};
    batch.values.reserve(static_cast<size_t>(batch_size_) *
                         static_cast<size_t>(network_->num_variables()));
    IngestEventsStaged()->Add(static_cast<uint64_t>(full.num_events));
    IngestBatchesFlushed()->Increment();
    DSGM_RETURN_IF_ERROR(DeliverBatch(*shard, static_cast<int>(s),
                                      std::move(full)));
  }
  return Status::Ok();
}

Status Session::FlushOrphanedShards() {
  std::vector<std::shared_ptr<internal::IngestShard>> orphans;
  {
    MutexLock lock(&orphans_mu_);
    orphans.swap(orphaned_shards_);
  }
  for (const auto& shard : orphans) {
    MutexLock lock(&shard->flush_mu);
    DSGM_RETURN_IF_ERROR(FlushShardLocked(shard.get()));
    // The owner thread is gone; nothing will stage into this shard again,
    // so the reserved staging buffers can go now instead of at teardown.
    shard->pending.clear();
    shard->pending.shrink_to_fit();
  }
  return Status::Ok();
}

Status Session::FlushCallerShard() {
  DSGM_RETURN_IF_ERROR(FlushOrphanedShards());
  for (const ShardRef& ref : tls_shards) {
    if (ref.session_id == id_) return FlushShard(ref.shard.get());
  }
  return Status::Ok();  // This thread never pushed; nothing staged.
}

Status Session::FlushAllShards() {
  std::vector<std::shared_ptr<internal::IngestShard>> shards;
  {
    MutexLock lock(&shards_mu_);
    shards = shards_;
  }
  {
    // The registry already covers every orphan; just drop the parked refs.
    MutexLock lock(&orphans_mu_);
    orphaned_shards_.clear();
  }
  for (const auto& shard : shards) {
    DSGM_RETURN_IF_ERROR(FlushShard(shard.get()));
  }
  return Status::Ok();
}

Status Session::Push(const Instance& event) {
  if (finished_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("session: Push after Finish");
  }
  const int n = network_->num_variables();
  if (static_cast<int>(event.size()) != n) {
    return InvalidArgumentError(
        "session: instance has " + std::to_string(event.size()) +
        " values, network has " + std::to_string(n) + " variables");
  }
  for (int i = 0; i < n; ++i) {
    const int value = event[static_cast<size_t>(i)];
    if (value < 0 || value >= network_->cardinality(i)) {
      return InvalidArgumentError(
          "session: value " + std::to_string(value) + " for variable " +
          std::to_string(i) + " is outside [0, " +
          std::to_string(network_->cardinality(i)) + ")");
    }
  }
  return StageRouted(CurrentShard(), event);
}

Status Session::PushBatch(const std::vector<Instance>& events) {
  for (const Instance& event : events) {
    DSGM_RETURN_IF_ERROR(Push(event));
  }
  return Status::Ok();
}

Status Session::Drain(EventSource* source) {
  Instance event;
  while (source->Next(&event)) {
    DSGM_RETURN_IF_ERROR(Push(event));
  }
  return Status::Ok();
}

Status Session::StreamGroundTruth(int64_t num_events) {
  if (num_events < 0) {
    return InvalidArgumentError("session: num_events must be non-negative");
  }
  if (finished_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("session: StreamGroundTruth after Finish");
  }
  if (ground_truth_ == nullptr) {
    ground_truth_ = std::make_unique<ForwardSampler>(*network_, stream_seed_);
  }
  internal::IngestShard* shard = CurrentShard();
  Instance event;
  for (int64_t e = 0; e < num_events; ++e) {
    ground_truth_->Sample(&event);
    // Straight to the shard: the sampler produces in-domain values by
    // construction, and this is the Figs. 7-8 dispatch hot path — Push's
    // per-event domain validation is for external input.
    DSGM_RETURN_IF_ERROR(StageRouted(shard, event));
  }
  return Status::Ok();
}

// --- kInProcess backend -------------------------------------------------

namespace internal {

SeedSchedule DeriveSeedSchedule(const TrackerConfig& tracker) {
  Rng seeder(tracker.seed);
  SeedSchedule seeds;
  seeds.site_seeds.reserve(static_cast<size_t>(tracker.num_sites));
  for (int s = 0; s < tracker.num_sites; ++s) {
    seeds.site_seeds.push_back(seeder.Next());
  }
  seeds.sampler_seed = seeder.Next();
  seeds.router_seed = seeder.Next();
  return seeds;
}

namespace {

class InProcessSession final : public Session {
 public:
  InProcessSession(const BayesianNetwork& network, const SessionOptions& options,
                   const SeedSchedule& seeds)
      // Batch size 1: events reach the tracker in push order, so a
      // single-caller session reproduces pre-sharding results bit-exactly
      // even in approx mode (the simulated protocol is order-sensitive).
      // Concurrent producers serialize on tracker_mu_ per event — correct,
      // and the scaling story belongs to the cluster backends.
      : Session(Backend::kInProcess, network, options.tracker.num_sites,
                /*batch_size=*/1, seeds.sampler_seed, seeds.router_seed),
        layout_(std::make_shared<CounterLayout>(network)),
        scratch_(static_cast<size_t>(network.num_variables())),
        tracker_(network, options.tracker) {
    // The dump fn touches only the process-wide registry (no per-site table
    // in-process), so the base destructor's stop is soon enough.
    StartMetricsDump(options.metrics_dump_ms, options.metrics_dump_stream,
                     [this] { return Metrics(); });
  }

  StatusOr<ModelView> Snapshot() override {
    if (finished_.load(std::memory_order_acquire)) {
      // Under tracker_mu_, not bare: the annotation pass flagged final_view_
      // as written by Finish after the finished_ flag flips, so a snapshot
      // racing Finish (a contract violation, but one that must stay
      // memory-safe) could read a half-written ModelView.
      MutexLock lock(&tracker_mu_);
      return final_view_;
    }
    DSGM_RETURN_IF_ERROR(FlushCallerShard());
    MutexLock lock(&tracker_mu_);
    return BuildView();
  }

  StatusOr<RunReport> Finish() override {
    if (finished_.load(std::memory_order_acquire)) {
      return FailedPreconditionError("session: Finish called twice");
    }
    DSGM_RETURN_IF_ERROR(FlushAllShards());
    finished_.store(true, std::memory_order_release);
    MutexLock lock(&tracker_mu_);
    RunReport report;
    report.backend = Backend::kInProcess;
    report.events_processed = tracker_.events_observed();
    report.wall_seconds = wall_.ElapsedSeconds();
    report.runtime_seconds = report.wall_seconds;
    report.throughput_events_per_sec =
        report.runtime_seconds > 0.0
            ? static_cast<double>(report.events_processed) / report.runtime_seconds
            : 0.0;
    report.comm = tracker_.comm();
    report.memory_bytes = tracker_.MemoryBytes();
    report.max_counter_rel_error = MaxRelErrorToExact();
    report.model = BuildView();
    report.metrics = Metrics();
    report.model.AttachMetrics(report.metrics);
    final_view_ = report.model;
    StopMetricsDump();
    return report;
  }

 protected:
  Status DeliverBatch(internal::IngestShard& /*shard*/, int site,
                      EventBatch&& batch) override {
    MutexLock lock(&tracker_mu_);
    const int n = layout_->num_vars;
    const int32_t* cursor = batch.values.data();
    for (int32_t e = 0; e < batch.num_events; ++e) {
      scratch_.assign(cursor, cursor + n);
      tracker_.Observe(scratch_, site);
      cursor += n;
    }
    return Status::Ok();
  }

 private:
  ModelView BuildView() const DSGM_REQUIRES(tracker_mu_) {
    std::vector<double> estimates(
        static_cast<size_t>(layout_->total_counters()), 0.0);
    ForEachCell([&estimates](int64_t id, double estimate, uint64_t /*exact*/) {
      estimates[static_cast<size_t>(id)] = estimate;
    });
    return ModelView(network(), layout_, std::move(estimates),
                     tracker_.events_observed(), tracker_.comm(),
                     tracker_.config().laplace_alpha);
  }

  /// Same validation metric as the cluster backends: max relative error of
  /// the estimates against the exact totals, over counters with exact
  /// total >= 64.
  double MaxRelErrorToExact() const DSGM_REQUIRES(tracker_mu_) {
    double max_rel = 0.0;
    ForEachCell([&max_rel](int64_t /*id*/, double estimate, uint64_t exact) {
      if (exact < 64) return;
      const double rel = std::abs(estimate - static_cast<double>(exact)) /
                         static_cast<double>(exact);
      max_rel = std::max(max_rel, rel);
    });
    return max_rel;
  }

  template <typename Fn>
  void ForEachCell(Fn&& fn) const DSGM_REQUIRES(tracker_mu_) {
    const int n = layout_->num_vars;
    for (int i = 0; i < n; ++i) {
      const int64_t rows = network().parent_cardinality(i);
      const int card = network().cardinality(i);
      for (int64_t row = 0; row < rows; ++row) {
        for (int value = 0; value < card; ++value) {
          fn(layout_->JointId(i, row, value),
             tracker_.JointCounterEstimate(i, value, row),
             tracker_.JointCounterExact(i, value, row));
        }
        fn(layout_->ParentId(i, row), tracker_.ParentCounterEstimate(i, row),
           tracker_.ParentCounterExact(i, row));
      }
    }
  }

  std::shared_ptr<const CounterLayout> layout_;
  /// Serializes tracker access between concurrent producers (one lock per
  /// delivered event) and snapshot/finish readers. Also covers final_view_:
  /// the finished-path read in Snapshot must not race Finish's write.
  mutable Mutex tracker_mu_;
  Instance scratch_ DSGM_GUARDED_BY(tracker_mu_);  // DeliverBatch decode buffer
  MleTracker tracker_ DSGM_GUARDED_BY(tracker_mu_);
  WallTimer wall_;
  ModelView final_view_ DSGM_GUARDED_BY(tracker_mu_);
};

}  // namespace

StatusOr<std::unique_ptr<Session>> CreateInProcessSession(
    const BayesianNetwork& network, const SessionOptions& options) {
  return std::unique_ptr<Session>(new InProcessSession(
      network, options, DeriveSeedSchedule(options.tracker)));
}

}  // namespace internal

// --- SessionBuilder -----------------------------------------------------

SessionBuilder::SessionBuilder(const BayesianNetwork& network)
    : network_(&network) {}

SessionBuilder& SessionBuilder::WithOptions(const SessionOptions& options) {
  options_ = options;
  return *this;
}
SessionBuilder& SessionBuilder::WithBackend(Backend backend) {
  options_.backend = backend;
  return *this;
}
SessionBuilder& SessionBuilder::WithTracker(const TrackerConfig& tracker) {
  options_.tracker = tracker;
  return *this;
}
SessionBuilder& SessionBuilder::WithStrategy(TrackingStrategy strategy) {
  options_.tracker.strategy = strategy;
  return *this;
}
SessionBuilder& SessionBuilder::WithCounterType(CounterType type) {
  options_.tracker.counter_type = type;
  return *this;
}
SessionBuilder& SessionBuilder::WithEpsilon(double epsilon) {
  options_.tracker.epsilon = epsilon;
  return *this;
}
SessionBuilder& SessionBuilder::WithSites(int num_sites) {
  options_.tracker.num_sites = num_sites;
  return *this;
}
SessionBuilder& SessionBuilder::WithSeed(uint64_t seed) {
  options_.tracker.seed = seed;
  return *this;
}
SessionBuilder& SessionBuilder::WithBatchSize(int batch_size) {
  options_.batch_size = batch_size;
  return *this;
}
SessionBuilder& SessionBuilder::WithTransport(TransportFactory transport) {
  options_.transport = std::move(transport);
  return *this;
}
SessionBuilder& SessionBuilder::WithListenPort(int port) {
  options_.listen_port = port;
  return *this;
}
SessionBuilder& SessionBuilder::WithPortFile(std::string path) {
  options_.port_file = std::move(path);
  return *this;
}
SessionBuilder& SessionBuilder::WithBindAddress(std::string address) {
  options_.bind_address = std::move(address);
  return *this;
}
SessionBuilder& SessionBuilder::WithExternalSites() {
  options_.external_sites = true;
  return *this;
}
SessionBuilder& SessionBuilder::WithSiteConnectTimeout(int timeout_ms) {
  options_.site_connect_timeout_ms = timeout_ms;
  return *this;
}
SessionBuilder& SessionBuilder::WithIoBackend(IoBackendKind io_backend) {
  options_.io_backend = io_backend;
  return *this;
}
SessionBuilder& SessionBuilder::WithLivenessTimeout(int timeout_ms) {
  options_.liveness_timeout_ms = timeout_ms;
  return *this;
}
SessionBuilder& SessionBuilder::WithHeartbeatInterval(int interval_ms) {
  options_.heartbeat_interval_ms = interval_ms;
  return *this;
}
SessionBuilder& SessionBuilder::WithMetricsDump(int period_ms,
                                                std::ostream* out) {
  options_.metrics_dump_ms = period_ms;
  options_.metrics_dump_stream = out;
  return *this;
}
SessionBuilder& SessionBuilder::WithTraceExport(std::string path) {
  options_.trace_out = std::move(path);
  return *this;
}
SessionBuilder& SessionBuilder::WithPostmortemDir(std::string dir) {
  options_.postmortem_dir = std::move(dir);
  return *this;
}

StatusOr<std::unique_ptr<Session>> SessionBuilder::Build() const {
  DSGM_RETURN_IF_ERROR(options_.tracker.Validate());
  if (options_.batch_size <= 0) {
    return InvalidArgumentError("session: batch_size must be positive");
  }
  if (options_.transport && options_.backend != Backend::kThreads) {
    return InvalidArgumentError(
        "session: WithTransport applies only to Backend::kThreads");
  }
  const SessionOptions defaults;
  const bool has_tcp_options =
      options_.external_sites || options_.listen_port != 0 ||
      !options_.port_file.empty() ||
      options_.bind_address != defaults.bind_address ||
      options_.liveness_timeout_ms != defaults.liveness_timeout_ms ||
      options_.heartbeat_interval_ms != defaults.heartbeat_interval_ms;
  if (has_tcp_options && options_.backend != Backend::kLocalTcp) {
    return InvalidArgumentError(
        "session: listener/liveness options apply only to Backend::kLocalTcp");
  }
  if (options_.liveness_timeout_ms < 0 || options_.heartbeat_interval_ms < 0) {
    return InvalidArgumentError(
        "session: liveness timeout and heartbeat interval must be >= 0");
  }
  if (options_.metrics_dump_ms < 0) {
    return InvalidArgumentError("session: metrics_dump_ms must be >= 0");
  }
  if (options_.backend == Backend::kLocalTcp && !options_.external_sites &&
      options_.liveness_timeout_ms > 0 &&
      (options_.heartbeat_interval_ms == 0 ||
       options_.heartbeat_interval_ms >= options_.liveness_timeout_ms)) {
    // In-process sites heartbeat at the session-configured cadence; a
    // cadence at or past the deadline guarantees spurious site deaths.
    return InvalidArgumentError(
        "session: heartbeat_interval_ms must be in (0, liveness_timeout_ms) "
        "when liveness is enabled with in-process sites");
  }
  switch (options_.backend) {
    case Backend::kInProcess:
      return internal::CreateInProcessSession(*network_, options_);
    case Backend::kThreads:
      return internal::CreateThreadsSession(*network_, options_);
    case Backend::kLocalTcp:
      return internal::CreateLocalTcpSession(*network_, options_);
  }
  return InvalidArgumentError("session: unknown backend");
}

}  // namespace dsgm
